package mtm

import (
	"bytes"
	"encoding/json"
	"testing"

	"mtm/internal/admission"
	"mtm/internal/sim"
	"mtm/internal/span"
)

// runPair executes the same (workload, solution) run at two Parallelism
// settings and fails unless the JSON-encoded Results are byte-identical.
// JSON equality covers every exported field — virtual times, per-node
// access counts, migration volumes, robustness counters — so any
// parallelism-dependent drift in the sharded phases shows up here.
func runPair(t *testing.T, cfg Config, wl, sol string) {
	t.Helper()
	seq := cfg
	seq.Parallelism = 1
	par := cfg
	par.Parallelism = 4
	rs, err := Run(seq, wl, sol)
	if err != nil {
		t.Fatalf("sequential run: %v", err)
	}
	rp, err := Run(par, wl, sol)
	if err != nil {
		t.Fatalf("parallel run: %v", err)
	}
	bs, err := json.Marshal(rs)
	if err != nil {
		t.Fatal(err)
	}
	bp, err := json.Marshal(rp)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bs, bp) {
		t.Errorf("parallel run diverged from sequential:\nseq: %s\npar: %s", bs, bp)
	}
}

// TestParallelDeterminismMatrix asserts the tentpole invariant: the
// sharded profiling/migration hot path produces bit-identical Results at
// any Parallelism, for every solution/workload pair. Shard layouts are
// fixed-size and every shard draws from its own seeded stream, so worker
// count must never leak into the simulation.
func TestParallelDeterminismMatrix(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	// Health-enabled variants: poisoning order, drain batches, breaker
	// state and the end-of-run audit must all be parallelism-invariant.
	// The health machinery never draws from the engine's random stream,
	// so a DIMM dying mid-run or a flaky CXL link cannot make worker
	// count observable.
	health := []struct{ name, faults string }{
		{"dimm-death", "dimm-death"},
		{"cxl-flaky", "cxl-flaky"},
	}
	if testing.Short() || sim.RaceEnabled {
		// One PEBS-assisted and one scan-only solution keep the sharded
		// phases covered without the full 15x6 sweep. Under -race the
		// full sweep costs ~10x for no extra determinism signal (the CI
		// determinism job runs it race-free at full size), so it trims
		// itself there too.
		for _, sol := range []string{"mtm", "tiered-autonuma"} {
			t.Run("gups/"+sol, func(t *testing.T) { runPair(t, cfg, "gups", sol) })
		}
		for _, h := range health {
			hc := cfg
			hc.Faults = h.faults
			hc.Audit = true
			t.Run("gups/mtm/"+h.name, func(t *testing.T) { runPair(t, hc, "gups", "mtm") })
		}
		// Admission-enabled variants: the ROI gate, pair budgets, waste
		// ledgers and the thrash cool-down all mutate on the serialized
		// loop, so an admission-controlled run — including one where the
		// ping-pong workload hammers the cool-down and a flaky tier feeds
		// the waste ledger — must stay bit-identical too.
		ac := cfg
		ac.Admission = &admission.Config{}
		t.Run("pingpong/mtm/admission", func(t *testing.T) { runPair(t, ac, "pingpong", "mtm") })
		af := ac
		af.Faults = "cxl-flaky"
		af.Audit = true
		t.Run("pingpong/mtm/admission/cxl-flaky", func(t *testing.T) { runPair(t, af, "pingpong", "mtm") })
		// Fidelity-enabled variants: the oracle's truth plane, estimate
		// marking, lag bookkeeping and outcome lineage all run in sharded
		// phases merged on the serialized loop, so the Fidelity block must
		// be byte-identical at every worker count too (see also
		// TestParallelDeterminismFidelity for the 1/2/8 sweep).
		fc := cfg
		fc.Fidelity = true
		t.Run("pingpong/mtm/fidelity", func(t *testing.T) { runPair(t, fc, "pingpong", "mtm") })
		ff := fc
		ff.Faults = "cxl-flaky"
		ff.Audit = true
		t.Run("pingpong/mtm/fidelity/cxl-flaky", func(t *testing.T) { runPair(t, ff, "pingpong", "mtm") })
		return
	}
	for _, wl := range WorkloadNames() {
		for _, sol := range SolutionNames() {
			t.Run(wl+"/"+sol, func(t *testing.T) {
				t.Parallel()
				runPair(t, cfg, wl, sol)
			})
		}
	}
	for _, h := range health {
		for _, sol := range SolutionNames() {
			hc := cfg
			hc.Faults = h.faults
			hc.Audit = true
			t.Run("gups/"+sol+"/"+h.name, func(t *testing.T) {
				t.Parallel()
				runPair(t, hc, "gups", sol)
			})
		}
	}
	// Admission-enabled sweep over every migrating solution, on the
	// workload built to trigger its every code path, with and without a
	// flaky tier feeding the waste ledger.
	for _, sol := range SolutionNames() {
		ac := cfg
		ac.Admission = &admission.Config{}
		t.Run("pingpong/"+sol+"/admission", func(t *testing.T) {
			t.Parallel()
			runPair(t, ac, "pingpong", sol)
		})
		af := ac
		af.Faults = "cxl-flaky"
		af.Audit = true
		t.Run("pingpong/"+sol+"/admission/cxl-flaky", func(t *testing.T) {
			t.Parallel()
			runPair(t, af, "pingpong", sol)
		})
	}
	// Fidelity-enabled sweep: the oracle grades every solution (profiler
	// fidelity where the solution exposes regions, lineage everywhere),
	// with and without a flaky tier aborting moves mid-lineage.
	for _, sol := range SolutionNames() {
		fc := cfg
		fc.Fidelity = true
		t.Run("pingpong/"+sol+"/fidelity", func(t *testing.T) {
			t.Parallel()
			runPair(t, fc, "pingpong", sol)
		})
		ff := fc
		ff.Faults = "cxl-flaky"
		ff.Audit = true
		t.Run("pingpong/"+sol+"/fidelity/cxl-flaky", func(t *testing.T) {
			t.Parallel()
			runPair(t, ff, "pingpong", sol)
		})
	}
}

// TestParallelDeterminismMetrics extends the invariant to metrics-enabled
// runs: every instrument write happens on the serialized interval loop
// (sharded phases accumulate into per-shard scratch merged in shard
// order), so the exported counters, time series, and event ring must be
// byte-identical at any Parallelism. The Metrics field rides inside
// Result, so runPair's JSON comparison covers the whole export.
func TestParallelDeterminismMetrics(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Metrics = true
	t.Run("gups/mtm", func(t *testing.T) { runPair(t, cfg, "gups", "mtm") })
	t.Run("gups/tiered-autonuma", func(t *testing.T) { runPair(t, cfg, "gups", "tiered-autonuma") })
	// Faulty variant: abort/retry events and fault-activation events must
	// land in the ring in the same order regardless of worker count.
	faulty := cfg
	faulty.Faults = "ebusy-storm"
	t.Run("gups/mtm/ebusy-storm", func(t *testing.T) { runPair(t, faulty, "gups", "mtm") })
}

// spanJSONL runs one traced configuration and returns the JSONL-encoded
// span stream.
func spanJSONL(t *testing.T, cfg Config, wl, sol string) []byte {
	t.Helper()
	res, err := Run(cfg, wl, sol)
	if err != nil {
		t.Fatalf("run (parallel %d): %v", cfg.Parallelism, err)
	}
	if res.Spans == nil {
		t.Fatal("traced run produced no span export")
	}
	var buf bytes.Buffer
	if err := res.Spans.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runSpanSet executes the same traced run at Parallelism 1, 2 and 8 and
// fails unless the JSONL span streams are byte-identical: every timestamp
// comes from the virtual clock and every ID from a per-interval counter,
// so worker count must never leak into the trace.
func runSpanSet(t *testing.T, cfg Config, wl, sol string) {
	t.Helper()
	cfg.Trace = &span.Config{}
	cfg.Parallelism = 1
	base := spanJSONL(t, cfg, wl, sol)
	if bytes.Count(base, []byte("\n")) < 2 {
		t.Fatal("trace is empty; determinism comparison is vacuous")
	}
	for _, p := range []int{2, 8} {
		c := cfg
		c.Parallelism = p
		if got := spanJSONL(t, c, wl, sol); !bytes.Equal(base, got) {
			t.Errorf("span stream diverged at parallelism %d", p)
		}
	}
}

// TestParallelDeterminismSpans extends the determinism invariant to the
// span tracer across the solution x workload matrix.
func TestParallelDeterminismSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	if testing.Short() || sim.RaceEnabled {
		// Same trim rationale as TestParallelDeterminismMatrix.
		for _, sol := range []string{"mtm", "tiered-autonuma"} {
			t.Run("gups/"+sol, func(t *testing.T) { runSpanSet(t, cfg, "gups", sol) })
		}
		return
	}
	for _, wl := range WorkloadNames() {
		for _, sol := range SolutionNames() {
			t.Run(wl+"/"+sol, func(t *testing.T) {
				t.Parallel()
				runSpanSet(t, cfg, wl, sol)
			})
		}
	}
}

// TestParallelDeterminismSpansFaults covers the fault-injected variant:
// retry, backoff and abort annotations ride in the transfer spans, and
// they too must be identical at any worker count.
func TestParallelDeterminismSpansFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Faults = "ebusy-storm"
	runSpanSet(t, cfg, "gups", "mtm")
}

// TestParallelDeterminismFaults extends the invariant to fault-injected
// runs: the injector draws from its own stream, and the retry/abort
// accounting of the transactional rebind loop is serialized, so injected
// EBUSY storms must not break parallel determinism either.
func TestParallelDeterminismFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Faults = "ebusy-storm"
	runPair(t, cfg, "gups", "mtm")
}

// TestParallelDeterminismNomad pins the determinism invariant on the
// non-exclusive tiering path explicitly: shadow retention, write
// invalidation, background sync and flip demotion all mutate shared
// state (the shadow table, the per-node shadow ledger, the free-demotion
// counters), and all of it must stay bit-identical at any worker count —
// on the workload whose churn exercises every one of those transitions,
// with and without a flaky CXL tier aborting moves mid-retention. Audit
// is on so the end-of-run residency/shadow reconciliation runs too.
func TestParallelDeterminismNomad(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Audit = true
	t.Run("pingpong/nomad", func(t *testing.T) { runPair(t, cfg, "pingpong", "nomad") })
	flaky := cfg
	flaky.Faults = "cxl-flaky"
	t.Run("pingpong/nomad/cxl-flaky", func(t *testing.T) { runPair(t, flaky, "pingpong", "nomad") })
}

// TestParallelDeterminismNomadSpans extends the Nomad invariant to the
// span stream: shadow sync events, flip-demotion provenance and the
// admission layer's flip decisions must serialize identically at
// parallelism 1, 2 and 8.
func TestParallelDeterminismNomadSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Audit = true
	t.Run("pingpong/nomad", func(t *testing.T) { runSpanSet(t, cfg, "pingpong", "nomad") })
	flaky := cfg
	flaky.Faults = "cxl-flaky"
	t.Run("pingpong/nomad/cxl-flaky", func(t *testing.T) { runSpanSet(t, flaky, "pingpong", "nomad") })
}

// TestParallelDeterminismAdmissionSpans pins the determinism invariant
// on admission provenance: every admit/defer/reject decision span — ROI,
// threshold, allowance, pair budget — must appear identically, in the
// same order, at any worker count, even while a flaky tier keeps the
// waste ledger and the breaker hook busy.
func TestParallelDeterminismAdmissionSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Admission = &admission.Config{}
	cfg.Faults = "cxl-flaky"
	cfg.Audit = true
	runSpanSet(t, cfg, "pingpong", "mtm")
}

// TestParallelDeterminismHealthSpans pins the determinism invariant on
// the health provenance trail: poison, transition, breaker-trip and
// drain spans carry virtual-clock timestamps and interval-scoped IDs, so
// the JSONL stream of a run that kills a DIMM and offlines its tier must
// be byte-identical at any worker count.
func TestParallelDeterminismHealthSpans(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Faults = "dimm-death"
	cfg.Audit = true
	runSpanSet(t, cfg, "gups", "mtm")
}

// fidelityJSON runs one fidelity-enabled configuration and returns the
// marshaled Fidelity block.
func fidelityJSON(t *testing.T, cfg Config, wl, sol string) []byte {
	t.Helper()
	res, err := Run(cfg, wl, sol)
	if err != nil {
		t.Fatalf("run (parallel %d): %v", cfg.Parallelism, err)
	}
	if res.Fidelity == nil {
		t.Fatal("fidelity-enabled run produced no Fidelity block")
	}
	b, err := json.Marshal(res.Fidelity)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestParallelDeterminismFidelity pins the oracle's determinism contract
// at parallelism 1, 2 and 8: the truth plane is accumulated per shard and
// merged in shard order, the hot-set cutoff is a pure function of the
// merged histogram, and the lineage ledger fills in serialized commit
// order — so the whole Fidelity block (accuracy means, lag tallies,
// heatmap rows, per-rule outcome lineage) must be byte-identical at every
// worker count, including under fault injection, and the outcome span
// events ride the same guarantee (the span stream is compared too).
func TestParallelDeterminismFidelity(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Fidelity = true
	cfg.Admission = &admission.Config{}
	variants := []struct{ name, faults string }{
		{"plain", ""},
		{"cxl-flaky", "cxl-flaky"},
	}
	for _, v := range variants {
		vc := cfg
		vc.Faults = v.faults
		vc.Audit = v.faults != ""
		t.Run("pingpong/mtm/"+v.name, func(t *testing.T) {
			c := vc
			c.Parallelism = 1
			base := fidelityJSON(t, c, "pingpong", "mtm")
			for _, p := range []int{2, 8} {
				cp := vc
				cp.Parallelism = p
				if got := fidelityJSON(t, cp, "pingpong", "mtm"); !bytes.Equal(base, got) {
					t.Errorf("Fidelity block diverged at parallelism %d:\np1: %s\np%d: %s", p, base, p, got)
				}
			}
		})
		t.Run("pingpong/mtm/"+v.name+"/spans", func(t *testing.T) {
			runSpanSet(t, vc, "pingpong", "mtm")
		})
	}
}

// TestParallelDeterminismLearn pins the adaptive admission layer's
// determinism contract at parallelism 1, 2 and 8: the learner ledger
// fills in serialized commit order and resolves on the serialized
// end-of-interval path, lane counters and the demand-scaled refill
// mutate only there too — so the whole Result (including the learned
// floors' downstream effects and the AdmissionLanes block) and the span
// stream (including per-decision floor attributes) must be
// byte-identical at every worker count, with and without fault
// injection.
func TestParallelDeterminismLearn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.AdmissionLearn = true
	cfg.AdmissionLanes = "default"
	variants := []struct{ name, faults string }{
		{"plain", ""},
		{"cxl-flaky", "cxl-flaky"},
	}
	for _, v := range variants {
		vc := cfg
		vc.Faults = v.faults
		vc.Audit = v.faults != ""
		t.Run("pingpong/mtm/"+v.name, func(t *testing.T) {
			c := vc
			c.Parallelism = 1
			base := resultJSON(t, c, "pingpong", "mtm")
			for _, p := range []int{2, 8} {
				cp := vc
				cp.Parallelism = p
				if got := resultJSON(t, cp, "pingpong", "mtm"); !bytes.Equal(base, got) {
					t.Errorf("Result diverged at parallelism %d:\np1: %s\np%d: %s", p, base, p, got)
				}
			}
		})
		t.Run("pingpong/mtm/"+v.name+"/spans", func(t *testing.T) {
			runSpanSet(t, vc, "pingpong", "mtm")
		})
	}
}

// resultJSON runs and marshals the whole Result.
func resultJSON(t *testing.T, cfg Config, wl, sol string) []byte {
	t.Helper()
	res, err := Run(cfg, wl, sol)
	if err != nil {
		t.Fatalf("run (parallel %d): %v", cfg.Parallelism, err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return b
}
