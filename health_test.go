package mtm

import (
	"errors"
	"testing"

	"mtm/internal/sim"
)

// TestDimmDeathEvacuatesAndOfflines is the acceptance run for the tier
// health subsystem: under the dimm-death scenario the targeted tier (PM0,
// node 2 on the Optane box) accumulates uncorrectable errors, drains its
// live pages to the surviving tiers, and goes Offline — with the run
// completing normally and every ledger balancing afterwards.
func TestDimmDeathEvacuatesAndOfflines(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.25
	cfg.Faults = "dimm-death"

	w, err := NewWorkload("gups", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolution("mtm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg)
	res, err := sim.Run(e, w, s, MaxIntervals)
	if err != nil {
		t.Fatalf("dimm-death run failed: %v", err)
	}
	if !res.Completed {
		t.Fatal("run did not complete")
	}

	if res.PoisonedPages == 0 {
		t.Fatal("dimm-death injected no memory errors")
	}
	if len(res.TierStates) != 4 || res.TierStates[2] != "Offline" {
		t.Fatalf("tier states = %v, want node 2 Offline", res.TierStates)
	}
	if res.DrainedBytes == 0 {
		t.Fatal("no pages drained before the tier went offline")
	}
	// Every live page evacuated: the dead tier holds nothing but its
	// quarantined frames, and no access can land there (poisoned pages
	// fault and refault elsewhere; offline tiers refuse reservations).
	if used := e.Sys.Used(2); used != 0 {
		t.Fatalf("offline tier still holds %d resident bytes", used)
	}
	if e.Sys.Quarantined(2) == 0 {
		t.Fatal("poisoned frames not quarantined")
	}
	if e.Sys.Allocatable(2) {
		t.Fatal("offline tier still allocatable")
	}
	if err := e.Audit(); err != nil {
		t.Fatalf("audit after dimm-death: %v", err)
	}
}

// TestFlakyTierRePlansMigrations pins the satellite fix for retry
// accounting: with every copy into DRAM failing, MTM's promotion path
// must abort, trip the breaker, and re-plan onto other tiers — without
// double-attributing the re-planned successes to the dead pair, which
// the audit's counter cross-check would catch.
func TestFlakyTierRePlansMigrations(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.25
	cfg.Faults = "tier-fail-prob=1,tier-fail-node=0"
	cfg.Audit = true

	res, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.MigrationAborts == 0 {
		t.Fatal("no aborts under a permanently failing destination")
	}
	if res.BreakerTrips == 0 {
		t.Fatal("breaker never tripped on the failing pair")
	}
	if res.PromotedBytes == 0 {
		t.Fatal("promotion stopped entirely instead of re-planning")
	}
}

// TestAuditSurvivesCapacityCrunch asserts the ledgers stay balanced even
// when a run dies of OOM mid-interval under fault pressure: the audit
// error (if any) is joined with the run error, so an unbalanced abort
// path would surface as *sim.AuditError here.
func TestAuditSurvivesCapacityCrunch(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.25
	cfg.Faults = "capacity-crunch"
	cfg.Audit = true

	_, err := Run(cfg, "gups", "mtm")
	var ae *sim.AuditError
	if errors.As(err, &ae) {
		t.Fatalf("ledgers drifted under capacity-crunch: %v", ae)
	}
	if err != nil && !errors.Is(err, sim.ErrOutOfMemory) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

// TestHealthFlagWithoutScenario covers Config.Health on a fault-free
// run: the subsystem is live (states reported, breakers armed) but every
// tier stays Online and the result matches a health-off run on all the
// simulation's observables.
func TestHealthFlagWithoutScenario(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Health = true
	cfg.Audit = true

	res, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(res.TierStates) == 0 {
		t.Fatal("health enabled but no tier states reported")
	}
	for i, s := range res.TierStates {
		if s != "Online" {
			t.Fatalf("tier %d = %s without any faults", i, s)
		}
	}
	if res.PoisonedPages != 0 || res.DrainedBytes != 0 || res.BreakerTrips != 0 {
		t.Fatalf("health counters moved on a fault-free run: %+v", res)
	}

	base := cfg
	base.Health = false
	bres, err := Run(base, "gups", "mtm")
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if res.ExecTime != bres.ExecTime || res.TotalAccesses != bres.TotalAccesses ||
		res.PromotedBytes != bres.PromotedBytes || res.DemotedBytes != bres.DemotedBytes {
		t.Fatal("enabling health with no faults perturbed the simulation")
	}
}
