package mtm_test

import (
	"testing"

	"mtm/internal/migrate"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/tier"
)

// TestScanSteadyZeroAlloc pins the zero-allocation property of the
// scan-steady profiling path: with fixed regions and one worker, an MTM
// profiling interval after warm-up reuses per-shard scratch (RNG, sample
// buffers, membership bitsets), per-region Samples/Observed capacity, and
// the cached shard function — so it never touches the heap. CI enforces
// the same bound on BenchmarkScanSteady via the benchjson -max-allocs
// gate; this test catches regressions without running benchmarks.
//
// Adaptive region formation and multi-worker runs are excluded on
// purpose: merge/split churn creates regions (which must allocate) and
// the pool's fork/join spawns goroutines.
func TestScanSteadyZeroAlloc(t *testing.T) {
	e := sim.NewEngine(tier.OptaneTopology(64), 1)
	e.Par = sim.NewPool(1)
	e.SetSolution(policy.NewFirstTouch())
	e.Interval = 10 * 1e9 / 64
	e.AS.THP = false
	v := e.AS.Alloc("b", 256<<20)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	pc.AdaptiveRegions = false
	m := profiler.NewMTM(pc)
	m.Attach(e)
	for i := 0; i < 3; i++ {
		m.Profile(e) // warm-up: size scratch, region buffers, shard tallies
	}
	if got := testing.AllocsPerRun(20, func() { m.Profile(e) }); got != 0 {
		t.Errorf("scan-steady Profile allocates %.1f objects per interval, want 0", got)
	}
}

// TestFidelitySampleZeroAlloc pins the zero-allocation property of the
// fidelity oracle's steady-state sample: with planes, shard scratch, the
// span list, and the cached phase closures sized by warm-up samples, one
// FidelitySample — truth histogram, estimate grading, rank agreement,
// lag transitions, heat row — never touches the heap. CI enforces the
// same bound on BenchmarkIntervalFidelitySample via the benchjson
// -max-allocs gate; this test catches regressions without benchmarks.
//
// The solution is MTM with fixed regions so the estimate path (the
// profiler's region table) is exercised, not skipped.
func TestFidelitySampleZeroAlloc(t *testing.T) {
	e := sim.NewEngine(tier.OptaneTopology(64), 1)
	e.Par = sim.NewPool(1)
	e.Interval = 10 * 1e9 / 64
	e.AS.THP = false
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	pc.AdaptiveRegions = false
	sol := policy.NewMTMVariant("mtm-fixed", profiler.NewMTM(pc), migrate.NewAdaptive())
	e.SetSolution(sol)
	e.EnableFidelity(sim.FidelityConfig{})
	v := e.AS.Alloc("b", 256<<20)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	sol.Prof.Attach(e)
	sol.Prof.Profile(e) // populate the region table the oracle grades
	for i := 0; i < 3; i++ {
		e.FidelitySample() // warm-up: size planes, shards, span list
	}
	if got := testing.AllocsPerRun(20, func() { e.FidelitySample() }); got != 0 {
		t.Errorf("fidelity sample allocates %.1f objects per interval, want 0", got)
	}
}
