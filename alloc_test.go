package mtm_test

import (
	"testing"

	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/tier"
)

// TestScanSteadyZeroAlloc pins the zero-allocation property of the
// scan-steady profiling path: with fixed regions and one worker, an MTM
// profiling interval after warm-up reuses per-shard scratch (RNG, sample
// buffers, membership bitsets), per-region Samples/Observed capacity, and
// the cached shard function — so it never touches the heap. CI enforces
// the same bound on BenchmarkScanSteady via the benchjson -max-allocs
// gate; this test catches regressions without running benchmarks.
//
// Adaptive region formation and multi-worker runs are excluded on
// purpose: merge/split churn creates regions (which must allocate) and
// the pool's fork/join spawns goroutines.
func TestScanSteadyZeroAlloc(t *testing.T) {
	e := sim.NewEngine(tier.OptaneTopology(64), 1)
	e.Par = sim.NewPool(1)
	e.SetSolution(policy.NewFirstTouch())
	e.Interval = 10 * 1e9 / 64
	e.AS.THP = false
	v := e.AS.Alloc("b", 256<<20)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	pc.AdaptiveRegions = false
	m := profiler.NewMTM(pc)
	m.Attach(e)
	for i := 0; i < 3; i++ {
		m.Profile(e) // warm-up: size scratch, region buffers, shard tallies
	}
	if got := testing.AllocsPerRun(20, func() { m.Profile(e) }); got != 0 {
		t.Errorf("scan-steady Profile allocates %.1f objects per interval, want 0", got)
	}
}
