// dbtier: tune MTM for an in-memory OLTP database (VoltDB running TPC-C).
// The example shows the knobs a deployment would actually turn — the
// profiling overhead target and the EMA weight α — and how each trades
// profiling cost against placement quality on a transactional workload
// whose hot set follows the clients' home warehouses.
package main

import (
	"fmt"
	"log"

	"mtm"
)

func main() {
	base := mtm.DefaultConfig()
	base.Scale = 256
	base.OpsFactor = 0.4

	fmt.Println("VoltDB/TPC-C: profiling overhead target sweep (Figure 8's knob)")
	fmt.Printf("%-8s %12s %12s %10s\n", "target", "exec", "app", "profiling")
	for _, target := range []float64{0.01, 0.03, 0.05, 0.10} {
		cfg := base
		cfg.OverheadTarget = target
		res, err := mtm.Run(cfg, "voltdb", "mtm")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-8s %12v %12v %10v\n", fmt.Sprintf("%.0f%%", target*100), res.ExecTime, res.App, res.Profiling)
	}

	fmt.Println("\nEMA weight α (Equation 2): history vs recency in migration decisions")
	fmt.Printf("%-8s %12s\n", "alpha", "exec")
	for _, alpha := range []float64{-1, 0.25, 0.5, 0.75, 1} {
		cfg := base
		cfg.Alpha = alpha // negative selects α=0 (history only)
		res, err := mtm.Run(cfg, "voltdb", "mtm")
		if err != nil {
			log.Fatal(err)
		}
		shown := alpha
		if shown < 0 {
			shown = 0
		}
		fmt.Printf("%-8.2f %12v\n", shown, res.ExecTime)
	}
}
