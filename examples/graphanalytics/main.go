// graphanalytics: terabyte-scale-style graph analysis (BFS and SSSP over
// a power-law graph in CSR layout) under different memory-tiering
// solutions — the read-dominated, frontier-driven access pattern the
// paper's intro motivates with single-machine graph engines.
//
// Read-mostly workloads are where MTM's asynchronous page copy shines:
// migrations rarely see concurrent writes, so almost all copy time leaves
// the critical path. The example reports the async share directly.
package main

import (
	"fmt"
	"log"

	"mtm"
)

func main() {
	cfg := mtm.DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.4

	for _, wl := range []string{"bfs", "sssp"} {
		fmt.Printf("== %s ==\n", wl)
		fmt.Printf("%-18s %10s %10s %10s %12s\n", "solution", "exec", "migration", "async copy", "promoted MB")
		for _, sol := range []string{"first-touch", "tiered-autonuma", "mtm", "mtm-wo-async"} {
			res, err := mtm.Run(cfg, wl, sol)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%-18s %10v %10v %10v %12d\n",
				res.Solution, res.ExecTime, res.Migration, res.Background, res.PromotedBytes>>20)
		}
		fmt.Println()
	}
	fmt.Println("'migration' is critical-path time; 'async copy' ran on helper")
	fmt.Println("threads. Compare mtm vs mtm-wo-async to see §7.2's effect on a")
	fmt.Println("read-only workload.")
}
