// Quickstart: run one workload under MTM and a baseline, and print the
// comparison — the five-minute tour of the library.
package main

import (
	"fmt"
	"log"

	"mtm"
)

func main() {
	cfg := mtm.DefaultConfig()
	cfg.Scale = 256     // ~7 GB simulated machine; 64 reproduces ratios at ~27 GB
	cfg.OpsFactor = 0.5 // half the paper-equivalent run length

	fmt.Println("Running GUPS under first-touch NUMA and MTM...")
	baseline, err := mtm.Run(cfg, "gups", "first-touch")
	if err != nil {
		log.Fatal(err)
	}
	withMTM, err := mtm.Run(cfg, "gups", "mtm")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\n%-16s %12s %12s %12s %12s\n", "solution", "exec", "app", "profiling", "migration")
	for _, r := range []*mtm.Result{baseline, withMTM} {
		fmt.Printf("%-16s %12v %12v %12v %12v\n", r.Solution, r.ExecTime, r.App, r.Profiling, r.Migration)
	}
	speedup := baseline.ExecTime.Seconds() / withMTM.ExecTime.Seconds()
	fmt.Printf("\nMTM speedup over first-touch: %.2fx\n", speedup)
	fmt.Printf("MTM promoted %d MB and demoted %d MB across %d profiling intervals.\n",
		withMTM.PromotedBytes>>20, withMTM.DemotedBytes>>20, withMTM.Intervals)
}
