// kvstore: evaluate page-management solutions for a Cassandra-style
// key-value store (YCSB workload A: zipfian keys, 50% reads / 50%
// updates) — the scenario where skewed row popularity makes hot-page
// identification pay off, but scattered hot rows stress region formation.
//
// The example sweeps every four-tier solution and reports execution time,
// overheads, and how much of the application's traffic each solution
// managed to serve from the two DRAM tiers.
package main

import (
	"fmt"
	"log"

	"mtm"
)

func main() {
	cfg := mtm.DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.4

	solutions := []string{
		"first-touch", "hmc",
		"vanilla-tiered-autonuma", "tiered-autonuma",
		"autotiering", "mtm",
	}

	topo := cfg.Topology()
	fmt.Println("Cassandra / YCSB-A on the four-tier Optane machine")
	fmt.Printf("%-26s %10s %10s %10s %9s\n", "solution", "exec", "profiling", "migration", "fast-tier")
	var base float64
	for _, sol := range solutions {
		res, err := mtm.Run(cfg, "cassandra", sol)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = res.ExecTime.Seconds()
		}
		// Share of application accesses served by DRAM nodes.
		var fast, total int64
		for i, n := range res.NodeAccesses {
			total += n
			if topo.Nodes[i].Name == "DRAM0" || topo.Nodes[i].Name == "DRAM1" {
				fast += n
			}
		}
		fmt.Printf("%-26s %10v %10v %10v %8.1f%%   (%.3fx first-touch)\n",
			res.Solution, res.ExecTime, res.Profiling, res.Migration,
			100*float64(fast)/float64(total), res.ExecTime.Seconds()/base)
	}
}
