package metrics

import (
	"strings"
	"testing"

	"mtm/internal/promlint"
)

// TestWritePromEscapesHelp is the regression test for the HELP-verbatim
// bug: a docstring containing a newline or backslash must be escaped per
// the text exposition format, or the newline splits the comment into a
// bogus second line that parsers read as a malformed sample.
func TestWritePromEscapesHelp(t *testing.T) {
	x := &Export{Instruments: []InstrumentExport{{
		Name:  "mtm_test_total",
		Kind:  "counter",
		Help:  "line one\nline two with a \\ backslash",
		Value: 3,
	}}}
	var b strings.Builder
	if err := x.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	want := `# HELP mtm_test_total line one\nline two with a \\ backslash`
	if !strings.Contains(out, want) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if strings.Count(out, "\n") != 3 { // HELP, TYPE, sample
		t.Errorf("raw newline leaked into the exposition:\n%q", out)
	}
	if err := promlint.Lint(strings.NewReader(out)); err != nil {
		t.Errorf("escaped exposition does not lint: %v\n%s", err, out)
	}
}
