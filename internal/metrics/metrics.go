// Package metrics is the simulator's in-process observability layer: a
// deterministic registry of counters, gauges and fixed-bucket histograms,
// plus a bounded ring of structured events (migration aborts, OOM
// emergencies, fault activations, admission-control deferrals).
//
// The design constraints come from the simulation engine it serves:
//
//   - Zero allocation on the hot path. Instruments are registered once
//     (at engine construction or profiler Attach) and written through
//     pre-resolved handles; Add/Set/Observe never allocate and never
//     look anything up by name.
//   - Deterministic. Everything is recorded from the engine's serialised
//     interval loop, in program order; the per-interval time series and
//     the event log are pure functions of the simulation, so two runs of
//     the same seed — at any sim.Pool Parallelism — export byte-identical
//     JSON. Sharded phases accumulate into per-shard scratch and record
//     the merged totals afterwards, exactly like the engine's Charge*
//     accounting; the registry's guard hook turns a write from inside a
//     parallel section into a panic.
//   - Nil-safe. A nil *Registry hands out nil instruments whose methods
//     are no-ops, so instrumented code needs no "metrics enabled?"
//     branches and disabled runs stay bit-identical to uninstrumented
//     ones.
//
// Once per profiling interval the engine calls Sample, appending a row of
// every scalar instrument to a time series that is embedded in sim.Result
// and exportable as JSON or Prometheus text exposition format (see
// export.go).
package metrics

import (
	"fmt"
	"regexp"
	"sort"
	"time"
)

// Label is one name/value pair attached to an instrument. Label order is
// the registration order; it is preserved in both export formats.
type Label struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// L builds a Label (shorthand for composite literals at call sites).
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Kind distinguishes the instrument types.
type Kind uint8

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "unknown"
}

// validName is the Prometheus metric-name grammar; registration panics on
// violations (a bad name is a programming error, not a runtime condition).
var validName = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)

// Counter is a monotonically increasing int64. The zero of a nil receiver
// is a no-op instrument.
type Counter struct {
	inst *instrument
	v    int64
}

// Add increases the counter by n (n >= 0). It panics on negative n and,
// via the registry guard, when called from inside a parallel section.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.inst.reg.check(c.inst.full)
	if n < 0 {
		panic(fmt.Sprintf("metrics: Counter %s Add(%d): counters are monotonic", c.inst.full, n))
	}
	c.v += n
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// AddDuration adds a virtual-time duration in nanoseconds.
func (c *Counter) AddDuration(d time.Duration) { c.Add(int64(d)) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v
}

// Gauge is a settable float64. The zero of a nil receiver is a no-op.
type Gauge struct {
	inst *instrument
	v    float64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.inst.reg.check(g.inst.full)
	g.v = v
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return g.v
}

// Histogram counts observations into fixed buckets chosen at registration
// (cumulative-bucket semantics at export, like Prometheus). The zero of a
// nil receiver is a no-op.
type Histogram struct {
	inst   *instrument
	bounds []float64 // upper bounds, ascending; +Inf bucket is implicit
	counts []int64   // len(bounds)+1
	sum    float64
	count  int64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.inst.reg.check(h.inst.full)
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i]++
	h.sum += v
	h.count++
}

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count
}

// Sum returns the sum of observations (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum
}

// Event is one structured occurrence worth auditing after a run: a
// migration abort, an OOM emergency, a fault-class activation, an
// admission-control deferral. Events are stamped with the profiling
// interval and virtual clock the registry was last advanced to (SetNow).
type Event struct {
	Interval int    `json:"interval"`
	ClockNs  int64  `json:"clock_ns"`
	Type     string `json:"type"`
	Detail   string `json:"detail,omitempty"`
	Value    int64  `json:"value,omitempty"`
}

// DefaultEventCapacity bounds the event ring when the registry is built
// with New. The ring keeps the FIRST events of a run and counts the
// overflow: early events carry the context that explains everything after
// them, and a fixed-prefix policy keeps the export deterministic under
// truncation.
const DefaultEventCapacity = 4096

// instrument is the registry's record of one registered metric.
type instrument struct {
	reg    *Registry
	kind   Kind
	name   string
	help   string
	labels []Label
	full   string // name plus rendered label set; the identity key

	c *Counter
	g *Gauge
	h *Histogram
}

// Registry owns the instruments, the event ring and the per-interval time
// series. It is not safe for concurrent use: like the simulation engine it
// serves, all writes happen on the serialised interval loop (the guard
// turns violations into panics). A nil *Registry is a valid no-op sink.
type Registry struct {
	guard func(what string)

	instruments []*instrument
	byFull      map[string]*instrument
	scalars     []*instrument // counters+gauges, registration order: the series columns

	events        []Event
	eventCap      int
	eventsDropped int64

	series      []Snapshot
	nowInterval int
	nowClockNs  int64
}

// New creates an empty registry with the default event capacity.
func New() *Registry {
	return &Registry{
		byFull:   map[string]*instrument{},
		eventCap: DefaultEventCapacity,
	}
}

// SetGuard installs a hook invoked before every instrument write and event
// emission; the engine points it at its parallel-section assertion so a
// recording from inside sim.Pool work panics exactly like Charge*/Note*.
func (r *Registry) SetGuard(g func(what string)) {
	if r == nil {
		return
	}
	r.guard = g
}

// SetEventCapacity resizes the event ring bound (existing events kept).
func (r *Registry) SetEventCapacity(n int) {
	if r == nil || n <= 0 {
		return
	}
	r.eventCap = n
}

func (r *Registry) check(what string) {
	if r.guard != nil {
		r.guard(what)
	}
}

// fullName renders the instrument identity: name{k="v",...}.
func fullName(name string, labels []Label) string {
	if len(labels) == 0 {
		return name
	}
	s := name + "{"
	for i, l := range labels {
		if i > 0 {
			s += ","
		}
		s += l.Key + `="` + l.Value + `"`
	}
	return s + "}"
}

// register validates and installs a new instrument, or returns the
// existing one when the same (name, labels) was registered before with the
// same kind — registration is idempotent so Attach-style hooks need no
// "already registered?" state.
func (r *Registry) register(kind Kind, name, help string, labels []Label) *instrument {
	if !validName.MatchString(name) {
		panic("metrics: invalid metric name " + name)
	}
	for _, l := range labels {
		if !validName.MatchString(l.Key) {
			panic("metrics: invalid label key " + l.Key + " on " + name)
		}
	}
	full := fullName(name, labels)
	if in, ok := r.byFull[full]; ok {
		if in.kind != kind {
			panic(fmt.Sprintf("metrics: %s re-registered as %s (was %s)", full, kind, in.kind))
		}
		return in
	}
	in := &instrument{reg: r, kind: kind, name: name, help: help, labels: labels, full: full}
	r.instruments = append(r.instruments, in)
	r.byFull[full] = in
	return in
}

// Counter registers (or finds) a counter. Returns nil on a nil registry.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	if r == nil {
		return nil
	}
	in := r.register(KindCounter, name, help, labels)
	if in.c == nil {
		in.c = &Counter{inst: in}
		r.scalars = append(r.scalars, in)
	}
	return in.c
}

// Gauge registers (or finds) a gauge. Returns nil on a nil registry.
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	if r == nil {
		return nil
	}
	in := r.register(KindGauge, name, help, labels)
	if in.g == nil {
		in.g = &Gauge{inst: in}
		r.scalars = append(r.scalars, in)
	}
	return in.g
}

// Histogram registers (or finds) a histogram with the given ascending
// upper bounds; an implicit +Inf bucket is appended. Returns nil on a nil
// registry. Histograms are exported whole but not included in the scalar
// time series (their per-interval count would duplicate a counter).
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	if r == nil {
		return nil
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram " + name + " bounds not strictly ascending")
		}
	}
	in := r.register(KindHistogram, name, help, labels)
	if in.h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		in.h = &Histogram{inst: in, bounds: b, counts: make([]int64, len(b)+1)}
	}
	return in.h
}

// SetNow advances the registry's notion of simulation time; subsequent
// events and samples are stamped with it. The engine calls it at interval
// boundaries.
func (r *Registry) SetNow(interval int, clockNs int64) {
	if r == nil {
		return
	}
	r.nowInterval = interval
	r.nowClockNs = clockNs
}

// Emit appends a structured event, stamped with the current (interval,
// clock). Past the ring capacity events are counted as dropped, keeping
// the recorded prefix deterministic.
func (r *Registry) Emit(typ, detail string, value int64) {
	if r == nil {
		return
	}
	r.check("event:" + typ)
	if len(r.events) >= r.eventCap {
		r.eventsDropped++
		return
	}
	r.events = append(r.events, Event{
		Interval: r.nowInterval,
		ClockNs:  r.nowClockNs,
		Type:     typ,
		Detail:   detail,
		Value:    value,
	})
}

// Events returns the recorded events (the bounded prefix).
func (r *Registry) Events() []Event {
	if r == nil {
		return nil
	}
	return r.events
}

// EventsDropped returns how many events overflowed the ring.
func (r *Registry) EventsDropped() int64 {
	if r == nil {
		return 0
	}
	return r.eventsDropped
}

// Snapshot is one row of the per-interval time series: the value of every
// scalar instrument (column order = Series().Columns) at the end of one
// profiling interval.
type Snapshot struct {
	Interval int       `json:"interval"`
	ClockNs  int64     `json:"clock_ns"`
	Values   []float64 `json:"values"`
}

// Sample appends one time-series row with the current values of all
// scalar instruments, stamped with the registry's current (interval,
// clock). The engine calls it once per profiling interval.
func (r *Registry) Sample() {
	if r == nil {
		return
	}
	r.check("sample")
	vals := make([]float64, len(r.scalars))
	for i, in := range r.scalars {
		switch in.kind {
		case KindCounter:
			vals[i] = float64(in.c.v)
		case KindGauge:
			vals[i] = in.g.v
		}
	}
	r.series = append(r.series, Snapshot{Interval: r.nowInterval, ClockNs: r.nowClockNs, Values: vals})
}

// Samples returns the collected time-series rows.
func (r *Registry) Samples() []Snapshot {
	if r == nil {
		return nil
	}
	return r.series
}

// sortedInstruments returns the instruments grouped by metric name (name
// ascending; label variants keep registration order within a name), the
// order both export formats use.
func (r *Registry) sortedInstruments() []*instrument {
	out := make([]*instrument, len(r.instruments))
	copy(out, r.instruments)
	sort.SliceStable(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
