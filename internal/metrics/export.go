package metrics

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
)

// Export is the serialisable snapshot of a registry at the end of a run:
// final instrument values, the per-interval time series, and the event
// log. It is embedded in sim.Result (so determinism tests compare it) and
// is what mtmsim writes to -metrics files. All slices are in deterministic
// order: instruments grouped by name, series columns in registration
// order, events and samples in emission order.
type Export struct {
	Instruments   []InstrumentExport `json:"instruments"`
	Series        *SeriesExport      `json:"series,omitempty"`
	Events        []Event            `json:"events,omitempty"`
	EventsDropped int64              `json:"events_dropped,omitempty"`
}

// InstrumentExport is one instrument's final state.
type InstrumentExport struct {
	Name   string  `json:"name"`
	Kind   string  `json:"kind"`
	Help   string  `json:"help,omitempty"`
	Labels []Label `json:"labels,omitempty"`
	// Value is the final counter/gauge value (unused for histograms).
	Value float64 `json:"value"`
	// Histogram state (cumulative bucket counts, Prometheus-style).
	Buckets []BucketExport `json:"buckets,omitempty"`
	Sum     float64        `json:"sum,omitempty"`
	Count   int64          `json:"count,omitempty"`
}

// BucketExport is one cumulative histogram bucket.
type BucketExport struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf is rendered
	// as the JSON string "+Inf" by UpperBoundLabel (math.Inf does not
	// round-trip through encoding/json), so the last bucket uses
	// Infinite=true instead of a bound.
	UpperBound float64 `json:"upper_bound,omitempty"`
	Infinite   bool    `json:"infinite,omitempty"`
	// CumulativeCount counts observations <= UpperBound.
	CumulativeCount int64 `json:"cumulative_count"`
}

// SeriesExport is the per-interval time series: one named column per
// scalar instrument, one row per profiling interval.
type SeriesExport struct {
	Columns []string   `json:"columns"`
	Samples []Snapshot `json:"samples"`
}

// Export snapshots the registry. Returns nil on a nil registry.
func (r *Registry) Export() *Export {
	if r == nil {
		return nil
	}
	x := &Export{
		Events:        r.events,
		EventsDropped: r.eventsDropped,
	}
	for _, in := range r.sortedInstruments() {
		ie := InstrumentExport{
			Name:   in.name,
			Kind:   in.kind.String(),
			Help:   in.help,
			Labels: in.labels,
		}
		switch in.kind {
		case KindCounter:
			ie.Value = float64(in.c.v)
		case KindGauge:
			ie.Value = in.g.v
		case KindHistogram:
			var cum int64
			for i, c := range in.h.counts {
				cum += c
				b := BucketExport{CumulativeCount: cum}
				if i < len(in.h.bounds) {
					b.UpperBound = in.h.bounds[i]
				} else {
					b.Infinite = true
				}
				ie.Buckets = append(ie.Buckets, b)
			}
			ie.Sum = in.h.sum
			ie.Count = in.h.count
		}
		x.Instruments = append(x.Instruments, ie)
	}
	if len(r.scalars) > 0 {
		se := &SeriesExport{Columns: make([]string, len(r.scalars)), Samples: r.series}
		for i, in := range r.scalars {
			se.Columns[i] = in.full
		}
		x.Series = se
	}
	return x
}

// escapeLabelValue escapes a label value per the Prometheus text format.
func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

// escapeHelp escapes HELP text per the Prometheus text format: only
// backslash and newline (quotes stay literal in HELP, unlike label
// values). An unescaped newline would split the docstring into a second
// exposition line and corrupt the stream.
func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func renderLabels(labels []Label, extra ...Label) string {
	all := append(append([]Label(nil), labels...), extra...)
	if len(all) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range all {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, `%s="%s"`, l.Key, escapeLabelValue(l.Value))
	}
	b.WriteByte('}')
	return b.String()
}

// WriteProm writes the export in Prometheus text exposition format
// (version 0.0.4): one HELP/TYPE header per metric family, then the
// family's sample lines; histograms expand to _bucket/_sum/_count.
func (x *Export) WriteProm(w io.Writer) error {
	lastName := ""
	for _, in := range x.Instruments {
		if in.Name != lastName {
			if in.Help != "" {
				if _, err := fmt.Fprintf(w, "# HELP %s %s\n", in.Name, escapeHelp(in.Help)); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", in.Name, in.Kind); err != nil {
				return err
			}
			lastName = in.Name
		}
		switch in.Kind {
		case "histogram":
			for _, b := range in.Buckets {
				le := "+Inf"
				if !b.Infinite {
					le = formatValue(b.UpperBound)
				}
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					in.Name, renderLabels(in.Labels, L("le", le)), b.CumulativeCount); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", in.Name, renderLabels(in.Labels), formatValue(in.Sum)); err != nil {
				return err
			}
			if _, err := fmt.Fprintf(w, "%s_count%s %d\n", in.Name, renderLabels(in.Labels), in.Count); err != nil {
				return err
			}
		default:
			if _, err := fmt.Fprintf(w, "%s%s %s\n", in.Name, renderLabels(in.Labels), formatValue(in.Value)); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteProm writes the registry's current state in Prometheus text
// exposition format. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	return r.Export().WriteProm(w)
}
