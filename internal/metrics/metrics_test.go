package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilRegistryIsNoOp(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "")
	g := r.Gauge("g", "")
	h := r.Histogram("h", "", []float64{1, 2})
	c.Add(5)
	c.Inc()
	g.Set(3)
	h.Observe(1.5)
	r.Emit("oom", "", 0)
	r.SetNow(1, 2)
	r.Sample()
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil instruments retained values")
	}
	if r.Export() != nil || r.Events() != nil || r.Samples() != nil {
		t.Fatal("nil registry exported state")
	}
	if err := r.WriteProm(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

func TestCounterGaugeHistogram(t *testing.T) {
	r := New()
	c := r.Counter("moves_total", "pages moved")
	c.Add(3)
	c.Inc()
	if c.Value() != 4 {
		t.Fatalf("counter = %d, want 4", c.Value())
	}
	g := r.Gauge("contention", "factor")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v", g.Value())
	}
	h := r.Histogram("lat", "ns", []float64{10, 100})
	for _, v := range []float64{5, 50, 500, 10} { // 10 lands in the first bucket (<=)
		h.Observe(v)
	}
	if h.Count() != 4 || h.Sum() != 565 {
		t.Fatalf("hist count=%d sum=%v", h.Count(), h.Sum())
	}
	x := r.Export()
	var hist *InstrumentExport
	for i := range x.Instruments {
		if x.Instruments[i].Name == "lat" {
			hist = &x.Instruments[i]
		}
	}
	if hist == nil {
		t.Fatal("histogram not exported")
	}
	// Cumulative: <=10 -> 2, <=100 -> 3, +Inf -> 4.
	want := []int64{2, 3, 4}
	for i, b := range hist.Buckets {
		if b.CumulativeCount != want[i] {
			t.Fatalf("bucket %d cumulative %d, want %d", i, b.CumulativeCount, want[i])
		}
	}
	if !hist.Buckets[2].Infinite {
		t.Fatal("last bucket not +Inf")
	}
}

func TestCounterPanicsOnNegative(t *testing.T) {
	r := New()
	c := r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("negative Add did not panic")
		}
	}()
	c.Add(-1)
}

func TestRegistrationIdempotentAndKindChecked(t *testing.T) {
	r := New()
	a := r.Counter("x_total", "", L("n", "0"))
	b := r.Counter("x_total", "", L("n", "0"))
	if a != b {
		t.Fatal("same (name, labels) returned distinct counters")
	}
	if r.Counter("x_total", "", L("n", "1")) == a {
		t.Fatal("distinct labels shared an instrument")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("kind clash did not panic")
		}
	}()
	r.Gauge("x_total", "", L("n", "0"))
}

func TestGuardFiresOnWrites(t *testing.T) {
	r := New()
	var guarded []string
	blocked := false
	r.SetGuard(func(what string) {
		guarded = append(guarded, what)
		if blocked {
			panic("metrics: " + what + " inside parallel section")
		}
	})
	c := r.Counter("x_total", "")
	c.Inc()
	r.Emit("oom", "", 0)
	r.Sample()
	if len(guarded) != 3 {
		t.Fatalf("guard saw %d writes, want 3: %v", len(guarded), guarded)
	}
	blocked = true
	defer func() {
		if recover() == nil {
			t.Fatal("guarded write did not panic")
		}
	}()
	c.Inc()
}

func TestEventRingBounded(t *testing.T) {
	r := New()
	r.SetEventCapacity(3)
	r.SetNow(7, 123)
	for i := 0; i < 5; i++ {
		r.Emit("migration-abort", "dram0->pm0", int64(i))
	}
	if len(r.Events()) != 3 {
		t.Fatalf("ring kept %d events, want 3", len(r.Events()))
	}
	if r.EventsDropped() != 2 {
		t.Fatalf("dropped = %d, want 2", r.EventsDropped())
	}
	ev := r.Events()[0]
	if ev.Interval != 7 || ev.ClockNs != 123 || ev.Type != "migration-abort" || ev.Value != 0 {
		t.Fatalf("event stamp wrong: %+v", ev)
	}
	x := r.Export()
	if x.EventsDropped != 2 || len(x.Events) != 3 {
		t.Fatal("export lost event accounting")
	}
}

func TestSeriesSampling(t *testing.T) {
	r := New()
	c := r.Counter("a_total", "")
	g := r.Gauge("b", "")
	r.Histogram("h", "", []float64{1}) // histograms excluded from series
	for i := 0; i < 3; i++ {
		c.Add(int64(i + 1))
		g.Set(float64(10 * i))
		r.SetNow(i, int64(i)*100)
		r.Sample()
	}
	x := r.Export()
	if x.Series == nil {
		t.Fatal("no series")
	}
	if got := x.Series.Columns; len(got) != 2 || got[0] != "a_total" || got[1] != "b" {
		t.Fatalf("columns = %v", got)
	}
	if len(x.Series.Samples) != 3 {
		t.Fatalf("%d samples, want 3", len(x.Series.Samples))
	}
	last := x.Series.Samples[2]
	if last.Interval != 2 || last.Values[0] != 6 || last.Values[1] != 20 {
		t.Fatalf("last sample %+v", last)
	}
}

func TestExportJSONDeterministic(t *testing.T) {
	build := func() *Registry {
		r := New()
		r.Counter("z_total", "last registered, first alphabetically exported")
		r.Counter("a_total", "", L("node", "dram0"))
		r.Gauge("m", "")
		r.SetNow(0, 1)
		r.Emit("oom", "vma p 3", 3)
		r.Sample()
		return r
	}
	b1, err := json.Marshal(build().Export())
	if err != nil {
		t.Fatal(err)
	}
	b2, _ := json.Marshal(build().Export())
	if !bytes.Equal(b1, b2) {
		t.Fatal("identical registries exported different JSON")
	}
}

func TestWriteProm(t *testing.T) {
	r := New()
	r.Counter("mtm_pages_moved_total", "pages moved", L("src", "dram0"), L("dst", "pm0")).Add(12)
	r.Counter("mtm_pages_moved_total", "pages moved", L("src", "pm0"), L("dst", "dram0")).Add(3)
	r.Gauge("mtm_contention", "factor", L("node", `we"ird`)).Set(1.25)
	h := r.Histogram("mtm_interval_app_ns", "per-interval app time", []float64{1000, 1e6})
	h.Observe(500)
	h.Observe(2e6)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE mtm_pages_moved_total counter",
		`mtm_pages_moved_total{src="dram0",dst="pm0"} 12`,
		`mtm_pages_moved_total{src="pm0",dst="dram0"} 3`,
		`mtm_contention{node="we\"ird"} 1.25`,
		"# TYPE mtm_interval_app_ns histogram",
		`mtm_interval_app_ns_bucket{le="1000"} 1`,
		`mtm_interval_app_ns_bucket{le="+Inf"} 2`,
		"mtm_interval_app_ns_sum 2000500",
		"mtm_interval_app_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prom output missing %q:\n%s", want, out)
		}
	}
	// One TYPE header per family even with several label variants.
	if strings.Count(out, "# TYPE mtm_pages_moved_total") != 1 {
		t.Fatal("duplicate family header")
	}
}

func TestInvalidNamesPanic(t *testing.T) {
	r := New()
	for _, bad := range []string{"3x", "a-b", "a b", ""} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("name %q accepted", bad)
				}
			}()
			r.Counter(bad, "")
		}()
	}
	defer func() {
		if recover() == nil {
			t.Fatal("bad label key accepted")
		}
	}()
	r.Counter("ok_total", "", L("bad-key", "v"))
}
