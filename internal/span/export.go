package span

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Export is a serialisable snapshot of a trace. It embeds into
// sim.Result, so its JSON form must be deterministic: spans are in
// emission order, attribute lists in insertion order, and the meta map
// is rendered with sorted keys by encoding/json.
type Export struct {
	Meta    map[string]string `json:",omitempty"`
	Spans   []Span
	Dropped int64 `json:",omitempty"`
}

// MarshalJSON renders an attribute as {"key":...,"value":...} so the
// typed payload survives the trip through sim.Result's JSON form.
func (a Attr) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Key   string `json:"key"`
		Value any    `json:"value"`
	}{a.Key, a.Value()})
}

// jsonlHeader is the self-describing first line of the JSONL stream.
type jsonlHeader struct {
	Format  string            `json:"format"`
	Version int               `json:"version"`
	Meta    map[string]string `json:"meta,omitempty"`
	Spans   int               `json:"spans"`
	Dropped int64             `json:"dropped,omitempty"`
}

// JSONLFormat identifies the stream in its header line.
const JSONLFormat = "mtm-spans"

// JSONLVersion is bumped on breaking schema changes.
const JSONLVersion = 1

// jsonlLine is one span in the JSONL stream. Attributes collapse to a
// plain object (map keys are sorted by encoding/json, keeping the byte
// stream deterministic).
type jsonlLine struct {
	ID       uint64         `json:"id"`
	Parent   uint64         `json:"parent,omitempty"`
	Interval int            `json:"interval"`
	Cat      string         `json:"cat"`
	Name     string         `json:"name"`
	Start    int64          `json:"ts_ns"`
	Dur      int64          `json:"dur_ns"`
	Instant  bool           `json:"instant,omitempty"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

func attrMap(attrs []Attr) map[string]any {
	if len(attrs) == 0 {
		return nil
	}
	m := make(map[string]any, len(attrs))
	for _, a := range attrs {
		m[a.Key] = a.Value()
	}
	return m
}

// WriteJSONL writes the self-describing JSONL stream: a header line
// ({"format":"mtm-spans",...}) followed by one JSON object per span.
func (x *Export) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	err := enc.Encode(jsonlHeader{
		Format: JSONLFormat, Version: JSONLVersion,
		Meta: x.Meta, Spans: len(x.Spans), Dropped: x.Dropped,
	})
	if err != nil {
		return err
	}
	for i := range x.Spans {
		sp := &x.Spans[i]
		line := jsonlLine{
			ID: sp.ID, Parent: sp.Parent, Interval: sp.Interval,
			Cat: sp.Cat, Name: sp.Name, Start: sp.Start, Dur: sp.Dur,
			Instant: sp.Instant, Attrs: attrMap(sp.Attrs),
		}
		if err := enc.Encode(line); err != nil {
			return err
		}
	}
	return nil
}

// WriteChrome writes Chrome trace-event JSON (the JSON-object form with a
// traceEvents array), loadable in Perfetto or chrome://tracing.
// Timestamps and durations convert from virtual nanoseconds to the
// format's microseconds. Interval and phase spans land on one track
// (tid 1), detail spans on another (tid 2), so the per-interval
// app/profiling/migration breakdown reads as a lane above the pipeline
// internals.
func (x *Export) WriteChrome(w io.Writer) error {
	evs := make([]map[string]any, 0, len(x.Spans)+len(x.Meta)+1)
	evs = append(evs, map[string]any{
		"ph": "M", "pid": 1, "tid": 0, "name": "process_name",
		"args": map[string]any{"name": "mtmsim (virtual time)"},
	})
	keys := make([]string, 0, len(x.Meta))
	for k := range x.Meta {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		evs = append(evs, map[string]any{
			"ph": "M", "pid": 1, "tid": 0, "name": "trace_meta:" + k,
			"args": map[string]any{"name": x.Meta[k]},
		})
	}
	for i := range x.Spans {
		sp := &x.Spans[i]
		tid := 2
		if sp.Cat == "interval" || sp.Cat == "phase" {
			tid = 1
		}
		ev := map[string]any{
			"name": sp.Name, "cat": sp.Cat, "pid": 1, "tid": tid,
			"ts": float64(sp.Start) / 1000.0,
		}
		if args := attrMap(sp.Attrs); args != nil {
			ev["args"] = args
		}
		if sp.Instant {
			ev["ph"] = "i"
			ev["s"] = "t"
		} else {
			ev["ph"] = "X"
			ev["dur"] = float64(sp.Dur) / 1000.0
		}
		evs = append(evs, ev)
	}
	out := map[string]any{"traceEvents": evs, "displayTimeUnit": "ms"}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSONLHeader decodes and validates the stream's header line.
func ReadJSONLHeader(line []byte) (meta map[string]string, spans int, dropped int64, err error) {
	var h jsonlHeader
	if err := json.Unmarshal(line, &h); err != nil {
		return nil, 0, 0, fmt.Errorf("span: bad JSONL header: %w", err)
	}
	if h.Format != JSONLFormat {
		return nil, 0, 0, fmt.Errorf("span: not a %s stream (format %q)", JSONLFormat, h.Format)
	}
	if h.Version != JSONLVersion {
		return nil, 0, 0, fmt.Errorf("span: unsupported stream version %d", h.Version)
	}
	return h.Meta, h.Spans, h.Dropped, nil
}
