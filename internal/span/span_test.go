package span

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestDeterministicIDs: span IDs are a pure function of (interval,
// emission order), so two tracers fed the same calls produce identical
// streams.
func TestDeterministicIDs(t *testing.T) {
	mk := func() *Tracer {
		tr := New(Config{})
		tr.BeginInterval(0)
		tr.Begin("interval", "interval", 0)
		tr.Emit("profiling", "scan", 10, 5, I("shard", 0))
		tr.Event("decision", "promote", 15, S("rule", "r"))
		tr.End(20)
		tr.BeginInterval(1)
		tr.Begin("interval", "interval", 20)
		tr.End(40)
		return tr
	}
	a, b := mk().Export(), mk().Export()
	ab, _ := json.Marshal(a)
	bb, _ := json.Marshal(b)
	if !bytes.Equal(ab, bb) {
		t.Fatalf("identical call sequences exported different traces:\n%s\n%s", ab, bb)
	}
	// Interval 1's root restarts the per-interval counter.
	if got := a.Spans[3].ID; got != uint64(2)<<32|1 {
		t.Errorf("interval-1 root ID = %#x, want %#x", got, uint64(2)<<32|1)
	}
	if a.Spans[1].Parent != a.Spans[0].ID || a.Spans[2].Parent != a.Spans[0].ID {
		t.Error("children not parented to the open interval span")
	}
}

// TestGuardFires: the installed guard runs before every mutation.
func TestGuardFires(t *testing.T) {
	var calls []string
	tr := New(Config{})
	tr.SetGuard(func(what string) { calls = append(calls, what) })
	tr.SetMeta("k", "v")
	tr.BeginInterval(0)
	tr.Begin("c", "n", 0)
	tr.Emit("c", "e", 0, 1)
	tr.Event("c", "i", 0)
	tr.End(1)
	tr.End(2) // empty stack: still guarded
	if len(calls) != 7 {
		t.Fatalf("guard ran %d times (%v), want 7", len(calls), calls)
	}
	for _, want := range []string{"Begin:n", "Emit:e", "Event:i", "End"} {
		found := false
		for _, c := range calls {
			if c == want {
				found = true
			}
		}
		if !found {
			t.Errorf("guard never saw %q (%v)", want, calls)
		}
	}
}

// TestMaxSpansKeepsPairing: spans past the cap are dropped and counted,
// and Begin/End pairing survives the drop (a dropped Begin still consumes
// the matching End).
func TestMaxSpansKeepsPairing(t *testing.T) {
	tr := New(Config{MaxSpans: 2})
	tr.BeginInterval(0)
	tr.Begin("c", "kept-root", 0)
	tr.Begin("c", "kept-child", 1)
	tr.Begin("c", "dropped", 2) // over the cap
	tr.End(3)                   // closes "dropped" (no-op on storage)
	tr.End(4, I("x", 1))        // closes kept-child
	tr.End(5)                   // closes kept-root
	if tr.Len() != 2 {
		t.Fatalf("kept %d spans, want 2", tr.Len())
	}
	if tr.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", tr.Dropped())
	}
	x := tr.Export()
	if x.Spans[1].Name != "kept-child" || x.Spans[1].Dur != 3 {
		t.Fatalf("pairing broke across the drop: %+v", x.Spans[1])
	}
	if len(x.Spans[1].Attrs) != 1 {
		t.Fatalf("End attrs lost: %+v", x.Spans[1])
	}
}

// TestCloseAll closes every open span, deepest first.
func TestCloseAll(t *testing.T) {
	tr := New(Config{})
	tr.BeginInterval(0)
	tr.Begin("c", "a", 0)
	tr.Begin("c", "b", 5)
	tr.CloseAll(10)
	x := tr.Export()
	if x.Spans[0].Dur != 10 || x.Spans[1].Dur != 5 {
		t.Fatalf("durations %d/%d, want 10/5", x.Spans[0].Dur, x.Spans[1].Dur)
	}
	tr.CloseAll(20) // idempotent on an empty stack
}

// TestWriteJSONL: header first, then one valid JSON object per span, and
// the header round-trips through ReadJSONLHeader.
func TestWriteJSONL(t *testing.T) {
	tr := New(Config{})
	tr.SetMeta("solution", "X")
	tr.BeginInterval(0)
	tr.Begin("interval", "interval", 0, I("index", 0))
	tr.Event("decision", "promote", 3, S("rule", "r"), F("whi", 1.5))
	tr.End(7)
	var buf bytes.Buffer
	if err := tr.Export().WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("empty output")
	}
	meta, n, dropped, err := ReadJSONLHeader(sc.Bytes())
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if meta["solution"] != "X" || n != 2 || dropped != 0 {
		t.Fatalf("header meta=%v spans=%d dropped=%d", meta, n, dropped)
	}
	var lines int
	for sc.Scan() {
		var l struct {
			Attrs map[string]any `json:"attrs"`
		}
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
		if lines == 2 {
			if l.Attrs["rule"] != "r" || l.Attrs["whi"] != 1.5 {
				t.Fatalf("event attrs %v", l.Attrs)
			}
		}
	}
	if lines != n {
		t.Fatalf("%d lines, header says %d", lines, n)
	}
	// A non-span stream is rejected.
	if _, _, _, err := ReadJSONLHeader([]byte(`{"format":"other","version":1}`)); err == nil {
		t.Fatal("foreign header accepted")
	}
}

// TestWriteChrome: the trace-event JSON parses, carries metadata and
// complete events, and renders instants with the instant phase.
func TestWriteChrome(t *testing.T) {
	tr := New(Config{})
	tr.SetMeta("workload", "W")
	tr.BeginInterval(0)
	tr.Begin("interval", "interval", 0)
	tr.Emit("profiling", "scan", 100, 50)
	tr.Event("emergency", "oom", 120)
	tr.End(1000)
	var buf bytes.Buffer
	if err := tr.Export().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome output is not JSON: %v\n%s", err, buf.String())
	}
	phases := map[string]int{}
	for _, ev := range doc.TraceEvents {
		phases[ev["ph"].(string)]++
	}
	if phases["M"] == 0 || phases["X"] != 2 || phases["i"] != 1 {
		t.Fatalf("event phases %v, want metadata + 2 complete + 1 instant", phases)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("displayTimeUnit missing")
	}
}

// TestNilTracerNoOps: every method is safe on a nil tracer.
func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	tr.SetGuard(func(string) {})
	tr.SetMeta("k", "v")
	tr.BeginInterval(0)
	tr.Begin("c", "n", 0)
	tr.Emit("c", "e", 0, 1)
	tr.Event("c", "i", 0)
	tr.End(1)
	tr.CloseAll(2)
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Export() != nil {
		t.Fatal("nil tracer not inert")
	}
}

// TestAttrJSON: attributes render as {"key":...,"value":...} pairs with
// native types.
func TestAttrJSON(t *testing.T) {
	b, err := json.Marshal([]Attr{S("s", "v"), I("i", 7), F("f", 0.5)})
	if err != nil {
		t.Fatal(err)
	}
	want := `[{"key":"s","value":"v"},{"key":"i","value":7},{"key":"f","value":0.5}]`
	if string(b) != want {
		t.Fatalf("attrs = %s, want %s", b, want)
	}
	if !strings.Contains(string(b), `"value":7`) {
		t.Fatal("int attr lost its type")
	}
}
