// Package span is a deterministic, virtual-clock span tracer for the
// simulation's interval pipeline. It records causally-linked spans —
// interval → per-shard profile scans → classify/plan decisions →
// migration → per-tier-pair transfers → emergency events — with
// timestamps taken from the engine's virtual clock and IDs from a
// per-interval counter, so the trace is a pure function of the simulated
// execution: byte-identical at any Parallelism setting.
//
// The tracer mirrors the confinement contract of internal/metrics: every
// mutating call runs through a guard hook that the engine points at its
// assertOwned check, so a span emitted from inside Engine.Parallel panics
// exactly like Charge*/Note*/metrics writes do. Sharded phases compute
// per-shard scratch and the serialised caller emits their spans in shard
// order afterwards.
//
// All methods are nil-safe: a nil *Tracer no-ops, so call sites that
// carry no attributes need no "enabled?" branches. Sites that build
// attribute lists must still guard on the engine's SpansEnabled — the
// variadic attribute slice is allocated by the caller before the nil
// check can run.
package span

// attrKind discriminates the payload of an Attr.
type attrKind uint8

const (
	kindString attrKind = iota
	kindInt
	kindFloat
)

// Attr is one key/value annotation on a span or event. Construct with S,
// I, or F; the zero value is a string attr with an empty value.
type Attr struct {
	Key  string
	kind attrKind
	s    string
	i    int64
	f    float64
}

// S returns a string attribute.
func S(key, v string) Attr { return Attr{Key: key, kind: kindString, s: v} }

// I returns an integer attribute.
func I(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// F returns a float attribute.
func F(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// Value returns the attribute's payload as an interface value (for JSON
// rendering).
func (a Attr) Value() any {
	switch a.kind {
	case kindInt:
		return a.i
	case kindFloat:
		return a.f
	}
	return a.s
}

// Span is one recorded span or instant event. Start and Dur are virtual
// nanoseconds; Instant events have Dur 0 and render as instants in the
// Chrome export.
type Span struct {
	ID       uint64 `json:"id"`
	Parent   uint64 `json:"parent,omitempty"`
	Interval int    `json:"interval"`
	Cat      string `json:"cat"`
	Name     string `json:"name"`
	Start    int64  `json:"ts_ns"`
	Dur      int64  `json:"dur_ns"`
	Instant  bool   `json:"instant,omitempty"`
	Attrs    []Attr `json:"attrs,omitempty"`
}

// Config bounds the tracer.
type Config struct {
	// MaxSpans caps the recorded span count; the first MaxSpans spans are
	// kept and the rest are counted in the export's Dropped field (the
	// same first-N policy as the metrics event ring, so the kept prefix
	// is deterministic). 0 selects DefaultMaxSpans.
	MaxSpans int
}

// DefaultMaxSpans bounds a trace to a workable file size while holding
// every span of the evaluation-scale runs.
const DefaultMaxSpans = 1 << 17

// Tracer records spans. Not safe for concurrent use — the engine binds
// its guard so misuse from a parallel shard panics deterministically.
type Tracer struct {
	max      int
	guard    func(what string)
	meta     map[string]string
	spans    []Span
	dropped  int64
	interval int
	seq      uint32
	stack    []int // indices of open spans; -1 marks a dropped open
}

// New creates a tracer positioned at interval -1 (the setup phase before
// the first profiling interval).
func New(cfg Config) *Tracer {
	max := cfg.MaxSpans
	if max <= 0 {
		max = DefaultMaxSpans
	}
	return &Tracer{max: max, meta: map[string]string{}, interval: -1}
}

// SetGuard installs the ownership check run before every mutation; the
// engine points it at assertOwned so writes inside Parallel panic.
func (t *Tracer) SetGuard(fn func(what string)) {
	if t == nil {
		return
	}
	t.guard = fn
}

func (t *Tracer) check(what string) {
	if t.guard != nil {
		t.guard(what)
	}
}

// SetMeta records a trace-level key/value (solution, workload, seed);
// exported in the JSONL header and the Chrome metadata events.
func (t *Tracer) SetMeta(key, value string) {
	if t == nil {
		return
	}
	t.check("SetMeta")
	t.meta[key] = value
}

// BeginInterval advances the tracer to the given profiling interval and
// restarts the per-interval ID counter, making span IDs a pure function
// of (interval, emission order).
func (t *Tracer) BeginInterval(interval int) {
	if t == nil {
		return
	}
	t.check("BeginInterval")
	t.interval = interval
	t.seq = 0
}

// nextID returns the next deterministic span ID: the interval (offset so
// the setup phase is 0) in the high 32 bits, the per-interval sequence in
// the low.
func (t *Tracer) nextID() uint64 {
	t.seq++
	return uint64(uint32(t.interval+1))<<32 | uint64(t.seq)
}

// parentID is the innermost open, kept span.
func (t *Tracer) parentID() uint64 {
	for j := len(t.stack) - 1; j >= 0; j-- {
		if t.stack[j] >= 0 {
			return t.spans[t.stack[j]].ID
		}
	}
	return 0
}

func (t *Tracer) push(sp Span) int {
	if len(t.spans) >= t.max {
		t.dropped++
		return -1
	}
	t.spans = append(t.spans, sp)
	return len(t.spans) - 1
}

// Begin opens a span at startNs; close it with End. Spans nest: a Begin
// inside an open span records that span as its parent.
func (t *Tracer) Begin(cat, name string, startNs int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.check("Begin:" + name)
	sp := Span{
		ID: t.nextID(), Parent: t.parentID(), Interval: t.interval,
		Cat: cat, Name: name, Start: startNs, Attrs: attrs,
	}
	t.stack = append(t.stack, t.push(sp))
}

// End closes the innermost open span at endNs, appending any extra
// attributes. Without an open span it no-ops.
func (t *Tracer) End(endNs int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.check("End")
	if len(t.stack) == 0 {
		return
	}
	idx := t.stack[len(t.stack)-1]
	t.stack = t.stack[:len(t.stack)-1]
	if idx < 0 {
		return
	}
	sp := &t.spans[idx]
	if d := endNs - sp.Start; d > 0 {
		sp.Dur = d
	}
	sp.Attrs = append(sp.Attrs, attrs...)
}

// Emit records a complete span (start and duration known up front),
// parented to the innermost open span.
func (t *Tracer) Emit(cat, name string, startNs, durNs int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.check("Emit:" + name)
	if durNs < 0 {
		durNs = 0
	}
	t.push(Span{
		ID: t.nextID(), Parent: t.parentID(), Interval: t.interval,
		Cat: cat, Name: name, Start: startNs, Dur: durNs, Attrs: attrs,
	})
}

// Event records an instant event at atNs, parented to the innermost open
// span.
func (t *Tracer) Event(cat, name string, atNs int64, attrs ...Attr) {
	if t == nil {
		return
	}
	t.check("Event:" + name)
	t.push(Span{
		ID: t.nextID(), Parent: t.parentID(), Interval: t.interval,
		Cat: cat, Name: name, Start: atNs, Instant: true, Attrs: attrs,
	})
}

// CloseAll ends every open span at endNs — the interval boundary's
// defensive sweep, closing the interval root and any straggler a panic
// or early return left open.
func (t *Tracer) CloseAll(endNs int64) {
	if t == nil {
		return
	}
	for len(t.stack) > 0 {
		t.End(endNs)
	}
}

// Len returns the number of recorded (kept) spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.spans)
}

// Dropped returns how many spans the MaxSpans cap discarded.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Export snapshots the trace for serialisation. Nil on a nil tracer.
func (t *Tracer) Export() *Export {
	if t == nil {
		return nil
	}
	meta := make(map[string]string, len(t.meta))
	for k, v := range t.meta {
		meta[k] = v
	}
	spans := make([]Span, len(t.spans))
	copy(spans, t.spans)
	return &Export{Meta: meta, Spans: spans, Dropped: t.dropped}
}
