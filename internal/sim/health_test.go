package sim

import (
	"errors"
	"testing"
	"time"

	"mtm/internal/health"
	"mtm/internal/tier"
)

// mustAudit cross-checks the engine's ledgers and fails the test on any
// drift. Every engine test ends with it: the auditor is cheap and the
// invariants must hold in every state a test can construct.
func mustAudit(t *testing.T, e *Engine) {
	t.Helper()
	if err := e.Audit(); err != nil {
		t.Fatalf("audit: %v", err)
	}
}

func newHealthEngine(topo *tier.Topology) *Engine {
	e := NewEngine(topo, 1)
	e.Interval = 10 * time.Millisecond
	e.EnableHealth(health.Config{})
	return e
}

func TestPoisonQuarantinesAndRecovers(t *testing.T) {
	e := newHealthEngine(tier.TwoTierTopology(8*tier.MB, 8*tier.MB))
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)

	if !e.PoisonPage(v, 0) {
		t.Fatal("PoisonPage refused a resident page")
	}
	if !v.IsPoisoned(0) || v.Present(0) {
		t.Fatal("page not torn down")
	}
	if e.Sys.Quarantined(0) != v.PageSize || e.Sys.Used(0) != 0 {
		t.Fatalf("quarantine accounting: used=%d quarantined=%d", e.Sys.Used(0), e.Sys.Quarantined(0))
	}
	if e.PoisonedPages != 1 {
		t.Fatalf("PoisonedPages = %d", e.PoisonedPages)
	}
	if e.TierHealth(0) != health.StateDegraded {
		t.Fatalf("tier state = %v, want Degraded after first error", e.TierHealth(0))
	}
	mustAudit(t, e)

	// The next access pays the machine-check penalty and refaults the
	// page onto a healthy frame; no access ever lands on a poisoned page.
	before := e.AppTimeThisInterval()
	e.Access(v, 0, 1, 0, 0)
	if e.PoisonRecoveries != 1 {
		t.Fatalf("PoisonRecoveries = %d", e.PoisonRecoveries)
	}
	// AppTimeThisInterval amortises the interval's work over Threads.
	want := e.HealthConfig().RecoveryPenalty / time.Duration(e.Threads)
	if got := e.AppTimeThisInterval() - before; got < want {
		t.Fatalf("recovery charged %v, want >= %v", got, want)
	}
	if v.IsPoisoned(0) || !v.Present(0) {
		t.Fatal("page not refaulted after recovery")
	}
	// The dead frame never comes back: capacity stays quarantined.
	if e.Sys.Quarantined(0) != v.PageSize {
		t.Fatal("quarantined bytes returned")
	}
	mustAudit(t, e)
}

func TestPoisonPageRefusals(t *testing.T) {
	// Without health, PoisonPage is a no-op; with health, non-resident
	// pages cannot be poisoned (no frame to kill).
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)
	if e.PoisonPage(v, 0) {
		t.Fatal("PoisonPage succeeded without EnableHealth")
	}

	eh := newHealthEngine(tier.TwoTierTopology(8*tier.MB, 8*tier.MB))
	eh.SetSolution(&fixedSolution{node: 0})
	eh.beginInterval()
	u := eh.AS.Alloc("u", 4*tier.MB)
	if eh.PoisonPage(u, 0) {
		t.Fatal("PoisonPage succeeded on a non-resident page")
	}
	mustAudit(t, eh)
}

func TestBreakerTripsViaAbortedTransactions(t *testing.T) {
	e := newHealthEngine(tier.TwoTierTopology(8*tier.MB, 8*tier.MB))
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)
	e.Access(v, 1, 1, 0, 0)

	if !e.DestUsable(1, 0) {
		t.Fatal("fresh pair not usable")
	}
	aborts := e.HealthConfig().TripAborts
	for i := 0; i < aborts; i++ {
		if e.BreakerTrips != 0 {
			t.Fatalf("tripped after %d aborts, want %d", i, aborts)
		}
		if !e.MoveBegin(v, 0, 0) {
			t.Fatal("MoveBegin failed with room available")
		}
		e.MoveAborted(v, 0, 0)
	}
	if e.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", e.BreakerTrips)
	}
	if e.MigrationAborts != int64(aborts) {
		t.Fatalf("MigrationAborts = %d", e.MigrationAborts)
	}
	if e.DestUsable(1, 0) {
		t.Fatal("pair usable while the breaker is open")
	}
	if e.DestUsable(1, 0) {
		t.Fatal("repeated DestUsable flipped the breaker early")
	}
	state, consec, until, trips := e.BreakerEvidence(1, 0)
	if state != "open" || consec != 0 || trips != 1 || until <= e.SpanClockNs() {
		t.Fatalf("evidence = %s/%d/%d/%d", state, consec, until, trips)
	}
	// An aborted transaction moved nothing: page still on node 1.
	if v.Node(0) != 1 {
		t.Fatalf("aborted move relocated the page to %d", v.Node(0))
	}
	mustAudit(t, e)

	// The open breaker into node 0 degrades it at the next interval.
	e.endInterval()
	e.beginInterval()
	if e.TierHealth(0) != health.StateDegraded {
		t.Fatalf("tier 0 = %v, want Degraded under an open breaker", e.TierHealth(0))
	}
	mustAudit(t, e)
}

func TestMoveTransactionProtocolPanics(t *testing.T) {
	e := newHealthEngine(tier.TwoTierTopology(8*tier.MB, 8*tier.MB))
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)

	expectPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		f()
	}
	expectPanic("MoveCommit without MoveBegin", func() { e.MoveCommit(v, 0, 0) })
	expectPanic("MoveAborted without MoveBegin", func() { e.MoveAborted(v, 0, 0) })
	if !e.MoveBegin(v, 0, 0) {
		t.Fatal("MoveBegin failed")
	}
	expectPanic("nested MoveBegin", func() { e.MoveBegin(v, 1, 0) })
	e.MoveCommit(v, 0, 0)
	e.NotePromotion(v.PageSize) // committed moves must be attributed
	mustAudit(t, e)
}

func TestDrainCascadesPastFullTier(t *testing.T) {
	// DRAM 12MB, CXL0 32MB, CXL1 64MB. With CXL0 packed full, draining
	// DRAM must cascade past it and land every page on CXL1 (tier N+2).
	e := newHealthEngine(tier.CXLTopology(8192))
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	fill := e.AS.Alloc("fill", 32*tier.MB)
	for i := 0; i < fill.NPages; i++ {
		e.Access(fill, i, 1, 0, 0)
	}
	if e.Sys.Free(1) != 0 {
		t.Fatalf("setup: CXL0 free = %d, want 0", e.Sys.Free(1))
	}
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("v", 4*tier.MB)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}

	e.DrainTier(0)
	if e.TierHealth(0) != health.StateDraining {
		t.Fatalf("tier 0 = %v after DrainTier", e.TierHealth(0))
	}
	e.endInterval()

	for i := 0; i < v.NPages; i++ {
		if v.Node(i) != 2 {
			t.Fatalf("page %d drained to node %d, want CXL1 (cascade past full CXL0)", i, v.Node(i))
		}
	}
	if e.Sys.Used(0) != 0 {
		t.Fatalf("DRAM still holds %d bytes", e.Sys.Used(0))
	}
	if e.DrainedBytes != v.Bytes() {
		t.Fatalf("DrainedBytes = %d, want %d", e.DrainedBytes, v.Bytes())
	}
	if e.DrainStallErr() != nil {
		t.Fatalf("unexpected stall: %v", e.DrainStallErr())
	}
	// Empty after the drain: the next interval's drain step offlines it.
	e.beginInterval()
	e.endInterval()
	if e.TierHealth(0) != health.StateOffline {
		t.Fatalf("tier 0 = %v, want Offline once empty", e.TierHealth(0))
	}
	mustAudit(t, e)
}

func TestDrainStallsWithNoDestination(t *testing.T) {
	// Both tiers full: draining node 0 finds no destination. The drain
	// must surface a typed error, leave the pages in place, and retry
	// (not offline the tier, not lose pages).
	e := newHealthEngine(tier.TwoTierTopology(4*tier.MB, 4*tier.MB))
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("v", 8*tier.MB)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}
	if e.Sys.Free(0) != 0 || e.Sys.Free(1) != 0 {
		t.Fatal("setup: machine not full")
	}
	onNode0 := func() (n int) {
		for i := 0; i < v.NPages; i++ {
			if v.Node(i) == 0 {
				n++
			}
		}
		return
	}
	before := onNode0()

	e.DrainTier(0)
	e.endInterval()

	err := e.DrainStallErr()
	if err == nil || !errors.Is(err, health.ErrNoDestination) {
		t.Fatalf("DrainStallErr = %v, want wrapped health.ErrNoDestination", err)
	}
	if e.DrainStalls != 1 {
		t.Fatalf("DrainStalls = %d", e.DrainStalls)
	}
	if got := onNode0(); got != before {
		t.Fatalf("stalled drain moved pages: %d -> %d", before, got)
	}
	if e.TierHealth(0) != health.StateDraining {
		t.Fatalf("tier 0 = %v, want still Draining", e.TierHealth(0))
	}
	mustAudit(t, e)

	// Free room on node 1: the next interval's drain makes progress.
	e.beginInterval()
	for i := 0; i < v.NPages; i++ {
		if v.Node(i) == 1 {
			e.Sys.Release(1, v.PageSize)
			v.Unmap(i)
		}
	}
	e.endInterval()
	if onNode0() != 0 {
		t.Fatal("drain did not resume after room appeared")
	}
	mustAudit(t, e)
}

func TestPoisonLastVictimDuringOOMEmergency(t *testing.T) {
	// One huge page per tier, both resident. Poisoning the PM page—the
	// only frame an emergency demotion could free into—just before a new
	// fault leaves the machine with no reclaimable room at all: the fault
	// must fail with a graceful typed OOM, and the ledgers must balance.
	e := newHealthEngine(tier.TwoTierTopology(2*tier.MB, 2*tier.MB))
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)
	e.Access(v, 1, 1, 0, 0)
	if v.Node(0) != 0 || v.Node(1) != 1 {
		t.Fatalf("setup: pages on %d/%d", v.Node(0), v.Node(1))
	}

	if !e.PoisonPage(v, 1) {
		t.Fatal("poison failed")
	}
	// PM now has zero free bytes (its whole page is quarantined), so
	// demoting the DRAM resident cannot free room.
	if e.Sys.Free(1) != 0 {
		t.Fatalf("PM free = %d after quarantine, want 0", e.Sys.Free(1))
	}
	extra := e.AS.Alloc("extra", 2*tier.MB)
	e.Access(extra, 0, 1, 0, 0)
	if !errors.Is(e.Err(), ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", e.Err())
	}
	if e.EmergencyDemotions != 0 {
		t.Fatalf("EmergencyDemotions = %d, want 0 (nowhere to demote)", e.EmergencyDemotions)
	}
	mustAudit(t, e)
}

func TestHealthDisabledIsInert(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	if !e.DestUsable(1, 0) || e.HealthEnabled() {
		t.Fatal("health leaked into a plain engine")
	}
	if e.TierStates() != nil {
		t.Fatal("TierStates non-nil without health")
	}
	e.DrainTier(0) // must be a no-op, not a panic
	e.endInterval()
	if e.Sys.Allocatable(0) != true {
		t.Fatal("DrainTier acted without health")
	}
	mustAudit(t, e)
}
