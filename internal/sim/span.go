package sim

import (
	"time"

	"mtm/internal/span"
)

// Span tracing: the engine owns an optional span.Tracer recording the
// causally-linked pipeline of every interval (interval → per-shard
// profile scans → plan/decisions → migration → per-tier-pair transfers →
// emergency events) in virtual time. Like the metrics registry, the
// tracer is serialized-loop-only: its guard is bound to assertOwned, so
// an emit from inside Engine.Parallel panics. Sharded phases emit their
// per-shard spans on the serialised path after the Parallel call, in
// shard order, from per-shard scratch — which keeps the trace a pure
// function of the simulated execution and byte-identical at any
// Parallelism.
//
// The helpers below are nil-safe no-ops when tracing is disabled, but
// call sites that build attribute lists must branch on SpansEnabled
// first: the variadic slice is allocated by the caller, and the
// zero-allocation guarantee for disabled tracing (see
// TestSpanHelpersZeroAllocDisabled) depends on not constructing it.

// EnableSpans attaches a span tracer to the engine (idempotent) and
// returns it. The tracer starts at interval -1, covering setup work
// before the first profiling interval.
func (e *Engine) EnableSpans(cfg span.Config) *span.Tracer {
	if e.sp == nil {
		e.sp = span.New(cfg)
		e.sp.SetGuard(func(what string) { e.assertOwned("span(" + what + ")") })
	}
	return e.sp
}

// Spans returns the engine's tracer (nil unless EnableSpans was called).
// All span.Tracer methods are nil-safe.
func (e *Engine) Spans() *span.Tracer { return e.sp }

// SpansEnabled reports whether span tracing is active. Sites that build
// attribute lists must check it before constructing them.
func (e *Engine) SpansEnabled() bool { return e.sp != nil }

// SpansExport snapshots the trace for Result embedding; nil when tracing
// is disabled.
func (e *Engine) SpansExport() *span.Export { return e.sp.Export() }

// SpanClockNs is the virtual timestamp for span emission during an
// interval: the committed clock plus the time this interval has
// accumulated so far (normalised app time, then profiling, then
// migration — the order endInterval advances the clock in). It is a pure
// function of engine accounting state, so span timestamps are identical
// at any Parallelism.
func (e *Engine) SpanClockNs() int64 {
	return int64(e.clock + e.AppTimeThisInterval() + e.intProf + e.intMig)
}

// SpanBegin opens a span at the current virtual timestamp.
func (e *Engine) SpanBegin(cat, name string, attrs ...span.Attr) {
	if e.sp == nil {
		return
	}
	e.sp.Begin(cat, name, e.SpanClockNs(), attrs...)
}

// SpanEnd closes the innermost open span at the current virtual
// timestamp.
func (e *Engine) SpanEnd(attrs ...span.Attr) {
	if e.sp == nil {
		return
	}
	e.sp.End(e.SpanClockNs(), attrs...)
}

// SpanEmit records a complete span with explicit start and duration —
// the shape used by sharded phases, which reconstruct per-shard
// sub-spans from scratch state after the Parallel call.
func (e *Engine) SpanEmit(cat, name string, startNs, durNs int64, attrs ...span.Attr) {
	if e.sp == nil {
		return
	}
	e.sp.Emit(cat, name, startNs, durNs, attrs...)
}

// SpanEvent records an instant event at the current virtual timestamp.
func (e *Engine) SpanEvent(cat, name string, attrs ...span.Attr) {
	if e.sp == nil {
		return
	}
	e.sp.Event(cat, name, e.SpanClockNs(), attrs...)
}

// spansBeginInterval rolls the tracer to the new interval and opens its
// root span at the committed clock.
func (e *Engine) spansBeginInterval() {
	if e.sp == nil {
		return
	}
	e.sp.BeginInterval(e.Intervals)
	e.sp.Begin("interval", "interval", int64(e.clock), span.I("index", int64(e.Intervals)))
}

// spansEndInterval emits the interval's three phase-summary spans (app,
// profiling, migration — laid end to end exactly as endInterval advances
// the clock) and closes the interval root. Runs before the clock
// advance, with the final accumulator values; the phase spans therefore
// reproduce the Result time breakdown exactly, which cmd/spanreport
// cross-checks.
func (e *Engine) spansEndInterval(app time.Duration) {
	if e.sp == nil {
		return
	}
	start := int64(e.clock)
	var acc int64
	for _, n := range e.intAccesses {
		acc += n
	}
	e.sp.Emit("phase", "app", start, int64(app), span.I("accesses", acc))
	e.sp.Emit("phase", "profiling", start+int64(app), int64(e.intProf))
	e.sp.Emit("phase", "migration", start+int64(app)+int64(e.intProf), int64(e.intMig),
		span.I("promoted_bytes", e.intPromoted),
		span.I("demoted_bytes", e.intDemoted),
		span.I("background_ns", int64(e.intBg)))
	e.sp.CloseAll(start + int64(app) + int64(e.intProf) + int64(e.intMig))
}
