// End-of-run invariant auditor: cross-checks the three ledgers the
// engine keeps about the same physical facts — page-table residency,
// per-tier capacity accounting, and the migration/metrics counters —
// and reports any drift. The audit is pure reads; it can run between
// intervals or after a run, on healthy and failed (OOM) engines alike.
package sim

import (
	"fmt"
	"strings"

	"mtm/internal/health"
	"mtm/internal/tier"
)

// AuditError lists every invariant violation one Audit call found.
type AuditError struct {
	Problems []string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("sim: audit failed: %s", strings.Join(e.Problems, "; "))
}

// Audit cross-checks the engine's accounting invariants and returns an
// *AuditError describing every violation, or nil when all hold:
//
//   - residency: for every node, present page bytes + capacity tax +
//     opaque solution carve-outs (NoteOpaqueReserve) equal the used
//     ledger, and used + quarantined fits in capacity;
//   - quarantine: quarantined bytes across the machine equal the bytes
//     poisoned over the run (dead frames never come back);
//   - offline tiers hold no resident pages;
//   - moves: committed transaction bytes equal promoted + demoted +
//     drained volume (aborted transactions contribute to none of them);
//   - metrics (when enabled): the per-pair moved/aborted counters and
//     the health counters agree with the engine's own totals.
func (e *Engine) Audit() error {
	var probs []string
	nodes := e.Sys.Topo.Nodes

	resident := make([]int64, len(nodes))
	for _, v := range e.AS.VMAs() {
		for i := 0; i < v.NPages; i++ {
			if v.Present(i) {
				n := v.Node(i)
				if int(n) < 0 || int(n) >= len(nodes) {
					probs = append(probs, fmt.Sprintf("present page %s/%d on invalid node %d", v.Name, i, n))
					continue
				}
				resident[n] += v.PageSize
			} else if v.Node(i) != tier.Invalid {
				probs = append(probs, fmt.Sprintf("non-present page %s/%d still bound to node %d", v.Name, i, v.Node(i)))
			}
		}
	}

	var quarantined int64
	for i := range nodes {
		n := tier.NodeID(i)
		var tax, opaque int64
		if e.taxBytes != nil {
			tax = e.taxBytes[i]
		}
		if e.opaqueBytes != nil {
			opaque = e.opaqueBytes[i]
		}
		if want, got := resident[i]+tax+opaque, e.Sys.Used(n); want != got {
			probs = append(probs, fmt.Sprintf(
				"%s residency: present %d + tax %d + opaque %d = %d, used ledger says %d",
				nodes[i].Name, resident[i], tax, opaque, want, got))
		}
		if e.Sys.Used(n)+e.Sys.Quarantined(n)+e.Sys.ShadowBytes(n) > e.Sys.Capacity(n) {
			probs = append(probs, fmt.Sprintf(
				"%s over capacity: used %d + quarantined %d + shadow %d > capacity %d",
				nodes[i].Name, e.Sys.Used(n), e.Sys.Quarantined(n), e.Sys.ShadowBytes(n), e.Sys.Capacity(n)))
		}
		quarantined += e.Sys.Quarantined(n)
		if e.TierHealth(n) == health.StateOffline && resident[i] > 0 {
			probs = append(probs, fmt.Sprintf(
				"%s is Offline but still holds %d resident bytes", nodes[i].Name, resident[i]))
		}
	}
	if quarantined != e.poisonedBytes {
		probs = append(probs, fmt.Sprintf(
			"quarantine ledger: tiers hold %d quarantined bytes, %d bytes were poisoned",
			quarantined, e.poisonedBytes))
	}

	// Shadow-frame reconciliation: the capacity ledger, the table, and
	// the VMA planes describe the same retained frames.
	if e.shd != nil {
		perNode := e.shd.table.PerNodeBytes()
		for i := range nodes {
			if got := e.Sys.ShadowBytes(tier.NodeID(i)); got != perNode[i] {
				probs = append(probs, fmt.Sprintf(
					"%s shadow ledger: system holds %d shadow bytes, table entries sum to %d",
					nodes[i].Name, got, perNode[i]))
			}
		}
		if tc, pc := e.shd.table.Count(), len(e.shd.pages); tc != pc {
			probs = append(probs, fmt.Sprintf(
				"shadow table: %d entries but %d page back-references", tc, pc))
		}
		var planeCount int
		for _, v := range e.AS.VMAs() {
			planeCount += v.ShadowedCount()
		}
		if planeCount != e.shd.table.Count() {
			probs = append(probs, fmt.Sprintf(
				"shadow planes: %d pages marked shadowed, table holds %d entries",
				planeCount, e.shd.table.Count()))
		}
	} else {
		for i := range nodes {
			if got := e.Sys.ShadowBytes(tier.NodeID(i)); got != 0 {
				probs = append(probs, fmt.Sprintf(
					"%s holds %d shadow bytes with no shadow table attached", nodes[i].Name, got))
			}
		}
	}
	if e.FreeDemotionBytes > e.DemotedBytes+e.intDemoted {
		probs = append(probs, fmt.Sprintf(
			"free demotions: %d bytes flipped exceeds %d bytes demoted",
			e.FreeDemotionBytes, e.DemotedBytes+e.intDemoted))
	}
	if e.FreeDemotions > e.committedPages {
		probs = append(probs, fmt.Sprintf(
			"free demotions: %d flips exceed %d committed moves",
			e.FreeDemotions, e.committedPages))
	}

	// Committed-move ledger. intPromoted/intDemoted cover a partially
	// accounted interval when Audit runs mid-run; endInterval zeroes them
	// after folding into the totals.
	moved := e.PromotedBytes + e.intPromoted + e.DemotedBytes + e.intDemoted + e.DrainedBytes
	if e.committedBytes != moved {
		probs = append(probs, fmt.Sprintf(
			"move ledger: %d bytes committed, but promoted+demoted+drained = %d",
			e.committedBytes, moved))
	}

	if e.met != nil {
		var movedPages, abortedPages int64
		for s := range e.met.movedPages {
			for d := range e.met.movedPages[s] {
				movedPages += e.met.movedPages[s][d].Value()
				abortedPages += e.met.abortedPages[s][d].Value()
			}
		}
		if movedPages != e.committedPages {
			probs = append(probs, fmt.Sprintf(
				"metrics: per-pair moved pages %d != committed transactions %d",
				movedPages, e.committedPages))
		}
		if abortedPages != e.MigrationAborts {
			probs = append(probs, fmt.Sprintf(
				"metrics: per-pair aborted pages %d != migration aborts %d",
				abortedPages, e.MigrationAborts))
		}
		if got := e.met.aborts.Value(); got != e.MigrationAborts {
			probs = append(probs, fmt.Sprintf(
				"metrics: abort counter %d != migration aborts %d", got, e.MigrationAborts))
		}
		if got := e.met.poisonedPages.Value(); got != e.PoisonedPages {
			probs = append(probs, fmt.Sprintf(
				"metrics: poisoned-page counter %d != engine total %d", got, e.PoisonedPages))
		}
		if got := e.met.drainedBytes.Value(); got != e.DrainedBytes {
			probs = append(probs, fmt.Sprintf(
				"metrics: drained-bytes counter %d != engine total %d", got, e.DrainedBytes))
		}
		if got := e.met.breakerTrips.Value(); got != e.BreakerTrips {
			probs = append(probs, fmt.Sprintf(
				"metrics: breaker-trip counter %d != engine total %d", got, e.BreakerTrips))
		}
		if got := e.met.shadowFlips.Value(); got != e.FreeDemotions {
			probs = append(probs, fmt.Sprintf(
				"metrics: shadow-flip counter %d != free demotions %d", got, e.FreeDemotions))
		}
		if got := e.met.shadowHits.Value(); got != e.ShadowHits {
			probs = append(probs, fmt.Sprintf(
				"metrics: shadow-hit counter %d != engine total %d", got, e.ShadowHits))
		}
		if got := e.met.shadowInvalidations.Value(); got != e.ShadowInvalidations {
			probs = append(probs, fmt.Sprintf(
				"metrics: shadow-invalidation counter %d != engine total %d", got, e.ShadowInvalidations))
		}
		if got := e.met.shadowDropped.Value(); got != e.shadowDrops {
			probs = append(probs, fmt.Sprintf(
				"metrics: shadow-drop counter %d != engine total %d", got, e.shadowDrops))
		}
		if got := e.met.shadowRetained.Value(); got != e.shadowRetains {
			probs = append(probs, fmt.Sprintf(
				"metrics: shadow-retain counter %d != engine total %d", got, e.shadowRetains))
		}
	}

	if len(probs) == 0 {
		return nil
	}
	return &AuditError{Problems: probs}
}
