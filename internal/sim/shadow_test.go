package sim

import (
	"testing"
	"time"

	"mtm/internal/health"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// newShadowEngine builds a two-tier engine (node 0 fast DRAM, node 1
// slow PM) with the shadow table attached.
func newShadowEngine(dram, pm int64) *Engine {
	e := NewEngine(tier.TwoTierTopology(dram, pm), 1)
	e.Interval = 10 * time.Millisecond
	e.EnableShadow()
	return e
}

// promoteWithShadow faults page idx onto node 1 (via the fixed solution)
// and promotes it to node 0 through the transactional path, retaining
// the slow frame as a shadow.
func promoteWithShadow(t *testing.T, e *Engine, v *vm.VMA, idx int) {
	t.Helper()
	e.Access(v, idx, 1, 0, 0)
	if v.Node(idx) != 1 {
		t.Fatalf("setup: page %d on node %d, want 1", idx, v.Node(idx))
	}
	if !e.MoveBegin(v, idx, 0) {
		t.Fatalf("setup: MoveBegin(%d) failed", idx)
	}
	e.MoveCommit(v, idx, 0)
	e.NotePromotion(v.PageSize) // committed moves must be attributed
	if v.Node(idx) != 0 {
		t.Fatalf("setup: page %d not promoted", idx)
	}
}

func TestPromotionRetainsShadow(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)

	if e.ShadowCount() != 1 {
		t.Fatalf("shadow count = %d, want 1", e.ShadowCount())
	}
	// The slow frame moved from the used ledger to the shadow ledger.
	if e.Sys.Used(1) != 0 || e.Sys.ShadowBytes(1) != v.PageSize {
		t.Fatalf("node1 used=%d shadow=%d, want 0/%d", e.Sys.Used(1), e.Sys.ShadowBytes(1), v.PageSize)
	}
	if !v.Shadowed(0) || !v.ShadowValid(0) {
		t.Fatal("shadow planes not set after promotion")
	}
	mustAudit(t, e)

	// Demoting back is a free flip: no copy bytes, the shadow frame
	// returns to the used ledger, and the fast frame is released.
	dst, ok := e.FlipDemote(v, 0)
	if !ok || dst != 1 {
		t.Fatalf("FlipDemote = (%d,%v), want (1,true)", dst, ok)
	}
	if v.Node(0) != 1 {
		t.Fatalf("page on node %d after flip, want 1", v.Node(0))
	}
	if e.FreeDemotions != 1 || e.FreeDemotionBytes != v.PageSize {
		t.Fatalf("free demotions = %d/%d bytes", e.FreeDemotions, e.FreeDemotionBytes)
	}
	if e.ShadowHits != 1 {
		t.Fatalf("shadow hits = %d, want 1", e.ShadowHits)
	}
	if e.ShadowCount() != 0 || e.Sys.ShadowBytes(1) != 0 {
		t.Fatal("flip did not consume the shadow")
	}
	if e.Sys.Used(0) != 0 || e.Sys.Used(1) != v.PageSize {
		t.Fatalf("used after flip: n0=%d n1=%d", e.Sys.Used(0), e.Sys.Used(1))
	}
	mustAudit(t, e)
}

func TestDemotionDoesNotRetainShadow(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	e.Access(v, 0, 1, 0, 0)
	if !e.MoveBegin(v, 0, 1) {
		t.Fatal("MoveBegin failed")
	}
	e.MoveCommit(v, 0, 1)
	e.NoteDemotion(v.PageSize)
	// A demotion releases its fast source frame normally: retention is
	// promotion-only (a fast-tier shadow would burn scarce capacity).
	if e.ShadowCount() != 0 || e.Sys.Used(0) != 0 {
		t.Fatalf("demotion retained: shadows=%d n0 used=%d", e.ShadowCount(), e.Sys.Used(0))
	}
	mustAudit(t, e)
}

func TestWriteInvalidatesShadowAndSyncRevalidates(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)

	// A read leaves the shadow valid; the first write invalidates it.
	e.Access(v, 0, 1, 0, 0)
	if !v.ShadowValid(0) || e.ShadowInvalidations != 0 {
		t.Fatal("read invalidated the shadow")
	}
	e.Access(v, 0, 2, 1, 0)
	if v.ShadowValid(0) {
		t.Fatal("write left the shadow valid")
	}
	if e.ShadowInvalidations != 1 {
		t.Fatalf("invalidations = %d, want 1", e.ShadowInvalidations)
	}
	// Repeat writes do not re-count: the shadow is already diverged.
	e.Access(v, 0, 2, 1, 0)
	if e.ShadowInvalidations != 1 {
		t.Fatalf("invalidations after second write = %d, want 1", e.ShadowInvalidations)
	}
	// An invalidated shadow cannot be flipped to.
	if _, ok := e.FlipDemote(v, 0); ok {
		t.Fatal("flip to a diverged shadow succeeded")
	}

	// The quiet-gated background sync skips the page while its dirty bit
	// is set (harvesting it), and re-copies on the next pass.
	if got := e.ShadowSync(v.PageSize); got != 0 {
		t.Fatalf("first sync pass copied %d bytes, want 0 (quiet gate)", got)
	}
	if got := e.ShadowSync(v.PageSize); got != v.PageSize {
		t.Fatalf("second sync pass copied %d bytes, want %d", got, v.PageSize)
	}
	if !v.ShadowValid(0) || e.ShadowSyncBytes != v.PageSize {
		t.Fatal("sync did not revalidate the shadow")
	}
	if _, ok := e.FlipDemote(v, 0); !ok {
		t.Fatal("flip after resync failed")
	}
	mustAudit(t, e)
}

func TestShadowSyncRangeBypassesQuietGate(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)
	e.Access(v, 0, 2, 1, 0) // diverge

	// The targeted write-back copies immediately, dirty or not: the
	// caller has already chosen this range as a demotion victim.
	if got := e.ShadowSyncRange(v, 0, v.NPages, v.PageSize); got != v.PageSize {
		t.Fatalf("range sync copied %d bytes, want %d", got, v.PageSize)
	}
	if dst := e.ShadowDemoteDest(v, 0, v.NPages); dst != 1 {
		t.Fatalf("demote dest = %d, want 1", dst)
	}
	if _, ok := e.FlipDemote(v, 0); !ok {
		t.Fatal("flip after targeted sync failed")
	}
	mustAudit(t, e)
}

// TestPoisonDropsShadowDuringDemotion is the regression test for the
// poison/shadow interaction: a page whose fast copy is poisoned between
// retention and demotion must lose its shadow — the flip path must
// refuse rather than resurrect a mapping onto a frame whose owner died.
func TestPoisonDropsShadowDuringDemotion(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.EnableHealth(health.Config{})
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)
	if e.ShadowCount() != 1 {
		t.Fatal("setup: no shadow retained")
	}

	// Poison strikes the promoted (fast) copy mid-lifecycle.
	if !e.PoisonPage(v, 0) {
		t.Fatal("PoisonPage refused")
	}
	if e.ShadowCount() != 0 || e.Sys.ShadowBytes(1) != 0 {
		t.Fatal("poisoned page still holds a shadow")
	}
	if v.Shadowed(0) {
		t.Fatal("shadow planes survived poison")
	}
	if _, ok := e.FlipDemote(v, 0); ok {
		t.Fatal("flip of a poisoned page succeeded")
	}
	mustAudit(t, e)
}

// memErrPlane is a minimal FaultPlane that reports memory errors on one
// node for one interval — enough to drive healthBeginInterval.
type memErrPlane struct {
	node  tier.NodeID
	pages int
}

func (p *memErrPlane) Attach(sockets, nodes int)  {}
func (p *memErrPlane) BeginInterval(interval int) {}
func (p *memErrPlane) PageBusy(v *vm.VMA, idx int, dst tier.NodeID) (bool, time.Duration) {
	return false, 0
}
func (p *memErrPlane) DestPressure(n tier.NodeID) bool           { return false }
func (p *memErrPlane) SampleDropFrac() float64                   { return 0 }
func (p *memErrPlane) LinkBWFactor(s int, n tier.NodeID) float64 { return 1 }
func (p *memErrPlane) MemErrorPages(n tier.NodeID) int {
	if n == p.node {
		k := p.pages
		p.pages = 0
		return k
	}
	return 0
}

// TestMemErrorsDropShadowsOnNode: memory errors on the slow tier must
// drop every shadow it backs — the dying device's retained copies are
// not trustworthy, whether or not the error hit them directly.
func TestMemErrorsDropShadowsOnNode(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 16*tier.MB)
	e.EnableHealth(health.Config{})
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 8*tier.MB)
	// Two resident pages on node 1, two promoted with shadows on node 1.
	e.Access(v, 2, 1, 0, 0)
	e.Access(v, 3, 1, 0, 0)
	promoteWithShadow(t, e, v, 0)
	promoteWithShadow(t, e, v, 1)
	if e.ShadowCount() != 2 {
		t.Fatalf("setup: shadows = %d, want 2", e.ShadowCount())
	}

	// The next interval delivers the error burst on node 1. The plane is
	// attached only now so its one-shot burst is not consumed by the setup
	// interval, before any shadow exists.
	e.SetFaultPlane(&memErrPlane{node: 1, pages: 1})
	e.endInterval()
	e.beginInterval()
	if e.ShadowCount() != 0 {
		t.Fatalf("shadows after memory errors = %d, want 0", e.ShadowCount())
	}
	if e.PoisonedPages == 0 {
		t.Fatal("no page was poisoned")
	}
	mustAudit(t, e)
}

// TestShadowsReclaimedUnderPressure: shadow frames are soft capacity —
// a reservation that would not fit reclaims them oldest-first, both on
// the transactional move path and the fault path.
func TestShadowsReclaimedUnderPressure(t *testing.T) {
	// Node 1 (4 pages): after two promotions it holds 2 resident + 2
	// shadow pages — nominally full.
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 16*tier.MB)
	e.Access(v, 2, 1, 0, 0)
	e.Access(v, 3, 1, 0, 0)
	promoteWithShadow(t, e, v, 0)
	promoteWithShadow(t, e, v, 1)
	if e.Sys.Free(1) != 0 {
		t.Fatalf("setup: node1 free = %d, want 0", e.Sys.Free(1))
	}

	// A demotion probe into the nominally-full node 1 reclaims the oldest
	// shadow (page 0's) instead of failing.
	if !e.MoveBegin(v, 0, 1) {
		t.Fatal("move into full node did not reclaim a shadow")
	}
	e.MoveAborted(v, 0, 1) // release the probe reservation
	if e.ShadowCount() != 1 {
		t.Fatalf("shadows after pressure probe = %d, want 1 (oldest dropped)", e.ShadowCount())
	}
	if v.Shadowed(0) || !v.Shadowed(1) {
		t.Fatal("wrong shadow dropped: want page 0 (oldest) gone, page 1 kept")
	}

	// The fault path does the same: refill the page the probe freed, fill
	// node 0, then fault a fresh VMA when the only spare capacity left is
	// page 1's shadow frame on node 1.
	e.Access(v, 4, 1, 0, 0) // node 1's last free page
	e.Access(v, 5, 1, 0, 0) // overflows to node 0 via FirstFit
	e.Access(v, 6, 1, 0, 0)
	if e.Sys.Free(0) != 0 || e.Sys.Free(1) != 0 {
		t.Fatalf("setup: free n0=%d n1=%d, want 0/0", e.Sys.Free(0), e.Sys.Free(1))
	}
	u := e.AS.Alloc("u", 2*tier.MB)
	e.Access(u, 0, 1, 0, 0)
	if e.Err() != nil {
		t.Fatalf("fault OOMed with a reclaimable shadow: %v", e.Err())
	}
	if e.ShadowCount() != 0 {
		t.Fatalf("shadows after fault reclaim = %d, want 0", e.ShadowCount())
	}
	mustAudit(t, e)
}

// TestAuditCatchesShadowDrift: a shadow ledger that disagrees with the
// table must fail the audit.
func TestAuditCatchesShadowDrift(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)
	mustAudit(t, e)
	// Inject drift: ledger bytes with no table entry behind them.
	e.Sys.ReserveShadow(1, v.PageSize)
	if err := e.Audit(); err == nil {
		t.Fatal("audit accepted shadow ledger drift")
	}
	e.Sys.ReleaseShadow(1, v.PageSize)
	mustAudit(t, e)
}

// TestFlipIsByteAccountedAsDemotion: the engine's migration totals must
// close with flips included (FreeDemotionBytes ⊆ DemotedBytes).
func TestFlipIsByteAccountedAsDemotion(t *testing.T) {
	e := newShadowEngine(8*tier.MB, 8*tier.MB)
	e.SetSolution(&fixedSolution{node: 1})
	e.beginInterval()
	v := e.AS.Alloc("v", 4*tier.MB)
	promoteWithShadow(t, e, v, 0)
	promoteWithShadow(t, e, v, 1)
	if _, ok := e.FlipDemote(v, 0); !ok {
		t.Fatal("flip failed")
	}
	e.endInterval()
	if e.DemotedBytes != v.PageSize {
		t.Fatalf("demoted = %d, want %d", e.DemotedBytes, v.PageSize)
	}
	if e.FreeDemotionBytes != v.PageSize || e.FreeDemotions != 1 {
		t.Fatalf("free demotions = %d/%d", e.FreeDemotions, e.FreeDemotionBytes)
	}
	mustAudit(t, e)
}
