// Engine-side admission-control wiring: the internal/admission layer
// attached to the simulation. Disabled by default — an engine without
// EnableAdmission runs exactly the pre-admission code (every check site
// goes through nil-safe methods that admit unconditionally).
//
// Determinism contract: every admission decision, budget debit, and
// cool-down stamp happens on the serialised interval loop, stamped with
// the virtual clock. The controller never iterates its cool-down map
// and never draws randomness, so admission-enabled runs stay
// byte-identical at any Parallelism.
package sim

import (
	"mtm/internal/admission"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// admissionState bundles the controller and its config behind one nil
// check.
type admissionState struct {
	cfg admission.Config
	ctl *admission.Controller
}

// EnableAdmission attaches the migration admission-control subsystem
// (idempotent). Must be called after Interval is set: a zero
// Config.CoolDown defaults to twice the profiling interval, and bucket
// burst capacities are sized in interval multiples. Each tier pair's
// refill rate is BudgetFrac of the pair's rated link bandwidth (the
// slower end of src and dst as seen from the home socket).
func (e *Engine) EnableAdmission(cfg admission.Config) {
	if e.adm != nil {
		return
	}
	cfg = cfg.WithDefaults()
	if cfg.CoolDown == 0 {
		cfg.CoolDown = 2 * e.Interval
	}
	nodes := e.Sys.Topo.Nodes
	ctl := admission.NewController(cfg, len(nodes))
	links := e.Sys.Topo.Links[e.HomeSocket]
	for s := range nodes {
		for d := range nodes {
			if s == d {
				continue
			}
			bw := links[s].Bandwidth
			if links[d].Bandwidth < bw {
				bw = links[d].Bandwidth
			}
			rate := int64(cfg.BudgetFrac * float64(bw))
			burst := int64(float64(rate) * cfg.BurstIntervals * e.Interval.Seconds())
			ctl.SetRate(s, d, rate, burst)
		}
	}
	e.adm = &admissionState{cfg: cfg, ctl: ctl}
}

// AdmissionEnabled reports whether the admission subsystem is attached.
func (e *Engine) AdmissionEnabled() bool { return e.adm != nil }

// AdmissionConfig returns the active admission configuration (defaults
// applied); the zero Config when admission is disabled.
func (e *Engine) AdmissionConfig() admission.Config {
	if e.adm == nil {
		return admission.Config{}
	}
	return e.adm.cfg
}

// moveDirection classifies a src→dst move against the home socket's
// tier order: toward a faster tier is a promotion, anything else
// (slower or lateral) a demotion.
func (e *Engine) moveDirection(src, dst tier.NodeID) admission.Direction {
	if e.Sys.Topo.Rank(e.HomeSocket, dst) < e.Sys.Topo.Rank(e.HomeSocket, src) {
		return admission.DirPromote
	}
	return admission.DirDemote
}

// MigrationROI estimates the return on investment of moving one page
// of the given size from src to dst: the per-access latency gap (rated
// link latencies, home socket) times the expected accesses over the
// retention horizon, divided by the pair's copy cost. whi is the
// profiler's weighted hotness on whatever scale the active policy
// uses; reaccess the evidence-graded likelihood the page stays hot.
func (e *Engine) MigrationROI(src, dst tier.NodeID, pageSize int64, whi, reaccess float64) float64 {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 {
		return 0
	}
	lat := e.latCache[e.HomeSocket]
	gap := float64(lat[src] - lat[dst])
	if gap < 0 {
		gap = -gap
	}
	copyNs := float64(e.Sys.CopyTime(e.HomeSocket, src, dst, pageSize))
	return admission.ROI(whi, reaccess, e.adm.cfg.HorizonIntervals, gap, copyNs)
}

// AdmitMigration prices one planned move of up to bytes from src to
// dst and decides admit/defer/reject, recording the outcome in the
// engine counters, metrics, and event ring. Without the subsystem (or
// for unattributable pairs) it admits unconditionally, keeping
// admission-free runs bit-identical to the pre-admission engine.
func (e *Engine) AdmitMigration(src, dst tier.NodeID, bytes, pageSize int64, whi, reaccess float64) admission.Decision {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		e.fidelityNoteAdmission(admission.RuleAdmitted)
		return admission.Decision{
			Verdict:      admission.VerdictAdmit,
			Rule:         admission.RuleAdmitted,
			AllowedBytes: bytes,
		}
	}
	e.assertOwned("AdmitMigration")
	dir := e.moveDirection(src, dst)
	roi := e.MigrationROI(src, dst, pageSize, whi, reaccess)
	dec := e.adm.ctl.Admit(int(src), int(dst), dir, roi, bytes, pageSize, e.SpanClockNs())
	switch dec.Verdict {
	case admission.VerdictAdmit:
		e.AdmissionAdmits++
		if e.met != nil {
			e.met.admAdmitted.Inc()
		}
	case admission.VerdictDefer:
		e.AdmissionDefers++
		if e.met != nil {
			e.met.admDeferred.Inc()
			e.emitEventOnce(EventAdmissionDefer, e.met.pairName[src][dst], bytes)
		}
	case admission.VerdictReject:
		e.AdmissionRejects++
		if e.met != nil {
			e.met.admRejected.Inc()
			e.emitEventOnce(EventAdmissionReject, e.met.pairName[src][dst], bytes)
		}
	}
	e.fidelityNoteAdmission(dec.Rule)
	return dec
}

// admissionBeginInterval prunes expired page cool-downs so the map stays
// bounded by the pages that moved within the last cool-down window,
// instead of growing for the whole run. Behaviour-neutral: Prune removes
// exactly the entries PageAllowed would treat as expired.
func (e *Engine) admissionBeginInterval() {
	if e.adm == nil {
		return
	}
	e.adm.ctl.Prune(e.SpanClockNs())
}

// AdmitFlip prices one planned zero-copy shadow-flip demotion. Flips
// bypass the copy-cost-denominated gates — the victim-ROI bound, token
// budgets, and waste shedding all price a copy that a flip never pays,
// so holding a flip to them rejects exactly the moves that are free —
// but the decision still carries flip-cost ROI evidence and the rule
// RuleShadowFlip for span provenance. The per-page thrash cool-down is
// NOT bypassed; FlipDemote enforces it separately. flipNs is the
// metadata cost of the flip (see migrate.FlipCost).
func (e *Engine) AdmitFlip(src, dst tier.NodeID, bytes int64, whi, reaccess, flipNs float64) admission.Decision {
	dec := admission.Decision{
		Verdict:      admission.VerdictAdmit,
		Rule:         admission.RuleShadowFlip,
		AllowedBytes: bytes,
	}
	e.fidelityNoteAdmission(dec.Rule)
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return dec
	}
	e.assertOwned("AdmitFlip")
	lat := e.latCache[e.HomeSocket]
	gap := float64(lat[src] - lat[dst])
	if gap < 0 {
		gap = -gap
	}
	dec.ROI = admission.ROI(whi, reaccess, e.adm.cfg.HorizonIntervals, gap, flipNs)
	dec.BudgetBytes = e.adm.ctl.Tokens(int(src), int(dst), e.SpanClockNs())
	e.AdmissionAdmits++
	if e.met != nil {
		e.met.admAdmitted.Inc()
	}
	return dec
}

// PageMoveAllowed consults the thrash detector for one page about to
// move to dst: a page still inside the cool-down window of a committed
// move may not reverse direction. Suppressed pages are counted but not
// individually traced (a thrash storm would flood the ring; the
// per-pair event below is deduplicated per interval). Always true
// without the subsystem.
func (e *Engine) PageMoveAllowed(v *vm.VMA, idx int, dst tier.NodeID) bool {
	if e.adm == nil {
		return true
	}
	e.assertOwned("PageMoveAllowed")
	src := v.Node(idx)
	if int(src) < 0 || int(dst) < 0 || src == dst {
		return true
	}
	if e.adm.ctl.PageAllowed(v.Addr(idx), e.moveDirection(src, dst), e.SpanClockNs()) {
		return true
	}
	e.ThrashSuppressed++
	if e.met != nil {
		e.met.admThrash.Inc()
		e.emitEventOnce(EventThrashSuppressed, e.met.pairName[src][dst], int64(idx))
	}
	return false
}

// admissionMoveCommitted debits a committed move from its pair's
// bucket and stamps the page's cool-down (hysteresis against an
// immediate reversal). Called from MoveCommit with the begin-time src.
func (e *Engine) admissionMoveCommitted(v *vm.VMA, idx int, src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	now := e.SpanClockNs()
	e.adm.ctl.Commit(int(src), int(dst), v.PageSize, now)
	e.adm.ctl.NotePageMove(v.Addr(idx), e.moveDirection(src, dst), now)
}

// admissionMoveAborted charges an aborted move's wasted bytes to its
// pair at the waste-penalty multiple: the load-shedding feedback loop.
// Called from MoveAborted with the begin-time src.
func (e *Engine) admissionMoveAborted(pageSize int64, src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	e.adm.ctl.Waste(int(src), int(dst), pageSize, e.SpanClockNs())
}

// admissionBreakerTrip zeroes a pair's budget when its health circuit
// breaker trips: the pair must re-earn its bandwidth from nothing once
// the breaker half-opens. Called from recordMoveAbort on a trip.
func (e *Engine) admissionBreakerTrip(src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 {
		return
	}
	e.adm.ctl.ZeroBudget(int(src), int(dst), e.SpanClockNs())
}

// AdmissionTokens reports a pair's current budget balance (after
// refill to the current virtual time); 0 when admission is disabled.
// Exposed for tests and operator tooling.
func (e *Engine) AdmissionTokens(src, dst tier.NodeID) int64 {
	if e.adm == nil {
		return 0
	}
	return e.adm.ctl.Tokens(int(src), int(dst), e.SpanClockNs())
}
