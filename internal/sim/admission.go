// Engine-side admission-control wiring: the internal/admission layer
// attached to the simulation. Disabled by default — an engine without
// EnableAdmission runs exactly the pre-admission code (every check site
// goes through nil-safe methods that admit unconditionally).
//
// Determinism contract: every admission decision, budget debit, and
// cool-down stamp happens on the serialised interval loop, stamped with
// the virtual clock. The controller never iterates its cool-down map
// and never draws randomness, so admission-enabled runs stay
// byte-identical at any Parallelism.
package sim

import (
	"mtm/internal/admission"
	"mtm/internal/metrics"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// Bytes of profiling traffic charged per sampled batch of accesses when
// lanes make the budgets bind: roughly one PTE/PEBS record read per
// profSampleDiv application accesses. Coarse by design — the point is
// that profiling competes for the same pair bandwidth, not a cycle-
// accurate model of the profiler's cache behaviour.
const (
	profSampleDiv   = 200
	profSampleBytes = 16
)

// admissionState bundles the controller and its config behind one nil
// check, plus the adaptive-layer state (online MinROI learning,
// binding budgets, priority lanes).
type admissionState struct {
	cfg   admission.Config
	ctl   *admission.Controller
	learn bool // online per-pair MinROI floors
	lanes bool // traffic-class lanes + binding budgets

	// Learner ledger: committed promotions awaiting their hindsight
	// verdict, appended in commit order on the serialized path and
	// resolved with the same rule as the fidelity oracle's lineage
	// ledger. Kept independent of the oracle so learned floors are
	// identical with and without -fidelity.
	pend    []admPending
	horizon int32

	// profDst is where profiling traffic lands (the home socket's
	// fastest node, where the kernel's scan structures live).
	profDst tier.NodeID

	// AdmissionStarvations counts watchdog firings (mirrors the typed
	// events so tests need not parse the ring).
	starvations int64

	// minroi exposes each pair's learned floor as a gauge; nil without
	// metrics or without learning.
	minroi [][]*metrics.Gauge
}

// admPending is one committed promotion awaiting hindsight judgement
// for the online MinROI learner.
type admPending struct {
	v        *vm.VMA
	idx      int32
	interval int32
	src, dst tier.NodeID
}

// EnableAdmission attaches the migration admission-control subsystem
// (idempotent). Must be called after Interval is set: a zero
// Config.CoolDown defaults to twice the profiling interval, and bucket
// burst capacities are sized in interval multiples. Each tier pair's
// refill rate is BudgetFrac of the pair's rated link bandwidth (the
// slower end of src and dst as seen from the home socket).
func (e *Engine) EnableAdmission(cfg admission.Config) {
	if e.adm != nil {
		return
	}
	cfg = cfg.WithDefaults()
	if cfg.CoolDown == 0 {
		cfg.CoolDown = 2 * e.Interval
	}
	nodes := e.Sys.Topo.Nodes
	ctl := admission.NewController(cfg, len(nodes))
	ctl.SetInterval(int64(e.Interval))
	links := e.Sys.Topo.Links[e.HomeSocket]
	for s := range nodes {
		for d := range nodes {
			if s == d {
				continue
			}
			bw := links[s].Bandwidth
			if links[d].Bandwidth < bw {
				bw = links[d].Bandwidth
			}
			rate := int64(cfg.BudgetFrac * float64(bw))
			burst := int64(float64(rate) * cfg.BurstIntervals * e.Interval.Seconds())
			ctl.SetRate(s, d, rate, burst)
		}
	}
	a := &admissionState{
		cfg:     cfg,
		ctl:     ctl,
		learn:   cfg.Learn,
		lanes:   cfg.Lanes.Enabled,
		horizon: DefaultFidelityHorizon,
		profDst: e.Sys.Topo.View(e.HomeSocket)[0],
	}
	if a.learn {
		if reg := e.Metrics(); reg != nil {
			a.minroi = make([][]*metrics.Gauge, len(nodes))
			for s := range nodes {
				a.minroi[s] = make([]*metrics.Gauge, len(nodes))
				for d := range nodes {
					if s == d {
						continue
					}
					a.minroi[s][d] = reg.Gauge("mtm_admission_minroi",
						"effective promotion ROI floor per tier pair (online-learned)",
						metrics.L("src", nodes[s].Name), metrics.L("dst", nodes[d].Name))
				}
			}
		}
	}
	e.adm = a
}

// AdmissionEnabled reports whether the admission subsystem is attached.
func (e *Engine) AdmissionEnabled() bool { return e.adm != nil }

// AdmissionConfig returns the active admission configuration (defaults
// applied); the zero Config when admission is disabled.
func (e *Engine) AdmissionConfig() admission.Config {
	if e.adm == nil {
		return admission.Config{}
	}
	return e.adm.cfg
}

// moveDirection classifies a src→dst move against the home socket's
// tier order: toward a faster tier is a promotion, anything else
// (slower or lateral) a demotion.
func (e *Engine) moveDirection(src, dst tier.NodeID) admission.Direction {
	if e.Sys.Topo.Rank(e.HomeSocket, dst) < e.Sys.Topo.Rank(e.HomeSocket, src) {
		return admission.DirPromote
	}
	return admission.DirDemote
}

// MigrationROI estimates the return on investment of moving one page
// of the given size from src to dst: the per-access latency gap (rated
// link latencies, home socket) times the expected accesses over the
// retention horizon, divided by the pair's copy cost. whi is the
// profiler's weighted hotness on whatever scale the active policy
// uses; reaccess the evidence-graded likelihood the page stays hot.
func (e *Engine) MigrationROI(src, dst tier.NodeID, pageSize int64, whi, reaccess float64) float64 {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 {
		return 0
	}
	lat := e.latCache[e.HomeSocket]
	gap := float64(lat[src] - lat[dst])
	if gap < 0 {
		gap = -gap
	}
	copyNs := float64(e.Sys.CopyTime(e.HomeSocket, src, dst, pageSize))
	return admission.ROI(whi, reaccess, e.adm.cfg.HorizonIntervals, gap, copyNs)
}

// AdmitMigration prices one planned move of up to bytes from src to
// dst and decides admit/defer/reject, recording the outcome in the
// engine counters, metrics, and event ring. Without the subsystem (or
// for unattributable pairs) it admits unconditionally, keeping
// admission-free runs bit-identical to the pre-admission engine.
func (e *Engine) AdmitMigration(src, dst tier.NodeID, bytes, pageSize int64, whi, reaccess float64) admission.Decision {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		e.fidelityNoteAdmission(admission.RuleAdmitted)
		return admission.Decision{
			Verdict:      admission.VerdictAdmit,
			Rule:         admission.RuleAdmitted,
			AllowedBytes: bytes,
		}
	}
	e.assertOwned("AdmitMigration")
	dir := e.moveDirection(src, dst)
	roi := e.MigrationROI(src, dst, pageSize, whi, reaccess)
	dec := e.adm.ctl.Admit(int(src), int(dst), dir, roi, bytes, pageSize, e.SpanClockNs())
	switch dec.Verdict {
	case admission.VerdictAdmit:
		e.AdmissionAdmits++
		if e.met != nil {
			e.met.admAdmitted.Inc()
		}
	case admission.VerdictDefer:
		e.AdmissionDefers++
		if e.met != nil {
			e.met.admDeferred.Inc()
			e.emitEventOnce(EventAdmissionDefer, e.met.pairName[src][dst], bytes)
		}
	case admission.VerdictReject:
		e.AdmissionRejects++
		if e.met != nil {
			e.met.admRejected.Inc()
			e.emitEventOnce(EventAdmissionReject, e.met.pairName[src][dst], bytes)
		}
	}
	e.fidelityNoteAdmission(dec.Rule)
	return dec
}

// admissionBeginInterval prunes expired page cool-downs so the map stays
// bounded by the pages that moved within the last cool-down window,
// instead of growing for the whole run. Behaviour-neutral: Prune removes
// exactly the entries PageAllowed would treat as expired.
func (e *Engine) admissionBeginInterval() {
	if e.adm == nil {
		return
	}
	e.adm.ctl.Prune(e.SpanClockNs())
}

// AdmitFlip prices one planned zero-copy shadow-flip demotion. Flips
// bypass the copy-cost-denominated gates — the victim-ROI bound, token
// budgets, and waste shedding all price a copy that a flip never pays,
// so holding a flip to them rejects exactly the moves that are free —
// but the decision still carries flip-cost ROI evidence and the rule
// RuleShadowFlip for span provenance. The per-page thrash cool-down is
// NOT bypassed; FlipDemote enforces it separately. flipNs is the
// metadata cost of the flip (see migrate.FlipCost).
func (e *Engine) AdmitFlip(src, dst tier.NodeID, bytes int64, whi, reaccess, flipNs float64) admission.Decision {
	dec := admission.Decision{
		Verdict:      admission.VerdictAdmit,
		Rule:         admission.RuleShadowFlip,
		AllowedBytes: bytes,
	}
	e.fidelityNoteAdmission(dec.Rule)
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return dec
	}
	e.assertOwned("AdmitFlip")
	lat := e.latCache[e.HomeSocket]
	gap := float64(lat[src] - lat[dst])
	if gap < 0 {
		gap = -gap
	}
	dec.ROI = admission.ROI(whi, reaccess, e.adm.cfg.HorizonIntervals, gap, flipNs)
	dec.BudgetBytes = e.adm.ctl.Tokens(int(src), int(dst), e.SpanClockNs())
	e.AdmissionAdmits++
	if e.met != nil {
		e.met.admAdmitted.Inc()
	}
	return dec
}

// PageMoveAllowed consults the thrash detector for one page about to
// move to dst: a page still inside the cool-down window of a committed
// move may not reverse direction. Suppressed pages are counted but not
// individually traced (a thrash storm would flood the ring; the
// per-pair event below is deduplicated per interval). Always true
// without the subsystem.
func (e *Engine) PageMoveAllowed(v *vm.VMA, idx int, dst tier.NodeID) bool {
	if e.adm == nil {
		return true
	}
	e.assertOwned("PageMoveAllowed")
	src := v.Node(idx)
	if int(src) < 0 || int(dst) < 0 || src == dst {
		return true
	}
	if e.adm.ctl.PageAllowed(v.Addr(idx), e.moveDirection(src, dst), e.SpanClockNs()) {
		return true
	}
	e.ThrashSuppressed++
	if e.met != nil {
		e.met.admThrash.Inc()
		e.emitEventOnce(EventThrashSuppressed, e.met.pairName[src][dst], int64(idx))
	}
	return false
}

// admissionMoveCommitted debits a committed move from its pair's
// bucket and stamps the page's cool-down (hysteresis against an
// immediate reversal). Called from MoveCommit with the begin-time src.
func (e *Engine) admissionMoveCommitted(v *vm.VMA, idx int, src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	now := e.SpanClockNs()
	dir := e.moveDirection(src, dst)
	e.adm.ctl.Commit(int(src), int(dst), v.PageSize, now)
	e.adm.ctl.NotePageMove(v.Addr(idx), dir, now)
	if e.adm.learn && dir == admission.DirPromote {
		// Feed the learner ledger: this promotion's hindsight verdict
		// (reaccessed before the horizon, or wasted) resolves in
		// admissionEndInterval and adjusts the pair's learned floor.
		e.adm.pend = append(e.adm.pend, admPending{
			v: v, idx: int32(idx), interval: int32(e.Intervals), src: src, dst: dst,
		})
	}
}

// admissionMoveAborted charges an aborted move's wasted bytes to its
// pair at the waste-penalty multiple: the load-shedding feedback loop.
// Called from MoveAborted with the begin-time src.
func (e *Engine) admissionMoveAborted(pageSize int64, src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	e.adm.ctl.Waste(int(src), int(dst), pageSize, e.SpanClockNs())
}

// admissionBreakerTrip zeroes a pair's budget when its health circuit
// breaker trips: the pair must re-earn its bandwidth from nothing once
// the breaker half-opens. Called from recordMoveAbort on a trip.
func (e *Engine) admissionBreakerTrip(src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 {
		return
	}
	e.adm.ctl.ZeroBudget(int(src), int(dst), e.SpanClockNs())
}

// AdmissionTokens reports a pair's current budget balance (after
// refill to the current virtual time); 0 when admission is disabled.
// Exposed for tests and operator tooling.
func (e *Engine) AdmissionTokens(src, dst tier.NodeID) int64 {
	if e.adm == nil {
		return 0
	}
	return e.adm.ctl.Tokens(int(src), int(dst), e.SpanClockNs())
}

// AdmissionLearnEnabled reports whether online MinROI learning is on.
func (e *Engine) AdmissionLearnEnabled() bool { return e.adm != nil && e.adm.learn }

// AdmissionLanesEnabled reports whether traffic-class priority lanes
// (and with them the binding budgets) are on.
func (e *Engine) AdmissionLanesEnabled() bool { return e.adm != nil && e.adm.lanes }

// AdmissionMinROI reports the pair's effective promotion floor: the
// learned floor when learning is on, the static MinROI otherwise, 0
// when admission is disabled. Exposed for tests and tooling.
func (e *Engine) AdmissionMinROI(src, dst tier.NodeID) float64 {
	if e.adm == nil {
		return 0
	}
	return e.adm.ctl.MinROIFor(int(src), int(dst))
}

// ClassCounters is one traffic class's admission activity in Result.
type ClassCounters struct {
	Requests int64
	Admits   int64
	Defers   int64
	Bytes    int64
}

// LaneStats is the per-traffic-class admission breakdown exported in
// Result when priority lanes are enabled.
type LaneStats struct {
	Normal    ClassCounters
	Drain     ClassCounters
	Emergency ClassCounters
	// Starvations counts starvation-watchdog firings: a critical class
	// waited more than the configured number of consecutive intervals
	// with requests but no admits.
	Starvations int64
}

// AdmissionLaneStats assembles the per-class Result breakdown; nil
// unless lanes are enabled, so lane-free Result JSON is unchanged.
func (e *Engine) AdmissionLaneStats() *LaneStats {
	if e.adm == nil || !e.adm.lanes {
		return nil
	}
	cc := func(cl admission.Class) ClassCounters {
		s := e.adm.ctl.ClassStats(cl)
		return ClassCounters{Requests: s.Requests, Admits: s.Admits, Defers: s.Defers, Bytes: s.Bytes}
	}
	return &LaneStats{
		Normal:      cc(admission.ClassNormal),
		Drain:       cc(admission.ClassDrain),
		Emergency:   cc(admission.ClassEmergency),
		Starvations: e.adm.starvations,
	}
}

// admitDrainMove prices one health-drain page move on the drain lane:
// ROI gates and waste shedding do not apply (evacuating a dying tier is
// not optional), but the move draws on the pair's tokens plus the
// reserved slice, so a saturated pair paces the drain instead of
// stopping it. Always true unless lanes are enabled — without lanes,
// drain traffic bypasses admission entirely, as before.
func (e *Engine) admitDrainMove(src, dst tier.NodeID, bytes, pageSize int64) bool {
	if e.adm == nil || !e.adm.lanes || int(src) < 0 || int(dst) < 0 || src == dst {
		return true
	}
	dec := e.adm.ctl.AdmitClass(admission.ClassDrain, int(src), int(dst),
		e.moveDirection(src, dst), 0, bytes, pageSize, e.SpanClockNs())
	return dec.Verdict == admission.VerdictAdmit
}

// admitEmergencyMove records one emergency demotion on the emergency
// lane. Emergency traffic is never refused — the alternative is an OOM
// — so this is bookkeeping, not a gate: the class counters and the
// starvation watchdog see the request, and the commit path debits the
// bytes like any other move.
func (e *Engine) admitEmergencyMove(src, dst tier.NodeID, bytes int64) {
	if e.adm == nil || !e.adm.lanes || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	e.adm.ctl.AdmitClass(admission.ClassEmergency, int(src), int(dst),
		e.moveDirection(src, dst), 0, bytes, bytes, e.SpanClockNs())
}

// admissionChargeBackground charges background copy traffic (shadow
// sync) against the pair's token bucket when lanes make the budgets
// bind. No-op otherwise, keeping lane-free runs bit-identical.
func (e *Engine) admissionChargeBackground(src, dst tier.NodeID, bytes int64) {
	if e.adm == nil || !e.adm.lanes || int(src) < 0 || int(dst) < 0 || src == dst {
		return
	}
	e.adm.ctl.Charge(int(src), int(dst), bytes, e.SpanClockNs())
}

// admissionResetWaste clears a pair's waste ledger; called when the
// pair's circuit breaker transitions open→half-open so one pre-trip bad
// interval cannot immediately re-shed the recovering pair (the ledger
// froze during the open period — no moves, no decay). The budget is
// zeroed along with it: the clean ledger must not combine with tokens
// banked during the outage into a burst of unproven copies — the
// recovering pair re-earns its bandwidth from nothing, one refill
// interval at a time.
func (e *Engine) admissionResetWaste(src, dst tier.NodeID) {
	if e.adm == nil || int(src) < 0 || int(dst) < 0 {
		return
	}
	now := e.SpanClockNs()
	e.adm.ctl.ResetWasteWindow(int(src), int(dst), now)
	e.adm.ctl.ZeroBudget(int(src), int(dst), now)
}

// admissionEndInterval is the adaptive layer's once-per-interval work,
// on the serialized loop between the fidelity sample and ResetCounts
// (the learner reads the same count planes as the oracle):
//
//  1. Resolve the learner ledger: each pending promotion older than
//     this interval is judged reaccessed (count > 0) or, once the
//     horizon expires, wasted, and the verdict feeds the pair's floor.
//  2. Charge profiling traffic against the pair budgets (lanes mode).
//  3. Run the controller's EndInterval: demand-scaled refill, bounded
//     floor adaptation, starvation watchdog.
//  4. Surface watchdog firings as typed events/metrics/spans and
//     refresh the per-pair learned-floor gauges.
//
// Skipped entirely when neither learning nor lanes is on: a plain
// -admission run executes byte-identically to the static layer.
func (e *Engine) admissionEndInterval() {
	a := e.adm
	if a == nil || (!a.learn && !a.lanes) {
		return
	}
	now := e.SpanClockNs()
	if a.learn {
		cur := int32(e.Intervals)
		keep := a.pend[:0]
		for i := range a.pend {
			m := &a.pend[i]
			if m.interval >= cur {
				keep = append(keep, *m)
				continue
			}
			reaccessed := m.v.Present(int(m.idx)) && m.v.Count(int(m.idx)) > 0
			if !reaccessed && cur-m.interval < a.horizon {
				keep = append(keep, *m)
				continue
			}
			a.ctl.NoteOutcome(int(m.src), int(m.dst), reaccessed)
		}
		a.pend = keep
	}
	if a.lanes {
		// Profiling traffic: the profiler's scan/sample reads flow from
		// every accessed node toward the home socket's fastest tier.
		for d, n := range e.intAccesses {
			if tier.NodeID(d) == a.profDst || n <= 0 {
				continue
			}
			if bytes := n / profSampleDiv * profSampleBytes; bytes > 0 {
				a.ctl.Charge(d, int(a.profDst), bytes, now)
			}
		}
	}
	for _, s := range a.ctl.EndInterval(now) {
		a.starvations++
		if e.met != nil {
			e.met.admStarved.Inc()
			e.met.reg.Emit(EventLaneStarvation, s.Class.String(), int64(s.Waited))
		}
		if e.sp != nil {
			e.SpanEvent("admission", "lane-starvation",
				span.S("class", s.Class.String()),
				span.I("waited_intervals", int64(s.Waited)))
		}
	}
	if a.minroi != nil {
		for s := range a.minroi {
			for d := range a.minroi[s] {
				if g := a.minroi[s][d]; g != nil {
					g.Set(a.ctl.MinROIFor(s, d))
				}
			}
		}
	}
}
