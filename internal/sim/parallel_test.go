package sim

import (
	"runtime"
	"sync/atomic"
	"testing"

	"mtm/internal/tier"
)

func TestPoolRunCoversAllShards(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		p := NewPool(workers)
		for _, n := range []int{0, 1, 7, 64, 1001} {
			hits := make([]int32, n)
			p.Run(n, func(s int) { atomic.AddInt32(&hits[s], 1) })
			for s, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: shard %d ran %d times", workers, n, s, h)
				}
			}
		}
	}
}

func TestNewPoolDefaultsToGOMAXPROCS(t *testing.T) {
	if got, want := NewPool(0).Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("NewPool(0).Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	if got := NewPool(-3).Workers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("NewPool(-3).Workers() = %d, want GOMAXPROCS", got)
	}
	if got := NewPool(6).Workers(); got != 6 {
		t.Fatalf("NewPool(6).Workers() = %d, want 6", got)
	}
}

func TestPoolRunPropagatesPanic(t *testing.T) {
	for _, workers := range []int{1, 4} {
		p := NewPool(workers)
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("workers=%d: shard panic not propagated", workers)
				}
			}()
			p.Run(8, func(s int) {
				if s == 5 {
					panic("shard failure")
				}
			})
		}()
	}
}

func TestShardSpanPartitions(t *testing.T) {
	for _, n := range []int{0, 1, 15, 16, 17, 1000} {
		for _, size := range []int{1, 7, 16, 2000} {
			ns := NumShards(n, size)
			next := 0
			for s := 0; s < ns; s++ {
				lo, hi := ShardSpan(n, size, s)
				if lo != next {
					t.Fatalf("n=%d size=%d shard %d: lo=%d, want %d (gap or overlap)", n, size, s, lo, next)
				}
				if hi <= lo && n > 0 {
					t.Fatalf("n=%d size=%d shard %d: empty span [%d,%d)", n, size, s, lo, hi)
				}
				next = hi
			}
			if next != n {
				t.Fatalf("n=%d size=%d: shards cover [0,%d), want [0,%d)", n, size, next, n)
			}
		}
	}
}

// TestShardRandStreams checks the two properties the sharded phases rely
// on: the stream for a (salt, interval, shard) triple is reproducible,
// and neighbouring triples get different streams.
func TestShardRandStreams(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 7)
	a := e.ShardRand(SaltPTEScan, 3).Int63()
	b := e.ShardRand(SaltPTEScan, 3).Int63()
	if a != b {
		t.Fatal("ShardRand not reproducible for identical (salt, interval, shard)")
	}
	if e.ShardRand(SaltPTEScan, 4).Int63() == a {
		t.Fatal("adjacent shards share a stream")
	}
	if e.ShardRand(SaltChunkScan, 3).Int63() == a {
		t.Fatal("different salts share a stream")
	}
	e.Intervals++
	if e.ShardRand(SaltPTEScan, 3).Int63() == a {
		t.Fatal("different intervals share a stream")
	}
}

// TestAssertOwnedConfinement asserts the race-audit guard: serialized
// accounting methods panic when called from inside a Parallel shard, and
// the guard fires even at Parallelism 1 so confinement bugs surface in
// fully sequential runs too.
func TestAssertOwnedConfinement(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	e.Par = NewPool(1)
	defer func() {
		if recover() == nil {
			t.Fatal("ChargeProfiling inside Parallel did not panic")
		}
	}()
	e.Parallel(1, func(int) { e.ChargeProfiling(1) })
}

// TestParallelSharedTallies exercises the worker pool under -race: shards
// write disjoint slots of a shared slice, the canonical merge pattern of
// every sharded phase.
func TestParallelSharedTallies(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	e.Par = NewPool(8)
	const n = 256
	sums := make([]int64, n)
	e.Parallel(n, func(s int) {
		rng := e.ShardRand(SaltPTEScan, s)
		for i := 0; i < 100; i++ {
			sums[s] += rng.Int63n(10)
		}
	})
	var total int64
	for _, v := range sums {
		total += v
	}
	if total == 0 {
		t.Fatal("shards produced no work")
	}
	// The merged total must match a fully sequential evaluation.
	var want int64
	for s := 0; s < n; s++ {
		rng := e.ShardRand(SaltPTEScan, s)
		for i := 0; i < 100; i++ {
			want += rng.Int63n(10)
		}
	}
	if total != want {
		t.Fatalf("parallel tally %d != sequential tally %d", total, want)
	}
}
