package sim

import (
	"testing"
	"time"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// fixedSolution places everything on one node and does nothing else.
type fixedSolution struct {
	node tier.NodeID
	prof time.Duration
	mig  time.Duration
}

func (f *fixedSolution) Name() string { return "fixed" }
func (f *fixedSolution) Place(e *Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return f.node
}
func (f *fixedSolution) IntervalStart(*Engine) {}
func (f *fixedSolution) IntervalEnd(e *Engine) {
	e.ChargeProfiling(f.prof)
	e.ChargeMigration(f.mig)
}

// fixedWorkload issues a set number of accesses per interval to one page.
type fixedWorkload struct {
	v         *vm.VMA
	perInt    uint32
	intervals int
	run       int
}

func (w *fixedWorkload) Name() string { return "fixed" }
func (w *fixedWorkload) Init(e *Engine) {
	w.v = e.AS.Alloc("w", 4*tier.MB)
}
func (w *fixedWorkload) RunInterval(e *Engine) {
	e.Access(w.v, 0, w.perInt, 0, e.HomeSocket)
	w.run++
}
func (w *fixedWorkload) Done() bool            { return w.run >= w.intervals }
func (w *fixedWorkload) ReadFraction() float64 { return 1 }

func newTestEngine() *Engine {
	e := NewEngine(tier.OptaneTopology(256), 1)
	e.Interval = 10 * time.Millisecond
	return e
}

func TestAccessChargesTierLatency(t *testing.T) {
	e := newTestEngine()
	sol := &fixedSolution{node: 0}
	e.SetSolution(sol)
	v := e.AS.Alloc("v", 4*tier.MB)
	e.beginInterval()
	e.Access(v, 0, 1000, 0, 0)
	// 1000 accesses at 90ns + PerAccessCPU, across 8 threads.
	want := time.Duration(1000) * (90*time.Nanosecond + e.PerAccessCPU) / 8
	got := e.AppTimeThisInterval()
	// The first access also faults (fault cost + zeroing), so allow
	// the fault overhead on top.
	if got < want || got > want+e.FaultCost+time.Millisecond {
		t.Fatalf("app time = %v, want >= %v", got, want)
	}
	if e.NodeAccesses[0] != 1000 {
		t.Fatalf("cumulative accesses = %d, want 1000 (counted immediately)", e.NodeAccesses[0])
	}
	if e.intAccesses[0] != 1000 {
		t.Fatalf("interval accesses = %d", e.intAccesses[0])
	}
	mustAudit(t, e)
}

func TestFaultPlacesViaSolution(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 2})
	v := e.AS.Alloc("v", 4*tier.MB)
	e.beginInterval()
	e.Access(v, 1, 1, 0, 0)
	if v.Node(1) != 2 {
		t.Fatalf("page placed on %d, want 2", v.Node(1))
	}
	if e.Sys.Used(2) != v.PageSize {
		t.Fatal("tier accounting not updated by fault")
	}
	if e.TotalFaults != 1 {
		t.Fatalf("faults = %d", e.TotalFaults)
	}
	mustAudit(t, e)
}

func TestFaultFallsBackWhenFull(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("v", 256*tier.GB/256)
	e.beginInterval()
	// Node 0 holds 96GB/256 = 384MB = 192 huge pages; the 1 GB VMA must
	// spill to other nodes without panicking.
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}
	if e.Sys.Free(0) >= v.PageSize {
		t.Fatal("node 0 not filled")
	}
	spilled := 0
	for i := 0; i < v.NPages; i++ {
		if v.Node(i) != 0 {
			spilled++
		}
	}
	if spilled == 0 {
		t.Fatal("no pages spilled to other nodes")
	}
	mustAudit(t, e)
}

func TestMovePage(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 2})
	v := e.AS.Alloc("v", 4*tier.MB)
	e.beginInterval()
	e.Access(v, 0, 1, 0, 0)
	if !e.MovePage(v, 0, 0) {
		t.Fatal("MovePage failed")
	}
	e.NotePromotion(v.PageSize) // node 2 -> 0 is a promotion; keep the ledger honest
	if v.Node(0) != 0 || e.Sys.Used(2) != 0 || e.Sys.Used(0) != v.PageSize {
		t.Fatal("MovePage accounting wrong")
	}
	// Move to same node is a no-op success.
	if !e.MovePage(v, 0, 0) {
		t.Fatal("self-move failed")
	}
	mustAudit(t, e)
}

func TestIntervalLoopAccounting(t *testing.T) {
	e := newTestEngine()
	sol := &fixedSolution{node: 0, prof: time.Millisecond, mig: 2 * time.Millisecond}
	w := &fixedWorkload{perInt: 100, intervals: 3}
	res, err := Run(e, w, sol, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Completed || res.Intervals != 3 {
		t.Fatalf("intervals = %d completed=%v", res.Intervals, res.Completed)
	}
	if res.Profiling != 3*time.Millisecond {
		t.Fatalf("profiling = %v", res.Profiling)
	}
	if res.Migration != 6*time.Millisecond {
		t.Fatalf("migration = %v", res.Migration)
	}
	if res.ExecTime != res.App+res.Profiling+res.Migration {
		t.Fatalf("exec %v != app %v + prof + mig", res.ExecTime, res.App)
	}
	if res.TotalAccesses != 300 {
		t.Fatalf("accesses = %d", res.TotalAccesses)
	}
	mustAudit(t, e)
}

func TestMaxIntervalsStopsRun(t *testing.T) {
	e := newTestEngine()
	w := &fixedWorkload{perInt: 1, intervals: 1 << 30}
	res, err := Run(e, w, &fixedSolution{node: 0}, 5)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Truncated {
		t.Fatal("run stopped by maxIntervals must be flagged Truncated")
	}
	if res.Completed || res.Intervals != 5 {
		t.Fatalf("intervals=%d completed=%v", res.Intervals, res.Completed)
	}
}

func TestInterceptOverridesLatency(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("v", 4*tier.MB)
	e.beginInterval()
	e.Access(v, 0, 1, 0, 0) // fault in
	base := e.AppTimeThisInterval()
	e.Intercept = func(v *vm.VMA, idx int, n, nw uint32, node tier.NodeID) time.Duration {
		return time.Duration(n) * time.Microsecond
	}
	e.Access(v, 0, 8, 0, 0)
	want := base + (8*time.Microsecond+8*e.PerAccessCPU)/8
	if got := e.AppTimeThisInterval(); got != want {
		t.Fatalf("intercepted app time = %v, want %v", got, want)
	}
}

func TestGroundTruthResetBetweenIntervals(t *testing.T) {
	e := newTestEngine()
	sol := &fixedSolution{node: 0}
	w := &fixedWorkload{perInt: 50, intervals: 2}
	e.SetSolution(sol)
	w.Init(e)
	e.RunInterval(w)
	if w.v.Count(0) != 0 {
		t.Fatal("counts not reset at interval end")
	}
}

func TestIntervalExhausted(t *testing.T) {
	e := newTestEngine()
	e.Interval = time.Microsecond
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("v", 4*tier.MB)
	e.beginInterval()
	if e.IntervalExhausted() {
		t.Fatal("exhausted before any work")
	}
	e.Access(v, 0, 1000, 0, 0)
	if !e.IntervalExhausted() {
		t.Fatal("not exhausted after heavy work")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() *Result {
		e := NewEngine(tier.OptaneTopology(256), 99)
		e.Interval = 10 * time.Millisecond
		res, err := Run(e, &fixedWorkload{perInt: 500, intervals: 4}, &fixedSolution{node: 2, prof: time.Millisecond}, 10)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res
	}
	a, b := run(), run()
	if a.ExecTime != b.ExecTime || a.TotalAccesses != b.TotalAccesses {
		t.Fatalf("runs diverged: %v vs %v", a.ExecTime, b.ExecTime)
	}
}

func TestKeepLog(t *testing.T) {
	e := newTestEngine()
	e.KeepLog = true
	res, err := Run(e, &fixedWorkload{perInt: 10, intervals: 3}, &fixedSolution{node: 0, mig: time.Millisecond}, 10)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(e.Log) != res.Intervals {
		t.Fatalf("log entries = %d, want %d", len(e.Log), res.Intervals)
	}
	if e.Log[0].Migration != time.Millisecond {
		t.Fatalf("log migration = %v", e.Log[0].Migration)
	}
}

func TestContentionInflatesLatency(t *testing.T) {
	e := newTestEngine()
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("v", 4*tier.MB)
	w := &fixedWorkload{perInt: 1, intervals: 4}
	w.v = v

	// Saturate node 0's bandwidth in interval 1; interval 2's accesses
	// must be charged more (one-interval lag).
	e.beginInterval()
	e.Access(v, 0, 1, 0, 0)
	e.endInterval()
	base := e.Contention(0)
	e.beginInterval()
	e.Sys.RecordTransfer(0, 400*tier.GB) // >> 95 GB/s * 10ms
	e.endInterval()
	if e.Contention(0) <= base {
		t.Fatalf("contention %v did not rise after saturation", e.Contention(0))
	}
	e.beginInterval()
	before := e.AppTimeThisInterval()
	e.Access(v, 0, 1000, 0, 0)
	inflated := e.AppTimeThisInterval() - before
	wantMin := time.Duration(1000) * (90*time.Nanosecond + e.PerAccessCPU) / 8
	if inflated <= wantMin {
		t.Fatalf("saturated access cost %v not above baseline %v", inflated, wantMin)
	}
}

func TestBackgroundTimeNotOnCriticalPath(t *testing.T) {
	e := newTestEngine()
	sol := &fixedSolution{node: 0}
	e.SetSolution(sol)
	w := &fixedWorkload{perInt: 10, intervals: 1}
	w.Init(e)
	e.beginInterval()
	w.RunInterval(e)
	e.ChargeBackground(time.Hour)
	e.endInterval()
	if e.clock >= time.Hour {
		t.Fatal("background work extended the virtual clock")
	}
	if e.TotalBg != time.Hour {
		t.Fatalf("background time lost: %v", e.TotalBg)
	}
}
