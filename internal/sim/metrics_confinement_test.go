package sim

import (
	"strings"
	"testing"

	"mtm/internal/tier"
)

// TestMetricsConfinement extends the race-audit guard to the metrics
// layer: instrument writes and event emission are serialized-loop-only,
// so doing either from inside a Parallel shard must panic exactly like
// Charge*/Note* do — even at Parallelism 1.
func TestMetricsConfinement(t *testing.T) {
	mustPanic := func(name string, f func(e *Engine)) {
		t.Run(name, func(t *testing.T) {
			e := NewEngine(tier.OptaneTopology(256), 1)
			e.Par = NewPool(1)
			e.EnableMetrics()
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s inside Parallel did not panic", name)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "metrics") {
					t.Fatalf("panic %v does not identify the metrics guard", r)
				}
			}()
			e.Parallel(1, func(int) { f(e) })
		})
	}
	mustPanic("counter-write", func(e *Engine) { e.met.faults.Inc() })
	mustPanic("event-emit", func(e *Engine) {
		e.Metrics().Emit(EventMigrationAbort, "DRAM0->PMEM0", 1)
	})
}

// TestMetricsOutsideParallelAllowed: the same writes are legal on the
// serialized interval loop, and the guard does not fire for registration
// or reads.
func TestMetricsOutsideParallelAllowed(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	e.EnableMetrics()
	e.met.faults.Inc()
	e.Metrics().Emit(EventOOM, "test", 0)
	if got := e.met.faults.Value(); got != 1 {
		t.Fatalf("counter = %d, want 1", got)
	}
	x := e.MetricsExport()
	if x == nil || len(x.Events) != 1 {
		t.Fatalf("export missing emitted event: %+v", x)
	}
}
