package sim

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"time"

	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// FaultPlane is the engine's hook for deterministic fault injection (see
// internal/fault). All methods must be cheap and side-effect-free from the
// engine's point of view; any randomness must come from the plane's own
// source so that an attached-but-inactive plane leaves runs bit-identical
// to an engine with no plane at all.
type FaultPlane interface {
	// Attach sizes per-node state; called once by SetFaultPlane.
	Attach(sockets, nodes int)
	// BeginInterval redraws storm windows at each interval boundary.
	BeginInterval(interval int)
	// PageBusy reports whether one attempt to copy page idx of v to dst
	// fails with a transient EBUSY, and the wasted time of the attempt.
	PageBusy(v *vm.VMA, idx int, dst tier.NodeID) (bool, time.Duration)
	// DestPressure reports whether node n signals transient allocation
	// pressure this interval.
	DestPressure(n tier.NodeID) bool
	// SampleDropFrac is the fraction of PEBS samples lost this interval.
	SampleDropFrac() float64
	// LinkBWFactor is the bandwidth-degradation divisor (>= 1) of the
	// socket→node link this interval.
	LinkBWFactor(socket int, n tier.NodeID) float64
}

// SetFaultPlane attaches a fault plane to the engine (nil detaches). Planes
// that model co-tenant capacity loss implement an optional
// CapacityTax() float64 method; the reported fraction of every node's
// capacity is reserved up front, so workloads sized for the full machine
// hit genuine exhaustion (ErrOutOfMemory) instead of always fitting.
func (e *Engine) SetFaultPlane(fp FaultPlane) {
	e.faults = fp
	if fp == nil {
		return
	}
	fp.Attach(e.Sys.Topo.Sockets, len(e.Sys.Topo.Nodes))
	if t, ok := fp.(interface{ CapacityTax() float64 }); ok {
		if frac := t.CapacityTax(); frac > 0 {
			e.taxBytes = make([]int64, len(e.Sys.Topo.Nodes))
			for i := range e.Sys.Topo.Nodes {
				n := tier.NodeID(i)
				tax := int64(frac * float64(e.Sys.Capacity(n)))
				if e.Sys.Reserve(n, tax) {
					// Recorded so the residency auditor can subtract the
					// co-tenant share from the used ledger.
					e.taxBytes[i] = tax
				}
			}
		}
	}
}

// FaultPlaneAttached reports whether a fault plane is installed.
func (e *Engine) FaultPlaneAttached() bool { return e.faults != nil }

// PageBusy consults the fault plane for an EBUSY-style transient failure
// of copying page idx of v to dst. Without a plane it is always (false, 0).
func (e *Engine) PageBusy(v *vm.VMA, idx int, dst tier.NodeID) (bool, time.Duration) {
	if e.faults == nil {
		return false, 0
	}
	return e.faults.PageBusy(v, idx, dst)
}

// LinkBandwidth returns the effective bandwidth of the socket→node link,
// reduced while the fault plane degrades it.
func (e *Engine) LinkBandwidth(socket int, n tier.NodeID) int64 {
	bw := e.Sys.Topo.Links[socket][n].Bandwidth
	if e.faults != nil {
		if f := e.faults.LinkBWFactor(socket, n); f > 1 {
			bw = int64(float64(bw) / f)
			if bw < 1 {
				bw = 1
			}
		}
	}
	return bw
}

// admissionContention is the contention factor above which a destination
// tier counts as saturated for promotion admission control.
const admissionContention = 4.0

// PromotionPressure reports whether promotions into dst should be deferred
// this interval: the fault plane signals transient capacity pressure, or
// the node's observed bandwidth contention shows heavy oversubscription.
// Without a fault plane it always reports false, which keeps baseline runs
// bit-identical to the pre-fault-injection engine.
func (e *Engine) PromotionPressure(dst tier.NodeID) bool {
	if e.faults == nil {
		return false
	}
	return e.faults.DestPressure(dst) || e.contention[dst] >= admissionContention
}

// NoteDeferredPromotion records one promotion deferred by admission
// control. The robustness counters (DeferredPromotions, MigrationRetries,
// MigrationAborts, WastedBytes, EmergencyDemotions) are engine-global and
// unsynchronised by design; they may only be mutated from the serialised
// interval loop, never from inside Engine.Parallel — the assertOwned
// guards turn a violation into a deterministic panic.
func (e *Engine) NoteDeferredPromotion() {
	e.assertOwned("NoteDeferredPromotion")
	e.DeferredPromotions++
	if e.met != nil {
		e.met.deferred.Inc()
	}
}

// NoteDeferredPromotionTo records a deferred promotion with its pressured
// destination, so the event log can attribute the deferral to a tier.
func (e *Engine) NoteDeferredPromotionTo(dst tier.NodeID) {
	e.NoteDeferredPromotion()
	if e.met != nil {
		e.emitEventOnce(EventPromotionDeferred, e.Sys.Topo.Nodes[dst].Name, 0)
	}
	if e.sp != nil {
		e.SpanEvent("policy", "promotion-deferred",
			span.S("dst", e.Sys.Topo.Nodes[dst].Name))
	}
}

// NoteMigrationRetry records one retried page-copy attempt.
func (e *Engine) NoteMigrationRetry() {
	e.assertOwned("NoteMigrationRetry")
	e.MigrationRetries++
	if e.met != nil {
		e.met.retries.Inc()
	}
}

// NoteMigrationRetryAt records one retried page-copy attempt attributed to
// its src→dst tier pair.
func (e *Engine) NoteMigrationRetryAt(src, dst tier.NodeID) {
	e.NoteMigrationRetry()
	if e.met != nil {
		pairCounter(e.met.retriedPages, src, dst).Inc()
	}
}

// NoteMigrationBackoff records virtual backoff time charged while retrying
// a copy on the src→dst pair. It only feeds the metrics layer; the time
// itself is charged through ChargeMigration by the caller.
func (e *Engine) NoteMigrationBackoff(src, dst tier.NodeID, d time.Duration) {
	e.assertOwned("NoteMigrationBackoff")
	if e.met != nil {
		pairCounter(e.met.backoffNs, src, dst).AddDuration(d)
	}
}

// MoveBegin opens a page-move transaction: room for the page is reserved
// on dst while the page stays mapped on its source (copy-then-commit, the
// Nomad transactional migration shape). It reports false, leaving all
// state unchanged, when dst has no room. The source node is captured at
// begin time, and MoveCommit/MoveAborted attribute the outcome to that
// captured (src, dst) pair: an abort followed by a successful retry on a
// re-planned destination counts one abort on the original pair and one
// move on the new pair, never both on the original. Transactions do not
// nest; opening a second one before resolving the first panics.
func (e *Engine) MoveBegin(v *vm.VMA, idx int, dst tier.NodeID) bool {
	e.assertOwned("MoveBegin")
	if e.txnOpen {
		panic("sim: MoveBegin with a move transaction already open")
	}
	if !e.Sys.Reserve(dst, v.PageSize) {
		// Shadow frames on dst are soft capacity: reclaim the oldest
		// until the page fits before giving up.
		if !e.shadowMakeRoom(dst, v.PageSize) || !e.Sys.Reserve(dst, v.PageSize) {
			return false
		}
	}
	e.txnOpen = true
	e.txnSrc = v.Node(idx)
	return true
}

// MoveCommit completes a transaction opened by MoveBegin: the source frame
// is released and the page rebinds to dst. The commit lands in the
// engine's committed-move ledger (checked by Audit) and counts as a
// success on the pair's migration circuit breaker.
func (e *Engine) MoveCommit(v *vm.VMA, idx int, dst tier.NodeID) {
	e.assertOwned("MoveCommit")
	if !e.txnOpen {
		panic("sim: MoveCommit without MoveBegin")
	}
	src := e.txnSrc
	e.txnOpen = false
	if !e.shadowMoveCommitted(v, idx, src, dst) && src != vm.NoNode && src != dst {
		e.Sys.Release(src, v.PageSize)
	}
	v.Place(idx, dst)
	e.committedPages++
	e.committedBytes += v.PageSize
	e.recordMoveSuccess(src, dst)
	e.admissionMoveCommitted(v, idx, src, dst)
	e.fidelityMoveCommitted(v, idx, src, dst, false)
	if e.met != nil {
		pairCounter(e.met.movedPages, src, dst).Inc()
	}
}

// MoveAborted rolls back a transaction opened by MoveBegin: the dst
// reservation is released, the page keeps its source frame, and the abort
// plus its thrown-away copy bytes are recorded against the begin-time
// (src, dst) pair. The abort also feeds the pair's circuit breaker.
func (e *Engine) MoveAborted(v *vm.VMA, idx int, dst tier.NodeID) {
	e.assertOwned("MoveAborted")
	if !e.txnOpen {
		panic("sim: MoveAborted without MoveBegin")
	}
	src := e.txnSrc
	e.txnOpen = false
	e.Sys.Release(dst, v.PageSize)
	e.MigrationAborts++
	e.WastedBytes += v.PageSize
	if e.met != nil {
		e.met.aborts.Inc()
		e.met.wastedBytes.Add(v.PageSize)
		pairCounter(e.met.abortedPages, src, dst).Inc()
		if int(src) >= 0 && int(src) < len(e.met.pairName) {
			e.emitEventOnce(EventMigrationAbort, e.met.pairName[src][dst], int64(idx))
		}
	}
	if e.sp != nil {
		srcName := ""
		if int(src) >= 0 && int(src) < len(e.Sys.Topo.Nodes) {
			srcName = e.Sys.Topo.Nodes[src].Name
		}
		e.SpanEvent("migration", "abort",
			span.S("src", srcName),
			span.S("dst", e.Sys.Topo.Nodes[dst].Name),
			span.S("vma", v.Name),
			span.I("page", int64(idx)),
			span.I("wasted_bytes", v.PageSize))
	}
	e.admissionMoveAborted(v.PageSize, src, dst)
	e.recordMoveAbort(src, dst)
}

// ErrOutOfMemory is the sentinel for capacity exhaustion: every tier is
// full (after emergency demotion failed to consolidate enough room) while
// a fault needed a frame. Use errors.Is against run errors.
var ErrOutOfMemory = errors.New("sim: out of memory")

// OOMError carries the details of a failed placement. It unwraps to
// ErrOutOfMemory.
type OOMError struct {
	VMA  string // the faulting VMA's description
	Page int    // faulting page index
	Need int64  // bytes that could not be placed
}

func (e *OOMError) Error() string {
	return fmt.Sprintf("sim: out of memory placing %s page %d (%d bytes)", e.VMA, e.Page, e.Need)
}

func (e *OOMError) Unwrap() error { return ErrOutOfMemory }

// Err returns the engine's sticky failure (an *OOMError), or nil. Once a
// failure is recorded the engine stops servicing accesses and Run returns
// the error.
func (e *Engine) Err() error { return e.failed }

// fail records the first failure; later calls keep the original.
func (e *Engine) fail(err error) {
	if e.failed == nil {
		e.failed = err
		if e.met != nil {
			e.met.oom.Inc()
			if oe, ok := err.(*OOMError); ok {
				e.met.reg.Emit(EventOOM, oe.VMA, int64(oe.Page))
			} else {
				e.met.reg.Emit(EventOOM, err.Error(), 0)
			}
		}
		if e.sp != nil {
			if oe, ok := err.(*OOMError); ok {
				e.SpanEvent("emergency", "oom",
					span.S("vma", oe.VMA),
					span.I("page", int64(oe.Page)),
					span.I("need_bytes", oe.Need))
			} else {
				e.SpanEvent("emergency", "oom", span.S("error", err.Error()))
			}
		}
	}
}

// emergencyDemotePageCost is the fixed per-page kernel work of the
// emergency (direct-reclaim-style) demotion path, on top of the copy.
const emergencyDemotePageCost = 2 * time.Microsecond

// emergencyReclaim is the simulator's direct-reclaim analogue, run only
// when every tier failed FirstFit for a faulting page: walk the view
// fastest-first and try to consolidate enough room on one node by pushing
// its coldest resident pages down to slower nodes with free space. This
// rescues the fragmented-capacity case (free bytes exist but no single
// node can hold the new page); when total capacity is genuinely exhausted
// it returns Invalid and the fault fails with ErrOutOfMemory.
func (e *Engine) emergencyReclaim(socket int, need int64) tier.NodeID {
	view := e.Sys.Topo.View(socket)
	for vi, cand := range view {
		if e.Sys.Free(cand) >= need {
			return cand
		}
		lower := view[vi+1:]
		if len(lower) == 0 {
			break
		}
		if e.demoteColdest(cand, lower, need-e.Sys.Free(cand)) {
			e.EmergencyDemotions++
			if e.met != nil {
				e.met.emergencies.Inc()
				e.emitEventOnce(EventEmergencyDemotion, e.Sys.Topo.Nodes[cand].Name, need)
			}
			if e.sp != nil {
				e.SpanEvent("emergency", "emergency-demotion",
					span.S("node", e.Sys.Topo.Nodes[cand].Name),
					span.I("need_bytes", need))
			}
			return cand
		}
	}
	return tier.Invalid
}

// coldShardPages is the page-span size of one victim-collection shard.
// Fixed (never derived from worker count) so the shard layout — and with
// it the merged candidate order — is identical at any Parallelism.
const coldShardPages = 1 << 15

// demoteColdest pushes the coldest resident pages of node down to the
// first lower-tier node with room until need bytes are freed. It reports
// whether the full amount was freed; partial progress is kept (the
// capacity accounting stays exact either way).
//
// The candidate walk touches every page of every VMA, the widest loop on
// the emergency path, so it is sharded: each shard collects candidates
// from its own page span into a private slot (reads only — Present, Node,
// Count), and the merge concatenates slots in shard order, reproducing the
// sequential (VMA, page) candidate order exactly. The demotions themselves
// (MovePage, transfer accounting) stay on the serialised path below.
func (e *Engine) demoteColdest(node tier.NodeID, lower []tier.NodeID, need int64) bool {
	type cold struct {
		v     *vm.VMA
		idx   int
		count uint32
	}
	type span struct {
		v      *vm.VMA
		lo, hi int
	}
	var spans []span
	for _, v := range e.AS.VMAs() {
		for s := 0; s < NumShards(v.NPages, coldShardPages); s++ {
			lo, hi := ShardSpan(v.NPages, coldShardPages, s)
			spans = append(spans, span{v, lo, hi})
		}
	}
	parts := make([][]cold, len(spans))
	e.Parallel(len(spans), func(s int) {
		sp := spans[s]
		var out []cold
		// Word-wide over the present plane; set bits are consumed in
		// ascending order so the merged candidate order is unchanged.
		for w := sp.lo / vm.WordPages; w*vm.WordPages < sp.hi; w++ {
			word := sp.v.PresentRangeWord(w, sp.lo, sp.hi)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if sp.v.Node(i) == node {
					out = append(out, cold{sp.v, i, sp.v.Count(i)})
				}
			}
		}
		parts[s] = out
	})
	var pages []cold
	for _, p := range parts {
		pages = append(pages, p...)
	}
	// Coldest first; the merged slice is in (VMA, page) order, so the
	// stable sort keeps victim selection deterministic.
	sort.SliceStable(pages, func(a, b int) bool { return pages[a].count < pages[b].count })
	var freed int64
	e.SetMoveContext("emergency-demotion")
	defer e.ClearMoveContext()
	for _, p := range pages {
		if freed >= need {
			break
		}
		var dst tier.NodeID = tier.Invalid
		for _, l := range lower {
			if e.Sys.Free(l) >= p.v.PageSize {
				dst = l
				break
			}
		}
		if dst == tier.Invalid {
			break
		}
		// Emergency lane: record-only — the OOM path is never refused,
		// but the class counters and starvation watchdog must see it.
		e.admitEmergencyMove(node, dst, p.v.PageSize)
		if !e.MovePage(p.v, p.idx, dst) {
			break
		}
		freed += p.v.PageSize
		// Emergency demotion runs synchronously inside the fault path:
		// the copy and fixed kernel work land on application time.
		e.intApp += e.Sys.CopyTime(e.HomeSocket, node, dst, p.v.PageSize) + emergencyDemotePageCost
		e.Sys.RecordTransfer(node, p.v.PageSize)
		e.Sys.RecordTransfer(dst, p.v.PageSize)
		e.NoteDemotion(p.v.PageSize)
	}
	return freed >= need
}
