// Package sim is the virtual-time simulation engine that everything else
// plugs into. It owns the clock, the tier system, and the address space,
// charges every application access its tier latency (with bandwidth
// contention), services page faults through the active solution's
// placement policy, and drives the profiling-interval loop:
//
//	interval start -> application runs -> profiling -> migration -> repeat
//
// Time is virtual: results are deterministic nanosecond accounting, not
// wall-clock measurements, which makes experiments reproducible on any
// host while preserving the relative performance the paper reports.
package sim

import (
	"math/rand"
	"sync/atomic"
	"time"

	"mtm/internal/fidelity"
	"mtm/internal/metrics"
	"mtm/internal/pebs"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// CachelineBytes is the bytes moved per application access for bandwidth
// accounting.
const CachelineBytes = 64

// Solution is a complete page-management system under test: an initial
// placement policy plus per-interval profiling and migration. The engine
// calls IntervalStart before the application runs in an interval and
// IntervalEnd after; implementations charge their costs through the
// engine's Charge* methods.
type Solution interface {
	Name() string
	// Place chooses the node for a faulting (first-touched) page.
	Place(e *Engine, v *vm.VMA, idx int, socket int) tier.NodeID
	// IntervalStart runs before application execution in an interval
	// (e.g. to arm PEBS counters).
	IntervalStart(e *Engine)
	// IntervalEnd runs profiling and migration for the interval.
	IntervalEnd(e *Engine)
}

// Workload is a simulated application. RunInterval must issue accesses via
// Engine.Access until Engine.IntervalExhausted reports true or the
// workload completes.
type Workload interface {
	Name() string
	// Init allocates the workload's VMAs and builds its data structures.
	Init(e *Engine)
	// RunInterval executes one profiling interval's worth of work.
	RunInterval(e *Engine)
	// Done reports whether all work has completed.
	Done() bool
	// ReadFraction is the workload's approximate read share (metadata).
	ReadFraction() float64
}

// IntervalStats is the per-interval record used by the breakdown figures.
type IntervalStats struct {
	App           time.Duration
	Profiling     time.Duration
	Migration     time.Duration // critical-path migration time
	Background    time.Duration
	PromotedBytes int64
	DemotedBytes  int64
	NodeAccesses  []int64 // app accesses served per node this interval
}

// Engine is the simulation core. Not safe for concurrent use: the interval
// loop is single-threaded, and parallelism is confined to the sharded
// phases run through Engine.Parallel (see parallel.go for the contract).
type Engine struct {
	Sys *tier.System
	AS  *vm.AddressSpace
	Rng *rand.Rand
	// Seed is the value Rng was created from; the sharded phases derive
	// their per-shard streams from it (ShardRand).
	Seed int64
	// Par runs the sharded profiling/migration phases; NewEngine defaults
	// it to a GOMAXPROCS-wide pool. Results are bit-identical at any
	// worker count, so this is purely a wall-clock knob.
	Par *Pool

	inParallel atomic.Bool // set during Engine.Parallel (see assertOwned)
	scratch    []*Scratch  // per-shard reusable state (see scratch.go)

	Threads    int
	HomeSocket int // socket the application's threads run on
	Interval   time.Duration
	// PerAccessCPU is the fixed non-memory cost of one application
	// operation; it keeps perfectly-placed workloads from becoming
	// infinitely fast and models core-side work.
	PerAccessCPU time.Duration
	// FaultCost is the fixed kernel cost of one demand-zero page fault,
	// excluding the page-zeroing copy (charged from tier bandwidth).
	FaultCost time.Duration

	PEBS *pebs.Buffer // optional; solutions arm/disarm it

	// Intercept, when non-nil, replaces the default per-node latency
	// charge of Access with a solution-computed cost. The hardware-
	// managed-cache baseline (Optane Memory Mode) uses it to model
	// DRAM-as-cache hits, misses, and write amplification.
	Intercept func(v *vm.VMA, idx int, n, nw uint32, node tier.NodeID) time.Duration

	// Observer, when non-nil, sees every application access after it is
	// charged (trace recording). It must not issue accesses itself.
	Observer func(v *vm.VMA, idx int, n, nw uint32, socket int)

	sol    Solution
	faults FaultPlane
	failed error               // sticky first failure (e.g. *OOMError)
	met    *engineMetrics      // nil unless EnableMetrics was called
	sp     *span.Tracer        // nil unless EnableSpans was called
	hlt    *healthState        // nil unless EnableHealth was called
	adm    *admissionState     // nil unless EnableAdmission was called
	shd    *shadowState        // nil unless EnableShadow was called
	fid    *fidelityState      // nil unless EnableFidelity was called
	evSeen map[string]struct{} // per-interval event dedup (emitEventOnce)

	// Open page-move transaction (MoveBegin → MoveCommit/MoveAborted).
	// The source node is captured at begin time so the outcome is
	// attributed to the pair the transaction was opened against.
	txnOpen bool
	txnSrc  tier.NodeID

	clock time.Duration

	// Interval accumulators.
	intApp      time.Duration
	intProf     time.Duration
	intMig      time.Duration
	intBg       time.Duration
	intPromoted int64
	intDemoted  int64
	intAccesses []int64
	contention  []float64 // per-node factor from previous interval

	// Cumulative stats.
	TotalApp      time.Duration
	TotalProf     time.Duration
	TotalMig      time.Duration
	TotalBg       time.Duration
	NodeAccesses  []int64 // app accesses per node, cumulative
	TotalAccesses int64
	TotalFaults   int64
	PromotedBytes int64
	DemotedBytes  int64
	Intervals     int
	Log           []IntervalStats
	KeepLog       bool

	// Robustness accounting (transactional migration and the emergency
	// out-of-memory path).
	MigrationRetries   int64 // page-copy attempts retried after EBUSY
	MigrationAborts    int64 // page-move transactions rolled back
	WastedBytes        int64 // copy bytes thrown away by aborts
	DeferredPromotions int64 // promotions deferred by admission control
	EmergencyDemotions int64 // emergency-reclaim events in the fault path

	// Tier-health accounting (non-zero only with EnableHealth).
	PoisonedPages    int64 // pages lost to uncorrectable memory errors
	PoisonRecoveries int64 // recovery faults taken on poisoned pages
	DrainedBytes     int64 // bytes evacuated off draining tiers
	BreakerTrips     int64 // migration circuit-breaker trips
	DrainStalls      int64 // drain steps stalled with no destination

	// Admission-control accounting (non-zero only with EnableAdmission).
	AdmissionAdmits  int64 // planned moves admitted (possibly clipped)
	AdmissionDefers  int64 // planned moves deferred (budget / shedding)
	AdmissionRejects int64 // planned moves rejected (ROI / victim heat)
	ThrashSuppressed int64 // page moves blocked by the ping-pong cool-down

	// Non-exclusive-tiering accounting (non-zero only with EnableShadow).
	ShadowHits          int64 // demotion lookups that found a valid shadow
	ShadowInvalidations int64 // shadows diverged by a write to the fast copy
	FreeDemotions       int64 // demotions completed as zero-copy flips
	FreeDemotionBytes   int64 // bytes demoted without copying
	ShadowSyncBytes     int64 // bytes re-copied to shadows in the background
	shadowRetains       int64 // promotions that retained their source frame
	shadowDrops         int64 // shadows dropped (pressure/poison/drain/stale)

	// Committed-move ledger and residency bookkeeping for Audit.
	committedPages int64
	committedBytes int64
	poisonedBytes  int64
	taxBytes       []int64 // per-node co-tenant capacity tax (may be nil)
	opaqueBytes    []int64 // per-node solution carve-outs (may be nil)
	drainStallErr  error   // last ErrNoDestination, wrapped

	latCache [][]time.Duration
}

// NewEngine builds an engine over the topology with the paper's default
// settings: 8 threads on socket 0, 10 s profiling interval.
func NewEngine(topo *tier.Topology, seed int64) *Engine {
	sys := tier.NewSystem(topo)
	n := len(topo.Nodes)
	e := &Engine{
		Sys:          sys,
		AS:           vm.NewAddressSpace(),
		Rng:          rand.New(rand.NewSource(seed)),
		Seed:         seed,
		Par:          NewPool(0),
		Threads:      8,
		HomeSocket:   0,
		Interval:     10 * time.Second,
		PerAccessCPU: 15 * time.Nanosecond,
		FaultCost:    1500 * time.Nanosecond,
		intAccesses:  make([]int64, n),
		contention:   make([]float64, n),
		NodeAccesses: make([]int64, n),
	}
	for i := range e.contention {
		e.contention[i] = 1
	}
	e.latCache = make([][]time.Duration, topo.Sockets)
	for s := range e.latCache {
		e.latCache[s] = make([]time.Duration, n)
		for i := range e.latCache[s] {
			e.latCache[s][i] = topo.Links[s][i].Latency
		}
	}
	return e
}

// Clock returns the current virtual time.
func (e *Engine) Clock() time.Duration { return e.clock }

// Contention returns the bandwidth-contention factor of node n carried
// over from the previous interval (>= 1).
func (e *Engine) Contention(n tier.NodeID) float64 { return e.contention[n] }

// Solution returns the active solution (set by Run).
func (e *Engine) Solution() Solution { return e.sol }

// SetSolution installs the solution; exposed for tests that drive the
// interval loop manually.
func (e *Engine) SetSolution(s Solution) { e.sol = s }

// Access simulates n application accesses (nw of them writes) to page idx
// of v from the given socket. Non-present pages fault and are placed by
// the active solution.
func (e *Engine) Access(v *vm.VMA, idx int, n, nw uint32, socket int) {
	if n == 0 || e.failed != nil {
		return
	}
	node, fault := v.TouchN(idx, n, nw, socket)
	if fault {
		var ok bool
		node, ok = e.handleFault(v, idx, socket)
		if !ok {
			return // placement failed; the engine carries the error
		}
		v.TouchN(idx, n, nw, socket)
	}
	if e.Intercept != nil {
		e.intApp += e.Intercept(v, idx, n, nw, node) + time.Duration(n)*e.PerAccessCPU
	} else {
		lat := time.Duration(float64(e.latCache[socket][node]) * e.contention[node])
		e.intApp += time.Duration(n) * (lat + e.PerAccessCPU)
	}
	e.intAccesses[node] += int64(n)
	e.NodeAccesses[node] += int64(n)
	e.TotalAccesses += int64(n)
	e.Sys.RecordTransfer(node, int64(n)*CachelineBytes)
	if e.PEBS != nil {
		e.PEBS.Record(v, idx, node, n)
	}
	if e.Observer != nil {
		e.Observer(v, idx, n, nw, socket)
	}
}

// handleFault places a first-touched page via the solution, falling back
// to any node with space when the preferred node is full and to emergency
// demotion when every node is full. On true exhaustion it records a sticky
// *OOMError and reports ok=false instead of panicking.
func (e *Engine) handleFault(v *vm.VMA, idx int, socket int) (tier.NodeID, bool) {
	if e.hlt != nil && v.IsPoisoned(idx) {
		// HWPOISON recovery: the app touched a quarantined page. The
		// machine-check + SIGBUS-handler round trip is charged to the
		// app, the dead frame is acknowledged, and the fault proceeds as
		// demand-zero onto a healthy tier.
		e.poisonRecovery(v, idx)
	}
	node := e.sol.Place(e, v, idx, socket)
	if node == tier.Invalid || !e.Sys.Reserve(node, v.PageSize) {
		node = e.Sys.FirstFit(e.Sys.Topo.View(socket), v.PageSize)
		if node == tier.Invalid {
			// Shadow frames are soft capacity: reclaim them (oldest
			// first) before resorting to emergency demotion.
			node = e.shadowReclaimFor(e.Sys.Topo.View(socket), v.PageSize)
		}
		if node == tier.Invalid {
			node = e.emergencyReclaim(socket, v.PageSize)
		}
		if node == tier.Invalid {
			e.fail(&OOMError{VMA: v.String(), Page: idx, Need: v.PageSize})
			return tier.Invalid, false
		}
		e.Sys.Reserve(node, v.PageSize)
	}
	v.Place(idx, node)
	e.TotalFaults++
	if e.met != nil {
		e.met.faults.Inc()
	}
	// Demand-zero: kernel fixed cost plus zeroing the page at the
	// node's best bandwidth.
	zero := e.Sys.CopyTime(socket, node, node, v.PageSize)
	e.intApp += e.FaultCost + zero
	e.Sys.RecordTransfer(node, v.PageSize)
	return node, true
}

// MovePage rebinds page idx of v from its current node to dst, updating
// capacity accounting. It does not charge time; migration mechanisms do.
// It reports whether the move happened (false when dst is full). It is
// the non-transactional fast path: MoveBegin followed immediately by
// MoveCommit (mechanisms that can fail mid-copy use those directly).
func (e *Engine) MovePage(v *vm.VMA, idx int, dst tier.NodeID) bool {
	if v.Node(idx) == dst {
		return true
	}
	if !e.MoveBegin(v, idx, dst) {
		return false
	}
	e.MoveCommit(v, idx, dst)
	return true
}

// ChargeProfiling adds d to the interval's profiling (critical-path) cost.
// Like all Charge*/Note* accounting it is serialised: sharded phases
// accumulate per-shard durations and charge the merged sum afterwards.
func (e *Engine) ChargeProfiling(d time.Duration) { e.assertOwned("ChargeProfiling"); e.intProf += d }

// ChargeMigration adds d to the interval's critical-path migration cost.
func (e *Engine) ChargeMigration(d time.Duration) { e.assertOwned("ChargeMigration"); e.intMig += d }

// ChargeBackground adds d of off-critical-path work (async page copy);
// it occupies helper threads and bandwidth but does not extend execution.
func (e *Engine) ChargeBackground(d time.Duration) { e.assertOwned("ChargeBackground"); e.intBg += d }

// NotePromotion/NoteDemotion record migrated volume for the statistics
// tables.
func (e *Engine) NotePromotion(bytes int64) { e.assertOwned("NotePromotion"); e.intPromoted += bytes }
func (e *Engine) NoteDemotion(bytes int64)  { e.assertOwned("NoteDemotion"); e.intDemoted += bytes }

// NoteOpaqueReserve records bytes a solution reserved on a node outside
// the page tables (e.g. HMC carving out all of DRAM as a memory-side
// cache). The auditor credits them against the node's used ledger, which
// would otherwise read as unexplained residency.
func (e *Engine) NoteOpaqueReserve(n tier.NodeID, bytes int64) {
	e.assertOwned("NoteOpaqueReserve")
	if e.opaqueBytes == nil {
		e.opaqueBytes = make([]int64, len(e.Sys.Topo.Nodes))
	}
	e.opaqueBytes[n] += bytes
}

// AppTimeThisInterval returns the application time consumed so far in the
// current interval, normalised for thread parallelism.
func (e *Engine) AppTimeThisInterval() time.Duration {
	return e.intApp / time.Duration(e.Threads)
}

// IntervalExhausted reports whether the application has consumed its
// interval budget. A failed engine (out of memory) always reports true so
// workload loops terminate instead of spinning on no-op accesses.
func (e *Engine) IntervalExhausted() bool {
	return e.failed != nil || e.AppTimeThisInterval() >= e.Interval
}

func (e *Engine) beginInterval() {
	if e.faults != nil {
		e.faults.BeginInterval(e.Intervals)
	}
	e.metricsBeginInterval()
	e.intApp, e.intProf, e.intMig, e.intBg = 0, 0, 0, 0
	e.intPromoted, e.intDemoted = 0, 0
	for i := range e.intAccesses {
		e.intAccesses[i] = 0
	}
	e.Sys.ResetWindow(e.Interval)
	e.spansBeginInterval()
	e.healthBeginInterval()
	e.admissionBeginInterval()
}

func (e *Engine) endInterval() {
	e.healthEndInterval()
	// The fidelity oracle samples here: after the solution's migration
	// pass (so this interval's moves are in the lineage ledger) and before
	// ResetCounts (the count planes are its ground truth). It runs before
	// spansEndInterval so outcome events parent into the open interval.
	e.fidelityEndInterval()
	// The admission layer's once-per-interval work — learner-ledger
	// resolution (reads the same count planes as the oracle, so it too
	// must precede ResetCounts), demand-scaled refill, floor adaptation,
	// and the starvation watchdog — runs after the oracle and before
	// spansEndInterval so watchdog events parent into the open interval.
	e.admissionEndInterval()
	app := e.AppTimeThisInterval()
	e.spansEndInterval(app)
	e.clock += app + e.intProf + e.intMig
	e.TotalApp += app
	e.TotalProf += e.intProf
	e.TotalMig += e.intMig
	e.TotalBg += e.intBg
	e.PromotedBytes += e.intPromoted
	e.DemotedBytes += e.intDemoted
	if e.KeepLog {
		na := make([]int64, len(e.intAccesses))
		copy(na, e.intAccesses)
		e.Log = append(e.Log, IntervalStats{
			App: app, Profiling: e.intProf, Migration: e.intMig,
			Background:    e.intBg,
			PromotedBytes: e.intPromoted, DemotedBytes: e.intDemoted,
			NodeAccesses: na,
		})
	}
	// Contention factors for the next interval come from this one's
	// observed demand (a one-interval lag keeps the model causal).
	for i := range e.contention {
		e.contention[i] = e.Sys.ContentionFactor(tier.NodeID(i))
	}
	e.metricsEndInterval(app)
	e.AS.ResetCounts()
	// Fold-and-zero: the interval volumes are in the cumulative totals
	// now, so zeroing here (not only at the next beginInterval) keeps the
	// committed-move ledger checkable between intervals (see Audit).
	e.intPromoted, e.intDemoted = 0, 0
	e.Intervals++
}

// RunInterval executes exactly one profiling interval: solution start
// hook, application execution, solution end hook, bookkeeping.
func (e *Engine) RunInterval(w Workload) {
	e.beginInterval()
	e.sol.IntervalStart(e)
	if e.faults != nil && e.PEBS != nil {
		// Sample-drop storms apply to the window the solution just armed.
		e.PEBS.DropFrac = e.faults.SampleDropFrac()
	}
	w.RunInterval(e)
	e.sol.IntervalEnd(e)
	e.endInterval()
}

// Result summarises a complete run.
type Result struct {
	Solution   string
	Workload   string
	ExecTime   time.Duration
	App        time.Duration
	Profiling  time.Duration
	Migration  time.Duration
	Background time.Duration
	Intervals  int
	Completed  bool
	// Truncated reports that maxIntervals elapsed before the workload
	// finished: the run is a partial result, not a completed one.
	Truncated     bool
	NodeAccesses  []int64
	TotalAccesses int64
	PromotedBytes int64
	DemotedBytes  int64

	// Robustness accounting (non-zero only under fault injection or
	// capacity emergencies).
	MigrationRetries   int64
	MigrationAborts    int64
	WastedBytes        int64
	DeferredPromotions int64
	EmergencyDemotions int64

	// Tier-health accounting (present only when the health subsystem ran;
	// omitted otherwise so health-free Result JSON is unchanged).
	PoisonedPages    int64 `json:",omitempty"`
	PoisonRecoveries int64 `json:",omitempty"`
	DrainedBytes     int64 `json:",omitempty"`
	BreakerTrips     int64 `json:",omitempty"`
	DrainStalls      int64 `json:",omitempty"`
	// TierStates is the final health state per node, in node order; nil
	// without the health subsystem.
	TierStates []string `json:",omitempty"`

	// Admission-control accounting (present only when the admission
	// subsystem ran; omitted otherwise so admission-free Result JSON is
	// unchanged).
	AdmissionAdmits  int64 `json:",omitempty"`
	AdmissionDefers  int64 `json:",omitempty"`
	AdmissionRejects int64 `json:",omitempty"`
	ThrashSuppressed int64 `json:",omitempty"`

	// AdmissionLanes breaks admission activity down by traffic class
	// (normal / drain / emergency) when priority lanes are enabled; nil
	// otherwise so lane-free Result JSON is unchanged.
	AdmissionLanes *LaneStats `json:",omitempty"`

	// Non-exclusive-tiering accounting (present only when the active
	// policy retained shadow frames; omitted otherwise so shadow-free
	// Result JSON is unchanged).
	ShadowHits          int64 `json:",omitempty"`
	ShadowInvalidations int64 `json:",omitempty"`
	FreeDemotions       int64 `json:",omitempty"`
	FreeDemotionBytes   int64 `json:",omitempty"`
	ShadowSyncBytes     int64 `json:",omitempty"`

	// MigratedBytes is the copy traffic actually paid for migration:
	// promoted plus demoted volume minus the demotions that completed as
	// zero-copy shadow flips.
	MigratedBytes int64

	// Fidelity is the ground-truth oracle report (profiler accuracy,
	// migration outcome lineage, hotness heatmap) when the engine ran with
	// EnableFidelity; nil otherwise so fidelity-off Result JSON is
	// unchanged.
	Fidelity *fidelity.Report `json:",omitempty"`

	// Metrics is the full observability export (instrument values,
	// per-interval time series, event log) when the engine ran with
	// EnableMetrics; nil otherwise.
	Metrics *metrics.Export `json:",omitempty"`

	// Spans is the deterministic span trace (interval pipeline spans and
	// migration decision provenance) when the engine ran with
	// EnableSpans; nil otherwise.
	Spans *span.Export `json:",omitempty"`
}

// Run drives workload w under solution sol until the workload completes,
// maxIntervals elapse, or the engine fails (out of memory). It returns the
// summary alongside the engine's failure, if any; the summary covers the
// partial run in the error case.
func Run(e *Engine, w Workload, sol Solution, maxIntervals int) (*Result, error) {
	e.sol = sol
	if e.sp != nil {
		e.sp.SetMeta("solution", sol.Name())
		e.sp.SetMeta("workload", w.Name())
	}
	w.Init(e)
	for i := 0; i < maxIntervals && !w.Done() && e.failed == nil; i++ {
		e.RunInterval(w)
	}
	na := make([]int64, len(e.NodeAccesses))
	copy(na, e.NodeAccesses)
	return &Result{
		Solution:            sol.Name(),
		Workload:            w.Name(),
		ExecTime:            e.clock,
		App:                 e.TotalApp,
		Profiling:           e.TotalProf,
		Migration:           e.TotalMig,
		Background:          e.TotalBg,
		Intervals:           e.Intervals,
		Completed:           w.Done() && e.failed == nil,
		Truncated:           e.failed == nil && !w.Done(),
		NodeAccesses:        na,
		TotalAccesses:       e.TotalAccesses,
		PromotedBytes:       e.PromotedBytes,
		DemotedBytes:        e.DemotedBytes,
		MigrationRetries:    e.MigrationRetries,
		MigrationAborts:     e.MigrationAborts,
		WastedBytes:         e.WastedBytes,
		DeferredPromotions:  e.DeferredPromotions,
		EmergencyDemotions:  e.EmergencyDemotions,
		PoisonedPages:       e.PoisonedPages,
		PoisonRecoveries:    e.PoisonRecoveries,
		DrainedBytes:        e.DrainedBytes,
		BreakerTrips:        e.BreakerTrips,
		DrainStalls:         e.DrainStalls,
		AdmissionAdmits:     e.AdmissionAdmits,
		AdmissionDefers:     e.AdmissionDefers,
		AdmissionRejects:    e.AdmissionRejects,
		ThrashSuppressed:    e.ThrashSuppressed,
		AdmissionLanes:      e.AdmissionLaneStats(),
		ShadowHits:          e.ShadowHits,
		ShadowInvalidations: e.ShadowInvalidations,
		FreeDemotions:       e.FreeDemotions,
		FreeDemotionBytes:   e.FreeDemotionBytes,
		ShadowSyncBytes:     e.ShadowSyncBytes,
		MigratedBytes:       e.PromotedBytes + e.DemotedBytes - e.FreeDemotionBytes,
		TierStates:          e.TierStates(),
		Fidelity:            e.FidelityReport(),
		Metrics:             e.MetricsExport(),
		Spans:               e.SpansExport(),
	}, e.failed
}
