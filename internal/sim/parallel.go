// Worker pool for the profiling/migration hot path. The engine's interval
// loop is single-threaded by design (virtual-time accounting must be
// serialised), but the expensive inner passes — region-table PTE scans,
// PEBS sample attribution, migration span accounting — are data-parallel
// over disjoint shards of the address space. This file provides the pool
// and the determinism contract those passes rely on:
//
//   - Work is cut into shards by a FIXED rule (fixed shard size, never
//     "divide by worker count"), so the shard layout is identical at any
//     Parallelism setting.
//   - A shard function only writes shard-local state (per-shard scratch
//     slots, per-region fields of regions the shard owns). Engine-global
//     accounting is mutated only between Parallel calls; the guarded
//     methods in robustness.go panic if a shard breaks this rule.
//   - Randomness inside a shard comes from Engine.ShardRand, a stream
//     derived from (engine seed, interval, salt, shard) — a pure function
//     of the simulation state, not of scheduling.
//
// Together these make runs bit-identical at Parallelism 1 and N: the
// shards compute the same values in any order, and the caller merges
// per-shard results in shard order.
package sim

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool runs shard functions across a bounded set of goroutines.
type Pool struct {
	workers int
}

// NewPool creates a pool with the given worker count; workers <= 0 selects
// GOMAXPROCS. A 1-worker pool runs everything inline on the caller's
// goroutine (the sequential engine).
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers returns the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Run invokes fn(shard) for every shard in [0, n), distributing shards
// across the pool's workers and returning when all have completed. fn must
// confine its writes to shard-local state. A panic in any shard is
// re-raised on the caller's goroutine after the remaining workers drain.
func (p *Pool) Run(n int, fn func(shard int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var (
		next     atomic.Int64
		panicked atomic.Value
		wg       sync.WaitGroup
	)
	work := func() {
		defer wg.Done()
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, fmt.Sprintf("%v", r))
			}
		}()
		for {
			s := int(next.Add(1)) - 1
			if s >= n {
				return
			}
			fn(s)
		}
	}
	wg.Add(w)
	for i := 0; i < w; i++ {
		go work()
	}
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// NumShards returns how many fixed-size shards cover n items.
func NumShards(n, shardSize int) int {
	if n <= 0 {
		return 0
	}
	if shardSize <= 0 {
		shardSize = 1
	}
	return (n + shardSize - 1) / shardSize
}

// ShardSpan returns the half-open item range [lo, hi) covered by shard s
// when n items are cut into fixed-size shards.
func ShardSpan(n, shardSize, s int) (lo, hi int) {
	if shardSize <= 0 {
		shardSize = 1
	}
	lo = s * shardSize
	hi = lo + shardSize
	if hi > n {
		hi = n
	}
	if lo > n {
		lo = n
	}
	return lo, hi
}

// Parallel runs fn over n shards on the engine's pool, flagging the engine
// as inside a parallel section so the guarded accounting methods can
// detect (and panic on) unconfined shard writes. The flag is set even at
// Parallelism 1, so a confinement bug surfaces deterministically in
// sequential runs and plain `go test`, not only under -race.
func (e *Engine) Parallel(n int, fn func(shard int)) {
	if e.Par == nil {
		e.Par = NewPool(1)
	}
	// Slot creation happens here, on the serialised path, so shard
	// functions only ever index into a stable slice (see ShardScratch).
	e.growScratch(n)
	e.inParallel.Store(true)
	defer e.inParallel.Store(false)
	e.Par.Run(n, fn)
}

// assertOwned panics when a serialised engine method is called from inside
// a Parallel section. Shard functions must accumulate into shard-local
// scratch and let the caller merge and charge in shard order.
func (e *Engine) assertOwned(method string) {
	if e.inParallel.Load() {
		panic("sim: Engine." + method + " called from inside Engine.Parallel; " +
			"shard functions must confine writes to shard-local state")
	}
}

// splitmix64 is the SplitMix64 finaliser; it turns structured inputs
// (seed, interval, shard) into well-mixed RNG seeds.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Salts distinguishing the RNG streams of the parallel phases within one
// interval. Each call site that draws randomness inside Parallel uses its
// own salt so adding a phase never perturbs another phase's stream.
const (
	SaltPTEScan   = 0x70746573 // "ptes": MTM profiler scan shards
	SaltChunkScan = 0x63686e6b // "chnk": chunk-scan baseline profilers
)

// shardSeed derives the RNG seed of one shard of a parallel phase: a pure
// function of the engine seed, the interval index, the phase salt and the
// shard key — independent of the Parallelism setting and of which worker
// executes the shard.
func (e *Engine) shardSeed(salt uint64, shard int) uint64 {
	h := splitmix64(uint64(e.Seed) ^ salt)
	h = splitmix64(h ^ uint64(uint32(e.Intervals)))
	return splitmix64(h ^ uint64(uint32(shard)))
}

// ShardRand returns the deterministic RNG stream of one shard of a
// parallel phase (see shardSeed for the derivation), which is what keeps
// parallel runs bit-identical to sequential ones. The stream runs over an
// O(1)-seeded SplitMix64 source; hot shard loops should prefer
// Scratch.Rand, which reuses a slot-held RNG instead of allocating.
func (e *Engine) ShardRand(salt uint64, shard int) *rand.Rand {
	return rand.New(&sm64{state: e.shardSeed(salt, shard)})
}
