//go:build race

package sim

// RaceEnabled reports whether the binary was built with the race
// detector. Heavyweight sweep tests (the full solution x workload
// determinism matrix) trim themselves under -race: the detector's ~10x
// slowdown adds nothing to a determinism check that a separate CI job
// already runs at full size, while the race-relevant code paths are
// still exercised by the trimmed subset.
const RaceEnabled = true
