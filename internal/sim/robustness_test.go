package sim

import (
	"errors"
	"testing"
	"time"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

func TestOutOfMemoryGraceful(t *testing.T) {
	// 4 MB DRAM + 4 MB PM holds four huge pages; touching eight must fail
	// with a typed error instead of panicking.
	e := NewEngine(tier.TwoTierTopology(4*tier.MB, 4*tier.MB), 1)
	e.Interval = time.Second
	e.SetSolution(&fixedSolution{node: 0})
	e.beginInterval()
	v := e.AS.Alloc("big", 16*tier.MB)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}
	err := e.Err()
	if err == nil {
		t.Fatal("no error after exhausting both tiers")
	}
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	var oe *OOMError
	if !errors.As(err, &oe) || oe.Need != vm.HugePageSize {
		t.Fatalf("err = %#v, want *OOMError needing one huge page", err)
	}
	if !e.IntervalExhausted() {
		t.Fatal("failed engine must report the interval exhausted")
	}
	// Later accesses are no-ops: the engine carries the sticky error.
	before := e.TotalAccesses
	e.Access(v, 0, 5, 0, 0)
	if e.TotalAccesses != before {
		t.Fatal("access after failure still charged")
	}
	mustAudit(t, e)
}

// hogWorkload touches every page of a VMA twice the machine's capacity.
type hogWorkload struct {
	v    *vm.VMA
	done bool
}

func (w *hogWorkload) Name() string { return "hog" }
func (w *hogWorkload) Init(e *Engine) {
	w.v = e.AS.Alloc("hog", 8*tier.MB)
}
func (w *hogWorkload) RunInterval(e *Engine) {
	for i := 0; i < w.v.NPages && !e.IntervalExhausted(); i++ {
		e.Access(w.v, i, 1, 0, 0)
	}
	w.done = true
}
func (w *hogWorkload) Done() bool            { return w.done }
func (w *hogWorkload) ReadFraction() float64 { return 1 }

func TestRunReturnsOOMWithPartialResult(t *testing.T) {
	// Two huge pages of capacity against an 8 MB working set: Run must
	// surface the failure alongside the partial summary.
	e := NewEngine(tier.TwoTierTopology(2*tier.MB, 2*tier.MB), 1)
	e.Interval = time.Second
	res, err := Run(e, &hogWorkload{}, &fixedSolution{node: 0}, 10)
	if !errors.Is(err, ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", err)
	}
	if res == nil || res.Completed || res.Truncated {
		t.Fatalf("partial result wrong: %+v", res)
	}
	mustAudit(t, e)
}

func TestEmergencyDemotionRescuesFragmentation(t *testing.T) {
	// 7 MB of cold 4 KB pages on each 8 MB node: no node has room for a
	// 2 MB huge page, but demoting 1 MB of cold DRAM pages to PM
	// consolidates enough. The fault must survive via emergency demotion.
	e := NewEngine(tier.TwoTierTopology(8*tier.MB, 8*tier.MB), 1)
	e.Interval = time.Second
	e.beginInterval()
	e.AS.THP = false
	e.SetSolution(&fixedSolution{node: 0})
	fill0 := e.AS.Alloc("fill0", 7*tier.MB)
	for i := 0; i < fill0.NPages; i++ {
		e.Access(fill0, i, 1, 0, 0)
	}
	e.SetSolution(&fixedSolution{node: 1})
	fill1 := e.AS.Alloc("fill1", 7*tier.MB)
	for i := 0; i < fill1.NPages; i++ {
		e.Access(fill1, i, 1, 0, 0)
	}
	e.AS.THP = true
	e.SetSolution(&fixedSolution{node: 0})
	huge := e.AS.Alloc("huge", vm.HugePageSize)
	e.Access(huge, 0, 1, 0, 0)
	if err := e.Err(); err != nil {
		t.Fatalf("huge fault failed despite reclaimable space: %v", err)
	}
	if e.EmergencyDemotions != 1 {
		t.Fatalf("EmergencyDemotions = %d, want 1", e.EmergencyDemotions)
	}
	if huge.Node(0) != 0 {
		t.Fatalf("huge page on node %d, want 0 (DRAM)", huge.Node(0))
	}
	// Exact capacity accounting: 14 MB of filler plus the huge page, no
	// node over capacity, demoted filler pages present on PM.
	if used := e.Sys.Used(0) + e.Sys.Used(1); used != 14*tier.MB+vm.HugePageSize {
		t.Fatalf("total used = %d", used)
	}
	if e.Sys.Used(0) > 8*tier.MB || e.Sys.Used(1) > 8*tier.MB {
		t.Fatal("node over capacity after emergency demotion")
	}
	demoted := 0
	for i := 0; i < fill0.NPages; i++ {
		if fill0.Node(i) == 1 {
			demoted++
		}
	}
	if want := int(tier.MB / vm.BasePageSize); demoted != want {
		t.Fatalf("demoted %d filler pages, want %d", demoted, want)
	}
	mustAudit(t, e)
}

func TestEmergencyDemotionCannotFixTrueExhaustion(t *testing.T) {
	// With the lower tier also full, demotion has nowhere to go: the
	// fault must fail with ErrOutOfMemory, not loop or panic.
	e := NewEngine(tier.TwoTierTopology(2*tier.MB, 2*tier.MB), 1)
	e.Interval = time.Second
	e.beginInterval()
	e.SetSolution(&fixedSolution{node: 0})
	v := e.AS.Alloc("fill", 4*tier.MB)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}
	if e.Err() != nil {
		t.Fatalf("filling to capacity failed early: %v", e.Err())
	}
	extra := e.AS.Alloc("extra", vm.HugePageSize)
	e.Access(extra, 0, 1, 0, 0)
	if !errors.Is(e.Err(), ErrOutOfMemory) {
		t.Fatalf("err = %v, want ErrOutOfMemory", e.Err())
	}
	if e.EmergencyDemotions != 0 {
		t.Fatalf("EmergencyDemotions = %d, want 0 (nothing reclaimable)", e.EmergencyDemotions)
	}
	mustAudit(t, e)
}
