package sim

import (
	"strings"
	"testing"

	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// TestSpanConfinement: span emission is bound to the same serialized-loop
// confinement guard as Charge*/metrics, so emitting from inside a Parallel
// shard must panic — even at Parallelism 1.
func TestSpanConfinement(t *testing.T) {
	mustPanic := func(name string, f func(e *Engine)) {
		t.Run(name, func(t *testing.T) {
			e := NewEngine(tier.OptaneTopology(256), 1)
			e.Par = NewPool(1)
			e.EnableSpans(span.Config{})
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("%s inside Parallel did not panic", name)
				}
				if s, ok := r.(string); !ok || !strings.Contains(s, "span(") {
					t.Fatalf("panic %v does not identify the span guard", r)
				}
			}()
			e.Parallel(1, func(int) { f(e) })
		})
	}
	mustPanic("begin", func(e *Engine) { e.SpanBegin("test", "x") })
	mustPanic("end", func(e *Engine) { e.SpanEnd() })
	mustPanic("emit", func(e *Engine) { e.SpanEmit("test", "x", 0, 1) })
	mustPanic("event", func(e *Engine) { e.SpanEvent("test", "x") })
}

// TestSpanOutsideParallelAllowed: the same emissions are legal on the
// serialized interval loop and land in the export.
func TestSpanOutsideParallelAllowed(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	tr := e.EnableSpans(span.Config{})
	e.SpanBegin("test", "outer", span.I("k", 1))
	e.SpanEvent("test", "inner")
	e.SpanEnd()
	if got := tr.Len(); got != 2 {
		t.Fatalf("tracer holds %d spans, want 2", got)
	}
	x := e.SpansExport()
	if x == nil || len(x.Spans) != 2 {
		t.Fatalf("export %+v, want 2 spans", x)
	}
}

// TestSpanAPIsNilSafe: with tracing disabled every Span* method is a
// no-op, not a nil dereference.
func TestSpanAPIsNilSafe(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	if e.SpansEnabled() {
		t.Fatal("tracing enabled by default")
	}
	e.SpanBegin("test", "x")
	e.SpanEnd()
	e.SpanEmit("test", "x", 0, 1)
	e.SpanEvent("test", "x")
	if e.SpansExport() != nil {
		t.Fatal("disabled tracer exported spans")
	}
}

// TestDisabledTracingZeroAllocs is the hot-path acceptance bound: with
// Config.Trace unset, the per-access path and the no-op Span* entry points
// must not allocate at all.
func TestDisabledTracingZeroAllocs(t *testing.T) {
	e := NewEngine(tier.OptaneTopology(256), 1)
	e.SetSolution(noopSolution{})
	v := e.AS.Alloc("x", 4*vm.HugePageSize)
	e.Access(v, 0, 1, 0, 0) // pre-fault so the steady-state path is measured
	if n := testing.AllocsPerRun(100, func() {
		e.Access(v, 0, 8, 2, 0)
	}); n != 0 {
		t.Errorf("Access allocates %.1f per op with tracing disabled", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		e.SpanBegin("test", "x")
		e.SpanEnd()
		e.SpanEmit("test", "x", 0, 1)
		e.SpanEvent("test", "x")
	}); n != 0 {
		t.Errorf("no-op span calls allocate %.1f per op", n)
	}
}

// noopSolution satisfies Solution for engine-level tests.
type noopSolution struct{}

func (noopSolution) Name() string { return "noop" }
func (noopSolution) Place(e *Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return e.Sys.FirstFit(e.Sys.Topo.View(socket), v.PageSize)
}
func (noopSolution) IntervalStart(*Engine) {}
func (noopSolution) IntervalEnd(*Engine)   {}
