// Engine-side non-exclusive tiering (Nomad): the shadow-frame table of
// internal/tier attached to the simulation. Disabled by default — an
// engine without EnableShadow runs exactly the pre-shadow code (MoveCommit
// releases every source frame, TouchN pays one nil check).
//
// Lifecycle of a shadow: a committed promotion retains the slow-tier
// source frame as a shadow instead of releasing it (shadowMoveCommitted);
// the first write to the fast copy invalidates it (the VMA's dirty-plane
// hook); the per-interval background sync re-copies diverged pages back
// to their shadow frames off the critical path and revalidates them
// (ShadowSync); demotion of a page whose shadow is still valid is a
// metadata flip with zero copy bytes (FlipDemote). Shadows are soft
// capacity: allocation pressure reclaims them oldest-first before the
// emergency demotion path runs, and poison/drain/offline events drop any
// shadows on the affected frames so a dead frame is never flipped to.
//
// Determinism contract: every shadow mutation happens on the serialised
// interval loop (assertOwned guards), iteration is in (VMA, page) or
// per-node FIFO order — never map order — and an engine that never calls
// EnableShadow is bit-identical to a build without this file.
package sim

import (
	"math/bits"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// shadowState bundles the table and its page back-references behind one
// nil check.
type shadowState struct {
	table *tier.ShadowTable
	// pages maps shadow key (page virtual address) back to the page, so
	// drops triggered from the table side (pressure reclaim, node-wide
	// drops) can clear the VMA planes.
	pages map[uint64]shadowPage
	// hooks caches the one write-invalidation closure per VMA.
	hooks map[*vm.VMA]func(int)
}

type shadowPage struct {
	v   *vm.VMA
	idx int
}

// EnableShadow attaches the shadow-frame table (idempotent). Policies
// that migrate non-exclusively (Nomad) call it from their first
// IntervalStart; everything else leaves it off and runs bit-identically
// to a shadow-free engine.
func (e *Engine) EnableShadow() {
	if e.shd != nil {
		return
	}
	e.shd = &shadowState{
		table: tier.NewShadowTable(e.Sys),
		pages: make(map[uint64]shadowPage),
		hooks: make(map[*vm.VMA]func(int)),
	}
}

// ShadowEnabled reports whether the shadow-frame table is attached.
func (e *Engine) ShadowEnabled() bool { return e.shd != nil }

// ShadowCount returns the number of live shadow frames (0 when disabled).
func (e *Engine) ShadowCount() int {
	if e.shd == nil {
		return 0
	}
	return e.shd.table.Count()
}

// shadowHook returns the per-VMA write-invalidation closure, cached so
// MarkShadowed installs the same function every time.
func (e *Engine) shadowHook(v *vm.VMA) func(int) {
	if fn, ok := e.shd.hooks[v]; ok {
		return fn
	}
	fn := func(idx int) { e.shadowWriteInvalidated(v, idx) }
	e.shd.hooks[v] = fn
	return fn
}

// shadowWriteInvalidated fires on the write that diverges a fast copy
// from its still-valid shadow (the VMA cleared the validity bit already;
// once per invalidation, not per write). The entry and its frame stay —
// the background sync may re-copy and revalidate it later.
func (e *Engine) shadowWriteInvalidated(_ *vm.VMA, _ int) {
	e.assertOwned("shadow write-invalidate")
	e.ShadowInvalidations++
	if e.met != nil {
		e.met.shadowInvalidations.Inc()
	}
}

// shadowMoveCommitted runs inside MoveCommit: for a committed promotion
// it retains the source frame as the page's shadow and reports true (the
// caller must then *not* release src); any pre-existing shadow of the
// page is dropped first (it described bytes that no longer match a
// committed move). Returns false when the source frame should be
// released normally.
func (e *Engine) shadowMoveCommitted(v *vm.VMA, idx int, src, dst tier.NodeID) bool {
	if e.shd == nil {
		return false
	}
	key := v.Addr(idx)
	if _, ok := e.shd.pages[key]; ok {
		e.dropShadow(key)
	}
	if src == vm.NoNode || src == dst ||
		e.Sys.Topo.Rank(e.HomeSocket, dst) >= e.Sys.Topo.Rank(e.HomeSocket, src) ||
		!e.Sys.Allocatable(src) {
		return false
	}
	// Promotion: convert the source frame from the used ledger to the
	// shadow ledger. The release/reserve pair moves the same byte count,
	// so Put can only fail if src went offline — checked above.
	e.Sys.Release(src, v.PageSize)
	if !e.shd.table.Put(key, src, v.PageSize) {
		return true // frame released; nothing retained
	}
	e.shd.pages[key] = shadowPage{v: v, idx: idx}
	v.MarkShadowed(idx, e.shadowHook(v))
	e.shadowRetains++
	if e.met != nil {
		e.met.shadowRetained.Inc()
	}
	return true
}

// dropShadow releases the shadow of key and clears the page's planes.
func (e *Engine) dropShadow(key uint64) bool {
	sp, ok := e.shd.pages[key]
	if !ok {
		return false
	}
	delete(e.shd.pages, key)
	e.shd.table.Drop(key)
	sp.v.ClearShadowed(sp.idx)
	e.shadowDrops++
	if e.met != nil {
		e.met.shadowDropped.Inc()
	}
	return true
}

// shadowDropPage drops the shadow of one page, if any. Called from the
// poison path so a dead frame is never flipped to.
func (e *Engine) shadowDropPage(v *vm.VMA, idx int) {
	if e.shd == nil {
		return
	}
	e.dropShadow(v.Addr(idx))
}

// shadowDropNode drops every shadow resident on node n, in FIFO order.
// Called when n drains, goes offline, or takes memory errors (the dying
// device backs shadow frames too).
func (e *Engine) shadowDropNode(n tier.NodeID) {
	if e.shd == nil {
		return
	}
	for _, key := range e.shd.table.KeysOn(n) {
		e.dropShadow(key)
	}
}

// shadowMakeRoom reclaims shadow frames on dst, oldest first, until need
// bytes are free. Shadows are the first capacity sacrificed under
// pressure: dropping one loses only a future free demotion, never data.
func (e *Engine) shadowMakeRoom(dst tier.NodeID, need int64) bool {
	if e.shd == nil || !e.Sys.Allocatable(dst) {
		return false
	}
	for e.Sys.Free(dst) < need {
		key, ok := e.shd.table.OldestOn(dst)
		if !ok {
			return false
		}
		e.dropShadow(key)
	}
	return true
}

// shadowReclaimFor finds a node in view order whose shadows can be
// reclaimed to fit need bytes, and reclaims them. tier.Invalid when no
// node gets there; runs in the fault path before emergency demotion.
func (e *Engine) shadowReclaimFor(view []tier.NodeID, need int64) tier.NodeID {
	if e.shd == nil {
		return tier.Invalid
	}
	for _, n := range view {
		if e.Sys.ShadowBytes(n) == 0 {
			continue
		}
		if e.shadowMakeRoom(n, need) {
			return n
		}
	}
	return tier.Invalid
}

// FlipDemote demotes page idx of v by flipping it back to its still-valid
// shadow frame: no bytes are copied, only the mapping and the capacity
// ledgers change. It reports the destination and whether the flip
// happened; a page without a valid shadow, a shadow on a dead/unusable
// node, or a thrash-suppressed page reports false and (except for
// suppression) drops the unusable shadow so the caller falls back to the
// copy path. A completed flip is a committed move: it lands in the move
// ledger, the demotion totals, FreeDemotions, the pair breaker, and the
// page's admission cool-down stamp.
func (e *Engine) FlipDemote(v *vm.VMA, idx int) (tier.NodeID, bool) {
	if e.shd == nil || !v.Present(idx) || !v.ShadowValid(idx) {
		return tier.Invalid, false
	}
	e.assertOwned("FlipDemote")
	key := v.Addr(idx)
	sp, ok := e.shd.pages[key]
	if !ok || sp.v != v || sp.idx != idx {
		return tier.Invalid, false
	}
	dst, _, ok := e.shd.table.Get(key)
	if !ok {
		return tier.Invalid, false
	}
	e.ShadowHits++
	if e.met != nil {
		e.met.shadowHits.Inc()
	}
	src := v.Node(idx)
	if src == dst || !e.Sys.Allocatable(dst) ||
		e.Sys.Topo.Rank(e.HomeSocket, dst) <= e.Sys.Topo.Rank(e.HomeSocket, src) {
		// Not a demotion anymore (or the shadow frame is unusable):
		// drop it so capacity comes back and the copy path decides.
		e.dropShadow(key)
		return tier.Invalid, false
	}
	if !e.PageMoveAllowed(v, idx, dst) {
		return tier.Invalid, false
	}
	// Consume the shadow: its bytes move from the shadow ledger back to
	// the used ledger on dst, and the fast frame on src is freed.
	delete(e.shd.pages, key)
	e.shd.table.Drop(key)
	v.ClearShadowed(idx)
	if !e.Sys.Reserve(dst, v.PageSize) {
		panic("sim: FlipDemote failed to reserve the bytes its shadow drop just freed")
	}
	e.Sys.Release(src, v.PageSize)
	v.Place(idx, dst)
	e.committedPages++
	e.committedBytes += v.PageSize
	e.FreeDemotions++
	e.FreeDemotionBytes += v.PageSize
	e.NoteDemotion(v.PageSize)
	e.recordMoveSuccess(src, dst)
	if e.adm != nil {
		e.adm.ctl.NotePageMove(key, e.moveDirection(src, dst), e.SpanClockNs())
	}
	if e.met != nil {
		e.met.shadowFlips.Inc()
		e.met.shadowFlipBytes.Add(v.PageSize)
		pairCounter(e.met.movedPages, src, dst).Inc()
	}
	e.fidelityMoveCommitted(v, idx, src, dst, true)
	return dst, true
}

// ShadowSync re-copies up to maxBytes of diverged (written-since-
// retention) shadowed pages back to their shadow frames and revalidates
// them. Each candidate's dirty bit is harvested first: a page written
// since the previous pass is skipped — it is still hot, and a re-copy
// would be invalidated before it pays off — so the budget concentrates
// on pages that went quiet (one full pass without a write). The copies
// are asynchronous helper-thread work: they charge background time and
// bandwidth, never the critical path. Policies run it once per interval
// before planning demotions, so pages that went clean demote as free
// flips. Returns the bytes synced.
func (e *Engine) ShadowSync(maxBytes int64) int64 {
	if e.shd == nil || maxBytes <= 0 {
		return 0
	}
	e.assertOwned("ShadowSync")
	var synced int64
	for _, v := range e.AS.VMAs() {
		if !v.HasShadows() {
			continue
		}
		for w := 0; w < v.Words(); w++ {
			word := v.ShadowStaleWord(w) & v.PresentWord(w)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if synced >= maxBytes {
					return synced
				}
				key := v.Addr(i)
				dst, _, ok := e.shd.table.Get(key)
				if !ok {
					// Plane bit without a table entry: stale marker.
					v.ClearShadowed(i)
					delete(e.shd.pages, key)
					continue
				}
				if !e.Sys.Allocatable(dst) {
					e.dropShadow(key)
					continue
				}
				if v.TestAndClearDirty(i) {
					// Written since the last sync pass: still hot, a re-copy
					// now would be invalidated again before it pays off. The
					// harvest arms quiet-detection — a page must go one full
					// pass without a write before its shadow re-syncs, which
					// keeps the budget for pages actually going cold.
					continue
				}
				synced += e.syncShadowPage(v, i, dst)
			}
		}
	}
	return synced
}

// syncShadowPage re-copies one stale shadowed present page back to its
// shadow frame on dst and revalidates it, charging background time and
// bandwidth. Returns the page's size. Callers have already resolved dst
// from the table and checked it is allocatable.
func (e *Engine) syncShadowPage(v *vm.VMA, i int, dst tier.NodeID) int64 {
	src := v.Node(i)
	e.ChargeBackground(e.Sys.CopyTime(e.HomeSocket, src, dst, v.PageSize))
	e.Sys.RecordTransfer(src, v.PageSize)
	e.Sys.RecordTransfer(dst, v.PageSize)
	// Binding budgets: the write-back competes for the same pair
	// bandwidth migration does (no-op unless lanes are enabled).
	e.admissionChargeBackground(src, dst, v.PageSize)
	v.RevalidateShadow(i)
	e.ShadowSyncBytes += v.PageSize
	if e.met != nil {
		e.met.shadowSyncBytes.Add(v.PageSize)
	}
	return v.PageSize
}

// ShadowSyncRange is the targeted variant of ShadowSync: it writes back
// up to maxBytes of diverged shadows inside [start, end) of v with no
// quiet gate. Policies call it on a chosen demotion victim immediately
// before flipping — the caller has decided these pages leave the fast
// tier now, so divergence is written back unconditionally (background
// bandwidth, off the critical path; the planning point is quiesced, so
// no write can race the copy) and the subsequent demotion is a free
// flip instead of a critical-path copy. Returns the bytes synced.
func (e *Engine) ShadowSyncRange(v *vm.VMA, start, end int, maxBytes int64) int64 {
	if e.shd == nil || maxBytes <= 0 || !v.HasShadows() {
		return 0
	}
	e.assertOwned("ShadowSyncRange")
	var synced int64
	for w := start / vm.WordPages; w*vm.WordPages < end; w++ {
		word := v.ShadowStaleWord(w) & v.PresentRangeWord(w, start, end)
		for word != 0 {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			if synced >= maxBytes {
				return synced
			}
			key := v.Addr(i)
			dst, _, ok := e.shd.table.Get(key)
			if !ok {
				v.ClearShadowed(i)
				delete(e.shd.pages, key)
				continue
			}
			if !e.Sys.Allocatable(dst) {
				e.dropShadow(key)
				continue
			}
			v.TestAndClearDirty(i) // harvest; the write-back supersedes it
			synced += e.syncShadowPage(v, i, dst)
		}
	}
	return synced
}

// ShadowDemoteDest returns the shadow node of the first valid-shadow page
// in [start, end) of v — the representative destination a policy prices a
// flip-demotion of the range against — or tier.Invalid when the range has
// no flippable page.
func (e *Engine) ShadowDemoteDest(v *vm.VMA, start, end int) tier.NodeID {
	if e.shd == nil || !v.HasShadows() {
		return tier.Invalid
	}
	for w := start / vm.WordPages; w*vm.WordPages < end; w++ {
		word := v.ShadowValidRangeWord(w, start, end) & v.PresentWord(w)
		if word != 0 {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			if n, _, ok := e.shd.table.Get(v.Addr(i)); ok {
				return n
			}
		}
	}
	return tier.Invalid
}
