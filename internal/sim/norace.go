//go:build !race

package sim

// RaceEnabled reports whether the binary was built with the race
// detector; see race.go.
const RaceEnabled = false
