// Per-shard scratch for the parallel hot path. The old sharded phases
// paid two taxes every interval: rand.NewSource seeds math/rand's
// 607-word additive-feedback register per shard (over half the profile of
// a profiling interval), and each shard allocated fresh sample buffers
// and membership maps. Scratch removes both: every shard slot owns a
// reusable *rand.Rand over an O(1)-seeded SplitMix64 source plus
// reusable page/bit buffers, so the steady-state interval hot path
// performs zero allocations after warm-up.
//
// The determinism contract of parallel.go is unchanged: shard s always
// uses scratch slot s regardless of which worker runs it, the RNG stream
// is still a pure function of (engine seed, interval, salt, shard key),
// and scratch contents never carry information between uses — every
// buffer is fully rewritten before it is read.
package sim

import "math/rand"

// sm64 is a SplitMix64 rand.Source64. Seeding writes one word (vs the
// 607-word init of rand.NewSource), which is what makes per-(interval,
// shard) streams affordable: the seed itself carries all the mixing.
type sm64 struct{ state uint64 }

func (s *sm64) Uint64() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *sm64) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *sm64) Seed(seed int64) { s.state = uint64(seed) }

// Scratch is the reusable state of one shard slot. Fields are owned by
// the shard holding the slot for the duration of one Parallel call; the
// serialised caller may read them between calls (e.g. merge tallies in
// shard order).
type Scratch struct {
	src sm64
	rng *rand.Rand

	// Pages is a reusable page-index buffer (sample selection).
	Pages []int
	// ScanCount/PageCount are per-shard tallies a phase may accumulate
	// into; the caller merges them in shard order after Parallel returns.
	ScanCount int64
	PageCount int64

	seen    []uint64 // rejection-sampling membership bitset
	seenCap int      // bits the current seen slice covers
}

// Rand reseeds the slot's RNG for (salt, key) in the current interval and
// returns it. The stream equals ShardRand(salt, key)'s: a pure function
// of the simulation state, independent of Parallelism and of worker
// scheduling. The returned RNG is valid until the next Rand call on the
// same slot.
func (sc *Scratch) Rand(e *Engine, salt uint64, key int) *rand.Rand {
	sc.src.state = e.shardSeed(salt, key)
	if sc.rng == nil {
		sc.rng = rand.New(&sc.src)
	}
	return sc.rng
}

// Seen returns a zeroed membership bitset covering at least n bits,
// reusing the slot's buffer. The caller owns it until the next Seen call
// on the same slot.
func (sc *Scratch) Seen(n int) []uint64 {
	words := (n + 63) / 64
	if words > len(sc.seen) {
		sc.seen = make([]uint64, words)
	} else {
		clear(sc.seen[:words])
	}
	sc.seenCap = n
	return sc.seen[:words]
}

// ShardScratch returns the scratch slot of shard s. Slots are created by
// Parallel on the serialised path before workers start, so shard
// functions only ever index a stable slice; callers may also read slots
// after Parallel returns to merge per-shard tallies in shard order.
func (e *Engine) ShardScratch(s int) *Scratch { return e.scratch[s] }

// growScratch ensures at least n scratch slots exist. Serialised-path
// only (Parallel calls it before starting workers).
func (e *Engine) growScratch(n int) {
	for len(e.scratch) < n {
		e.scratch = append(e.scratch, &Scratch{})
	}
}
