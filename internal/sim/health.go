// Engine-side tier-health wiring: page poisoning (HWPOISON analogue),
// the per-tier health state machine, migration circuit breakers, and the
// incremental background drain of sick tiers. Disabled by default — an
// engine without EnableHealth runs exactly the pre-health code.
//
// Determinism contract: every health decision is a pure function of
// engine accounting state and the fault plane's own random stream. The
// subsystem never draws from the engine's Rng, walks pages strictly in
// (VMA, page) order (collected with the same fixed-size sharding as the
// other wide walks), and stamps all breaker cool-downs with the virtual
// clock — so health-enabled runs stay byte-identical at any Parallelism.
package sim

import (
	"fmt"
	"math/bits"
	"time"

	"mtm/internal/health"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// healthState bundles the tracker and breaker behind one nil check.
type healthState struct {
	cfg     health.Config
	tracker *health.Tracker
	breaker *health.Breaker
}

// EnableHealth attaches the tier-health subsystem (idempotent). Must be
// called after Interval is set: a zero Config.CoolDown defaults to twice
// the profiling interval.
func (e *Engine) EnableHealth(cfg health.Config) {
	if e.hlt != nil {
		return
	}
	cfg = cfg.WithDefaults()
	if cfg.CoolDown <= 0 {
		cfg.CoolDown = 2 * e.Interval
	}
	n := len(e.Sys.Topo.Nodes)
	e.hlt = &healthState{
		cfg:     cfg,
		tracker: health.NewTracker(cfg, n),
		breaker: health.NewBreaker(n, cfg.TripAborts, int64(cfg.CoolDown)),
	}
}

// HealthEnabled reports whether the tier-health subsystem is attached.
func (e *Engine) HealthEnabled() bool { return e.hlt != nil }

// HealthConfig returns the active health configuration (defaults
// applied); the zero Config when health is disabled.
func (e *Engine) HealthConfig() health.Config {
	if e.hlt == nil {
		return health.Config{}
	}
	return e.hlt.cfg
}

// TierHealth returns the health state of node n (StateOnline when the
// subsystem is disabled).
func (e *Engine) TierHealth(n tier.NodeID) health.State {
	if e.hlt == nil {
		return health.StateOnline
	}
	return e.hlt.tracker.State(int(n))
}

// TierStates returns the final health state name per node, or nil when
// the subsystem is disabled (keeping health-free Result JSON unchanged).
func (e *Engine) TierStates() []string {
	if e.hlt == nil {
		return nil
	}
	out := make([]string, len(e.Sys.Topo.Nodes))
	for i := range out {
		out[i] = e.hlt.tracker.State(i).String()
	}
	return out
}

// DestUsable reports whether a migration src→dst should be planned right
// now: dst must be allocatable (not draining/offline) and the src→dst
// circuit breaker must not be open. Policies consult it before planning
// a move; without the health subsystem it is always true, keeping
// baseline runs bit-identical to the pre-health engine.
func (e *Engine) DestUsable(src, dst tier.NodeID) bool {
	if e.hlt == nil {
		return true
	}
	e.assertOwned("DestUsable")
	if !e.Sys.Allocatable(dst) {
		return false
	}
	if int(src) < 0 || int(dst) < 0 {
		return true
	}
	ok, reopened := e.hlt.breaker.AllowAt(int(src), int(dst), e.SpanClockNs())
	if reopened {
		// The pair just re-entered service (open → half-open): clear its
		// frozen waste ledger so the pre-trip aborts cannot immediately
		// re-shed the recovering pair.
		e.admissionResetWaste(src, dst)
	}
	return ok
}

// BreakerEvidence returns the read-only breaker state of the (src, dst)
// pair for provenance: state name, consecutive aborts, the virtual ns
// until which it is open, and its lifetime trip count.
func (e *Engine) BreakerEvidence(src, dst tier.NodeID) (state string, consec int64, openUntilNs int64, trips int64) {
	if e.hlt == nil || int(src) < 0 || int(dst) < 0 {
		return health.BreakerClosed.String(), 0, 0, 0
	}
	b := e.hlt.breaker
	return b.StateOf(int(src), int(dst)).String(),
		int64(b.Consecutive(int(src), int(dst))),
		b.OpenUntil(int(src), int(dst)),
		b.Trips(int(src), int(dst))
}

// recordMoveSuccess feeds a committed move into the pair's breaker.
func (e *Engine) recordMoveSuccess(src, dst tier.NodeID) {
	if e.hlt == nil || int(src) < 0 || int(dst) < 0 {
		return
	}
	e.hlt.breaker.RecordSuccess(int(src), int(dst))
}

// recordMoveAbort feeds an aborted move into the pair's breaker and, on
// a trip, records the provenance (metrics event + span event with the
// evidence). A pair trips at most once per cool-down by construction:
// an open breaker absorbs further aborts without re-tripping.
func (e *Engine) recordMoveAbort(src, dst tier.NodeID) {
	if e.hlt == nil || int(src) < 0 || int(dst) < 0 {
		return
	}
	now := e.SpanClockNs()
	if !e.hlt.breaker.RecordAbort(int(src), int(dst), now) {
		return
	}
	e.BreakerTrips++
	e.admissionBreakerTrip(src, dst)
	if e.met != nil {
		e.met.breakerTrips.Inc()
		e.met.reg.Emit(EventBreakerTrip, e.met.pairName[src][dst], e.hlt.breaker.Trips(int(src), int(dst)))
	}
	if e.sp != nil {
		e.SpanEvent("health", "breaker-trip",
			span.S("src", e.Sys.Topo.Nodes[src].Name),
			span.S("dst", e.Sys.Topo.Nodes[dst].Name),
			span.I("consecutive_aborts", int64(e.hlt.cfg.TripAborts)),
			span.I("open_until_ns", e.hlt.breaker.OpenUntil(int(src), int(dst))),
			span.I("trips", e.hlt.breaker.Trips(int(src), int(dst))))
	}
}

// healthBeginInterval delivers this interval's memory-error faults and
// advances the per-tier state machine. Runs at the end of beginInterval,
// after the fault plane redrew its storm windows and after the span
// tracer opened the interval root (health events parent under it).
func (e *Engine) healthBeginInterval() {
	if e.hlt == nil {
		return
	}
	if mp, ok := e.faults.(interface{ MemErrorPages(tier.NodeID) int }); ok {
		for i := range e.Sys.Topo.Nodes {
			n := tier.NodeID(i)
			if k := mp.MemErrorPages(n); k > 0 {
				// The dying device backs shadow frames too: drop every
				// shadow on it so a dead copy is never flipped to.
				e.shadowDropNode(n)
				e.poisonNode(n, k)
			}
		}
	}
	now := e.SpanClockNs()
	trs := e.hlt.tracker.BeginInterval(e.Intervals, func(dst int) bool {
		return e.hlt.breaker.OpenInto(dst, now)
	})
	e.applyTransitions(trs)
}

// poisonNode poisons up to k resident pages of node n, in (VMA, page)
// order — the deterministic stand-in for "whichever frames the dying
// DIMM happens to back". A burst larger than the node's residency
// poisons what is there and wastes the rest.
func (e *Engine) poisonNode(n tier.NodeID, k int) {
	poisoned := 0
	for _, v := range e.AS.VMAs() {
		for w := 0; w < v.Words() && poisoned < k; w++ {
			word := v.PresentWord(w)
			for word != 0 && poisoned < k {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if v.Node(i) == n {
					e.poisonPage(v, i)
					poisoned++
				}
			}
		}
		if poisoned >= k {
			break
		}
	}
	if poisoned > 0 {
		e.applyTransitions(e.hlt.tracker.Poison(int(n), poisoned, e.Intervals))
	}
}

// poisonPage quarantines one resident page: the mapping is torn down,
// the frame's bytes move to the tier's quarantined ledger (capacity is
// lost, not freed), and the next app access takes a recovery fault.
func (e *Engine) poisonPage(v *vm.VMA, idx int) {
	e.assertOwned("poisonPage")
	n := v.Node(idx)
	e.shadowDropPage(v, idx)
	v.Poison(idx)
	e.Sys.Quarantine(n, v.PageSize)
	e.poisonedBytes += v.PageSize
	e.PoisonedPages++
	if e.met != nil {
		e.met.poisonedPages.Inc()
		e.emitEventOnce(EventMemPoison, e.Sys.Topo.Nodes[n].Name, int64(idx))
	}
	if e.sp != nil {
		e.SpanEvent("health", "poison",
			span.S("node", e.Sys.Topo.Nodes[n].Name),
			span.S("vma", v.Name),
			span.I("page", int64(idx)))
	}
}

// PoisonPage injects one memory error by hand (tests and operator
// tooling): page idx of v must be resident and health enabled. Reports
// whether the poison was applied.
func (e *Engine) PoisonPage(v *vm.VMA, idx int) bool {
	if e.hlt == nil || !v.Present(idx) {
		return false
	}
	n := v.Node(idx)
	e.poisonPage(v, idx)
	e.applyTransitions(e.hlt.tracker.Poison(int(n), 1, e.Intervals))
	return true
}

// poisonRecovery handles an app access to a poisoned page (called from
// handleFault before placement): charge the machine-check + SIGBUS
// round trip and acknowledge the error so the page refaults normally.
func (e *Engine) poisonRecovery(v *vm.VMA, idx int) {
	v.ClearPoison(idx)
	e.intApp += e.hlt.cfg.RecoveryPenalty
	e.PoisonRecoveries++
	if e.met != nil {
		e.met.poisonRecoveries.Inc()
	}
	if e.sp != nil {
		e.SpanEvent("health", "poison-recovery",
			span.S("vma", v.Name),
			span.I("page", int64(idx)))
	}
}

// applyTransitions applies state-machine outputs to the capacity layer
// and records one provenance event per transition.
func (e *Engine) applyTransitions(trs []health.Transition) {
	for _, tr := range trs {
		n := tier.NodeID(tr.Node)
		switch tr.To {
		case health.StateDraining, health.StateOffline:
			e.Sys.SetAllocatable(n, false)
			// A sick tier's shadow copies are unusable (a flip would
			// re-place pages on it); drop them so their capacity drains
			// with the live pages.
			e.shadowDropNode(n)
		case health.StateOnline:
			e.Sys.SetAllocatable(n, true)
		}
		if e.met != nil {
			e.met.healthTransitions.Inc()
			e.met.tierState[n].Set(float64(tr.To))
			e.met.reg.Emit(EventHealthTransition,
				e.Sys.Topo.Nodes[n].Name+" "+tr.From.String()+"->"+tr.To.String(), int64(tr.To))
		}
		if e.sp != nil {
			e.SpanEvent("health", "transition",
				span.S("node", e.Sys.Topo.Nodes[n].Name),
				span.S("from", tr.From.String()),
				span.S("to", tr.To.String()),
				span.S("reason", tr.Reason),
				span.I("poisoned_pages", int64(e.hlt.tracker.PoisonedPages(tr.Node))))
		}
	}
}

// DrainTier forces node n into Draining (operator-initiated offlining);
// the background drain then evacuates it over the following intervals.
// No-op unless health is enabled.
func (e *Engine) DrainTier(n tier.NodeID) {
	if e.hlt == nil {
		return
	}
	e.applyTransitions(e.hlt.tracker.ForceDraining(int(n), e.Intervals))
}

// DrainStallErr returns the most recent drain stall (a wrapped
// health.ErrNoDestination), or nil if drains have always found room.
func (e *Engine) DrainStallErr() error { return e.drainStallErr }

// healthEndInterval runs the incremental background drain for every
// draining tier. Runs at the top of endInterval so the evacuation's
// background copy time is folded into this interval's totals and its
// span events land before the interval closes.
func (e *Engine) healthEndInterval() {
	if e.hlt == nil {
		return
	}
	for _, n := range e.hlt.tracker.Draining() {
		e.drainNode(tier.NodeID(n))
	}
}

// Drain retry policy, mirroring migrate.DefaultRetry (which lives above
// this package): 5 attempts, exponential backoff 5µs..80µs.
const drainRetryAttempts = 5

func drainBackoff(attempt int) time.Duration {
	d := time.Duration(5_000<<(attempt-1)) * time.Nanosecond
	if d > 80*time.Microsecond {
		d = 80 * time.Microsecond
	}
	return d
}

// drainNode evacuates up to DrainPagesPerInterval resident pages off
// node, each through the transactional move path with EBUSY retries,
// into the best usable destination (next-slower tiers first, cascading
// past full ones, then faster tiers as a last resort). When live pages
// remain but no destination has room, the drain stalls: pages stay in
// place, the stall is recorded, and the next interval retries. When the
// node is empty of live pages it goes Offline.
func (e *Engine) drainNode(node tier.NodeID) {
	type resident struct {
		v   *vm.VMA
		idx int
	}
	type pageSpan struct {
		v      *vm.VMA
		lo, hi int
	}
	var spans []pageSpan
	for _, v := range e.AS.VMAs() {
		for s := 0; s < NumShards(v.NPages, coldShardPages); s++ {
			lo, hi := ShardSpan(v.NPages, coldShardPages, s)
			spans = append(spans, pageSpan{v, lo, hi})
		}
	}
	parts := make([][]resident, len(spans))
	e.Parallel(len(spans), func(s int) {
		sp := spans[s]
		var out []resident
		// Word-wide over the present plane, set bits in ascending order:
		// the merged resident order matches the sequential walk exactly.
		for w := sp.lo / vm.WordPages; w*vm.WordPages < sp.hi; w++ {
			word := sp.v.PresentRangeWord(w, sp.lo, sp.hi)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if sp.v.Node(i) == node {
					out = append(out, resident{sp.v, i})
				}
			}
		}
		parts[s] = out
	})
	var pages []resident
	for _, p := range parts {
		pages = append(pages, p...)
	}
	if len(pages) == 0 {
		e.applyTransitions(e.hlt.tracker.DrainedEmpty(int(node), e.Intervals))
		return
	}

	attempted, committed := 0, 0
	stalled := false
	e.SetMoveContext("health-drain")
	defer e.ClearMoveContext()
	for _, p := range pages {
		if attempted >= e.hlt.cfg.DrainPagesPerInterval {
			break
		}
		dst := e.drainDest(node, p.v.PageSize)
		if dst == tier.Invalid {
			stalled = true
			break
		}
		if !e.admitDrainMove(node, dst, p.v.PageSize, p.v.PageSize) {
			// Drain-lane budget exhausted (tokens plus the reserved
			// slice): pace the evacuation rather than stall it — the
			// remaining pages retry next interval once the pair refills.
			// Not a stall: a stall means no destination has room.
			break
		}
		if !e.MoveBegin(p.v, p.idx, dst) {
			stalled = true
			break
		}
		attempted++
		ok := false
		for attempt := 1; attempt <= drainRetryAttempts; attempt++ {
			busy, penalty := e.PageBusy(p.v, p.idx, dst)
			if !busy {
				ok = true
				break
			}
			e.ChargeBackground(penalty)
			if attempt < drainRetryAttempts {
				e.NoteMigrationRetryAt(node, dst)
				b := drainBackoff(attempt)
				e.ChargeBackground(b)
				e.NoteMigrationBackoff(node, dst, b)
			}
		}
		copyTime := e.Sys.CopyTime(e.HomeSocket, node, dst, p.v.PageSize)
		e.Sys.RecordTransfer(node, p.v.PageSize)
		e.Sys.RecordTransfer(dst, p.v.PageSize)
		e.ChargeBackground(copyTime)
		if !ok {
			e.MoveAborted(p.v, p.idx, dst)
			continue
		}
		e.MoveCommit(p.v, p.idx, dst)
		e.NoteDrain(p.v.PageSize)
		committed++
	}
	if stalled {
		e.DrainStalls++
		e.drainStallErr = fmt.Errorf("%w (draining %s, %d pages resident)",
			health.ErrNoDestination, e.Sys.Topo.Nodes[node].Name, len(pages)-committed)
		if e.met != nil {
			e.met.drainStalls.Inc()
			e.emitEventOnce(EventDrainStall, e.Sys.Topo.Nodes[node].Name, int64(len(pages)-committed))
		}
		if e.sp != nil {
			e.SpanEvent("health", "drain-stall",
				span.S("node", e.Sys.Topo.Nodes[node].Name),
				span.I("resident_pages", int64(len(pages)-committed)))
		}
		return
	}
	if committed == len(pages) {
		e.applyTransitions(e.hlt.tracker.DrainedEmpty(int(node), e.Intervals))
	}
}

// drainDest picks the evacuation target for one page leaving node: the
// next-slower tiers first (cascading past full or sick ones to tier
// N+2 and beyond), then faster tiers as a last resort. A destination
// must be allocatable, have room, and not sit behind an open breaker.
func (e *Engine) drainDest(node tier.NodeID, size int64) tier.NodeID {
	view := e.Sys.Topo.View(e.HomeSocket)
	rank := 0
	for i, n := range view {
		if n == node {
			rank = i
			break
		}
	}
	try := func(cand tier.NodeID) bool {
		if !e.Sys.Allocatable(cand) || e.Sys.Free(cand) < size {
			return false
		}
		ok, reopened := e.hlt.breaker.AllowAt(int(node), int(cand), e.SpanClockNs())
		if reopened {
			e.admissionResetWaste(node, cand)
		}
		return ok
	}
	for i := rank + 1; i < len(view); i++ {
		if try(view[i]) {
			return view[i]
		}
	}
	for i := rank - 1; i >= 0; i-- {
		if try(view[i]) {
			return view[i]
		}
	}
	return tier.Invalid
}

// NoteDrain records bytes evacuated off a draining tier. Drained volume
// is deliberately separate from promotion/demotion volume: the auditor's
// ledger is committed = promoted + demoted + drained.
func (e *Engine) NoteDrain(bytes int64) {
	e.assertOwned("NoteDrain")
	e.DrainedBytes += bytes
	if e.met != nil {
		e.met.drainedBytes.Add(bytes)
	}
}
