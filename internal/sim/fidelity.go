package sim

import (
	"math/bits"

	"mtm/internal/fidelity"
	"mtm/internal/metrics"
	"mtm/internal/region"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// fidShardPages is the fixed page span of one fidelity-oracle shard.
// Like every sharded phase it is a constant — never derived from the
// worker count — and a multiple of vm.WordPages, so each bitmap word of
// the truth/estimate planes is owned by exactly one shard and shard
// functions can store whole words without synchronisation.
const fidShardPages = 1 << 15

// DefaultFidelityHorizon is the outcome-resolution window, in intervals,
// when FidelityConfig.Horizon is zero: a committed move that sees no
// reaccess for this many intervals is judged wasted (promotions) or
// correct (demotions).
const DefaultFidelityHorizon = 8

// FidelityConfig configures the ground-truth fidelity oracle.
type FidelityConfig struct {
	// Horizon is the outcome-resolution window in intervals; <= 0 selects
	// DefaultFidelityHorizon.
	Horizon int
	// HotsetBytes is the top-K target: truth and estimated hot sets are
	// each selected down to about this many bytes. <= 0 selects the
	// machine's total DRAM capacity — "what would fit in fast memory".
	HotsetBytes int64
}

// regionEstimator is implemented by solutions whose profiler exposes its
// region table; the oracle grades that table against ground truth.
// Solutions without one (first-touch, slow-first, hmc) still get lineage
// and truth heat rows — their estimate is simply empty.
type regionEstimator interface {
	Regions() []*region.Region
}

// fidelityPlane is the oracle's per-VMA state: the truth hot set of this
// and the previous interval, the profiler's estimated hot set, and the
// turn-hot stamps for estimation-lag tracking.
type fidelityPlane struct {
	truth vm.Bitmap // ground-truth hot set, this interval
	prev  vm.Bitmap // ground-truth hot set, previous interval
	est   vm.Bitmap // profiler's estimated hot set, this interval
	pend  vm.Bitmap // turned hot, not yet seen by the profiler
	// hotSince[i] is the interval page i turned hot (valid while the pend
	// bit is set).
	hotSince []int32
}

// fidShard is one shard's scratch for the oracle's parallel phases; the
// serialized loop merges shards in index order.
type fidShard struct {
	buckets      fidelity.Buckets
	touchedBytes int64
	touchedPages int64
	accesses     int64

	truthBytes int64
	estBytes   int64
	interBytes int64

	lagSum int64
	lagN   int64
	missed int64

	colsTruth [fidelity.HeatCols]int64
	colsEst   [fidelity.HeatCols]int64
}

// fidSpan is one shard's work item: a page range of one VMA plus the
// VMA's byte offset in the global address-column mapping.
type fidSpan struct {
	v       *vm.VMA
	pl      *fidelityPlane
	lo, hi  int
	baseOff int64
}

// pendingMove is one committed page move awaiting its hindsight verdict.
type pendingMove struct {
	v        *vm.VMA
	idx      int32
	interval int32
	promote  bool
	flip     bool
	rule     string
	adm      string
	src, dst tier.NodeID
}

// fidelityState is the engine-side oracle. Nil unless EnableFidelity was
// called; every hook is nil-safe so a fidelity-off run takes no branches
// beyond one pointer test.
type fidelityState struct {
	horizon int
	hotset  int64

	planes map[*vm.VMA]*fidelityPlane
	shards []*fidShard
	spans  []fidSpan

	// Cached shard functions (built on first sample) plus the per-sample
	// inputs they read from the state: closures passed to Parallel must be
	// allocated once, not per interval, to keep the steady-state sample
	// zero-alloc.
	phaseA      func(int)
	phaseB      func(int)
	curCut      int
	curInterval int32
	totalBytes  int64

	// Pending-move ledger (FIFO in commit order; compacted in place).
	pend []pendingMove
	// Decision context for the next committed moves: the policy rule
	// (SetMoveContext) and the admission rule (recorded by
	// AdmitMigration/AdmitFlip).
	ctxRule string
	ctxAdm  string

	outcomes fidelity.OutcomeCounts
	byRule   map[fidelity.RuleKey]*fidelity.OutcomeCounts

	samples int
	scored  int
	sumP    float64
	sumR    float64
	sumF    float64
	sumRank float64

	lagSum int64
	lagN   int64
	missed int64

	heat *fidelity.Heatmap

	// Reusable rank-agreement inputs (one entry per region).
	whiBuf   []float64
	denBuf   []float64
	bytesBuf []int64

	// Metrics handles; nil without EnableMetrics.
	gPrec       *metrics.Gauge
	gRec        *metrics.Gauge
	gF1         *metrics.Gauge
	gRank       *metrics.Gauge
	gTruthBytes *metrics.Gauge
	gEstBytes   *metrics.Gauge
	cLag        *metrics.Counter
	cLagSamples *metrics.Counter
	cMissed     *metrics.Counter
	cOutcome    [fidelity.NumVerdicts]*metrics.Counter
}

// EnableFidelity turns on the ground-truth fidelity oracle: once per
// interval — after migration, before the count planes reset — the engine
// samples per-page access truth, grades the active profiler's hot set
// against it, and resolves the hindsight verdict of every committed move
// within the configured horizon. Idempotent; call after Interval is set
// and after EnableMetrics/EnableSpans so the oracle's instruments and
// outcome events register with them.
func (e *Engine) EnableFidelity(cfg FidelityConfig) {
	if e.fid != nil {
		return
	}
	f := &fidelityState{
		horizon: cfg.Horizon,
		hotset:  cfg.HotsetBytes,
		planes:  map[*vm.VMA]*fidelityPlane{},
		byRule:  map[fidelity.RuleKey]*fidelity.OutcomeCounts{},
		heat:    &fidelity.Heatmap{Cols: fidelity.HeatCols, Rows: make([]fidelity.HeatRow, 0, 256)},
	}
	if f.horizon <= 0 {
		f.horizon = DefaultFidelityHorizon
	}
	if f.hotset <= 0 {
		for _, n := range e.Sys.Topo.Nodes {
			if n.Kind == tier.DRAM {
				f.hotset += n.Capacity
			}
		}
	}
	// Bind the shard phases once: handing a fresh closure to Parallel every
	// interval would allocate on the steady-state sample path.
	f.phaseA = f.runPhaseA
	f.phaseB = f.runPhaseB
	if reg := e.Metrics(); reg != nil {
		f.gPrec = reg.Gauge("mtm_fidelity_precision", "hot-set precision of the profiler estimate vs ground truth, this interval")
		f.gRec = reg.Gauge("mtm_fidelity_recall", "hot-set recall of the profiler estimate vs ground truth, this interval")
		f.gF1 = reg.Gauge("mtm_fidelity_f1", "hot-set F1 of the profiler estimate vs ground truth, this interval")
		f.gRank = reg.Gauge("mtm_fidelity_rank_agreement", "WHI-vs-truth rank agreement of the profiler's region ordering, this interval")
		f.gTruthBytes = reg.Gauge("mtm_fidelity_truth_hot_bytes", "bytes in the ground-truth hot set, this interval")
		f.gEstBytes = reg.Gauge("mtm_fidelity_est_hot_bytes", "bytes in the profiler's estimated hot set, this interval")
		f.cLag = reg.Counter("mtm_fidelity_lag_intervals_total", "summed intervals between pages turning hot and the profiler seeing them")
		f.cLagSamples = reg.Counter("mtm_fidelity_lag_samples_total", "pages whose turn-hot was eventually seen by the profiler")
		f.cMissed = reg.Counter("mtm_fidelity_missed_hot_pages_total", "pages that turned hot and went cold again unseen by the profiler")
		for vd := fidelity.Verdict(0); vd < fidelity.NumVerdicts; vd++ {
			f.cOutcome[vd] = reg.Counter("mtm_fidelity_moves_resolved_total", "committed page moves resolved per hindsight verdict", metrics.L("verdict", vd.String()))
		}
	}
	e.fid = f
}

// FidelityEnabled reports whether the fidelity oracle is on.
func (e *Engine) FidelityEnabled() bool { return e.fid != nil }

// SetMoveContext records the policy rule governing the page moves that
// follow (until ClearMoveContext); committed moves inherit it into their
// lineage entry. No-op without the fidelity oracle.
func (e *Engine) SetMoveContext(rule string) {
	if e.fid != nil {
		e.assertOwned("SetMoveContext")
		e.fid.ctxRule = rule
	}
}

// ClearMoveContext clears the policy-rule and admission-rule context.
func (e *Engine) ClearMoveContext() {
	if e.fid != nil {
		e.fid.ctxRule, e.fid.ctxAdm = "", ""
	}
}

// fidelityNoteAdmission records the admission rule that priced the moves
// that follow; called by AdmitMigration/AdmitFlip.
func (e *Engine) fidelityNoteAdmission(rule string) {
	if e.fid != nil {
		e.fid.ctxAdm = rule
	}
}

// fidelityMoveCommitted appends one committed move to the pending-move
// ledger under the current decision context. Called from MoveCommit and
// FlipDemote on the serialized path, in commit order, so the ledger —
// and every verdict resolved from it — is parallelism-invariant.
func (e *Engine) fidelityMoveCommitted(v *vm.VMA, idx int, src, dst tier.NodeID, flip bool) {
	f := e.fid
	if f == nil {
		return
	}
	if int(src) < 0 || int(dst) < 0 {
		return // first placement, not a move between tiers
	}
	rule := f.ctxRule
	if rule == "" {
		rule = "unattributed"
	}
	adm := f.ctxAdm
	if adm == "" {
		adm = "unguarded"
	}
	f.pend = append(f.pend, pendingMove{
		v:        v,
		idx:      int32(idx),
		interval: int32(e.Intervals),
		promote:  e.Sys.Topo.Rank(e.HomeSocket, dst) < e.Sys.Topo.Rank(e.HomeSocket, src),
		flip:     flip,
		rule:     rule,
		adm:      adm,
		src:      src,
		dst:      dst,
	})
}

// solutionRegions returns the active solution's profiled region table, or
// nil when it does not expose one.
func (e *Engine) solutionRegions() []*region.Region {
	if re, ok := e.sol.(regionEstimator); ok {
		return re.Regions()
	}
	return nil
}

func (f *fidelityState) growShards(n int) {
	for len(f.shards) < n {
		f.shards = append(f.shards, new(fidShard))
	}
}

// runPhaseA is the sharded truth-histogram phase: bytes per log2(count)
// bucket plus the touched-page and access tallies for this shard's span.
func (f *fidelityState) runPhaseA(si int) {
	s := f.shards[si]
	sp := &f.spans[si]
	tb, tp, acc := fidelity.AccumulateTruth(sp.v, sp.lo, sp.hi, &s.buckets)
	s.touchedBytes += tb
	s.touchedPages += tp
	s.accesses += acc
}

// runPhaseB is the sharded scoring phase: truth membership at curCut,
// truth-vs-estimate overlap, estimation-lag transitions, heat columns.
func (f *fidelityState) runPhaseB(si int) {
	s := f.shards[si]
	sp := &f.spans[si]
	v, pl := sp.v, sp.pl
	ps := v.PageSize
	cut, interval, totalBytes := f.curCut, f.curInterval, f.totalBytes
	for w := sp.lo / vm.WordPages; w*vm.WordPages < sp.hi; w++ {
		var tw uint64
		cand := v.TouchedRangeWord(w, sp.lo, sp.hi) & v.PresentRangeWord(w, sp.lo, sp.hi)
		for word := cand; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			if bits.Len32(v.Count(i)) >= cut {
				tw |= 1 << uint(i&63)
			}
		}
		ew := pl.est.Word(w)
		pw := pl.prev.Word(w)
		pendw := pl.pend.Word(w)

		s.truthBytes += int64(bits.OnesCount64(tw)) * ps
		s.estBytes += int64(bits.OnesCount64(ew)) * ps
		s.interBytes += int64(bits.OnesCount64(tw&ew)) * ps

		// Lag transitions. Seen: a pending page entered the estimated
		// hot set — close its lag sample.
		seen := ew & pendw
		for word := seen; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			s.lagSum += int64(interval - pl.hotSince[i])
			s.lagN++
			pl.hotSince[i] = -1
		}
		pendw &^= seen
		// Missed: a pending page went cold before the profiler ever
		// covered it.
		missed := pendw &^ tw
		s.missed += int64(bits.OnesCount64(missed))
		for word := missed; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			pl.hotSince[i] = -1
		}
		pendw &^= missed
		// Instantly seen: turned hot already inside the estimate —
		// a zero-lag sample.
		s.lagN += int64(bits.OnesCount64(tw &^ pw & ew &^ pendw))
		// Newly hot, unseen: start the lag clock.
		newh := tw &^ pw &^ ew &^ pendw
		for word := newh; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			pl.hotSince[i] = interval
		}
		pendw |= newh

		pl.pend[w] = pendw
		pl.truth[w] = tw
		pl.prev[w] = tw // becomes "previous" for the next sample

		// Heat columns: hot bytes per address-space slice.
		for word := tw; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			col := int((sp.baseOff + int64(i)*ps) * fidelity.HeatCols / totalBytes)
			s.colsTruth[col] += ps
		}
		for word := ew; word != 0; {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			col := int((sp.baseOff + int64(i)*ps) * fidelity.HeatCols / totalBytes)
			s.colsEst[col] += ps
		}
	}
}

// FidelitySample takes one oracle sample immediately, outside the normal
// end-of-interval sequence. It reads (and does not reset) the current
// count planes, so callers own the surrounding ResetCounts discipline.
// Exported for the zero-alloc gate and the sampling benchmark; simulation
// runs never need it.
func (e *Engine) FidelitySample() { e.fidelityEndInterval() }

// fidelityEndInterval takes the once-per-interval oracle sample. It runs
// on the serialized path after the solution's migration pass and MUST run
// before AddressSpace.ResetCounts — the count planes are the ground
// truth. It charges no virtual time: the oracle is measurement
// scaffolding, not part of the simulated system, so enabling it cannot
// perturb the run it grades.
func (e *Engine) fidelityEndInterval() {
	f := e.fid
	if f == nil {
		return
	}
	vmas := e.AS.VMAs()

	// Rebuild the shard span list and the global byte-offset mapping for
	// the heatmap columns. Plane creation happens here, on the serialized
	// path, so shard functions only index stable state.
	f.spans = f.spans[:0]
	f.totalBytes = 0
	for _, v := range vmas {
		f.totalBytes += v.Bytes()
	}
	var off int64
	for _, v := range vmas {
		pl := f.planes[v]
		if pl == nil {
			pl = &fidelityPlane{
				truth:    vm.NewBitmap(v.NPages),
				prev:     vm.NewBitmap(v.NPages),
				est:      vm.NewBitmap(v.NPages),
				pend:     vm.NewBitmap(v.NPages),
				hotSince: make([]int32, v.NPages),
			}
			for i := range pl.hotSince {
				pl.hotSince[i] = -1
			}
			f.planes[v] = pl
		}
		for lo := 0; lo < v.NPages; lo += fidShardPages {
			hi := lo + fidShardPages
			if hi > v.NPages {
				hi = v.NPages
			}
			f.spans = append(f.spans, fidSpan{v: v, pl: pl, lo: lo, hi: hi, baseOff: off})
		}
		off += v.Bytes()
	}
	ns := len(f.spans)
	f.samples++
	if ns == 0 {
		e.fidelityResolve()
		return
	}
	f.growShards(ns)
	for _, s := range f.shards[:ns] {
		*s = fidShard{}
	}

	// Phase A (sharded): bytes-per-log2(count) truth histogram. Merged in
	// shard order; the hot-set cutoff is a pure function of the merge.
	e.Parallel(ns, f.phaseA)
	var bk fidelity.Buckets
	var touchedPages, accesses int64
	for _, s := range f.shards[:ns] {
		bk.Add(&s.buckets)
		touchedPages += s.touchedPages
		accesses += s.accesses
	}
	f.curCut = bk.CutBucket(f.hotset, fidelity.MinHotBucket(accesses, touchedPages))

	// Estimate plane (serialized): clear and re-mark from the profiler's
	// hottest regions down to the same byte target. Word-wide stores; the
	// region list is small.
	for _, v := range vmas {
		f.planes[v].est.ClearAll()
	}
	regions := e.solutionRegions()
	f.markEstimate(regions)

	// Rank-agreement inputs: per-region ground-truth access density from
	// the same count plane the profiler could only sample.
	f.whiBuf, f.denBuf, f.bytesBuf = f.whiBuf[:0], f.denBuf[:0], f.bytesBuf[:0]
	for _, r := range regions {
		var sum int64
		for w := r.Start / vm.WordPages; w*vm.WordPages < r.End; w++ {
			word := r.V.TouchedRangeWord(w, r.Start, r.End) & r.V.PresentRangeWord(w, r.Start, r.End)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				sum += int64(r.V.Count(i))
			}
		}
		den := 0.0
		if rp := r.End - r.Start; rp > 0 {
			den = float64(sum) / float64(rp)
		}
		f.whiBuf = append(f.whiBuf, r.WHI)
		f.denBuf = append(f.denBuf, den)
		f.bytesBuf = append(f.bytesBuf, int64(r.End-r.Start)*r.V.PageSize)
	}
	rank := fidelity.RankAgreement(f.whiBuf, f.denBuf, f.bytesBuf)

	// Phase B (sharded): truth membership, truth-vs-estimate overlap,
	// estimation-lag transitions, heat columns. Each bitmap word belongs
	// to exactly one shard (fidShardPages is a multiple of vm.WordPages),
	// so whole-word stores need no synchronisation.
	f.curInterval = int32(e.Intervals)
	e.Parallel(ns, f.phaseB)

	// Merge in shard order and score the interval.
	var truthB, estB, interB, dLag, dLagN, dMissed int64
	row := fidelity.HeatRow{Interval: e.Intervals}
	for _, s := range f.shards[:ns] {
		truthB += s.truthBytes
		estB += s.estBytes
		interB += s.interBytes
		dLag += s.lagSum
		dLagN += s.lagN
		dMissed += s.missed
		for c := range row.Truth {
			row.Truth[c] += s.colsTruth[c]
			row.Est[c] += s.colsEst[c]
		}
	}
	f.lagSum += dLag
	f.lagN += dLagN
	f.missed += dMissed
	f.heat.Rows = append(f.heat.Rows, row)

	p, r, f1 := fidelity.PRF(truthB, estB, interB)
	if truthB > 0 && estB > 0 {
		f.scored++
		f.sumP += p
		f.sumR += r
		f.sumF += f1
		f.sumRank += rank
	}

	if f.gPrec != nil {
		f.gPrec.Set(p)
		f.gRec.Set(r)
		f.gF1.Set(f1)
		f.gRank.Set(rank)
		f.gTruthBytes.Set(float64(truthB))
		f.gEstBytes.Set(float64(estB))
		f.cLag.Add(dLag)
		f.cLagSamples.Add(dLagN)
		f.cMissed.Add(dMissed)
	}

	e.fidelityResolve()
}

// markEstimate marks the profiler's estimated hot set: regions are
// bucketised by WHI into 32 equal-width buckets and whole buckets are
// taken hottest-first until the byte target is covered — a pure function
// of the region table, mirroring fidelity.Buckets.CutBucket on the truth
// side.
func (f *fidelityState) markEstimate(regions []*region.Region) {
	var maxW float64
	for _, r := range regions {
		if r.WHI > maxW {
			maxW = r.WHI
		}
	}
	if maxW <= 0 {
		return
	}
	const nb = 32
	var bbytes [nb]int64
	for _, r := range regions {
		if r.WHI <= 0 {
			continue
		}
		b := int(r.WHI / maxW * nb)
		if b > nb-1 {
			b = nb - 1
		}
		bbytes[b] += int64(r.End-r.Start) * r.V.PageSize
	}
	cut := nb - 1
	var acc int64
	for k := nb - 1; k >= 0; k-- {
		acc += bbytes[k]
		cut = k
		if acc >= f.hotset {
			break
		}
	}
	for _, r := range regions {
		if r.WHI <= 0 {
			continue
		}
		b := int(r.WHI / maxW * nb)
		if b > nb-1 {
			b = nb - 1
		}
		if b < cut {
			continue
		}
		if pl := f.planes[r.V]; pl != nil {
			pl.est.SetRange(r.Start, r.End)
		}
	}
}

// fidelityResolve walks the pending-move ledger in commit order and
// resolves every move that saw a reaccess this interval or whose horizon
// expired. Resolution reads the same count plane the truth sample did,
// so it must also run before ResetCounts. Moves committed this interval
// are skipped — their counts predate the move.
func (e *Engine) fidelityResolve() {
	f := e.fid
	cur := int32(e.Intervals)
	keep := f.pend[:0]
	for i := range f.pend {
		m := &f.pend[i]
		if m.interval >= cur {
			keep = append(keep, *m)
			continue
		}
		reaccessed := m.v.Present(int(m.idx)) && m.v.Count(int(m.idx)) > 0
		if !reaccessed && cur-m.interval < int32(f.horizon) {
			keep = append(keep, *m)
			continue
		}
		vd := fidelity.Resolve(m.promote, m.flip, reaccessed)
		f.outcomes[vd]++
		key := fidelity.RuleKey{Rule: m.rule, Admission: m.adm}
		c := f.byRule[key]
		if c == nil {
			c = new(fidelity.OutcomeCounts)
			f.byRule[key] = c
		}
		c[vd]++
		if f.cOutcome[vd] != nil {
			f.cOutcome[vd].Inc()
		}
		if e.sp != nil {
			e.SpanEvent("migration", "outcome",
				span.S("verdict", vd.String()),
				span.S("rule", m.rule),
				span.S("admission", m.adm),
				span.S("vma", m.v.Name),
				span.I("page", int64(m.idx)),
				span.S("src", e.Sys.Topo.Nodes[m.src].Name),
				span.S("dst", e.Sys.Topo.Nodes[m.dst].Name),
				span.I("lag_intervals", int64(cur-m.interval)))
		}
	}
	f.pend = keep
}

// FidelityReport assembles the Result.Fidelity block; nil without
// EnableFidelity, so fidelity-off Result JSON is unchanged.
func (e *Engine) FidelityReport() *fidelity.Report {
	f := e.fid
	if f == nil {
		return nil
	}
	heat := f.heat
	if len(heat.Rows) == 0 {
		heat = nil
	}
	return fidelity.BuildReport(f.samples, f.scored, f.hotset, f.horizon,
		f.sumP, f.sumR, f.sumF, f.sumRank,
		f.lagSum, f.lagN, f.missed,
		f.outcomes, int64(len(f.pend)), f.byRule, heat)
}
