// Engine-side metrics wiring: the observability layer of internal/metrics
// attached to the simulation. Disabled by default — an engine without
// EnableMetrics runs exactly the pre-metrics code (every recording site
// goes through nil-safe instrument handles whose methods no-op).
//
// Determinism contract: every instrument write and event emission happens
// on the serialised interval loop, never inside Engine.Parallel — the
// registry's guard is pointed at assertOwned, so a recording from a shard
// function panics exactly like Charge*/Note*. Sharded phases accumulate
// into per-shard scratch slots and record the merged totals afterwards,
// which keeps metrics-enabled runs byte-identical at any Parallelism.
package sim

import (
	"time"

	"mtm/internal/metrics"
	"mtm/internal/tier"
)

// Event types emitted by the engine. The profiling interval and virtual
// clock stamps come from the registry (SetNow at interval boundaries).
const (
	// EventMigrationAbort: one page-move transaction rolled back after its
	// retry budget; Detail is the src->dst pair, Value the page index.
	EventMigrationAbort = "migration-abort"
	// EventOOM: capacity exhaustion failed a placement; Detail describes
	// the faulting VMA, Value the page index. The run carries an
	// *OOMError from this point.
	EventOOM = "oom"
	// EventFaultActivation: a fault-injection class is active this
	// interval; Detail names the class.
	EventFaultActivation = "fault-activation"
	// EventPromotionDeferred: admission control deferred a promotion;
	// Detail names the pressured destination node.
	EventPromotionDeferred = "promotion-deferred"
	// EventEmergencyDemotion: the emergency-reclaim path freed room by
	// demoting cold pages; Detail names the node that was consolidated.
	EventEmergencyDemotion = "emergency-demotion"
	// EventMemPoison: an uncorrectable memory error poisoned a page;
	// Detail names the node, Value is the page index.
	EventMemPoison = "mem-poison"
	// EventHealthTransition: a tier changed health state; Detail is
	// "node From->To", Value the numeric new state.
	EventHealthTransition = "health-transition"
	// EventBreakerTrip: a tier-pair migration circuit breaker tripped;
	// Detail is the src->dst pair, Value the pair's lifetime trip count.
	EventBreakerTrip = "breaker-trip"
	// EventDrainStall: a draining tier found no destination with room;
	// Detail names the node, Value the resident pages left behind.
	EventDrainStall = "drain-stall"
	// EventAdmissionDefer: admission control deferred a planned move
	// under budget pressure; Detail is the src->dst pair, Value the
	// requested bytes.
	EventAdmissionDefer = "admission-defer"
	// EventAdmissionReject: admission control rejected a planned move on
	// its ROI; Detail is the src->dst pair, Value the requested bytes.
	EventAdmissionReject = "admission-reject"
	// EventThrashSuppressed: the ping-pong detector blocked a page from
	// reversing direction inside its cool-down; Detail is the src->dst
	// pair, Value the page index of the first suppressed page.
	EventThrashSuppressed = "thrash-suppressed"
	// EventLaneStarvation: the admission starvation watchdog caught a
	// critical traffic class (drain, emergency) with requests but zero
	// admits for more than the configured number of consecutive
	// intervals; Detail names the class, Value the intervals waited.
	EventLaneStarvation = "lane-starvation"
)

// engineMetrics holds the engine's pre-registered instrument handles. All
// handles are resolved once at EnableMetrics; the hot path never performs
// name lookups.
type engineMetrics struct {
	reg *metrics.Registry

	intervals     *metrics.Counter
	appNs         *metrics.Counter
	profNs        *metrics.Counter
	migNs         *metrics.Counter
	bgNs          *metrics.Counter
	faults        *metrics.Counter
	promotedBytes *metrics.Counter
	demotedBytes  *metrics.Counter
	deferred      *metrics.Counter
	emergencies   *metrics.Counter
	oom           *metrics.Counter
	retries       *metrics.Counter
	aborts        *metrics.Counter
	wastedBytes   *metrics.Counter

	// Tier-health instruments (registered unconditionally; they stay at
	// zero unless EnableHealth is active).
	poisonedPages     *metrics.Counter
	poisonRecoveries  *metrics.Counter
	drainedBytes      *metrics.Counter
	drainStalls       *metrics.Counter
	breakerTrips      *metrics.Counter
	healthTransitions *metrics.Counter

	// Admission-control instruments (registered unconditionally; they
	// stay at zero unless EnableAdmission is active).
	admAdmitted *metrics.Counter
	admDeferred *metrics.Counter
	admRejected *metrics.Counter
	admThrash   *metrics.Counter
	admStarved  *metrics.Counter

	// Non-exclusive-tiering instruments (registered unconditionally;
	// they stay at zero unless EnableShadow is active).
	shadowRetained      *metrics.Counter
	shadowHits          *metrics.Counter
	shadowInvalidations *metrics.Counter
	shadowDropped       *metrics.Counter
	shadowFlips         *metrics.Counter
	shadowFlipBytes     *metrics.Counter
	shadowSyncBytes     *metrics.Counter
	shadowBytes         []*metrics.Gauge // per node

	nodeAccesses []*metrics.Counter // per node
	contention   []*metrics.Gauge   // per node
	tierState    []*metrics.Gauge   // per node health state (0=Online..3=Offline)

	// Per-tier-pair migration accounting, indexed [src][dst].
	movedPages   [][]*metrics.Counter
	abortedPages [][]*metrics.Counter
	retriedPages [][]*metrics.Counter
	backoffNs    [][]*metrics.Counter
	pairName     [][]string // "src->dst", prebuilt so events never format

	intervalAppNs *metrics.Histogram
}

// intervalAppBounds are the fixed buckets of the per-interval application
// time histogram, in nanoseconds (100µs … 10s, decade steps).
var intervalAppBounds = []float64{1e5, 1e6, 1e7, 1e8, 1e9, 1e10}

// EnableMetrics attaches a fresh metrics registry to the engine and
// registers the engine-level instruments. Calling it again returns the
// existing registry. Solutions and profilers register their own
// instruments against Metrics() during Attach.
func (e *Engine) EnableMetrics() *metrics.Registry {
	if e.met != nil {
		return e.met.reg
	}
	reg := metrics.New()
	reg.SetGuard(func(what string) { e.assertOwned("metrics(" + what + ")") })
	m := &engineMetrics{reg: reg}

	m.intervals = reg.Counter("mtm_sim_intervals_total", "profiling intervals completed")
	m.appNs = reg.Counter("mtm_sim_app_ns_total", "cumulative application time (virtual ns)")
	m.profNs = reg.Counter("mtm_sim_profiling_ns_total", "cumulative critical-path profiling time (virtual ns)")
	m.migNs = reg.Counter("mtm_sim_migration_ns_total", "cumulative critical-path migration time (virtual ns)")
	m.bgNs = reg.Counter("mtm_sim_background_ns_total", "cumulative off-critical-path copy time (virtual ns)")
	m.faults = reg.Counter("mtm_sim_page_faults_total", "demand-zero page faults serviced")
	m.promotedBytes = reg.Counter("mtm_sim_promoted_bytes_total", "bytes promoted to faster tiers")
	m.demotedBytes = reg.Counter("mtm_sim_demoted_bytes_total", "bytes demoted to slower tiers")
	m.deferred = reg.Counter("mtm_sim_deferred_promotions_total", "promotions deferred by admission control")
	m.emergencies = reg.Counter("mtm_sim_emergency_demotions_total", "emergency-reclaim events in the fault path")
	m.oom = reg.Counter("mtm_sim_oom_total", "out-of-memory placement failures")
	m.retries = reg.Counter("mtm_migrate_retries_total", "page-copy attempts retried after transient failure")
	m.aborts = reg.Counter("mtm_migrate_aborts_total", "page-move transactions rolled back")
	m.wastedBytes = reg.Counter("mtm_migrate_wasted_bytes_total", "copy bytes thrown away by aborts")
	m.intervalAppNs = reg.Histogram("mtm_sim_interval_app_ns", "per-interval application time (virtual ns)", intervalAppBounds)
	m.poisonedPages = reg.Counter("mtm_health_poisoned_pages_total", "pages lost to uncorrectable memory errors")
	m.poisonRecoveries = reg.Counter("mtm_health_poison_recoveries_total", "recovery faults taken on poisoned pages")
	m.drainedBytes = reg.Counter("mtm_health_drained_bytes_total", "bytes evacuated off draining tiers")
	m.drainStalls = reg.Counter("mtm_health_drain_stalls_total", "drain steps stalled with no destination")
	m.breakerTrips = reg.Counter("mtm_health_breaker_trips_total", "migration circuit-breaker trips")
	m.healthTransitions = reg.Counter("mtm_health_transitions_total", "tier health-state transitions")
	m.admAdmitted = reg.Counter("mtm_admission_admitted_total", "planned moves admitted by admission control")
	m.admDeferred = reg.Counter("mtm_admission_deferred_total", "planned moves deferred by admission control (budget pressure)")
	m.admRejected = reg.Counter("mtm_admission_rejected_total", "planned moves rejected by admission control (ROI)")
	m.admThrash = reg.Counter("mtm_admission_thrash_suppressed_total", "page moves blocked by the ping-pong cool-down")
	m.admStarved = reg.Counter("mtm_admission_lane_starvations_total", "starvation-watchdog firings for critical traffic classes")
	m.shadowRetained = reg.Counter("mtm_shadow_retained_total", "promotions that retained their source frame as a shadow")
	m.shadowHits = reg.Counter("mtm_shadow_hits_total", "demotion lookups that found a valid shadow")
	m.shadowInvalidations = reg.Counter("mtm_shadow_invalidations_total", "shadows diverged by a write to the fast copy")
	m.shadowDropped = reg.Counter("mtm_shadow_dropped_total", "shadows dropped under pressure or health events")
	m.shadowFlips = reg.Counter("mtm_shadow_flips_total", "demotions completed as zero-copy shadow flips")
	m.shadowFlipBytes = reg.Counter("mtm_shadow_flip_bytes_total", "bytes demoted without copying")
	m.shadowSyncBytes = reg.Counter("mtm_shadow_sync_bytes_total", "bytes re-copied to shadow frames in the background")

	nodes := e.Sys.Topo.Nodes
	m.nodeAccesses = make([]*metrics.Counter, len(nodes))
	m.contention = make([]*metrics.Gauge, len(nodes))
	m.tierState = make([]*metrics.Gauge, len(nodes))
	m.shadowBytes = make([]*metrics.Gauge, len(nodes))
	for i, n := range nodes {
		m.nodeAccesses[i] = reg.Counter("mtm_sim_node_accesses_total", "application accesses served per node", metrics.L("node", n.Name))
		m.contention[i] = reg.Gauge("mtm_sim_node_contention", "bandwidth-contention factor carried into the next interval", metrics.L("node", n.Name))
		m.tierState[i] = reg.Gauge("mtm_health_tier_state", "tier health state (0=Online 1=Degraded 2=Draining 3=Offline)", metrics.L("node", n.Name))
		m.shadowBytes[i] = reg.Gauge("mtm_shadow_bytes", "bytes held as retained shadow copies per node", metrics.L("node", n.Name))
	}

	pairCounters := func(name, help string) [][]*metrics.Counter {
		out := make([][]*metrics.Counter, len(nodes))
		for s := range nodes {
			out[s] = make([]*metrics.Counter, len(nodes))
			for d := range nodes {
				if s == d {
					continue // pages never migrate node-to-same-node
				}
				out[s][d] = reg.Counter(name, help,
					metrics.L("src", nodes[s].Name), metrics.L("dst", nodes[d].Name))
			}
		}
		return out
	}
	m.movedPages = pairCounters("mtm_migrate_pages_moved_total", "pages migrated per tier pair")
	m.abortedPages = pairCounters("mtm_migrate_pages_aborted_total", "page moves aborted per tier pair")
	m.retriedPages = pairCounters("mtm_migrate_pages_retried_total", "page-copy retries per tier pair")
	m.backoffNs = pairCounters("mtm_migrate_backoff_ns_total", "virtual backoff time charged per tier pair (ns)")
	m.pairName = make([][]string, len(nodes))
	for s := range nodes {
		m.pairName[s] = make([]string, len(nodes))
		for d := range nodes {
			m.pairName[s][d] = nodes[s].Name + "->" + nodes[d].Name
		}
	}

	e.met = m
	return reg
}

// Metrics returns the engine's metrics registry, or nil when metrics are
// disabled. The registry's instrument constructors and instrument methods
// are nil-safe, so callers may use the result unconditionally.
func (e *Engine) Metrics() *metrics.Registry {
	if e.met == nil {
		return nil
	}
	return e.met.reg
}

// MetricsExport snapshots the registry for embedding in a Result; nil when
// metrics are disabled.
func (e *Engine) MetricsExport() *metrics.Export {
	if e.met == nil {
		return nil
	}
	return e.met.reg.Export()
}

// pairCounter indexes a per-pair matrix defensively (NoNode/Invalid src
// yields nil, which no-ops).
func pairCounter(m [][]*metrics.Counter, src, dst tier.NodeID) *metrics.Counter {
	if int(src) < 0 || int(src) >= len(m) {
		return nil
	}
	row := m[src]
	if int(dst) < 0 || int(dst) >= len(row) {
		return nil
	}
	return row[dst]
}

// emitEventOnce emits a metrics event at most once per (type, detail)
// pair per interval. Recurring per-page conditions — repeated aborts on
// one flaky pair, drain stalls retried every interval, thrash storms —
// would otherwise flood the bounded event ring and evict the diverse
// evidence it exists to keep; the first occurrence per interval carries
// the value, later ones only bump their counters. The seen-set is only
// ever probed by key (never iterated), so it cannot leak map order.
func (e *Engine) emitEventOnce(typ, detail string, value int64) {
	if e.met == nil {
		return
	}
	key := typ + "\x00" + detail
	if _, dup := e.evSeen[key]; dup {
		return
	}
	if e.evSeen == nil {
		e.evSeen = make(map[string]struct{})
	}
	e.evSeen[key] = struct{}{}
	e.met.reg.Emit(typ, detail, value)
}

// metricsBeginInterval stamps the registry with the interval about to run
// and emits activation events for any fault-injection classes whose storm
// windows opened (the plane advertises them via ActiveClasses).
func (e *Engine) metricsBeginInterval() {
	if e.met == nil {
		return
	}
	clear(e.evSeen)
	e.met.reg.SetNow(e.Intervals, int64(e.clock))
	if a, ok := e.faults.(interface{ ActiveClasses() []string }); ok {
		for _, class := range a.ActiveClasses() {
			e.met.reg.Emit(EventFaultActivation, class, 0)
		}
	}
}

// metricsEndInterval records the finished interval's accounting and
// appends one time-series sample. Called from endInterval after the
// clock advanced but before Intervals increments, so the sample is
// stamped with the interval it describes.
func (e *Engine) metricsEndInterval(app time.Duration) {
	if e.met == nil {
		return
	}
	m := e.met
	m.intervals.Inc()
	m.appNs.AddDuration(app)
	m.profNs.AddDuration(e.intProf)
	m.migNs.AddDuration(e.intMig)
	m.bgNs.AddDuration(e.intBg)
	m.promotedBytes.Add(e.intPromoted)
	m.demotedBytes.Add(e.intDemoted)
	m.intervalAppNs.Observe(float64(app))
	for i, n := range e.intAccesses {
		m.nodeAccesses[i].Add(n)
		m.contention[i].Set(e.contention[i])
		if e.shd != nil {
			m.shadowBytes[i].Set(float64(e.Sys.ShadowBytes(tier.NodeID(i))))
		}
	}
	m.reg.SetNow(e.Intervals, int64(e.clock))
	m.reg.Sample()
}
