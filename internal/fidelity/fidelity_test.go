package fidelity

import (
	"math/bits"
	"math/rand"
	"testing"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// TestAccumulateTruthMatchesNaive pins the word-wide truth accumulator
// against a page-at-a-time reference loop over a randomly populated VMA:
// same histogram, same tallies, for every shard span — including spans
// that start and end mid-word.
func TestAccumulateTruthMatchesNaive(t *testing.T) {
	as := vm.NewAddressSpace()
	as.THP = false
	v := as.Alloc("truth", 3000*vm.BasePageSize)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < v.NPages; i++ {
		if rng.Intn(4) == 0 {
			continue // leave a hole: not present
		}
		v.Place(i, tier.NodeID(0))
		if n := rng.Intn(300); n > 0 {
			v.TouchN(i, uint32(n), 0, 0)
		}
	}

	spans := [][2]int{{0, v.NPages}, {0, 64}, {7, 130}, {65, 67}, {2999, 3000}, {100, 100}}
	for _, sp := range spans {
		lo, hi := sp[0], sp[1]
		var got Buckets
		gb, gp, ga := AccumulateTruth(v, lo, hi, &got)

		var want Buckets
		var wb, wp, wa int64
		for i := lo; i < hi; i++ {
			if !v.Present(i) || !v.Touched(i) {
				continue
			}
			c := v.Count(i)
			want[bits.Len32(c)] += v.PageSize
			wb += v.PageSize
			wp++
			wa += int64(c)
		}
		if got != want {
			t.Errorf("span [%d,%d): histogram mismatch\n got %v\nwant %v", lo, hi, got, want)
		}
		if gb != wb || gp != wp || ga != wa {
			t.Errorf("span [%d,%d): tallies = (%d,%d,%d), want (%d,%d,%d)", lo, hi, gb, gp, ga, wb, wp, wa)
		}
	}
}

func TestCutBucket(t *testing.T) {
	var b Buckets
	b[10] = 100 // hottest
	b[5] = 200
	b[2] = 1000
	if got := b.CutBucket(100, 1); got != 10 {
		t.Errorf("target covered by the top bucket: cut = %d, want 10", got)
	}
	if got := b.CutBucket(250, 1); got != 5 {
		t.Errorf("target needing two buckets: cut = %d, want 5", got)
	}
	if got := b.CutBucket(1<<40, 1); got != 1 {
		t.Errorf("target beyond everything: cut = %d, want 1 (every touched page is hot)", got)
	}
	if got := b.CutBucket(1<<40, 4); got != 4 {
		t.Errorf("minBucket floor: cut = %d, want 4", got)
	}
	var empty Buckets
	if got := empty.CutBucket(100, 3); got != 3 {
		t.Errorf("empty histogram: cut = %d, want the floor 3", got)
	}
}

func TestMinHotBucket(t *testing.T) {
	// 1000 accesses over 10 pages: mean 100, threshold 200 → bucket 8
	// (Len64(200) = 8), so pages need count >= 128 to qualify.
	if got := MinHotBucket(1000, 10); got != 8 {
		t.Errorf("MinHotBucket(1000, 10) = %d, want 8", got)
	}
	if got := MinHotBucket(0, 0); got != 1 {
		t.Errorf("MinHotBucket(0, 0) = %d, want 1", got)
	}
	// Mean below 1 clamps to 1: threshold 2 → bucket 2.
	if got := MinHotBucket(3, 100); got != 2 {
		t.Errorf("MinHotBucket(3, 100) = %d, want 2", got)
	}
}

func TestPRF(t *testing.T) {
	p, r, f1 := PRF(100, 50, 25)
	if p != 0.5 || r != 0.25 {
		t.Errorf("PRF = (%v, %v), want (0.5, 0.25)", p, r)
	}
	wantF1 := 2 * 0.5 * 0.25 / 0.75
	if f1 != wantF1 {
		t.Errorf("F1 = %v, want %v", f1, wantF1)
	}
	if p, r, f1 = PRF(0, 0, 0); p != 0 || r != 0 || f1 != 0 {
		t.Errorf("PRF(0,0,0) = (%v,%v,%v), want zeros", p, r, f1)
	}
}

func TestRankAgreement(t *testing.T) {
	// Perfectly aligned ranking: agreement 1.
	whi := []float64{1, 2, 4, 8}
	den := []float64{10, 20, 40, 80}
	bytes := []int64{1, 1, 1, 1}
	if got := RankAgreement(whi, den, bytes); got != 1 {
		t.Errorf("aligned ranking: agreement = %v, want 1", got)
	}
	// Perfectly inverted two-region ranking: agreement 0.
	if got := RankAgreement([]float64{1e-9, 1}, []float64{1, 1e-9}, []int64{1, 1}); got != 0 {
		t.Errorf("inverted ranking: agreement = %v, want 0", got)
	}
	if got := RankAgreement(nil, nil, nil); got != 0 {
		t.Errorf("empty input: agreement = %v, want 0", got)
	}
}

func TestResolveVerdicts(t *testing.T) {
	cases := []struct {
		promote, flip, reaccessed bool
		want                      Verdict
	}{
		{true, false, true, PromotedReaccessed},
		{true, false, false, PromotedWasted},
		{false, false, true, DemotedRefaulted},
		{false, false, false, DemotedCorrect},
		{false, true, true, FlipResurrected},
		{false, true, false, DemotedCorrect},
	}
	for _, c := range cases {
		if got := Resolve(c.promote, c.flip, c.reaccessed); got != c.want {
			t.Errorf("Resolve(%v, %v, %v) = %s, want %s", c.promote, c.flip, c.reaccessed, got, c.want)
		}
	}
}

// TestBuildReportByRuleOrder pins the deterministic ByRule ordering:
// sorted by (Rule, Admission) regardless of map iteration order.
func TestBuildReportByRuleOrder(t *testing.T) {
	byRule := map[RuleKey]*OutcomeCounts{
		{Rule: "b", Admission: "y"}: {1, 0, 0, 0, 0},
		{Rule: "a", Admission: "z"}: {0, 2, 0, 0, 0},
		{Rule: "a", Admission: "x"}: {0, 0, 3, 0, 0},
	}
	rep := BuildReport(1, 1, 0, 8, 0, 0, 0, 0, 0, 0, 0, OutcomeCounts{}, 0, byRule, nil)
	want := []RuleKey{{"a", "x"}, {"a", "z"}, {"b", "y"}}
	if len(rep.ByRule) != len(want) {
		t.Fatalf("ByRule entries = %d, want %d", len(rep.ByRule), len(want))
	}
	for i, w := range want {
		if rep.ByRule[i].Rule != w.Rule || rep.ByRule[i].Admission != w.Admission {
			t.Errorf("ByRule[%d] = (%s, %s), want (%s, %s)",
				i, rep.ByRule[i].Rule, rep.ByRule[i].Admission, w.Rule, w.Admission)
		}
	}
}
