// Package fidelity is the ground-truth oracle the simulator can afford
// and a real kernel cannot: because every application access lands in the
// VMA's per-page count plane, the simulator knows — exactly — which pages
// were hot in an interval, and can grade what each profiler *believed*
// against what the workload *did*. The package holds the pure scoring
// machinery: word-wide truth tallies over the count plane, top-K hot-set
// selection by log2 count bucket, precision/recall/F1, a WHI-vs-truth
// rank-agreement score, and the migration-outcome lineage verdicts. The
// engine-side wiring (per-interval sampling, shard merging, the pending-
// move ledger) lives in internal/sim; everything here is deterministic
// arithmetic over already-merged tallies.
package fidelity

import (
	"math/bits"
	"sort"

	"mtm/internal/vm"
)

// NBuckets is the number of log2 access-count buckets: bits.Len32 of a
// page's interval count is 0 for an untouched page and at most 32, so
// bucket b holds pages with counts in [2^(b-1), 2^b).
const NBuckets = 33

// Buckets is a bytes-per-log2(count) histogram of one interval's truth
// plane. Shards accumulate into their own Buckets and the engine merges
// them in shard order; the merged histogram picks the hot-set cutoff.
type Buckets [NBuckets]int64

// AccumulateTruth tallies pages [lo, hi) of v into b, word-wide over the
// touched plane: each present-and-touched page adds its bytes to the
// bucket of its access count. It returns the touched bytes and pages and
// the total accesses seen, and allocates nothing.
func AccumulateTruth(v *vm.VMA, lo, hi int, b *Buckets) (touchedBytes, touchedPages, accesses int64) {
	for w := lo / vm.WordPages; w*vm.WordPages < hi; w++ {
		word := v.TouchedRangeWord(w, lo, hi) & v.PresentRangeWord(w, lo, hi)
		for word != 0 {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			c := v.Count(i)
			b[bits.Len32(c)] += v.PageSize
			touchedBytes += v.PageSize
			touchedPages++
			accesses += int64(c)
		}
	}
	return touchedBytes, touchedPages, accesses
}

// Add merges o into b (shard-order merge step).
func (b *Buckets) Add(o *Buckets) {
	for i := range b {
		b[i] += o[i]
	}
}

// CutBucket returns the truth hot-set cutoff: the highest bucket B such
// that pages in buckets >= B cover at least target bytes, clamped to at
// least minBucket (and at least 1, so untouched pages are never "hot").
// Walking whole buckets keeps the cutoff a pure function of the merged
// histogram — no within-bucket tie-breaking that could observe page
// order.
func (b *Buckets) CutBucket(target int64, minBucket int) int {
	cut := 1
	var acc int64
	for k := NBuckets - 1; k >= 1; k-- {
		acc += b[k]
		if acc >= target {
			cut = k
			break
		}
	}
	if cut < minBucket {
		cut = minBucket
	}
	if cut < 1 {
		cut = 1
	}
	return cut
}

// MinHotBucket returns the bucket of twice the mean per-touched-page
// access count: the floor below which a page is background noise, not
// hot, regardless of how much fast memory is available. Uniform
// workloads (every page near the mean) therefore report a near-empty
// truth hot set instead of calling everything hot.
func MinHotBucket(accesses, touchedPages int64) int {
	if touchedPages <= 0 {
		return 1
	}
	mean := accesses / touchedPages
	if mean < 1 {
		mean = 1
	}
	return bits.Len64(uint64(2 * mean))
}

// PRF computes precision, recall and F1 from hot-set byte tallies:
// precision = |est ∩ truth| / |est|, recall = |est ∩ truth| / |truth|.
func PRF(truthBytes, estBytes, interBytes int64) (p, r, f1 float64) {
	if estBytes > 0 {
		p = float64(interBytes) / float64(estBytes)
	}
	if truthBytes > 0 {
		r = float64(interBytes) / float64(truthBytes)
	}
	if p+r > 0 {
		f1 = 2 * p * r / (p + r)
	}
	return p, r, f1
}

// rankBuckets is the resolution of the rank-agreement score: both the
// profiler's WHI and the oracle's truth density are quantised into this
// many equal-width buckets before comparison, so the score rewards
// getting the *ordering* right without demanding calibrated magnitudes.
const rankBuckets = 16

// RankAgreement scores how well the profiler's WHI ordering of regions
// matches the ground-truth access-density ordering: each region's WHI and
// truth density are bucketised into rankBuckets equal-width buckets over
// their respective [0, max] ranges, and the score is one minus the
// bytes-weighted mean bucket distance (1 = orderings agree, 0 = maximally
// inverted). Zero when either side saw nothing. All three slices are
// indexed per region.
func RankAgreement(whi, truthDen []float64, bytes []int64) float64 {
	var maxW, maxT float64
	for i := range whi {
		if whi[i] > maxW {
			maxW = whi[i]
		}
		if truthDen[i] > maxT {
			maxT = truthDen[i]
		}
	}
	if maxW <= 0 || maxT <= 0 {
		return 0
	}
	var sum, tot float64
	for i := range whi {
		bw := int(whi[i] / maxW * rankBuckets)
		if bw > rankBuckets-1 {
			bw = rankBuckets - 1
		}
		bt := int(truthDen[i] / maxT * rankBuckets)
		if bt > rankBuckets-1 {
			bt = rankBuckets - 1
		}
		d := bw - bt
		if d < 0 {
			d = -d
		}
		sum += float64(d) * float64(bytes[i])
		tot += float64(bytes[i])
	}
	if tot == 0 {
		return 0
	}
	return 1 - sum/(float64(rankBuckets-1)*tot)
}

// Verdict is the hindsight outcome of one committed page move, resolved
// within the configured horizon after the move.
type Verdict uint8

const (
	// PromotedReaccessed: the promoted page was accessed again within the
	// horizon — the promotion paid off.
	PromotedReaccessed Verdict = iota
	// PromotedWasted: the horizon expired without a single access — the
	// copy (and the fast-tier residency) bought nothing.
	PromotedWasted
	// DemotedRefaulted: the demoted page was accessed from the slow tier
	// within the horizon — the eviction was premature.
	DemotedRefaulted
	// DemotedCorrect: the demoted page stayed cold through the horizon.
	DemotedCorrect
	// FlipResurrected: a zero-copy shadow-flip demotion whose page turned
	// out to still be live — the flip was cheap, but the page will want
	// promoting again.
	FlipResurrected
	// NumVerdicts bounds per-verdict arrays.
	NumVerdicts
)

var verdictNames = [NumVerdicts]string{
	"promoted-and-reaccessed",
	"promoted-wasted",
	"demoted-and-refaulted",
	"demoted-correct",
	"flip-resurrected",
}

func (vd Verdict) String() string {
	if int(vd) < len(verdictNames) {
		return verdictNames[vd]
	}
	return "unknown"
}

// Resolve classifies a committed move from its direction, mechanism and
// realized reaccess evidence.
func Resolve(promote, flip, reaccessed bool) Verdict {
	switch {
	case promote && reaccessed:
		return PromotedReaccessed
	case promote:
		return PromotedWasted
	case flip && reaccessed:
		return FlipResurrected
	case reaccessed:
		return DemotedRefaulted
	default:
		return DemotedCorrect
	}
}

// OutcomeCounts is a per-verdict page tally.
type OutcomeCounts [NumVerdicts]int64

// RuleKey identifies one (policy rule, admission rule) lineage bucket.
type RuleKey struct{ Rule, Admission string }

// RuleOutcome is the exported per-rule lineage row.
type RuleOutcome struct {
	// Rule is the policy clause that planned the move (fast-promotion,
	// slow-demotion, shadow-flip, emergency-demotion, ...).
	Rule string
	// Admission is the admission-layer rule that admitted it
	// (roi-admitted, shadow-flip-admitted, ...), or "unguarded" when the
	// admission subsystem was off.
	Admission          string
	PromotedReaccessed int64 `json:",omitempty"`
	PromotedWasted     int64 `json:",omitempty"`
	DemotedRefaulted   int64 `json:",omitempty"`
	DemotedCorrect     int64 `json:",omitempty"`
	FlipResurrected    int64 `json:",omitempty"`
}

// MoveOutcomes is the run-wide lineage summary.
type MoveOutcomes struct {
	PromotedReaccessed int64
	PromotedWasted     int64
	DemotedRefaulted   int64
	DemotedCorrect     int64
	FlipResurrected    int64
	// Unresolved counts moves still inside their horizon at run end.
	Unresolved int64
}

// set stores counts into the named MoveOutcomes fields.
func (m *MoveOutcomes) set(c OutcomeCounts) {
	m.PromotedReaccessed = c[PromotedReaccessed]
	m.PromotedWasted = c[PromotedWasted]
	m.DemotedRefaulted = c[DemotedRefaulted]
	m.DemotedCorrect = c[DemotedCorrect]
	m.FlipResurrected = c[FlipResurrected]
}

// HeatCols is the fixed column count of the time×address-space heatmap:
// every VMA page maps to one of HeatCols equal slices of the total mapped
// page range, so rows are constant-size regardless of footprint.
const HeatCols = 64

// HeatRow is one interval's heat sample: hot bytes per address column,
// ground truth and profiler estimate side by side.
type HeatRow struct {
	Interval int
	Truth    [HeatCols]int64
	Est      [HeatCols]int64
}

// Heatmap is the full time×region hotness record rendered by
// cmd/heatreport.
type Heatmap struct {
	Cols int
	Rows []HeatRow
}

// Report is the Result.Fidelity block: profiler accuracy, estimation lag,
// and migration-outcome lineage, all against simulator ground truth.
type Report struct {
	// Samples is the number of oracle samples (one per interval).
	Samples int
	// Scored counts samples where both the truth and the estimated hot
	// sets were non-empty; the accuracy means below average over these.
	Scored int
	// HotsetBytes is the top-K target: the truth and estimated hot sets
	// are each capped at this many bytes (fast-tier capacity by default).
	HotsetBytes int64
	// Horizon is the outcome-resolution window in intervals.
	Horizon int

	MeanPrecision     float64
	MeanRecall        float64
	MeanF1            float64
	MeanRankAgreement float64

	// LagSamples counts pages whose turn-hot was eventually seen by the
	// profiler; MeanLagIntervals is the mean intervals it took.
	LagSamples       int64   `json:",omitempty"`
	MeanLagIntervals float64 `json:",omitempty"`
	// MissedHotPages counts pages that turned hot and went cold again
	// without the profiler's hot set ever covering them.
	MissedHotPages int64 `json:",omitempty"`

	Moves  MoveOutcomes
	ByRule []RuleOutcome `json:",omitempty"`

	Heatmap *Heatmap `json:",omitempty"`
}

// BuildReport assembles the exported report from merged accumulators.
// byRule is consumed in sorted key order so the export is deterministic.
func BuildReport(samples, scored int, hotset int64, horizon int,
	sumP, sumR, sumF, sumRank float64,
	lagSum, lagN, missed int64,
	outcomes OutcomeCounts, unresolved int64,
	byRule map[RuleKey]*OutcomeCounts, heat *Heatmap) *Report {
	r := &Report{
		Samples:        samples,
		Scored:         scored,
		HotsetBytes:    hotset,
		Horizon:        horizon,
		LagSamples:     lagN,
		MissedHotPages: missed,
		Heatmap:        heat,
	}
	if scored > 0 {
		n := float64(scored)
		r.MeanPrecision = sumP / n
		r.MeanRecall = sumR / n
		r.MeanF1 = sumF / n
		r.MeanRankAgreement = sumRank / n
	}
	if lagN > 0 {
		r.MeanLagIntervals = float64(lagSum) / float64(lagN)
	}
	r.Moves.set(outcomes)
	r.Moves.Unresolved = unresolved
	keys := make([]RuleKey, 0, len(byRule))
	for k := range byRule {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Rule != keys[j].Rule {
			return keys[i].Rule < keys[j].Rule
		}
		return keys[i].Admission < keys[j].Admission
	})
	for _, k := range keys {
		c := byRule[k]
		r.ByRule = append(r.ByRule, RuleOutcome{
			Rule:               k.Rule,
			Admission:          k.Admission,
			PromotedReaccessed: c[PromotedReaccessed],
			PromotedWasted:     c[PromotedWasted],
			DemotedRefaulted:   c[DemotedRefaulted],
			DemotedCorrect:     c[DemotedCorrect],
			FlipResurrected:    c[FlipResurrected],
		})
	}
	return r
}
