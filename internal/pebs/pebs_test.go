package pebs

import (
	"math/rand"
	"testing"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

func testVMA() *vm.VMA {
	as := vm.NewAddressSpace()
	v := as.Alloc("t", 8*tier.MB)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 2)
	}
	return v
}

func TestArmDisarm(t *testing.T) {
	b := NewBuffer(4, 128, rand.New(rand.NewSource(1)))
	if b.Armed() {
		t.Fatal("buffer armed before Arm")
	}
	b.Arm(2, 3)
	if !b.Watches(2) || !b.Watches(3) || b.Watches(0) {
		t.Fatal("watch set wrong")
	}
	b.Disarm()
	if b.Watches(2) {
		t.Fatal("still watching after Disarm")
	}
}

func TestWatchesOutOfRange(t *testing.T) {
	b := NewBuffer(4, 128, rand.New(rand.NewSource(1)))
	b.Arm(0)
	if b.Watches(tier.NodeID(99)) || b.Watches(tier.Invalid) {
		t.Fatal("out-of-range node watched")
	}
}

func TestSamplingRate(t *testing.T) {
	b := NewBuffer(4, 1<<20, rand.New(rand.NewSource(42)))
	b.Arm(2)
	v := testVMA()
	const accesses = 4_000_000
	b.Record(v, 0, 2, accesses)
	// Expected samples = accesses * windowFrac / period = 4e6*0.1/200 = 2000.
	got := len(b.Samples())
	if got < 1800 || got > 2200 {
		t.Fatalf("samples = %d, want ~2000", got)
	}
}

func TestFractionalCarry(t *testing.T) {
	b := NewBuffer(4, 1<<20, rand.New(rand.NewSource(7)))
	b.Arm(2)
	v := testVMA()
	// Each call has expectation 0.05; 10k calls must accumulate ~500
	// samples rather than rounding every call to zero.
	for i := 0; i < 10000; i++ {
		b.Record(v, i%v.NPages, 2, 100)
	}
	got := len(b.Samples())
	if got < 350 || got > 650 {
		t.Fatalf("samples = %d, want ~500 via fractional carry", got)
	}
}

func TestUnwatchedNodeIgnored(t *testing.T) {
	b := NewBuffer(4, 128, rand.New(rand.NewSource(1)))
	b.Arm(2)
	v := testVMA()
	b.Record(v, 0, 0, 1_000_000)
	if len(b.Samples()) != 0 {
		t.Fatal("samples recorded for unwatched node")
	}
}

func TestBufferFullInterrupt(t *testing.T) {
	b := NewBuffer(4, 8, rand.New(rand.NewSource(1)))
	b.Arm(2)
	v := testVMA()
	b.Record(v, 0, 2, 100_000) // expectation 50 >> capacity 8
	if len(b.Samples()) != 8 {
		t.Fatalf("buffer holds %d, want capacity 8", len(b.Samples()))
	}
	if b.Interrupts() == 0 || b.Dropped() == 0 {
		t.Fatal("buffer-full interrupt not recorded")
	}
}

func TestRearmClears(t *testing.T) {
	b := NewBuffer(4, 128, rand.New(rand.NewSource(1)))
	b.Arm(2)
	v := testVMA()
	b.Record(v, 0, 2, 100_000)
	b.Arm(2)
	if len(b.Samples()) != 0 {
		t.Fatal("re-arm did not clear samples")
	}
}

func TestSampleIdentity(t *testing.T) {
	b := NewBuffer(4, 128, rand.New(rand.NewSource(1)))
	b.Arm(2)
	v := testVMA()
	b.Record(v, 3, 2, 50_000)
	for _, s := range b.Samples() {
		if s.VMA != v || s.Page != 3 || s.Node != 2 {
			t.Fatalf("bad sample %+v", s)
		}
	}
}

func TestDropStormReducesSamples(t *testing.T) {
	// A 75% drop storm must cut delivered samples to ~25% and account the
	// lost ones in Dropped, like a PEBS interrupt overflow.
	clean := NewBuffer(4, 1<<20, rand.New(rand.NewSource(42)))
	clean.Arm(2)
	storm := NewBuffer(4, 1<<20, rand.New(rand.NewSource(42)))
	storm.Arm(2)
	storm.DropFrac = 0.75
	v := testVMA()
	const accesses = 4_000_000
	clean.Record(v, 0, 2, accesses)
	storm.Record(v, 0, 2, accesses)
	base, got := len(clean.Samples()), len(storm.Samples())
	want := base / 4
	if got < want*8/10 || got > want*12/10 {
		t.Fatalf("storm delivered %d samples, want ~%d (clean %d)", got, want, base)
	}
	if storm.Dropped() < base/2 {
		t.Fatalf("Dropped = %d, want roughly 3/4 of %d", storm.Dropped(), base)
	}
}

func TestDropFracZeroIdentical(t *testing.T) {
	// DropFrac 0 must leave the sample stream bit-identical: the drop
	// branch may not perturb the float carry math.
	a := NewBuffer(4, 1<<20, rand.New(rand.NewSource(9)))
	a.Arm(2)
	b := NewBuffer(4, 1<<20, rand.New(rand.NewSource(9)))
	b.Arm(2)
	b.DropFrac = 0
	v := testVMA()
	for i := 0; i < 1000; i++ {
		a.Record(v, i%v.NPages, 2, 37)
		b.Record(v, i%v.NPages, 2, 37)
	}
	sa, sb := a.Samples(), b.Samples()
	if len(sa) != len(sb) {
		t.Fatalf("sample counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa[i], sb[i])
		}
	}
	if b.Dropped() != a.Dropped() {
		t.Fatal("Dropped differs with DropFrac 0")
	}
}

func TestRearmResetsDropCarry(t *testing.T) {
	b := NewBuffer(4, 1<<20, rand.New(rand.NewSource(3)))
	b.Arm(2)
	b.DropFrac = 0.5
	v := testVMA()
	b.Record(v, 0, 2, 300) // leaves a fractional drop carry behind
	b.Arm(2)
	if b.dropCarry != 0 {
		t.Fatalf("dropCarry = %v after re-arm, want 0", b.dropCarry)
	}
}
