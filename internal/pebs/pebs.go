// Package pebs models processor event-based sampling (Intel PEBS) as MTM
// uses it (§5.5, §8): hardware events fire on memory loads served by
// selected memory nodes, one in SamplePeriod accesses is recorded into a
// preallocated buffer, and an interrupt fires when the buffer fills.
//
// MTM arms the counters only for an activation window covering a fraction
// of each profiling interval (10% by default) and only on the slowest
// tier, using the samples to decide which regions deserve PTE-scan
// profiling. HeMem, by contrast, relies on PEBS alone; the same engine
// serves both, so the comparison in §9.6 exercises identical sampling
// randomness.
package pebs

import (
	"math/rand"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// DefaultSamplePeriod is the paper's production sampling period: one
// sample per 200 memory accesses.
const DefaultSamplePeriod = 200

// DefaultWindowFrac is the fraction of the profiling interval during which
// the counters are armed by MTM.
const DefaultWindowFrac = 0.10

// Sample is one recorded memory access.
type Sample struct {
	VMA  *vm.VMA
	Page int
	Node tier.NodeID
}

// Buffer is the preallocated sample buffer with interrupt-on-full
// semantics. It is armed with a set of watched nodes and an effective
// sampling probability; the simulation engine feeds every application
// access through Record.
type Buffer struct {
	SamplePeriod int     // one sample per this many accesses
	WindowFrac   float64 // fraction of the interval the counters are armed
	Capacity     int     // samples before an interrupt fires

	// DropFrac is the fraction of would-be samples lost to interrupt
	// storms this window (fault injection); 0 means lossless sampling.
	// The engine sets it per interval from the fault plane.
	DropFrac float64

	watched    []bool
	armed      bool
	samples    []Sample
	interrupts int
	dropped    int
	rng        *rand.Rand
	carry      float64 // fractional expected samples carried between calls
	dropCarry  float64 // fractional dropped samples carried between calls
}

// NewBuffer creates a buffer with the paper's defaults and the given
// capacity (number of samples before an "interrupt" drains it).
func NewBuffer(nodes int, capacity int, rng *rand.Rand) *Buffer {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Buffer{
		SamplePeriod: DefaultSamplePeriod,
		WindowFrac:   DefaultWindowFrac,
		Capacity:     capacity,
		watched:      make([]bool, nodes),
		samples:      make([]Sample, 0, capacity),
		rng:          rng,
	}
}

// Arm starts a sampling window watching the given nodes. Previously
// collected samples are cleared.
func (b *Buffer) Arm(nodes ...tier.NodeID) {
	for i := range b.watched {
		b.watched[i] = false
	}
	for _, n := range nodes {
		b.watched[n] = true
	}
	b.armed = true
	b.samples = b.samples[:0]
	b.carry = 0
	b.dropCarry = 0
}

// Disarm stops sampling.
func (b *Buffer) Disarm() { b.armed = false }

// Armed reports whether a window is active.
func (b *Buffer) Armed() bool { return b.armed }

// Watches reports whether accesses to node n are sampled.
func (b *Buffer) Watches(n tier.NodeID) bool {
	return b.armed && int(n) >= 0 && int(n) < len(b.watched) && b.watched[n]
}

// Record feeds n application accesses to (v, page) on node into the
// sampler. The expected number of recorded samples is
// n * WindowFrac / SamplePeriod; fractional expectations are carried
// across calls so low-rate pages are still sampled fairly.
func (b *Buffer) Record(v *vm.VMA, page int, node tier.NodeID, n uint32) {
	if !b.Watches(node) {
		return
	}
	raw := float64(n) * b.WindowFrac / float64(b.SamplePeriod)
	if b.DropFrac > 0 {
		// Interrupt storm: a fraction of samples never reaches the buffer.
		// The branch keeps the DropFrac == 0 arithmetic bit-identical to
		// the pre-fault-injection sampler.
		lost := raw*b.DropFrac + b.dropCarry
		k := int(lost)
		b.dropCarry = lost - float64(k)
		b.dropped += k
		raw -= raw * b.DropFrac
	}
	exp := raw + b.carry
	k := int(exp)
	b.carry = exp - float64(k)
	for i := 0; i < k; i++ {
		if len(b.samples) >= b.Capacity {
			// Buffer full: the interrupt handler drains it in real
			// hardware; we model the drain as free (its cost is folded
			// into the profiling budget) but count the event, and drop
			// nothing since the handler copies samples out.
			b.interrupts++
			b.dropped++
			continue
		}
		b.samples = append(b.samples, Sample{VMA: v, Page: page, Node: node})
	}
}

// Samples returns the samples collected in the current window.
func (b *Buffer) Samples() []Sample { return b.samples }

// Partition cuts the current window's samples into consecutive shards of
// at most shardSize samples, for parallel attribution. The shards alias
// the buffer (no copying); callers must treat them as read-only and must
// not hold them across Arm. The cut depends only on the sample count and
// shardSize, never on worker count, so shard contents are deterministic.
func (b *Buffer) Partition(shardSize int) [][]Sample {
	if shardSize <= 0 {
		shardSize = 1
	}
	n := len(b.samples)
	if n == 0 {
		return nil
	}
	out := make([][]Sample, 0, (n+shardSize-1)/shardSize)
	for lo := 0; lo < n; lo += shardSize {
		hi := lo + shardSize
		if hi > n {
			hi = n
		}
		out = append(out, b.samples[lo:hi])
	}
	return out
}

// Interrupts returns how many buffer-full interrupts have fired.
func (b *Buffer) Interrupts() int { return b.interrupts }

// Dropped returns how many samples were lost to buffer-full conditions or
// interrupt-storm drops (DropFrac).
func (b *Buffer) Dropped() int { return b.dropped }
