package admission

import (
	"math"
	"testing"
)

// learnCtl builds a two-node learning controller with a generous budget
// on the 0→1 pair so floor behaviour, not tokens, decides admissions.
func learnCtl(t *testing.T, cfg Config) *Controller {
	t.Helper()
	cfg.Learn = true
	c := NewController(cfg, 2)
	c.SetRate(0, 1, 1<<40, 1<<40)
	return c
}

// feed notes n identical verdicts on the 0→1 pair.
func feed(c *Controller, n int, reaccessed bool) {
	for i := 0; i < n; i++ {
		c.NoteOutcome(0, 1, reaccessed)
	}
}

// TestLearnerConvergence is the convergence property test for the
// online MinROI learner: under sustained promoted-wasted evidence the
// floor rises monotonically in bounded steps until it saturates at
// LearnMax; under sustained reaccess it falls to LearnMin; and with
// fewer verdicts than the evidence floor it freezes exactly.
func TestLearnerConvergence(t *testing.T) {
	t.Run("rises-under-sustained-waste", func(t *testing.T) {
		c := learnCtl(t, Config{})
		cfg := c.Config()
		base := c.MinROIFor(0, 1)
		if base != cfg.MinROI {
			t.Fatalf("seed floor = %v, want static MinROI %v", base, cfg.MinROI)
		}
		prev := base
		for i := 0; i < 64; i++ {
			feed(c, cfg.EvidenceFloor, false)
			c.EndInterval(int64(i + 1))
			got := c.MinROIFor(0, 1)
			if got < prev {
				t.Fatalf("interval %d: floor fell %v -> %v under pure waste", i, prev, got)
			}
			// One adaptation may not exceed the bounded multiplicative step.
			if max := prev * (1 + cfg.LearnStep); got > max+1e-12 {
				t.Fatalf("interval %d: floor jumped %v -> %v, step bound %v", i, prev, got, max)
			}
			prev = got
		}
		if prev != cfg.LearnMax {
			t.Fatalf("floor after sustained waste = %v, want saturation at LearnMax %v", prev, cfg.LearnMax)
		}
	})

	t.Run("falls-under-sustained-reaccess", func(t *testing.T) {
		c := learnCtl(t, Config{})
		cfg := c.Config()
		prev := c.MinROIFor(0, 1)
		for i := 0; i < 64; i++ {
			feed(c, cfg.EvidenceFloor, true)
			c.EndInterval(int64(i + 1))
			got := c.MinROIFor(0, 1)
			if got > prev {
				t.Fatalf("interval %d: floor rose %v -> %v under pure reaccess", i, prev, got)
			}
			prev = got
		}
		if prev != cfg.LearnMin {
			t.Fatalf("floor after sustained reaccess = %v, want saturation at LearnMin %v", prev, cfg.LearnMin)
		}
	})

	t.Run("freezes-below-evidence-floor", func(t *testing.T) {
		c := learnCtl(t, Config{EvidenceFloor: 8})
		base := c.MinROIFor(0, 1)
		// One verdict short of the evidence floor, many intervals: the
		// floor must not move at all.
		feed(c, 7, false)
		for i := 0; i < 16; i++ {
			c.EndInterval(int64(i + 1))
			if got := c.MinROIFor(0, 1); got != base {
				t.Fatalf("interval %d: floor moved to %v on %d verdicts (evidence floor 8)", i, got, 7)
			}
		}
		// Evidence accumulates rather than resetting: one more verdict
		// tips the pair over the floor and adaptation resumes.
		feed(c, 1, false)
		c.EndInterval(100)
		if got := c.MinROIFor(0, 1); got <= base {
			t.Fatalf("floor = %v after crossing the evidence floor, want a rise above %v", got, base)
		}
	})

	t.Run("mixed-evidence-tracks-target-waste", func(t *testing.T) {
		c := learnCtl(t, Config{TargetWaste: 0.25, EvidenceFloor: 8})
		base := c.MinROIFor(0, 1)
		// 1 bad in 8 (12.5% < 25% target): acceptable waste, floor falls.
		feed(c, 7, true)
		feed(c, 1, false)
		c.EndInterval(1)
		if got := c.MinROIFor(0, 1); got >= base {
			t.Fatalf("floor = %v with waste below target, want a fall below %v", got, base)
		}
	})

	t.Run("decision-floor-is-learned", func(t *testing.T) {
		c := learnCtl(t, Config{})
		cfg := c.Config()
		for i := 0; i < 64; i++ {
			feed(c, cfg.EvidenceFloor, false)
			c.EndInterval(int64(i + 1))
		}
		// A promotion priced against the saturated floor must carry it in
		// the decision and reject ROI below it.
		roi := cfg.LearnMax * 0.99
		d := c.Admit(0, 1, DirPromote, roi, page, page, 1000)
		if d.Floor != cfg.LearnMax {
			t.Fatalf("Decision.Floor = %v, want learned %v", d.Floor, cfg.LearnMax)
		}
		if d.Verdict != VerdictReject || d.Rule != RuleLowROI {
			t.Fatalf("verdict = %v rule %q for roi below learned floor, want reject/%s", d.Verdict, d.Rule, RuleLowROI)
		}
		if d2 := c.Admit(0, 1, DirPromote, cfg.LearnMax*1.01, page, page, 1000); d2.Verdict != VerdictAdmit {
			t.Fatalf("verdict = %v for roi above learned floor, want admit", d2.Verdict)
		}
	})
}

// TestLearnerDisabledKeepsStaticFloor asserts the learner is inert
// unless enabled: NoteOutcome/EndInterval never move the static floor.
func TestLearnerDisabledKeepsStaticFloor(t *testing.T) {
	c := NewController(Config{}, 2)
	want := c.Config().MinROI
	for i := 0; i < 8; i++ {
		c.NoteOutcome(0, 1, false)
		c.EndInterval(int64(i + 1))
	}
	if got := c.MinROIFor(0, 1); got != want {
		t.Fatalf("MinROIFor without Learn = %v, want static %v", got, want)
	}
}

// TestLearnerDeterministicReplay runs the same verdict schedule twice
// and requires bit-identical floors — the property the parallel
// determinism gate relies on.
func TestLearnerDeterministicReplay(t *testing.T) {
	run := func() []float64 {
		c := learnCtl(t, Config{})
		floors := make([]float64, 0, 32)
		for i := 0; i < 32; i++ {
			// A deterministic mixed schedule: waste bursts every third
			// interval, reaccess otherwise.
			feed(c, 4, i%3 != 0)
			feed(c, 4, false)
			c.EndInterval(int64(i + 1))
			floors = append(floors, c.MinROIFor(0, 1))
		}
		return floors
	}
	a, b := run(), run()
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Fatalf("floor trajectory diverged at interval %d: %v vs %v", i, a[i], b[i])
		}
	}
}
