package admission

import (
	"testing"
	"time"
)

const page = int64(1 << 21)

// newCtl builds a two-node controller with a known rate/burst on the
// 0→1 pair: 1000 bytes per virtual second, burst of 4000.
func newCtl(t *testing.T, cfg Config) *Controller {
	t.Helper()
	c := NewController(cfg, 2)
	c.SetRate(0, 1, 1000, 4000)
	return c
}

func TestBucketRefillBoundaries(t *testing.T) {
	c := newCtl(t, Config{})
	// Buckets start full.
	if got := c.Tokens(0, 1, 0); got != 4000 {
		t.Fatalf("initial tokens = %d, want full burst 4000", got)
	}
	// Drain below zero is impossible via Commit clamping? Commit allows
	// debt; drive the bucket to a known level first.
	c.Commit(0, 1, 4000, 0)
	if got := c.Tokens(0, 1, 0); got != 0 {
		t.Fatalf("tokens after full debit = %d, want 0", got)
	}
	// Refill is proportional to elapsed virtual time: 1000 B/s for
	// 500ms credits exactly 500 bytes.
	if got := c.Tokens(0, 1, int64(500*time.Millisecond)); got != 500 {
		t.Fatalf("tokens after 500ms = %d, want 500", got)
	}
	// Re-reading at the same timestamp must not credit again.
	if got := c.Tokens(0, 1, int64(500*time.Millisecond)); got != 500 {
		t.Fatalf("repeated refill at same now credited tokens: %d", got)
	}
	// A time far in the future caps at burst, never beyond.
	if got := c.Tokens(0, 1, int64(time.Hour)); got != 4000 {
		t.Fatalf("tokens after 1h = %d, want burst cap 4000", got)
	}
	// Sub-byte remainders truncate: 1000 B/s for 1.5ms is 1 byte.
	c.Commit(0, 1, 4000, int64(time.Hour))
	if got := c.Tokens(0, 1, int64(time.Hour)+int64(1500*time.Microsecond)); got != 1 {
		t.Fatalf("fractional refill = %d, want truncation to 1", got)
	}
}

func TestWastePenaltyDrainsBudget(t *testing.T) {
	c := newCtl(t, Config{WastePenalty: 3})
	// One wasted page debits (1+3)x its bytes...
	c.Waste(0, 1, 1000, 0)
	if got := c.Tokens(0, 1, 0); got != 0 {
		t.Fatalf("tokens after penalized waste = %d, want 0", got)
	}
	// ...and debt clamps at -burst so the pair can recover.
	c.Waste(0, 1, 100000, 0)
	if got := c.Tokens(0, 1, 0); got != -4000 {
		t.Fatalf("debt = %d, want clamp at -burst (-4000)", got)
	}
	if r := c.WasteRatio(0, 1); r != 1 {
		t.Fatalf("waste ratio = %v, want 1 (nothing committed)", r)
	}
}

func TestZeroBudgetRestartsRefillClock(t *testing.T) {
	c := newCtl(t, Config{})
	// Zeroing at t=1s must both empty the bucket and restart the refill
	// clock: the pair may not retroactively earn credit for the time
	// before the breaker tripped.
	c.ZeroBudget(0, 1, int64(time.Second))
	if got := c.Tokens(0, 1, int64(time.Second)); got != 0 {
		t.Fatalf("tokens after ZeroBudget = %d, want 0", got)
	}
	if got := c.Tokens(0, 1, int64(2*time.Second)); got != 1000 {
		t.Fatalf("tokens 1s after ZeroBudget = %d, want 1000 (one second of refill)", got)
	}
	// Zeroing preserves debt: a pair in the red stays there.
	c.Waste(0, 1, 100000, int64(2*time.Second))
	c.ZeroBudget(0, 1, int64(2*time.Second))
	if got := c.Tokens(0, 1, int64(2*time.Second)); got >= 0 {
		t.Fatalf("ZeroBudget forgave debt: tokens = %d", got)
	}
}

func TestAdmitVerdicts(t *testing.T) {
	cfg := Config{MinROI: 1, MaxVictimROI: 8, PressureFactor: 4, LowWaterFrac: 0.5}
	c := NewController(cfg, 2)
	c.SetRate(0, 1, page, 4*page)

	// Cold promotion: rejected outright.
	d := c.Admit(0, 1, DirPromote, 0.5, page, page, 0)
	if d.Verdict != VerdictReject || d.Rule != RuleLowROI {
		t.Fatalf("cold promote: got %v/%s, want reject/%s", d.Verdict, d.Rule, RuleLowROI)
	}
	// Hot promotion: admitted with a page-aligned allowance capped by
	// the bucket.
	d = c.Admit(0, 1, DirPromote, 10, 8*page, page, 0)
	if d.Verdict != VerdictAdmit || d.AllowedBytes != 4*page {
		t.Fatalf("hot promote: got %v allowed=%d, want admit allowed=%d", d.Verdict, d.AllowedBytes, 4*page)
	}
	// Hot demotion victim: rejected as too hot to evict.
	d = c.Admit(0, 1, DirDemote, 9, page, page, 0)
	if d.Verdict != VerdictReject || d.Rule != RuleVictimHot {
		t.Fatalf("hot victim: got %v/%s, want reject/%s", d.Verdict, d.Rule, RuleVictimHot)
	}
	// Cold demotion victim: admitted.
	d = c.Admit(0, 1, DirDemote, 1, page, page, 0)
	if d.Verdict != VerdictAdmit {
		t.Fatalf("cold victim: got %v/%s, want admit", d.Verdict, d.Rule)
	}
	// Drain the bucket below the low-water mark: a marginal promotion
	// (above MinROI, below MinROI*PressureFactor) sheds...
	c.Commit(0, 1, 4*page, 0)
	d = c.Admit(0, 1, DirPromote, 2, page, page, 0)
	if d.Verdict != VerdictDefer || d.Rule != RuleShed {
		t.Fatalf("marginal promote under pressure: got %v/%s, want defer/%s", d.Verdict, d.Rule, RuleShed)
	}
	// ...and even a clearly profitable one defers once the bucket
	// cannot cover a single page.
	d = c.Admit(0, 1, DirPromote, 100, page, page, 0)
	if d.Verdict != VerdictDefer || d.Rule != RuleBudget {
		t.Fatalf("promote on empty bucket: got %v/%s, want defer/%s", d.Verdict, d.Rule, RuleBudget)
	}
	// Unknown pairs (self-moves, out-of-range) admit unbounded.
	d = c.Admit(1, 1, DirPromote, 0, 3*page, page, 0)
	if d.Verdict != VerdictAdmit || d.AllowedBytes != 3*page {
		t.Fatalf("self pair: got %v allowed=%d, want unbounded admit", d.Verdict, d.AllowedBytes)
	}
}

func TestCooldownHysteresisAndExpiry(t *testing.T) {
	c := NewController(Config{CoolDown: time.Second}, 2)
	const key = uint64(0xdead000)
	// Fresh page: any direction allowed.
	if !c.PageAllowed(key, DirPromote, 0) {
		t.Fatal("fresh page blocked")
	}
	c.NotePageMove(key, DirDemote, 0)
	// During the cool-down the reverse direction is blocked...
	if c.PageAllowed(key, DirPromote, int64(999*time.Millisecond)) {
		t.Fatal("reverse move allowed during cool-down")
	}
	// ...but the same direction stays allowed (no hysteresis against
	// continuing downward).
	if !c.PageAllowed(key, DirDemote, int64(500*time.Millisecond)) {
		t.Fatal("same-direction move blocked during cool-down")
	}
	// At exactly the expiry instant the page is free again, and the
	// entry is dropped.
	if !c.PageAllowed(key, DirPromote, int64(time.Second)) {
		t.Fatal("page still blocked at cool-down expiry")
	}
	if len(c.cool) != 0 {
		t.Fatalf("expired cool-down entry not dropped: %d entries", len(c.cool))
	}
	// A disabled cool-down never stamps.
	off := NewController(Config{CoolDown: -1}, 2)
	off.NotePageMove(key, DirDemote, 0)
	if !off.PageAllowed(key, DirPromote, 0) {
		t.Fatal("disabled cool-down still blocked a move")
	}
}

func TestROI(t *testing.T) {
	// 10 accesses/page/interval, certain reaccess, 32-interval horizon,
	// 250ns gap, 80µs copy: ROI = 10*1*32*250/80000 = 1.
	if got := ROI(10, 1, 32, 250, 80000); got != 1 {
		t.Fatalf("ROI = %v, want 1", got)
	}
	if got := ROI(0, 1, 32, 250, 80000); got != 0 {
		t.Fatalf("ROI of cold page = %v, want 0", got)
	}
	if got := ROI(10, 1, 32, 250, 0); got != 0 {
		t.Fatalf("ROI with zero copy cost = %v, want 0", got)
	}
}

func TestWasteShedHalfOpenRecovery(t *testing.T) {
	c := NewController(Config{CoolDown: -1}, 2)
	rate := 100 * page              // bytes per virtual second
	c.SetRate(0, 1, rate, 400*page) // decay window = burst/rate = 4s
	now := int64(1e9)

	// One commit and one abort: waste ratio 0.5 hits the cutoff with a
	// full page of decayed waste on the ledger, so the pair sheds.
	c.Commit(0, 1, page, now)
	c.Waste(0, 1, page, now)
	d := c.Admit(0, 1, DirPromote, 1, page, page, now)
	if d.Verdict != VerdictDefer || d.Rule != RuleWaste {
		t.Fatalf("Admit on wasteful pair = %v/%s, want defer/%s", d.Verdict, d.Rule, RuleWaste)
	}
	// The shed applies to demotions through the pair too.
	d = c.Admit(0, 1, DirDemote, 1, page, page, now)
	if d.Verdict != VerdictDefer || d.Rule != RuleWaste {
		t.Fatalf("demote through wasteful pair = %v/%s, want defer/%s", d.Verdict, d.Rule, RuleWaste)
	}

	// One decay window later the ledger halves: the ratio still sits at
	// the cutoff, but the decayed waste is under one page — the
	// half-open probe lets a single move through.
	later := now + 4*int64(time.Second)
	d = c.Admit(0, 1, DirPromote, 1, page, page, later)
	if d.Verdict != VerdictAdmit {
		t.Fatalf("probe after decay window = %v/%s, want admit", d.Verdict, d.Rule)
	}

	// A failed probe refills the ledger and the pair sheds again.
	c.Waste(0, 1, page, later)
	d = c.Admit(0, 1, DirPromote, 1, page, page, later)
	if d.Verdict != VerdictDefer || d.Rule != RuleWaste {
		t.Fatalf("Admit after failed probe = %v/%s, want defer/%s", d.Verdict, d.Rule, RuleWaste)
	}

	// A pair below the cutoff never sheds: mostly-successful traffic.
	c2 := NewController(Config{CoolDown: -1}, 2)
	c2.SetRate(0, 1, rate, 400*page)
	c2.Commit(0, 1, 3*page, now)
	c2.Waste(0, 1, page, now)
	if d := c2.Admit(0, 1, DirPromote, 1, page, page, now); d.Verdict != VerdictAdmit {
		t.Fatalf("Admit on mostly-healthy pair = %v/%s, want admit", d.Verdict, d.Rule)
	}

	// Disabled cutoff: even a pure-waste pair stays open.
	c3 := NewController(Config{CoolDown: -1, WasteCutoff: -1}, 2)
	c3.SetRate(0, 1, rate, 400*page)
	c3.Waste(0, 1, 4*page, now)
	if d := c3.Admit(0, 1, DirPromote, 1, page, page, now); d.Verdict != VerdictAdmit {
		t.Fatalf("Admit with disabled cutoff = %v/%s, want admit", d.Verdict, d.Rule)
	}
}

// TestCooldownPruneBoundsMap drives many distinct pages through
// NotePageMove across a long virtual run, pruning once per simulated
// interval like the engine does, and asserts the cool-down map never
// holds more entries than moved within one cool-down window — the map
// used to grow monotonically for the whole run.
func TestCooldownPruneBoundsMap(t *testing.T) {
	const cool = time.Second
	c := NewController(Config{CoolDown: cool}, 2)
	const interval = int64(100 * time.Millisecond)
	const perInterval = 64
	key := uint64(0)
	for iv := int64(0); iv < 200; iv++ {
		now := iv * interval
		c.Prune(now)
		for i := 0; i < perInterval; i++ {
			c.NotePageMove(key, DirPromote, now)
			key++
		}
		// Entries live one cool-down (10 intervals): the map may hold at
		// most 11 intervals' worth (the current one plus the window).
		if max := perInterval * 11; c.CoolSize() > max {
			t.Fatalf("interval %d: cool-down map holds %d entries, want <= %d", iv, c.CoolSize(), max)
		}
	}
	// After a final prune far in the future everything expires.
	if n := c.Prune(int64(1000 * time.Second)); n == 0 {
		t.Fatal("final prune removed nothing")
	}
	if c.CoolSize() != 0 {
		t.Fatalf("map not empty after full expiry: %d", c.CoolSize())
	}
}

// TestCooldownPruneKeepsRestampedPages: a page whose cool-down was
// re-stamped must survive the prune of its older queue record.
func TestCooldownPruneKeepsRestampedPages(t *testing.T) {
	c := NewController(Config{CoolDown: time.Second}, 2)
	const key = uint64(0xbeef)
	c.NotePageMove(key, DirDemote, 0)
	// Re-stamp at 0.5s: expiry moves to 1.5s.
	c.NotePageMove(key, DirDemote, int64(500*time.Millisecond))
	// Prune at 1.2s pops the stale first record but must keep the entry.
	c.Prune(int64(1200 * time.Millisecond))
	if c.PageAllowed(key, DirPromote, int64(1200*time.Millisecond)) {
		t.Fatal("re-stamped page lost its cool-down to a stale queue record")
	}
	if c.CoolSize() != 1 {
		t.Fatalf("cool size = %d, want 1", c.CoolSize())
	}
	// At 1.5s the re-stamp expires for real.
	c.Prune(int64(1500 * time.Millisecond))
	if c.CoolSize() != 0 {
		t.Fatalf("cool size after real expiry = %d, want 0", c.CoolSize())
	}
}
