// Package admission implements migration admission control: a
// deterministic gate in front of every planned page move that decides
// admit, defer, or reject before the move consumes tier-pair bandwidth.
//
// The design follows TierBPF's argument that migration benefit must be
// estimated online and low-ROI moves refused up front, and Nomad's
// observation that unguarded migration actively hurts in ping-pong
// regimes. Four mechanisms combine:
//
//   - Per-tier-pair token buckets, refilled lazily in *virtual* time,
//     bound the byte rate each pair may spend on migration. Committed
//     moves debit their bytes; aborted moves debit their wasted bytes
//     at a penalty multiple, so a pair that keeps failing sheds its own
//     budget and further moves defer until the bucket recovers.
//   - An ROI estimator prices each move: expected stall nanoseconds
//     saved over a retention horizon versus the copy cost of the page.
//     Promotions below MinROI are rejected; demotion victims whose ROI
//     still exceeds MaxVictimROI are rejected as too hot to evict.
//   - A per-page cool-down with direction hysteresis suppresses
//     ping-pong: a page that just demoted cannot immediately
//     re-promote (and vice versa) until the cool-down expires. Moves
//     that continue in the same direction stay allowed.
//   - Load shedding under budget pressure: when a bucket runs below
//     its low-water mark, marginal promotions (admittable but not
//     clearly profitable) defer instead, reserving the remaining
//     budget for high-ROI moves. A pair whose recent attempts mostly
//     aborted (waste ratio over WasteCutoff) defers everything until
//     its decaying waste ledger clears, probing half-open-style on the
//     way back. An open health circuit breaker zeroes the pair's
//     bucket outright.
//
// The package is pure bookkeeping over plain int node IDs and int64
// virtual nanoseconds — no engine types, no wall clock, no RNG — so a
// Controller behaves bit-identically at any worker count as long as its
// methods are called from the serialized interval loop.
package admission

import (
	"fmt"
	"time"
)

// Verdict is the outcome of an admission check.
type Verdict uint8

const (
	// VerdictAdmit lets the move proceed, possibly for fewer bytes than
	// asked (Decision.AllowedBytes).
	VerdictAdmit Verdict = iota
	// VerdictDefer refuses the move for now; it stays eligible and may
	// be retried next interval once the pair's budget refills.
	VerdictDefer
	// VerdictReject refuses the move on its merits: the ROI does not
	// justify the copy, or the victim is too hot to evict.
	VerdictReject
)

// String returns the lower-case verdict name used as span outcome.
func (v Verdict) String() string {
	switch v {
	case VerdictAdmit:
		return "admit"
	case VerdictDefer:
		return "defer"
	default:
		return "reject"
	}
}

// Class is the traffic class of a planned move. Admission prices the
// three classes differently: normal migrations pass every gate,
// health-drain evacuation skips the ROI gates and may spend into the
// reserved bandwidth slice, and emergency demotion (the OOM path) is
// never refused — an engine that can refuse the move that prevents an
// OOM has its priorities inverted.
type Class uint8

const (
	// ClassNormal is policy-driven migration traffic.
	ClassNormal Class = iota
	// ClassDrain is health-drain evacuation off a dying tier.
	ClassDrain
	// ClassEmergency is emergency demotion making room under OOM.
	ClassEmergency
	// NumClasses counts the traffic classes.
	NumClasses = 3
)

// String returns the lower-case class name used in provenance.
func (c Class) String() string {
	switch c {
	case ClassDrain:
		return "drain"
	case ClassEmergency:
		return "emergency"
	default:
		return "normal"
	}
}

// Direction classifies a move relative to the tier order.
type Direction uint8

const (
	// DirPromote moves pages toward a faster tier.
	DirPromote Direction = iota
	// DirDemote moves pages toward a slower tier.
	DirDemote
)

// String returns the lower-case direction name.
func (d Direction) String() string {
	if d == DirDemote {
		return "demote"
	}
	return "promote"
}

// Admission rule names, recorded in decision provenance so
// `spanreport -explain` can say why a move was refused.
const (
	// RuleAdmitted marks an admitted move.
	RuleAdmitted = "roi-admitted"
	// RuleLowROI marks a promotion whose ROI falls below MinROI.
	RuleLowROI = "roi-below-min"
	// RuleVictimHot marks a demotion whose victim is still hot enough
	// that evicting it would likely ping-pong straight back.
	RuleVictimHot = "victim-too-hot"
	// RuleBudget marks a move deferred because the pair's token bucket
	// cannot cover even one page.
	RuleBudget = "budget-exhausted"
	// RuleShed marks a marginal promotion deferred under budget
	// pressure (bucket below the low-water mark).
	RuleShed = "low-roi-shed"
	// RuleWaste marks a move deferred because the pair's recent waste
	// ratio (aborted share of attempted bytes) crossed WasteCutoff.
	RuleWaste = "waste-shed"
	// RuleShadowFlip marks a demotion admitted on its flip cost: the
	// page's still-valid shadow frame makes the demotion a zero-copy
	// metadata flip, so the copy-cost-denominated gates (victim ROI,
	// token budget, waste shedding) do not apply.
	RuleShadowFlip = "shadow-flip-admitted"
)

// Config tunes the admission layer. The zero value selects defaults
// via WithDefaults; negative values disable the respective gate.
type Config struct {
	// BudgetFrac is the fraction of a tier pair's rated link bandwidth
	// granted to migration, the token refill rate. Default 0.25.
	BudgetFrac float64
	// BurstIntervals sizes each bucket's burst capacity in multiples of
	// one interval's refill; the burst also sets the waste ledger's
	// decay window. Default 6.
	BurstIntervals float64
	// MinROI is the admission threshold for promotions: estimated
	// stall-time saved divided by copy cost. Default 0.1 — lenient,
	// because profiler hotness scales differ per policy (MTM reports
	// per-page access averages, HeMem raw PEBS sample counts). ROI ≥ 1
	// means the move pays for itself within HorizonIntervals.
	// Negative disables the ROI gate.
	MinROI float64
	// MaxVictimROI rejects demotion victims whose own ROI (the benefit
	// of *keeping* them fast) still exceeds this bound. Default 64.
	// Negative disables the victim gate.
	MaxVictimROI float64
	// HorizonIntervals is the retention horizon the ROI estimator
	// assumes: how many future intervals a moved page keeps its current
	// access rate. Default 32.
	HorizonIntervals float64
	// PressureFactor multiplies MinROI while a bucket sits below its
	// low-water mark, shedding marginal promotions. Default 4.
	PressureFactor float64
	// LowWaterFrac is the bucket fill fraction below which shedding
	// kicks in. Default 0.25.
	LowWaterFrac float64
	// WastePenalty is the extra budget debit charged per wasted byte:
	// an aborted move costs (1 + WastePenalty) times its bytes, so a
	// flaky pair throttles itself. Default 4. Negative disables the
	// penalty (aborts still debit their own bytes).
	WastePenalty float64
	// WasteCutoff is the pair waste ratio — aborted bytes over attempted
	// bytes, decayed with a sliding window of one burst — above which
	// further moves through the pair defer ("waste-shed"). The decay
	// doubles as a half-open probe: once the decayed waste falls below
	// one page, a single move is let through to test whether the pair
	// has recovered. Default 0.5. Negative disables waste shedding.
	WasteCutoff float64
	// CoolDown is the per-page hysteresis window after a committed
	// move, during which the page may not move in the opposite
	// direction. Zero lets the engine default it to two intervals.
	// Negative disables thrash suppression.
	CoolDown time.Duration
	// Learn enables online per-pair MinROI floors: each pair's
	// promotion floor is adjusted at interval end from realized
	// hindsight verdicts (NoteOutcome) instead of staying at the static
	// MinROI. The static MinROI seeds every floor.
	Learn bool
	// LearnStep bounds one interval's floor adjustment: the floor is
	// multiplied by (1 ± LearnStep). Default 0.25.
	LearnStep float64
	// EvidenceFloor is the minimum number of resolved verdicts a pair
	// must accumulate before its floor adapts; below it the floor
	// freezes (evidence carries over, it is not discarded). Default 4.
	EvidenceFloor int
	// TargetWaste is the tolerated promoted-wasted share of resolved
	// verdicts: above it the floor rises, at or below it the floor
	// falls back toward admitting more. Default 0.25.
	TargetWaste float64
	// LearnMin / LearnMax clamp the learned floor. Defaults MinROI/4
	// and MinROI*64.
	LearnMin float64
	LearnMax float64
	// Lanes configures traffic-class priority lanes (see LaneConfig).
	// The zero value disables lanes: drain and emergency traffic then
	// bypass admission entirely, as before.
	Lanes LaneConfig
}

// WithDefaults fills zero fields with the documented defaults.
// Negative sentinels are clamped to "disabled" (zero thresholds).
func (c Config) WithDefaults() Config {
	if c.BudgetFrac == 0 {
		c.BudgetFrac = 0.25
	}
	if c.BurstIntervals == 0 {
		c.BurstIntervals = 6
	}
	if c.MinROI == 0 {
		c.MinROI = 0.1
	} else if c.MinROI < 0 {
		c.MinROI = 0
	}
	if c.MaxVictimROI == 0 {
		c.MaxVictimROI = 64
	}
	if c.HorizonIntervals == 0 {
		c.HorizonIntervals = 32
	}
	if c.PressureFactor == 0 {
		c.PressureFactor = 4
	}
	if c.LowWaterFrac == 0 {
		c.LowWaterFrac = 0.25
	}
	if c.WastePenalty == 0 {
		c.WastePenalty = 4
	} else if c.WastePenalty < 0 {
		c.WastePenalty = 0
	}
	if c.WasteCutoff == 0 {
		c.WasteCutoff = 0.5
	} else if c.WasteCutoff < 0 {
		c.WasteCutoff = 2 // a ratio can never exceed 1: disabled
	}
	if c.LearnStep == 0 {
		c.LearnStep = 0.25
	}
	if c.EvidenceFloor == 0 {
		c.EvidenceFloor = 4
	}
	if c.TargetWaste == 0 {
		c.TargetWaste = 0.25
	}
	if c.LearnMin == 0 {
		c.LearnMin = c.MinROI / 4
	}
	if c.LearnMax == 0 {
		c.LearnMax = c.MinROI * 64
	}
	c.Lanes = c.Lanes.WithDefaults()
	return c
}

// Validate bounds-checks the learner and lane knobs on a raw
// (pre-defaults) config. Zero values are valid — they select defaults.
func (c Config) Validate() error {
	if c.LearnStep < 0 || c.LearnStep >= 1 {
		return fmt.Errorf("admission: learn-step %v outside [0, 1)", c.LearnStep)
	}
	if c.EvidenceFloor < 0 {
		return fmt.Errorf("admission: evidence-floor %d negative", c.EvidenceFloor)
	}
	if c.TargetWaste < 0 || c.TargetWaste >= 1 {
		return fmt.Errorf("admission: target-waste %v outside [0, 1)", c.TargetWaste)
	}
	if c.LearnMin < 0 || c.LearnMax < 0 {
		return fmt.Errorf("admission: learn floor clamps must be non-negative")
	}
	if c.LearnMin > 0 && c.LearnMax > 0 && c.LearnMin > c.LearnMax {
		return fmt.Errorf("admission: learn-min %v exceeds learn-max %v", c.LearnMin, c.LearnMax)
	}
	return c.Lanes.Validate()
}

// ROI estimates the return on investment of moving one page: the stall
// nanoseconds the move is expected to save over the retention horizon,
// divided by the nanoseconds the copy costs. whi is the profiler's
// weighted hotness (accesses per page per interval on whatever scale
// the active policy uses), reaccess the evidence-based likelihood the
// page stays hot (see the engine's reaccess grading), horizon the
// assumed retention in intervals, gapNs the per-access latency gap
// between source and destination, and copyNsPerPage the copy cost.
func ROI(whi, reaccess, horizon, gapNs, copyNsPerPage float64) float64 {
	if copyNsPerPage <= 0 || whi <= 0 {
		return 0
	}
	return whi * reaccess * horizon * gapNs / copyNsPerPage
}

// Decision reports one admission check, with enough evidence to
// reconstruct why: the verdict, the rule that fired, the estimated ROI
// and the threshold it was held against, the byte allowance granted,
// and the pair's bucket level after refill.
type Decision struct {
	Verdict   Verdict
	Rule      string
	ROI       float64
	Threshold float64
	// AllowedBytes is the admitted byte allowance (page-aligned), zero
	// unless Verdict is VerdictAdmit.
	AllowedBytes int64
	// BudgetBytes is the pair's token balance after refill, before any
	// debit; negative means the pair is in debt from waste penalties.
	BudgetBytes int64
	// Floor is the effective promotion floor the decision was priced
	// against: the static MinROI, or the pair's learned floor when
	// online learning is active. Zero for demotions.
	Floor float64
}

// bucket is one tier pair's token-bucket state plus its waste ledger.
type bucket struct {
	rate   int64 // refill, bytes per virtual second
	burst  int64 // capacity, bytes
	tokens int64 // current balance; may go negative down to -burst
	lastNs int64 // virtual time of the last refill
	moved  int64 // committed bytes through this pair (window-decayed)
	wasted int64 // aborted bytes through this pair (window-decayed)
	winNs  int64 // waste-ledger decay window (one burst's worth of refill)
	winAt  int64 // virtual time the current decay window started
	// Demand scaling (lanes mode): intBytes accumulates every byte
	// charged through the pair this interval — committed, wasted, and
	// background (shadow sync, profiling); ema smooths it. statRate and
	// statBurst keep the rated values SetRate installed, the ceiling
	// demand scaling may never exceed.
	intBytes  int64
	ema       int64
	statRate  int64
	statBurst int64
}

// refill credits tokens for the virtual time elapsed since the last
// refill, and halves the waste ledger once per elapsed decay window so
// old aborts stop indicting a pair that has recovered. Sub-byte
// remainders truncate — deterministically, since the computation is a
// pure function of (rate, elapsed).
func (b *bucket) refill(nowNs int64) {
	if nowNs <= b.lastNs {
		return
	}
	if b.rate > 0 {
		b.tokens += int64(float64(b.rate) * float64(nowNs-b.lastNs) / 1e9)
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
	}
	b.lastNs = nowNs
	if b.winNs > 0 && nowNs-b.winAt >= b.winNs {
		k := (nowNs - b.winAt) / b.winNs
		b.winAt += k * b.winNs
		if k > 62 {
			k = 62
		}
		b.moved >>= uint(k)
		b.wasted >>= uint(k)
	}
}

// debit charges n bytes, clamping debt at one burst so a storm of
// waste penalties cannot dig a hole the pair never climbs out of.
func (b *bucket) debit(n int64) {
	b.tokens -= n
	if b.tokens < -b.burst {
		b.tokens = -b.burst
	}
}

// cooldown is one page's hysteresis state: until when, and in which
// direction the page last moved (same-direction moves stay allowed).
type cooldown struct {
	untilNs int64
	dir     Direction
}

// Controller holds the admission state for one engine: an N×N matrix
// of pair buckets and the per-page cool-down table. All methods must
// be called from the serialized interval loop; none draws randomness
// or reads the wall clock, and the cool-down map is never iterated, so
// results are bit-identical at any worker count.
type Controller struct {
	cfg   Config
	pairs []bucket // n*n, indexed src*n + dst
	n     int
	cool  map[uint64]cooldown
	// coolQ records stamps in commit order so Prune can expire old map
	// entries without iterating the map (map iteration order would leak
	// into behaviour). coolHead is the consumed prefix.
	coolQ    []coolEntry
	coolHead int
	// learn holds per-pair learned floors and their evidence tallies
	// (src*n + dst, like pairs); nil unless Config.Learn.
	learn []learner
	// cls tracks per-traffic-class admission activity for the lane
	// watchdog and the per-class Result breakdowns.
	cls [NumClasses]ClassStat
	// intervalNs is the engine's interval length (SetInterval), needed
	// to convert observed per-interval demand into a refill rate.
	intervalNs int64
}

// learner is one pair's online MinROI state: the current floor plus the
// decaying hindsight evidence it adapts on. good counts promoted pages
// later reaccessed, bad counts promoted-wasted ones.
type learner struct {
	floor     float64
	good, bad float64
}

// ClassStat tracks one traffic class's admission activity: per-interval
// tallies for the starvation watchdog, and lifetime totals exported in
// Result.
type ClassStat struct {
	reqs, admits  int64 // this interval (watchdog inputs)
	waitIntervals int   // consecutive fully-refused intervals

	Requests    int64 // lifetime admission checks
	Admits      int64
	Defers      int64
	Bytes       int64 // lifetime admitted bytes
	Starvations int64 // watchdog firings
}

// Starvation reports one starvation-watchdog firing: a critical traffic
// class went Waited consecutive intervals with requests but no admits.
type Starvation struct {
	Class  Class
	Waited int
}

// coolEntry is one queued cool-down stamp. A page re-stamped later has a
// newer untilNs in the map than in this record; Prune only deletes the
// map entry when the two agree, so re-stamped pages survive until their
// newest record expires.
type coolEntry struct {
	key     uint64
	untilNs int64
}

// NewController builds a controller for n nodes. Pair budgets start
// unbounded (rate 0, no enforcement) until SetRate is called.
func NewController(cfg Config, n int) *Controller {
	c := &Controller{
		cfg:   cfg.WithDefaults(),
		pairs: make([]bucket, n*n),
		n:     n,
		cool:  make(map[uint64]cooldown),
	}
	if c.cfg.Learn {
		c.learn = make([]learner, n*n)
		for i := range c.learn {
			c.learn[i].floor = c.cfg.MinROI
		}
	}
	return c
}

// Config returns the controller's effective (defaulted) configuration.
func (c *Controller) Config() Config { return c.cfg }

func (c *Controller) pair(src, dst int) *bucket {
	if src < 0 || dst < 0 || src >= c.n || dst >= c.n || src == dst {
		return nil
	}
	return &c.pairs[src*c.n+dst]
}

// SetRate fixes a pair's refill rate (bytes per virtual second) and
// burst capacity. The bucket starts full so the first interval is not
// artificially starved.
func (c *Controller) SetRate(src, dst int, bytesPerSec, burst int64) {
	b := c.pair(src, dst)
	if b == nil {
		return
	}
	b.rate = bytesPerSec
	b.burst = burst
	b.tokens = burst
	b.statRate = bytesPerSec
	b.statBurst = burst
	if bytesPerSec > 0 {
		b.winNs = burst * int64(time.Second) / bytesPerSec
	}
}

// SetInterval tells the controller the engine's interval length in
// virtual nanoseconds; demand-scaled refill needs it to convert
// observed per-interval volume into a rate.
func (c *Controller) SetInterval(ns int64) { c.intervalNs = ns }

// Tokens reports a pair's balance after refilling to nowNs.
func (c *Controller) Tokens(src, dst int, nowNs int64) int64 {
	b := c.pair(src, dst)
	if b == nil {
		return 0
	}
	b.refill(nowNs)
	return b.tokens
}

// WasteRatio reports the pair's aborted share of attempted bytes.
func (c *Controller) WasteRatio(src, dst int) float64 {
	b := c.pair(src, dst)
	if b == nil || b.moved+b.wasted == 0 {
		return 0
	}
	return float64(b.wasted) / float64(b.moved+b.wasted)
}

// Admit prices one planned move of up to bytes from src to dst and
// returns the verdict with full evidence. pageSize aligns the granted
// allowance; roi is the caller's estimate (see ROI). Equivalent to
// AdmitClass with ClassNormal.
func (c *Controller) Admit(src, dst int, dir Direction, roi float64, bytes, pageSize, nowNs int64) Decision {
	return c.AdmitClass(ClassNormal, src, dst, dir, roi, bytes, pageSize, nowNs)
}

// AdmitClass prices one planned move in the given traffic class.
// Normal traffic passes every gate against the pair's effective floor
// (learned when Learn is on). Drain traffic skips the ROI gates and
// waste shedding — evacuating a dying tier is not optional — and may
// draw on the reserved bandwidth slice on top of the pair's tokens.
// Emergency traffic is admitted unconditionally: refusing the demotion
// that prevents an OOM is never the right trade.
func (c *Controller) AdmitClass(cl Class, src, dst int, dir Direction, roi float64, bytes, pageSize, nowNs int64) Decision {
	d := Decision{ROI: roi}
	s := &c.cls[cl]
	s.reqs++
	s.Requests++
	b := c.pair(src, dst)
	if b == nil || bytes <= 0 || cl == ClassEmergency {
		if b != nil {
			b.refill(nowNs)
			d.BudgetBytes = b.tokens
		}
		d.Verdict, d.Rule, d.AllowedBytes = VerdictAdmit, RuleAdmitted, bytes
		s.admits++
		s.Admits++
		s.Bytes += bytes
		return d
	}
	b.refill(nowNs)
	d.BudgetBytes = b.tokens
	if cl == ClassNormal {
		if dir == DirDemote {
			if c.cfg.MaxVictimROI > 0 && roi > c.cfg.MaxVictimROI {
				d.Verdict, d.Rule, d.Threshold = VerdictReject, RuleVictimHot, c.cfg.MaxVictimROI
				return d
			}
		} else {
			floor := c.cfg.MinROI
			if c.learn != nil {
				floor = c.learn[src*c.n+dst].floor
			}
			d.Floor = floor
			if roi < floor {
				d.Verdict, d.Rule, d.Threshold = VerdictReject, RuleLowROI, floor
				return d
			}
			// Budget pressure: below the low-water mark only clearly
			// profitable promotions spend what's left; marginal ones wait.
			if low := int64(c.cfg.LowWaterFrac * float64(b.burst)); b.tokens < low {
				if need := floor * c.cfg.PressureFactor; roi < need {
					d.Verdict, d.Rule, d.Threshold = VerdictDefer, RuleShed, need
					s.Defers++
					return d
				}
			}
		}
		// Waste shedding: a pair whose recent attempts mostly aborted stops
		// accepting moves until the ledger decays. The wasted ≥ pageSize
		// guard is the half-open probe — once decay brings the ledger under
		// one page, a single move is admitted to test the pair.
		if w := b.moved + b.wasted; w > 0 && (pageSize <= 0 || b.wasted >= pageSize) {
			if ratio := float64(b.wasted) / float64(w); ratio >= c.cfg.WasteCutoff {
				d.Verdict, d.Rule, d.Threshold = VerdictDefer, RuleWaste, c.cfg.WasteCutoff
				s.Defers++
				return d
			}
		}
	}
	avail := b.tokens
	if cl == ClassDrain && c.cfg.Lanes.Enabled {
		// The reserve: a slice of the rated burst only critical lanes may
		// spend, sized so drain always makes progress even when normal
		// traffic has drained the bucket (or driven it into debt).
		avail += int64(c.cfg.Lanes.ReserveFrac * float64(b.statBurst))
	}
	allowed := bytes
	if b.rate > 0 && avail < allowed {
		allowed = avail
	}
	if pageSize > 0 {
		allowed -= allowed % pageSize
	}
	if allowed <= 0 || (pageSize > 0 && allowed < pageSize) {
		d.Verdict, d.Rule = VerdictDefer, RuleBudget
		s.Defers++
		return d
	}
	d.Verdict, d.Rule, d.AllowedBytes = VerdictAdmit, RuleAdmitted, allowed
	s.admits++
	s.Admits++
	s.Bytes += allowed
	return d
}

// Commit debits a committed move's bytes from its pair's bucket.
func (c *Controller) Commit(src, dst int, bytes, nowNs int64) {
	b := c.pair(src, dst)
	if b == nil {
		return
	}
	b.refill(nowNs)
	b.debit(bytes)
	b.moved += bytes
	b.intBytes += bytes
}

// Waste debits an aborted move's bytes at the waste-penalty multiple:
// the feedback loop that makes a failing pair shed its own load.
func (c *Controller) Waste(src, dst int, bytes, nowNs int64) {
	b := c.pair(src, dst)
	if b == nil {
		return
	}
	b.refill(nowNs)
	b.debit(bytes + int64(c.cfg.WastePenalty*float64(bytes)))
	b.wasted += bytes
	b.intBytes += bytes
}

// Charge debits background traffic — shadow sync, profiling — against
// the pair's bucket without touching the waste ledger (background bytes
// are neither committed migrations nor aborts, and must not dilute the
// waste ratio). This is what makes the budget bind: every byte the pair
// moves for any reason competes for the same tokens.
func (c *Controller) Charge(src, dst int, bytes, nowNs int64) {
	b := c.pair(src, dst)
	if b == nil || bytes <= 0 {
		return
	}
	b.refill(nowNs)
	b.debit(bytes)
	b.intBytes += bytes
}

// ResetWasteWindow clears a pair's waste ledger and restarts its decay
// window at nowNs — the breaker half-open hook: the open period froze
// the ledger (no refill calls, no decay), so the pre-trip aborts would
// otherwise re-shed the recovering pair the moment it is probed.
func (c *Controller) ResetWasteWindow(src, dst int, nowNs int64) {
	b := c.pair(src, dst)
	if b == nil {
		return
	}
	b.moved, b.wasted = 0, 0
	b.winAt = nowNs
}

// ZeroBudget empties a pair's bucket and restarts its refill clock at
// nowNs — the circuit-breaker hook: a pair whose breaker just tripped
// must re-earn its budget from nothing.
func (c *Controller) ZeroBudget(src, dst int, nowNs int64) {
	b := c.pair(src, dst)
	if b == nil {
		return
	}
	if b.tokens > 0 {
		b.tokens = 0
	}
	b.lastNs = nowNs
}

// PageAllowed reports whether a page (keyed by its address) may move
// in dir at nowNs. Expired entries are dropped; moves continuing in
// the page's last direction are always allowed — hysteresis only
// blocks reversals, the ping-pong signature.
func (c *Controller) PageAllowed(key uint64, dir Direction, nowNs int64) bool {
	e, ok := c.cool[key]
	if !ok {
		return true
	}
	if nowNs >= e.untilNs {
		delete(c.cool, key)
		return true
	}
	return e.dir == dir
}

// NotePageMove stamps a committed move's cool-down on the page.
func (c *Controller) NotePageMove(key uint64, dir Direction, nowNs int64) {
	if c.cfg.CoolDown <= 0 {
		return
	}
	until := nowNs + int64(c.cfg.CoolDown)
	c.cool[key] = cooldown{untilNs: until, dir: dir}
	c.coolQ = append(c.coolQ, coolEntry{key: key, untilNs: until})
}

// Prune drops cool-down entries expired at nowNs and returns how many it
// removed. Without it the map only sheds entries for pages that happen
// to be looked up again (PageAllowed's lazy delete), so one-shot movers
// accumulate for the whole run. Stamps are queued in commit order and
// cool-downs are a fixed length, so the queue is sorted by expiry: one
// pass over the expired prefix suffices. Behaviour-neutral by
// construction — it removes exactly the entries PageAllowed would treat
// as expired anyway.
func (c *Controller) Prune(nowNs int64) int {
	removed := 0
	for c.coolHead < len(c.coolQ) && c.coolQ[c.coolHead].untilNs <= nowNs {
		rec := c.coolQ[c.coolHead]
		c.coolHead++
		// Only delete when the map still holds this exact stamp; a
		// re-stamped page has a newer record later in the queue.
		if e, ok := c.cool[rec.key]; ok && e.untilNs == rec.untilNs {
			delete(c.cool, rec.key)
			removed++
		}
	}
	if c.coolHead == len(c.coolQ) {
		c.coolQ = c.coolQ[:0]
		c.coolHead = 0
	} else if c.coolHead >= 1024 && c.coolHead*2 >= len(c.coolQ) {
		c.coolQ = append(c.coolQ[:0], c.coolQ[c.coolHead:]...)
		c.coolHead = 0
	}
	return removed
}

// CoolSize reports the live cool-down map size (tests and telemetry).
func (c *Controller) CoolSize() int { return len(c.cool) }

// NoteOutcome feeds one resolved hindsight verdict for a promotion
// through the pair into the online learner: reaccessed means the
// promoted page was touched again before the horizon (the move paid),
// otherwise it was promoted-wasted. No-op unless Learn is on.
func (c *Controller) NoteOutcome(src, dst int, reaccessed bool) {
	if c.learn == nil || src < 0 || dst < 0 || src >= c.n || dst >= c.n || src == dst {
		return
	}
	l := &c.learn[src*c.n+dst]
	if reaccessed {
		l.good++
	} else {
		l.bad++
	}
}

// MinROIFor reports the pair's effective promotion floor: the learned
// floor when Learn is on, the static MinROI otherwise.
func (c *Controller) MinROIFor(src, dst int) float64 {
	if c.learn == nil {
		return c.cfg.MinROI
	}
	if src < 0 || dst < 0 || src >= c.n || dst >= c.n || src == dst {
		return c.cfg.MinROI
	}
	return c.learn[src*c.n+dst].floor
}

// ClassStats returns one traffic class's lifetime admission counters.
func (c *Controller) ClassStats(cl Class) ClassStat {
	if int(cl) >= NumClasses {
		return ClassStat{}
	}
	return c.cls[cl]
}

// EndInterval runs the controller's once-per-interval work on the
// serialized loop and returns any starvation-watchdog firings:
//
//   - Demand-scaled refill (lanes mode): each pair's refill rate for
//     the next interval tracks an EMA of its observed traffic, clamped
//     to [statRate/64, statRate]. At simulation scale the rated link
//     bandwidth dwarfs actual migration volume, so a statically-rated
//     bucket never empties and the budget never binds; scaling the
//     refill to DemandMult× observed volume makes headroom scarce
//     enough that the low-water, budget, and reserve mechanisms engage.
//   - Learner adaptation: each pair with at least EvidenceFloor
//     resolved verdicts moves its floor one bounded multiplicative step
//     — up when the promoted-wasted share exceeds TargetWaste, down
//     otherwise — then halves its evidence so old verdicts fade.
//     Below the evidence floor the tallies accumulate untouched: the
//     floor freezes rather than wandering on noise.
//   - Starvation watchdog (lanes mode): a critical class (drain,
//     emergency) that saw requests but zero admits for more than
//     WatchdogIntervals consecutive intervals yields a Starvation
//     record; the caller turns it into a typed event and metric.
//
// Pure function of controller state and nowNs — fixed iteration order,
// no maps, no clock — so it preserves bit-identical parallelism.
func (c *Controller) EndInterval(nowNs int64) []Starvation {
	if c.cfg.Lanes.Enabled && c.intervalNs > 0 {
		for i := range c.pairs {
			b := &c.pairs[i]
			if b.statRate <= 0 {
				continue
			}
			b.refill(nowNs) // settle the elapsed interval at the old rate
			if b.ema == 0 && b.intBytes > 0 {
				b.ema = b.intBytes
			} else {
				b.ema += (b.intBytes - b.ema) / 8
			}
			b.intBytes = 0
			rate := int64(c.cfg.Lanes.DemandMult * float64(b.ema) * 1e9 / float64(c.intervalNs))
			if min := b.statRate / 64; rate < min {
				rate = min
			}
			if rate < 1 {
				rate = 1
			}
			if rate > b.statRate {
				rate = b.statRate
			}
			b.rate = rate
			b.burst = int64(float64(rate) * c.cfg.BurstIntervals * float64(c.intervalNs) / 1e9)
			if b.burst < 1 {
				b.burst = 1
			}
			if b.tokens > b.burst {
				b.tokens = b.burst
			}
		}
	}
	if c.learn != nil {
		for i := range c.learn {
			l := &c.learn[i]
			n := l.good + l.bad
			if n < float64(c.cfg.EvidenceFloor) {
				continue // frozen: not enough evidence to adapt on
			}
			if l.bad/n > c.cfg.TargetWaste {
				l.floor *= 1 + c.cfg.LearnStep
			} else {
				l.floor *= 1 - c.cfg.LearnStep
			}
			if l.floor < c.cfg.LearnMin {
				l.floor = c.cfg.LearnMin
			}
			if l.floor > c.cfg.LearnMax {
				l.floor = c.cfg.LearnMax
			}
			l.good /= 2
			l.bad /= 2
		}
	}
	var fired []Starvation
	if c.cfg.Lanes.Enabled {
		for cl := ClassDrain; cl <= ClassEmergency; cl++ {
			s := &c.cls[cl]
			switch {
			case s.reqs > 0 && s.admits == 0:
				s.waitIntervals++
				if s.waitIntervals > c.cfg.Lanes.WatchdogIntervals {
					fired = append(fired, Starvation{Class: cl, Waited: s.waitIntervals})
					s.Starvations++
					s.waitIntervals = 0
				}
			case s.admits > 0:
				s.waitIntervals = 0
			}
		}
	}
	for i := range c.cls {
		c.cls[i].reqs, c.cls[i].admits = 0, 0
	}
	return fired
}
