package admission

import (
	"fmt"
	"strconv"
	"strings"
)

// LaneConfig tunes traffic-class priority lanes. Lanes give health
// drain and emergency demotion strict priority over normal migration
// traffic: critical moves are priced first each decision point, a
// reserved slice of every pair's rated burst is spendable only by the
// drain lane, and a watchdog raises a typed event if a critical class
// is starved for more than WatchdogIntervals consecutive intervals.
// Enabling lanes also makes the budgets bind: background traffic
// (shadow sync, profiling) is charged against the same buckets, and
// each pair's refill rate is scaled to its observed traffic volume.
type LaneConfig struct {
	// Enabled turns the lane machinery on.
	Enabled bool
	// ReserveFrac is the fraction of each pair's rated burst reserved
	// for the drain lane on top of the pair's live tokens. Default 0.25.
	ReserveFrac float64
	// WatchdogIntervals is how many consecutive fully-refused intervals
	// a critical class tolerates before the starvation watchdog fires.
	// Default 4.
	WatchdogIntervals int
	// DemandMult scales the demand-tracking refill: next interval's
	// refill rate is DemandMult times the pair's smoothed observed
	// volume (clamped to the rated budget). Default 2.
	DemandMult float64
}

// WithDefaults fills zero fields with the documented defaults. The
// disabled zero value passes through untouched.
func (l LaneConfig) WithDefaults() LaneConfig {
	if !l.Enabled {
		return l
	}
	if l.ReserveFrac == 0 {
		l.ReserveFrac = 0.25
	}
	if l.WatchdogIntervals == 0 {
		l.WatchdogIntervals = 4
	}
	if l.DemandMult == 0 {
		l.DemandMult = 2
	}
	return l
}

// Validate bounds-checks a lane config (raw or defaulted).
func (l LaneConfig) Validate() error {
	if l.ReserveFrac < 0 || l.ReserveFrac >= 1 {
		return fmt.Errorf("admission: reserve-frac %v outside [0, 1)", l.ReserveFrac)
	}
	if l.WatchdogIntervals < 0 {
		return fmt.Errorf("admission: watchdog-intervals %d negative", l.WatchdogIntervals)
	}
	if l.DemandMult < 0 {
		return fmt.Errorf("admission: demand-mult %v negative", l.DemandMult)
	}
	return nil
}

// lanePresets are the named lane configurations ParseLanes accepts as a
// base. "default" is the documented defaults; "strict" reserves half of
// every burst for the drain lane, fires the watchdog after two starved
// intervals, and pins the refill to exactly the observed demand.
var lanePresets = map[string]LaneConfig{
	"default": {Enabled: true},
	"strict":  {Enabled: true, ReserveFrac: 0.5, WatchdogIntervals: 2, DemandMult: 1},
}

// LanePresets lists the named lane presets, sorted.
func LanePresets() []string { return []string{"default", "strict"} }

// ParseLanes resolves a lane spec into a LaneConfig. The grammar
// mirrors the fault-scenario parser:
//
//	spec      = "" | "none" | name | name "," overrides | overrides
//	overrides = key "=" value { "," key "=" value }
//
// where name is a preset (see LanePresets) used as the base and each
// kebab-case key overrides one field, e.g.
//
//	strict,watchdog-intervals=3
//	reserve-frac=0.4,demand-mult=1.5
//
// Bare overrides start from the "default" preset. "" and "none" parse
// to the disabled zero config. Unknown names, unknown keys, malformed
// values and out-of-range results are errors.
func ParseLanes(spec string) (LaneConfig, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return LaneConfig{}, nil
	}
	parts := strings.Split(spec, ",")
	rest := parts
	cfg := lanePresets["default"]
	if !strings.Contains(parts[0], "=") {
		base, ok := lanePresets[strings.TrimSpace(parts[0])]
		if !ok {
			return LaneConfig{}, fmt.Errorf("admission: unknown lane preset %q (have %v)", parts[0], LanePresets())
		}
		cfg = base
		rest = parts[1:]
	}
	cfg = cfg.WithDefaults()
	for _, kv := range rest {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return LaneConfig{}, fmt.Errorf("admission: malformed lane override %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if err := setLaneField(&cfg, key, val); err != nil {
			return LaneConfig{}, err
		}
	}
	if err := cfg.Validate(); err != nil {
		return LaneConfig{}, err
	}
	if cfg.WatchdogIntervals < 1 {
		return LaneConfig{}, fmt.Errorf("admission: watchdog-intervals %d must be >= 1", cfg.WatchdogIntervals)
	}
	if cfg.DemandMult <= 0 {
		return LaneConfig{}, fmt.Errorf("admission: demand-mult %v must be positive", cfg.DemandMult)
	}
	return cfg, nil
}

// ValidLanes reports whether spec parses.
func ValidLanes(spec string) bool {
	_, err := ParseLanes(spec)
	return err == nil
}

// setLaneField applies one kebab-case key=value override to cfg.
func setLaneField(cfg *LaneConfig, key, val string) error {
	switch key {
	case "reserve-frac":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("admission: bad value %q for %s: %v", val, key, err)
		}
		cfg.ReserveFrac = v
		return nil
	case "watchdog-intervals":
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("admission: bad value %q for %s: %v", val, key, err)
		}
		cfg.WatchdogIntervals = v
		return nil
	case "demand-mult":
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("admission: bad value %q for %s: %v", val, key, err)
		}
		cfg.DemandMult = v
		return nil
	}
	return fmt.Errorf("admission: unknown lane override key %q", key)
}
