package admission

import (
	"testing"
)

// laneCtl builds a two-node lanes controller with a known rate/burst on
// the 0→1 pair and a 1s interval.
func laneCtl(t *testing.T, lc LaneConfig) *Controller {
	t.Helper()
	lc.Enabled = true
	c := NewController(Config{Lanes: lc}, 2)
	c.SetInterval(1e9)
	c.SetRate(0, 1, 1000, 4000)
	return c
}

// TestDrainLaneSpendsReserve asserts the drain lane may draw on the
// reserved burst slice after normal traffic has emptied the bucket.
func TestDrainLaneSpendsReserve(t *testing.T) {
	c := laneCtl(t, LaneConfig{ReserveFrac: 0.25})
	// Exhaust the pair's live tokens.
	c.Commit(0, 1, 4000, 0)
	// Normal traffic sees an empty bucket and defers.
	if d := c.AdmitClass(ClassNormal, 0, 1, DirDemote, 1, 512, 512, 0); d.Verdict != VerdictDefer || d.Rule != RuleBudget {
		t.Fatalf("normal on empty bucket = %v/%q, want defer/%s", d.Verdict, d.Rule, RuleBudget)
	}
	// Drain traffic still fits inside the reserve (0.25 × 4000 = 1000).
	if d := c.AdmitClass(ClassDrain, 0, 1, DirDemote, 0, 512, 512, 0); d.Verdict != VerdictAdmit {
		t.Fatalf("drain inside reserve = %v/%q, want admit", d.Verdict, d.Rule)
	}
	// Emergency traffic is never refused, even deep in the red.
	c.Waste(0, 1, 1<<20, 0)
	if d := c.AdmitClass(ClassEmergency, 0, 1, DirDemote, 0, 512, 512, 0); d.Verdict != VerdictAdmit {
		t.Fatalf("emergency in debt = %v/%q, want admit", d.Verdict, d.Rule)
	}
}

// TestStarvationWatchdog asserts a critical class that keeps requesting
// and never gets admitted fires the watchdog after WatchdogIntervals
// consecutive starved intervals — and that an admit resets the count.
func TestStarvationWatchdog(t *testing.T) {
	c := laneCtl(t, LaneConfig{WatchdogIntervals: 2, ReserveFrac: 0.25})
	// Drive the bucket to maximum debt so even the reserve cannot cover
	// one 512-byte drain page.
	c.Waste(0, 1, 1<<20, 0)

	starve := func(interval int) []Starvation {
		if d := c.AdmitClass(ClassDrain, 0, 1, DirDemote, 0, 512, 512, 0); d.Verdict == VerdictAdmit {
			t.Fatalf("interval %d: drain admitted with bucket in max debt", interval)
		}
		return c.EndInterval(0)
	}

	// Intervals 1 and 2: starved but within tolerance.
	for i := 1; i <= 2; i++ {
		if fired := starve(i); len(fired) != 0 {
			t.Fatalf("watchdog fired after %d starved intervals, tolerance is 2", i)
		}
	}
	// Interval 3 crosses the tolerance.
	fired := starve(3)
	if len(fired) != 1 || fired[0].Class != ClassDrain || fired[0].Waited != 3 {
		t.Fatalf("watchdog = %+v, want one ClassDrain firing with Waited=3", fired)
	}
	if got := c.ClassStats(ClassDrain).Starvations; got != 1 {
		t.Fatalf("ClassStats(drain).Starvations = %d, want 1", got)
	}
	// The counter resets after a firing: the next firing needs another
	// full tolerance run.
	for i := 4; i <= 5; i++ {
		if fired := starve(i); len(fired) != 0 {
			t.Fatalf("watchdog re-fired after %d post-reset starved intervals", i-3)
		}
	}
	if fired := starve(6); len(fired) != 1 {
		t.Fatalf("watchdog did not re-fire after a second full starvation run")
	}

	// An admitted drain move clears the wait. Refill the bucket first.
	c.ResetWasteWindow(0, 1, 0)
	c.SetRate(0, 1, 1000, 4000)
	if d := c.AdmitClass(ClassDrain, 0, 1, DirDemote, 0, 512, 512, 0); d.Verdict != VerdictAdmit {
		t.Fatalf("drain after refill = %v, want admit", d.Verdict)
	}
	if fired := c.EndInterval(0); len(fired) != 0 {
		t.Fatalf("watchdog fired on an interval with an admitted drain move")
	}
}

// TestClassStatsAccumulate asserts per-class lifetime counters track
// requests, admits, defers and bytes independently per class.
func TestClassStatsAccumulate(t *testing.T) {
	c := laneCtl(t, LaneConfig{})
	c.AdmitClass(ClassNormal, 0, 1, DirDemote, 1, 512, 512, 0)
	c.AdmitClass(ClassEmergency, 0, 1, DirDemote, 0, 512, 512, 0)
	c.AdmitClass(ClassEmergency, 0, 1, DirDemote, 0, 512, 512, 0)
	n, e := c.ClassStats(ClassNormal), c.ClassStats(ClassEmergency)
	if n.Requests != 1 || n.Admits != 1 {
		t.Fatalf("normal stats = %+v, want 1 request, 1 admit", n)
	}
	if e.Requests != 2 || e.Admits != 2 || e.Bytes != 1024 {
		t.Fatalf("emergency stats = %+v, want 2 requests, 2 admits, 1024 bytes", e)
	}
	if d := c.ClassStats(ClassDrain); d.Requests != 0 {
		t.Fatalf("drain stats = %+v, want untouched", d)
	}
}

// TestDemandScaledRefill asserts lanes mode re-rates each pair's bucket
// to its observed traffic: an idle pair collapses to the rate floor
// (statRate/64), a busy pair is clamped at the rated budget.
func TestDemandScaledRefill(t *testing.T) {
	c := laneCtl(t, LaneConfig{DemandMult: 2})
	// No traffic at all: after one interval the refill rate floors at
	// statRate/64 ≈ 15 B/s, so one virtual second credits ~15 bytes.
	c.Commit(0, 1, 4000, 0) // empty the bucket (counts as this interval's traffic)
	// Idle intervals: the traffic EMA decays by 1/8 each, so after a few
	// dozen the demand-scaled rate bottoms out at the floor.
	for i := 0; i < 64; i++ {
		c.EndInterval(0)
	}
	before := c.Tokens(0, 1, 0)
	got := c.Tokens(0, 1, 1e9) - before
	if got < 1 || got > 1000/64+1 {
		t.Fatalf("idle-pair refill over 1s = %d bytes, want ~statRate/64 = %d", got, 1000/64)
	}
	// Heavy sustained traffic: the rate climbs back toward (and never
	// beyond) the rated statRate.
	for i := 0; i < 8; i++ {
		c.Charge(0, 1, 100000, 2e9)
		c.EndInterval(2e9)
	}
	base := c.Tokens(0, 1, 2e9)
	if got := c.Tokens(0, 1, 3e9) - base; got > 1000 {
		t.Fatalf("busy-pair refill over 1s = %d bytes, exceeds rated 1000", got)
	}
}

func TestParseLanes(t *testing.T) {
	cases := []struct {
		spec string
		want LaneConfig
		err  bool
	}{
		{spec: "", want: LaneConfig{}},
		{spec: "none", want: LaneConfig{}},
		{spec: "default", want: LaneConfig{Enabled: true, ReserveFrac: 0.25, WatchdogIntervals: 4, DemandMult: 2}},
		{spec: "strict", want: LaneConfig{Enabled: true, ReserveFrac: 0.5, WatchdogIntervals: 2, DemandMult: 1}},
		{spec: "default,reserve-frac=0.4", want: LaneConfig{Enabled: true, ReserveFrac: 0.4, WatchdogIntervals: 4, DemandMult: 2}},
		{spec: "strict,watchdog-intervals=3,demand-mult=1.5", want: LaneConfig{Enabled: true, ReserveFrac: 0.5, WatchdogIntervals: 3, DemandMult: 1.5}},
		// Bare overrides start from the default preset.
		{spec: "reserve-frac=0.1", want: LaneConfig{Enabled: true, ReserveFrac: 0.1, WatchdogIntervals: 4, DemandMult: 2}},
		{spec: " default , reserve-frac = 0.4 ", want: LaneConfig{Enabled: true, ReserveFrac: 0.4, WatchdogIntervals: 4, DemandMult: 2}},
		{spec: "bogus", err: true},
		{spec: "default,bogus-key=1", err: true},
		{spec: "default,reserve-frac", err: true},
		{spec: "default,reserve-frac=x", err: true},
		{spec: "reserve-frac=1.5", err: true},
		{spec: "reserve-frac=-0.1", err: true},
		{spec: "watchdog-intervals=0", err: true},
		{spec: "watchdog-intervals=-2", err: true},
		{spec: "demand-mult=0", err: true},
		{spec: "demand-mult=-1", err: true},
		{spec: ",,,", err: true},
		{spec: "default,", err: true},
	}
	for _, tc := range cases {
		got, err := ParseLanes(tc.spec)
		if tc.err {
			if err == nil {
				t.Errorf("ParseLanes(%q) = %+v, want error", tc.spec, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseLanes(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseLanes(%q) = %+v, want %+v", tc.spec, got, tc.want)
		}
	}
}

// FuzzParseLanes asserts the lane-spec parser never panics and that
// accepted specs produce configs that pass validation (ParseLanes and
// ValidLanes agree) — the same contract as the fault-scenario FuzzParse.
func FuzzParseLanes(f *testing.F) {
	seeds := append([]string{
		"", "none",
		"default,reserve-frac=0.4",
		"strict,watchdog-intervals=3",
		"reserve-frac=0.1,demand-mult=1.5",
		"watchdog-intervals=0", "demand-mult=-1", "reserve-frac=2",
		"x=y", ",,,", "default,", " strict ",
	}, LanePresets()...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseLanes(spec)
		if (err == nil) != ValidLanes(spec) {
			t.Fatalf("ParseLanes and ValidLanes disagree on %q", spec)
		}
		if err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("ParseLanes(%q) accepted an invalid config: %v", spec, err)
		}
		if cfg.Enabled && (cfg.WatchdogIntervals < 1 || cfg.DemandMult <= 0) {
			t.Fatalf("ParseLanes(%q) accepted degenerate lanes: %+v", spec, cfg)
		}
		// An accepted spec must survive the controller end to end.
		c := NewController(Config{Lanes: cfg}, 2)
		c.SetInterval(1e9)
		c.SetRate(0, 1, 1000, 4000)
		c.AdmitClass(ClassDrain, 0, 1, DirDemote, 0, 512, 512, 0)
		c.EndInterval(1e9)
	})
}
