package health

import (
	"testing"
	"time"
)

func cfg() Config { return Config{}.WithDefaults() }

func TestWithDefaults(t *testing.T) {
	c := cfg()
	if c.DegradedAfter != 1 || c.DrainAfter != 8 || c.RecoverAfter != 4 {
		t.Fatalf("threshold defaults wrong: %+v", c)
	}
	if c.DrainPagesPerInterval != 128 || c.TripAborts != 3 {
		t.Fatalf("batch/trip defaults wrong: %+v", c)
	}
	if c.RecoveryPenalty != 250*time.Microsecond {
		t.Fatalf("RecoveryPenalty = %v", c.RecoveryPenalty)
	}
	if c.CoolDown != 0 {
		t.Fatalf("CoolDown = %v, want 0 (engine defaults it from Interval)", c.CoolDown)
	}
}

func TestPoisonThresholds(t *testing.T) {
	tr := NewTracker(cfg(), 2)
	trs := tr.Poison(0, 1, 3)
	if len(trs) != 1 || trs[0].From != StateOnline || trs[0].To != StateDegraded {
		t.Fatalf("first poison transitions = %+v", trs)
	}
	if tr.State(0) != StateDegraded || tr.State(1) != StateOnline {
		t.Fatal("wrong states after first poison")
	}
	// Crossing the drain threshold mid-burst.
	trs = tr.Poison(0, 7, 4)
	if len(trs) != 1 || trs[0].To != StateDraining {
		t.Fatalf("drain transition = %+v", trs)
	}
	if tr.PoisonedPages(0) != 8 {
		t.Fatalf("poisoned pages = %d", tr.PoisonedPages(0))
	}
}

func TestPoisonBurstEmitsBothSteps(t *testing.T) {
	// One burst past both thresholds must record Online→Degraded and
	// Degraded→Draining so the provenance trail never skips a state.
	tr := NewTracker(cfg(), 1)
	trs := tr.Poison(0, 10, 0)
	if len(trs) != 2 || trs[0].To != StateDegraded || trs[1].To != StateDraining {
		t.Fatalf("transitions = %+v", trs)
	}
}

func TestDegradedRecoversAfterQuietPeriod(t *testing.T) {
	tr := NewTracker(cfg(), 1)
	tr.Poison(0, 1, 0)
	for i := 1; i < 4; i++ {
		if trs := tr.BeginInterval(i, nil); len(trs) != 0 {
			t.Fatalf("interval %d: early transition %+v", i, trs)
		}
	}
	trs := tr.BeginInterval(4, nil)
	if len(trs) != 1 || trs[0].To != StateOnline {
		t.Fatalf("recovery transition = %+v", trs)
	}
	// New poison after recovery degrades again (cumulative count is
	// already past DegradedAfter).
	if trs := tr.Poison(0, 1, 5); len(trs) != 1 || trs[0].To != StateDegraded {
		t.Fatalf("re-degrade = %+v", trs)
	}
}

func TestOpenBreakerDegradesAndBlocksRecovery(t *testing.T) {
	tr := NewTracker(cfg(), 1)
	open := true
	trs := tr.BeginInterval(0, func(int) bool { return open })
	if len(trs) != 1 || trs[0].To != StateDegraded {
		t.Fatalf("breaker degrade = %+v", trs)
	}
	// While the breaker stays open the quiet clock never starts.
	for i := 1; i < 10; i++ {
		if trs := tr.BeginInterval(i, func(int) bool { return open }); len(trs) != 0 {
			t.Fatalf("interval %d: transition while open %+v", i, trs)
		}
	}
	// The breaker was last open at interval 9; the quiet clock runs from
	// there, so recovery lands at interval 13 (9 + RecoverAfter).
	open = false
	for i := 10; i < 13; i++ {
		if trs := tr.BeginInterval(i, func(int) bool { return open }); len(trs) != 0 {
			t.Fatalf("interval %d: recovered early %+v", i, trs)
		}
	}
	if trs := tr.BeginInterval(13, func(int) bool { return open }); len(trs) != 1 || trs[0].To != StateOnline {
		t.Fatalf("recovery = %+v", trs)
	}
}

func TestDrainingIsOneWay(t *testing.T) {
	tr := NewTracker(cfg(), 1)
	tr.Poison(0, 8, 0)
	if tr.State(0) != StateDraining {
		t.Fatal("setup: not draining")
	}
	// Quiet intervals never un-drain a tier.
	for i := 1; i < 20; i++ {
		if trs := tr.BeginInterval(i, nil); len(trs) != 0 {
			t.Fatalf("draining tier transitioned: %+v", trs)
		}
	}
	trs := tr.DrainedEmpty(0, 20)
	if len(trs) != 1 || trs[0].To != StateOffline {
		t.Fatalf("offline transition = %+v", trs)
	}
	// DrainedEmpty on a non-draining tier is a no-op.
	if trs := tr.DrainedEmpty(0, 21); len(trs) != 0 {
		t.Fatalf("offline tier transitioned again: %+v", trs)
	}
	if got := tr.Draining(); len(got) != 0 {
		t.Fatalf("Draining() = %v after offline", got)
	}
}

func TestForceDrainingStepsThroughDegraded(t *testing.T) {
	tr := NewTracker(cfg(), 2)
	trs := tr.ForceDraining(1, 0)
	if len(trs) != 2 || trs[0].To != StateDegraded || trs[1].To != StateDraining {
		t.Fatalf("transitions = %+v", trs)
	}
	if got := tr.Draining(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Draining() = %v", got)
	}
	// Idempotent on an already-draining tier.
	if trs := tr.ForceDraining(1, 1); len(trs) != 0 {
		t.Fatalf("second ForceDraining = %+v", trs)
	}
}

func TestBreakerTripsAfterConsecutiveAborts(t *testing.T) {
	b := NewBreaker(3, 3, 1000)
	if b.RecordAbort(0, 1, 10) || b.RecordAbort(0, 1, 20) {
		t.Fatal("tripped before the threshold")
	}
	if !b.RecordAbort(0, 1, 30) {
		t.Fatal("third consecutive abort did not trip")
	}
	if b.StateOf(0, 1) != BreakerOpen || b.Trips(0, 1) != 1 {
		t.Fatalf("state=%v trips=%d", b.StateOf(0, 1), b.Trips(0, 1))
	}
	if b.OpenUntil(0, 1) != 1030 {
		t.Fatalf("openUntil = %d, want 1030", b.OpenUntil(0, 1))
	}
	// Other pairs are untouched.
	if b.StateOf(1, 0) != BreakerClosed || b.StateOf(0, 2) != BreakerClosed {
		t.Fatal("trip leaked to other pairs")
	}
}

func TestBreakerSuccessResetsConsecutive(t *testing.T) {
	b := NewBreaker(2, 3, 1000)
	b.RecordAbort(0, 1, 1)
	b.RecordAbort(0, 1, 2)
	b.RecordSuccess(0, 1)
	if b.RecordAbort(0, 1, 3) || b.RecordAbort(0, 1, 4) {
		t.Fatal("tripped with a success in between")
	}
	if !b.RecordAbort(0, 1, 5) {
		t.Fatal("did not trip after three fresh consecutive aborts")
	}
}

func TestBreakerTripsAtMostOncePerCoolDown(t *testing.T) {
	b := NewBreaker(2, 3, 1000)
	for i := 0; i < 2; i++ {
		b.RecordAbort(0, 1, int64(i))
	}
	if !b.RecordAbort(0, 1, 2) {
		t.Fatal("no trip")
	}
	// While open, the pair is vetoed and further aborts never re-trip.
	for now := int64(3); now < 1000; now += 100 {
		if b.Allow(0, 1, now) {
			t.Fatalf("Allow during cool-down at %d", now)
		}
		if b.RecordAbort(0, 1, now) {
			t.Fatalf("re-trip during cool-down at %d", now)
		}
	}
	if b.Trips(0, 1) != 1 || b.TotalTrips() != 1 {
		t.Fatalf("trips = %d/%d, want 1", b.Trips(0, 1), b.TotalTrips())
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	mk := func() *Breaker {
		b := NewBreaker(2, 3, 1000)
		b.RecordAbort(0, 1, 0)
		b.RecordAbort(0, 1, 0)
		b.RecordAbort(0, 1, 0) // trips; openUntil = 1000
		return b
	}

	// Probe succeeds: the breaker closes.
	b := mk()
	if !b.Allow(0, 1, 1000) {
		t.Fatal("cool-down elapsed but probe refused")
	}
	if b.StateOf(0, 1) != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.StateOf(0, 1))
	}
	b.RecordSuccess(0, 1)
	if b.StateOf(0, 1) != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}

	// Probe fails: immediate re-trip with a fresh cool-down.
	b = mk()
	b.Allow(0, 1, 2000)
	if !b.RecordAbort(0, 1, 2000) {
		t.Fatal("failed half-open probe did not re-trip")
	}
	if b.StateOf(0, 1) != BreakerOpen || b.OpenUntil(0, 1) != 3000 || b.Trips(0, 1) != 2 {
		t.Fatalf("after re-trip: state=%v until=%d trips=%d",
			b.StateOf(0, 1), b.OpenUntil(0, 1), b.Trips(0, 1))
	}
}

func TestOpenIntoIsReadOnly(t *testing.T) {
	b := NewBreaker(3, 3, 1000)
	for i := 0; i < 3; i++ {
		b.RecordAbort(2, 1, 0)
	}
	if !b.OpenInto(1, 500) {
		t.Fatal("open breaker into node 1 not reported")
	}
	if b.OpenInto(0, 500) || b.OpenInto(2, 500) {
		t.Fatal("OpenInto reported the wrong destination")
	}
	// Past the cool-down it reads as not-open, but must not flip the cell
	// to half-open (that is Allow's job).
	if b.OpenInto(1, 1000) {
		t.Fatal("OpenInto true after cool-down")
	}
	if b.StateOf(2, 1) != BreakerOpen {
		t.Fatal("OpenInto mutated the breaker state")
	}
}
