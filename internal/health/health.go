// Package health implements the deterministic tier-health subsystem: a
// per-node state machine (Online → Degraded → Draining → Offline) driven
// by uncorrectable memory errors and migration failures, and a per
// tier-pair circuit breaker that stops the migration planner from
// hammering a destination that keeps aborting transfers.
//
// The package is pure bookkeeping on virtual time: it draws no
// randomness and reads no clocks, so a given sequence of inputs always
// produces the same transitions regardless of host scheduling. The
// simulation engine owns the inputs (poisoned-page events, abort
// records, the virtual now) and applies the outputs (capacity changes,
// drains, provenance events).
package health

import (
	"errors"
	"time"
)

// ErrNoDestination is returned (wrapped) when a draining tier has live
// pages but no healthy destination with capacity can be found for them;
// the pages stay in place and the drain retries next interval.
var ErrNoDestination = errors.New("health: no drain destination with capacity")

// State is the health of one memory tier. States only move forward
// except Degraded, which recovers to Online after a quiet period;
// Draining and Offline are one-way (a dead DIMM does not come back).
type State uint8

const (
	// StateOnline is a healthy tier.
	StateOnline State = iota
	// StateDegraded is a tier that has thrown memory errors or tripped a
	// migration breaker recently but is still accepting pages.
	StateDegraded
	// StateDraining is a tier being evacuated: no new allocations, live
	// pages move out a bounded batch per interval.
	StateDraining
	// StateOffline is a fully evacuated tier with zero usable capacity.
	StateOffline
)

func (s State) String() string {
	switch s {
	case StateOnline:
		return "Online"
	case StateDegraded:
		return "Degraded"
	case StateDraining:
		return "Draining"
	case StateOffline:
		return "Offline"
	}
	return "Unknown"
}

// Config holds the thresholds of the health state machine and the
// migration circuit breaker. The zero value selects the defaults below.
type Config struct {
	// DegradedAfter is the cumulative poisoned-page count that moves a
	// tier Online → Degraded. Default 1: the first uncorrectable error
	// puts the tier under watch, like the kernel's CEC threshold.
	DegradedAfter int
	// DrainAfter is the cumulative poisoned-page count that moves a tier
	// to Draining. Default 8.
	DrainAfter int
	// RecoverAfter is the number of consecutive quiet intervals (no new
	// poison, no open breaker into the tier) after which a Degraded tier
	// returns to Online. Default 4.
	RecoverAfter int
	// DrainPagesPerInterval bounds how many pages one drain step may
	// attempt, keeping the background evacuation incremental. Default 128.
	DrainPagesPerInterval int
	// RecoveryPenalty is the app-visible cost of touching a poisoned
	// page: the machine-check + SIGBUS-handler round trip before the
	// page is refaulted onto a healthy tier. Default 250µs.
	RecoveryPenalty time.Duration
	// TripAborts is the number of consecutive aborted migrations on one
	// (src, dst) tier pair that trips that pair's breaker. Default 3.
	TripAborts int
	// CoolDown is how long (virtual time) a tripped breaker stays open
	// before allowing a half-open probe. Zero lets the engine default it
	// to twice the profiling interval.
	CoolDown time.Duration
}

// WithDefaults returns c with every zero field replaced by its default.
func (c Config) WithDefaults() Config {
	if c.DegradedAfter <= 0 {
		c.DegradedAfter = 1
	}
	if c.DrainAfter <= 0 {
		c.DrainAfter = 8
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 4
	}
	if c.DrainPagesPerInterval <= 0 {
		c.DrainPagesPerInterval = 128
	}
	if c.RecoveryPenalty <= 0 {
		c.RecoveryPenalty = 250 * time.Microsecond
	}
	if c.TripAborts <= 0 {
		c.TripAborts = 3
	}
	return c
}

// Transition records one health state change for provenance.
type Transition struct {
	Node     int
	From, To State
	Interval int
	Reason   string
}

// Tracker is the per-node health state machine.
type Tracker struct {
	cfg      Config
	state    []State
	poisoned []int // cumulative poisoned pages per node
	lastBad  []int // last interval with new poison or an open breaker
}

// NewTracker creates a Tracker for nodes tiers, all Online. cfg should
// already have defaults applied.
func NewTracker(cfg Config, nodes int) *Tracker {
	t := &Tracker{
		cfg:      cfg,
		state:    make([]State, nodes),
		poisoned: make([]int, nodes),
		lastBad:  make([]int, nodes),
	}
	for i := range t.lastBad {
		t.lastBad[i] = -1
	}
	return t
}

// State returns the current health of node n.
func (t *Tracker) State(n int) State { return t.state[n] }

// PoisonedPages returns the cumulative poisoned-page count of node n.
func (t *Tracker) PoisonedPages(n int) int { return t.poisoned[n] }

// set moves node n to state to, appending the transition.
func (t *Tracker) set(n int, to State, interval int, reason string, out []Transition) []Transition {
	out = append(out, Transition{Node: n, From: t.state[n], To: to, Interval: interval, Reason: reason})
	t.state[n] = to
	return out
}

// Poison records pages newly poisoned pages on node n during interval,
// returning any transitions the errors caused. Crossing both thresholds
// at once yields both steps (Online→Degraded, Degraded→Draining) so the
// provenance trail never skips a state.
func (t *Tracker) Poison(n, pages, interval int) []Transition {
	if pages <= 0 {
		return nil
	}
	t.poisoned[n] += pages
	t.lastBad[n] = interval
	var out []Transition
	if t.state[n] == StateOnline && t.poisoned[n] >= t.cfg.DegradedAfter {
		out = t.set(n, StateDegraded, interval, "mem-error threshold", out)
	}
	if t.state[n] == StateDegraded && t.poisoned[n] >= t.cfg.DrainAfter {
		out = t.set(n, StateDraining, interval, "poisoned-pages drain threshold", out)
	}
	return out
}

// BeginInterval advances the quiet-period bookkeeping at the start of
// interval. breakerOpenInto reports whether any migration breaker into
// the given node is currently open; an open breaker degrades an Online
// node and keeps a Degraded node from recovering.
func (t *Tracker) BeginInterval(interval int, breakerOpenInto func(int) bool) []Transition {
	var out []Transition
	for n := range t.state {
		open := breakerOpenInto != nil && breakerOpenInto(n)
		if open {
			t.lastBad[n] = interval
		}
		switch t.state[n] {
		case StateOnline:
			if open {
				out = t.set(n, StateDegraded, interval, "migration breaker open", out)
			}
		case StateDegraded:
			if !open && t.lastBad[n] >= 0 && interval-t.lastBad[n] >= t.cfg.RecoverAfter {
				out = t.set(n, StateOnline, interval, "quiet period elapsed", out)
			}
		}
	}
	return out
}

// DrainedEmpty records that draining node n holds no more live pages,
// completing the evacuation: the tier goes Offline.
func (t *Tracker) DrainedEmpty(n, interval int) []Transition {
	if t.state[n] != StateDraining {
		return nil
	}
	return t.set(n, StateOffline, interval, "evacuation complete", nil)
}

// ForceDraining moves node n straight to Draining (operator-initiated
// offlining), stepping through Degraded so the trail stays monotone.
func (t *Tracker) ForceDraining(n, interval int) []Transition {
	var out []Transition
	if t.state[n] == StateOnline {
		out = t.set(n, StateDegraded, interval, "operator drain request", out)
	}
	if t.state[n] == StateDegraded {
		out = t.set(n, StateDraining, interval, "operator drain request", out)
	}
	return out
}

// Draining returns the nodes currently in StateDraining, in node order.
func (t *Tracker) Draining() []int {
	var out []int
	for n, s := range t.state {
		if s == StateDraining {
			out = append(out, n)
		}
	}
	return out
}
