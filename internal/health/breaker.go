package health

// BreakerState is the classic circuit-breaker tri-state.
type BreakerState uint8

const (
	// BreakerClosed lets migrations flow.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects migrations until the cool-down elapses.
	BreakerOpen
	// BreakerHalfOpen lets a single probe migration through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// cell is the breaker state of one (src, dst) tier pair.
type cell struct {
	state      BreakerState
	consec     int   // consecutive aborts while closed
	openedAt   int64 // virtual ns of the last trip
	openUntil  int64 // virtual ns when a half-open probe becomes allowed
	trips      int64
	lastTripAt int64
}

// Breaker holds one circuit breaker per (src, dst) tier pair. All times
// are virtual nanoseconds supplied by the caller, which makes the
// breaker deterministic and independent of host scheduling.
type Breaker struct {
	tripAborts int
	coolDownNs int64
	cells      [][]cell
}

// NewBreaker creates a Breaker for an n-node machine tripping after
// tripAborts consecutive aborts and cooling down for coolDownNs.
func NewBreaker(n, tripAborts int, coolDownNs int64) *Breaker {
	b := &Breaker{tripAborts: tripAborts, coolDownNs: coolDownNs, cells: make([][]cell, n)}
	for i := range b.cells {
		b.cells[i] = make([]cell, n)
	}
	return b
}

// Allow reports whether a migration src→dst may be planned at virtual
// time nowNs. An open breaker whose cool-down has elapsed moves to
// half-open and allows the (single) probe.
func (b *Breaker) Allow(src, dst int, nowNs int64) bool {
	ok, _ := b.AllowAt(src, dst, nowNs)
	return ok
}

// AllowAt is Allow plus a transition report: reopened is true exactly
// when this call moved the pair from open to half-open, the moment a
// recovering pair re-enters service. Callers use it to reset stale
// per-pair state accumulated before the trip (the admission waste
// ledger froze during the open period and would otherwise re-shed the
// pair on its first probe).
func (b *Breaker) AllowAt(src, dst int, nowNs int64) (ok, reopened bool) {
	c := &b.cells[src][dst]
	switch c.state {
	case BreakerOpen:
		if nowNs >= c.openUntil {
			c.state = BreakerHalfOpen
			return true, true
		}
		return false, false
	default:
		return true, false
	}
}

// RecordSuccess records a committed migration on the pair, closing a
// half-open breaker and resetting the consecutive-abort count.
func (b *Breaker) RecordSuccess(src, dst int) {
	c := &b.cells[src][dst]
	c.state = BreakerClosed
	c.consec = 0
}

// RecordAbort records an aborted migration on the pair at virtual time
// nowNs and reports whether this abort tripped the breaker. A breaker
// that is already open absorbs further aborts without re-tripping, so a
// pair trips at most once per cool-down window.
func (b *Breaker) RecordAbort(src, dst int, nowNs int64) bool {
	c := &b.cells[src][dst]
	switch c.state {
	case BreakerOpen:
		return false
	case BreakerHalfOpen:
		b.trip(c, nowNs)
		return true
	default:
		c.consec++
		if c.consec >= b.tripAborts {
			b.trip(c, nowNs)
			return true
		}
		return false
	}
}

func (b *Breaker) trip(c *cell, nowNs int64) {
	c.state = BreakerOpen
	c.consec = 0
	c.openedAt = nowNs
	c.openUntil = nowNs + b.coolDownNs
	c.trips++
	c.lastTripAt = nowNs
}

// OpenInto reports whether any breaker into dst is open (cool-down not
// yet elapsed) at virtual time nowNs. Read-only: it does not advance
// open breakers to half-open.
func (b *Breaker) OpenInto(dst int, nowNs int64) bool {
	for src := range b.cells {
		c := &b.cells[src][dst]
		if c.state == BreakerOpen && nowNs < c.openUntil {
			return true
		}
	}
	return false
}

// StateOf returns the raw breaker state of the pair without side effects.
func (b *Breaker) StateOf(src, dst int) BreakerState { return b.cells[src][dst].state }

// Consecutive returns the pair's current consecutive-abort count.
func (b *Breaker) Consecutive(src, dst int) int { return b.cells[src][dst].consec }

// OpenUntil returns the virtual ns at which the pair's breaker permits a
// half-open probe (0 if it never tripped).
func (b *Breaker) OpenUntil(src, dst int) int64 { return b.cells[src][dst].openUntil }

// Trips returns how many times the pair's breaker has tripped.
func (b *Breaker) Trips(src, dst int) int64 { return b.cells[src][dst].trips }

// TotalTrips returns the trip count summed over all pairs.
func (b *Breaker) TotalTrips() int64 {
	var n int64
	for i := range b.cells {
		for j := range b.cells[i] {
			n += b.cells[i][j].trips
		}
	}
	return n
}
