package experiments

import (
	"fmt"
	"time"

	"mtm"
	"mtm/internal/migrate"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/stats"
	"mtm/internal/tier"
	"mtm/internal/vm"
	"mtm/internal/workload"
)

// Fig7Ablations reproduces Figure 7: VoltDB under the §9.3 ablations —
// Thermostat and tiered-AutoNUMA profiling grafted onto MTM's migration,
// full MTM, and MTM without adaptive regions / PEBS / adaptive sampling /
// overhead control / async migration.
func Fig7Ablations(o Options) string {
	cfg := o.config()
	sols := []string{
		"mtm-thermostat-prof", "mtm-autonuma-prof", "mtm",
		"mtm-wo-amr", "mtm-wo-pebs", "mtm-wo-aps", "mtm-wo-oc", "mtm-wo-async",
	}
	tb := stats.NewTable("solution", "app", "profiling", "migration", "total")
	var warns []string
	for _, sol := range sols {
		res, err := mtm.Run(cfg, "voltdb", sol)
		if res, err = note(&warns, res, err); err != nil {
			return err.Error()
		}
		tb.Row(res.Solution, res.App, res.Profiling, res.Migration, res.ExecTime)
	}
	return withWarnings("Figure 7: adaptive profiling / migration ablations (VoltDB)\n"+tb.String(), warns)
}

// Fig8OverheadSweep reproduces Figure 8: VoltDB execution time under
// profiling overhead targets of 1/2/3/5/10% with a 5 s profiling interval.
func Fig8OverheadSweep(o Options) string {
	cfg := o.config()
	cfg.Interval = 5 * time.Second / time.Duration(cfg.Scale)
	tb := stats.NewTable("target", "app", "profiling", "migration", "total")
	var warns []string
	for _, target := range []float64{0.01, 0.02, 0.03, 0.05, 0.10} {
		c := cfg
		c.OverheadTarget = target
		res, err := mtm.Run(c, "voltdb", "mtm")
		if res, err = note(&warns, res, err); err != nil {
			return err.Error()
		}
		tb.Row(fmt.Sprintf("%.0f%%", target*100), res.App, res.Profiling, res.Migration, res.ExecTime)
	}
	return withWarnings("Figure 8: profiling overhead target sweep (VoltDB, 5s interval)\n"+tb.String(), warns)
}

// Fig9Thresholds reproduces Figure 9: VoltDB under (τm, τs) settings for
// num_scans = 3 and 6.
func Fig9Thresholds(o Options) string {
	cfg := o.config()
	type point struct {
		numScans   int
		tauM, tauS float64
	}
	points := []point{
		{3, 0, 3}, {3, 1, 1}, {3, 1, 2}, {3, 2, 0}, {3, 2, 1}, {3, 3, 0},
		{6, 0, 6}, {6, 2, 2}, {6, 2, 4}, {6, 4, 0}, {6, 4, 2}, {6, 6, 0},
	}
	tb := stats.NewTable("num_scans", "tau_m", "tau_s", "app", "profiling", "migration", "total")
	var warns []string
	for _, pt := range points {
		pc := profiler.DefaultMTMConfig()
		pc.OverheadTarget = 0.05
		pc.NumScans = pt.numScans
		pc.TauM, pc.TauS = pt.tauM, pt.tauS
		s := policy.NewMTMVariant(fmt.Sprintf("mtm(%v,%v)", pt.tauM, pt.tauS), profiler.NewMTM(pc), migrate.NewAdaptive())
		s.MigrateBudget = mustBudget(cfg)
		s.DemoteCap = 2 * s.MigrateBudget
		w, err := mtm.NewWorkload("voltdb", cfg)
		if err != nil {
			return err.Error()
		}
		res, err := mtm.RunWith(cfg, w, s)
		if res, err = note(&warns, res, err); err != nil {
			return err.Error()
		}
		tb.Row(pt.numScans, pt.tauM, pt.tauS, res.App, res.Profiling, res.Migration, res.ExecTime)
	}
	return withWarnings("Figure 9: (tau_m, tau_s) sensitivity (VoltDB)\n"+tb.String(), warns)
}

func mustBudget(c mtm.Config) int64 {
	if c.MigrateBudget > 0 {
		return c.MigrateBudget
	}
	scale := c.Scale
	if scale <= 0 {
		scale = mtm.DefaultScale
	}
	return 800 * tier.MB / scale
}

// Fig10Alpha reproduces Figure 10: performance across workloads as the
// EMA weight α varies, normalised to the default α = 1/2.
func Fig10Alpha(o Options) string {
	cfg := o.config()
	alphas := []float64{-1, 0.25, 0.5, 0.75, 1} // -1 encodes α=0
	tb := stats.NewTable("workload", "alpha", "exec", "speedup vs α=1/2")
	var warns []string
	for _, wl := range mtm.PaperWorkloadNames() {
		var base float64
		var rows []struct {
			alpha float64
			exec  time.Duration
		}
		for _, a := range alphas {
			c := cfg
			c.Alpha = a
			res, err := mtm.Run(c, wl, "mtm")
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			if a == 0.5 {
				base = res.ExecTime.Seconds()
			}
			rows = append(rows, struct {
				alpha float64
				exec  time.Duration
			}{a, res.ExecTime})
		}
		for _, r := range rows {
			shown := r.alpha
			if shown < 0 {
				shown = 0
			}
			tb.Row(wl, shown, r.exec, base/r.exec.Seconds())
		}
	}
	return withWarnings("Figure 10: EMA weight α sweep (normalized to α=1/2)\n"+tb.String(), warns)
}

// Fig11Mechanisms reproduces Figure 11: migrating a 1 GB (scaled) array
// that is concurrently read (R), read+written (R/W), or written (W), from
// tier 1 to tiers 2, 3, and 4, under move_pages, Nimble, and MTM's
// adaptive mechanism.
func Fig11Mechanisms(o Options) string {
	cfg := o.config()
	arrayBytes := tier.GB / cfg.Scale * 64 // 64 GB/scale keeps page counts meaningful
	if arrayBytes < 8*vm.HugePageSize {
		arrayBytes = 8 * vm.HugePageSize
	}
	type mech struct {
		name string
		mk   func(writeRate float64) migrate.Mechanism
	}
	mechanisms := []mech{
		{"move_pages", func(float64) migrate.Mechanism { return migrate.MovePages{} }},
		{"nimble", func(float64) migrate.Mechanism { return migrate.Nimble{} }},
		{"mtm", func(wr float64) migrate.Mechanism { return &migrate.Adaptive{WriteRate: wr} }},
	}
	patterns := []struct {
		name      string
		writeRate float64
	}{
		{"R", 0},
		{"R/W", 2000},
		{"W", 1e9},
	}
	tb := stats.NewTable("dst tier", "pattern", "mechanism", "critical", "background", "switched")
	topo := mtm.NewEngine(cfg).Sys.Topo
	view := topo.View(0)
	for dstRank := 1; dstRank < len(view); dstRank++ {
		for _, pat := range patterns {
			for _, m := range mechanisms {
				e := mtm.NewEngine(cfg)
				e.SetSolution(policy.NewFirstTouch())
				v := e.AS.Alloc("array", arrayBytes)
				e.Sys.ResetWindow(e.Interval)
				for i := 0; i < v.NPages; i++ {
					e.Access(v, i, 1, 0, 0)
				}
				rep := m.mk(pat.writeRate).Migrate(e, v, 0, v.NPages, view[dstRank], 0)
				tb.Row(fmt.Sprintf("tier%d", dstRank+1), pat.name, m.name, rep.Critical, rep.Background, rep.SwitchedToSync)
			}
		}
	}
	return "Figure 11: migration mechanism comparison (R, R/W, W)\n" + tb.String()
}

// Fig12TwoTier reproduces Figure 12: GUPS throughput on the two-tier
// DRAM+PM machine under MTM and HeMem at 16 and 24 threads, sweeping the
// working-set : fast-memory ratio across 1.0.
func Fig12TwoTier(o Options) string {
	cfg := o.config()
	cfg.TwoTier = true
	dram := 96 * tier.GB / cfg.Scale
	ratios := []float64{0.25, 0.5, 0.75, 1.0, 1.25, 1.5}
	tb := stats.NewTable("ws/fast ratio", "threads", "solution", "exec", "updates/sec (M)")
	var warns []string
	for _, threads := range []int{16, 24} {
		for _, ratio := range ratios {
			table := int64(float64(dram) * ratio)
			ops := int64(float64(table) / 64 * cfg.OpsFactor * 4)
			for _, sol := range []string{"hemem", "mtm"} {
				c := cfg
				c.Threads = threads
				s, err := mtm.NewSolution(sol, c)
				if err != nil {
					return err.Error()
				}
				w := workload.NewGUPSSized(table, ops)
				res, err := mtm.RunWith(c, w, s)
				if res, err = note(&warns, res, err); err != nil {
					return err.Error()
				}
				gups := float64(ops) / res.ExecTime.Seconds() / 1e6
				tb.Row(fmt.Sprintf("%.2f", ratio), threads, res.Solution, res.ExecTime, gups)
			}
		}
	}
	return withWarnings("Figure 12: two-tier GUPS vs HeMem (throughput, higher is better)\n"+tb.String(), warns)
}

// Tab3HotPages reproduces Table 3: hot volume identified and fast-tier
// accesses under vanilla tiered-AutoNUMA, patched tiered-AutoNUMA, and MTM.
func Tab3HotPages(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("workload", "solution", "hot identified (MB/interval)", "fast-tier accesses (M)")
	var warns []string
	for _, wl := range mtm.PaperWorkloadNames() {
		for _, sol := range []string{"vanilla-tiered-autonuma", "tiered-autonuma", "mtm"} {
			s, err := mtm.NewSolution(sol, cfg)
			if err != nil {
				return err.Error()
			}
			w, err := mtm.NewWorkload(wl, cfg)
			if err != nil {
				return err.Error()
			}
			e := mtm.NewEngine(cfg)
			res, err := sim.Run(e, w, s, mtm.MaxIntervals)
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			// Average volume classified hot per interval, the Table 3
			// metric: AutoNUMA accumulates its classifications; MTM's
			// identified set is what the histogram holds hot at the end
			// plus its promotion stream.
			var hot int64
			switch ps := s.(type) {
			case *policy.TieredAutoNUMA:
				hot = ps.HotBytesIdentified / int64(res.Intervals)
			case *policy.MTM:
				hot = hotResident(e) + res.PromotedBytes/int64(res.Intervals)
			}
			var fast int64
			for n, spec := range e.Sys.Topo.Nodes {
				if spec.Kind == tier.DRAM {
					fast += res.NodeAccesses[n]
				}
			}
			tb.Row(wl, res.Solution, hot>>20, float64(fast)/1e6)
		}
	}
	return withWarnings("Table 3: hot volume identified and fast-tier accesses\n"+tb.String(), warns)
}

// hotResident sums the bytes already resident in DRAM that the final
// histogram labels hot — the part of the identified hot set that needed
// no promotion.
func hotResident(e *sim.Engine) int64 {
	sol, ok := e.Solution().(*policy.MTM)
	if !ok {
		return 0
	}
	var dram int64
	for n, spec := range e.Sys.Topo.Nodes {
		if spec.Kind == tier.DRAM {
			dram += e.Sys.Used(tier.NodeID(n))
		}
	}
	var hot int64
	for _, r := range profiler.HotBytes(sol.Prof.Regions(), dram) {
		if n := profiler.RegionNode(r); n != tier.Invalid && e.Sys.Topo.Nodes[n].Kind == tier.DRAM {
			hot += r.Bytes()
		}
	}
	return hot
}

// Tab4InitialPlacement reproduces Table 4: GUPS runtime under MTM with
// slow-tier-first vs first-touch initial placement, across update counts.
func Tab4InitialPlacement(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("giga-updates (scaled)", "slow tier first", "first-touch")
	var warns []string
	for _, frac := range []float64{0.2, 0.4, 0.6, 0.8, 1.0} {
		var execs []time.Duration
		for _, placement := range []policy.Placement{policy.PlaceSlowLocalFirst, policy.PlaceFastFirst} {
			s, err := mtm.NewSolution("mtm", cfg)
			if err != nil {
				return err.Error()
			}
			s.(*policy.MTM).Initial = placement
			c := cfg
			c.OpsFactor = cfg.OpsFactor * frac
			w, err := mtm.NewWorkload("gups", c)
			if err != nil {
				return err.Error()
			}
			res, err := mtm.RunWith(c, w, s)
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			execs = append(execs, res.ExecTime)
		}
		tb.Row(fmt.Sprintf("%.1f", frac), execs[0], execs[1])
	}
	return withWarnings("Table 4: GUPS with different initial page placements (MTM)\n"+tb.String(), warns)
}

// Tab5MemoryOverhead reproduces Table 5: MTM's metadata footprint per
// workload against the workload's memory.
func Tab5MemoryOverhead(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("workload", "workload memory (MB)", "MTM overhead (KB)", "ratio")
	for _, wl := range mtm.PaperWorkloadNames() {
		s, err := mtm.NewSolution("mtm", cfg)
		if err != nil {
			return err.Error()
		}
		w, err := mtm.NewWorkload(wl, cfg)
		if err != nil {
			return err.Error()
		}
		e := mtm.NewEngine(cfg)
		sim.Run(e, w, s, 30)
		prof := s.(*policy.MTM).Prof.(*profiler.MTM)
		over := prof.MemoryOverheadBytes()
		mem := e.AS.TotalBytes()
		tb.Row(wl, mem>>20, over>>10, fmt.Sprintf("%.5f%%", float64(over)/float64(mem)*100))
	}
	return "Table 5: MTM memory-management overhead\n" + tb.String()
}

// Tab6TierAccesses reproduces Table 6: per-tier application access counts
// for VoltDB under tiered-AutoNUMA, AutoTiering, and MTM, in the home
// socket's tier order.
func Tab6TierAccesses(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("solution", "tier1 (M)", "tier2 (M)", "tier3 (M)", "tier4 (M)")
	var warns []string
	for _, sol := range []string{"tiered-autonuma", "autotiering", "mtm"} {
		res, err := mtm.Run(cfg, "voltdb", sol)
		if res, err = note(&warns, res, err); err != nil {
			return err.Error()
		}
		view := mtm.NewEngine(cfg).Sys.Topo.View(0)
		row := make([]interface{}, 0, 5)
		row = append(row, res.Solution)
		for _, n := range view {
			row = append(row, float64(res.NodeAccesses[n])/1e6)
		}
		tb.Row(row...)
	}
	return withWarnings("Table 6: memory accesses per tier (VoltDB)\n"+tb.String(), warns)
}

// Tab7RegionStats reproduces Table 7: per-interval region merge/split
// statistics under MTM.
func Tab7RegionStats(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("workload", "intervals", "avg merged/PI", "avg split/PI", "avg regions/PI")
	for _, wl := range mtm.PaperWorkloadNames() {
		s, err := mtm.NewSolution("mtm", cfg)
		if err != nil {
			return err.Error()
		}
		w, err := mtm.NewWorkload(wl, cfg)
		if err != nil {
			return err.Error()
		}
		e := mtm.NewEngine(cfg)
		e.SetSolution(s)
		w.Init(e)
		prof := s.(*policy.MTM).Prof.(*profiler.MTM)
		var regionSum int64
		i := 0
		for ; i < mtm.MaxIntervals && !w.Done(); i++ {
			e.RunInterval(w)
			regionSum += int64(prof.Set().Len())
		}
		set := prof.Set()
		tb.Row(wl, i,
			float64(set.Merged)/float64(i),
			float64(set.Split)/float64(i),
			regionSum/int64(i))
	}
	return "Table 7: statistics of forming regions (MTM)\n" + tb.String()
}

// CXLGenerality demonstrates the §8 claim beyond Optane: the same MTM
// design on a single-socket DRAM + direct-CXL + switched-CXL machine,
// against first-touch and tiered-AutoNUMA.
func CXLGenerality(o Options) string {
	cfg := o.config()
	cfg.CXL = true
	tb := stats.NewTable("workload", "solution", "exec", "normalized", "DRAM share")
	var warns []string
	for _, wl := range []string{"gups", "voltdb"} {
		var base float64
		for _, sol := range []string{"first-touch", "tiered-autonuma", "mtm"} {
			res, err := mtm.Run(cfg, wl, sol)
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			if sol == "first-touch" {
				base = res.ExecTime.Seconds()
			}
			share := float64(res.NodeAccesses[0]) / float64(res.TotalAccesses)
			tb.Row(wl, res.Solution, res.ExecTime, res.ExecTime.Seconds()/base, share)
		}
	}
	return withWarnings("CXL generality (§8): three-tier DRAM+CXL machine\n"+tb.String(), warns)
}
