// Package experiments regenerates every table and figure of the MTM
// paper's evaluation (§9). Each driver returns a text report whose rows
// mirror the corresponding figure's series or table's cells; cmd/experiments
// prints them and bench_test.go wraps them as benchmarks.
//
// Absolute numbers come from the virtual-time simulator, so they will not
// match the paper's testbed; the shapes — who wins, by roughly what
// factor, where crossovers fall — are the reproduction target (see
// EXPERIMENTS.md for the side-by-side record).
package experiments

import (
	"fmt"
	"strings"

	"mtm"
	"mtm/internal/migrate"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/stats"
	"mtm/internal/tier"
	"mtm/internal/vm"
	"mtm/internal/workload"
)

// Options scales an experiment run. Zero values select the defaults used
// by cmd/experiments (-full sets OpsFactor=1).
type Options struct {
	Scale     int64
	OpsFactor float64
	Seed      int64
}

func (o Options) config() mtm.Config {
	c := mtm.DefaultConfig()
	if o.Scale > 0 {
		c.Scale = o.Scale
	} else {
		c.Scale = 256
	}
	if o.OpsFactor > 0 {
		c.OpsFactor = o.OpsFactor
	} else {
		c.OpsFactor = 0.5
	}
	if o.Seed != 0 {
		c.Seed = o.Seed
	}
	return c
}

// note flags partial runs: a hard mid-run failure (e.g. out of memory)
// or a truncated run (maxIntervals elapsed before completion) appends a
// warning so the section never reports partial numbers as complete. It
// passes the run through otherwise.
func note(warns *[]string, res *mtm.Result, err error) (*mtm.Result, error) {
	switch {
	case err != nil && res == nil:
		return nil, err
	case err != nil:
		*warns = append(*warns, fmt.Sprintf("warning: %s under %s failed after %d intervals: %v",
			res.Workload, res.Solution, res.Intervals, err))
	case res.Truncated:
		*warns = append(*warns, fmt.Sprintf("warning: %s under %s truncated after %d intervals; row covers a partial run",
			res.Workload, res.Solution, res.Intervals))
	}
	return res, nil
}

// withWarnings appends collected partial-run warnings to a section body.
func withWarnings(body string, warns []string) string {
	if len(warns) == 0 {
		return body
	}
	return body + strings.Join(warns, "\n") + "\n"
}

// All maps experiment ids (fig1..fig12, tab3..tab7) to drivers.
var All = map[string]func(Options) string{
	"fig1":  Fig1ProfilingQuality,
	"fig3":  Fig3MigrationBreakdown,
	"fig4":  Fig4Overall,
	"fig5":  Fig5Breakdown,
	"fig6":  Fig6Heatmap,
	"fig7":  Fig7Ablations,
	"fig8":  Fig8OverheadSweep,
	"fig9":  Fig9Thresholds,
	"fig10": Fig10Alpha,
	"fig11": Fig11Mechanisms,
	"fig12": Fig12TwoTier,
	"tab3":  Tab3HotPages,
	"tab4":  Tab4InitialPlacement,
	"tab5":  Tab5MemoryOverhead,
	"tab6":  Tab6TierAccesses,
	"tab7":  Tab7RegionStats,
	"cxl":   CXLGenerality,
}

// Names returns the experiment ids in report order.
func Names() []string {
	return []string{"fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"fig9", "fig10", "fig11", "fig12", "tab3", "tab4", "tab5", "tab6", "tab7", "cxl"}
}

// profAdapter runs a bare profiler as a non-migrating solution so
// profiling quality can be measured in isolation (Figures 1 and 6).
type profAdapter struct {
	p profiler.Profiler
}

func (a *profAdapter) Name() string { return a.p.Name() }
func (a *profAdapter) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return e.Sys.FirstFit(e.Sys.Topo.View(socket), v.PageSize)
}
func (a *profAdapter) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		a.p.Attach(e)
	}
	a.p.IntervalStart(e)
}
func (a *profAdapter) IntervalEnd(e *sim.Engine) { a.p.Profile(e) }

// Fig1ProfilingQuality reproduces Figure 1: recall and accuracy of hot-page
// detection over time for MTM, DAMON, Thermostat and AutoTiering profiling
// under the same overhead budget, on GUPS with a time-varying hot set.
func Fig1ProfilingQuality(o Options) string {
	cfg := o.config()
	type series struct {
		name string
		mk   func() profiler.Profiler
	}
	profilers := []series{
		{"MTM", func() profiler.Profiler { return profiler.NewMTM(profiler.DefaultMTMConfig()) }},
		{"DAMON", func() profiler.Profiler { return profiler.NewDAMON(profiler.DefaultDAMONConfig()) }},
		{"Thermostat", func() profiler.Profiler { return profiler.NewThermostat() }},
		{"AutoTiering", func() profiler.Profiler { return profiler.NewRandomChunk() }},
	}
	tb := stats.NewTable("interval", "profiler", "recall", "accuracy")
	for _, ps := range profilers {
		e := mtm.NewEngine(cfg)
		w := workload.NewGUPS(workload.Config{Scale: cfg.Scale, OpsFactor: cfg.OpsFactor})
		// Figure 1's GUPS re-draws its hot set periodically so slow
		// profilers visibly lag (§9.3).
		w.EpochOps = w.TotalOps() / 6
		w.DriftOps = 0
		p := ps.mk()
		e.SetSolution(&profAdapter{p: p})
		w.Init(e)
		for i := 0; i < 60 && !w.Done(); i++ {
			e.RunInterval(w)
			if i%10 != 9 {
				continue
			}
			hot := w.HotFootprintBytes()
			q := stats.DetectionQuality(p.Regions(), stats.HotOracle(w.IsHot), hot, hot)
			tb.Row(i+1, ps.name, q.Recall, q.Accuracy)
		}
	}
	return "Figure 1: profiling recall/accuracy over time (GUPS, 5% overhead)\n" + tb.String()
}

// Fig3MigrationBreakdown reproduces Figure 3: the step breakdown of
// migrating one 2 MB region from the fastest to the slowest tier with
// move_pages() vs MTM's move_memory_regions().
func Fig3MigrationBreakdown(o Options) string {
	cfg := o.config()
	run := func(m migrate.Mechanism) migrate.Report {
		e := mtm.NewEngine(cfg)
		e.SetSolution(policy.NewFirstTouch())
		v := e.AS.Alloc("region", vm.HugePageSize)
		e.Sys.ResetWindow(e.Interval)
		e.Access(v, 0, 1, 0, 0) // fault onto the fastest tier
		slowest := e.Sys.Topo.View(0)[len(e.Sys.Topo.Nodes)-1]
		return m.Migrate(e, v, 0, v.NPages, slowest, 0)
	}
	mp := run(migrate.MovePages{})
	async := &migrate.Adaptive{WriteRate: 0}
	mmr := run(async)
	tb := stats.NewTable("mechanism", "alloc", "unmap", "copy", "remap", "pt", "dirty", "critical")
	row := func(name string, r migrate.Report) {
		st := r.CriticalSteps
		tb.Row(name, st.Alloc, st.Unmap, st.Copy, st.Remap, st.PageTable, st.DirtyTrack, r.Critical)
	}
	row("move_pages", mp)
	row("move_memory_regions", mmr)
	speedup := float64(mp.Critical) / float64(mmr.Critical)
	return fmt.Sprintf("Figure 3: 2MB region, tier1->tier4 (paper: copy dominates; 4.37x)\n%s\nspeedup: %.2fx\n", tb.String(), speedup)
}

// fig4Solutions are the Figure 4/5 solution set in bar order.
var fig4Solutions = []string{"first-touch", "hmc", "vanilla-tiered-autonuma", "tiered-autonuma", "autotiering", "mtm"}

// Fig4Overall reproduces Figure 4: execution time of every workload under
// the six solutions, normalised to first-touch NUMA.
func Fig4Overall(o Options) string {
	cfg := o.config()
	tb := stats.NewTable("workload", "solution", "exec", "normalized")
	var warns []string
	for _, wl := range mtm.PaperWorkloadNames() {
		var ft float64
		for _, sol := range fig4Solutions {
			res, err := mtm.Run(cfg, wl, sol)
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			if sol == "first-touch" {
				ft = res.ExecTime.Seconds()
			}
			tb.Row(wl, res.Solution, res.ExecTime, res.ExecTime.Seconds()/ft)
		}
	}
	return withWarnings("Figure 4: overall performance normalized to first-touch NUMA\n"+tb.String(), warns)
}

// Fig5Breakdown reproduces Figure 5: application / profiling / migration
// time for the four solutions that manage all four tiers.
func Fig5Breakdown(o Options) string {
	cfg := o.config()
	sols := []string{"first-touch", "tiered-autonuma", "autotiering", "mtm"}
	tb := stats.NewTable("workload", "solution", "app", "profiling", "migration", "total")
	var warns []string
	for _, wl := range mtm.PaperWorkloadNames() {
		for _, sol := range sols {
			res, err := mtm.Run(cfg, wl, sol)
			if res, err = note(&warns, res, err); err != nil {
				return err.Error()
			}
			tb.Row(wl, res.Solution, res.App, res.Profiling, res.Migration, res.ExecTime)
		}
	}
	return withWarnings("Figure 5: execution time breakdown\n"+tb.String(), warns)
}

// Fig6Heatmap reproduces Figure 6: whether the profilers find GUPS's three
// hot objects — the index array A, the hot-set descriptor B, and the hot
// blocks C — reported as detected-hot coverage of each object.
func Fig6Heatmap(o Options) string {
	cfg := o.config()
	type coverage struct{ a, b, c, excess float64 }
	measure := func(p profiler.Profiler) coverage {
		e := mtm.NewEngine(cfg)
		w := workload.NewGUPS(workload.Config{Scale: cfg.Scale, OpsFactor: cfg.OpsFactor})
		e.SetSolution(&profAdapter{p: p})
		w.Init(e)
		for i := 0; i < 40 && !w.Done(); i++ {
			e.RunInterval(w)
		}
		hot := w.HotFootprintBytes()
		detected := profiler.HotBytes(p.Regions(), hot)
		var cov coverage
		var got [256]float64
		var excess float64
		for _, r := range detected {
			for i := r.Start; i < r.End; i++ {
				switch o := w.Object(r.V, i); o {
				case 'A', 'B', 'C':
					got[o] += float64(r.V.PageSize)
				default:
					excess += float64(r.V.PageSize)
				}
			}
		}
		var total [256]float64
		heap := w.Heap()
		for i := 0; i < heap.NPages; i++ {
			if o := w.Object(heap, i); o == 'A' || o == 'B' || o == 'C' {
				total[o] += float64(heap.PageSize)
			}
		}
		cov.a = got['A'] / total['A']
		cov.b = got['B'] / total['B']
		cov.c = got['C'] / total['C']
		if det := got['A'] + got['B'] + got['C'] + excess; det > 0 {
			cov.excess = excess / det
		}
		return cov
	}
	m := measure(profiler.NewMTM(profiler.DefaultMTMConfig()))
	d := measure(profiler.NewDAMON(profiler.DefaultDAMONConfig()))
	tb := stats.NewTable("profiler", "A (index)", "B (hotinfo)", "C (hotset)", "false-hot share")
	tb.Row("MTM", m.a, m.b, m.c, m.excess)
	tb.Row("DAMON", d.a, d.b, d.c, d.excess)
	return "Figure 6: detected-hot coverage of GUPS objects A/B/C\n" + tb.String()
}
