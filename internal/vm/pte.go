// Package vm implements the virtual-memory substrate of the simulator: an
// address space of VMAs backed by a software page table whose PTEs carry
// the bits the MTM profiler and migration mechanism manipulate (present,
// accessed, dirty, write-protect, and the reserved profiling bit).
//
// The simulated MMU (VMA.Touch / VMA.TouchN) sets the accessed and dirty
// bits exactly as hardware would; profilers observe memory behaviour only
// by scanning and clearing those bits, which preserves the information loss
// the paper's profiling mechanisms are designed around: a single PTE scan
// reveals "accessed since last scan", never an access count.
package vm

// PTE is one software page-table entry. Only the flag bits are modelled;
// the physical frame is tracked separately as a tier.NodeID per page.
type PTE uint8

// PTE flag bits. Bit names follow x86-64 usage; Reserved11 is the reserved
// 11th bit MTM uses for low-overhead access tracking (§5).
const (
	// Present means the page has been allocated a physical frame.
	Present PTE = 1 << iota
	// Accessed is set by the MMU on every access and cleared by PTE scans.
	Accessed
	// Dirty is set by the MMU on every write.
	Dirty
	// WriteProtect causes writes to fault; the MTM migration mechanism
	// uses it to detect writes during an asynchronous copy (§7.2).
	WriteProtect
	// Reserved11 models the reserved PTE bit profilers may use as a
	// second, independent access flag.
	Reserved11
	// Huge marks the entry as mapping a 2 MB huge page.
	Huge
	// Poisoned marks a page hit by an uncorrectable memory error, the
	// analogue of Linux HWPOISON soft-offlining: the frame is dead, the
	// mapping is gone (Present is cleared alongside), and the next access
	// takes a recovery fault instead of a machine-check crash.
	Poisoned
)

// Has reports whether all bits in mask are set.
func (p PTE) Has(mask PTE) bool { return p&mask == mask }

// Set returns p with the mask bits set.
func (p PTE) Set(mask PTE) PTE { return p | mask }

// Clear returns p with the mask bits cleared.
func (p PTE) Clear(mask PTE) PTE { return p &^ mask }
