package vm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// AddressSpace is the virtual address space of the simulated process: an
// ordered set of VMAs. Virtual addresses are allocated by a bump pointer
// with a guard gap between VMAs, mirroring mmap behaviour closely enough
// for region formation (which only needs stable, ordered, non-overlapping
// ranges).
type AddressSpace struct {
	// THP controls whether allocations of at least one huge page use
	// 2 MB pages (the paper's default, via madvise).
	THP bool

	vmas     []*VMA
	nextBase uint64
}

// vmaGap is the unmapped guard space left between consecutive VMAs.
const vmaGap = 64 * HugePageSize

// NewAddressSpace returns an empty address space with THP enabled.
func NewAddressSpace() *AddressSpace {
	return &AddressSpace{THP: true, nextBase: 1 << 30} // start at 1 GB, like a typical heap base
}

// Alloc creates a VMA of at least size bytes. With THP on and size >= 2 MB
// the VMA uses huge pages and size is rounded up to a huge-page multiple;
// otherwise 4 KB pages are used and size rounds up to 4 KB. Pages start
// non-present; the first touch faults them in.
func (as *AddressSpace) Alloc(name string, size int64) *VMA {
	if size <= 0 {
		panic(fmt.Sprintf("vm: Alloc(%q, %d): non-positive size", name, size))
	}
	pageSize := int64(BasePageSize)
	if as.THP && size >= HugePageSize {
		pageSize = HugePageSize
	}
	nPages := int((size + pageSize - 1) / pageSize)
	v := newVMA(name, as.nextBase, pageSize, nPages)
	as.nextBase = v.End() + uint64(vmaGap)
	as.vmas = append(as.vmas, v)
	return v
}

// VMAs returns the VMAs in address order. The returned slice is owned by
// the address space; callers must not mutate it.
func (as *AddressSpace) VMAs() []*VMA { return as.vmas }

// Lookup returns the VMA containing addr and the page index within it, or
// (nil, 0) if addr is unmapped.
func (as *AddressSpace) Lookup(addr uint64) (*VMA, int) {
	i := sort.Search(len(as.vmas), func(i int) bool { return as.vmas[i].End() > addr })
	if i == len(as.vmas) || addr < as.vmas[i].Base {
		return nil, 0
	}
	v := as.vmas[i]
	return v, v.PageOf(addr)
}

// TotalBytes returns the mapped (virtual) footprint.
func (as *AddressSpace) TotalBytes() int64 {
	var t int64
	for _, v := range as.vmas {
		t += v.Bytes()
	}
	return t
}

// PresentBytes returns the bytes with physical frames, counted word-wide
// over the present plane.
func (as *AddressSpace) PresentBytes() int64 {
	var t int64
	for _, v := range as.vmas {
		t += int64(v.PresentCount(0, v.NPages)) * v.PageSize
	}
	return t
}

// ResetCounts zeroes ground-truth counters in every VMA (interval boundary).
func (as *AddressSpace) ResetCounts() {
	for _, v := range as.vmas {
		v.ResetCounts()
	}
}

// ObserveScans models what numScans PTE scans of page idx observe during
// the current interval, given the page's ground-truth access count k.
// Each scan reads (and clears) the accessed bit, so it reports whether at
// least one access fell in the window since the bit was last cleared;
// windowFrac is that window's length as a fraction of the interval.
//
// The window length is what gives a scanning profiler its dynamic range:
// with accesses spread across the interval, a window is hit with
// probability 1-(1-windowFrac)^k, so short windows (MTM paces its
// num_scans scans ~100 ms apart; DAMON checks 5 ms windows) discriminate
// access *rates*, while windowFrac=1 (AutoNUMA's cleared-present-bit,
// which faults on the first access any time before the interval ends)
// collapses to a binary accessed/not-accessed signal. The returned value
// is in [0, numScans]; this is the only channel through which PTE-scan
// profilers learn about access frequency.
func ObserveScans(v *VMA, idx, numScans int, windowFrac float64, rng *rand.Rand) int {
	return ObserveScansL(v, idx, numScans, windowFrac, math.Log1p(-windowFrac), rng)
}

// ObserveScansL is ObserveScans with log1p(-windowFrac) precomputed by the
// caller: windowFrac is a per-profiler constant, so hot scan loops hoist
// the logarithm out of the per-page path. logw must equal
// math.Log1p(-windowFrac); draws and results are identical to
// ObserveScans.
func ObserveScansL(v *VMA, idx, numScans int, windowFrac, logw float64, rng *rand.Rand) int {
	// The touched plane is the k>0 pre-check word-wide sweeps rely on:
	// untouched or non-present pages observe nothing and draw nothing, so
	// skipping them whole words at a time leaves every RNG stream intact.
	if numScans <= 0 || !v.touched.Test(idx) || !v.present.Test(idx) {
		return 0
	}
	if windowFrac >= 1 {
		return numScans
	}
	if windowFrac <= 0 {
		return 0
	}
	k := v.Count(idx)
	// p = 1-(1-w)^k via exp for large k.
	p := 1 - math.Exp(float64(k)*logw)
	hits := 0
	for i := 0; i < numScans; i++ {
		if rng.Float64() < p {
			hits++
		}
	}
	return hits
}
