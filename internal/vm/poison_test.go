package vm

import (
	"testing"

	"mtm/internal/tier"
)

func TestPoisonTearsDownMapping(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 4*tier.MB)
	v.Touch(0, true, 1)
	v.Place(0, 2)
	v.Touch(0, true, 1)
	if v.Count(0) == 0 || v.WriteCount(0) == 0 {
		t.Fatal("setup: touched page has no counts")
	}

	v.Poison(0)
	if !v.IsPoisoned(0) {
		t.Fatal("page not marked Poisoned")
	}
	if v.Present(0) {
		t.Fatal("poisoned page still Present")
	}
	if v.Node(0) != NoNode {
		t.Fatalf("poisoned page still bound to node %d", v.Node(0))
	}
	if v.Count(0) != 0 || v.WriteCount(0) != 0 {
		t.Fatal("poisoned page kept access counts")
	}
	if pte := v.PTE(0); pte.Has(Accessed) || pte.Has(Dirty) || pte.Has(WriteProtect) {
		t.Fatalf("poisoned PTE kept tracking bits: %v", pte)
	}
}

func TestPoisonedPageFaultsOnTouch(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 4*tier.MB)
	v.Touch(0, false, 0)
	v.Place(0, 1)
	v.Poison(0)

	// An access to a poisoned page must fault (the SIGBUS analogue), and
	// ScanAndClear must treat it as non-resident.
	if _, fault := v.Touch(0, false, 0); !fault {
		t.Fatal("touching a poisoned page did not fault")
	}
	if v.ScanAndClear(0) {
		t.Fatal("ScanAndClear saw a poisoned page as resident")
	}
}

func TestClearPoisonAllowsRefault(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 4*tier.MB)
	v.Touch(0, false, 0)
	v.Place(0, 1)
	v.Poison(0)

	v.ClearPoison(0)
	if v.IsPoisoned(0) {
		t.Fatal("ClearPoison left the Poisoned bit set")
	}
	// Refault onto a healthy node: the page becomes an ordinary mapping.
	if _, fault := v.Touch(0, false, 0); !fault {
		t.Fatal("cleared page did not demand-fault")
	}
	v.Place(0, 0)
	if node, fault := v.Touch(0, false, 0); fault || node != 0 {
		t.Fatalf("refaulted page: node=%d fault=%v", node, fault)
	}
}
