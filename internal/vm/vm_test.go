package vm

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtm/internal/tier"
)

func TestAllocTHP(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("big", 10*tier.MB)
	if v.PageSize != HugePageSize {
		t.Fatalf("page size = %d, want huge", v.PageSize)
	}
	if v.NPages != 5 {
		t.Fatalf("pages = %d, want 5", v.NPages)
	}
	if v.Base%uint64(HugePageSize) != 0 {
		t.Fatalf("base %#x not huge-aligned", v.Base)
	}
	small := as.Alloc("small", 12*1024)
	if small.PageSize != BasePageSize {
		t.Fatalf("small VMA page size = %d, want 4K", small.PageSize)
	}
	if small.NPages != 3 {
		t.Fatalf("small pages = %d, want 3", small.NPages)
	}
}

func TestAllocTHPDisabled(t *testing.T) {
	as := NewAddressSpace()
	as.THP = false
	v := as.Alloc("big", 10*tier.MB)
	if v.PageSize != BasePageSize {
		t.Fatalf("page size = %d, want base with THP off", v.PageSize)
	}
}

func TestAllocRounding(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("x", HugePageSize+1)
	if v.Bytes() != 2*HugePageSize {
		t.Fatalf("bytes = %d, want 2 huge pages", v.Bytes())
	}
}

func TestAllocPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	NewAddressSpace().Alloc("zero", 0)
}

func TestLookup(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc("a", 4*tier.MB)
	b := as.Alloc("b", 4*tier.MB)
	if v, idx := as.Lookup(a.Addr(1)); v != a || idx != 1 {
		t.Fatalf("Lookup in a = (%v, %d)", v, idx)
	}
	if v, idx := as.Lookup(b.Addr(0) + 5); v != b || idx != 0 {
		t.Fatalf("Lookup in b = (%v, %d)", v, idx)
	}
	if v, _ := as.Lookup(a.End() + 1); v != nil {
		t.Fatalf("Lookup in gap = %v, want nil", v)
	}
	if v, _ := as.Lookup(0); v != nil {
		t.Fatalf("Lookup(0) = %v, want nil", v)
	}
}

func TestTouchSetsBits(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 4*tier.MB)
	if _, fault := v.Touch(0, false, 0); !fault {
		t.Fatal("touch of non-present page did not fault")
	}
	v.Place(0, 1)
	node, fault := v.Touch(0, false, 0)
	if fault || node != 1 {
		t.Fatalf("touch = (%d, %v)", node, fault)
	}
	if !v.PTE(0).Has(Accessed) {
		t.Fatal("accessed bit not set")
	}
	if v.PTE(0).Has(Dirty) {
		t.Fatal("dirty bit set by read")
	}
	v.Touch(0, true, 1)
	if !v.PTE(0).Has(Dirty) {
		t.Fatal("dirty bit not set by write")
	}
	if v.Count(0) != 2 || v.WriteCount(0) != 1 {
		t.Fatalf("counts = %d/%d, want 2/1", v.Count(0), v.WriteCount(0))
	}
	if v.LastSocket(0) != 1 {
		t.Fatalf("last socket = %d, want 1", v.LastSocket(0))
	}
}

func TestTouchNMatchesTouch(t *testing.T) {
	as := NewAddressSpace()
	a := as.Alloc("a", 2*tier.MB)
	b := as.Alloc("b", 2*tier.MB)
	a.Place(0, 0)
	b.Place(0, 0)
	for i := 0; i < 7; i++ {
		a.Touch(0, i%2 == 0, 0)
	}
	b.TouchN(0, 7, 4, 0)
	if a.Count(0) != b.Count(0) || a.WriteCount(0) != b.WriteCount(0) {
		t.Fatalf("TouchN mismatch: %d/%d vs %d/%d", a.Count(0), a.WriteCount(0), b.Count(0), b.WriteCount(0))
	}
	if a.PTE(0) != b.PTE(0) {
		t.Fatalf("PTE mismatch: %b vs %b", a.PTE(0), b.PTE(0))
	}
}

func TestScanAndClear(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	if v.ScanAndClear(0) {
		t.Fatal("scan of non-present page reported access")
	}
	v.Place(0, 0)
	if v.ScanAndClear(0) {
		t.Fatal("scan of untouched page reported access")
	}
	v.Touch(0, false, 0)
	if !v.ScanAndClear(0) {
		t.Fatal("scan after touch reported no access")
	}
	if v.ScanAndClear(0) {
		t.Fatal("second scan reported access: bit was not cleared")
	}
}

func TestDirtyTracking(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 0)
	v.Touch(0, true, 0)
	if !v.TestAndClearDirty(0) {
		t.Fatal("dirty not observed")
	}
	if v.TestAndClearDirty(0) {
		t.Fatal("dirty bit not cleared")
	}
	v.SetWriteProtect(0, true)
	if !v.PTE(0).Has(WriteProtect) {
		t.Fatal("write protect not set")
	}
	v.SetWriteProtect(0, false)
	if v.PTE(0).Has(WriteProtect) {
		t.Fatal("write protect not cleared")
	}
}

func TestUnmapPreservesTracking(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 2)
	v.Touch(0, true, 0)
	v.Unmap(0)
	if v.Present(0) {
		t.Fatal("page present after unmap")
	}
	if v.Node(0) != NoNode {
		t.Fatal("node not cleared by unmap")
	}
	if !v.PTE(0).Has(Dirty) {
		t.Fatal("unmap erased dirty tracking state")
	}
}

func TestResetCounts(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 4*tier.MB)
	v.Place(0, 0)
	v.TouchN(0, 5, 3, 0)
	as.ResetCounts()
	if v.Count(0) != 0 || v.WriteCount(0) != 0 {
		t.Fatal("counts not reset")
	}
	if !v.PTE(0).Has(Accessed) {
		t.Fatal("reset must not clear PTE bits (only scans do)")
	}
}

func TestObserveScansZeroForColdPage(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 0)
	rng := rand.New(rand.NewSource(1))
	if got := ObserveScans(v, 0, 3, 0.01, rng); got != 0 {
		t.Fatalf("ObserveScans on untouched page = %d", got)
	}
}

func TestObserveScansSaturatesForHotPage(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 0)
	v.TouchN(0, 100000, 0, 0)
	rng := rand.New(rand.NewSource(1))
	if got := ObserveScans(v, 0, 3, 0.01, rng); got != 3 {
		t.Fatalf("ObserveScans on very hot page = %d, want 3", got)
	}
}

func TestObserveScansDiscriminatesRates(t *testing.T) {
	as := NewAddressSpace()
	hot := as.Alloc("hot", 2*tier.MB)
	cold := as.Alloc("cold", 2*tier.MB)
	hot.Place(0, 0)
	cold.Place(0, 0)
	hot.TouchN(0, 2000, 0, 0)
	cold.TouchN(0, 50, 0, 0)
	rng := rand.New(rand.NewSource(42))
	var hotSum, coldSum int
	const trials = 200
	for i := 0; i < trials; i++ {
		hotSum += ObserveScans(hot, 0, 3, 0.003, rng)
		coldSum += ObserveScans(cold, 0, 3, 0.003, rng)
	}
	if hotSum <= coldSum {
		t.Fatalf("hot page not observed hotter: hot=%d cold=%d", hotSum, coldSum)
	}
	if float64(hotSum)/trials < 2.5 {
		t.Fatalf("hot page mean observation %f, want near 3", float64(hotSum)/trials)
	}
	if float64(coldSum)/trials > 1.5 {
		t.Fatalf("cold page mean observation %f, want well below hot", float64(coldSum)/trials)
	}
}

func TestObserveScansFullWindowIsBinary(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 0)
	v.TouchN(0, 1, 0, 0)
	rng := rand.New(rand.NewSource(1))
	// windowFrac 1 (AutoNUMA-style cleared-present-bit): any access at
	// all saturates the observation.
	if got := ObserveScans(v, 0, 2, 1.0, rng); got != 2 {
		t.Fatalf("full-window observation = %d, want 2", got)
	}
}

func TestObserveScansBounds(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 2*tier.MB)
	v.Place(0, 0)
	v.TouchN(0, 12345, 0, 0)
	rng := rand.New(rand.NewSource(7))
	f := func(numScans uint8, w float64) bool {
		n := int(numScans % 16)
		if w < 0 {
			w = -w
		}
		for w > 2 {
			w /= 10
		}
		got := ObserveScans(v, 0, n, w, rng)
		return got >= 0 && got <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPTEBits(t *testing.T) {
	var p PTE
	p = p.Set(Present | Huge)
	if !p.Has(Present) || !p.Has(Huge) || p.Has(Dirty) {
		t.Fatalf("bit ops wrong: %b", p)
	}
	p = p.Clear(Present)
	if p.Has(Present) || !p.Has(Huge) {
		t.Fatalf("clear wrong: %b", p)
	}
}

func TestVMAGeometry(t *testing.T) {
	as := NewAddressSpace()
	v := as.Alloc("v", 8*tier.MB)
	if v.PageOf(v.Addr(3)) != 3 {
		t.Fatal("Addr/PageOf not inverse")
	}
	if v.End() != v.Base+uint64(v.Bytes()) {
		t.Fatal("End mismatch")
	}
	if as.TotalBytes() != v.Bytes() {
		t.Fatal("TotalBytes mismatch")
	}
	if as.PresentBytes() != 0 {
		t.Fatal("PresentBytes should be 0 before faults")
	}
	v.Place(2, 0)
	if as.PresentBytes() != v.PageSize {
		t.Fatal("PresentBytes after one fault wrong")
	}
}

func TestVMAsDoNotOverlap(t *testing.T) {
	as := NewAddressSpace()
	var prevEnd uint64
	for i := 0; i < 20; i++ {
		v := as.Alloc("v", int64(i+1)*tier.MB)
		if v.Base < prevEnd {
			t.Fatalf("VMA %d overlaps previous", i)
		}
		prevEnd = v.End()
	}
}
