package vm

import "math/bits"

// WordPages is the number of pages covered by one bitmap word. Profiler
// sweeps read page state 64 pages at a time, so anything that wants to
// stay cache-friendly (shard boundaries, region carving) should align to
// this granularity where it can.
const WordPages = 64

// Bitmap is a flat per-VMA bit plane indexed by page number, 64 pages per
// word. The VMA keeps one plane per hot PTE flag (present, accessed,
// dirty) plus the ground-truth touched plane, so profiler scans are
// word-wide sweeps (bits.OnesCount64 over words, bits.TrailingZeros64 to
// visit set pages) instead of per-page PTE loads.
type Bitmap []uint64

// NewBitmap returns a zeroed bitmap covering n pages.
func NewBitmap(n int) Bitmap {
	return make(Bitmap, (n+WordPages-1)/WordPages)
}

// Test reports whether bit i is set.
func (b Bitmap) Test(i int) bool { return b[i>>6]&(1<<uint(i&63)) != 0 }

// Set sets bit i.
func (b Bitmap) Set(i int) { b[i>>6] |= 1 << uint(i&63) }

// Clear clears bit i.
func (b Bitmap) Clear(i int) { b[i>>6] &^= 1 << uint(i&63) }

// Word returns word w (pages [64w, 64w+64)).
func (b Bitmap) Word(w int) uint64 { return b[w] }

// Words returns the number of words.
func (b Bitmap) Words() int { return len(b) }

// ClearAll zeroes the bitmap (one memclr).
func (b Bitmap) ClearAll() { clear(b) }

// wordMask returns the mask selecting bits [lo, hi) of the word holding
// page lo, clamped to that word.
func rangeMasks(lo, hi int) (firstWord, lastWord int, firstMask, lastMask uint64) {
	firstWord, lastWord = lo>>6, (hi-1)>>6
	firstMask = ^uint64(0) << uint(lo&63)
	lastMask = ^uint64(0) >> uint(63-(hi-1)&63)
	return
}

// SetRange sets every bit in [lo, hi) via word-wide stores.
func (b Bitmap) SetRange(lo, hi int) {
	if lo >= hi {
		return
	}
	fw, lw, fm, lm := rangeMasks(lo, hi)
	if fw == lw {
		b[fw] |= fm & lm
		return
	}
	b[fw] |= fm
	for w := fw + 1; w < lw; w++ {
		b[w] = ^uint64(0)
	}
	b[lw] |= lm
}

// CountRange returns the number of set bits in [lo, hi) via word-wide
// popcounts.
func (b Bitmap) CountRange(lo, hi int) int {
	if lo >= hi {
		return 0
	}
	fw, lw, fm, lm := rangeMasks(lo, hi)
	if fw == lw {
		return bits.OnesCount64(b[fw] & fm & lm)
	}
	n := bits.OnesCount64(b[fw] & fm)
	for w := fw + 1; w < lw; w++ {
		n += bits.OnesCount64(b[w])
	}
	return n + bits.OnesCount64(b[lw]&lm)
}

// NextSet returns the index of the first set bit >= i, or -1 if none.
func (b Bitmap) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	w := i >> 6
	if w >= len(b) {
		return -1
	}
	if word := b[w] >> uint(i&63); word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(b); w++ {
		if b[w] != 0 {
			return w<<6 + bits.TrailingZeros64(b[w])
		}
	}
	return -1
}

// AnyRange reports whether any bit in [lo, hi) is set.
func (b Bitmap) AnyRange(lo, hi int) bool {
	if lo >= hi {
		return false
	}
	fw, lw, fm, lm := rangeMasks(lo, hi)
	if fw == lw {
		return b[fw]&fm&lm != 0
	}
	if b[fw]&fm != 0 {
		return true
	}
	for w := fw + 1; w < lw; w++ {
		if b[w] != 0 {
			return true
		}
	}
	return b[lw]&lm != 0
}

// RangeWord returns the bits of word w restricted to pages [lo, hi): the
// sweep primitive. Callers iterate set bits with bits.TrailingZeros64:
//
//	for w := lo >> 6; w <= (hi-1)>>6; w++ {
//		for word := b.RangeWord(w, lo, hi); word != 0; word &= word - 1 {
//			idx := w<<6 + bits.TrailingZeros64(word)
//			...
//		}
//	}
func (b Bitmap) RangeWord(w, lo, hi int) uint64 {
	word := b[w]
	if base := w << 6; base < lo {
		word &= ^uint64(0) << uint(lo-base)
	}
	if end := w<<6 + WordPages; end > hi {
		word &= ^uint64(0) >> uint(end-hi)
	}
	return word
}
