package vm

import (
	"fmt"

	"mtm/internal/tier"
)

// Page sizes supported by the simulator.
const (
	BasePageSize = 4 * tier.KB // 4 KB base page
	HugePageSize = 2 * tier.MB // 2 MB transparent huge page
	HugeRatio    = int(HugePageSize / BasePageSize)
)

// NoNode marks a page that has no physical frame yet (not present).
const NoNode = tier.Invalid

// VMA is one virtual memory area: a contiguous range of same-sized pages.
// With THP enabled (the paper's default) a VMA uses 2 MB huge pages; page
// indices then count 2 MB units.
//
// Per-page state is struct-of-arrays: the hot, scanned-every-interval PTE
// bits (present, accessed, dirty) live in flat Bitmap planes — 64 pages
// per word — while the cold flag bits (huge, write-protect, poisoned,
// reserved) stay in a parallel flag-byte array. PTE(idx) reconstructs the
// combined entry; profilers sweep the planes word-wide instead.
type VMA struct {
	Name     string
	Base     uint64 // starting virtual address, HugePageSize-aligned
	PageSize int64  // BasePageSize or HugePageSize
	NPages   int

	flags []PTE         // cold bits only: Huge, WriteProtect, Reserved11, Poisoned
	node  []tier.NodeID // physical placement; NoNode if not present

	// Hot PTE bit planes, maintained as invariants of every mutation:
	// present mirrors the Present bit, accessed/dirty mirror the MMU bits.
	present  Bitmap
	accessed Bitmap
	dirty    Bitmap

	// Ground truth access counts for the current profiling interval.
	// These are *not* visible to profilers (they only scan PTEs); the
	// simulator uses them to model what repeated scans would observe and
	// to compute recall/accuracy metrics against an oracle. touched is
	// the counts-plane summary (counts[i] > 0), letting oracle-backed
	// sweeps (ObserveScans, stats) skip untouched pages word-wide without
	// loading counters.
	counts  []uint32
	writes  []uint32
	touched Bitmap
	// lastSocket is the socket that issued the most recent access to the
	// page, backing the hint-fault "who touched it" channel (§6.2).
	lastSocket []int8

	// Shadow planes for non-exclusive tiering (nil until the first
	// MarkShadowed — runs without shadowing pay only a nil check in
	// TouchN). shadowAll marks pages whose old frame is retained as a
	// shadow copy; shadowValid marks the subset whose shadow is still
	// byte-identical to the page. A write clears validity (the fast copy
	// diverged) and fires onShadowWrite so the engine can count it.
	shadowAll   Bitmap
	shadowValid Bitmap
	// onShadowWrite, when non-nil, is called with the page index on the
	// write that invalidates a valid shadow (once per invalidation, not
	// per write).
	onShadowWrite func(idx int)
}

func newVMA(name string, base uint64, pageSize int64, nPages int) *VMA {
	v := &VMA{
		Name:       name,
		Base:       base,
		PageSize:   pageSize,
		NPages:     nPages,
		flags:      make([]PTE, nPages),
		node:       make([]tier.NodeID, nPages),
		present:    NewBitmap(nPages),
		accessed:   NewBitmap(nPages),
		dirty:      NewBitmap(nPages),
		counts:     make([]uint32, nPages),
		writes:     make([]uint32, nPages),
		touched:    NewBitmap(nPages),
		lastSocket: make([]int8, nPages),
	}
	for i := range v.node {
		v.node[i] = NoNode
	}
	if pageSize == HugePageSize {
		for i := range v.flags {
			v.flags[i] = Huge
		}
	}
	return v
}

// Bytes returns the size of the VMA in bytes.
func (v *VMA) Bytes() int64 { return int64(v.NPages) * v.PageSize }

// End returns the first address past the VMA.
func (v *VMA) End() uint64 { return v.Base + uint64(v.Bytes()) }

// Addr returns the virtual address of page idx.
func (v *VMA) Addr(idx int) uint64 { return v.Base + uint64(int64(idx)*v.PageSize) }

// PageOf returns the page index containing addr, which must lie in the VMA.
func (v *VMA) PageOf(addr uint64) int { return int((addr - v.Base) / uint64(v.PageSize)) }

// PTE reconstructs the page-table entry of page idx from the flag byte and
// the bit planes.
func (v *VMA) PTE(idx int) PTE {
	p := v.flags[idx]
	if v.present.Test(idx) {
		p |= Present
	}
	if v.accessed.Test(idx) {
		p |= Accessed
	}
	if v.dirty.Test(idx) {
		p |= Dirty
	}
	return p
}

// Node returns the memory node holding page idx, or NoNode.
func (v *VMA) Node(idx int) tier.NodeID { return v.node[idx] }

// Present reports whether page idx has a physical frame.
func (v *VMA) Present(idx int) bool { return v.present.Test(idx) }

// Words returns the number of 64-page bitmap words covering the VMA.
func (v *VMA) Words() int { return v.present.Words() }

// PresentWord returns word w of the present plane.
func (v *VMA) PresentWord(w int) uint64 { return v.present.Word(w) }

// AccessedWord returns word w of the accessed plane.
func (v *VMA) AccessedWord(w int) uint64 { return v.accessed.Word(w) }

// DirtyWord returns word w of the dirty plane.
func (v *VMA) DirtyWord(w int) uint64 { return v.dirty.Word(w) }

// TouchedWord returns word w of the ground-truth touched plane. Oracle
// code only; profilers must observe through PTE scans.
func (v *VMA) TouchedWord(w int) uint64 { return v.touched.Word(w) }

// Touched reports whether page idx was accessed this interval (ground
// truth; oracle code only).
func (v *VMA) Touched(idx int) bool { return v.touched.Test(idx) }

// ActiveWord returns the pages of word w that are both present and touched
// this interval — the pages a scan sweep can observe anything on.
func (v *VMA) ActiveWord(w int) uint64 { return v.present.Word(w) & v.touched.Word(w) }

// ActiveRangeWord returns ActiveWord(w) restricted to pages [lo, hi).
func (v *VMA) ActiveRangeWord(w, lo, hi int) uint64 {
	return v.present.RangeWord(w, lo, hi) & v.touched.Word(w)
}

// FirstPresent returns the lowest present page index in [lo, hi), or -1.
func (v *VMA) FirstPresent(lo, hi int) int {
	i := v.present.NextSet(lo)
	if i < 0 || i >= hi {
		return -1
	}
	return i
}

// PresentCount returns the number of present pages in [lo, hi) via
// word-wide popcounts.
func (v *VMA) PresentCount(lo, hi int) int { return v.present.CountRange(lo, hi) }

// PresentRangeWord returns the present pages of word w restricted to
// [lo, hi); see Bitmap.RangeWord for the iteration idiom.
func (v *VMA) PresentRangeWord(w, lo, hi int) uint64 { return v.present.RangeWord(w, lo, hi) }

// TouchedRangeWord returns the touched pages of word w restricted to
// [lo, hi). Oracle code only; profilers must observe through PTE scans.
func (v *VMA) TouchedRangeWord(w, lo, hi int) uint64 { return v.touched.RangeWord(w, lo, hi) }

// Place installs page idx on node n, marking it present. It is the
// allocator/migrator's entry point and does not touch access bits.
func (v *VMA) Place(idx int, n tier.NodeID) {
	v.node[idx] = n
	v.present.Set(idx)
}

// Unmap removes the frame of page idx (migration step 2). Access state is
// preserved so a remap continues tracking.
func (v *VMA) Unmap(idx int) {
	v.node[idx] = NoNode
	v.present.Clear(idx)
}

// Poison marks page idx as hit by an uncorrectable memory error, the
// analogue of Linux HWPOISON soft-offlining. The mapping is torn down
// (the frame is dead, not reusable), the access state is discarded with
// it, and the Poisoned bit is left so the next access takes a recovery
// fault rather than returning stale data.
func (v *VMA) Poison(idx int) {
	v.node[idx] = NoNode
	v.present.Clear(idx)
	v.accessed.Clear(idx)
	v.dirty.Clear(idx)
	v.touched.Clear(idx)
	v.flags[idx] = v.flags[idx].Clear(WriteProtect).Set(Poisoned)
	v.counts[idx] = 0
	v.writes[idx] = 0
	if v.shadowAll != nil {
		v.shadowAll.Clear(idx)
		v.shadowValid.Clear(idx)
	}
}

// IsPoisoned reports whether page idx carries a pending memory error.
func (v *VMA) IsPoisoned(idx int) bool { return v.flags[idx].Has(Poisoned) }

// ClearPoison acknowledges the memory error on page idx (the recovery
// fault handler ran); the page can then be placed on a fresh frame.
func (v *VMA) ClearPoison(idx int) {
	v.flags[idx] = v.flags[idx].Clear(Poisoned)
}

// Touch simulates one MMU access to page idx from the given socket,
// setting the accessed (and on write, dirty) bit and recording ground
// truth. It returns the node the access hit and whether the page faulted
// (not present): a faulting access records nothing and must be retried
// after the fault handler places the page.
func (v *VMA) Touch(idx int, write bool, socket int) (tier.NodeID, bool) {
	var nw uint32
	if write {
		nw = 1
	}
	return v.TouchN(idx, 1, nw, socket)
}

// TouchN simulates n accesses (nw of them writes) to page idx from the
// given socket in one call; it is the batched fast path for workload
// generators. Semantics match n calls to Touch.
func (v *VMA) TouchN(idx int, n, nw uint32, socket int) (tier.NodeID, bool) {
	if !v.present.Test(idx) {
		return NoNode, true
	}
	v.accessed.Set(idx)
	v.touched.Set(idx)
	if nw > 0 {
		v.dirty.Set(idx)
		if v.shadowValid != nil && v.shadowValid.Test(idx) {
			v.shadowValid.Clear(idx)
			if v.onShadowWrite != nil {
				v.onShadowWrite(idx)
			}
		}
	}
	v.counts[idx] += n
	v.writes[idx] += nw
	v.lastSocket[idx] = int8(socket)
	return v.node[idx], false
}

// Count returns the ground-truth access count of page idx this interval.
// Only the oracle/metrics layer may call this; profilers must not.
func (v *VMA) Count(idx int) uint32 { return v.counts[idx] }

// WriteCount returns the ground-truth write count of page idx this interval.
func (v *VMA) WriteCount(idx int) uint32 { return v.writes[idx] }

// LastSocket returns the socket of the most recent access to page idx.
func (v *VMA) LastSocket(idx int) int { return int(v.lastSocket[idx]) }

// ResetCounts zeroes the ground-truth counters at an interval boundary.
func (v *VMA) ResetCounts() {
	clear(v.counts)
	clear(v.writes)
	v.touched.ClearAll()
}

// ScanAndClear performs one PTE scan of page idx: it returns whether the
// accessed bit was set and clears it, exactly the primitive DAMON-style
// profilers are built on. Scanning a non-present page returns false.
func (v *VMA) ScanAndClear(idx int) bool {
	if !v.present.Test(idx) {
		return false
	}
	set := v.accessed.Test(idx)
	v.accessed.Clear(idx)
	return set
}

// TestAndClearDirty returns whether the dirty bit was set and clears it.
func (v *VMA) TestAndClearDirty(idx int) bool {
	set := v.dirty.Test(idx)
	v.dirty.Clear(idx)
	return set
}

// MarkShadowed records that page idx has a retained, currently-valid
// shadow copy, installing fn as the write-invalidation hook. The planes
// are allocated lazily on first use; fn is shared per VMA (the engine
// passes the same closure every time) and must not be nil.
func (v *VMA) MarkShadowed(idx int, fn func(idx int)) {
	if v.shadowAll == nil {
		v.shadowAll = NewBitmap(v.NPages)
		v.shadowValid = NewBitmap(v.NPages)
	}
	v.onShadowWrite = fn
	v.shadowAll.Set(idx)
	v.shadowValid.Set(idx)
}

// ClearShadowed forgets the shadow of page idx (dropped or consumed).
func (v *VMA) ClearShadowed(idx int) {
	if v.shadowAll == nil {
		return
	}
	v.shadowAll.Clear(idx)
	v.shadowValid.Clear(idx)
}

// Shadowed reports whether page idx has a retained shadow copy (valid or
// stale).
func (v *VMA) Shadowed(idx int) bool { return v.shadowAll != nil && v.shadowAll.Test(idx) }

// ShadowValid reports whether page idx has a shadow copy that is still
// byte-identical to the page (no write since retention/revalidation).
func (v *VMA) ShadowValid(idx int) bool { return v.shadowValid != nil && v.shadowValid.Test(idx) }

// RevalidateShadow marks the shadow of page idx byte-identical again
// (after a background re-sync copied the dirty page back). No-op if the
// page is not shadowed.
func (v *VMA) RevalidateShadow(idx int) {
	if v.shadowAll != nil && v.shadowAll.Test(idx) {
		v.shadowValid.Set(idx)
	}
}

// HasShadows reports whether any page of the VMA ever grew a shadow plane
// (cheap pre-filter for sweeps).
func (v *VMA) HasShadows() bool { return v.shadowAll != nil }

// ShadowedWord returns word w of the shadowed plane (0 when no page was
// ever shadowed).
func (v *VMA) ShadowedWord(w int) uint64 {
	if v.shadowAll == nil {
		return 0
	}
	return v.shadowAll.Word(w)
}

// ShadowValidRangeWord returns the valid-shadow pages of word w restricted
// to [lo, hi).
func (v *VMA) ShadowValidRangeWord(w, lo, hi int) uint64 {
	if v.shadowValid == nil {
		return 0
	}
	return v.shadowValid.RangeWord(w, lo, hi)
}

// ShadowStaleWord returns the pages of word w whose shadow exists but has
// diverged (shadowed AND NOT valid) — the background re-sync work list.
func (v *VMA) ShadowStaleWord(w int) uint64 {
	if v.shadowAll == nil {
		return 0
	}
	return v.shadowAll.Word(w) &^ v.shadowValid.Word(w)
}

// ShadowedCount returns the number of shadowed pages (audit use).
func (v *VMA) ShadowedCount() int {
	if v.shadowAll == nil {
		return 0
	}
	return v.shadowAll.CountRange(0, v.NPages)
}

// SetWriteProtect arms or disarms write-protection on page idx.
func (v *VMA) SetWriteProtect(idx int, on bool) {
	if on {
		v.flags[idx] = v.flags[idx].Set(WriteProtect)
	} else {
		v.flags[idx] = v.flags[idx].Clear(WriteProtect)
	}
}

func (v *VMA) String() string {
	return fmt.Sprintf("VMA{%s %#x+%dMB page=%dKB}", v.Name, v.Base, v.Bytes()/tier.MB, v.PageSize/tier.KB)
}
