package vm

import (
	"fmt"

	"mtm/internal/tier"
)

// Page sizes supported by the simulator.
const (
	BasePageSize = 4 * tier.KB // 4 KB base page
	HugePageSize = 2 * tier.MB // 2 MB transparent huge page
	HugeRatio    = int(HugePageSize / BasePageSize)
)

// NoNode marks a page that has no physical frame yet (not present).
const NoNode = tier.Invalid

// VMA is one virtual memory area: a contiguous range of same-sized pages.
// With THP enabled (the paper's default) a VMA uses 2 MB huge pages; page
// indices then count 2 MB units. All per-page state is stored in parallel
// slices indexed by page number within the VMA.
type VMA struct {
	Name     string
	Base     uint64 // starting virtual address, HugePageSize-aligned
	PageSize int64  // BasePageSize or HugePageSize
	NPages   int

	ptes []PTE
	node []tier.NodeID // physical placement; NoNode if not present

	// Ground truth access counts for the current profiling interval.
	// These are *not* visible to profilers (they only scan PTEs); the
	// simulator uses them to model what repeated scans would observe and
	// to compute recall/accuracy metrics against an oracle.
	counts []uint32
	writes []uint32
	// lastSocket is the socket that issued the most recent access to the
	// page, backing the hint-fault "who touched it" channel (§6.2).
	lastSocket []int8
}

func newVMA(name string, base uint64, pageSize int64, nPages int) *VMA {
	v := &VMA{
		Name:       name,
		Base:       base,
		PageSize:   pageSize,
		NPages:     nPages,
		ptes:       make([]PTE, nPages),
		node:       make([]tier.NodeID, nPages),
		counts:     make([]uint32, nPages),
		writes:     make([]uint32, nPages),
		lastSocket: make([]int8, nPages),
	}
	for i := range v.node {
		v.node[i] = NoNode
	}
	if pageSize == HugePageSize {
		for i := range v.ptes {
			v.ptes[i] = Huge
		}
	}
	return v
}

// Bytes returns the size of the VMA in bytes.
func (v *VMA) Bytes() int64 { return int64(v.NPages) * v.PageSize }

// End returns the first address past the VMA.
func (v *VMA) End() uint64 { return v.Base + uint64(v.Bytes()) }

// Addr returns the virtual address of page idx.
func (v *VMA) Addr(idx int) uint64 { return v.Base + uint64(int64(idx)*v.PageSize) }

// PageOf returns the page index containing addr, which must lie in the VMA.
func (v *VMA) PageOf(addr uint64) int { return int((addr - v.Base) / uint64(v.PageSize)) }

// PTE returns the page-table entry of page idx.
func (v *VMA) PTE(idx int) PTE { return v.ptes[idx] }

// Node returns the memory node holding page idx, or NoNode.
func (v *VMA) Node(idx int) tier.NodeID { return v.node[idx] }

// Present reports whether page idx has a physical frame.
func (v *VMA) Present(idx int) bool { return v.ptes[idx].Has(Present) }

// Place installs page idx on node n, marking it present. It is the
// allocator/migrator's entry point and does not touch access bits.
func (v *VMA) Place(idx int, n tier.NodeID) {
	v.node[idx] = n
	v.ptes[idx] = v.ptes[idx].Set(Present)
}

// Unmap removes the frame of page idx (migration step 2). Access state is
// preserved so a remap continues tracking.
func (v *VMA) Unmap(idx int) {
	v.node[idx] = NoNode
	v.ptes[idx] = v.ptes[idx].Clear(Present)
}

// Poison marks page idx as hit by an uncorrectable memory error, the
// analogue of Linux HWPOISON soft-offlining. The mapping is torn down
// (the frame is dead, not reusable), the access state is discarded with
// it, and the Poisoned bit is left so the next access takes a recovery
// fault rather than returning stale data.
func (v *VMA) Poison(idx int) {
	v.node[idx] = NoNode
	v.ptes[idx] = v.ptes[idx].Clear(Present | Accessed | Dirty | WriteProtect).Set(Poisoned)
	v.counts[idx] = 0
	v.writes[idx] = 0
}

// IsPoisoned reports whether page idx carries a pending memory error.
func (v *VMA) IsPoisoned(idx int) bool { return v.ptes[idx].Has(Poisoned) }

// ClearPoison acknowledges the memory error on page idx (the recovery
// fault handler ran); the page can then be placed on a fresh frame.
func (v *VMA) ClearPoison(idx int) {
	v.ptes[idx] = v.ptes[idx].Clear(Poisoned)
}

// Touch simulates one MMU access to page idx from the given socket,
// setting the accessed (and on write, dirty) bit and recording ground
// truth. It returns the node the access hit and whether the page faulted
// (not present): a faulting access records nothing and must be retried
// after the fault handler places the page.
func (v *VMA) Touch(idx int, write bool, socket int) (tier.NodeID, bool) {
	if !v.ptes[idx].Has(Present) {
		return NoNode, true
	}
	p := v.ptes[idx].Set(Accessed)
	if write {
		p = p.Set(Dirty)
	}
	v.ptes[idx] = p
	v.counts[idx]++
	if write {
		v.writes[idx]++
	}
	v.lastSocket[idx] = int8(socket)
	return v.node[idx], false
}

// TouchN simulates n accesses (nw of them writes) to page idx from the
// given socket in one call; it is the batched fast path for workload
// generators. Semantics match n calls to Touch.
func (v *VMA) TouchN(idx int, n, nw uint32, socket int) (tier.NodeID, bool) {
	if !v.ptes[idx].Has(Present) {
		return NoNode, true
	}
	p := v.ptes[idx].Set(Accessed)
	if nw > 0 {
		p = p.Set(Dirty)
	}
	v.ptes[idx] = p
	v.counts[idx] += n
	v.writes[idx] += nw
	v.lastSocket[idx] = int8(socket)
	return v.node[idx], false
}

// Count returns the ground-truth access count of page idx this interval.
// Only the oracle/metrics layer may call this; profilers must not.
func (v *VMA) Count(idx int) uint32 { return v.counts[idx] }

// WriteCount returns the ground-truth write count of page idx this interval.
func (v *VMA) WriteCount(idx int) uint32 { return v.writes[idx] }

// LastSocket returns the socket of the most recent access to page idx.
func (v *VMA) LastSocket(idx int) int { return int(v.lastSocket[idx]) }

// ResetCounts zeroes the ground-truth counters at an interval boundary.
func (v *VMA) ResetCounts() {
	clear(v.counts)
	clear(v.writes)
}

// ScanAndClear performs one PTE scan of page idx: it returns whether the
// accessed bit was set and clears it, exactly the primitive DAMON-style
// profilers are built on. Scanning a non-present page returns false.
func (v *VMA) ScanAndClear(idx int) bool {
	p := v.ptes[idx]
	if !p.Has(Present) {
		return false
	}
	set := p.Has(Accessed)
	v.ptes[idx] = p.Clear(Accessed)
	return set
}

// TestAndClearDirty returns whether the dirty bit was set and clears it.
func (v *VMA) TestAndClearDirty(idx int) bool {
	p := v.ptes[idx]
	set := p.Has(Dirty)
	v.ptes[idx] = p.Clear(Dirty)
	return set
}

// SetWriteProtect arms or disarms write-protection on page idx.
func (v *VMA) SetWriteProtect(idx int, on bool) {
	if on {
		v.ptes[idx] = v.ptes[idx].Set(WriteProtect)
	} else {
		v.ptes[idx] = v.ptes[idx].Clear(WriteProtect)
	}
}

func (v *VMA) String() string {
	return fmt.Sprintf("VMA{%s %#x+%dMB page=%dKB}", v.Name, v.Base, v.Bytes()/tier.MB, v.PageSize/tier.KB)
}
