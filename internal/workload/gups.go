package workload

import (
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// GUPS is the Giga-Updates-Per-Second kernel (Table 2): random updates to
// a large table where 20% of the footprint, the hot set, receives 80% of
// the accesses (§9.3). The three data objects of Figure 6 live in one
// heap VMA, exactly as a malloc'd process image would lay them out: the
// index array ("A"), the hot-set descriptor ("B"), and the table whose
// hot blocks form "C". Keeping them in one VMA matters for the DAMON
// comparison: DAMON's initial regions come from the VMA tree, so objects
// inside a large heap are invisible to it until enough random splits
// happen to isolate them.
type GUPS struct {
	base

	// TableBytes is the update table footprint (512 GB / scale default).
	TableBytes int64
	// HotFrac is the hot share of the table (0.20).
	HotFrac float64
	// HotAccessFrac is the access share the hot set receives (0.80).
	HotAccessFrac float64
	// EpochOps is the update count between full hot-set re-draws; 0
	// disables them (the profiling-variance experiments enable them).
	EpochOps int64
	// DriftOps is the update count between single-block drifts: one hot
	// block moves to a random location, so the hot set turns over
	// gradually — the temporal variance of §9.3 at a rate a migrating
	// policy can track but a static placement cannot. 0 disables drift.
	DriftOps int64
	// batch is the op-aggregation factor for access batching.
	batch int64

	heap       *vm.VMA
	indexPages int // heap prefix: A
	infoPages  int // heap suffix: B
	tableStart int // first table page (C lives here)
	infoStart  int // first page of B, after the table

	hotBlocks  []int // block start pages, table-relative
	blockPages int
	hotPages   []int32 // flattened hot page list, table-relative
	isHot      []bool  // per table page
	epochLeft  int64
	driftLeft  int64
	nextDrift  int
}

// NewGUPS builds GUPS with the paper's 512 GB working set divided by the
// configured scale.
func NewGUPS(cfg Config) *GUPS {
	g := &GUPS{
		TableBytes:    512 * GB / cfg.scale(),
		HotFrac:       0.20,
		HotAccessFrac: 0.80,
		batch:         8,
	}
	g.name = "GUPS"
	g.readFrac = 0.5
	g.totalOps = cfg.ops(2e10)
	// The hot set drifts one block at a time (half the hot set turns
	// over across a full run — slow enough for a migrating policy to
	// track, fast enough to strand a static placement); the
	// profiling-variance experiments of Figures 1 and 6 use EpochOps
	// for abrupt re-draws instead.
	g.DriftOps = g.totalOps / 16
	return g
}

// NewGUPSSized builds a GUPS with an explicit table size and update
// count; the two-tier HeMem comparison (Figure 12) sweeps the size.
func NewGUPSSized(tableBytes, totalOps int64) *GUPS {
	g := &GUPS{
		TableBytes:    tableBytes,
		HotFrac:       0.20,
		HotAccessFrac: 0.80,
		batch:         8,
	}
	g.name = "GUPS"
	g.readFrac = 0.5
	g.totalOps = totalOps
	return g
}

func (g *GUPS) Init(e *sim.Engine) {
	// One heap, allocation order [A: index][C: table][B: hot-set info]:
	// the small hot descriptor B sits deep inside the address space, far
	// from A, which is what makes coarse region formation miss it
	// (Figure 6).
	indexBytes := maxI64(g.TableBytes/50, 4*MB)
	infoBytes := int64(4 * MB)
	g.heap = e.AS.Alloc("gups.heap", indexBytes+infoBytes+g.TableBytes)
	g.indexPages = int(indexBytes / g.heap.PageSize)
	g.infoPages = int(infoBytes / g.heap.PageSize)
	g.tableStart = g.indexPages
	g.infoStart = g.heap.NPages - g.infoPages
	g.isHot = make([]bool, g.tablePages())
	g.drawHotSet(e)
	initTouch(e, g.heap)
}

func (g *GUPS) tablePages() int { return g.infoStart - g.tableStart }

// Heap returns the single heap VMA.
func (g *GUPS) Heap() *vm.VMA { return g.heap }

// TableRange returns the heap page range [start, end) of the table.
func (g *GUPS) TableRange() (start, end int) { return g.tableStart, g.infoStart }

// Object classifies a heap page as one of Figure 6's objects: 'A' (index
// array), 'B' (hot-set descriptor), 'C' (current hot blocks), or ' ' for
// cold table pages. Pages of other VMAs return 0.
func (g *GUPS) Object(v *vm.VMA, idx int) byte {
	if v != g.heap {
		return 0
	}
	switch {
	case idx < g.indexPages:
		return 'A'
	case idx >= g.infoStart:
		return 'B'
	case g.isHot[idx-g.tableStart]:
		return 'C'
	}
	return ' '
}

// drawHotSet picks the hot 20% of the table as 32 contiguous page blocks
// at random positions — spatial structure a region-based profiler can
// discover, with enough dispersion to punish coarse regions.
func (g *GUPS) drawHotSet(e *sim.Engine) {
	const blocks = 32
	total := int(float64(g.tablePages()) * g.HotFrac)
	if total < blocks {
		total = blocks
	}
	g.blockPages = total / blocks
	g.hotBlocks = g.hotBlocks[:0]
	for b := 0; b < blocks; b++ {
		g.hotBlocks = append(g.hotBlocks, e.Rng.Intn(maxInt(g.tablePages()-g.blockPages, 1)))
	}
	g.rebuildHotPages()
	g.epochLeft = g.EpochOps
	g.driftLeft = g.DriftOps
}

// rebuildHotPages re-derives the page set from the block list (blocks may
// overlap; 32 blocks keep this cheap).
func (g *GUPS) rebuildHotPages() {
	for p := range g.isHot {
		g.isHot[p] = false
	}
	g.hotPages = g.hotPages[:0]
	for _, b := range g.hotBlocks {
		for p := b; p < b+g.blockPages && p < g.tablePages(); p++ {
			if !g.isHot[p] {
				g.isHot[p] = true
				g.hotPages = append(g.hotPages, int32(p))
			}
		}
	}
}

// driftOneBlock relocates the next hot block to a random position.
func (g *GUPS) driftOneBlock(e *sim.Engine) {
	if len(g.hotBlocks) == 0 {
		return
	}
	i := g.nextDrift % len(g.hotBlocks)
	g.nextDrift++
	g.hotBlocks[i] = e.Rng.Intn(maxInt(g.tablePages()-g.blockPages, 1))
	g.rebuildHotPages()
	g.driftLeft = g.DriftOps
}

// IsHot reports ground truth for profiling-quality experiments: whether a
// heap page is currently hot. A and B are hot by construction.
func (g *GUPS) IsHot(v *vm.VMA, idx int) bool {
	o := g.Object(v, idx)
	return o != 0 && o != ' '
}

// HotFootprintBytes is the current hot-set size including A and B.
func (g *GUPS) HotFootprintBytes() int64 {
	return int64(len(g.hotPages)+g.indexPages+g.infoPages) * g.heap.PageSize
}

func (g *GUPS) RunInterval(e *sim.Engine) {
	socket := e.HomeSocket
	b := uint32(g.batch)
	for !e.IntervalExhausted() && !g.Done() {
		// One chunk of opChunk updates, issued as batched page draws.
		draws := int64(opChunk) / g.batch
		for d := int64(0); d < draws; d++ {
			// Index array A: one read per update.
			e.Access(g.heap, e.Rng.Intn(g.indexPages), b, 0, socket)
			// Hot-set descriptor B: read once per batch.
			e.Access(g.heap, g.infoStart+e.Rng.Intn(g.infoPages), 1, 0, socket)
			// The update itself: read + write of a random table slot,
			// hot with probability HotAccessFrac.
			var pg int
			if e.Rng.Float64() < g.HotAccessFrac && len(g.hotPages) > 0 {
				pg = int(g.hotPages[e.Rng.Intn(len(g.hotPages))])
			} else {
				pg = e.Rng.Intn(g.tablePages())
			}
			e.Access(g.heap, g.tableStart+pg, 2*b, b, socket)
		}
		g.doneOps += opChunk
		if g.EpochOps > 0 {
			g.epochLeft -= opChunk
			if g.epochLeft <= 0 {
				g.drawHotSet(e)
			}
		}
		if g.DriftOps > 0 {
			g.driftLeft -= opChunk
			if g.driftLeft <= 0 {
				g.driftOneBlock(e)
			}
		}
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
