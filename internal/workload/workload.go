// Package workload implements the six large-memory applications of
// Table 2 as page-level access generators and algorithm kernels over the
// simulated address space: GUPS, VoltDB/TPC-C, Cassandra/YCSB-A, BFS,
// SSSP, and Spark TeraSort.
//
// Footprints, read:write mixes and hot-set shapes follow the paper; sizes
// are divided by a uniform scale factor (shared with the tier capacities)
// so runs stay laptop-sized while every capacity ratio — the thing
// placement policies actually react to — is preserved.
package workload

import (
	"math/rand"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// DefaultScale divides the paper's terabyte-scale footprints and the
// machine's capacities; 64 turns the 1.7 TB testbed into ~27 GB.
const DefaultScale = 64

// Config is shared workload sizing.
type Config struct {
	// Scale divides the paper's footprint (and must match the topology
	// scale so footprint:capacity ratios hold).
	Scale int64
	// OpsFactor scales total work; 1.0 approximates the paper's runtime
	// divided by Scale. Benches shrink it further for quick runs.
	OpsFactor float64
}

// DefaultConfig returns the standard scaling.
func DefaultConfig() Config { return Config{Scale: DefaultScale, OpsFactor: 1.0} }

func (c Config) scale() int64 {
	if c.Scale <= 0 {
		return DefaultScale
	}
	return c.Scale
}

func (c Config) ops(base int64) int64 {
	f := c.OpsFactor
	if f <= 0 {
		f = 1
	}
	n := int64(float64(base) * f / float64(c.scale()))
	if n < 1 {
		n = 1
	}
	return n
}

// base carries the bookkeeping every workload shares.
type base struct {
	name     string
	readFrac float64
	totalOps int64
	doneOps  int64
}

func (b *base) Name() string          { return b.name }
func (b *base) Done() bool            { return b.doneOps >= b.totalOps }
func (b *base) ReadFraction() float64 { return b.readFrac }

// TotalOps reports the workload's configured operation count.
func (b *base) TotalOps() int64 { return b.totalOps }

// Progress reports completed work in [0, 1].
func (b *base) Progress() float64 {
	if b.totalOps == 0 {
		return 1
	}
	p := float64(b.doneOps) / float64(b.totalOps)
	if p > 1 {
		p = 1
	}
	return p
}

// opChunk is how many operations a workload issues between
// IntervalExhausted checks.
const opChunk = 2048

// pageOf maps a byte offset within a VMA to its page index.
func pageOf(v *vm.VMA, off int64) int { return int(off / v.PageSize) }

// touchRange issues batched accesses covering bytes [off, off+n) of v:
// one Access per simulated page touched, with the element count that
// falls on that page. It models a sequential scan of n bytes in elemSize
// strides.
func touchRange(e *sim.Engine, v *vm.VMA, off, n int64, elemSize int64, write bool, socket int) {
	if elemSize <= 0 {
		elemSize = 8
	}
	end := off + n
	for off < end {
		pg := pageOf(v, off)
		pgEnd := (int64(pg) + 1) * v.PageSize
		if pgEnd > end {
			pgEnd = end
		}
		cnt := (pgEnd - off + elemSize - 1) / elemSize
		var w uint32
		if write {
			w = uint32(cnt)
		}
		e.Access(v, pg, uint32(cnt), w, socket)
		off = pgEnd
	}
}

// hash64 is SplitMix64: a fast, well-distributed hash for implicit data
// structures (synthetic graphs, key placement).
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// zipfSampler wraps rand.Zipf with YCSB's default skew.
type zipfSampler struct{ z *rand.Zipf }

func newZipf(rng *rand.Rand, n uint64) *zipfSampler {
	if n < 2 {
		n = 2
	}
	// YCSB's zipfian constant is 0.99; rand.Zipf's s must be > 1, so use
	// the standard 1.01 approximation with v=1.
	return &zipfSampler{z: rand.NewZipf(rng, 1.07, 1, n-1)}
}

func (z *zipfSampler) Next() uint64 { return z.z.Uint64() }

// initTouch sequentially faults in and writes an entire VMA, modelling
// the data-structure initialisation phase real applications run at
// startup (loading a table, building a graph, memset-ing a heap). This is
// what makes first-touch placement *address-ordered*: the pages that land
// in the fast tiers are whichever the init loop touched first, not the
// ones the steady state will hammer. Ground-truth counters are reset
// afterwards so the first profiling interval sees steady-state traffic
// only.
func initTouch(e *sim.Engine, vmas ...*vm.VMA) {
	for _, v := range vmas {
		for pg := 0; pg < v.NPages; pg++ {
			e.Access(v, pg, 1, 1, e.HomeSocket)
		}
	}
	e.AS.ResetCounts()
}

// GB and MB re-export the tier units for concise sizing literals.
const (
	GB = tier.GB
	MB = tier.MB
)
