package workload

import (
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// Spark models the TeraSort arm of Table 2: a Spark job sorting 350 GB
// (scaled). The job runs the classic phases, each with a distinct access
// pattern, so the hot set *moves* through the address space over time —
// the property that punishes slow-reacting profilers:
//
//	read:    sequential scan of the input partitions
//	shuffle: input read + scattered append into shuffle buckets
//	sort:    bucket-at-a-time random access (a hot window that marches
//	         across the shuffle space)
//	write:   sequential output
type Spark struct {
	base

	InputBytes int64
	Buckets    int

	input, shuffle, output *vm.VMA

	phase       int // 0 read, 1 shuffle, 2 sort, 3 write
	phaseOps    [4]int64
	phaseDone   [4]int64
	readCursor  int64
	bucketFill  []int64
	sortBucket  int
	sortOps     int64
	writeCursor int64
	recBytes    int64
}

// NewSpark sizes TeraSort to the paper's 350 GB footprint.
func NewSpark(cfg Config) *Spark {
	s := &Spark{
		InputBytes: 150 * GB / cfg.scale(),
		Buckets:    32,
		recBytes:   100, // TeraSort records are 100 bytes
	}
	s.name = "Spark"
	s.readFrac = 0.5
	records := s.InputBytes / s.recBytes
	// Phase op counts: one pass to read, one to shuffle, several passes
	// to sort (multi-pass merge: compare + move), one to write.
	f := cfg.OpsFactorOrOne()
	s.phaseOps = [4]int64{
		int64(float64(records) * f),
		int64(float64(records) * f),
		int64(float64(records) * 4 * f),
		int64(float64(records) * f),
	}
	for _, n := range s.phaseOps {
		s.totalOps += n
	}
	return s
}

func (s *Spark) Init(e *sim.Engine) {
	s.input = e.AS.Alloc("spark.input", s.InputBytes)
	s.shuffle = e.AS.Alloc("spark.shuffle", s.InputBytes)
	s.output = e.AS.Alloc("spark.output", s.InputBytes)
	s.bucketFill = make([]int64, s.Buckets)
	initTouch(e, s.input)
}

func (s *Spark) bucketBytes() int64 { return s.shuffle.Bytes() / int64(s.Buckets) }

func (s *Spark) RunInterval(e *sim.Engine) {
	socket := e.HomeSocket
	for !e.IntervalExhausted() && !s.Done() {
		n := int64(opChunk)
		switch s.phase {
		case 0: // sequential read of the input
			touchRange(e, s.input, s.readCursor%s.input.Bytes(), n*s.recBytes, s.recBytes, false, socket)
			s.readCursor += n * s.recBytes
		case 1: // shuffle: read input, append to a key-chosen bucket
			touchRange(e, s.input, s.readCursor%s.input.Bytes(), n*s.recBytes, s.recBytes, false, socket)
			s.readCursor += n * s.recBytes
			per := n / 8
			for i := 0; i < 8; i++ {
				b := e.Rng.Intn(s.Buckets)
				off := int64(b)*s.bucketBytes() + s.bucketFill[b]%s.bucketBytes()
				e.Access(s.shuffle, pageOf(s.shuffle, off), uint32(per), uint32(per), socket)
				s.bucketFill[b] += per * s.recBytes
			}
		case 2: // sort: random access within the current bucket
			bb := s.bucketBytes()
			base := int64(s.sortBucket) * bb
			for i := int64(0); i < n; i += 16 {
				off := base + int64(e.Rng.Int63n(bb))
				e.Access(s.shuffle, pageOf(s.shuffle, off), 16, 8, socket)
			}
			s.sortOps += n
			if s.sortOps >= s.phaseOps[2]/int64(s.Buckets) {
				s.sortOps = 0
				s.sortBucket = (s.sortBucket + 1) % s.Buckets
			}
		case 3: // sequential write of the sorted output
			touchRange(e, s.output, s.writeCursor%s.output.Bytes(), n*s.recBytes, s.recBytes, true, socket)
			s.writeCursor += n * s.recBytes
		}
		s.phaseDone[s.phase] += n
		s.doneOps += n
		if s.phaseDone[s.phase] >= s.phaseOps[s.phase] && s.phase < 3 {
			s.phase++
		}
	}
}
