package workload

import (
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// VoltDB models the in-memory database arm of Table 2: VoltDB running
// TPC-C with 5000 warehouses (scaled). The schema keeps TPC-C's shape —
// tiny hot warehouse/district/item tables, large customer and stock
// tables, and append-only order/history regions — and the client model
// keeps its locality: each client has a home warehouse receiving most of
// its transactions, with homes re-assigned periodically so the hot set
// drifts (the workload property §6.1's EMA exists to track).
type VoltDB struct {
	base

	Warehouses int
	Clients    int
	// HomeFrac is the share of a client's transactions against its home
	// warehouse.
	HomeFrac float64
	// ReassignOps re-draws client home warehouses every so many
	// transactions (0 disables).
	ReassignOps int64

	warehouse, district, item     *vm.VMA
	customer, stock, orders, hist *vm.VMA
	custPerWh, stockPerWh         int64 // bytes per warehouse in each table
	homes                         []int
	orderCursor                   int64
	reassignLeft                  int64
}

// NewVoltDB sizes the database to the paper's 300 GB TPC-C instance
// divided by the scale.
func NewVoltDB(cfg Config) *VoltDB {
	w := &VoltDB{
		Warehouses:  int(5000 / cfg.scale()),
		Clients:     8,
		HomeFrac:    0.75,
		ReassignOps: cfg.ops(3.5e9) / 6,
	}
	if w.Warehouses < 16 {
		w.Warehouses = 16
	}
	w.name = "VoltDB"
	w.readFrac = 0.5
	w.totalOps = cfg.ops(3.5e9) // transactions
	return w
}

func (w *VoltDB) Init(e *sim.Engine) {
	scale := int64(w.Warehouses)
	// Footprint split mirrors TPC-C's row populations: customer and
	// stock dominate; orders/history grow but are modelled at steady
	// state; warehouse/district/item stay resident-hot.
	w.customer = e.AS.Alloc("tpcc.customer", 24*MB*scale)
	w.stock = e.AS.Alloc("tpcc.stock", 30*MB*scale)
	w.orders = e.AS.Alloc("tpcc.orders", 6*MB*scale)
	w.hist = e.AS.Alloc("tpcc.history", 2*MB*scale)
	w.warehouse = e.AS.Alloc("tpcc.warehouse", maxI64(scale*4096, 2*MB))
	w.district = e.AS.Alloc("tpcc.district", maxI64(scale*40*1024, 2*MB))
	w.item = e.AS.Alloc("tpcc.item", 16*MB)
	w.custPerWh = w.customer.Bytes() / scale
	w.stockPerWh = w.stock.Bytes() / scale
	w.homes = make([]int, w.Clients)
	w.assignHomes(e)
	initTouch(e, w.customer, w.stock, w.orders, w.hist, w.warehouse, w.district, w.item)
}

func (w *VoltDB) assignHomes(e *sim.Engine) {
	for i := range w.homes {
		w.homes[i] = e.Rng.Intn(w.Warehouses)
	}
	w.reassignLeft = w.ReassignOps
}

// Footprint VMAs for experiments that inspect placement.
func (w *VoltDB) Customer() *vm.VMA { return w.customer }
func (w *VoltDB) Stock() *vm.VMA    { return w.stock }

func (w *VoltDB) RunInterval(e *sim.Engine) {
	socket := e.HomeSocket
	for !e.IntervalExhausted() && !w.Done() {
		for i := 0; i < opChunk; i++ {
			w.transaction(e, socket)
		}
		w.doneOps += opChunk
		if w.ReassignOps > 0 {
			w.reassignLeft -= opChunk
			if w.reassignLeft <= 0 {
				w.assignHomes(e)
			}
		}
	}
}

// transaction issues one TPC-C-shaped transaction (a blend of NewOrder
// and Payment, which dominate the mix): warehouse and district reads,
// a customer row update, a handful of item reads and stock updates, and
// an order append.
func (w *VoltDB) transaction(e *sim.Engine, socket int) {
	client := e.Rng.Intn(w.Clients)
	wh := w.homes[client]
	if e.Rng.Float64() >= w.HomeFrac {
		wh = e.Rng.Intn(w.Warehouses)
	}

	// Warehouse + district: hot, small, read-mostly with a YTD update.
	e.Access(w.warehouse, pageOf(w.warehouse, int64(wh)*4096%w.warehouse.Bytes()), 2, 1, socket)
	dOff := (int64(wh)*10 + int64(e.Rng.Intn(10))) * 4096 % w.district.Bytes()
	e.Access(w.district, pageOf(w.district, dOff), 2, 1, socket)

	// Customer row in the home warehouse's slice.
	cOff := int64(wh)*w.custPerWh + int64(e.Rng.Int63n(w.custPerWh))
	e.Access(w.customer, pageOf(w.customer, cOff%w.customer.Bytes()), 3, 1, socket)

	// Order lines: item lookups (read-only, hot) + stock updates. Lines
	// are issued as three page draws within the warehouse's stock slice,
	// carrying the full line count — same per-page load, fewer calls.
	lines := 5 + e.Rng.Intn(10)
	e.Access(w.item, e.Rng.Intn(w.item.NPages), uint32(lines), 0, socket)
	per := uint32(lines+2) / 3
	for l := 0; l < 3; l++ {
		sOff := int64(wh)*w.stockPerWh + int64(e.Rng.Int63n(w.stockPerWh))
		e.Access(w.stock, pageOf(w.stock, sOff%w.stock.Bytes()), 2*per, per, socket)
	}

	// Order + history appends: sequential write cursors.
	w.orderCursor += 64
	oOff := w.orderCursor % w.orders.Bytes()
	e.Access(w.orders, pageOf(w.orders, oOff), 1, 1, socket)
	if e.Rng.Intn(4) == 0 {
		e.Access(w.hist, pageOf(w.hist, w.orderCursor%w.hist.Bytes()), 1, 1, socket)
	}
}
