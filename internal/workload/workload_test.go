package workload

import (
	"testing"
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

type ftSolution struct{}

func (*ftSolution) Name() string { return "ft" }
func (*ftSolution) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return e.Sys.FirstFit(e.Sys.Topo.View(socket), v.PageSize)
}
func (*ftSolution) IntervalStart(*sim.Engine) {}
func (*ftSolution) IntervalEnd(*sim.Engine)   {}

func testEngine() *sim.Engine {
	e := sim.NewEngine(tier.OptaneTopology(256), 1)
	e.Interval = 10 * time.Second / 256
	e.SetSolution(&ftSolution{})
	return e
}

func cfg() Config { return Config{Scale: 256, OpsFactor: 0.05} }

func drive(t *testing.T, w sim.Workload, maxIntervals int) *sim.Engine {
	t.Helper()
	e := testEngine()
	w.Init(e)
	for i := 0; i < maxIntervals && !w.Done(); i++ {
		e.RunInterval(w)
	}
	return e
}

func TestAllWorkloadsRun(t *testing.T) {
	builders := map[string]func(Config) sim.Workload{
		"gups":      func(c Config) sim.Workload { return NewGUPS(c) },
		"voltdb":    func(c Config) sim.Workload { return NewVoltDB(c) },
		"cassandra": func(c Config) sim.Workload { return NewCassandra(c) },
		"bfs":       NewBFS,
		"sssp":      NewSSSP,
		"spark":     func(c Config) sim.Workload { return NewSpark(c) },
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			w := build(cfg())
			e := drive(t, w, 2048)
			if !w.Done() {
				t.Fatalf("%s did not complete", name)
			}
			if e.TotalAccesses == 0 {
				t.Fatalf("%s issued no accesses", name)
			}
			if e.AS.PresentBytes() == 0 {
				t.Fatalf("%s mapped no memory", name)
			}
		})
	}
}

func TestFootprintsScaleWithConfig(t *testing.T) {
	// Table 2 footprints divided by scale, within huge-page rounding.
	check := func(name string, got, wantGB int64, scale int64) {
		want := wantGB * GB / scale
		if got < want*8/10 || got > want*13/10 {
			t.Errorf("%s footprint = %dMB, want ~%dMB", name, got>>20, want>>20)
		}
	}
	e := testEngine()
	g := NewGUPS(Config{Scale: 256})
	g.Init(e)
	check("gups", e.AS.TotalBytes(), 512, 256)

	e2 := testEngine()
	c := NewCassandra(Config{Scale: 256})
	c.Init(e2)
	check("cassandra", e2.AS.TotalBytes(), 400, 256)
}

func TestGUPSHotSetShape(t *testing.T) {
	e := testEngine()
	g := NewGUPS(Config{Scale: 256})
	g.Init(e)
	start, end := g.TableRange()
	hot := 0
	for i := start; i < end; i++ {
		if g.IsHot(g.Heap(), i) {
			hot++
		}
	}
	frac := float64(hot) / float64(end-start)
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("hot fraction = %.2f, want ~0.20", frac)
	}
}

func TestGUPSHotTrafficShare(t *testing.T) {
	e := testEngine()
	g := NewGUPS(Config{Scale: 256, OpsFactor: 0.02})
	g.Init(e)
	// Drive the workload directly (no interval-end reset) so the
	// ground-truth counters stay inspectable.
	g.RunInterval(e)
	var hotCount, total uint64
	tb := g.Heap()
	start, end := g.TableRange()
	for i := start; i < end; i++ {
		c := uint64(tb.Count(i))
		total += c
		if g.IsHot(tb, i) {
			hotCount += c
		}
	}
	share := float64(hotCount) / float64(total)
	if share < 0.7 || share > 0.9 {
		t.Fatalf("hot traffic share = %.2f, want ~0.8", share)
	}
}

func TestGUPSDriftChangesHotSet(t *testing.T) {
	e := testEngine()
	g := NewGUPS(Config{Scale: 256, OpsFactor: 0.5})
	g.Init(e)
	before := append([]int32(nil), g.hotPages...)
	for i := 0; i < 40 && !g.Done(); i++ {
		e.RunInterval(g)
	}
	same := 0
	set := map[int32]bool{}
	for _, p := range before {
		set[p] = true
	}
	for _, p := range g.hotPages {
		if set[p] {
			same++
		}
	}
	if same == len(before) {
		t.Fatal("hot set did not drift")
	}
}

func TestGUPSEpochRedraw(t *testing.T) {
	e := testEngine()
	g := NewGUPSSized(2*GB, 1<<40)
	g.EpochOps = opChunk // redraw every chunk
	g.DriftOps = 0
	g.Init(e)
	before := append([]int32(nil), g.hotPages...)
	e.RunInterval(g)
	diff := 0
	set := map[int32]bool{}
	for _, p := range before {
		set[p] = true
	}
	for _, p := range g.hotPages {
		if !set[p] {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("epoch redraw did not change the hot set")
	}
}

func TestVoltDBHomeWarehouseLocality(t *testing.T) {
	e := testEngine()
	w := NewVoltDB(Config{Scale: 256, OpsFactor: 0.05})
	w.Init(e)
	w.RunInterval(e) // drive directly so counters stay inspectable
	// The stock table slices of the 8 home warehouses must be much
	// hotter per byte than the rest.
	homeBytes := map[int]bool{}
	for _, h := range w.homes {
		homeBytes[h] = true
	}
	var homeCount, otherCount uint64
	var homeN, otherN int
	st := w.Stock()
	perWh := w.stockPerWh
	for i := 0; i < st.NPages; i++ {
		wh := int(int64(i) * st.PageSize / perWh)
		c := uint64(st.Count(i))
		if homeBytes[wh] {
			homeCount += c
			homeN++
		} else {
			otherCount += c
			otherN++
		}
	}
	if homeN == 0 || otherN == 0 {
		t.Skip("degenerate warehouse split")
	}
	homeRate := float64(homeCount) / float64(homeN)
	otherRate := float64(otherCount) / float64(otherN)
	if homeRate <= 2*otherRate {
		t.Fatalf("home warehouses not hot: %.1f vs %.1f accesses/page", homeRate, otherRate)
	}
}

func TestCassandraZipfSkew(t *testing.T) {
	e := testEngine()
	c := NewCassandra(Config{Scale: 256, OpsFactor: 0.05})
	c.Init(e)
	c.RunInterval(e)
	// Zipfian keys: the hottest 10% of data pages take a large share of
	// traffic.
	var counts []int
	var total int
	for i := 0; i < c.data.NPages; i++ {
		counts = append(counts, int(c.data.Count(i)))
		total += int(c.data.Count(i))
	}
	if total == 0 {
		t.Fatal("no data traffic")
	}
	// Top decile by count.
	top := 0
	threshold := percentile(counts, 90)
	for _, ct := range counts {
		if ct >= threshold {
			top += ct
		}
	}
	if share := float64(top) / float64(total); share < 0.3 {
		t.Fatalf("top-decile share = %.2f, want skew >= 0.3", share)
	}
}

func percentile(xs []int, p int) int {
	cp := append([]int(nil), xs...)
	for i := 1; i < len(cp); i++ {
		for j := i; j > 0 && cp[j-1] > cp[j]; j-- {
			cp[j-1], cp[j] = cp[j], cp[j-1]
		}
	}
	return cp[len(cp)*p/100]
}

func TestGraphTraversalVisitsEverything(t *testing.T) {
	w := newWalk(Config{Scale: 4096, OpsFactor: 0.02}, false)
	e := drive(t, w, 2048)
	if !w.Done() {
		t.Fatal("BFS did not finish")
	}
	// A BFS over a random 18-degree graph reaches essentially all
	// vertices.
	visited := 0
	for _, word := range w.visited {
		for ; word != 0; word &= word - 1 {
			visited++
		}
	}
	if float64(visited) < 0.9*float64(w.nVertices) {
		t.Fatalf("visited %d of %d vertices", visited, w.nVertices)
	}
	_ = e
}

func TestSSSPDistancesSettle(t *testing.T) {
	w := newWalk(Config{Scale: 4096, OpsFactor: 0.02}, true)
	drive(t, w, 4096)
	if !w.Done() {
		t.Fatal("SSSP did not finish")
	}
	reached := 0
	for _, d := range w.dist {
		if d != ^uint32(0) {
			reached++
		}
	}
	if float64(reached) < 0.9*float64(w.nVertices) {
		t.Fatalf("reached %d of %d vertices", reached, w.nVertices)
	}
}

func TestGraphDeterministicStructure(t *testing.T) {
	e1, e2 := testEngine(), testEngine()
	g1 := newGraph(e1, 1000, 8)
	g2 := newGraph(e2, 1000, 8)
	if g1.nEdges != g2.nEdges {
		t.Fatal("graph generation not deterministic")
	}
	for v := 0; v < 1000; v += 97 {
		if g1.neighbor(v, 0) != g2.neighbor(v, 0) || g1.weight(v, 0) != g2.weight(v, 0) {
			t.Fatal("adjacency not deterministic")
		}
	}
}

func TestGraphHasHubs(t *testing.T) {
	e := testEngine()
	g := newGraph(e, 10000, 16)
	maxDeg, sumDeg := int64(0), int64(0)
	for v := 0; v < g.N; v++ {
		d := g.offsets[v+1] - g.offsets[v]
		sumDeg += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	avg := sumDeg / int64(g.N)
	if maxDeg < 8*avg {
		t.Fatalf("max degree %d not hub-like vs avg %d", maxDeg, avg)
	}
}

func TestSparkPhasesProgress(t *testing.T) {
	w := NewSpark(Config{Scale: 1024, OpsFactor: 0.2})
	e := testEngine()
	w.Init(e)
	for i := 0; i < 4096 && !w.Done(); i++ {
		e.RunInterval(w)
	}
	if !w.Done() {
		t.Fatal("terasort did not finish")
	}
	for ph := 0; ph < 4; ph++ {
		if w.phaseDone[ph] == 0 {
			t.Fatalf("phase %d never ran", ph)
		}
	}
}

func TestTouchRangeCoversPages(t *testing.T) {
	e := testEngine()
	v := e.AS.Alloc("r", 8*vm.HugePageSize)
	touchRange(e, v, 0, 3*vm.HugePageSize, 100, false, 0)
	for i := 0; i < 3; i++ {
		if v.Count(i) == 0 {
			t.Fatalf("page %d not touched", i)
		}
	}
	if v.Count(3) != 0 {
		t.Fatal("touchRange overran")
	}
	// Element counting: 2MB / 100B ≈ 20972 per page.
	if c := v.Count(0); c < 20000 || c > 22000 {
		t.Fatalf("page 0 count = %d, want ~20971", c)
	}
}

func TestInitTouchMakesEverythingPresent(t *testing.T) {
	e := testEngine()
	g := NewGUPS(Config{Scale: 512})
	g.Init(e)
	for _, v := range e.AS.VMAs() {
		for i := 0; i < v.NPages; i++ {
			if !v.Present(i) {
				t.Fatalf("%s page %d not present after init", v.Name, i)
			}
			if v.Count(i) != 0 {
				t.Fatal("init did not reset ground-truth counters")
			}
		}
	}
}

func TestConfigOps(t *testing.T) {
	c := Config{Scale: 64, OpsFactor: 0.5}
	if got := c.ops(6400); got != 50 {
		t.Fatalf("ops = %d, want 50", got)
	}
	var zero Config
	if zero.ops(64) != 1 {
		t.Fatal("zero config ops floor broken")
	}
}

func TestZipfSampler(t *testing.T) {
	e := testEngine()
	z := newZipf(e.Rng, 1000)
	counts := make([]int, 1000)
	for i := 0; i < 100000; i++ {
		counts[z.Next()]++
	}
	if counts[0] < counts[500]*10 {
		t.Fatalf("zipf not skewed: rank0=%d rank500=%d", counts[0], counts[500])
	}
}
