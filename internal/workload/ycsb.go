package workload

import (
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// Cassandra models the row-store arm of Table 2: Cassandra under YCSB
// workload A (update-heavy: 50% reads, 50% updates) with a zipfian key
// distribution. Keys hash into placement blocks so the popular keys'
// pages are scattered across the footprint in small clusters — the layout
// a real LSM row cache produces — and the store keeps Cassandra's shape:
// a commit log with a sequentially advancing hot head, an in-memory
// index, and the record heap itself.
type Cassandra struct {
	base

	// DataBytes is the record heap footprint (400 GB / scale).
	DataBytes int64

	data, index, commitLog *vm.VMA
	zipf                   *zipfSampler
	nBlocks                int64
	blockBytes             int64
	logCursor              int64
}

// NewCassandra sizes the store to the paper's 400 GB instance.
func NewCassandra(cfg Config) *Cassandra {
	c := &Cassandra{DataBytes: 400 * GB / cfg.scale()}
	c.name = "Cassandra"
	c.readFrac = 0.5
	c.totalOps = cfg.ops(1e10)
	return c
}

func (c *Cassandra) Init(e *sim.Engine) {
	c.data = e.AS.Alloc("cassandra.data", c.DataBytes)
	c.index = e.AS.Alloc("cassandra.index", maxI64(c.DataBytes/64, 4*MB))
	c.commitLog = e.AS.Alloc("cassandra.commitlog", maxI64(c.DataBytes/32, 8*MB))
	// Placement blocks: runs of zipf rank space that hash to one spot in
	// the heap. 256 KB blocks keep hot clusters smaller than a region.
	c.blockBytes = 256 * 1024
	c.nBlocks = c.data.Bytes() / c.blockBytes
	c.zipf = newZipf(e.Rng, uint64(c.nBlocks*16))
	initTouch(e, c.data, c.index, c.commitLog)
}

func (c *Cassandra) RunInterval(e *sim.Engine) {
	socket := e.HomeSocket
	for !e.IntervalExhausted() && !c.Done() {
		for i := 0; i < opChunk; i++ {
			c.op(e, socket)
		}
		c.doneOps += opChunk
	}
}

func (c *Cassandra) op(e *sim.Engine, socket int) {
	// Zipf rank -> placement block via hash (Cassandra's partitioner),
	// then a random record offset within the block.
	rank := c.zipf.Next()
	block := int64(hash64(rank/16) % uint64(c.nBlocks))
	off := block*c.blockBytes + int64(e.Rng.Int63n(c.blockBytes))

	// Index probe (read), then the record.
	e.Access(c.index, int(hash64(rank)%uint64(c.index.NPages)), 1, 0, socket)
	write := e.Rng.Intn(2) == 0 // YCSB-A: 50/50
	if write {
		// Update: read-modify-write the record plus a commit-log append.
		e.Access(c.data, pageOf(c.data, off), 2, 1, socket)
		c.logCursor += 256
		e.Access(c.commitLog, pageOf(c.commitLog, c.logCursor%c.commitLog.Bytes()), 1, 1, socket)
	} else {
		e.Access(c.data, pageOf(c.data, off), 2, 0, socket)
	}
}
