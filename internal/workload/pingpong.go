package workload

import (
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// PingPong is an adversarial thrash generator (not a Table 2 workload):
// two disjoint contiguous hot sets, A at the table start and B at the
// midpoint, alternate as the active set every FlipOps updates. Each flip
// inverts the hotness a profiler just learned, so a policy that chases
// the histogram promotes the new set and demotes the old one — and then
// does the exact opposite a few intervals later. Without admission
// control the migration volume is almost pure waste; the admission
// layer's ping-pong cool-down and ROI gate exist to suppress exactly
// this pattern, and the thrash-regression test in CI compares
// WastedBytes with the layer on and off on this workload.
type PingPong struct {
	base

	// TableBytes is the table footprint (512 GB / scale default).
	TableBytes int64
	// HotFrac is the size of EACH hot set as a fraction of the table
	// (0.10: together the two sets match GUPS's 20% hot share).
	HotFrac float64
	// HotAccessFrac is the access share the active set receives (0.90:
	// hotter than GUPS, so the flip is unambiguous to any profiler).
	HotAccessFrac float64
	// FlipOps is the update count between active-set flips; 0 disables
	// flipping (degenerating into a static two-set GUPS).
	FlipOps int64
	// batch is the op-aggregation factor for access batching.
	batch int64

	heap     *vm.VMA
	setPages int // pages per hot set
	aStart   int // first page of set A (table-relative: 0)
	bStart   int // first page of set B (table-relative: npages/2)
	active   int // 0 = A, 1 = B
	flipLeft int64
	// Flips counts completed active-set flips (test introspection).
	Flips int
}

// NewPingPong builds the thrash workload at the shared paper scale.
func NewPingPong(cfg Config) *PingPong {
	p := &PingPong{
		TableBytes:    512 * GB / cfg.scale(),
		HotFrac:       0.10,
		HotAccessFrac: 0.90,
		batch:         8,
	}
	p.name = "PingPong"
	p.readFrac = 0.5
	p.totalOps = cfg.ops(2e10)
	// Eight flips per run: fast enough that chasing each one is a losing
	// trade, slow enough that each set is resident for several profiling
	// intervals and genuinely looks hot.
	p.FlipOps = p.totalOps / 8
	return p
}

func (p *PingPong) Init(e *sim.Engine) {
	p.heap = e.AS.Alloc("pingpong.table", p.TableBytes)
	n := p.heap.NPages
	p.setPages = int(float64(n) * p.HotFrac)
	if p.setPages < 1 {
		p.setPages = 1
	}
	if p.setPages > n/2 {
		p.setPages = n / 2
	}
	p.aStart = 0
	p.bStart = n / 2
	p.active = 0
	p.flipLeft = p.FlipOps
	initTouch(e, p.heap)
}

// Heap returns the table VMA.
func (p *PingPong) Heap() *vm.VMA { return p.heap }

// activeStart returns the first page of the currently-hot set.
func (p *PingPong) activeStart() int {
	if p.active == 0 {
		return p.aStart
	}
	return p.bStart
}

// IsHot reports ground truth: whether a page is in the active set.
func (p *PingPong) IsHot(v *vm.VMA, idx int) bool {
	if v != p.heap {
		return false
	}
	s := p.activeStart()
	return idx >= s && idx < s+p.setPages
}

func (p *PingPong) RunInterval(e *sim.Engine) {
	socket := e.HomeSocket
	b := uint32(p.batch)
	n := p.heap.NPages
	for !e.IntervalExhausted() && !p.Done() {
		draws := int64(opChunk) / p.batch
		hot := p.activeStart()
		for d := int64(0); d < draws; d++ {
			var pg int
			if e.Rng.Float64() < p.HotAccessFrac {
				pg = hot + e.Rng.Intn(p.setPages)
			} else {
				pg = e.Rng.Intn(n)
			}
			// Read + write of a random slot, like a GUPS update.
			e.Access(p.heap, pg, 2*b, b, socket)
		}
		p.doneOps += opChunk
		if p.FlipOps > 0 {
			p.flipLeft -= opChunk
			if p.flipLeft <= 0 {
				p.active = 1 - p.active
				p.flipLeft = p.FlipOps
				p.Flips++
			}
		}
	}
}
