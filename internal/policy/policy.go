// Package policy implements the complete page-management solutions the
// paper evaluates: MTM itself (§6) and the baselines — first-touch NUMA,
// hardware-managed caching (Optane Memory Mode), tiered-AutoNUMA (vanilla
// and patched), AutoTiering, and HeMem. Every solution wires a profiler
// and a migration mechanism into the sim.Solution interface.
package policy

import (
	"mtm/internal/admission"
	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// DefaultMigrateBudget is N, the per-interval migration volume cap
// (200 MB in the paper's evaluation, §6.1).
const DefaultMigrateBudget = 200 * tier.MB

// Placement selects an initial page-placement order.
type Placement int

const (
	// PlaceFastFirst is first-touch NUMA: the fastest tier with space,
	// in the faulting socket's view order.
	PlaceFastFirst Placement = iota
	// PlaceSlowLocalFirst is MTM's default (§9.1): CPU-less (slow)
	// nodes first, preferring local, then fast nodes.
	PlaceSlowLocalFirst
	// PlaceLocalOnly restricts placement to the faulting socket's local
	// nodes, fast first (HeMem's two-tier world view).
	PlaceLocalOnly
	// PlaceSlowOnly places everything on slow (CPU-less) nodes; the
	// hardware-cache baseline backs all pages with PM.
	PlaceSlowOnly
)

// place resolves a Placement to a node with room for one page of v.
func place(e *sim.Engine, v *vm.VMA, socket int, p Placement) tier.NodeID {
	view := e.Sys.Topo.View(socket)
	switch p {
	case PlaceFastFirst:
		return e.Sys.FirstFit(view, v.PageSize)
	case PlaceSlowLocalFirst:
		order := make([]tier.NodeID, 0, len(view))
		for _, n := range view {
			if e.Sys.Topo.Nodes[n].Kind != tier.DRAM {
				order = append(order, n)
			}
		}
		for _, n := range view {
			if e.Sys.Topo.Nodes[n].Kind == tier.DRAM {
				order = append(order, n)
			}
		}
		return e.Sys.FirstFit(order, v.PageSize)
	case PlaceLocalOnly:
		order := make([]tier.NodeID, 0, len(view))
		for _, n := range view {
			if e.Sys.Topo.Nodes[n].Socket == socket {
				order = append(order, n)
			}
		}
		if n := e.Sys.FirstFit(order, v.PageSize); n != tier.Invalid {
			return n
		}
		return e.Sys.FirstFit(view, v.PageSize) // overflow rather than OOM
	case PlaceSlowOnly:
		order := make([]tier.NodeID, 0, len(view))
		for _, n := range view {
			if e.Sys.Topo.Nodes[n].Kind != tier.DRAM {
				order = append(order, n)
			}
		}
		if n := e.Sys.FirstFit(order, v.PageSize); n != tier.Invalid {
			return n
		}
		return e.Sys.FirstFit(view, v.PageSize)
	}
	return e.Sys.FirstFit(view, v.PageSize)
}

// regionSocket is the socket whose threads access region r the most,
// approximated by the last-accessor hint of its first present page — the
// §6.2 multi-view arbitration channel (hint faults reveal the accessing
// CPU). Falls back to the engine's home socket for untouched regions.
func regionSocket(e *sim.Engine, r *region.Region) int {
	if i := r.V.FirstPresent(r.Start, r.End); i >= 0 {
		return r.V.LastSocket(i)
	}
	return e.HomeSocket
}

// rankOf returns node's position in view, or -1.
func rankOf(view []tier.NodeID, node tier.NodeID) int {
	for i, n := range view {
		if n == node {
			return i
		}
	}
	return -1
}

// maxWHI returns the histogram scale for a region list.
func maxWHI(regions []*region.Region) float64 {
	m := 1.0
	for _, r := range regions {
		if r.WHI > m {
			m = r.WHI
		}
	}
	return m
}

// buildHistogram is the shared WHI histogram constructor (32 buckets).
func buildHistogram(regions []*region.Region) *region.Histogram {
	return region.NewHistogram(regions, 32, maxWHI(regions))
}

// nodeOf returns the node currently holding region r, or Invalid.
func nodeOf(r *region.Region) tier.NodeID { return profiler.RegionNode(r) }

// nodeName resolves a node's display name for span attributes.
func nodeName(e *sim.Engine, n tier.NodeID) string {
	if int(n) < 0 || int(n) >= len(e.Sys.Topo.Nodes) {
		return ""
	}
	return e.Sys.Topo.Nodes[n].Name
}

// destUsable gates one planned migration of region r from src to dst on
// tier health: a draining/offline destination or an open src→dst circuit
// breaker vetoes the move, with one skip-provenance event naming the
// evidence ("tier-unavailable", or "breaker-open" with the breaker
// state). Always true when the health subsystem is disabled, so baseline
// runs are untouched.
func destUsable(e *sim.Engine, r *region.Region, src, dst tier.NodeID) bool {
	if e.DestUsable(src, dst) {
		return true
	}
	if e.SpansEnabled() {
		if !e.Sys.Allocatable(dst) {
			spanDecision(e, "skip", "tier-unavailable", r,
				span.S("dst", nodeName(e, dst)),
				span.S("tier_state", e.TierHealth(dst).String()))
		} else {
			state, consec, until, trips := e.BreakerEvidence(src, dst)
			spanDecision(e, "skip", "breaker-open", r,
				span.S("dst", nodeName(e, dst)),
				span.S("breaker", state),
				span.I("consecutive_aborts", consec),
				span.I("open_until_ns", until),
				span.I("breaker_trips", trips))
		}
	}
	return false
}

// reaccessEvidence grades the likelihood that region r's pages stay hot,
// from the profiler's history: sustained hotness across two consecutive
// intervals counts full, freshly observed hotness slightly less, a
// region the profiler did not sample this interval decays to an even
// guess, and a sampled region that went quiet is heavily discounted.
// The grades feed the admission ROI estimate — region reaccess evidence
// is what separates a page worth copying from one that merely spiked.
func reaccessEvidence(r *region.Region) float64 {
	switch {
	case !r.Sampled:
		return 0.5
	case r.HI > 0 && r.PrevHI > 0:
		return 1.0
	case r.HI > 0:
		return 0.75
	default:
		return 0.25
	}
}

// admitMigration gates one planned move of up to bytes of region r from
// src to dst through the engine's admission layer, recording the
// decision provenance with the estimated ROI, the threshold it was held
// against, and the pair's budget balance. It returns the admitted byte
// allowance — possibly clipped to the pair's token budget, zero when
// the move was deferred or rejected — and the verdict for callers that
// route differently on defer (try another destination) versus reject
// (the region is not worth moving at all). With admission disabled the
// full request is admitted and nothing is recorded, keeping baseline
// runs bit-identical to the pre-admission policies.
func admitMigration(e *sim.Engine, r *region.Region, src, dst tier.NodeID, bytes int64) (int64, admission.Verdict) {
	if !e.AdmissionEnabled() || bytes <= 0 {
		return bytes, admission.VerdictAdmit
	}
	dec := e.AdmitMigration(src, dst, bytes, r.V.PageSize, r.WHI, reaccessEvidence(r))
	if e.SpansEnabled() {
		attrs := []span.Attr{
			span.F("roi", dec.ROI),
			span.F("threshold", dec.Threshold),
			span.I("allowed_bytes", dec.AllowedBytes),
			span.I("budget_bytes", dec.BudgetBytes),
			span.S("dst", nodeName(e, dst)),
		}
		if e.AdmissionLearnEnabled() && dec.Floor > 0 {
			attrs = append(attrs, span.F("floor", dec.Floor))
		}
		spanDecision(e, dec.Verdict.String(), dec.Rule, r, attrs...)
	}
	return dec.AllowedBytes, dec.Verdict
}

// spanDecision emits one migration-decision provenance event. The event
// name is the outcome ("promote", "demote", "skip", "defer", "stop");
// rule names the policy clause that fired, and the base payload carries
// the region's identity and hotness estimate. Callers append the
// threshold compared and the outcome details (dst, bytes) and must guard
// on e.SpansEnabled() before building the extra attribute list.
func spanDecision(e *sim.Engine, outcome, rule string, r *region.Region, attrs ...span.Attr) {
	base := []span.Attr{
		span.S("rule", rule),
		span.S("vma", r.V.Name),
		span.I("page_start", int64(r.Start)),
		span.I("page_end", int64(r.End)),
		span.F("whi", r.WHI),
	}
	e.SpanEvent("decision", outcome, append(base, attrs...)...)
}
