package policy

import (
	"testing"
	"time"

	"mtm/internal/shm"
	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
	"mtm/internal/workload"
)

func testEngine(seed int64) *sim.Engine {
	e := sim.NewEngine(tier.OptaneTopology(256), seed)
	e.Interval = 10 * time.Second / 256
	return e
}

func scaledBudget() int64 { return 800 * tier.MB / 256 }

func newScaledMTM() *MTM {
	s := NewMTM()
	s.MigrateBudget = scaledBudget()
	s.DemoteCap = 2 * s.MigrateBudget
	return s
}

func gupsConfig() workload.Config {
	return workload.Config{Scale: 256, OpsFactor: 0.2}
}

func runFor(e *sim.Engine, w sim.Workload, s sim.Solution, intervals int) {
	e.SetSolution(s)
	w.Init(e)
	for i := 0; i < intervals && !w.Done(); i++ {
		e.RunInterval(w)
	}
}

func TestPlacementOrders(t *testing.T) {
	e := testEngine(1)
	v := e.AS.Alloc("v", 4*tier.MB)
	if n := place(e, v, 0, PlaceFastFirst); e.Sys.Topo.Nodes[n].Kind != tier.DRAM || e.Sys.Topo.Nodes[n].Socket != 0 {
		t.Fatalf("fast-first chose %d", n)
	}
	if n := place(e, v, 0, PlaceSlowLocalFirst); e.Sys.Topo.Nodes[n].Kind == tier.DRAM || e.Sys.Topo.Nodes[n].Socket != 0 {
		t.Fatalf("slow-local-first chose %d", n)
	}
	if n := place(e, v, 1, PlaceSlowLocalFirst); e.Sys.Topo.Nodes[n].Socket != 1 {
		t.Fatalf("slow-local-first from socket 1 chose %d", n)
	}
	if n := place(e, v, 0, PlaceLocalOnly); e.Sys.Topo.Nodes[n].Socket != 0 {
		t.Fatalf("local-only chose %d", n)
	}
	if n := place(e, v, 0, PlaceSlowOnly); e.Sys.Topo.Nodes[n].Kind == tier.DRAM {
		t.Fatalf("slow-only chose %d", n)
	}
}

func TestPlacementSpillsWhenFull(t *testing.T) {
	e := testEngine(1)
	v := e.AS.Alloc("v", 4*tier.MB)
	// Fill local DRAM; fast-first must fall through to the next tier.
	e.Sys.Reserve(0, e.Sys.Free(0))
	n := place(e, v, 0, PlaceFastFirst)
	if n == 0 || n == tier.Invalid {
		t.Fatalf("full-node placement chose %d", n)
	}
}

func TestMTMPromotesHotDemotesCold(t *testing.T) {
	cfg := workload.Config{Scale: 256, OpsFactor: 0.5}
	e := testEngine(1)
	w := workload.NewGUPS(cfg)
	s := newScaledMTM()
	runFor(e, w, s, 90)
	if e.PromotedBytes == 0 {
		t.Fatal("MTM promoted nothing")
	}
	// Promotion volume per interval must respect the budget on average
	// (carryover smooths, never exceeds 1x budget per interval overall).
	avg := e.PromotedBytes / int64(e.Intervals)
	if avg > scaledBudget()*3/2 {
		t.Fatalf("promotion %dMB/interval exceeds budget %dMB", avg>>20, scaledBudget()>>20)
	}
	// The fast tier must end up holding more hot bytes than a
	// first-touch run of the same length.
	eFT := testEngine(1)
	wFT := workload.NewGUPS(cfg)
	runFor(eFT, wFT, NewFirstTouch(), 90)
	mtmHot, _ := hotPlacement(e, w)
	ftHot, _ := hotPlacement(eFT, wFT)
	if mtmHot <= ftHot {
		t.Fatalf("MTM hot-in-fast %dMB <= first-touch %dMB", mtmHot>>20, ftHot>>20)
	}
}

func hotPlacement(e *sim.Engine, g *workload.GUPS) (inFast, total int64) {
	for _, v := range e.AS.VMAs() {
		for i := 0; i < v.NPages; i++ {
			if !v.Present(i) || !g.IsHot(v, i) {
				continue
			}
			total += v.PageSize
			if e.Sys.Topo.Nodes[v.Node(i)].Kind == tier.DRAM {
				inFast += v.PageSize
			}
		}
	}
	return
}

// TestMTMBeatsFirstTouchOnDriftingGUPS asserts the drift claim of §9.3:
// as the hot set turns over, a migrating policy keeps tracking it while a
// static first-touch placement strands the drifted-in blocks wherever
// they first faulted. The assertion is on hot-set placement, the signal
// drift actually moves: at this scale the end-to-end clock difference
// between the two policies is smaller than the seed-to-seed noise (the
// migration benefit and the profiling+migration overhead nearly cancel),
// so a straight clock comparison is a coin flip across seeds. Placement
// separates them by >1.6x at every seed; the clock bound below only pins
// the overhead — MTM must stay in first-touch's neighbourhood while
// holding far more of the moving hot set in the fast tier.
func TestMTMBeatsFirstTouchOnDriftingGUPS(t *testing.T) {
	cfg := workload.Config{Scale: 256, OpsFactor: 1.0}
	e := testEngine(1)
	runForDone := func(e *sim.Engine, w sim.Workload, s sim.Solution) {
		e.SetSolution(s)
		w.Init(e)
		for i := 0; i < 4096 && !w.Done(); i++ {
			e.RunInterval(w)
		}
	}
	w := workload.NewGUPS(cfg)
	runForDone(e, w, newScaledMTM())
	eFT := testEngine(1)
	wFT := workload.NewGUPS(cfg)
	runForDone(eFT, wFT, NewFirstTouch())
	mtmHot, _ := hotPlacement(e, w)
	ftHot, _ := hotPlacement(eFT, wFT)
	if mtmHot < ftHot*13/10 {
		t.Fatalf("MTM hot-in-fast %dMB not ahead of first-touch %dMB under drift",
			mtmHot>>20, ftHot>>20)
	}
	if e.Clock() > eFT.Clock()*11/10 {
		t.Fatalf("MTM (%v) overhead blew past first-touch (%v)", e.Clock(), eFT.Clock())
	}
}

func TestFirstTouchNeverMigrates(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	runFor(e, w, NewFirstTouch(), 10)
	if e.PromotedBytes != 0 || e.DemotedBytes != 0 || e.TotalMig != 0 {
		t.Fatal("first-touch migrated")
	}
}

func TestSlowFirstPlacesSlow(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	runFor(e, w, NewSlowFirst(), 2)
	if e.Sys.Used(0) != 0 || e.Sys.Used(1) != 0 {
		t.Fatalf("slow-first used DRAM: [%d %d]", e.Sys.Used(0), e.Sys.Used(1))
	}
}

func TestHMCReservesDRAMAndIntercepts(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	h := NewHMC()
	runFor(e, w, h, 5)
	if e.Sys.Free(0) != 0 || e.Sys.Free(1) != 0 {
		t.Fatal("HMC did not reserve the DRAM cache")
	}
	hits, misses, _ := h.Stats()
	if hits == 0 || misses == 0 {
		t.Fatalf("cache saw hits=%d misses=%d", hits, misses)
	}
	// All data pages must be on PM.
	for _, v := range e.AS.VMAs() {
		for i := 0; i < v.NPages; i++ {
			if v.Present(i) && e.Sys.Topo.Nodes[v.Node(i)].Kind == tier.DRAM {
				t.Fatal("HMC placed a page in DRAM")
			}
		}
	}
}

func TestHMCWritebacksOnDirtyEviction(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig()) // 1:1 R/W drives dirty evictions
	h := NewHMC()
	runFor(e, w, h, 5)
	_, _, wb := h.Stats()
	if wb == 0 {
		t.Fatal("write-heavy workload produced no writebacks")
	}
}

func TestTieredAutoNUMAOneTierSteps(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := NewTieredAutoNUMA(true)
	s.MigrateBudget = scaledBudget()
	runFor(e, w, s, 20)
	if e.PromotedBytes == 0 {
		t.Fatal("tiered-AutoNUMA promoted nothing")
	}
	if s.HotBytesIdentified == 0 {
		t.Fatal("no hot bytes identified")
	}
}

func TestVanillaIdentifiesFewerHotBytes(t *testing.T) {
	// Table 3's contrast: the patched variant identifies far more hot
	// volume than vanilla.
	run := func(patched bool) int64 {
		e := testEngine(1)
		w := workload.NewGUPS(gupsConfig())
		s := NewTieredAutoNUMA(patched)
		s.MigrateBudget = scaledBudget()
		runFor(e, w, s, 20)
		return s.HotBytesIdentified
	}
	v, p := run(false), run(true)
	if v >= p {
		t.Fatalf("vanilla hot bytes %d >= patched %d", v, p)
	}
}

func TestAutoTieringPromotes(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := NewAutoTiering()
	s.MigrateBudget = scaledBudget()
	runFor(e, w, s, 20)
	if e.PromotedBytes == 0 {
		t.Fatal("AutoTiering promoted nothing")
	}
}

func TestHeMemStaysLocal(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := NewHeMem()
	s.MigrateBudget = scaledBudget()
	runFor(e, w, s, 20)
	// Two-tier world view: HeMem never touches remote nodes unless
	// forced by capacity overflow; GUPS at this scale fits locally.
	if e.Sys.Used(1) != 0 || e.Sys.Used(3) != 0 {
		t.Fatalf("HeMem used remote nodes: [%d %d %d %d]",
			e.Sys.Used(0), e.Sys.Used(1), e.Sys.Used(2), e.Sys.Used(3))
	}
	if e.PromotedBytes == 0 {
		t.Fatal("HeMem promoted nothing")
	}
}

func TestMTMVariantSwapsProfiler(t *testing.T) {
	// The ablation constructor must accept any profiler and still run.
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := NewMTMVariant("test-variant", newScaledMTM().Prof, newScaledMTM().Mech)
	s.MigrateBudget = scaledBudget()
	s.DemoteCap = 2 * s.MigrateBudget
	if s.Name() != "test-variant" {
		t.Fatal("label not applied")
	}
	runFor(e, w, s, 5)
}

func TestCapacityAccountingStaysExact(t *testing.T) {
	// Across heavy migration churn, the sum of used bytes must equal
	// the present bytes of the address space at all times.
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := newScaledMTM()
	e.SetSolution(s)
	w.Init(e)
	for i := 0; i < 15; i++ {
		e.RunInterval(w)
		var used int64
		for n := range e.Sys.Topo.Nodes {
			used += e.Sys.Used(tier.NodeID(n))
		}
		if present := e.AS.PresentBytes(); used != present {
			t.Fatalf("interval %d: used %d != present %d", i, used, present)
		}
	}
}

func TestMultiViewPromotionTargets(t *testing.T) {
	// A region accessed from socket 1 must promote toward socket 1's
	// fast node (§6.2 multi-view).
	e := testEngine(1)
	s := newScaledMTM()
	e.SetSolution(s)
	v := e.AS.Alloc("remote-hot", 8*vm.HugePageSize)
	wl := &socketWorkload{v: v, socket: 1}
	wl.Init(e)
	for i := 0; i < 12; i++ {
		e.RunInterval(wl)
	}
	moved := 0
	for i := 0; i < v.NPages; i++ {
		if v.Node(i) == 1 { // DRAM1, socket 1's fastest
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("no pages promoted to the accessing socket's fast tier")
	}
}

// socketWorkload hammers one VMA from a fixed socket; pages are placed on
// that socket's slow node initially (slow-local-first from the accessing
// socket would be PM1; we just let MTM place them via first-touch from
// socket 1).
type socketWorkload struct {
	v      *vm.VMA
	socket int
}

func (w *socketWorkload) Name() string          { return "socket" }
func (w *socketWorkload) Init(e *sim.Engine)    {}
func (w *socketWorkload) Done() bool            { return false }
func (w *socketWorkload) ReadFraction() float64 { return 1 }
func (w *socketWorkload) RunInterval(e *sim.Engine) {
	for !e.IntervalExhausted() {
		for i := 0; i < w.v.NPages; i++ {
			e.Access(w.v, i, 2000, 0, w.socket)
		}
	}
}

func TestMTMPublishesShmTable(t *testing.T) {
	e := testEngine(1)
	w := workload.NewGUPS(gupsConfig())
	s := newScaledMTM()
	s.Shm = shm.NewSegment(1 << 16)
	runFor(e, w, s, 3)
	tb, err := s.Shm.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Entries) != len(s.Prof.Regions()) {
		t.Fatalf("table entries %d != regions %d", len(tb.Entries), len(s.Prof.Regions()))
	}
	if tb.Interval == 0 {
		t.Fatal("table interval not advancing")
	}
	// The daemon-visible hotness must match the profiler's view.
	for i, r := range s.Prof.Regions() {
		if tb.Entries[i].WHI != r.WHI || tb.Entries[i].Bytes != uint64(r.Bytes()) {
			t.Fatalf("entry %d diverges from region: %+v vs %v", i, tb.Entries[i], r)
		}
	}
}
