package policy

import (
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// HMC is the hardware-managed memory caching baseline (Optane Memory
// Mode): all pages live on PM, and the DRAM acts as a direct-mapped,
// memory-side cache in front of it. The model tracks 4 KB cache sectors
// with tags and dirty bits: a hit costs DRAM latency, a miss costs PM
// latency plus the sector fill, and evicting a dirty sector writes it
// back to PM with the read-modify-write amplification of Optane's 256 B
// internal granularity — the duplication and write-amplification costs
// §2.1 and §9.1 attribute to HMC. The DRAM used as cache is reserved so
// the allocator cannot also hand it out (Memory Mode's capacity loss).
type HMC struct {
	eng        *sim.Engine
	dramNode   tier.NodeID
	pmNode     tier.NodeID
	sectorBits uint
	tags       []uint64 // tag per slot; 0 = empty (tags are sector+1)
	dirty      []bool
	probeSeq   uint64

	hits, misses, writebacks int64

	dramLat, pmLat time.Duration
	fillCost       time.Duration
	writebackCost  time.Duration
}

// hmcSectorBytes is the modelled cache-sector granularity: 256 B, the
// internal write granularity of Optane and close to Memory Mode's 64 B
// lines. Fine granularity is load-bearing for the baseline's behaviour: a
// page can be hot while each of its individual lines is touched rarely,
// so a line-granular cache cannot exploit page-level hotness the way a
// page-migrating policy can — the core of the §2.1/§9.1 HMC critique.
const hmcSectorBytes = 256

// writeAmp is the PM write amplification on dirty evictions: Optane
// performs internal read-modify-writes and sustains a fraction of its
// read bandwidth for writes, so a 256 B writeback costs several transfer
// times.
const writeAmp = 8

// missOverhead is the extra latency of a Memory Mode miss beyond the raw
// PM access: the in-DRAM tag lookup that failed, fill scheduling, and the
// metadata update (measured as 2-3x a direct PM access in [8]/[24]).
const missOverhead = 200 * time.Nanosecond

// NewHMC returns the baseline.
func NewHMC() *HMC { return &HMC{} }

func (*HMC) Name() string { return "HMC (Memory Mode)" }

func (h *HMC) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceSlowOnly)
}

func (h *HMC) IntervalStart(e *sim.Engine) {
	if h.tags != nil {
		return
	}
	// Size the cache to the DRAM nodes and reserve them so the
	// allocator cannot also hand them out.
	var dramBytes int64
	for i, n := range e.Sys.Topo.Nodes {
		if n.Kind == tier.DRAM {
			dramBytes += n.Capacity
			carve := e.Sys.Free(tier.NodeID(i))
			e.Sys.Reserve(tier.NodeID(i), carve)
			e.NoteOpaqueReserve(tier.NodeID(i), carve)
		}
	}
	slots := dramBytes / hmcSectorBytes
	if slots < 1 {
		slots = 1
	}
	h.tags = make([]uint64, slots)
	h.dirty = make([]bool, slots)
	h.sectorBits = 8 // log2(hmcSectorBytes)

	h.dramNode, h.pmNode = tier.Invalid, tier.Invalid
	view := e.Sys.Topo.View(e.HomeSocket)
	for _, n := range view {
		link := e.Sys.Topo.Links[e.HomeSocket][n]
		if e.Sys.Topo.Nodes[n].Kind == tier.DRAM && h.dramLat == 0 {
			h.dramLat = link.Latency
			h.dramNode = n
		}
		if e.Sys.Topo.Nodes[n].Kind != tier.DRAM && h.pmLat == 0 {
			h.pmLat = link.Latency
			h.pmNode = n
			h.fillCost = time.Duration(float64(hmcSectorBytes) / float64(link.Bandwidth) * float64(time.Second))
			h.writebackCost = writeAmp * h.fillCost
		}
	}

	h.eng = e
	e.Intercept = h.intercept
}

func (h *HMC) IntervalEnd(*sim.Engine) {}

// maxProbes bounds the tag probes per batched access; larger batches are
// sampled and the measured hit/miss mix is extrapolated to the batch.
const maxProbes = 32

// intercept charges n accesses (nw writes) to a page through the cache.
// A batch of n accesses touches up to n distinct lines of the page
// (random batches touch distinct lines; scans revisit them); the model
// probes a sample of those lines against the direct-mapped tag store and
// extrapolates the observed hit/miss mix to the whole batch.
func (h *HMC) intercept(v *vm.VMA, idx int, n, nw uint32, node tier.NodeID) time.Duration {
	base := v.Addr(idx) >> h.sectorBits
	sectorsPerPage := uint64(v.PageSize / hmcSectorBytes)
	if sectorsPerPage == 0 {
		sectorsPerPage = 1
	}
	distinct := uint64(n)
	if distinct > sectorsPerPage {
		distinct = sectorsPerPage
	}
	if distinct == 0 {
		distinct = 1
	}
	perLine := n / uint32(distinct) // accesses per touched line
	if perLine == 0 {
		perLine = 1
	}
	probes := distinct
	if probes > maxProbes {
		probes = maxProbes
	}
	weight := float64(distinct) / float64(probes)
	dirtyShare := nw > 0

	var cost time.Duration
	var pHits, pMisses, pWB int64
	for i := uint64(0); i < probes; i++ {
		// Pseudo-random line within the page, advancing across batches
		// so repeated random access probes fresh lines.
		h.probeSeq++
		sector := base + (h.probeSeq*0x9e3779b97f4a7c15)%sectorsPerPage
		slot := sector % uint64(len(h.tags))
		tag := sector + 1
		if h.tags[slot] == tag {
			pHits++
		} else {
			pMisses++
			if h.dirty[slot] {
				pWB++
			}
			h.tags[slot] = tag
			h.dirty[slot] = false
		}
		if dirtyShare {
			h.dirty[slot] = true
		}
	}
	// Extrapolate the sampled mix to the full batch: each touched line
	// costs a miss or a hit for its first access and DRAM hits for the
	// perLine-1 re-touches.
	hitLines := float64(pHits) * weight
	missLines := float64(pMisses) * weight
	wbLines := float64(pWB) * weight
	dramF := h.eng.Contention(h.dramNode)
	pmF := h.eng.Contention(node)
	cost += time.Duration(hitLines * float64(h.dramLat) * dramF)
	cost += time.Duration(missLines * (float64(h.pmLat+h.fillCost)*pmF + float64(missOverhead)))
	cost += time.Duration(wbLines * float64(h.writebackCost) * pmF)
	if perLine > 1 {
		cost += time.Duration(float64(perLine-1) * (hitLines + missLines) * float64(h.dramLat) * dramF)
	}
	h.hits += int64(hitLines) + int64(float64(perLine-1)*(hitLines+missLines))
	h.misses += int64(missLines)
	h.writebacks += int64(wbLines)
	// Cache traffic consumes real bandwidth: fills and writebacks hit
	// PM, every serviced access moves a line through DRAM.
	h.eng.Sys.RecordTransfer(node, int64(missLines)*hmcSectorBytes+int64(wbLines)*hmcSectorBytes*writeAmp)
	h.eng.Sys.RecordTransfer(h.dramNode, int64(hitLines+missLines)*hmcSectorBytes)
	return cost
}

// Stats returns (hits, misses, writebacks) for tests and reports.
func (h *HMC) Stats() (hits, misses, writebacks int64) {
	return h.hits, h.misses, h.writebacks
}
