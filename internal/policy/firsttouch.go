package policy

import (
	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// FirstTouch is the first-touch NUMA baseline: pages are allocated on the
// fastest tier (from the faulting thread's view) with free space and never
// migrate.
type FirstTouch struct{}

// NewFirstTouch returns the baseline.
func NewFirstTouch() *FirstTouch { return &FirstTouch{} }

func (*FirstTouch) Name() string { return "first-touch NUMA" }

func (*FirstTouch) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceFastFirst)
}

func (*FirstTouch) IntervalStart(*sim.Engine) {}
func (*FirstTouch) IntervalEnd(*sim.Engine)   {}

// SlowFirst allocates everything slow-local-first and never migrates; it
// is the "slow tier first" initial-placement arm of Table 4.
type SlowFirst struct{}

// NewSlowFirst returns the baseline.
func NewSlowFirst() *SlowFirst { return &SlowFirst{} }

func (*SlowFirst) Name() string { return "slow-tier-first (no migration)" }

func (*SlowFirst) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceSlowLocalFirst)
}

func (*SlowFirst) IntervalStart(*sim.Engine) {}
func (*SlowFirst) IntervalEnd(*sim.Engine)   {}
