package policy

import (
	"time"

	"mtm/internal/admission"
	"mtm/internal/migrate"
	"mtm/internal/pebs"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// HeMem is the SOSP '21 two-tier baseline (§2.1, §9.6): profiling relies
// on PEBS samples alone (no PTE scans), hot pages move to local DRAM and
// cold pages to local PM. Its two structural limits are modelled exactly
// as the paper describes: sampling randomness misses hot pages that PTE
// scans would confirm (§5.5), and the policy knows only two tiers — it
// ignores remote nodes, so on a four-tier machine it leaves remote memory
// unmanaged.
type HeMem struct {
	MigrateBudget int64
	// HotSamples is the per-interval PEBS sample count above which a
	// region is considered hot.
	HotSamples int

	set  *region.Set
	buf  *pebs.Buffer
	mech migrate.Mechanism
	// carry accumulates unused promotion budget across intervals.
	carry int64
}

// NewHeMem returns the baseline.
func NewHeMem() *HeMem {
	return &HeMem{
		MigrateBudget: DefaultMigrateBudget,
		HotSamples:    2,
		mech:          migrate.Nimble{},
	}
}

func (p *HeMem) Name() string { return "HeMem" }

func (p *HeMem) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceLocalOnly)
}

func (p *HeMem) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		p.set = region.NewSet(region.DefaultNumScans)
		for _, v := range e.AS.VMAs() {
			p.set.InitVMA(v, 2*tier.MB)
		}
		p.buf = pebs.NewBuffer(len(e.Sys.Topo.Nodes), 1<<16, e.Rng)
		// HeMem samples continuously (no activation window) on both of
		// its tiers.
		p.buf.WindowFrac = 1.0
		e.PEBS = p.buf
	}
	all := make([]tier.NodeID, len(e.Sys.Topo.Nodes))
	for i := range all {
		all[i] = tier.NodeID(i)
	}
	p.buf.Arm(all...)
}

// Regions exposes the region set for profiling-quality comparisons.
func (p *HeMem) Regions() []*region.Region {
	if p.set == nil {
		return nil
	}
	return p.set.Regions()
}

func (p *HeMem) IntervalEnd(e *sim.Engine) {
	p.buf.Disarm()
	samples := p.buf.Samples()
	counts := make(map[*region.Region]int)
	regions := p.set.Regions()
	for _, s := range samples {
		if r := findRegion(regions, s.VMA, s.Page); r != nil {
			counts[r]++
		}
	}
	// Sample handling cost (HeMem's profiling is cheap; that is its
	// selling point and its weakness).
	handling := time.Duration(len(samples)) * 200 * time.Nanosecond
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanEmit("profiling", "pebs-sampling", e.SpanClockNs(), int64(handling),
			span.I("samples", int64(len(samples))))
	}
	e.ChargeProfiling(handling)

	// Exponential cooling, as in HeMem's hotset maintenance.
	for _, r := range regions {
		c := counts[r]
		r.PrevHI = r.HI
		r.HI = float64(c)
		r.WHI = 0.5*r.WHI + 0.5*r.HI
		r.Sampled = true
	}

	budget := p.MigrateBudget + p.carry
	if spanning {
		e.SpanBegin("policy", "plan",
			span.S("policy", p.Name()),
			span.I("regions", int64(len(regions))),
			span.I("budget", budget))
		defer e.SpanEnd()
	}
	defer func() {
		p.carry = budget
		if p.carry > 4*p.MigrateBudget {
			p.carry = 4 * p.MigrateBudget
		}
		if p.carry < 0 {
			p.carry = 0
		}
	}()
	// Promote regions with enough samples to local DRAM.
	view := e.Sys.Topo.View(e.HomeSocket)
	var dram, pm tier.NodeID = tier.Invalid, tier.Invalid
	for _, n := range view {
		local := e.Sys.Topo.Nodes[n].Socket == e.HomeSocket
		if !local {
			continue // two-tier world view: remote nodes do not exist
		}
		if e.Sys.Topo.Nodes[n].Kind == tier.DRAM && dram == tier.Invalid {
			dram = n
		}
		if e.Sys.Topo.Nodes[n].Kind != tier.DRAM && pm == tier.Invalid {
			pm = n
		}
	}
	if dram == tier.Invalid || pm == tier.Invalid {
		return
	}
	hist := buildHistogram(regions)
	for _, r := range hist.HottestFirst() {
		if budget <= 0 {
			if spanning {
				spanDecision(e, "stop", "budget-exhausted", r,
					span.I("budget", p.MigrateBudget+p.carry))
			}
			break
		}
		if r.WHI < float64(p.HotSamples) {
			if spanning {
				spanDecision(e, "stop", "cold-cutoff", r,
					span.F("threshold", float64(p.HotSamples)))
			}
			break
		}
		if nodeOf(r) != pm {
			continue
		}
		if !destUsable(e, r, pm, dram) {
			// Two-tier world view: with DRAM unusable there is nowhere
			// else to promote to.
			break
		}
		bytes, verdict := admitMigration(e, r, pm, dram, r.Bytes())
		if verdict == admission.VerdictReject {
			// Not worth the copy; colder regions follow, so move on.
			continue
		}
		if verdict == admission.VerdictDefer {
			// Two-tier world view: the PM→DRAM pair is the only one, so
			// budget pressure ends promotion for this interval.
			break
		}
		if e.Sys.Free(dram) < bytes {
			p.demoteCold(e, hist, dram, pm, bytes-e.Sys.Free(dram))
		}
		if e.Sys.Free(dram) < bytes {
			break
		}
		e.SetMoveContext("hot-samples")
		rep := p.mech.Migrate(e, r.V, r.Start, r.End, dram, int(bytes/r.V.PageSize))
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			budget -= rep.Bytes
			e.NotePromotion(rep.Bytes)
			if spanning {
				spanDecision(e, "promote", "hot-samples", r,
					span.F("threshold", float64(p.HotSamples)),
					span.S("dst", nodeName(e, dram)),
					span.I("bytes", rep.Bytes))
			}
		}
	}
}

// demoteCold moves the coldest DRAM-resident regions to PM.
func (p *HeMem) demoteCold(e *sim.Engine, hist *region.Histogram, dram, pm tier.NodeID, need int64) {
	if !e.DestUsable(dram, pm) {
		return
	}
	var freed int64
	for _, r := range hist.ColdestFirst() {
		if freed >= need {
			return
		}
		if nodeOf(r) != dram {
			continue
		}
		if e.Sys.Free(pm) < r.Bytes() {
			return
		}
		bytes, verdict := admitMigration(e, r, dram, pm, r.Bytes())
		if verdict != admission.VerdictAdmit {
			// Victim too hot to evict, or the demotion pair's budget is
			// drained; try the next-coldest region.
			continue
		}
		e.SetMoveContext("coldest-first")
		rep := p.mech.Migrate(e, r.V, r.Start, r.End, pm, int(bytes/r.V.PageSize))
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			freed += rep.Bytes
			e.NoteDemotion(rep.Bytes)
			if e.SpansEnabled() {
				spanDecision(e, "demote", "coldest-first", r,
					span.S("dst", nodeName(e, pm)),
					span.I("bytes", rep.Bytes))
			}
		}
	}
}

// findRegion locates the region containing page idx of v by binary search
// over the address-ordered region list.
func findRegion(regions []*region.Region, v *vm.VMA, idx int) *region.Region {
	addr := v.Addr(idx)
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := regions[mid]
		start := r.V.Addr(r.Start)
		end := start + uint64(r.Bytes())
		switch {
		case addr < start:
			hi = mid
		case addr >= end:
			lo = mid + 1
		default:
			return r
		}
	}
	return nil
}
