package policy

import (
	"mtm/internal/migrate"
	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/shm"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
)

// Nomad is the non-exclusive tiering solution (Nomad, OSDI'22 — the
// paper's §2 "transactional page migration" comparison point) rebuilt on
// MTM's profiler and promotion strategy. Promoted pages keep their
// slow-tier frame as a shadow copy instead of releasing it; a write to
// the fast copy invalidates the shadow, and a budgeted background sync
// re-copies dirty pages into their shadow frames off the critical path.
// When the fast tier fills, any victim whose shadow is still valid
// demotes by flipping the page-table entry back to the retained frame —
// zero copy bytes on the critical path — and only invalidated victims
// fall back to MTM's transactional copy demotion.
type Nomad struct {
	MTM
	// SyncBudget bounds the per-interval background shadow re-copy volume
	// (dirty-page write-back into retained slow-tier frames). The copies
	// run off the critical path, so the budget prices slow-tier bandwidth
	// interference, not application stall.
	SyncBudget int64
}

// NewNomad assembles the default Nomad: MTM's adaptive profiler, adaptive
// copy mechanism and budgets, plus shadow retention with a background
// sync budget of twice the migration budget (re-copies are cheaper to
// grant than critical-path copies — they only occupy the slow tier).
func NewNomad() *Nomad {
	p := &Nomad{SyncBudget: 2 * DefaultMigrateBudget}
	p.MTM = MTM{
		Prof:          profiler.NewMTM(profiler.DefaultMTMConfig()),
		Mech:          migrate.NewAdaptive(),
		MigrateBudget: DefaultMigrateBudget,
		DemoteCap:     2 * DefaultMigrateBudget,
		Initial:       PlaceFastFirst,
		label:         "Nomad",
		flipFirst:     true,
	}
	return p
}

func (p *Nomad) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		e.EnableShadow()
	}
	p.MTM.IntervalStart(e)
}

func (p *Nomad) IntervalEnd(e *sim.Engine) {
	p.Prof.Profile(e)
	// Background shadow sync runs before planning: pages that went quiet
	// regain flippable shadows ahead of any demotion demand. Whatever the
	// quiet pass leaves of the budget funds targeted write-backs of chosen
	// victims inside makeRoom (flipVictim) this interval.
	synced := e.ShadowSync(p.SyncBudget)
	if synced > 0 && e.SpansEnabled() {
		e.SpanEvent("shadow", "sync", span.I("bytes", synced))
	}
	p.syncLeft = p.SyncBudget - synced
	if p.syncLeft < 0 {
		p.syncLeft = 0
	}
	regions := p.Prof.Regions()
	if len(regions) == 0 {
		return
	}
	if p.Shm != nil {
		t := shm.FromRegions(uint64(e.Intervals), regions, func(r *region.Region) int32 {
			return int32(nodeOf(r))
		})
		_ = p.Shm.Publish(t)
	}
	hist := buildHistogram(regions)
	if e.SpansEnabled() {
		e.SpanBegin("policy", "plan",
			span.S("policy", p.label),
			span.I("regions", int64(len(regions))),
			span.I("budget", p.MigrateBudget+p.carry))
		defer e.SpanEnd()
	}
	p.promote(e, hist)
}

// flipVictim demotes up to remaining bytes of victim region r by
// shadow-flip: pages whose retained slow-tier frame is still valid are
// remapped onto it with no copy. The flip is priced through the
// admission layer's flip rule (provenance + ROI evidence; flips bypass
// the copy-cost gates) and executed by migrate.FlipSpan, which leaves
// invalidated or cooling-down pages for the caller's copy path. Returns
// the bytes freed on r's current node.
func (p *MTM) flipVictim(e *sim.Engine, r *region.Region, node tier.NodeID, remaining int64) int64 {
	if remaining < r.V.PageSize {
		return 0
	}
	if p.syncLeft >= r.V.PageSize {
		// Targeted write-back: the victim is leaving the fast tier either
		// way, so diverged shadows in the range are re-copied now (off the
		// critical path) to turn the demotion below into a free flip.
		cap := remaining
		if cap > p.syncLeft {
			cap = p.syncLeft
		}
		p.syncLeft -= e.ShadowSyncRange(r.V, r.Start, r.End, cap)
	}
	dst := e.ShadowDemoteDest(r.V, r.Start, r.End)
	if dst == tier.Invalid {
		return 0
	}
	if !destUsable(e, r, node, dst) {
		return 0
	}
	maxPages := int(remaining / r.V.PageSize)
	bytes := int64(minInt(maxPages, r.Pages())) * r.V.PageSize
	flipNs := float64(migrate.FlipCost(r.V.PageSize))
	dec := e.AdmitFlip(node, dst, bytes, r.WHI, reaccessEvidence(r), flipNs)
	if e.SpansEnabled() {
		spanDecision(e, dec.Verdict.String(), dec.Rule, r,
			span.F("roi", dec.ROI),
			span.I("allowed_bytes", dec.AllowedBytes),
			span.I("budget_bytes", dec.BudgetBytes),
			span.S("dst", nodeName(e, dst)))
	}
	e.SetMoveContext("shadow-flip")
	rep := migrate.FlipSpan(e, r.V, r.Start, r.End, maxPages)
	e.ClearMoveContext()
	if rep.Bytes > 0 && e.SpansEnabled() {
		// FlipDemote already closed the demotion ledger per page; this
		// event is provenance only.
		spanDecision(e, "demote", "shadow-flip", r,
			span.S("dst", nodeName(e, dst)),
			span.I("pages", int64(rep.MovedPages)),
			span.I("bytes", rep.Bytes))
	}
	return rep.Bytes
}
