package policy

import (
	"mtm/internal/admission"
	"mtm/internal/migrate"
	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// AutoTiering is the ATC '21 baseline (§2.1, §9.1): random 256 MB
// profiling windows, flexible promotion directly across tiers (unlike
// AutoNUMA's tier-by-tier steps), but no hotness-ranked strategy — any
// recently-accessed sampled region is a candidate — and *opportunistic
// demotion*: when the destination is full, a random resident region is
// pushed down regardless of its hotness, which is where it loses to MTM's
// histogram-guided slow demotion.
type AutoTiering struct {
	MigrateBudget int64

	prof *profiler.RandomChunk
	mech migrate.Mechanism
	// carry accumulates unused promotion budget across intervals.
	carry int64
}

// NewAutoTiering returns the baseline.
func NewAutoTiering() *AutoTiering {
	return &AutoTiering{
		MigrateBudget: DefaultMigrateBudget,
		prof:          profiler.NewRandomChunk(),
		mech:          migrate.MovePages{},
	}
}

func (p *AutoTiering) Name() string { return "AutoTiering" }

// Profiler exposes the underlying sampling profiler.
func (p *AutoTiering) Profiler() profiler.Profiler { return p.prof }

// Regions exposes the profiler's region set for profiling-quality
// comparisons (the fidelity oracle grades it against ground truth).
func (p *AutoTiering) Regions() []*region.Region {
	if p.prof == nil {
		return nil
	}
	return p.prof.Regions()
}

func (p *AutoTiering) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceFastFirst)
}

func (p *AutoTiering) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		p.prof.Attach(e)
	}
	p.prof.IntervalStart(e)
}

func (p *AutoTiering) IntervalEnd(e *sim.Engine) {
	p.prof.Profile(e)
	regions := p.prof.Regions()
	budget := p.MigrateBudget + p.carry
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("policy", "plan",
			span.S("policy", p.Name()),
			span.I("regions", int64(len(regions))),
			span.I("budget", budget))
		defer e.SpanEnd()
	}
	defer func() {
		p.carry = budget
		if p.carry > 4*p.MigrateBudget {
			p.carry = 4 * p.MigrateBudget
		}
		if p.carry < 0 {
			p.carry = 0
		}
	}()

	for _, r := range regions {
		if budget <= 0 {
			if spanning {
				spanDecision(e, "stop", "budget-exhausted", r,
					span.I("budget", p.MigrateBudget+p.carry))
			}
			return
		}
		// Candidate = sampled this interval and accessed at all.
		if !r.Sampled || r.HI <= 0 {
			continue
		}
		node := nodeOf(r)
		if node == tier.Invalid {
			continue
		}
		socket := regionSocket(e, r)
		view := e.Sys.Topo.View(socket)
		rank := rankOf(view, node)
		if rank <= 0 {
			continue
		}
		pages := r.Pages()
		if max := int(budget / r.V.PageSize); pages > max {
			pages = max
		}
		if pages == 0 {
			return
		}
		need := int64(pages) * r.V.PageSize
		// Flexible cross-tier promotion: straight to the fastest tier
		// that has (or can opportunistically be given) space.
		for dr := 0; dr < rank; dr++ {
			dst := view[dr]
			if !destUsable(e, r, node, dst) {
				continue
			}
			allowed, verdict := admitMigration(e, r, node, dst, need)
			if verdict == admission.VerdictReject {
				// Slower destinations only lower the ROI; give up on the
				// region for this interval.
				break
			}
			if verdict == admission.VerdictDefer {
				// Budget pressure on this pair; the next-fastest tier is
				// a different pair and may still have budget.
				continue
			}
			aPages := int(allowed / r.V.PageSize)
			if e.Sys.Free(dst) < allowed {
				p.opportunisticDemote(e, regions, dst, allowed-e.Sys.Free(dst), view)
			}
			if e.Sys.Free(dst) < allowed {
				continue
			}
			e.SetMoveContext("sampled-recent")
			rep := p.mech.Migrate(e, r.V, r.Start, r.Start+aPages, dst, 0)
			e.ClearMoveContext()
			if rep.Bytes > 0 {
				budget -= rep.Bytes
				e.NotePromotion(rep.Bytes)
				if spanning {
					spanDecision(e, "promote", "sampled-recent", r,
						span.F("threshold", 0),
						span.S("dst", nodeName(e, dst)),
						span.I("bytes", rep.Bytes))
				}
			}
			break
		}
	}
}

// opportunisticDemote evicts randomly chosen resident regions from dst to
// any lower tier with room — not hotness-guided, per the paper's
// characterisation.
func (p *AutoTiering) opportunisticDemote(e *sim.Engine, regions []*region.Region, dst tier.NodeID, need int64, view []tier.NodeID) {
	dstRank := rankOf(view, dst)
	if dstRank < 0 || dstRank+1 >= len(view) {
		return
	}
	var freed int64
	// Random starting point, linear probe: cheap and exactly as
	// unguided as the mechanism being modelled.
	if len(regions) == 0 {
		return
	}
	start := e.Rng.Intn(len(regions))
	for i := 0; i < len(regions) && freed < need; i++ {
		r := regions[(start+i)%len(regions)]
		if nodeOf(r) != dst {
			continue
		}
		bytes := int64(r.Pages()) * r.V.PageSize
		lower := tier.Invalid
		for dr := dstRank + 1; dr < len(view); dr++ {
			if e.Sys.Free(view[dr]) >= bytes && e.DestUsable(dst, view[dr]) {
				lower = view[dr]
				break
			}
		}
		if lower == tier.Invalid {
			continue
		}
		allowed, verdict := admitMigration(e, r, dst, lower, bytes)
		if verdict != admission.VerdictAdmit {
			// Even opportunistic demotion respects the victim-heat and
			// budget gates; probe the next region.
			continue
		}
		e.SetMoveContext("opportunistic")
		rep := p.mech.Migrate(e, r.V, r.Start, r.End, lower, int(allowed/r.V.PageSize))
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			freed += rep.Bytes
			e.NoteDemotion(rep.Bytes)
			if e.SpansEnabled() {
				spanDecision(e, "demote", "opportunistic", r,
					span.S("dst", nodeName(e, lower)),
					span.I("bytes", rep.Bytes))
			}
		}
	}
}
