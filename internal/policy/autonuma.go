package policy

import (
	"mtm/internal/admission"
	"mtm/internal/migrate"
	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// TieredAutoNUMA is the Linux memory-tiering baseline built on NUMA
// balancing (§2.1, §9): a sequential hint-fault scan covers 256 MB per
// interval, pages judged hot are promoted, and — the structural limitation
// §9.1 highlights — promotion moves one tier at a time toward the fast
// memory, preferring swaps within a socket, so a page on the remote slow
// tier needs several intervals to reach the top. Migration uses Linux
// move_pages().
//
// Patched selects the two upstream improvements evaluated in the paper:
// hot-page selection via hint-fault latency and automatic hot-threshold
// adjustment targeting the promotion rate limit.
type TieredAutoNUMA struct {
	Patched       bool
	MigrateBudget int64

	prof *profiler.SequentialScan
	mech migrate.Mechanism
	// hotThreshold is the WHI above which a region is promotion-worthy;
	// the patched variant adjusts it to track the budget.
	hotThreshold float64
	// HotBytesIdentified accumulates the volume the policy classified
	// hot (Table 3).
	HotBytesIdentified int64
	// carry accumulates unused promotion budget across intervals.
	carry int64
}

// NewTieredAutoNUMA returns the baseline; patched=false is the vanilla
// variant.
func NewTieredAutoNUMA(patched bool) *TieredAutoNUMA {
	return &TieredAutoNUMA{
		Patched:       patched,
		MigrateBudget: DefaultMigrateBudget,
		prof:          profiler.NewSequentialScan(patched),
		mech:          migrate.MovePages{},
		hotThreshold:  0.5,
	}
}

func (p *TieredAutoNUMA) Name() string {
	if p.Patched {
		return "tiered-AutoNUMA"
	}
	return "vanilla tiered-AutoNUMA"
}

// Profiler exposes the underlying scan profiler (ablations, stats).
func (p *TieredAutoNUMA) Profiler() profiler.Profiler { return p.prof }

// Regions exposes the profiler's region set for profiling-quality
// comparisons (the fidelity oracle grades it against ground truth).
func (p *TieredAutoNUMA) Regions() []*region.Region {
	if p.prof == nil {
		return nil
	}
	return p.prof.Regions()
}

func (p *TieredAutoNUMA) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, PlaceFastFirst)
}

func (p *TieredAutoNUMA) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		p.prof.Attach(e)
	}
	p.prof.IntervalStart(e)
}

func (p *TieredAutoNUMA) IntervalEnd(e *sim.Engine) {
	p.prof.Profile(e)
	regions := p.prof.Regions()
	budget := p.MigrateBudget + p.carry
	var promoted int64
	spanning := e.SpansEnabled()
	// The vanilla variant classifies on "any access this window"; the
	// patched one compares WHI to the auto-adjusted threshold.
	threshold := p.hotThreshold
	if !p.Patched {
		threshold = 0
	}
	if spanning {
		e.SpanBegin("policy", "plan",
			span.S("policy", p.Name()),
			span.I("regions", int64(len(regions))),
			span.F("hot_threshold", threshold),
			span.I("budget", budget))
		defer e.SpanEnd()
	}

	for _, r := range regions {
		if budget <= 0 {
			if spanning {
				spanDecision(e, "stop", "budget-exhausted", r,
					span.I("budget", p.MigrateBudget+p.carry))
			}
			break
		}
		hot := r.WHI > p.hotThreshold
		if !p.Patched {
			// Vanilla: only the most recent scan window matters and any
			// observed access makes a candidate.
			hot = r.Sampled && r.HI > 0
		}
		if !hot {
			continue
		}
		p.HotBytesIdentified += r.Bytes()
		node := nodeOf(r)
		if node == tier.Invalid {
			continue
		}
		socket := regionSocket(e, r)
		view := e.Sys.Topo.View(socket)
		rank := rankOf(view, node)
		if rank <= 0 {
			continue
		}
		// One tier up only; same-socket destinations are preferred by
		// construction of the view (local nodes rank earlier).
		dst := view[rank-1]
		if !destUsable(e, r, node, dst) {
			continue
		}
		pages := r.Pages()
		if max := int(budget / r.V.PageSize); pages > max {
			pages = max
		}
		if pages == 0 {
			break
		}
		need, verdict := admitMigration(e, r, node, dst, int64(pages)*r.V.PageSize)
		if verdict != admission.VerdictAdmit {
			// One-tier-up only: there is no alternative pair for this
			// region, so a refusal skips it for this interval.
			continue
		}
		pages = int(need / r.V.PageSize)
		if e.Sys.Free(dst) < need {
			p.demoteFor(e, regions, dst, need-e.Sys.Free(dst), view)
		}
		if e.Sys.Free(dst) < need {
			if spanning {
				spanDecision(e, "skip", "no-room", r,
					span.S("dst", nodeName(e, dst)))
			}
			continue
		}
		e.SetMoveContext("hot-threshold")
		rep := p.mech.Migrate(e, r.V, r.Start, r.Start+pages, dst, 0)
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			budget -= rep.Bytes
			promoted += rep.Bytes
			e.NotePromotion(rep.Bytes)
			if spanning {
				spanDecision(e, "promote", "hot-threshold", r,
					span.F("threshold", threshold),
					span.S("dst", nodeName(e, dst)),
					span.I("bytes", rep.Bytes))
			}
		}
	}

	p.carry = budget - promoted
	if p.carry > 4*p.MigrateBudget {
		p.carry = 4 * p.MigrateBudget
	}
	if p.carry < 0 {
		p.carry = 0
	}
	if p.Patched {
		// Automatic hot-threshold adjustment: promote close to, but not
		// above, the rate limit.
		switch {
		case promoted >= p.MigrateBudget:
			p.hotThreshold *= 1.25
		case promoted < p.MigrateBudget/4 && p.hotThreshold > 0.05:
			p.hotThreshold *= 0.8
		}
	}
}

// demoteFor pushes the coldest regions resident on dst one tier down to
// make room for a promotion, LRU-style: lowest WHI first.
func (p *TieredAutoNUMA) demoteFor(e *sim.Engine, regions []*region.Region, dst tier.NodeID, need int64, view []tier.NodeID) {
	dstRank := rankOf(view, dst)
	if dstRank < 0 || dstRank+1 >= len(view) {
		return
	}
	hist := buildHistogram(regions)
	var freed int64
	for _, r := range hist.ColdestFirst() {
		if freed >= need {
			return
		}
		if nodeOf(r) != dst {
			continue
		}
		bytes := int64(r.Pages()) * r.V.PageSize
		lower := tier.Invalid
		for dr := dstRank + 1; dr < len(view); dr++ {
			if e.Sys.Free(view[dr]) >= bytes && e.DestUsable(dst, view[dr]) {
				lower = view[dr]
				break
			}
		}
		if lower == tier.Invalid {
			continue
		}
		allowed, verdict := admitMigration(e, r, dst, lower, bytes)
		if verdict != admission.VerdictAdmit {
			// Victim too hot or pair budget drained; next-coldest.
			continue
		}
		e.SetMoveContext("lru-coldest")
		rep := p.mech.Migrate(e, r.V, r.Start, r.End, lower, int(allowed/r.V.PageSize))
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			freed += rep.Bytes
			e.NoteDemotion(rep.Bytes)
			if e.SpansEnabled() {
				spanDecision(e, "demote", "lru-coldest", r,
					span.S("dst", nodeName(e, lower)),
					span.I("bytes", rep.Bytes))
			}
		}
	}
}
