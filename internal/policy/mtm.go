package policy

import (
	"math/bits"

	"mtm/internal/admission"
	"mtm/internal/migrate"
	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/shm"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// MTM is the complete MTM solution (§6): any Profiler feeding a global
// WHI histogram, the "fast promotion and slow demotion" strategy, and the
// adaptive migration mechanism. The profiler is pluggable so the §9.3
// ablations (Thermostat or tiered-AutoNUMA profiling + MTM migration) run
// through the same policy code.
type MTM struct {
	Prof profiler.Profiler
	Mech migrate.Mechanism
	// MigrateBudget is N, the per-interval promotion volume (§6.1).
	MigrateBudget int64
	// DemoteCap bounds demotion volume per interval so a full fast tier
	// cannot thrash; the paper's slow-demotion policy only demotes to
	// make room.
	DemoteCap int64
	// Initial is the first-touch placement order (slow-local-first by
	// default, §9.1).
	Initial Placement
	// Shm, when set, receives a snapshot of the profiling results at the
	// end of every interval — the shared-memory table the §8 kernel
	// module publishes for the user-space daemon.
	Shm *shm.Segment

	label string
	// carry accumulates unused promotion budget so a budget smaller than
	// one huge page still yields the configured average migration rate.
	carry int64
	// flipFirst makes makeRoom try zero-copy shadow-flip demotion before
	// pricing a copy for each victim (non-exclusive tiering; set by Nomad).
	flipFirst bool
	// syncLeft is the interval's remaining targeted shadow write-back
	// allowance (replenished by Nomad.IntervalEnd from SyncBudget).
	syncLeft int64
}

// NewMTM assembles the paper's default MTM: adaptive profiler, adaptive
// migration mechanism, 200 MB budget.
//
// Initial placement defaults to first-touch rather than the paper's
// slow-local-first (§9.1): Table 4 shows the two converge under MTM once
// migration has cycled the fast tiers, and at simulation scale runs are
// short enough that starting cold would understate every MTM result.
// Table 4's experiment sets Initial = PlaceSlowLocalFirst explicitly.
func NewMTM() *MTM {
	return &MTM{
		Prof:          profiler.NewMTM(profiler.DefaultMTMConfig()),
		Mech:          migrate.NewAdaptive(),
		MigrateBudget: DefaultMigrateBudget,
		DemoteCap:     2 * DefaultMigrateBudget,
		Initial:       PlaceFastFirst,
		label:         "MTM",
	}
}

// NewMTMVariant assembles an MTM with a custom label, profiler and
// mechanism (ablation studies).
func NewMTMVariant(label string, p profiler.Profiler, m migrate.Mechanism) *MTM {
	v := NewMTM()
	v.Prof = p
	v.Mech = m
	v.label = label
	return v
}

func (p *MTM) Name() string { return p.label }

// Regions exposes the profiler's region set for profiling-quality
// comparisons (the fidelity oracle grades it against ground truth).
func (p *MTM) Regions() []*region.Region {
	if p.Prof == nil {
		return nil
	}
	return p.Prof.Regions()
}

func (p *MTM) Place(e *sim.Engine, v *vm.VMA, idx int, socket int) tier.NodeID {
	return place(e, v, socket, p.Initial)
}

func (p *MTM) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		p.Prof.Attach(e)
	}
	p.Prof.IntervalStart(e)
}

func (p *MTM) IntervalEnd(e *sim.Engine) {
	p.Prof.Profile(e)
	regions := p.Prof.Regions()
	if len(regions) == 0 {
		return
	}
	if p.Shm != nil {
		t := shm.FromRegions(uint64(e.Intervals), regions, func(r *region.Region) int32 {
			return int32(nodeOf(r))
		})
		// A full table is dropped rather than blocking the interval,
		// like a missed publish in the real system.
		_ = p.Shm.Publish(t)
	}
	hist := buildHistogram(regions)
	if e.SpansEnabled() {
		e.SpanBegin("policy", "plan",
			span.S("policy", p.label),
			span.I("regions", int64(len(regions))),
			span.I("budget", p.MigrateBudget+p.carry))
		defer e.SpanEnd()
	}
	p.promote(e, hist)
}

// promote walks the histogram hottest-first and moves regions directly to
// the fastest tier of their dominant socket's view ("fast promotion"),
// demoting the coldest residents one tier down when space is needed
// ("slow demotion"). Migration volume is capped at MigrateBudget per
// interval; unused budget carries over so rates hold at any granularity.
func (p *MTM) promote(e *sim.Engine, hist *region.Histogram) {
	budget := p.MigrateBudget + p.carry
	spent := int64(0)
	demoteBudget := p.DemoteCap
	spanning := e.SpansEnabled()
	for _, r := range hist.HottestFirst() {
		if budget-spent < r.V.PageSize {
			if spanning {
				spanDecision(e, "stop", "budget-exhausted", r,
					span.I("budget", budget), span.I("spent", spent))
			}
			break
		}
		if r.WHI <= 0 {
			// Everything hotter is placed; the rest is cold.
			if spanning {
				spanDecision(e, "stop", "cold-cutoff", r, span.F("threshold", 0))
			}
			break
		}
		socket := regionSocket(e, r)
		view := e.Sys.Topo.View(socket)
		// worstRank is the slowest placement of any page in the region;
		// partially promoted regions keep their remainder eligible. The
		// present plane narrows the walk to mapped pages word-wide.
		worstRank := 0
		for w := r.Start / vm.WordPages; w*vm.WordPages < r.End; w++ {
			word := r.V.PresentRangeWord(w, r.Start, r.End)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if rk := rankOf(view, r.V.Node(i)); rk > worstRank {
					worstRank = rk
				}
			}
		}
		if worstRank <= 0 {
			// Already in the fastest tier for its accessors.
			if spanning {
				spanDecision(e, "skip", "already-fastest", r)
			}
			continue
		}
		maxPages := int((budget - spent) / r.V.PageSize)
		// Fast promotion: straight to the top tier, then 2nd-fastest,
		// etc., with room made by slow demotion on the way.
		for dstRank := 0; dstRank < worstRank; dstRank++ {
			dst := view[dstRank]
			if !destUsable(e, r, nodeOf(r), dst) {
				// Draining/offline tier or open circuit breaker: route
				// around it and consider the next-fastest tier.
				continue
			}
			if e.PromotionPressure(dst) {
				// Admission control (TierBPF-style shedding): the tier
				// signals transient allocation pressure, so promoting into
				// it now would burn budget on doomed moves. Defer; the
				// region stays eligible and the unused budget carries into
				// the next interval.
				e.NoteDeferredPromotionTo(dst)
				if spanning {
					spanDecision(e, "defer", "admission-control", r,
						span.S("dst", nodeName(e, dst)))
				}
				continue
			}
			need := int64(minInt(maxPages, r.Pages())) * r.V.PageSize
			allowed, verdict := admitMigration(e, r, nodeOf(r), dst, need)
			if verdict == admission.VerdictReject {
				// Not worth the copy at this hotness: every slower
				// destination only lowers the ROI, so the region is done.
				break
			}
			if verdict == admission.VerdictDefer {
				// This pair's budget is under pressure; a slower tier is a
				// different pair and may still have budget.
				continue
			}
			need = allowed
			if e.Sys.Free(dst) < need {
				demoted := p.makeRoom(e, hist, dst, need-e.Sys.Free(dst), view, demoteBudget, r.WHI)
				demoteBudget -= demoted
			}
			if e.Sys.Free(dst) < r.V.PageSize {
				// Slow demotion could not make room; try the next-fastest
				// tier.
				if spanning {
					spanDecision(e, "skip", "no-room", r,
						span.S("dst", nodeName(e, dst)))
				}
				continue
			}
			e.SetMoveContext("fast-promotion")
			rep := p.Mech.Migrate(e, r.V, r.Start, r.End, dst, minInt(maxPages, int(allowed/r.V.PageSize)))
			e.ClearMoveContext()
			if rep.Bytes > 0 {
				spent += rep.Bytes
				e.NotePromotion(rep.Bytes)
				if spanning {
					spanDecision(e, "promote", "fast-promotion", r,
						span.F("threshold", 0),
						span.S("dst", nodeName(e, dst)),
						span.I("bytes", rep.Bytes))
				}
				break
			}
			// Every page-move into dst aborted (flaky tier, contended
			// pages). Re-plan onto the next-fastest tier instead of giving
			// up on the region: the aborted attempts are already accounted
			// per-pair, and a success on the re-planned pair must not be
			// double-attributed to this one.
			if spanning {
				spanDecision(e, "skip", "all-aborted", r,
					span.S("dst", nodeName(e, dst)))
			}
		}
	}
	p.carry = budget - spent
	if p.carry > 4*p.MigrateBudget {
		p.carry = 4 * p.MigrateBudget // nothing promotable: don't hoard
	}
	if p.carry < 0 {
		p.carry = 0
	}
}

// makeRoom demotes the coldest regions resident on node to the next lower
// tier with space, until freed bytes are available or the demotion budget
// runs out. Victims must be strictly colder than the promotion candidate
// (candidateWHI): slow demotion never evicts pages likelier to be accessed
// than what replaces them (§6.2). It returns the bytes demoted.
func (p *MTM) makeRoom(e *sim.Engine, hist *region.Histogram, node tier.NodeID, need int64, view []tier.NodeID, budget int64, candidateWHI float64) int64 {
	if budget <= 0 {
		return 0
	}
	nodeRank := rankOf(view, node)
	spanning := e.SpansEnabled()
	var demoted int64
	if p.flipFirst {
		// Non-exclusive tiering: a full flip pass runs before any copy is
		// priced. Among eligible victims, one backed by retained shadow
		// frames demotes for the cost of a remap — so free demotions are
		// taken from the whole cold set first, and the copy pass below
		// only covers whatever need the shadow supply could not.
		for _, r := range hist.ColdestFirst() {
			if demoted >= need || demoted >= budget {
				break
			}
			if r.WHI >= candidateWHI {
				break
			}
			if nodeOf(r) != node {
				continue
			}
			remaining := need - demoted
			if b := budget - demoted; b < remaining {
				remaining = b
			}
			demoted += p.flipVictim(e, r, node, remaining)
		}
	}
	for _, r := range hist.ColdestFirst() {
		if demoted >= need || demoted >= budget {
			break
		}
		if r.WHI >= candidateWHI {
			// Only hotter-or-equal regions remain on this node; slow
			// demotion never evicts them for a colder candidate.
			if spanning {
				spanDecision(e, "stop", "victim-too-hot", r,
					span.F("threshold", candidateWHI))
			}
			break
		}
		if nodeOf(r) != node {
			continue
		}
		// Demote no more than the remaining need/budget allows, even
		// from a large region, and only to a lower tier with room.
		remaining := need - demoted
		if b := budget - demoted; b < remaining {
			remaining = b
		}
		maxPages := int((remaining + r.V.PageSize - 1) / r.V.PageSize)
		bytes := int64(minInt(maxPages, r.Pages())) * r.V.PageSize
		var dst tier.NodeID = tier.Invalid
		for dr := nodeRank + 1; dr < len(view); dr++ {
			if e.Sys.Free(view[dr]) >= bytes && e.DestUsable(node, view[dr]) {
				dst = view[dr]
				break
			}
		}
		if dst == tier.Invalid {
			continue
		}
		allowed, verdict := admitMigration(e, r, node, dst, bytes)
		if verdict != admission.VerdictAdmit {
			// Victim vetoed: its own ROI says it is still too hot to
			// evict, or the demotion pair's budget is drained. Try the
			// next-coldest victim.
			continue
		}
		e.SetMoveContext("slow-demotion")
		rep := p.Mech.Migrate(e, r.V, r.Start, r.End, dst, int(allowed/r.V.PageSize))
		e.ClearMoveContext()
		if rep.Bytes > 0 {
			demoted += rep.Bytes
			e.NoteDemotion(rep.Bytes)
			if spanning {
				spanDecision(e, "demote", "slow-demotion", r,
					span.F("threshold", candidateWHI),
					span.S("dst", nodeName(e, dst)),
					span.I("bytes", rep.Bytes))
			}
		}
	}
	return demoted
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
