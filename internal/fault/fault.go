// Package fault is the deterministic fault-injection layer of the
// simulator. Real multi-tiered kernels live with routine failure:
// move_pages() returns EBUSY/EAGAIN for pinned or locked pages, tiers fill
// up mid-migration, PEBS drops samples under interrupt storms, and link
// bandwidth degrades under contention from other tenants. The happy-path
// simulator hides all of that; an Injector puts it back, seed-driven and
// fully deterministic, so robustness experiments are as reproducible as
// performance ones.
//
// The Injector implements sim.FaultPlane. All randomness comes from its
// own rand.Rand, never the engine's: attaching an injector whose classes
// are all disabled leaves a run bit-identical to one with no injector at
// all, and enabling a class perturbs only the decisions that class owns.
//
// Failure classes (each with a real-kernel analogue, see DESIGN.md):
//
//   - page-busy: per-page transient migration failure (EBUSY on a pinned
//     or concurrently-accessed page), with a wasted-work time penalty;
//   - tier-pressure: a destination tier transiently signals allocation
//     pressure (watermarks breached; admission control should back off);
//   - sample-drop: PEBS interrupt storms lose a fraction of samples;
//   - link-degrade: a socket→node link runs at a fraction of its rated
//     bandwidth for a window of intervals;
//   - mem-error: a tier throws uncorrectable memory errors that poison
//     resident pages (the HWPOISON soft-offline regime), feeding the
//     tier-health state machine in internal/health;
//   - tier-flaky: copies *into* one tier fail at a high per-attempt rate
//     (a dying DIMM or a flaky CXL link), the input that trips migration
//     circuit breakers.
package fault

import (
	"math/rand"
	"sort"
	"time"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// DefaultBusyPenalty is the wasted kernel time of one failed page-move
// attempt (lock the page, discover it is busy, unwind) when a scenario
// does not set its own.
const DefaultBusyPenalty = 3 * time.Microsecond

// Config describes the failure classes an Injector drives. The zero value
// injects nothing. Probabilities are in [0, 1]; a "duty" is the fraction
// of profiling intervals during which a class is active (its storm
// windows), drawn independently per interval.
type Config struct {
	// PageBusyProb is the per-attempt probability that copying one page
	// fails with an EBUSY-style transient error while the class is active.
	PageBusyProb float64
	// PageBusyDuty is the fraction of intervals the EBUSY class is active
	// (1 = every interval).
	PageBusyDuty float64
	// BusyPenalty is the wasted kernel time charged per failed attempt;
	// 0 selects DefaultBusyPenalty.
	BusyPenalty time.Duration

	// PressureProb is the per-node, per-interval probability that a tier
	// signals transient allocation pressure. Admission control defers
	// promotions into pressured tiers.
	PressureProb float64

	// SampleDropDuty is the fraction of intervals a PEBS drop storm is
	// active; SampleDropFrac is the fraction of samples lost during one.
	SampleDropDuty float64
	SampleDropFrac float64

	// LinkDegradeDuty is the fraction of intervals any given socket→node
	// link is degraded; LinkDegradeFactor (>1) divides its bandwidth.
	LinkDegradeDuty   float64
	LinkDegradeFactor float64

	// CapacityTaxFrac models co-tenant memory consumption: the engine
	// reserves this fraction of every node's capacity up front (see
	// sim.SetFaultPlane), so workloads sized for the full machine hit real
	// exhaustion and exercise the emergency-reclaim / OOM path.
	CapacityTaxFrac float64

	// MemErrorProb is the per-interval probability that the target tier
	// throws uncorrectable memory errors; each event poisons
	// MemErrorBurst resident pages (HWPOISON soft-offline).
	MemErrorProb float64
	// MemErrorBurst is the pages poisoned per mem-error event (0 → 1).
	MemErrorBurst int
	// MemErrorNode selects the tier the errors strike, as a node index
	// into the machine; out-of-range values (including the default -1 of
	// LastNode) clamp to the machine's last node at Attach time.
	MemErrorNode int

	// TierFailProb is the per-attempt probability that copying a page
	// INTO the target tier fails while the class's storm window is open —
	// the sustained-failure input that trips migration circuit breakers.
	TierFailProb float64
	// TierFailDuty is the fraction of intervals the tier-flaky class is
	// active (0 → 1).
	TierFailDuty float64
	// TierFailNode selects the flaky destination tier; clamping rules
	// match MemErrorNode.
	TierFailNode int
}

// LastNode selects the machine's last (slowest) node for MemErrorNode /
// TierFailNode.
const LastNode = -1

// UsesHealth reports whether the config enables a failure class that
// requires the tier-health subsystem (page poisoning or destination-tier
// copy failures). The engine auto-enables health for such scenarios.
func (c Config) UsesHealth() bool {
	return c.MemErrorProb > 0 || c.TierFailProb > 0
}

// Injector is a deterministic fault source implementing sim.FaultPlane.
// Not safe for concurrent use (the engine is single-threaded).
type Injector struct {
	Cfg Config

	rng     *rand.Rand
	sockets int
	nodes   int

	busyActive  bool
	dropActive  bool
	pressured   []bool
	degraded    [][]bool
	memErrNode  int // resolved target node of the mem-error class
	flakyNode   int // resolved target node of the tier-flaky class
	memErrPages int // pages to poison this interval (0 outside a burst)
	flakyActive bool

	// Decision counters, for tests and reporting.
	BusyInjected      int64
	PressureInjected  int64
	MemErrorsInjected int64
	TierFailInjected  int64
}

// NewInjector builds an injector over cfg with its own deterministic RNG.
func NewInjector(cfg Config, seed int64) *Injector {
	if cfg.BusyPenalty <= 0 {
		cfg.BusyPenalty = DefaultBusyPenalty
	}
	return &Injector{Cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// Attach sizes the injector's per-node state to the machine. The engine
// calls it from SetFaultPlane.
func (in *Injector) Attach(sockets, nodes int) {
	in.sockets, in.nodes = sockets, nodes
	in.pressured = make([]bool, nodes)
	in.degraded = make([][]bool, sockets)
	for s := range in.degraded {
		in.degraded[s] = make([]bool, nodes)
	}
	in.memErrNode = clampNode(in.Cfg.MemErrorNode, nodes)
	in.flakyNode = clampNode(in.Cfg.TierFailNode, nodes)
}

// clampNode resolves a configured target node against the machine:
// out-of-range indices (including LastNode) clamp to the last node, so a
// scenario written for the four-tier Optane box still strikes a real
// tier on a two-tier machine.
func clampNode(n, nodes int) int {
	if n < 0 || n >= nodes {
		return nodes - 1
	}
	return n
}

// BeginInterval redraws the storm windows for one profiling interval.
// Draws happen only for enabled classes, in a fixed order, so a config
// with one class enabled consumes exactly that class's share of the
// random stream.
func (in *Injector) BeginInterval(interval int) {
	if in.Cfg.PageBusyProb > 0 {
		duty := in.Cfg.PageBusyDuty
		if duty <= 0 {
			duty = 1
		}
		in.busyActive = in.rng.Float64() < duty
	}
	if in.Cfg.PressureProb > 0 {
		for n := range in.pressured {
			in.pressured[n] = in.rng.Float64() < in.Cfg.PressureProb
			if in.pressured[n] {
				in.PressureInjected++
			}
		}
	}
	if in.Cfg.SampleDropDuty > 0 && in.Cfg.SampleDropFrac > 0 {
		in.dropActive = in.rng.Float64() < in.Cfg.SampleDropDuty
	}
	if in.Cfg.LinkDegradeDuty > 0 && in.Cfg.LinkDegradeFactor > 1 {
		for s := range in.degraded {
			for n := range in.degraded[s] {
				in.degraded[s][n] = in.rng.Float64() < in.Cfg.LinkDegradeDuty
			}
		}
	}
	// The health classes draw strictly after the original four so that
	// configs without them consume the exact same stream as before.
	if in.Cfg.MemErrorProb > 0 {
		in.memErrPages = 0
		if in.rng.Float64() < in.Cfg.MemErrorProb {
			burst := in.Cfg.MemErrorBurst
			if burst <= 0 {
				burst = 1
			}
			in.memErrPages = burst
			in.MemErrorsInjected += int64(burst)
		}
	}
	if in.Cfg.TierFailProb > 0 {
		duty := in.Cfg.TierFailDuty
		if duty <= 0 {
			duty = 1
		}
		in.flakyActive = in.rng.Float64() < duty
	}
}

// MemErrorPages returns how many pages the mem-error class poisons on
// node n this interval (an optional extension beyond sim.FaultPlane; the
// health layer reads it at interval start).
func (in *Injector) MemErrorPages(n tier.NodeID) int {
	if int(n) != in.memErrNode {
		return 0
	}
	return in.memErrPages
}

// PageBusy reports whether one attempt to copy page idx of v to dst fails
// with a transient EBUSY, and the wasted kernel time of the attempt.
func (in *Injector) PageBusy(v *vm.VMA, idx int, dst tier.NodeID) (bool, time.Duration) {
	if in.busyActive && in.Cfg.PageBusyProb > 0 {
		if in.rng.Float64() < in.Cfg.PageBusyProb {
			in.BusyInjected++
			return true, in.Cfg.BusyPenalty
		}
	}
	// tier-flaky draws after page-busy (fixed class order) and only for
	// attempts aimed at the flaky destination.
	if in.flakyActive && int(dst) == in.flakyNode {
		if in.rng.Float64() < in.Cfg.TierFailProb {
			in.TierFailInjected++
			return true, in.Cfg.BusyPenalty
		}
	}
	return false, 0
}

// DestPressure reports whether node n is under transient allocation
// pressure this interval.
func (in *Injector) DestPressure(n tier.NodeID) bool {
	if int(n) < 0 || int(n) >= len(in.pressured) {
		return false
	}
	return in.pressured[n]
}

// SampleDropFrac returns the fraction of PEBS samples lost this interval
// (0 outside a storm).
func (in *Injector) SampleDropFrac() float64 {
	if !in.dropActive {
		return 0
	}
	return in.Cfg.SampleDropFrac
}

// CapacityTax returns the fraction of every node's capacity held by
// simulated co-tenants. The engine reads it once at SetFaultPlane (an
// optional extension beyond sim.FaultPlane).
func (in *Injector) CapacityTax() float64 { return in.Cfg.CapacityTaxFrac }

// ActiveClasses names the failure classes whose storm windows are open
// this interval, in a fixed order. The engine's metrics layer turns each
// into a fault-activation event; the always-on capacity tax is not listed
// (it is a standing condition, not a storm).
func (in *Injector) ActiveClasses() []string {
	var out []string
	if in.busyActive {
		out = append(out, "page-busy")
	}
	for _, p := range in.pressured {
		if p {
			out = append(out, "tier-pressure")
			break
		}
	}
	if in.dropActive {
		out = append(out, "sample-drop")
	}
degrade:
	for _, row := range in.degraded {
		for _, d := range row {
			if d {
				out = append(out, "link-degrade")
				break degrade
			}
		}
	}
	if in.memErrPages > 0 {
		out = append(out, "mem-error")
	}
	if in.flakyActive {
		out = append(out, "tier-flaky")
	}
	return out
}

// LinkBWFactor returns the bandwidth-degradation divisor (>= 1) of the
// socket→node link this interval.
func (in *Injector) LinkBWFactor(socket int, n tier.NodeID) float64 {
	if socket < 0 || socket >= len(in.degraded) {
		return 1
	}
	row := in.degraded[socket]
	if int(n) < 0 || int(n) >= len(row) || !row[n] {
		return 1
	}
	return in.Cfg.LinkDegradeFactor
}

// scenarios maps named scenarios to their configs. Names are part of the
// CLI surface (mtmsim -faults).
var scenarios = map[string]Config{
	// ebusy-storm: 10% of page copies fail transiently in every interval —
	// the THP-pinning / concurrent-access regime Nomad's transactional
	// migration targets.
	"ebusy-storm": {PageBusyProb: 0.10, PageBusyDuty: 1.0},
	// tier-pressure: tiers intermittently refuse promotions, the admission
	// control regime of TierBPF-style shedding.
	"tier-pressure": {PressureProb: 0.5},
	// pebs-storm: interrupt overload drops three quarters of samples in
	// half the intervals; profilers must survive a starved signal.
	"pebs-storm": {SampleDropDuty: 0.5, SampleDropFrac: 0.75},
	// link-degrade: links intermittently run at a quarter of their rated
	// bandwidth (noisy-neighbour interconnect contention).
	"link-degrade": {LinkDegradeDuty: 0.5, LinkDegradeFactor: 4},
	// capacity-crunch: co-tenants hold 95% of every tier, so a workload
	// sized for the machine exhausts real capacity and drives the
	// emergency-reclaim / graceful-OOM path.
	"capacity-crunch": {CapacityTaxFrac: 0.95},
	// chaos: everything at once, for worst-case soak runs.
	"chaos": {
		PageBusyProb: 0.10, PageBusyDuty: 1.0,
		PressureProb:   0.25,
		SampleDropDuty: 0.25, SampleDropFrac: 0.75,
		LinkDegradeDuty: 0.25, LinkDegradeFactor: 4,
	},
	// dimm-death: a DIMM on the first capacity tier (node 2: PM0 on the
	// Optane box, CXL1 on the CXL box) is dying — every interval throws a
	// burst of uncorrectable errors and most copies into the tier fail.
	// Drives the full health pipeline: poisoning → Degraded → Draining →
	// background evacuation → Offline, with breakers tripping on the way.
	"dimm-death": {
		MemErrorProb: 1.0, MemErrorBurst: 4, MemErrorNode: 2,
		TierFailProb: 0.85, TierFailNode: 2,
	},
	// cxl-flaky: an intermittently misbehaving far tier — occasional
	// single-page poisons and windows where half-ish of inbound copies
	// fail. The tier oscillates Online ↔ Degraded and breakers open and
	// recover, without ever reaching the drain threshold in short runs.
	"cxl-flaky": {
		MemErrorProb: 0.25, MemErrorBurst: 1, MemErrorNode: 2,
		TierFailProb: 0.6, TierFailDuty: 0.5, TierFailNode: 2,
	},
}

// Scenarios lists the named scenarios, sorted, with "none" first.
func Scenarios() []string {
	names := make([]string, 0, len(scenarios)+1)
	for n := range scenarios {
		names = append(names, n)
	}
	sort.Strings(names)
	return append([]string{"none"}, names...)
}

// Valid reports whether spec is a parseable fault scenario ("" and
// "none" are the no-injection scenarios; see Parse for the grammar).
func Valid(spec string) bool {
	_, err := Parse(spec)
	return err == nil
}

// NewScenario builds the injector for a scenario spec (a named scenario
// optionally extended with key=value overrides, see Parse), or nil for a
// spec that injects nothing.
func NewScenario(spec string, seed int64) (*Injector, error) {
	cfg, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if cfg == (Config{}) {
		return nil, nil
	}
	return NewInjector(cfg, seed), nil
}
