package fault

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Parse resolves a fault-scenario spec into a Config. The grammar is
//
//	spec     = "" | "none" | name | name "," overrides | overrides
//	overrides = key "=" value { "," key "=" value }
//
// where name is a named scenario (see Scenarios) used as the base config
// and each kebab-case key overrides one Config field, e.g.
//
//	dimm-death,mem-error-burst=8
//	tier-fail-prob=1,tier-fail-node=0
//
// "" and "none" parse to the zero Config (no injection). Probabilities,
// duties and fractions must lie in [0, 1]; link-degrade-factor must be 0
// or ≥ 1. Unknown names, unknown keys and malformed values are errors.
func Parse(spec string) (Config, error) {
	var cfg Config
	cfg.MemErrorNode = LastNode
	cfg.TierFailNode = LastNode
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return Config{}, nil
	}
	parts := strings.Split(spec, ",")
	rest := parts
	if !strings.Contains(parts[0], "=") {
		base, ok := scenarios[strings.TrimSpace(parts[0])]
		if !ok {
			return Config{}, fmt.Errorf("fault: unknown scenario %q (have %v)", parts[0], Scenarios())
		}
		cfg = base
		rest = parts[1:]
	}
	for _, kv := range rest {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: malformed override %q (want key=value)", kv)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		if err := setField(&cfg, key, val); err != nil {
			return Config{}, err
		}
	}
	if err := validate(cfg); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// setField applies one kebab-case key=value override to cfg.
func setField(cfg *Config, key, val string) error {
	f := func(dst *float64) error {
		v, err := strconv.ParseFloat(val, 64)
		if err != nil {
			return fmt.Errorf("fault: bad value %q for %s: %v", val, key, err)
		}
		*dst = v
		return nil
	}
	i := func(dst *int) error {
		v, err := strconv.Atoi(val)
		if err != nil {
			return fmt.Errorf("fault: bad value %q for %s: %v", val, key, err)
		}
		*dst = v
		return nil
	}
	switch key {
	case "page-busy-prob":
		return f(&cfg.PageBusyProb)
	case "page-busy-duty":
		return f(&cfg.PageBusyDuty)
	case "busy-penalty":
		d, err := time.ParseDuration(val)
		if err != nil {
			return fmt.Errorf("fault: bad value %q for %s: %v", val, key, err)
		}
		cfg.BusyPenalty = d
		return nil
	case "pressure-prob":
		return f(&cfg.PressureProb)
	case "sample-drop-duty":
		return f(&cfg.SampleDropDuty)
	case "sample-drop-frac":
		return f(&cfg.SampleDropFrac)
	case "link-degrade-duty":
		return f(&cfg.LinkDegradeDuty)
	case "link-degrade-factor":
		return f(&cfg.LinkDegradeFactor)
	case "capacity-tax":
		return f(&cfg.CapacityTaxFrac)
	case "mem-error-prob":
		return f(&cfg.MemErrorProb)
	case "mem-error-burst":
		return i(&cfg.MemErrorBurst)
	case "mem-error-node":
		return i(&cfg.MemErrorNode)
	case "tier-fail-prob":
		return f(&cfg.TierFailProb)
	case "tier-fail-duty":
		return f(&cfg.TierFailDuty)
	case "tier-fail-node":
		return i(&cfg.TierFailNode)
	}
	return fmt.Errorf("fault: unknown override key %q", key)
}

// validate bounds-checks a parsed config.
func validate(cfg Config) error {
	probs := map[string]float64{
		"page-busy-prob":    cfg.PageBusyProb,
		"page-busy-duty":    cfg.PageBusyDuty,
		"pressure-prob":     cfg.PressureProb,
		"sample-drop-duty":  cfg.SampleDropDuty,
		"sample-drop-frac":  cfg.SampleDropFrac,
		"link-degrade-duty": cfg.LinkDegradeDuty,
		"capacity-tax":      cfg.CapacityTaxFrac,
		"mem-error-prob":    cfg.MemErrorProb,
		"tier-fail-prob":    cfg.TierFailProb,
		"tier-fail-duty":    cfg.TierFailDuty,
	}
	for k, v := range probs {
		if v < 0 || v > 1 {
			return fmt.Errorf("fault: %s %v outside [0, 1]", k, v)
		}
	}
	if f := cfg.LinkDegradeFactor; f != 0 && f < 1 {
		return fmt.Errorf("fault: link-degrade-factor %v must be 0 or >= 1", f)
	}
	if cfg.MemErrorBurst < 0 {
		return fmt.Errorf("fault: mem-error-burst %d negative", cfg.MemErrorBurst)
	}
	if cfg.BusyPenalty < 0 {
		return fmt.Errorf("fault: busy-penalty %v negative", cfg.BusyPenalty)
	}
	return nil
}
