package fault

import (
	"strings"
	"testing"
	"time"

	"mtm/internal/tier"
)

func TestParseEmptyAndNone(t *testing.T) {
	for _, spec := range []string{"", "none", "  none  "} {
		cfg, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		if cfg != (Config{}) {
			t.Fatalf("Parse(%q) = %+v, want zero config", spec, cfg)
		}
		if cfg.UsesHealth() {
			t.Fatalf("zero config claims UsesHealth")
		}
	}
}

func TestParseNamedScenario(t *testing.T) {
	cfg, err := Parse("dimm-death")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.MemErrorProb != 1.0 || cfg.MemErrorBurst != 4 || cfg.MemErrorNode != 2 {
		t.Fatalf("dimm-death mem-error fields wrong: %+v", cfg)
	}
	if cfg.TierFailProb != 0.85 || cfg.TierFailNode != 2 {
		t.Fatalf("dimm-death tier-fail fields wrong: %+v", cfg)
	}
	if !cfg.UsesHealth() {
		t.Fatal("dimm-death must enable the health subsystem")
	}
}

func TestParseNamedScenarioWithOverrides(t *testing.T) {
	cfg, err := Parse("cxl-flaky, mem-error-burst=3 ,tier-fail-duty=0.25")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	base := scenarios["cxl-flaky"]
	if cfg.MemErrorBurst != 3 || cfg.TierFailDuty != 0.25 {
		t.Fatalf("overrides not applied: %+v", cfg)
	}
	if cfg.MemErrorProb != base.MemErrorProb || cfg.TierFailProb != base.TierFailProb {
		t.Fatalf("base fields clobbered: %+v", cfg)
	}
}

func TestParseBareOverrides(t *testing.T) {
	cfg, err := Parse("tier-fail-prob=1,tier-fail-node=0,busy-penalty=5us")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.TierFailProb != 1 || cfg.TierFailNode != 0 || cfg.BusyPenalty != 5*time.Microsecond {
		t.Fatalf("cfg = %+v", cfg)
	}
	// With no named base, unset node targets default to the last node.
	if cfg.MemErrorNode != LastNode {
		t.Fatalf("MemErrorNode = %d, want LastNode", cfg.MemErrorNode)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus-name",
		"dimm-death,mem-error-prob=2",
		"tier-fail-prob=-0.5",
		"mem-error-burst=-1",
		"mem-error-burst=x",
		"busy-penalty=-3us",
		"busy-penalty=banana",
		"dimm-death,unknown-key=1",
		"dimm-death,mem-error-prob",
		"link-degrade-factor=0.5",
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted", spec)
		}
		if Valid(spec) {
			t.Errorf("Valid(%q) true", spec)
		}
	}
}

func TestMemErrorTargeting(t *testing.T) {
	in := NewInjector(Config{MemErrorProb: 1, MemErrorBurst: 4, MemErrorNode: 2}, 1)
	in.Attach(2, 4)
	in.BeginInterval(0)
	if got := in.MemErrorPages(2); got != 4 {
		t.Fatalf("MemErrorPages(2) = %d, want 4", got)
	}
	for _, n := range []int{0, 1, 3} {
		if got := in.MemErrorPages(tier.NodeID(n)); got != 0 {
			t.Fatalf("MemErrorPages(%d) = %d, want 0 (wrong node)", n, got)
		}
	}
	if in.MemErrorsInjected != 4 {
		t.Fatalf("MemErrorsInjected = %d", in.MemErrorsInjected)
	}
}

func TestMemErrorNodeClamped(t *testing.T) {
	// LastNode and out-of-range targets resolve to the machine's last node.
	for _, target := range []int{LastNode, 99} {
		in := NewInjector(Config{MemErrorProb: 1, MemErrorBurst: 1, MemErrorNode: target}, 1)
		in.Attach(1, 3)
		in.BeginInterval(0)
		if got := in.MemErrorPages(2); got != 1 {
			t.Fatalf("target %d: MemErrorPages(last) = %d, want 1", target, got)
		}
	}
}

func TestTierFailFailsCopiesIntoTarget(t *testing.T) {
	in := NewInjector(Config{TierFailProb: 1, TierFailNode: 1}, 1)
	in.Attach(1, 3)
	in.BeginInterval(0)
	busy, pen := in.PageBusy(nil, 0, 1)
	if !busy || pen != DefaultBusyPenalty {
		t.Fatalf("copy into flaky node: busy=%v penalty=%v", busy, pen)
	}
	if busy, _ := in.PageBusy(nil, 0, 0); busy {
		t.Fatal("copy into a healthy node failed")
	}
	if in.TierFailInjected != 1 || in.BusyInjected != 0 {
		t.Fatalf("counters: tier-fail=%d busy=%d", in.TierFailInjected, in.BusyInjected)
	}
	found := false
	for _, c := range in.ActiveClasses() {
		if c == "tier-flaky" {
			found = true
		}
	}
	if !found {
		t.Fatalf("ActiveClasses() = %v, want tier-flaky listed", in.ActiveClasses())
	}
}

func TestHealthScenariosListed(t *testing.T) {
	names := strings.Join(Scenarios(), " ")
	for _, want := range []string{"dimm-death", "cxl-flaky"} {
		if !strings.Contains(names, want) {
			t.Fatalf("Scenarios() = %v, missing %s", Scenarios(), want)
		}
	}
}

// FuzzParse asserts the spec parser never panics and that accepted specs
// produce configs that pass validation (Parse and Valid agree).
func FuzzParse(f *testing.F) {
	seeds := append([]string{
		"", "none", "dimm-death", "cxl-flaky",
		"dimm-death,mem-error-burst=8",
		"tier-fail-prob=1,tier-fail-node=0",
		"page-busy-prob=0.1,busy-penalty=3us",
		"mem-error-prob=2", "x=y", ",,,", "dimm-death,",
	}, Scenarios()...)
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := Parse(spec)
		if (err == nil) != Valid(spec) {
			t.Fatalf("Parse and Valid disagree on %q", spec)
		}
		if err != nil {
			return
		}
		if err := validate(cfg); err != nil {
			t.Fatalf("Parse(%q) accepted an invalid config: %v", spec, err)
		}
		inj, err := NewScenario(spec, 1)
		if err != nil {
			t.Fatalf("NewScenario rejected parseable spec %q: %v", spec, err)
		}
		if inj != nil {
			inj.Attach(2, 4)
			inj.BeginInterval(0)
		}
	})
}
