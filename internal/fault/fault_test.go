package fault

import (
	"reflect"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	mk := func() []bool {
		in := NewInjector(Config{PageBusyProb: 0.3, PageBusyDuty: 1}, 42)
		in.Attach(2, 4)
		var decisions []bool
		for i := 0; i < 5; i++ {
			in.BeginInterval(i)
			for p := 0; p < 50; p++ {
				busy, _ := in.PageBusy(nil, p, 0)
				decisions = append(decisions, busy)
			}
		}
		return decisions
	}
	if !reflect.DeepEqual(mk(), mk()) {
		t.Fatal("same seed produced different injection decisions")
	}
	in := NewInjector(Config{PageBusyProb: 0.3, PageBusyDuty: 1}, 42)
	in.Attach(2, 4)
	in.BeginInterval(0)
	any := false
	for p := 0; p < 200; p++ {
		if busy, pen := in.PageBusy(nil, p, 0); busy {
			any = true
			if pen != DefaultBusyPenalty {
				t.Fatalf("penalty = %v, want default %v", pen, DefaultBusyPenalty)
			}
		}
	}
	if !any {
		t.Fatal("30% probability injected nothing in 200 attempts")
	}
}

func TestZeroConfigInjectsNothing(t *testing.T) {
	in := NewInjector(Config{}, 7)
	in.Attach(2, 4)
	for i := 0; i < 10; i++ {
		in.BeginInterval(i)
		if busy, _ := in.PageBusy(nil, 0, 0); busy {
			t.Fatal("zero config injected page-busy")
		}
		if in.DestPressure(0) || in.SampleDropFrac() != 0 || in.LinkBWFactor(0, 0) != 1 {
			t.Fatal("zero config injected a fault")
		}
	}
}

func TestDutyCycleGatesStorms(t *testing.T) {
	in := NewInjector(Config{SampleDropDuty: 0.5, SampleDropFrac: 0.75}, 3)
	in.Attach(1, 2)
	active := 0
	const n = 400
	for i := 0; i < n; i++ {
		in.BeginInterval(i)
		switch f := in.SampleDropFrac(); f {
		case 0.75:
			active++
		case 0:
		default:
			t.Fatalf("drop frac = %v, want 0 or 0.75", f)
		}
	}
	if active < n/4 || active > 3*n/4 {
		t.Fatalf("0.5 duty active in %d/%d intervals", active, n)
	}
}

func TestLinkDegradeBounds(t *testing.T) {
	in := NewInjector(Config{LinkDegradeDuty: 1, LinkDegradeFactor: 4}, 1)
	in.Attach(2, 3)
	in.BeginInterval(0)
	if f := in.LinkBWFactor(0, 0); f != 4 {
		t.Fatalf("degraded factor = %v, want 4", f)
	}
	// Out-of-range lookups are safe and undegraded.
	if in.LinkBWFactor(5, 0) != 1 || in.LinkBWFactor(0, 99) != 1 || in.DestPressure(99) {
		t.Fatal("out-of-range lookup not neutral")
	}
}

func TestScenarioRegistry(t *testing.T) {
	names := Scenarios()
	if names[0] != "none" {
		t.Fatalf("Scenarios()[0] = %q, want none", names[0])
	}
	for _, n := range names {
		if !Valid(n) {
			t.Fatalf("listed scenario %q not Valid", n)
		}
		inj, err := NewScenario(n, 1)
		if err != nil {
			t.Fatalf("NewScenario(%q): %v", n, err)
		}
		if (inj == nil) != (n == "none") {
			t.Fatalf("NewScenario(%q) injector nil=%v", n, inj == nil)
		}
	}
	if Valid("bogus") {
		t.Fatal("bogus scenario Valid")
	}
	if _, err := NewScenario("bogus", 1); err == nil {
		t.Fatal("NewScenario(bogus) did not error")
	}
	if inj, err := NewScenario("", 1); err != nil || inj != nil {
		t.Fatalf("empty scenario: %v, %v", inj, err)
	}
	if cfg := scenarios["ebusy-storm"]; cfg.PageBusyProb != 0.10 {
		t.Fatalf("ebusy-storm probability = %v, want 0.10", cfg.PageBusyProb)
	}
}

func TestBusyPenaltyConfigurable(t *testing.T) {
	in := NewInjector(Config{PageBusyProb: 1, PageBusyDuty: 1, BusyPenalty: 9 * time.Microsecond}, 1)
	in.Attach(1, 1)
	in.BeginInterval(0)
	busy, pen := in.PageBusy(nil, 0, 0)
	if !busy || pen != 9*time.Microsecond {
		t.Fatalf("busy=%v penalty=%v", busy, pen)
	}
	if in.BusyInjected != 1 {
		t.Fatalf("BusyInjected = %d", in.BusyInjected)
	}
}
