package profiler

import (
	"testing"
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

type nullSolution struct{ node tier.NodeID }

func (n *nullSolution) Name() string { return "null" }
func (n *nullSolution) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return n.node
}
func (*nullSolution) IntervalStart(*sim.Engine) {}
func (*nullSolution) IntervalEnd(*sim.Engine)   {}

// hotColdEngine builds an engine with one VMA on `node` whose first
// hotPages pages are hammered and the rest touched lightly. The returned
// workload drives one round of that traffic per interval, and the
// profiler under test runs through the engine's interval loop so its
// charges land in the engine's totals.
func hotColdEngine(t *testing.T, pages, hotPages int, node tier.NodeID, p Profiler) (*sim.Engine, *hotColdWorkload) {
	t.Helper()
	e := sim.NewEngine(tier.OptaneTopology(256), 1)
	e.Interval = 40 * time.Millisecond
	e.SetSolution(&profSolution{p: p, node: node})
	w := &hotColdWorkload{pages: pages, hot: hotPages}
	w.Init(e)
	return e, w
}

// profSolution adapts a bare Profiler into a Solution with fixed
// placement and no migration.
type profSolution struct {
	p    Profiler
	node tier.NodeID
}

func (s *profSolution) Name() string { return "profiler-under-test" }
func (s *profSolution) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return s.node
}
func (s *profSolution) IntervalStart(e *sim.Engine) {
	if e.Intervals == 0 {
		s.p.Attach(e)
	}
	s.p.IntervalStart(e)
}
func (s *profSolution) IntervalEnd(e *sim.Engine) { s.p.Profile(e) }

type hotColdWorkload struct {
	v     *vm.VMA
	pages int
	hot   int
	runs  int
}

func (w *hotColdWorkload) Name() string { return "hotcold" }
func (w *hotColdWorkload) Init(e *sim.Engine) {
	w.v = e.AS.Alloc("data", int64(w.pages)*vm.HugePageSize)
	// Fault everything in so region/tier state is stable from the start.
	for i := 0; i < w.v.NPages; i++ {
		e.Access(w.v, i, 1, 0, 0)
	}
}
func (w *hotColdWorkload) RunInterval(e *sim.Engine) {
	for i := 0; i < w.v.NPages; i++ {
		if i < w.hot {
			e.Access(w.v, i, 2000, 1000, 0)
		} else {
			e.Access(w.v, i, 30, 15, 0)
		}
	}
	w.runs++
}
func (w *hotColdWorkload) Done() bool            { return false }
func (w *hotColdWorkload) ReadFraction() float64 { return 0.5 }

func interval(e *sim.Engine, w *hotColdWorkload) { e.RunInterval(w) }

func hotDetection(p Profiler, v *vm.VMA, hotPages int) (recall, accuracy float64) {
	want := int64(hotPages) * v.PageSize
	detected := HotBytes(p.Regions(), want)
	var det, correct int64
	for _, r := range detected {
		for i := r.Start; i < r.End; i++ {
			det += v.PageSize
			if r.V == v && i < hotPages {
				correct += v.PageSize
			}
		}
	}
	if det == 0 {
		return 0, 0
	}
	return float64(correct) / float64(want), float64(correct) / float64(det)
}

func TestMTMBudgetEquation(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, _ := hotColdEngine(t, 8, 2, 2, m)
	m.Attach(e)
	// Equation 1: num_ps = t_mi * target / (one_scan_overhead * num_scans).
	want := int(float64(e.Interval) * 0.05 / (float64(MTMScanCost) * 3))
	if m.Budget() != want {
		t.Fatalf("budget = %d, want %d", m.Budget(), want)
	}
}

func TestMTMOverheadConstraint(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, w := hotColdEngine(t, 64, 13, 2, m)
	for i := 0; i < 10; i++ {
		interval(e, w)
	}
	// Total profiling charge must stay within ~the 5% target per
	// interval (small PEBS handling slack allowed).
	perInterval := e.TotalProf / 10
	limit := time.Duration(float64(e.Interval) * 0.055)
	if perInterval > limit {
		t.Fatalf("profiling %v/interval exceeds target %v", perInterval, limit)
	}
	if e.TotalProf == 0 {
		t.Fatal("profiling charged nothing")
	}
}

func TestMTMFindsHotPages(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, w := hotColdEngine(t, 64, 13, 2, m)
	for i := 0; i < 8; i++ {
		interval(e, w)
	}
	recall, acc := hotDetection(m, w.v, 13)
	if recall < 0.7 || acc < 0.7 {
		t.Fatalf("recall=%.2f acc=%.2f, want both >= 0.7", recall, acc)
	}
}

func TestMTMBeatsDAMONOnHotDetection(t *testing.T) {
	// The Figure 1 headline at unit-test scale: same scenario, MTM's
	// detection quality must exceed DAMON's.
	m := NewMTM(DefaultMTMConfig())
	eM, wM := hotColdEngine(t, 128, 26, 2, m)
	d := NewDAMON(DefaultDAMONConfig())
	eD, wD := hotColdEngine(t, 128, 26, 2, d)
	for i := 0; i < 6; i++ {
		interval(eM, wM)
		interval(eD, wD)
	}
	mr, ma := hotDetection(m, wM.v, 26)
	dr, da := hotDetection(d, wD.v, 26)
	t.Logf("MTM recall=%.2f acc=%.2f | DAMON recall=%.2f acc=%.2f", mr, ma, dr, da)
	if mr+ma <= dr+da {
		t.Fatalf("MTM (%.2f+%.2f) not better than DAMON (%.2f+%.2f)", mr, ma, dr, da)
	}
}

func TestMTMRegionCountUnderBudget(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, w := hotColdEngine(t, 256, 51, 2, m)
	for i := 0; i < 12; i++ {
		interval(e, w)
	}
	if m.Set().Len() > m.Budget() {
		t.Fatalf("regions %d exceed sample budget %d after overhead control", m.Set().Len(), m.Budget())
	}
}

func TestMTMQuotaRespectsBudget(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, w := hotColdEngine(t, 64, 13, 2, m)
	for i := 0; i < 5; i++ {
		interval(e, w)
		if q := m.Set().TotalQuota(); q > m.Budget()+m.Set().Len() {
			t.Fatalf("interval %d: quota %d far exceeds budget %d", i, q, m.Budget())
		}
	}
}

func TestMTMWithoutPEBSProfilesEverything(t *testing.T) {
	cfg := DefaultMTMConfig()
	cfg.UsePEBS = false
	m := NewMTM(cfg)
	e, w := hotColdEngine(t, 32, 6, 2, m)
	interval(e, w)
	if e.PEBS != nil {
		t.Fatal("PEBS buffer installed despite UsePEBS=false")
	}
	for _, r := range m.Regions() {
		if !r.Sampled {
			t.Fatalf("region %v not profiled without PEBS gating", r)
		}
	}
}

func TestMTMWithoutAMRKeepsRegions(t *testing.T) {
	cfg := DefaultMTMConfig()
	cfg.AdaptiveRegions = false
	m := NewMTM(cfg)
	e, w := hotColdEngine(t, 32, 6, 2, m)
	interval(e, w)
	n0 := m.Set().Len()
	for i := 0; i < 5; i++ {
		interval(e, w)
	}
	if m.Set().Len() != n0 {
		t.Fatalf("regions changed %d -> %d with AMR disabled", n0, m.Set().Len())
	}
}

func TestMTMWithoutOCSpendsMore(t *testing.T) {
	// §9.3: with τm=τs=0 (no merging/splitting) and no scan budget, the
	// region count stays at its maximum and profiling time multiplies
	// (3x in the paper). PEBS gating is disabled on both sides so the
	// comparison isolates the overhead-control mechanism.
	base := DefaultMTMConfig()
	base.UsePEBS = false
	a := NewMTM(base)
	eA, wA := hotColdEngine(t, 1024, 205, 2, a)

	noOC := base
	noOC.OverheadControl = false
	noOC.TauM, noOC.TauS = 0, 0
	b := NewMTM(noOC)
	eB, wB := hotColdEngine(t, 1024, 205, 2, b)

	for i := 0; i < 6; i++ {
		interval(eA, wA)
		interval(eB, wB)
	}
	if eB.TotalProf <= eA.TotalProf {
		t.Fatalf("w/o OC profiling %v <= with OC %v; expected increase", eB.TotalProf, eA.TotalProf)
	}
}

func TestDAMONRegionCap(t *testing.T) {
	cfg := DefaultDAMONConfig()
	cfg.MaxRegions = 50
	d := NewDAMON(cfg)
	e, w := hotColdEngine(t, 512, 100, 2, d)
	for i := 0; i < 10; i++ {
		interval(e, w)
		if d.Set().Len() > cfg.MaxRegions {
			t.Fatalf("DAMON regions %d exceed cap %d", d.Set().Len(), cfg.MaxRegions)
		}
	}
	if d.Scans() == 0 {
		t.Fatal("DAMON performed no checks")
	}
}

func TestDAMONStartsFromVMATree(t *testing.T) {
	d := NewDAMON(DefaultDAMONConfig())
	e, _ := hotColdEngine(t, 32, 6, 2, d)
	d.Attach(e)
	if got := d.Set().Len(); got != len(e.AS.VMAs()) {
		t.Fatalf("initial regions = %d, want one per VMA (%d)", got, len(e.AS.VMAs()))
	}
}

func TestThermostatBudget(t *testing.T) {
	th := NewThermostat()
	e, w := hotColdEngine(t, 256, 51, 2, th)
	for i := 0; i < 5; i++ {
		interval(e, w)
	}
	perInterval := e.TotalProf / 5
	if perInterval > time.Duration(float64(e.Interval)*0.08) {
		t.Fatalf("thermostat profiling %v/interval blows budget", perInterval)
	}
	sampled := 0
	for _, r := range th.Regions() {
		if r.Sampled {
			sampled++
		}
	}
	if sampled == 0 {
		t.Fatal("thermostat sampled nothing")
	}
	if sampled == len(th.Regions()) {
		t.Fatal("thermostat sampled everything; random selection should be partial under budget")
	}
}

func TestRandomChunkCoverage(t *testing.T) {
	rc := NewRandomChunk()
	e, w := hotColdEngine(t, 512, 100, 2, rc)
	interval(e, w)
	var covered int64
	for _, r := range rc.Regions() {
		if r.Sampled {
			covered += r.Bytes()
		}
	}
	// One interval covers ~256MB.
	if covered < ChunkBytes/2 || covered > 2*ChunkBytes {
		t.Fatalf("covered %dMB, want ~256MB", covered>>20)
	}
}

func TestSequentialScanAdvances(t *testing.T) {
	sc := NewSequentialScan(true)
	e, w := hotColdEngine(t, 512, 100, 2, sc)
	interval(e, w)
	count := func() int {
		n := 0
		for _, r := range sc.Regions() {
			if r.Sampled {
				n++
			}
		}
		return n
	}
	first := count()
	interval(e, w)
	// The cursor advances: coverage grows across intervals.
	if second := count(); second <= first {
		t.Fatalf("sequential scan did not advance: %d then %d", first, second)
	}
}

func TestRegionNodeHelpers(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, _ := hotColdEngine(t, 8, 2, 3, m)
	m.Attach(e)
	r := m.Regions()[0]
	if RegionNode(r) != 3 {
		t.Fatalf("RegionNode = %d, want 3", RegionNode(r))
	}
	if got := RegionPresentBytes(r); got != r.Bytes() {
		t.Fatalf("present bytes = %d, want %d", got, r.Bytes())
	}
}

func TestSamplePagesDistinctAndInRange(t *testing.T) {
	e, _ := hotColdEngine(t, 8, 2, 2, NewMTM(DefaultMTMConfig()))
	for _, n := range []int{1, 3, 10, 64} {
		pages := samplePages(e.Rng, 16, 48, n)
		seen := map[int]bool{}
		for _, p := range pages {
			if p < 16 || p >= 48 {
				t.Fatalf("sample %d out of [16,48)", p)
			}
			if seen[p] {
				t.Fatalf("duplicate sample %d (n=%d)", p, n)
			}
			seen[p] = true
		}
		want := n
		if want > 32 {
			want = 32
		}
		if len(pages) != want {
			t.Fatalf("n=%d: got %d samples, want %d", n, len(pages), want)
		}
	}
}
