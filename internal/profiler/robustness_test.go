package profiler

import (
	"testing"
	"time"

	"mtm/internal/pebs"
	"mtm/internal/sim"
	"mtm/internal/tier"
)

// TestMTMSurvivesTinyPEBSBuffer injects a pathologically small PEBS
// buffer: samples are dropped on interrupt storms, but profiling must
// degrade gracefully — regions still get hotness, the budget still holds.
func TestMTMSurvivesTinyPEBSBuffer(t *testing.T) {
	m := NewMTM(DefaultMTMConfig())
	e, w := hotColdEngine(t, 64, 13, 2, m)
	interval(e, w) // attaches and installs the default buffer
	// Replace with a 4-entry buffer mid-run.
	small := pebs.NewBuffer(len(e.Sys.Topo.Nodes), 4, e.Rng)
	*mtmBuffer(m) = *small
	for i := 0; i < 5; i++ {
		interval(e, w)
	}
	if e.PEBS.Interrupts() == 0 {
		t.Fatal("tiny buffer never overflowed; injection ineffective")
	}
	hot := 0
	for _, r := range m.Regions() {
		if r.WHI > 0 {
			hot++
		}
	}
	if hot == 0 {
		t.Fatal("profiler found nothing with a degraded PEBS buffer")
	}
	perInterval := e.TotalProf / time.Duration(e.Intervals)
	if perInterval > time.Duration(float64(e.Interval)*0.08) {
		t.Fatalf("overhead broke under degraded PEBS: %v/interval", perInterval)
	}
}

// mtmBuffer reaches the profiler's buffer for fault injection.
func mtmBuffer(m *MTM) *pebs.Buffer { return m.buf }

// TestMTMBeatsDAMONAcrossSeeds hardens the Figure 1 shape claim: over
// several seeds, MTM's average detection quality must exceed DAMON's.
func TestMTMBeatsDAMONAcrossSeeds(t *testing.T) {
	var mtmSum, damonSum float64
	for seed := int64(1); seed <= 3; seed++ {
		run := func(p Profiler) float64 {
			e := sim.NewEngine(tier.OptaneTopology(256), seed)
			e.Interval = 40 * time.Millisecond
			e.SetSolution(&profSolution{p: p, node: 2})
			w := &hotColdWorkload{pages: 128, hot: 26}
			w.Init(e)
			for i := 0; i < 6; i++ {
				e.RunInterval(w)
			}
			r, a := hotDetection(p, w.v, 26)
			return r + a
		}
		mtmSum += run(NewMTM(DefaultMTMConfig()))
		damonSum += run(NewDAMON(DefaultDAMONConfig()))
	}
	if mtmSum <= damonSum {
		t.Fatalf("across seeds: MTM %.2f <= DAMON %.2f", mtmSum, damonSum)
	}
}

// TestProfilersNeverExceedAddressSpace fuzzes region sampling against a
// mixed 4K/huge address space: no profiler may index past a VMA.
func TestProfilersNeverExceedAddressSpace(t *testing.T) {
	for _, mk := range []func() Profiler{
		func() Profiler { return NewMTM(DefaultMTMConfig()) },
		func() Profiler { return NewDAMON(DefaultDAMONConfig()) },
		func() Profiler { return NewThermostat() },
		func() Profiler { return NewRandomChunk() },
		func() Profiler { return NewSequentialScan(true) },
	} {
		p := mk()
		e := sim.NewEngine(tier.OptaneTopology(512), 7)
		e.Interval = 20 * time.Millisecond
		e.SetSolution(&profSolution{p: p, node: 2})
		e.AS.THP = false // 4 KB pages stress alignment paths
		w := &hotColdWorkload{pages: 1024, hot: 128}
		// hotColdWorkload allocates in huge units; with THP off the VMA
		// has 4 KB pages, so NPages is 512x larger — RunInterval still
		// indexes by NPages, which is the point of the stress.
		w.Init(e)
		// A panic here (out-of-range) fails the test.
		for i := 0; i < 3; i++ {
			e.RunInterval(w)
		}
	}
}
