package profiler

import (
	"math"
	"time"

	"mtm/internal/pebs"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// MTMConfig carries the tunables of the MTM adaptive profiler. The zero
// value is not usable; start from DefaultMTMConfig.
type MTMConfig struct {
	// OverheadTarget is the profiling-overhead constraint as a fraction
	// of execution time (§5.3; 5% in the paper's evaluation).
	OverheadTarget float64
	// NumScans is the number of PTE scans per sampled page per interval
	// (§5.1; constant 3 in the paper).
	NumScans int
	// Alpha weighs current vs historical hotness in the EMA (Equation 2).
	Alpha float64
	// RegionBytes is the initial region granularity (2 MB).
	RegionBytes int64
	// ScanWindowFrac is the observation window of one PTE scan as a
	// fraction of the profiling interval: MTM paces its num_scans scans
	// ~30 ms apart within a 10 s interval, so each scan's accessed bit
	// covers ~0.3% of it. This is what turns the binary bit into a rate
	// signal (see vm.ObserveScans).
	ScanWindowFrac float64
	// TauM and TauS override the merge/split thresholds; negative values
	// select the defaults num_scans/3 and 2*num_scans/3.
	TauM, TauS float64

	// Feature switches for the §9.3 ablations.
	UsePEBS          bool // performance counter-assisted PTE scan (§5.5)
	AdaptiveRegions  bool // merge/split region formation ("AMR")
	AdaptiveSampling bool // variance-guided quota redistribution ("APS")
	OverheadControl  bool // Equation 1 budget + τm escalation ("OC")
}

// DefaultMTMConfig returns the paper's evaluation configuration.
func DefaultMTMConfig() MTMConfig {
	return MTMConfig{
		OverheadTarget:   0.05,
		NumScans:         region.DefaultNumScans,
		Alpha:            0.5,
		RegionBytes:      DefaultRegionBytes,
		ScanWindowFrac:   0.003,
		TauM:             -1,
		TauS:             -1,
		UsePEBS:          true,
		AdaptiveRegions:  true,
		AdaptiveSampling: true,
		OverheadControl:  true,
	}
}

// MTM is the adaptive memory profiler of §5: overhead control connected
// directly to the number of PTE scans (Equation 1), multi-scan sampling,
// variance-guided sample redistribution, hotness-guided region formation
// with huge-page alignment, and PEBS-assisted event-driven profiling of
// the slow tiers.
type MTM struct {
	Cfg MTMConfig

	set     *region.Set
	topVar  *region.TopVariance
	buf     *pebs.Buffer
	budget  int     // num_ps from Equation 1
	tauMEsc float64 // temporary τm escalation for overhead control
	scans   int64   // PTE scans performed (cumulative, for tests)

	pmNodes  []tier.NodeID // nodes profiled event-driven via PEBS
	isPMNode []bool        // indexed by NodeID

	pm          profMetrics
	lastDropped int64 // buffer's cumulative drop count at last Profile

	// logw caches log1p(-ScanWindowFrac) for the per-page observation
	// model (vm.ObserveScansL).
	logw float64

	// Reusable per-interval buffers, indexed by region position in the
	// set's address-ordered slice (stable for the whole Profile call).
	// They replace the per-interval map allocations of the old hot path;
	// after warm-up the steady-state scan path allocates nothing.
	profiled   []bool       // region receives PTE scans this interval
	kept       []pebsKept   // PEBS hits + first-4 kept pages per region
	attrParts  [][]attrPair // per-shard attribution slots
	shardScans []int64      // per-shard scan tallies (span emission order)
	shardPages []int64
	gen        uint32 // profiling generation for region selection stamps

	// scanFn caches the scan-shard function across intervals: a fresh
	// closure per Profile call was the last steady-state allocation. Its
	// per-interval inputs travel through the scan* fields below, set
	// immediately before Parallel and valid only during the call.
	scanFn      func(int)
	scanEngine  *sim.Engine
	scanRegions []*region.Region
	scanPEBS    bool
}

// pebsKept is the per-region PEBS evidence of one interval: how many
// samples hit the region and the first (up to) four distinct sampled
// pages, which the PTE scans profile preferentially (§5.2).
type pebsKept struct {
	hits  int32
	n     int8
	pages [4]int32
}

// attrPair is one PEBS sample resolved to (region index, page).
type attrPair struct{ region, page int32 }

// scanShard profiles one shard's run of regions: it draws sample pages
// and scan observations from its own per-shard stream (reseeded into its
// scratch slot's RNG) and writes only the per-region fields of regions it
// owns plus its scratch tallies. m.kept/m.profiled are read-only here;
// VMA state is only read (ObserveScansL models the scan against the
// touched plane, it does not clear bits).
func (m *MTM) scanShard(s int) {
	e, regions := m.scanEngine, m.scanRegions
	sc := e.ShardScratch(s)
	rng := sc.Rand(e, sim.SaltPTEScan, s)
	lo, hi := sim.ShardSpan(len(regions), scanShardRegions, s)
	var scans, nPages int64
	for i, r := range regions[lo:hi] {
		if !m.profiled[lo+i] {
			// Event-driven: no PEBS event means no observed traffic;
			// the region is cold this interval without spending scans.
			r.PrevHI = r.HI
			r.HI = 0
			r.Samples = r.Samples[:0]
			r.Observed = r.Observed[:0]
			r.Sampled = true
			continue
		}
		n := r.Quota
		if n < 1 {
			n = 1
		}
		pages := r.Samples[:0]
		if m.scanPEBS {
			if k := &m.kept[lo+i]; k.n > 0 {
				// PEBS-captured pages first (§5.2), random samples for
				// the remaining quota.
				for _, p := range k.pages[:k.n] {
					pages = append(pages, int(p))
				}
			}
		}
		if n > len(pages) {
			pages = samplePagesInto(pages, sc, rng, r.Start, r.End, n-len(pages))
		}
		r.Samples = pages
		r.Observed = r.Observed[:0]
		sum := 0
		for _, p := range pages {
			obs := vm.ObserveScansL(r.V, p, m.Cfg.NumScans, m.Cfg.ScanWindowFrac, m.logw, rng)
			r.Observed = append(r.Observed, obs)
			sum += obs
		}
		scans += int64(len(pages) * m.Cfg.NumScans)
		nPages += int64(len(pages))
		r.PrevHI = r.HI
		if len(pages) > 0 {
			r.HI = float64(sum) / float64(len(pages))
		} else {
			r.HI = 0
		}
		r.Sampled = true
	}
	m.shardScans[s] = scans
	m.shardPages[s] = nPages
}

// NewMTM creates the profiler with the given config.
func NewMTM(cfg MTMConfig) *MTM {
	if cfg.NumScans <= 0 {
		cfg.NumScans = region.DefaultNumScans
	}
	if cfg.ScanWindowFrac <= 0 {
		cfg.ScanWindowFrac = 0.003
	}
	return &MTM{Cfg: cfg, topVar: region.NewTopVariance(5), logw: math.Log1p(-cfg.ScanWindowFrac)}
}

func (m *MTM) Name() string { return "mtm-profiler" }

// Set returns the underlying region set (formation statistics, tests).
func (m *MTM) Set() *region.Set { return m.set }

// Budget returns num_ps, the page-sample budget of Equation 1.
func (m *MTM) Budget() int { return m.budget }

// Scans returns the cumulative number of PTE scans performed.
func (m *MTM) Scans() int64 { return m.scans }

func (m *MTM) Attach(e *sim.Engine) {
	m.set = region.NewSet(m.Cfg.NumScans)
	if m.Cfg.TauM >= 0 {
		m.set.TauM = m.Cfg.TauM
	}
	if m.Cfg.TauS >= 0 {
		m.set.TauS = m.Cfg.TauS
	}
	initRegions(e, m.set, m.Cfg.RegionBytes)
	// Equation 1: num_ps = t_mi * overhead_target / (one_scan_overhead * num_scans).
	m.budget = int(float64(e.Interval) * m.Cfg.OverheadTarget /
		(float64(MTMScanCost) * float64(m.Cfg.NumScans)))
	if m.budget < 1 {
		m.budget = 1
	}
	// Slow (CPU-less / PM / CXL) nodes are profiled event-driven.
	m.isPMNode = make([]bool, len(e.Sys.Topo.Nodes))
	for i, n := range e.Sys.Topo.Nodes {
		if n.Kind != tier.DRAM {
			m.pmNodes = append(m.pmNodes, tier.NodeID(i))
			m.isPMNode[i] = true
		}
	}
	if m.Cfg.UsePEBS && len(m.pmNodes) > 0 {
		m.buf = pebs.NewBuffer(len(e.Sys.Topo.Nodes), 1<<16, e.Rng)
		e.PEBS = m.buf
	}
	m.pm = newProfMetrics(e, m.Name())
}

func (m *MTM) IntervalStart(e *sim.Engine) {
	if m.buf != nil {
		m.buf.Arm(m.pmNodes...)
	}
}

func (m *MTM) Regions() []*region.Region {
	if m.set == nil {
		return nil
	}
	return m.set.Regions()
}

// Shard sizes of the parallel profiling phases. Both are fixed constants
// (never derived from the worker count) so the shard layout — and with it
// every per-shard RNG stream — is identical at any Parallelism setting.
const (
	// scanShardRegions is how many consecutive regions one PTE-scan shard
	// owns.
	scanShardRegions = 16
	// pebsShardSamples is how many consecutive PEBS samples one
	// attribution shard resolves.
	pebsShardSamples = 1024
)

// Profile implements the §5 pipeline for one interval. The two expensive
// passes — PEBS sample attribution and the per-region PTE scans — run
// sharded on the engine's worker pool; their results are merged in shard
// order, and all engine accounting happens on the serialised path, so the
// outcome is bit-identical to a sequential run (see sim/parallel.go).
func (m *MTM) Profile(e *sim.Engine) {
	m.set.BeginInterval()
	regions := m.set.Regions()
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("profiling", "mtm-profile",
			span.I("regions", int64(len(regions))),
			span.I("budget", int64(m.budget)))
	}

	// Map PEBS samples to regions so slow-tier regions with observed
	// traffic get event-driven PTE-scan profiling (§5.5). The sampled
	// pages themselves are kept: §5.2 profiles "specifically the page
	// captured by the performance counters", which is what points the
	// PTE scans at the hot spots inside a large region. Shards resolve
	// their sample slice against the region table (read-only binary
	// searches) into private slots; the merge below replays the resolved
	// pairs in sample order, so the kept-pages rule (first four distinct
	// pages per region) matches the sequential walk exactly. All
	// per-region evidence lands in m.kept, indexed by region position —
	// no per-interval maps.
	usePEBS := m.buf != nil
	if usePEBS {
		m.buf.Disarm()
		m.kept = growClear(m.kept, len(regions))
		samples := m.buf.Samples()
		m.pm.pebsKept.Add(int64(len(samples)))
		if d := int64(m.buf.Dropped()); d > m.lastDropped {
			m.pm.pebsDropped.Add(d - m.lastDropped)
			m.lastDropped = d
		}
		nAttr := sim.NumShards(len(samples), pebsShardSamples)
		for len(m.attrParts) < nAttr {
			m.attrParts = append(m.attrParts, nil)
		}
		e.Parallel(nAttr, func(s int) {
			lo, hi := sim.ShardSpan(len(samples), pebsShardSamples, s)
			out := m.attrParts[s][:0]
			for _, smp := range samples[lo:hi] {
				if ri := findRegionIndex(regions, smp.VMA, smp.Page); ri >= 0 {
					out = append(out, attrPair{int32(ri), int32(smp.Page)})
				}
			}
			m.attrParts[s] = out
		})
		for _, part := range m.attrParts[:nAttr] {
			for _, a := range part {
				k := &m.kept[a.region]
				k.hits++
				if k.n < 4 && !containsInt32(k.pages[:k.n], a.page) {
					k.pages[k.n] = a.page
					k.n++
				}
			}
		}
		// PEBS runtime overhead is <1% (§9.3); charge a small per-sample
		// handling cost.
		handling := time.Duration(len(samples)) * 100 * time.Nanosecond
		if spanning {
			e.SpanEmit("profiling", "pebs-attribution", e.SpanClockNs(), int64(handling),
				span.I("samples", int64(len(samples))),
				span.I("shards", int64(nAttr)))
		}
		e.ChargeProfiling(handling)
		m.pm.scanNs.AddDuration(handling)
	}

	// Decide which regions to profile and trim quotas to budget.
	profiled := m.profiledSet(regions)
	m.enforceQuota(e, regions, profiled)

	// Scan (see scanShard for the per-shard work and its write set).
	nShards := sim.NumShards(len(regions), scanShardRegions)
	m.shardScans = growClear(m.shardScans, nShards)
	m.shardPages = growClear(m.shardPages, nShards)
	m.scanEngine, m.scanRegions, m.scanPEBS = e, regions, usePEBS
	if m.scanFn == nil {
		m.scanFn = m.scanShard
	}
	e.Parallel(nShards, m.scanFn)
	m.scanEngine, m.scanRegions = nil, nil
	shardScans, shardPages := m.shardScans[:nShards], m.shardPages[:nShards]
	var totalScans, totalPages int64
	for s := range shardScans {
		totalScans += shardScans[s]
		totalPages += shardPages[s]
	}
	if spanning {
		// Per-shard scan spans, reconstructed from the shards' private
		// tallies on the serialised path and laid end to end; their summed
		// duration equals the ChargeProfiling below exactly.
		cur := e.SpanClockNs()
		for s := range shardScans {
			d := int64(time.Duration(shardScans[s]) * MTMScanCost)
			e.SpanEmit("profiling", "pte-scan", cur, d,
				span.I("shard", int64(s)),
				span.I("scans", shardScans[s]),
				span.I("pages", shardPages[s]))
			cur += d
		}
	}
	m.scans += totalScans
	e.ChargeProfiling(time.Duration(totalScans) * MTMScanCost)
	m.pm.scanNs.AddDuration(time.Duration(totalScans) * MTMScanCost)
	m.pm.pages.Add(totalPages)

	// Time-consecutive profiling: EMA update and variance tracking.
	m.topVar.Reset()
	for _, r := range regions {
		r.UpdateEMA(m.Cfg.Alpha)
		m.topVar.Offer(r)
	}

	// Region formation (§5.1) with overhead control (§5.3).
	if m.Cfg.AdaptiveRegions {
		tauM := m.set.TauM + m.tauMEsc
		freed := m.set.MergePass(tauM)
		m.set.SplitPass(m.set.TauS)
		m.redistribute(e, freed)
		m.pm.merges.Add(m.set.MergedThisInterval)
		m.pm.splits.Add(m.set.SplitThisInterval)
	}
	if m.Cfg.OverheadControl {
		if m.set.Len() > m.budget {
			// Too many regions for one sample each: escalate τm
			// gradually across intervals (§5.3).
			m.tauMEsc += m.set.TauM/2 + 0.05
		} else {
			m.tauMEsc = 0
		}
	}
	if spanning {
		e.SpanEnd(
			span.I("scans", totalScans),
			span.I("regions_after", int64(m.set.Len())))
	}
}

// profiledSet decides which regions receive PTE scans this interval: with
// PEBS assistance, slow-tier regions only when the counters saw traffic;
// all fast-tier regions always (§5.2 "initial page sampling"). The
// decision lands both in the returned index-parallel []bool (for the scan
// shards) and as a generation stamp on each region, so holders of region
// pointers from a previous interval — the top-variance list survives
// merge/split — read a stale region as not-selected.
func (m *MTM) profiledSet(regions []*region.Region) []bool {
	m.gen++
	usePEBS := m.Cfg.UsePEBS && m.buf != nil
	m.profiled = growClear(m.profiled, len(regions))
	for i, r := range regions {
		sel := true
		if usePEBS {
			node := RegionNode(r)
			switch {
			case node == tier.Invalid:
				sel = false // nothing mapped yet
			case m.isPMNode[node]:
				sel = m.kept[i].hits > 0
			}
		}
		m.profiled[i] = sel
		r.SetProfiled(m.gen, sel)
	}
	return m.profiled
}

func (m *MTM) enforceQuota(e *sim.Engine, regions []*region.Region, profiled []bool) {
	total := 0
	for i, r := range regions {
		if profiled[i] {
			if r.Quota < 1 {
				r.Quota = 1
			}
			total += r.Quota
		}
	}
	if !m.Cfg.OverheadControl {
		return
	}
	// Trim: reclaim extra quota from the largest holders until the
	// budget holds (or every region is at the 1-sample floor).
	for total > m.budget {
		trimmed := false
		for i, r := range regions {
			if total <= m.budget {
				break
			}
			if profiled[i] && r.Quota > 1 {
				r.Quota--
				total--
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}
	// Grow: spend leftover budget on the most variable regions first
	// (§5.2), then spread the rest across all profiled regions — more
	// samples per region directly cut hotness-estimation noise, which is
	// the profiling quality the scan budget buys.
	spare := m.budget - total
	if spare <= 0 {
		return
	}
	if m.Cfg.AdaptiveSampling {
		tops := m.topVar.Regions()
		boost := spare / 4
		for boost > 0 {
			grew := false
			for _, r := range tops {
				if boost == 0 {
					break
				}
				if r.ProfiledIn(m.gen) && r.Quota < r.Pages() {
					r.Quota++
					boost--
					spare--
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		for spare > 0 {
			grew := false
			for i, r := range regions {
				if spare == 0 {
					break
				}
				if profiled[i] && r.Quota < r.Pages() {
					r.Quota++
					spare--
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		return
	}
	// Ablation: random distribution of the same scan budget.
	var cand []*region.Region
	for i, r := range regions {
		if profiled[i] && r.Quota < r.Pages() {
			cand = append(cand, r)
		}
	}
	for spare > 0 && len(cand) > 0 {
		i := e.Rng.Intn(len(cand))
		r := cand[i]
		r.Quota++
		spare--
		if r.Quota >= r.Pages() {
			cand[i] = cand[len(cand)-1]
			cand = cand[:len(cand)-1]
		}
	}
}

// redistribute hands quota freed by merging to the top-variance regions
// (§5.2). Without adaptive sampling the quota is simply dropped back into
// the pool (enforceQuota re-spreads it next interval).
func (m *MTM) redistribute(e *sim.Engine, freed int) {
	if freed <= 0 || !m.Cfg.AdaptiveSampling {
		return
	}
	tops := m.topVar.Regions()
	for freed > 0 && len(tops) > 0 {
		grew := false
		for _, r := range tops {
			if freed == 0 {
				break
			}
			if r.Quota < r.Pages() {
				r.Quota++
				freed--
				grew = true
			}
		}
		if !grew {
			return
		}
	}
}

func containsInt32(xs []int32, x int32) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// growClear returns buf resized to n zeroed elements, reusing its backing
// array when the capacity allows — the reuse idiom of the per-interval
// profiler buffers.
func growClear[T any](buf []T, n int) []T {
	if cap(buf) < n {
		return make([]T, n)
	}
	buf = buf[:n]
	clear(buf)
	return buf
}

// findRegionIndex locates the region containing page idx of v via binary
// search over the address-ordered region slice, returning -1 if none. It
// is read-only and safe to call concurrently from attribution shards.
func findRegionIndex(regions []*region.Region, v *vm.VMA, idx int) int {
	addr := v.Addr(idx)
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := regions[mid]
		rStart := r.V.Addr(r.Start)
		rEnd := r.V.Addr(r.Start) + uint64(r.Bytes())
		switch {
		case addr < rStart:
			hi = mid
		case addr >= rEnd:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// MemoryOverheadBytes estimates MTM's metadata footprint (Table 5): per
// region, two hotness floats, the address range, the quota, and a hash-map
// slot for address indexing.
func (m *MTM) MemoryOverheadBytes() int64 {
	const perRegion = 2*8 + 16 + 8 + 32
	return int64(m.set.Len()) * perRegion
}
