package profiler

import (
	"time"

	"mtm/internal/pebs"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// MTMConfig carries the tunables of the MTM adaptive profiler. The zero
// value is not usable; start from DefaultMTMConfig.
type MTMConfig struct {
	// OverheadTarget is the profiling-overhead constraint as a fraction
	// of execution time (§5.3; 5% in the paper's evaluation).
	OverheadTarget float64
	// NumScans is the number of PTE scans per sampled page per interval
	// (§5.1; constant 3 in the paper).
	NumScans int
	// Alpha weighs current vs historical hotness in the EMA (Equation 2).
	Alpha float64
	// RegionBytes is the initial region granularity (2 MB).
	RegionBytes int64
	// ScanWindowFrac is the observation window of one PTE scan as a
	// fraction of the profiling interval: MTM paces its num_scans scans
	// ~30 ms apart within a 10 s interval, so each scan's accessed bit
	// covers ~0.3% of it. This is what turns the binary bit into a rate
	// signal (see vm.ObserveScans).
	ScanWindowFrac float64
	// TauM and TauS override the merge/split thresholds; negative values
	// select the defaults num_scans/3 and 2*num_scans/3.
	TauM, TauS float64

	// Feature switches for the §9.3 ablations.
	UsePEBS          bool // performance counter-assisted PTE scan (§5.5)
	AdaptiveRegions  bool // merge/split region formation ("AMR")
	AdaptiveSampling bool // variance-guided quota redistribution ("APS")
	OverheadControl  bool // Equation 1 budget + τm escalation ("OC")
}

// DefaultMTMConfig returns the paper's evaluation configuration.
func DefaultMTMConfig() MTMConfig {
	return MTMConfig{
		OverheadTarget:   0.05,
		NumScans:         region.DefaultNumScans,
		Alpha:            0.5,
		RegionBytes:      DefaultRegionBytes,
		ScanWindowFrac:   0.003,
		TauM:             -1,
		TauS:             -1,
		UsePEBS:          true,
		AdaptiveRegions:  true,
		AdaptiveSampling: true,
		OverheadControl:  true,
	}
}

// MTM is the adaptive memory profiler of §5: overhead control connected
// directly to the number of PTE scans (Equation 1), multi-scan sampling,
// variance-guided sample redistribution, hotness-guided region formation
// with huge-page alignment, and PEBS-assisted event-driven profiling of
// the slow tiers.
type MTM struct {
	Cfg MTMConfig

	set     *region.Set
	topVar  *region.TopVariance
	buf     *pebs.Buffer
	budget  int     // num_ps from Equation 1
	tauMEsc float64 // temporary τm escalation for overhead control
	scans   int64   // PTE scans performed (cumulative, for tests)

	pmNodes  []tier.NodeID // nodes profiled event-driven via PEBS
	isPMNode []bool        // indexed by NodeID

	pm          profMetrics
	lastDropped int64 // buffer's cumulative drop count at last Profile
}

// NewMTM creates the profiler with the given config.
func NewMTM(cfg MTMConfig) *MTM {
	if cfg.NumScans <= 0 {
		cfg.NumScans = region.DefaultNumScans
	}
	if cfg.ScanWindowFrac <= 0 {
		cfg.ScanWindowFrac = 0.003
	}
	return &MTM{Cfg: cfg, topVar: region.NewTopVariance(5)}
}

func (m *MTM) Name() string { return "mtm-profiler" }

// Set returns the underlying region set (formation statistics, tests).
func (m *MTM) Set() *region.Set { return m.set }

// Budget returns num_ps, the page-sample budget of Equation 1.
func (m *MTM) Budget() int { return m.budget }

// Scans returns the cumulative number of PTE scans performed.
func (m *MTM) Scans() int64 { return m.scans }

func (m *MTM) Attach(e *sim.Engine) {
	m.set = region.NewSet(m.Cfg.NumScans)
	if m.Cfg.TauM >= 0 {
		m.set.TauM = m.Cfg.TauM
	}
	if m.Cfg.TauS >= 0 {
		m.set.TauS = m.Cfg.TauS
	}
	initRegions(e, m.set, m.Cfg.RegionBytes)
	// Equation 1: num_ps = t_mi * overhead_target / (one_scan_overhead * num_scans).
	m.budget = int(float64(e.Interval) * m.Cfg.OverheadTarget /
		(float64(MTMScanCost) * float64(m.Cfg.NumScans)))
	if m.budget < 1 {
		m.budget = 1
	}
	// Slow (CPU-less / PM / CXL) nodes are profiled event-driven.
	m.isPMNode = make([]bool, len(e.Sys.Topo.Nodes))
	for i, n := range e.Sys.Topo.Nodes {
		if n.Kind != tier.DRAM {
			m.pmNodes = append(m.pmNodes, tier.NodeID(i))
			m.isPMNode[i] = true
		}
	}
	if m.Cfg.UsePEBS && len(m.pmNodes) > 0 {
		m.buf = pebs.NewBuffer(len(e.Sys.Topo.Nodes), 1<<16, e.Rng)
		e.PEBS = m.buf
	}
	m.pm = newProfMetrics(e, m.Name())
}

func (m *MTM) IntervalStart(e *sim.Engine) {
	if m.buf != nil {
		m.buf.Arm(m.pmNodes...)
	}
}

func (m *MTM) Regions() []*region.Region {
	if m.set == nil {
		return nil
	}
	return m.set.Regions()
}

// Shard sizes of the parallel profiling phases. Both are fixed constants
// (never derived from the worker count) so the shard layout — and with it
// every per-shard RNG stream — is identical at any Parallelism setting.
const (
	// scanShardRegions is how many consecutive regions one PTE-scan shard
	// owns.
	scanShardRegions = 16
	// pebsShardSamples is how many consecutive PEBS samples one
	// attribution shard resolves.
	pebsShardSamples = 1024
)

// Profile implements the §5 pipeline for one interval. The two expensive
// passes — PEBS sample attribution and the per-region PTE scans — run
// sharded on the engine's worker pool; their results are merged in shard
// order, and all engine accounting happens on the serialised path, so the
// outcome is bit-identical to a sequential run (see sim/parallel.go).
func (m *MTM) Profile(e *sim.Engine) {
	m.set.BeginInterval()
	regions := m.set.Regions()
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("profiling", "mtm-profile",
			span.I("regions", int64(len(regions))),
			span.I("budget", int64(m.budget)))
	}

	// Map PEBS samples to regions so slow-tier regions with observed
	// traffic get event-driven PTE-scan profiling (§5.5). The sampled
	// pages themselves are kept: §5.2 profiles "specifically the page
	// captured by the performance counters", which is what points the
	// PTE scans at the hot spots inside a large region. Shards resolve
	// their sample slice against the region table (read-only binary
	// searches) into private slots; the merge below replays the resolved
	// pairs in sample order, so the kept-pages rule (first four distinct
	// pages per region) matches the sequential walk exactly.
	var pebsHits map[*region.Region]int
	var pebsPages map[*region.Region][]int
	if m.buf != nil {
		m.buf.Disarm()
		pebsHits = make(map[*region.Region]int)
		pebsPages = make(map[*region.Region][]int)
		samples := m.buf.Samples()
		m.pm.pebsKept.Add(int64(len(samples)))
		if d := int64(m.buf.Dropped()); d > m.lastDropped {
			m.pm.pebsDropped.Add(d - m.lastDropped)
			m.lastDropped = d
		}
		type attributed struct{ region, page int }
		shards := m.buf.Partition(pebsShardSamples)
		parts := make([][]attributed, len(shards))
		e.Parallel(len(shards), func(s int) {
			out := make([]attributed, 0, len(shards[s]))
			for _, smp := range shards[s] {
				if ri := findRegionIndex(regions, smp.VMA, smp.Page); ri >= 0 {
					out = append(out, attributed{ri, smp.Page})
				}
			}
			parts[s] = out
		})
		for _, part := range parts {
			for _, a := range part {
				r := regions[a.region]
				pebsHits[r]++
				if pp := pebsPages[r]; len(pp) < 4 && !containsInt(pp, a.page) {
					pebsPages[r] = append(pp, a.page)
				}
			}
		}
		// PEBS runtime overhead is <1% (§9.3); charge a small per-sample
		// handling cost.
		handling := time.Duration(len(samples)) * 100 * time.Nanosecond
		if spanning {
			e.SpanEmit("profiling", "pebs-attribution", e.SpanClockNs(), int64(handling),
				span.I("samples", int64(len(samples))),
				span.I("shards", int64(len(shards))))
		}
		e.ChargeProfiling(handling)
		m.pm.scanNs.AddDuration(handling)
	}

	// Decide which regions to profile and trim quotas to budget.
	profiled := m.profiledSet(regions, pebsHits)
	m.enforceQuota(e, regions, profiled)

	// Scan. Each shard owns a fixed run of regions: it draws sample pages
	// and scan observations from its own ShardRand stream and writes only
	// the per-region fields of regions it owns (plus its private scan
	// tally). pebsPages/profiled are read-only here; VMA state is only
	// read (ObserveScans models the scan, it does not clear bits).
	nShards := sim.NumShards(len(regions), scanShardRegions)
	shardScans := make([]int64, nShards)
	shardPages := make([]int64, nShards)
	e.Parallel(nShards, func(s int) {
		rng := e.ShardRand(sim.SaltPTEScan, s)
		lo, hi := sim.ShardSpan(len(regions), scanShardRegions, s)
		var scans, nPages int64
		for _, r := range regions[lo:hi] {
			if !profiled[r] {
				// Event-driven: no PEBS event means no observed traffic;
				// the region is cold this interval without spending scans.
				r.PrevHI = r.HI
				r.HI = 0
				r.Samples = r.Samples[:0]
				r.Observed = r.Observed[:0]
				r.Sampled = true
				continue
			}
			n := r.Quota
			if n < 1 {
				n = 1
			}
			var pages []int
			if pp := pebsPages[r]; len(pp) > 0 {
				// PEBS-captured pages first (§5.2), random samples for the
				// remaining quota.
				pages = append(pages, pp...)
				if n > len(pages) {
					pages = append(pages, samplePages(rng, r.Start, r.End, n-len(pages))...)
				}
			} else {
				pages = samplePages(rng, r.Start, r.End, n)
			}
			r.Samples = pages
			r.Observed = r.Observed[:0]
			sum := 0
			for _, p := range pages {
				obs := vm.ObserveScans(r.V, p, m.Cfg.NumScans, m.Cfg.ScanWindowFrac, rng)
				r.Observed = append(r.Observed, obs)
				sum += obs
			}
			scans += int64(len(pages) * m.Cfg.NumScans)
			nPages += int64(len(pages))
			r.PrevHI = r.HI
			if len(pages) > 0 {
				r.HI = float64(sum) / float64(len(pages))
			} else {
				r.HI = 0
			}
			r.Sampled = true
		}
		shardScans[s] = scans
		shardPages[s] = nPages
	})
	var totalScans, totalPages int64
	for s := range shardScans {
		totalScans += shardScans[s]
		totalPages += shardPages[s]
	}
	if spanning {
		// Per-shard scan spans, reconstructed from the shards' private
		// tallies on the serialised path and laid end to end; their summed
		// duration equals the ChargeProfiling below exactly.
		cur := e.SpanClockNs()
		for s := range shardScans {
			d := int64(time.Duration(shardScans[s]) * MTMScanCost)
			e.SpanEmit("profiling", "pte-scan", cur, d,
				span.I("shard", int64(s)),
				span.I("scans", shardScans[s]),
				span.I("pages", shardPages[s]))
			cur += d
		}
	}
	m.scans += totalScans
	e.ChargeProfiling(time.Duration(totalScans) * MTMScanCost)
	m.pm.scanNs.AddDuration(time.Duration(totalScans) * MTMScanCost)
	m.pm.pages.Add(totalPages)

	// Time-consecutive profiling: EMA update and variance tracking.
	m.topVar.Reset()
	for _, r := range regions {
		r.UpdateEMA(m.Cfg.Alpha)
		m.topVar.Offer(r)
	}

	// Region formation (§5.1) with overhead control (§5.3).
	if m.Cfg.AdaptiveRegions {
		tauM := m.set.TauM + m.tauMEsc
		freed := m.set.MergePass(tauM)
		m.set.SplitPass(m.set.TauS)
		m.redistribute(e, freed)
		m.pm.merges.Add(m.set.MergedThisInterval)
		m.pm.splits.Add(m.set.SplitThisInterval)
	}
	if m.Cfg.OverheadControl {
		if m.set.Len() > m.budget {
			// Too many regions for one sample each: escalate τm
			// gradually across intervals (§5.3).
			m.tauMEsc += m.set.TauM/2 + 0.05
		} else {
			m.tauMEsc = 0
		}
	}
	if spanning {
		e.SpanEnd(
			span.I("scans", totalScans),
			span.I("regions_after", int64(m.set.Len())))
	}
}

// profiledSet decides which regions receive PTE scans this interval: with
// PEBS assistance, slow-tier regions only when the counters saw traffic;
// all fast-tier regions always (§5.2 "initial page sampling").
func (m *MTM) profiledSet(regions []*region.Region, pebsHits map[*region.Region]int) map[*region.Region]bool {
	usePEBS := m.Cfg.UsePEBS && m.buf != nil
	out := make(map[*region.Region]bool, len(regions))
	for _, r := range regions {
		if !usePEBS {
			out[r] = true
			continue
		}
		node := RegionNode(r)
		if node == tier.Invalid {
			continue // nothing mapped yet
		}
		if m.isPMNode[node] {
			out[r] = pebsHits[r] > 0
		} else {
			out[r] = true
		}
	}
	return out
}

func (m *MTM) enforceQuota(e *sim.Engine, regions []*region.Region, profiled map[*region.Region]bool) {
	total := 0
	for _, r := range regions {
		if profiled[r] {
			if r.Quota < 1 {
				r.Quota = 1
			}
			total += r.Quota
		}
	}
	if !m.Cfg.OverheadControl {
		return
	}
	// Trim: reclaim extra quota from the largest holders until the
	// budget holds (or every region is at the 1-sample floor).
	for total > m.budget {
		trimmed := false
		for _, r := range regions {
			if total <= m.budget {
				break
			}
			if profiled[r] && r.Quota > 1 {
				r.Quota--
				total--
				trimmed = true
			}
		}
		if !trimmed {
			break
		}
	}
	// Grow: spend leftover budget on the most variable regions first
	// (§5.2), then spread the rest across all profiled regions — more
	// samples per region directly cut hotness-estimation noise, which is
	// the profiling quality the scan budget buys.
	spare := m.budget - total
	if spare <= 0 {
		return
	}
	if m.Cfg.AdaptiveSampling {
		tops := m.topVar.Regions()
		boost := spare / 4
		for boost > 0 {
			grew := false
			for _, r := range tops {
				if boost == 0 {
					break
				}
				if profiled[r] && r.Quota < r.Pages() {
					r.Quota++
					boost--
					spare--
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		for spare > 0 {
			grew := false
			for _, r := range regions {
				if spare == 0 {
					break
				}
				if profiled[r] && r.Quota < r.Pages() {
					r.Quota++
					spare--
					grew = true
				}
			}
			if !grew {
				break
			}
		}
		return
	}
	// Ablation: random distribution of the same scan budget.
	var cand []*region.Region
	for _, r := range regions {
		if profiled[r] && r.Quota < r.Pages() {
			cand = append(cand, r)
		}
	}
	for spare > 0 && len(cand) > 0 {
		i := e.Rng.Intn(len(cand))
		r := cand[i]
		r.Quota++
		spare--
		if r.Quota >= r.Pages() {
			cand[i] = cand[len(cand)-1]
			cand = cand[:len(cand)-1]
		}
	}
}

// redistribute hands quota freed by merging to the top-variance regions
// (§5.2). Without adaptive sampling the quota is simply dropped back into
// the pool (enforceQuota re-spreads it next interval).
func (m *MTM) redistribute(e *sim.Engine, freed int) {
	if freed <= 0 || !m.Cfg.AdaptiveSampling {
		return
	}
	tops := m.topVar.Regions()
	for freed > 0 && len(tops) > 0 {
		grew := false
		for _, r := range tops {
			if freed == 0 {
				break
			}
			if r.Quota < r.Pages() {
				r.Quota++
				freed--
				grew = true
			}
		}
		if !grew {
			return
		}
	}
}

func containsInt(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// findRegionIndex locates the region containing page idx of v via binary
// search over the address-ordered region slice, returning -1 if none. It
// is read-only and safe to call concurrently from attribution shards.
func findRegionIndex(regions []*region.Region, v *vm.VMA, idx int) int {
	addr := v.Addr(idx)
	lo, hi := 0, len(regions)
	for lo < hi {
		mid := (lo + hi) / 2
		r := regions[mid]
		rStart := r.V.Addr(r.Start)
		rEnd := r.V.Addr(r.Start) + uint64(r.Bytes())
		switch {
		case addr < rStart:
			hi = mid
		case addr >= rEnd:
			lo = mid + 1
		default:
			return mid
		}
	}
	return -1
}

// MemoryOverheadBytes estimates MTM's metadata footprint (Table 5): per
// region, two hotness floats, the address range, the quota, and a hash-map
// slot for address indexing.
func (m *MTM) MemoryOverheadBytes() int64 {
	const perRegion = 2*8 + 16 + 8 + 32
	return int64(m.set.Len()) * perRegion
}
