// Package profiler implements the memory-profiling mechanisms compared in
// the MTM paper: MTM's adaptive profiler (§5), Linux DAMON, Thermostat's
// page-protection sampling, AutoTiering's random address-space sampling,
// and tiered-AutoNUMA's sequential hint-fault scan.
//
// All profilers observe memory through the same PTE primitives
// (vm.ObserveScans / VMA.ScanAndClear), so differences in profiling
// quality emerge from their mechanisms — sample placement, scan counts,
// region formation — exactly as in the paper, not from privileged access
// to ground truth.
package profiler

import (
	"math/rand"
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/tier"
)

// Cost model constants. one_scan_overhead is "measured offline" in the
// paper (§5.3); the absolute value only scales profiling overhead against
// the virtual clock, while every comparison keeps the published ratios:
// a NUMA hint fault costs 12 PTE scans (§6.2) and Thermostat's
// protection-fault counting is several times a plain scan (§9.3).
const (
	// OneScanOverhead is the cost of scanning (read + conditionally
	// clear) a single PTE without a TLB flush.
	OneScanOverhead = 600 * time.Nanosecond
	// HintFaultCost is one NUMA hint fault, 12x a PTE scan (§6.2).
	HintFaultCost = 12 * OneScanOverhead
	// MTMScanCost folds the amortised hint fault (one per 12 scans,
	// §6.2) into the per-scan cost used by Equation 1.
	MTMScanCost = OneScanOverhead + HintFaultCost/12
	// ProtFaultCost is one write/read protection fault taken by
	// Thermostat-style access counting.
	ProtFaultCost = 4 * OneScanOverhead
	// DefaultRegionBytes is the default region granularity: the span of
	// one last-level page-directory entry, 2 MB (§5.1).
	DefaultRegionBytes = 2 * tier.MB
)

// Profiler is a memory-profiling mechanism. Profile runs at the end of a
// profiling interval: it inspects PTEs (charging its cost to the engine),
// updates its region set, and leaves per-region hotness in Regions().
type Profiler interface {
	Name() string
	// Attach prepares the profiler for the engine's address space. It
	// must be called after the workload allocated its VMAs.
	Attach(e *sim.Engine)
	// IntervalStart runs before the application executes (PEBS arming).
	IntervalStart(e *sim.Engine)
	// Profile runs the interval's PTE scans and updates region hotness.
	Profile(e *sim.Engine)
	// Regions exposes the current region set for the migration policy
	// and for profiling-quality metrics.
	Regions() []*region.Region
}

// RegionNode returns the memory node holding region r, defined as the node
// of its first present page (regions migrate as a unit, so pages of a
// region share a node except transiently). Invalid if nothing is present.
// The present plane finds that page word-wide instead of walking PTEs.
func RegionNode(r *region.Region) tier.NodeID {
	if i := r.V.FirstPresent(r.Start, r.End); i >= 0 {
		return r.V.Node(i)
	}
	return tier.Invalid
}

// RegionPresentBytes returns the bytes of r that have physical frames,
// popcounted from the present plane.
func RegionPresentBytes(r *region.Region) int64 {
	return int64(r.V.PresentCount(r.Start, r.End)) * r.V.PageSize
}

// HotBytes selects regions from hottest WHI down until covering want
// bytes, returning the selected regions. It is the common "label the top
// of the histogram hot" step used by detection-quality metrics.
func HotBytes(regions []*region.Region, want int64) []*region.Region {
	h := region.NewHistogram(regions, 32, maxWHI(regions))
	var out []*region.Region
	var got int64
	for _, r := range h.HottestFirst() {
		if got >= want {
			break
		}
		if r.WHI <= 0 {
			break
		}
		out = append(out, r)
		got += r.Bytes()
	}
	return out
}

func maxWHI(regions []*region.Region) float64 {
	m := 1.0
	for _, r := range regions {
		if r.WHI > m {
			m = r.WHI
		}
	}
	return m
}

// initRegions carves every VMA of the address space into default-size
// regions.
func initRegions(e *sim.Engine, set *region.Set, regionBytes int64) {
	for _, v := range e.AS.VMAs() {
		set.InitVMA(v, regionBytes)
	}
}

// samplePages picks n distinct page indices in [start, end) uniformly at
// random; see samplePagesInto. Allocating convenience wrapper for tests.
func samplePages(rng *rand.Rand, start, end, n int) []int {
	return samplePagesInto(nil, nil, rng, start, end, n)
}

// samplePagesInto picks n distinct page indices in [start, end) uniformly
// at random (with a fallback to stride sampling when n approaches the
// range size), appending to dst. The caller supplies the RNG — sharded
// scan phases pass their per-shard stream so page selection stays
// deterministic at any Parallelism — and the shard scratch, whose seen
// bitset replaces the per-call membership map the rejection loop used to
// allocate. A nil scratch allocates a transient bitset. The draw sequence
// is identical to the historical map-based implementation.
func samplePagesInto(dst []int, sc *sim.Scratch, rng *rand.Rand, start, end, n int) []int {
	span := end - start
	if n >= span {
		for i := 0; i < span; i++ {
			dst = append(dst, start+i)
		}
		return dst
	}
	if n <= 0 {
		return dst
	}
	if n*4 >= span {
		// Dense: stride with a random phase avoids rejection loops.
		stride := span / n
		phase := rng.Intn(stride)
		for i := 0; i < n; i++ {
			dst = append(dst, start+phase+i*stride)
		}
		return dst
	}
	var seen []uint64
	if sc != nil {
		seen = sc.Seen(span)
	} else {
		seen = make([]uint64, (span+63)/64)
	}
	for got := 0; got < n; {
		p := rng.Intn(span)
		if seen[p>>6]&(1<<uint(p&63)) != 0 {
			continue
		}
		seen[p>>6] |= 1 << uint(p&63)
		dst = append(dst, start+p)
		got++
	}
	return dst
}
