package profiler

import (
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/vm"
)

// DAMONConfig configures the DAMON baseline (§3): Linux's data-access
// monitor, which bounds overhead by capping the number of regions, checks
// one random page per region per sampling interval, splits regions at
// random points, and merges neighbours with similar access counts.
type DAMONConfig struct {
	// MinRegions and MaxRegions bound the region count; DAMON splits
	// while fewer than MaxRegions/2 regions exist and merges to stay
	// above MinRegions. MaxRegions = 0 derives the cap from
	// OverheadTarget at Attach time so DAMON runs under the same scan
	// budget as the other profilers — the fair comparison of §3.
	MinRegions, MaxRegions int
	// OverheadTarget bounds profiling cost when MaxRegions is derived.
	OverheadTarget float64
	// ChecksPerInterval is how many sampling checks (access-bit reads)
	// fall in one profiling interval: aggregation/sampling ratio, 20 for
	// DAMON's 100 ms aggregation over 5 ms sampling.
	ChecksPerInterval int
	// MergeThreshold is the nr_accesses difference (in checks) below
	// which adjacent regions merge.
	MergeThreshold int
	// WindowFrac is one sampling check's observation window as a
	// fraction of the profiling interval (5 ms of 10 s by default).
	WindowFrac float64
	// Alpha is the EMA weight used when feeding a migration policy; pure
	// DAMON has no EMA, so 1.0 (current interval only) is the default.
	Alpha float64
}

// DefaultDAMONConfig mirrors the Linux defaults scaled to a 10 s interval.
func DefaultDAMONConfig() DAMONConfig {
	return DAMONConfig{
		MinRegions:        10,
		MaxRegions:        0, // derived from OverheadTarget
		OverheadTarget:    0.05,
		ChecksPerInterval: 20,
		MergeThreshold:    2,
		WindowFrac:        0.0005,
		Alpha:             1.0,
	}
}

// DAMON implements the Linux DAMON profiling scheme over the simulator's
// PTE primitives. Its limitations relative to MTM (§3) emerge from the
// mechanism itself: exactly one sampled page per region, random-sized
// splits, and overhead control tied to the region cap rather than to the
// scan budget.
type DAMON struct {
	Cfg DAMONConfig

	set   *region.Set
	scans int64
	pm    profMetrics
}

// NewDAMON creates the baseline with the given config.
func NewDAMON(cfg DAMONConfig) *DAMON {
	if cfg.ChecksPerInterval <= 0 {
		cfg = DefaultDAMONConfig()
	}
	return &DAMON{Cfg: cfg}
}

func (d *DAMON) Name() string { return "damon" }

// Set exposes the region set for statistics.
func (d *DAMON) Set() *region.Set { return d.set }

// Scans returns the cumulative PTE checks performed.
func (d *DAMON) Scans() int64 { return d.scans }

func (d *DAMON) Attach(e *sim.Engine) {
	if d.Cfg.MaxRegions <= 0 {
		// Same overhead budget as MTM's Equation 1, spent DAMON's way:
		// one page per region, ChecksPerInterval scans each.
		target := d.Cfg.OverheadTarget
		if target <= 0 {
			target = 0.05
		}
		d.Cfg.MaxRegions = int(float64(e.Interval) * target /
			(float64(OneScanOverhead) * float64(d.Cfg.ChecksPerInterval)))
		if d.Cfg.MaxRegions < d.Cfg.MinRegions {
			d.Cfg.MaxRegions = d.Cfg.MinRegions
		}
	}
	d.set = region.NewSet(d.Cfg.ChecksPerInterval)
	// DAMON's initial regions come from the VMA tree: one region per
	// VMA, i.e. as coarse as possible (the paper's Figure 6 point about
	// object B).
	for _, v := range e.AS.VMAs() {
		d.set.InitVMA(v, v.Bytes())
	}
	d.pm = newProfMetrics(e, d.Name())
}

func (d *DAMON) IntervalStart(*sim.Engine) {}

func (d *DAMON) Regions() []*region.Region {
	if d.set == nil {
		return nil
	}
	return d.set.Regions()
}

func (d *DAMON) Profile(e *sim.Engine) {
	d.set.BeginInterval()
	regions := d.set.Regions()
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("profiling", "damon-profile",
			span.I("regions", int64(len(regions))))
	}

	// One random page per region, ChecksPerInterval access-bit checks.
	for _, r := range regions {
		p := r.Start + e.Rng.Intn(r.Pages())
		obs := vm.ObserveScans(r.V, p, d.Cfg.ChecksPerInterval, d.Cfg.WindowFrac, e.Rng)
		r.Samples = append(r.Samples[:0], p)
		r.Observed = append(r.Observed[:0], obs)
		r.PrevHI = r.HI
		r.HI = float64(obs)
		r.Sampled = true
		r.UpdateEMA(d.Cfg.Alpha)
	}
	n := int64(len(regions) * d.Cfg.ChecksPerInterval)
	d.scans += n
	if spanning {
		e.SpanEmit("profiling", "access-bit-checks", e.SpanClockNs(),
			int64(time.Duration(n)*OneScanOverhead),
			span.I("checks", n))
	}
	e.ChargeProfiling(time.Duration(n) * OneScanOverhead)
	d.pm.scanNs.AddDuration(time.Duration(n) * OneScanOverhead)
	d.pm.pages.Add(int64(len(regions)))

	// Merge neighbours whose nr_accesses differ by <= threshold, while
	// respecting the minimum region count.
	if d.set.Len() > d.Cfg.MinRegions {
		d.set.MergePass(float64(d.Cfg.MergeThreshold))
	}
	// Split each region into two randomly sized pieces while under half
	// the cap (the kernel's damon_split_regions).
	if d.set.Len() < d.Cfg.MaxRegions/2 {
		d.randomSplit(e)
	}
	d.pm.merges.Add(d.set.MergedThisInterval)
	d.pm.splits.Add(d.set.SplitThisInterval)
	if spanning {
		e.SpanEnd(
			span.I("merges", d.set.MergedThisInterval),
			span.I("splits", d.set.SplitThisInterval),
			span.I("regions_after", int64(d.set.Len())))
	}
}

// randomSplit reproduces DAMON's split step: every region is split at a
// uniformly random internal point (aligned only to the page size, not to
// hotness structure — the ad-hoc formation §3 criticises).
func (d *DAMON) randomSplit(e *sim.Engine) {
	regions := d.set.Regions()
	var out []*region.Region
	budget := d.Cfg.MaxRegions - d.set.Len()
	for _, r := range regions {
		if budget <= 0 || r.Pages() < 2 {
			out = append(out, r)
			continue
		}
		mid := r.Start + 1 + e.Rng.Intn(r.Pages()-1)
		a := d.set.NewRegion(region.Region{V: r.V, Start: r.Start, End: mid, Quota: 1, HI: r.HI, PrevHI: r.PrevHI, WHI: r.WHI, Sampled: true})
		b := d.set.NewRegion(region.Region{V: r.V, Start: mid, End: r.End, Quota: 1, HI: r.HI, PrevHI: r.PrevHI, WHI: r.WHI, Sampled: true})
		out = append(out, a, b)
		budget--
		d.set.Split++
		d.set.SplitThisInterval++
	}
	d.set.Replace(out)
}
