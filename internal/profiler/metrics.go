package profiler

import (
	"mtm/internal/metrics"
	"mtm/internal/sim"
)

// profMetrics bundles the per-profiler instrument handles, labeled by
// profiler name so runs comparing solutions keep their series apart. The
// zero value (and the value built against a metrics-disabled engine) is
// fully usable: every handle is nil and every recording no-ops, so the
// profilers carry no "metrics enabled?" branches.
type profMetrics struct {
	scanNs      *metrics.Counter // critical-path profiling cost charged
	pages       *metrics.Counter // pages whose PTEs were scanned/sampled
	pebsKept    *metrics.Counter // PEBS samples delivered to attribution
	pebsDropped *metrics.Counter // PEBS samples lost (overflow / fault storms)
	splits      *metrics.Counter
	merges      *metrics.Counter
}

func newProfMetrics(e *sim.Engine, name string) profMetrics {
	reg := e.Metrics()
	l := metrics.L("profiler", name)
	return profMetrics{
		scanNs:      reg.Counter("mtm_profiler_scan_ns_total", "critical-path profiling cost charged (virtual ns)", l),
		pages:       reg.Counter("mtm_profiler_pages_scanned_total", "pages whose PTEs were scanned", l),
		pebsKept:    reg.Counter("mtm_profiler_pebs_samples_kept_total", "PEBS samples delivered to attribution", l),
		pebsDropped: reg.Counter("mtm_profiler_pebs_samples_dropped_total", "PEBS samples lost to buffer overflow or injected drop storms", l),
		splits:      reg.Counter("mtm_profiler_region_splits_total", "region splits performed", l),
		merges:      reg.Counter("mtm_profiler_region_merges_total", "region merges performed", l),
	}
}
