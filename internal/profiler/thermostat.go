package profiler

import (
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/vm"
)

// Thermostat is the Thermostat-style profiler (§3, §9.3): fixed-size 2 MB
// regions, one random 4 KB page sampled per region, and access counting by
// page-protection faults. Two costs distinguish it from PTE-scan
// profilers, both modelled here: every counted access takes a protection
// fault (expensive), and sampling a 4 KB slice of a 2 MB huge page
// extrapolates ×512 (noisy, the huge-page quality loss §5.4 describes).
type Thermostat struct {
	// OverheadTarget bounds the per-interval profiling cost; regions are
	// chosen uniformly at random until the predicted cost is spent.
	OverheadTarget float64
	// Alpha is the EMA weight for time-consecutive hotness.
	Alpha float64

	set    *region.Set
	faults int64
	pm     profMetrics
}

// NewThermostat creates the baseline with the paper's 5% target.
func NewThermostat() *Thermostat {
	return &Thermostat{OverheadTarget: 0.05, Alpha: 0.5}
}

func (t *Thermostat) Name() string { return "thermostat-profiler" }

// Set exposes the region set.
func (t *Thermostat) Set() *region.Set { return t.set }

func (t *Thermostat) Attach(e *sim.Engine) {
	t.set = region.NewSet(region.DefaultNumScans)
	initRegions(e, t.set, DefaultRegionBytes)
	t.pm = newProfMetrics(e, t.Name())
}

func (t *Thermostat) IntervalStart(*sim.Engine) {}

func (t *Thermostat) Regions() []*region.Region {
	if t.set == nil {
		return nil
	}
	return t.set.Regions()
}

// expectedFaultsPerSample is the planning estimate of protection faults
// taken per sampled page, used to size the random selection to the budget.
const expectedFaultsPerSample = 8

func (t *Thermostat) Profile(e *sim.Engine) {
	t.set.BeginInterval()
	regions := t.set.Regions()
	budget := time.Duration(float64(e.Interval) * t.OverheadTarget)
	perSample := ProtFaultCost * (1 + expectedFaultsPerSample)
	n := int(budget / perSample)
	if n < 1 {
		n = 1
	}
	if n > len(regions) {
		n = len(regions)
	}

	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("profiling", "thermostat-profile",
			span.I("regions", int64(len(regions))),
			span.I("sampled", int64(n)))
	}

	// Random region selection: the uncontrolled profiling quality the
	// paper attributes to Thermostat comes from exactly this step.
	perm := e.Rng.Perm(len(regions))
	var spent time.Duration
	for _, ri := range perm[:n] {
		r := regions[ri]
		p := r.Start + e.Rng.Intn(r.Pages())
		count := int(r.V.Count(p))
		est := count
		if r.V.PageSize == vm.HugePageSize {
			// A 4 KB slice of the 2 MB page: each access lands in the
			// sampled slice with probability 1/512; extrapolate back.
			hits := 0
			for i := 0; i < count && i < 4096; i++ {
				if e.Rng.Intn(vm.HugeRatio) == 0 {
					hits++
				}
			}
			if count > 4096 {
				hits += (count - 4096) / vm.HugeRatio
			}
			est = hits * vm.HugeRatio
		}
		faults := est / vm.HugeRatio
		if faults > expectedFaultsPerSample*4 {
			faults = expectedFaultsPerSample * 4 // protection re-armed lazily
		}
		spent += ProtFaultCost * time.Duration(1+faults)
		t.faults += int64(faults)

		r.Samples = append(r.Samples[:0], p)
		// Normalise the estimate into scan-count units so merge/split
		// thresholds and histograms share a scale with MTM.
		obs := est / 1000
		if obs > t.set.NumScans {
			obs = t.set.NumScans
		}
		if est > 0 && obs == 0 {
			obs = 1
		}
		r.Observed = append(r.Observed[:0], obs)
		r.PrevHI = r.HI
		r.HI = float64(obs)
		r.Sampled = true
		r.UpdateEMA(t.Alpha)
	}
	if spanning {
		e.SpanEmit("profiling", "prot-fault-sampling", e.SpanClockNs(), int64(spent),
			span.I("sampled", int64(n)))
	}
	e.ChargeProfiling(spent)
	t.pm.scanNs.AddDuration(spent)
	t.pm.pages.Add(int64(n))
	if spanning {
		e.SpanEnd()
	}
}
