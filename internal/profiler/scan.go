package profiler

import (
	"math"
	"math/bits"
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/vm"
)

// ChunkBytes is the virtual-address span AutoTiering and tiered-AutoNUMA
// profile per interval (256 MB in the paper §9.3).
const ChunkBytes = 256 * (1 << 20)

// scanWindow is the observation window of a hint-fault latency check as a
// fraction of the interval: the patched hot-page-selection heuristic
// compares consecutive fault timestamps, giving it some rate sensitivity,
// but over far coarser windows than MTM's paced PTE scans.
const scanWindow = 0.05

// RandomChunk is the AutoTiering profiling baseline: each interval it
// randomly chooses a contiguous 256 MB span of the address space and
// tracks accesses to every page in it by manipulating present bits and
// counting the resulting page faults (one observation per page). Coverage
// is random, so hot pages outside the chosen window stay invisible — the
// "uncontrolled profiling quality" of §3.
type RandomChunk struct {
	Alpha float64

	set      *region.Set
	scans    int64
	pm       profMetrics
	shardBuf []int64 // reusable per-shard tally buffer (harvestRegions)
}

// NewRandomChunk creates the AutoTiering-style profiler.
func NewRandomChunk() *RandomChunk { return &RandomChunk{Alpha: 0.5} }

func (p *RandomChunk) Name() string { return "autotiering-sampling" }

// Set exposes the region set.
func (p *RandomChunk) Set() *region.Set { return p.set }

func (p *RandomChunk) Attach(e *sim.Engine) {
	p.set = region.NewSet(region.DefaultNumScans)
	initRegions(e, p.set, DefaultRegionBytes)
	p.pm = newProfMetrics(e, p.Name())
}

func (p *RandomChunk) IntervalStart(*sim.Engine) {}

func (p *RandomChunk) Regions() []*region.Region {
	if p.set == nil {
		return nil
	}
	return p.set.Regions()
}

// chunkShardRegions is how many consecutive selected regions one
// access-bit-harvest shard walks. Fixed so the shard layout (and each
// shard's RNG stream) is independent of the Parallelism setting.
const chunkShardRegions = 8

// harvestRegions walks the selected regions' pages, sharded on the
// engine's pool: each shard owns a fixed run of the selection, draws from
// its own per-shard stream, writes only its own regions' hotness fields,
// and tallies scans into a private slot of buf (grown as needed and
// returned for reuse). The merged scan count is returned for the
// (serialised) profiling charge, alongside the per-shard tallies so
// callers can emit per-shard scan spans in shard order. Every region must
// appear at most once in sel — two shards writing one region would race.
//
// The page walk is a word-wide sweep over the present∧touched planes:
// only pages that can observe anything draw from the RNG — identical
// draws to the old per-page loop, since untouched pages short-circuited
// before drawing there too — while the scan *cost* still covers every
// page of the region, because the modelled PTE walk reads them all.
func harvestRegions(e *sim.Engine, sel []*region.Region, buf []int64, round, scansPerPage int, windowFrac, alpha float64, numScans int) (int64, []int64) {
	nShards := sim.NumShards(len(sel), chunkShardRegions)
	if cap(buf) < nShards {
		buf = make([]int64, nShards)
	}
	shardScans := buf[:nShards]
	logw := math.Log1p(-windowFrac)
	e.Parallel(nShards, func(s int) {
		// Later selection rounds within one interval re-walk the same
		// regions; giving each round a disjoint block of shard indices
		// keeps their observation draws on distinct streams.
		sc := e.ShardScratch(s)
		rng := sc.Rand(e, sim.SaltChunkScan, round<<20|s)
		lo, hi := sim.ShardSpan(len(sel), chunkShardRegions, s)
		var scans int64
		for _, r := range sel[lo:hi] {
			v := r.V
			sum := 0
			for w := r.Start / vm.WordPages; w*vm.WordPages < r.End; w++ {
				word := v.ActiveRangeWord(w, r.Start, r.End)
				for word != 0 {
					pg := w*vm.WordPages + bits.TrailingZeros64(word)
					word &= word - 1
					sum += vm.ObserveScansL(v, pg, scansPerPage, windowFrac, logw, rng)
				}
			}
			ns := r.Pages()
			scans += int64(ns)
			r.PrevHI = r.HI
			if ns > 0 {
				// Scale into scan units so thresholds and histograms are
				// comparable across profilers.
				r.HI = float64(sum) / float64(ns) * float64(numScans) / float64(scansPerPage)
			}
			r.Sampled = true
			r.UpdateEMA(alpha)
		}
		shardScans[s] = scans
	})
	var total int64
	for _, s := range shardScans {
		total += s
	}
	return total, shardScans
}

func (p *RandomChunk) Profile(e *sim.Engine) {
	p.set.BeginInterval()
	regions := p.set.Regions()
	if len(regions) == 0 {
		return
	}
	spanning := e.SpansEnabled()
	// Pick a random contiguous run of regions covering ~ChunkBytes; the
	// selection (the only draw from the engine's own stream) is cheap and
	// stays sequential, the page walk is sharded.
	start := e.Rng.Intn(len(regions))
	var covered int64
	end := start
	for end < len(regions) && covered < ChunkBytes {
		covered += regions[end].Bytes()
		end++
	}
	if spanning {
		e.SpanBegin("profiling", "chunk-profile",
			span.I("regions", int64(len(regions))),
			span.I("chunk_regions", int64(end-start)))
	}
	scans, shardScans := harvestRegions(e, regions[start:end], p.shardBuf, 0, 1, 1.0, p.Alpha, p.set.NumScans)
	p.shardBuf = shardScans
	if spanning {
		cur := e.SpanClockNs()
		for s, sc := range shardScans {
			d := int64(time.Duration(sc) * (OneScanOverhead + ProtFaultCost/2))
			e.SpanEmit("profiling", "chunk-scan", cur, d,
				span.I("shard", int64(s)), span.I("pages", sc))
			cur += d
		}
	}
	p.scans += scans
	// Present-bit profiling takes a fault per observed page on top of
	// the PTE write; charge scan + fault cost per page.
	cost := time.Duration(scans) * (OneScanOverhead + ProtFaultCost/2)
	e.ChargeProfiling(cost)
	p.pm.scanNs.AddDuration(cost)
	p.pm.pages.Add(scans)
	if spanning {
		e.SpanEnd(span.I("pages", scans))
	}
}

// SequentialScan is the tiered-AutoNUMA profiling baseline: a scan pointer
// walks the address space 256 MB per interval, unmapping PTEs so the next
// access takes a NUMA hint fault that reveals the accessing CPU and, with
// the hot-page-selection patch, the access latency used for hotness
// classification. Patched mode keeps an EMA so repeatedly-hot pages
// accumulate score; vanilla mode uses only the latest interval.
type SequentialScan struct {
	// Patched selects the two upstream patches of §9 (hot-page selection
	// + auto threshold); vanilla tiered-AutoNUMA sets it false.
	Patched bool
	Alpha   float64

	set      *region.Set
	cursor   int
	faults   int64
	pm       profMetrics
	shardBuf []int64 // reusable per-shard tally buffer (harvestRegions)
}

// NewSequentialScan creates the tiered-AutoNUMA-style profiler.
func NewSequentialScan(patched bool) *SequentialScan {
	a := 1.0
	if patched {
		a = 0.5
	}
	return &SequentialScan{Patched: patched, Alpha: a}
}

func (p *SequentialScan) Name() string {
	if p.Patched {
		return "tiered-autonuma-scan"
	}
	return "vanilla-autonuma-scan"
}

// Set exposes the region set.
func (p *SequentialScan) Set() *region.Set { return p.set }

func (p *SequentialScan) Attach(e *sim.Engine) {
	p.set = region.NewSet(region.DefaultNumScans)
	initRegions(e, p.set, DefaultRegionBytes)
	p.pm = newProfMetrics(e, p.Name())
}

func (p *SequentialScan) IntervalStart(*sim.Engine) {}

func (p *SequentialScan) Regions() []*region.Region {
	if p.set == nil {
		return nil
	}
	return p.set.Regions()
}

func (p *SequentialScan) Profile(e *sim.Engine) {
	p.set.BeginInterval()
	regions := p.set.Regions()
	if len(regions) == 0 {
		return
	}
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("profiling", "seq-scan-profile",
			span.I("regions", int64(len(regions))),
			span.I("cursor", int64(p.cursor)))
	}
	var cur int64
	if spanning {
		cur = e.SpanClockNs()
	}
	var covered int64
	var faults int64
	scansPerPage := 1
	if p.Patched {
		// The hot-page-selection patch uses hint-fault latency over
		// repeated touches, distinguishing "accessed once" from
		// "accessed often" better than a single present-bit check.
		scansPerPage = 2
	}
	// Advance the cursor in rounds: each round is a run of regions that
	// cannot repeat (it stops at the address-space wrap), so every round
	// is a duplicate-free selection safe to hand to the sharded harvest.
	// A small space scanned with a large budget simply takes more rounds,
	// re-walking regions exactly as the sequential cursor loop did.
	for round := 0; covered < ChunkBytes; round++ {
		pos := p.cursor % len(regions)
		sel := regions[pos:]
		var take int
		for take < len(sel) && covered < ChunkBytes {
			covered += sel[take].Bytes()
			take++
		}
		sel = sel[:take]
		p.cursor += take
		f, shardFaults := harvestRegions(e, sel, p.shardBuf, round, scansPerPage, scanWindow, p.Alpha, p.set.NumScans)
		p.shardBuf = shardFaults
		faults += f
		if spanning {
			for s, sc := range shardFaults {
				d := int64(time.Duration(sc) * HintFaultCost / 4)
				e.SpanEmit("profiling", "hint-fault-scan", cur, d,
					span.I("round", int64(round)),
					span.I("shard", int64(s)),
					span.I("pages", sc))
				cur += d
			}
		}
		if p.cursor >= 1<<30 {
			p.cursor = p.cursor % len(regions)
		}
	}
	p.faults += faults
	// Hint faults are 12x a PTE scan (§6.2); AutoNUMA's profiling cost
	// is dominated by them.
	cost := time.Duration(faults) * HintFaultCost / 4
	e.ChargeProfiling(cost)
	p.pm.scanNs.AddDuration(cost)
	p.pm.pages.Add(faults)
	if spanning {
		e.SpanEnd(span.I("pages", faults))
	}
}
