package tier

import (
	"fmt"
	"time"
)

// System is the runtime state layered over a Topology: how much of each
// component is in use, and how many bytes have moved through each component
// during the current accounting window (used for bandwidth-contention
// modelling).
//
// System is not safe for concurrent use; the simulation engine serialises
// access to it.
type System struct {
	Topo *Topology

	used        []int64 // bytes allocated per node
	quarantined []int64 // bytes lost to poisoned (dead) frames per node
	shadow      []int64 // bytes held as retained shadow copies per node
	offline     []bool  // true when the node accepts no new allocations
	demand      []int64 // bytes transferred per node in the current window
	window      time.Duration
	resLog      []Reservation
	logging     bool
}

// Reservation records one allocate/release event, for tests and debugging.
type Reservation struct {
	Node    NodeID
	Bytes   int64
	Release bool
}

// NewSystem creates a System over topo. It panics if topo is invalid, since
// a bad topology is a programming error, not a runtime condition.
func NewSystem(topo *Topology) *System {
	if err := topo.Validate(); err != nil {
		panic(err)
	}
	return &System{
		Topo:        topo,
		used:        make([]int64, len(topo.Nodes)),
		quarantined: make([]int64, len(topo.Nodes)),
		shadow:      make([]int64, len(topo.Nodes)),
		offline:     make([]bool, len(topo.Nodes)),
		demand:      make([]int64, len(topo.Nodes)),
	}
}

// EnableLog turns on reservation logging (tests only; unbounded growth).
func (s *System) EnableLog() { s.logging = true }

// Log returns the reservation log.
func (s *System) Log() []Reservation { return s.resLog }

// Capacity returns the capacity of a node in bytes.
func (s *System) Capacity(n NodeID) int64 { return s.Topo.Nodes[n].Capacity }

// Used returns the bytes currently allocated on a node.
func (s *System) Used(n NodeID) int64 { return s.used[n] }

// Free returns the bytes still allocatable on a node: capacity minus live
// allocations minus quarantined (poisoned) frames minus retained shadow
// copies, or zero when the node has been taken offline for new
// allocations. Shadow frames count against capacity but are soft: the
// holder (the shadow table) can drop them under pressure to make room.
func (s *System) Free(n NodeID) int64 {
	if s.offline[n] {
		return 0
	}
	return s.Topo.Nodes[n].Capacity - s.used[n] - s.quarantined[n] - s.shadow[n]
}

// Quarantine retires b bytes of node n's live allocation: the frames are
// dead (uncorrectable memory error) and never return to the free pool, so
// the bytes move from the used ledger to the quarantined one and total
// capacity shrinks by that much. Quarantining more than is allocated
// panics, like Release.
func (s *System) Quarantine(n NodeID, b int64) {
	if b < 0 || s.used[n]-b < 0 {
		panic(fmt.Sprintf("tier: Quarantine(%d, %d) with used=%d", n, b, s.used[n]))
	}
	s.used[n] -= b
	s.quarantined[n] += b
	if s.logging {
		s.resLog = append(s.resLog, Reservation{Node: n, Bytes: b, Release: true})
	}
}

// Quarantined returns the bytes lost to poisoned frames on node n.
func (s *System) Quarantined(n NodeID) int64 { return s.quarantined[n] }

// SetAllocatable marks node n as accepting (true) or rejecting (false)
// new allocations. A draining or offline tier rejects allocations while
// existing pages are still being evacuated; Free reports 0 and Reserve
// fails for such a node, so allocators route around it without a special
// case.
func (s *System) SetAllocatable(n NodeID, ok bool) { s.offline[n] = !ok }

// Allocatable reports whether node n accepts new allocations.
func (s *System) Allocatable(n NodeID) bool { return !s.offline[n] }

// Reserve allocates b bytes on node n. It reports whether the allocation
// fit; on false the system is unchanged.
func (s *System) Reserve(n NodeID, b int64) bool {
	if b < 0 {
		panic(fmt.Sprintf("tier: Reserve(%d, %d): negative size", n, b))
	}
	if s.offline[n] || s.used[n]+s.quarantined[n]+s.shadow[n]+b > s.Topo.Nodes[n].Capacity {
		return false
	}
	s.used[n] += b
	if s.logging {
		s.resLog = append(s.resLog, Reservation{Node: n, Bytes: b})
	}
	return true
}

// ReserveShadow holds b bytes on node n as a retained shadow copy. Shadow
// bytes occupy real frames — they count against capacity exactly like
// used bytes — but live on a separate ledger so the auditor can reconcile
// them and pressure-reclaim can sacrifice them first. It reports whether
// the bytes fit; on false the system is unchanged.
func (s *System) ReserveShadow(n NodeID, b int64) bool {
	if b < 0 {
		panic(fmt.Sprintf("tier: ReserveShadow(%d, %d): negative size", n, b))
	}
	if s.offline[n] || s.used[n]+s.quarantined[n]+s.shadow[n]+b > s.Topo.Nodes[n].Capacity {
		return false
	}
	s.shadow[n] += b
	return true
}

// ReleaseShadow returns b shadow bytes on node n to the free pool.
// Releasing more than is held panics, like Release.
func (s *System) ReleaseShadow(n NodeID, b int64) {
	if b < 0 || s.shadow[n]-b < 0 {
		panic(fmt.Sprintf("tier: ReleaseShadow(%d, %d) with shadow=%d", n, b, s.shadow[n]))
	}
	s.shadow[n] -= b
}

// ShadowBytes returns the bytes held as shadow copies on node n.
func (s *System) ShadowBytes(n NodeID) int64 { return s.shadow[n] }

// Release frees b bytes on node n. Releasing more than is allocated panics:
// it means the caller's page accounting has desynchronised.
func (s *System) Release(n NodeID, b int64) {
	if b < 0 || s.used[n]-b < 0 {
		panic(fmt.Sprintf("tier: Release(%d, %d) with used=%d", n, b, s.used[n]))
	}
	s.used[n] -= b
	if s.logging {
		s.resLog = append(s.resLog, Reservation{Node: n, Bytes: b, Release: true})
	}
}

// FirstFit returns the first node in the given view order with at least b
// free bytes, or Invalid.
func (s *System) FirstFit(view []NodeID, b int64) NodeID {
	for _, n := range view {
		if s.Free(n) >= b {
			return n
		}
	}
	return Invalid
}

// ResetWindow begins a new bandwidth-accounting window of the given length.
func (s *System) ResetWindow(d time.Duration) {
	s.window = d
	for i := range s.demand {
		s.demand[i] = 0
	}
}

// RecordTransfer notes that b bytes moved through node n during the window.
func (s *System) RecordTransfer(n NodeID, b int64) {
	s.demand[n] += b
}

// Demand returns the bytes recorded against node n this window.
func (s *System) Demand(n NodeID) int64 { return s.demand[n] }

// ContentionFactor estimates how much accesses to node n are slowed by
// bandwidth saturation in the current window: 1.0 when demand is within the
// node's bandwidth, rising linearly with oversubscription. The node's
// bandwidth is taken as the best link to it (local access); remote links
// are narrower and their extra cost is already in their latency/bandwidth.
func (s *System) ContentionFactor(n NodeID) float64 {
	if s.window <= 0 {
		return 1
	}
	var best int64
	for sck := 0; sck < s.Topo.Sockets; sck++ {
		if bw := s.Topo.Links[sck][n].Bandwidth; bw > best {
			best = bw
		}
	}
	sustainable := float64(best) * s.window.Seconds()
	if sustainable <= 0 {
		return 1
	}
	f := float64(s.demand[n]) / sustainable
	if f < 1 {
		return 1
	}
	return f
}

// CopyTime returns the virtual time to move b bytes from node src to node
// dst, issued from the given socket: the transfer is limited by the
// narrower of the two links.
func (s *System) CopyTime(socket int, src, dst NodeID, b int64) time.Duration {
	ls, ld := s.Topo.Links[socket][src], s.Topo.Links[socket][dst]
	bw := ls.Bandwidth
	if ld.Bandwidth < bw {
		bw = ld.Bandwidth
	}
	sec := float64(b) / float64(bw)
	return time.Duration(sec * float64(time.Second))
}
