package tier

import (
	"testing"
	"testing/quick"
	"time"
)

func TestOptaneTopologyShape(t *testing.T) {
	topo := OptaneTopology(1)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(topo.Nodes); got != 4 {
		t.Fatalf("nodes = %d, want 4", got)
	}
	if topo.Sockets != 2 {
		t.Fatalf("sockets = %d, want 2", topo.Sockets)
	}
	var dram, pm int
	for _, n := range topo.Nodes {
		switch n.Kind {
		case DRAM:
			dram++
			if n.Capacity != 96*GB {
				t.Errorf("%s capacity = %d, want 96GB", n.Name, n.Capacity)
			}
		case PM:
			pm++
			if n.Capacity != 756*GB {
				t.Errorf("%s capacity = %d, want 756GB", n.Name, n.Capacity)
			}
		}
	}
	if dram != 2 || pm != 2 {
		t.Fatalf("dram=%d pm=%d, want 2/2", dram, pm)
	}
}

func TestOptaneTable1Latencies(t *testing.T) {
	topo := OptaneTopology(1)
	// From socket 0 the four tiers must expose Table 1's numbers.
	view := topo.View(0)
	want := []struct {
		lat time.Duration
		bw  int64
	}{
		{90 * time.Nanosecond, 95 * GB},
		{145 * time.Nanosecond, 35 * GB},
		{275 * time.Nanosecond, 35 * GB},
		{340 * time.Nanosecond, 1 * GB},
	}
	for i, n := range view {
		l := topo.Links[0][n]
		if l.Latency != want[i].lat || l.Bandwidth != want[i].bw {
			t.Errorf("tier %d: latency=%v bw=%d, want %v/%d", i+1, l.Latency, l.Bandwidth, want[i].lat, want[i].bw)
		}
	}
}

func TestMultiViewSymmetry(t *testing.T) {
	topo := OptaneTopology(1)
	v0 := topo.View(0)
	v1 := topo.View(1)
	// The multi-view of §6.2: socket 1's fastest node is socket 0's
	// second tier and vice versa.
	if topo.Nodes[v0[0]].Socket != 0 || topo.Nodes[v1[0]].Socket != 1 {
		t.Fatalf("fastest node not local: v0=%v v1=%v", v0, v1)
	}
	if v0[0] == v1[0] {
		t.Fatal("both sockets claim the same fastest node")
	}
	for s := 0; s < 2; s++ {
		view := topo.View(s)
		for i := 1; i < len(view); i++ {
			a := topo.Links[s][view[i-1]]
			b := topo.Links[s][view[i]]
			if a.Latency > b.Latency {
				t.Errorf("view(%d) not latency-ordered at %d", s, i)
			}
		}
	}
}

func TestRank(t *testing.T) {
	topo := OptaneTopology(1)
	for s := 0; s < topo.Sockets; s++ {
		for r, n := range topo.View(s) {
			if got := topo.Rank(s, n); got != r {
				t.Errorf("Rank(%d, %d) = %d, want %d", s, n, got, r)
			}
		}
	}
}

func TestScaledCapacityRatios(t *testing.T) {
	base := OptaneTopology(1)
	scaled := OptaneTopology(64)
	for i := range base.Nodes {
		if want := base.Nodes[i].Capacity / 64; scaled.Nodes[i].Capacity != want {
			t.Errorf("node %d scaled capacity = %d, want %d", i, scaled.Nodes[i].Capacity, want)
		}
	}
}

func TestTwoTierTopology(t *testing.T) {
	topo := TwoTierTopology(GB, 8*GB)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	view := topo.View(0)
	if len(view) != 2 || topo.Nodes[view[0]].Kind != DRAM || topo.Nodes[view[1]].Kind != PM {
		t.Fatalf("unexpected view %v", view)
	}
}

func TestValidateRejectsBadTopologies(t *testing.T) {
	cases := map[string]*Topology{
		"no sockets": {Sockets: 0, Nodes: []NodeSpec{{Capacity: 1}}},
		"no nodes":   {Sockets: 1},
		"bad links": {
			Sockets: 1,
			Nodes:   []NodeSpec{{Name: "a", Capacity: 1}},
			Links:   [][]Link{},
		},
		"zero capacity": {
			Sockets: 1,
			Nodes:   []NodeSpec{{Name: "a", Capacity: 0}},
			Links:   [][]Link{{{Latency: 1, Bandwidth: 1}}},
		},
		"bad socket": {
			Sockets: 1,
			Nodes:   []NodeSpec{{Name: "a", Capacity: 1, Socket: 3}},
			Links:   [][]Link{{{Latency: 1, Bandwidth: 1}}},
		},
	}
	for name, topo := range cases {
		if err := topo.Validate(); err == nil {
			t.Errorf("%s: Validate() = nil, want error", name)
		}
	}
}

func TestReserveRelease(t *testing.T) {
	s := NewSystem(TwoTierTopology(GB, 2*GB))
	if !s.Reserve(0, GB) {
		t.Fatal("Reserve(1GB) on empty 1GB node failed")
	}
	if s.Reserve(0, 1) {
		t.Fatal("Reserve on full node succeeded")
	}
	if s.Free(0) != 0 || s.Used(0) != GB {
		t.Fatalf("free=%d used=%d", s.Free(0), s.Used(0))
	}
	s.Release(0, GB/2)
	if s.Free(0) != GB/2 {
		t.Fatalf("free after partial release = %d", s.Free(0))
	}
}

func TestReleasePanicsOnUnderflow(t *testing.T) {
	s := NewSystem(TwoTierTopology(GB, GB))
	defer func() {
		if recover() == nil {
			t.Fatal("Release underflow did not panic")
		}
	}()
	s.Release(0, 1)
}

func TestFirstFit(t *testing.T) {
	s := NewSystem(TwoTierTopology(GB, 2*GB))
	view := s.Topo.View(0)
	if got := s.FirstFit(view, GB/2); got != view[0] {
		t.Fatalf("FirstFit = %d, want fastest %d", got, view[0])
	}
	s.Reserve(view[0], GB)
	if got := s.FirstFit(view, GB/2); got != view[1] {
		t.Fatalf("FirstFit after fill = %d, want %d", got, view[1])
	}
	s.Reserve(view[1], 2*GB)
	if got := s.FirstFit(view, GB/2); got != Invalid {
		t.Fatalf("FirstFit on full system = %d, want Invalid", got)
	}
}

func TestContentionFactor(t *testing.T) {
	s := NewSystem(TwoTierTopology(GB, 2*GB))
	s.ResetWindow(time.Second)
	if f := s.ContentionFactor(0); f != 1 {
		t.Fatalf("idle contention = %v, want 1", f)
	}
	// DRAM sustains 95 GB/s; demand 190 GB in a 1s window = 2x factor.
	s.RecordTransfer(0, 190*GB)
	if f := s.ContentionFactor(0); f < 1.99 || f > 2.01 {
		t.Fatalf("oversubscribed contention = %v, want ~2", f)
	}
}

func TestCopyTime(t *testing.T) {
	s := NewSystem(OptaneTopology(1))
	view := s.Topo.View(0)
	// Copy limited by the narrower link: fastest (95 GB/s) to slowest
	// (1 GB/s) moves at 1 GB/s.
	d := s.CopyTime(0, view[0], view[3], GB)
	if d < 990*time.Millisecond || d > 1010*time.Millisecond {
		t.Fatalf("CopyTime = %v, want ~1s", d)
	}
}

func TestReserveNeverExceedsCapacity(t *testing.T) {
	s := NewSystem(TwoTierTopology(GB, GB))
	f := func(amounts []int64) bool {
		for _, a := range amounts {
			if a < 0 {
				a = -a
			}
			a %= GB / 2
			s.Reserve(0, a)
			if s.Used(0) > s.Capacity(0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCXLTopology(t *testing.T) {
	topo := CXLTopology(64)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	view := topo.View(0)
	if len(view) != 3 {
		t.Fatalf("tiers = %d, want 3", len(view))
	}
	if topo.Nodes[view[0]].Kind != DRAM || topo.Nodes[view[1]].Kind != CXL || topo.Nodes[view[2]].Kind != CXL {
		t.Fatalf("view kinds wrong: %v", view)
	}
	// Latency must be strictly increasing down the tiers.
	for i := 1; i < len(view); i++ {
		if topo.Links[0][view[i]].Latency <= topo.Links[0][view[i-1]].Latency {
			t.Fatal("CXL tiers not latency-ordered")
		}
	}
}
