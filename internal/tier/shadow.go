package tier

// ShadowTable tracks retained slow-tier shadow frames for non-exclusive
// tiering (Nomad, ASPLOS '23): when a page is promoted its old frame is
// kept as a shadow instead of released, so a later demotion of the still-
// clean page is a metadata flip with zero copy bytes.
//
// The table owns the shadow ledger of its System: every live entry holds
// a ReserveShadow reservation, dropped entries release it. Entries are
// keyed by an opaque page key chosen by the caller (the simulator uses
// the page's virtual address). Per-node FIFO order is maintained so that
// pressure reclaim evicts the oldest shadow first, deterministically.
//
// ShadowTable is not safe for concurrent use; like System, the engine
// serialises access to it.
type ShadowTable struct {
	sys     *System
	entries map[uint64]shadowEntry
	// fifo[n] queues (key, seq) records in insertion order per node.
	// Records are lazily invalidated: a record is live only while the
	// entry's seq still matches (Drop/Put of the same key stales it).
	fifo  [][]fifoEntry
	heads []int
	seq   uint64
}

type shadowEntry struct {
	node  NodeID
	bytes int64
	seq   uint64
}

type fifoEntry struct {
	key uint64
	seq uint64
}

// NewShadowTable creates an empty shadow table over sys.
func NewShadowTable(sys *System) *ShadowTable {
	return &ShadowTable{
		sys:     sys,
		entries: make(map[uint64]shadowEntry),
		fifo:    make([][]fifoEntry, len(sys.Topo.Nodes)),
		heads:   make([]int, len(sys.Topo.Nodes)),
	}
}

// Put retains b bytes on node n as the shadow of key. An existing shadow
// for the key (on any node) is dropped first. It reports whether the
// reservation fit; on false the table is unchanged except for the drop.
func (t *ShadowTable) Put(key uint64, n NodeID, b int64) bool {
	if _, ok := t.entries[key]; ok {
		t.Drop(key)
	}
	if !t.sys.ReserveShadow(n, b) {
		return false
	}
	t.seq++
	t.entries[key] = shadowEntry{node: n, bytes: b, seq: t.seq}
	t.fifo[n] = append(t.fifo[n], fifoEntry{key: key, seq: t.seq})
	return true
}

// Get returns the node and size of the live shadow for key, if any.
func (t *ShadowTable) Get(key uint64) (NodeID, int64, bool) {
	e, ok := t.entries[key]
	if !ok {
		return Invalid, 0, false
	}
	return e.node, e.bytes, true
}

// Drop releases the shadow for key, returning what it held. The FIFO
// record goes stale and is skipped lazily by OldestOn.
func (t *ShadowTable) Drop(key uint64) (NodeID, int64, bool) {
	e, ok := t.entries[key]
	if !ok {
		return Invalid, 0, false
	}
	delete(t.entries, key)
	t.sys.ReleaseShadow(e.node, e.bytes)
	return e.node, e.bytes, true
}

// OldestOn returns the key of the oldest live shadow on node n, if any.
// The head is left pointing at that entry: the caller is expected to Drop
// it (or act on it) before the next call, which then advances past it.
func (t *ShadowTable) OldestOn(n NodeID) (uint64, bool) {
	q := t.fifo[n]
	h := t.heads[n]
	for h < len(q) {
		if e, ok := t.entries[q[h].key]; ok && e.seq == q[h].seq {
			t.heads[n] = h
			t.compact(n)
			return q[h].key, true
		}
		h++
	}
	t.fifo[n] = q[:0]
	t.heads[n] = 0
	return 0, false
}

// compact copies the live tail down when the consumed prefix dominates,
// bounding queue growth over long runs.
func (t *ShadowTable) compact(n NodeID) {
	if h := t.heads[n]; h >= 1024 && h*2 >= len(t.fifo[n]) {
		t.fifo[n] = append(t.fifo[n][:0], t.fifo[n][h:]...)
		t.heads[n] = 0
	}
}

// KeysOn returns the live shadow keys on node n in FIFO order — the
// deterministic iteration order for drop-all paths (drain, offline,
// device-wide poison).
func (t *ShadowTable) KeysOn(n NodeID) []uint64 {
	var keys []uint64
	for _, r := range t.fifo[n][t.heads[n]:] {
		if e, ok := t.entries[r.key]; ok && e.seq == r.seq {
			keys = append(keys, r.key)
		}
	}
	return keys
}

// Count returns the number of live shadow entries.
func (t *ShadowTable) Count() int { return len(t.entries) }

// PerNodeBytes recomputes the shadow bytes per node from the entries map
// (order-free sum; audit use).
func (t *ShadowTable) PerNodeBytes() []int64 {
	per := make([]int64, len(t.sys.Topo.Nodes))
	for _, e := range t.entries {
		per[e.node] += e.bytes
	}
	return per
}
