package tier

import "testing"

func TestShadowLedgerCapacity(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	if !s.ReserveShadow(1, 2*MB) {
		t.Fatal("shadow reserve failed")
	}
	if s.ShadowBytes(1) != 2*MB {
		t.Fatalf("shadow bytes = %d, want 2MB", s.ShadowBytes(1))
	}
	// Shadow frames consume capacity: free shrinks and a reservation that
	// would overlap them must fail.
	if s.Free(1) != 6*MB {
		t.Fatalf("free = %d, want 6MB", s.Free(1))
	}
	if s.Reserve(1, 7*MB) {
		t.Fatal("reserve overlapping shadow frames succeeded")
	}
	if !s.Reserve(1, 6*MB) {
		t.Fatal("reserve within remaining capacity failed")
	}
	// And vice versa: a shadow reservation over capacity must fail.
	if s.ReserveShadow(1, MB) {
		t.Fatal("shadow reserve over capacity succeeded")
	}
	s.ReleaseShadow(1, 2*MB)
	if s.ShadowBytes(1) != 0 || s.Free(1) != 2*MB {
		t.Fatalf("after release: shadow=%d free=%d", s.ShadowBytes(1), s.Free(1))
	}
}

func TestShadowReserveOffline(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	s.SetAllocatable(1, false)
	if s.ReserveShadow(1, MB) {
		t.Fatal("shadow reserve on an offline node succeeded")
	}
}

func TestShadowReleasePanics(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	for _, b := range []int64{-1, MB} {
		b := b
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ReleaseShadow(%d) with shadow=0 did not panic", b)
				}
			}()
			s.ReleaseShadow(1, b)
		}()
	}
}

func TestShadowTablePutGetDrop(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	st := NewShadowTable(s)
	if !st.Put(0x1000, 1, MB) {
		t.Fatal("put failed")
	}
	n, b, ok := st.Get(0x1000)
	if !ok || n != 1 || b != MB {
		t.Fatalf("get = (%d,%d,%v)", n, b, ok)
	}
	if s.ShadowBytes(1) != MB {
		t.Fatalf("ledger = %d after put", s.ShadowBytes(1))
	}
	// Re-adding a key replaces the entry (the old frame is released).
	if !st.Put(0x1000, 0, 2*MB) {
		t.Fatal("re-put failed")
	}
	if s.ShadowBytes(1) != 0 || s.ShadowBytes(0) != 2*MB {
		t.Fatalf("ledger after re-put: n0=%d n1=%d", s.ShadowBytes(0), s.ShadowBytes(1))
	}
	if st.Count() != 1 {
		t.Fatalf("count = %d, want 1", st.Count())
	}
	n, b, ok = st.Drop(0x1000)
	if !ok || n != 0 || b != 2*MB {
		t.Fatalf("drop = (%d,%d,%v)", n, b, ok)
	}
	if s.ShadowBytes(0) != 0 || st.Count() != 0 {
		t.Fatal("drop did not release the ledger/entry")
	}
	if _, _, ok := st.Drop(0x1000); ok {
		t.Fatal("double drop succeeded")
	}
}

func TestShadowTablePutOverCapacity(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	st := NewShadowTable(s)
	if st.Put(0x1000, 1, 9*MB) {
		t.Fatal("put over capacity succeeded")
	}
	if st.Count() != 0 || s.ShadowBytes(1) != 0 {
		t.Fatal("failed put left residue")
	}
}

// TestShadowTableFIFO exercises OldestOn's lazy stale-skip: dropped and
// re-added keys must not resurface out of order or twice.
func TestShadowTableFIFO(t *testing.T) {
	s := NewSystem(TwoTierTopology(64*MB, 64*MB))
	st := NewShadowTable(s)
	for i := uint64(0); i < 4; i++ {
		if !st.Put(i, 1, MB) {
			t.Fatalf("put %d failed", i)
		}
	}
	if k, ok := st.OldestOn(1); !ok || k != 0 {
		t.Fatalf("oldest = (%d,%v), want 0", k, ok)
	}
	st.Drop(0)
	st.Drop(2)
	if k, ok := st.OldestOn(1); !ok || k != 1 {
		t.Fatalf("oldest after drops = (%d,%v), want 1", k, ok)
	}
	// Re-adding key 1 re-stamps it: the queue's old record is stale and
	// the key now ranks youngest.
	st.Put(1, 1, MB)
	if k, ok := st.OldestOn(1); !ok || k != 3 {
		t.Fatalf("oldest after re-put = (%d,%v), want 3", k, ok)
	}
	st.Drop(3)
	if k, ok := st.OldestOn(1); !ok || k != 1 {
		t.Fatalf("oldest after dropping 3 = (%d,%v), want 1", k, ok)
	}
	st.Drop(1)
	if _, ok := st.OldestOn(1); ok {
		t.Fatal("oldest on an empty node reported an entry")
	}
	if got := st.KeysOn(1); len(got) != 0 {
		t.Fatalf("keys on drained node = %v", got)
	}
}

func TestShadowTablePerNodeBytes(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	st := NewShadowTable(s)
	st.Put(1, 0, MB)
	st.Put(2, 1, 2*MB)
	st.Put(3, 1, MB)
	per := st.PerNodeBytes()
	if per[0] != MB || per[1] != 3*MB {
		t.Fatalf("per-node = %v", per)
	}
	keys := st.KeysOn(1)
	if len(keys) != 2 || keys[0] != 2 || keys[1] != 3 {
		t.Fatalf("keys on 1 = %v", keys)
	}
}
