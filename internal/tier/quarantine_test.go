package tier

import "testing"

func TestQuarantineMovesUsedBytes(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	if !s.Reserve(0, 4*MB) {
		t.Fatal("setup reserve failed")
	}
	s.Quarantine(0, 1*MB)
	if s.Used(0) != 3*MB {
		t.Fatalf("used = %d, want 3MB", s.Used(0))
	}
	if s.Quarantined(0) != 1*MB {
		t.Fatalf("quarantined = %d, want 1MB", s.Quarantined(0))
	}
	// Quarantined bytes are capacity lost, not freed: free shrinks by the
	// quarantined amount relative to a plain release.
	if s.Free(0) != 8*MB-3*MB-1*MB {
		t.Fatalf("free = %d, want 4MB", s.Free(0))
	}
	// A reservation that would overlap the dead frames must fail.
	if s.Reserve(0, 5*MB) {
		t.Fatal("reserve into quarantined capacity succeeded")
	}
	if !s.Reserve(0, 4*MB) {
		t.Fatal("reserve within remaining capacity failed")
	}
}

func TestQuarantinePanics(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	for _, b := range []int64{-1, 1 * MB} {
		b := b
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Quarantine(%d) with used=0 did not panic", b)
				}
			}()
			s.Quarantine(0, b)
		}()
	}
}

func TestSetAllocatableGatesReserveAndFirstFit(t *testing.T) {
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	s.SetAllocatable(0, false)
	if s.Allocatable(0) {
		t.Fatal("node 0 still allocatable")
	}
	if s.Free(0) != 0 {
		t.Fatalf("offline free = %d, want 0", s.Free(0))
	}
	if s.Reserve(0, MB) {
		t.Fatal("reserve on an offline node succeeded")
	}
	// FirstFit must route around the sick tier.
	if n := s.FirstFit([]NodeID{0, 1}, MB); n != 1 {
		t.Fatalf("FirstFit = %d, want 1", n)
	}
	s.SetAllocatable(0, true)
	if n := s.FirstFit([]NodeID{0, 1}, MB); n != 0 {
		t.Fatalf("FirstFit after recovery = %d, want 0", n)
	}
}

func TestOfflineNodeStillReleases(t *testing.T) {
	// Draining evacuates pages off a non-allocatable node: releases must
	// keep working while reservations are refused.
	s := NewSystem(TwoTierTopology(8*MB, 8*MB))
	if !s.Reserve(0, 2*MB) {
		t.Fatal("setup reserve failed")
	}
	s.SetAllocatable(0, false)
	s.Release(0, 2*MB)
	if s.Used(0) != 0 {
		t.Fatalf("used = %d after release, want 0", s.Used(0))
	}
}
