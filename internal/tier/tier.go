// Package tier models the physical memory components of a multi-tiered
// large-memory machine: their latencies, bandwidths, and capacities, and the
// per-socket "view" that orders components from fastest to slowest.
//
// The default topology reproduces Table 1 of the MTM paper (EuroSys '24): a
// two-socket Intel Optane system with one DRAM and one PM component per
// socket, yielding four tiers from the point of view of either socket:
//
//	tier 1: local DRAM   90 ns / 95 GB/s
//	tier 2: remote DRAM 145 ns / 35 GB/s
//	tier 3: local PM    275 ns / 35 GB/s
//	tier 4: remote PM   340 ns /  1 GB/s
//
// Because the same physical component is "fast" for one socket and "slow"
// for another, code that needs a tier ordering must go through a View; this
// is the multi-view of tiered memory described in §6.2 of the paper.
package tier

import (
	"fmt"
	"sync"
	"time"
)

// NodeID identifies a physical memory component (a NUMA node in Linux
// terms). Node numbering is topology-specific; use Topology helpers rather
// than assuming a layout.
type NodeID int

// Invalid is returned by lookups that find no suitable node.
const Invalid NodeID = -1

// Kind distinguishes the broad class of a memory component.
type Kind uint8

const (
	// DRAM is CPU-attached fast memory.
	DRAM Kind = iota
	// PM is high-density persistent memory (e.g. Intel Optane DC PM),
	// appearing as a CPU-less memory node.
	PM
	// CXL is memory attached behind a CXL link. It behaves like PM for
	// placement purposes but typically with different latency.
	CXL
)

func (k Kind) String() string {
	switch k {
	case DRAM:
		return "DRAM"
	case PM:
		return "PM"
	case CXL:
		return "CXL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// NodeSpec describes one physical memory component.
type NodeSpec struct {
	Name     string
	Kind     Kind
	Socket   int   // socket the component is attached to
	Capacity int64 // bytes
}

// Link gives the performance of accesses from a socket to a node.
type Link struct {
	Latency   time.Duration // load-to-use latency of one access
	Bandwidth int64         // sustainable bytes per second
}

// Topology is the static shape of the machine: its memory components and
// the per-socket access characteristics of each.
type Topology struct {
	Sockets int
	Nodes   []NodeSpec
	// Links[socket][node] is the performance of accesses issued on a
	// socket to a node.
	Links [][]Link

	// views caches the per-socket fastest-to-slowest node orders. The
	// topology is static after construction, and View sits on the
	// per-fault placement path — rebuilding the order there was the
	// single largest allocation source of a simulated interval.
	viewsOnce sync.Once
	views     [][]NodeID
}

// Validate checks internal consistency of the topology.
func (t *Topology) Validate() error {
	if t.Sockets <= 0 {
		return fmt.Errorf("tier: topology has %d sockets", t.Sockets)
	}
	if len(t.Nodes) == 0 {
		return fmt.Errorf("tier: topology has no memory nodes")
	}
	if len(t.Links) != t.Sockets {
		return fmt.Errorf("tier: Links has %d rows, want %d", len(t.Links), t.Sockets)
	}
	for s, row := range t.Links {
		if len(row) != len(t.Nodes) {
			return fmt.Errorf("tier: Links[%d] has %d entries, want %d", s, len(row), len(t.Nodes))
		}
		for n, l := range row {
			if l.Latency <= 0 {
				return fmt.Errorf("tier: Links[%d][%d].Latency = %v", s, n, l.Latency)
			}
			if l.Bandwidth <= 0 {
				return fmt.Errorf("tier: Links[%d][%d].Bandwidth = %d", s, n, l.Bandwidth)
			}
		}
	}
	for i, n := range t.Nodes {
		if n.Capacity <= 0 {
			return fmt.Errorf("tier: node %d (%s) capacity = %d", i, n.Name, n.Capacity)
		}
		if n.Socket < 0 || n.Socket >= t.Sockets {
			return fmt.Errorf("tier: node %d (%s) on socket %d of %d", i, n.Name, n.Socket, t.Sockets)
		}
	}
	return nil
}

// View returns the node IDs ordered fastest-to-slowest from the given
// socket. Ties break by bandwidth (higher first), then node ID. The
// returned slice is a shared cache owned by the topology — callers must
// not modify it.
func (t *Topology) View(socket int) []NodeID {
	t.viewsOnce.Do(func() {
		t.views = make([][]NodeID, t.Sockets)
		for s := range t.views {
			t.views[s] = t.buildView(s)
		}
	})
	return t.views[socket]
}

func (t *Topology) buildView(socket int) []NodeID {
	order := make([]NodeID, len(t.Nodes))
	for i := range order {
		order[i] = NodeID(i)
	}
	links := t.Links[socket]
	// Insertion sort: the node count is tiny (2..8).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := order[j-1], order[j]
			la, lb := links[a], links[b]
			if la.Latency < lb.Latency ||
				(la.Latency == lb.Latency && la.Bandwidth > lb.Bandwidth) ||
				(la.Latency == lb.Latency && la.Bandwidth == lb.Bandwidth && a < b) {
				break
			}
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	return order
}

// Rank returns the 0-based tier rank of node from the given socket's view
// (0 = fastest).
func (t *Topology) Rank(socket int, node NodeID) int {
	for r, n := range t.View(socket) {
		if n == node {
			return r
		}
	}
	return -1
}

const (
	// GB is 2^30 bytes.
	GB = int64(1) << 30
	// MB is 2^20 bytes.
	MB = int64(1) << 20
	// KB is 2^10 bytes.
	KB = int64(1) << 10
)

// OptaneTopology builds the four-component, two-socket topology of Table 1.
// scale divides every capacity so that large-memory experiments run at
// laptop scale while preserving all capacity ratios; scale=1 reproduces the
// paper's machine (2×96 GB DRAM, 2×756 GB Optane PM).
func OptaneTopology(scale int64) *Topology {
	if scale <= 0 {
		scale = 1
	}
	dram := 96 * GB / scale
	pm := 756 * GB / scale
	t := &Topology{
		Sockets: 2,
		Nodes: []NodeSpec{
			{Name: "DRAM0", Kind: DRAM, Socket: 0, Capacity: dram},
			{Name: "DRAM1", Kind: DRAM, Socket: 1, Capacity: dram},
			{Name: "PM0", Kind: PM, Socket: 0, Capacity: pm},
			{Name: "PM1", Kind: PM, Socket: 1, Capacity: pm},
		},
	}
	local := func(n NodeSpec, s int) bool { return n.Socket == s }
	t.Links = make([][]Link, t.Sockets)
	for s := range t.Links {
		t.Links[s] = make([]Link, len(t.Nodes))
		for i, n := range t.Nodes {
			var l Link
			switch {
			case n.Kind == DRAM && local(n, s):
				l = Link{Latency: 90 * time.Nanosecond, Bandwidth: 95 * GB}
			case n.Kind == DRAM:
				l = Link{Latency: 145 * time.Nanosecond, Bandwidth: 35 * GB}
			case local(n, s):
				l = Link{Latency: 275 * time.Nanosecond, Bandwidth: 35 * GB}
			default:
				l = Link{Latency: 340 * time.Nanosecond, Bandwidth: 1 * GB}
			}
			t.Links[s][i] = l
		}
	}
	return t
}

// CXLTopology builds a single-socket machine with local DRAM, a directly
// attached CXL memory expander, and a second, switched CXL device — the
// three-tier CPU-less-node configuration §8 argues MTM generalises to
// (any architecture with per-tier memory-access events works). Latencies
// follow published CXL measurements: ~2x DRAM for direct-attach, ~3.5x
// through a switch.
func CXLTopology(scale int64) *Topology {
	if scale <= 0 {
		scale = 1
	}
	return &Topology{
		Sockets: 1,
		Nodes: []NodeSpec{
			{Name: "DRAM", Kind: DRAM, Socket: 0, Capacity: 96 * GB / scale},
			{Name: "CXL0", Kind: CXL, Socket: 0, Capacity: 256 * GB / scale},
			{Name: "CXL1", Kind: CXL, Socket: 0, Capacity: 512 * GB / scale},
		},
		Links: [][]Link{{
			{Latency: 90 * time.Nanosecond, Bandwidth: 95 * GB},
			{Latency: 180 * time.Nanosecond, Bandwidth: 28 * GB},
			{Latency: 320 * time.Nanosecond, Bandwidth: 16 * GB},
		}},
	}
}

// TwoTierTopology builds a single-socket DRAM+PM machine, the configuration
// of the HeMem comparison in §9.6.
func TwoTierTopology(dramBytes, pmBytes int64) *Topology {
	return &Topology{
		Sockets: 1,
		Nodes: []NodeSpec{
			{Name: "DRAM", Kind: DRAM, Socket: 0, Capacity: dramBytes},
			{Name: "PM", Kind: PM, Socket: 0, Capacity: pmBytes},
		},
		Links: [][]Link{{
			{Latency: 90 * time.Nanosecond, Bandwidth: 95 * GB},
			{Latency: 275 * time.Nanosecond, Bandwidth: 35 * GB},
		}},
	}
}
