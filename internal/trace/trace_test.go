package trace

import (
	"bytes"
	"testing"
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
	"mtm/internal/workload"
)

type ftSolution struct{}

func (*ftSolution) Name() string { return "ft" }
func (*ftSolution) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return e.Sys.FirstFit(e.Sys.Topo.View(socket), v.PageSize)
}
func (*ftSolution) IntervalStart(*sim.Engine) {}
func (*ftSolution) IntervalEnd(*sim.Engine)   {}

func newEngine() *sim.Engine {
	e := sim.NewEngine(tier.OptaneTopology(512), 1)
	e.Interval = 10 * time.Second / 512
	e.SetSolution(&ftSolution{})
	return e
}

func TestRoundTripEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if err := w.IntervalEnd(); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Intervals) != 1 || len(tr.Intervals[0]) != 0 {
		t.Fatalf("trace %+v", tr)
	}
}

func TestRecordRejectsUnknownVMA(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	as := vm.NewAddressSpace()
	v := as.Alloc("x", 4*vm.HugePageSize)
	if err := w.Record(v, 0, 1, 0, 0); err == nil {
		t.Fatal("unregistered VMA accepted")
	}
}

func TestRoundTripAccesses(t *testing.T) {
	as := vm.NewAddressSpace()
	a := as.Alloc("a", 4*vm.HugePageSize)
	b := as.Alloc("b", 8*vm.HugePageSize)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RegisterVMA(a)
	w.RegisterVMA(b)
	w.Record(a, 1, 10, 5, 0)
	w.Record(b, 7, 3, 0, 1)
	w.IntervalEnd()
	w.Record(a, 2, 1, 1, 0)
	w.IntervalEnd()
	w.Flush()

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.VMAs) != 2 || tr.VMAs[0].Name != "a" || tr.VMAs[1].Bytes != b.Bytes() {
		t.Fatalf("VMA table %+v", tr.VMAs)
	}
	if len(tr.Intervals) != 2 {
		t.Fatalf("intervals = %d", len(tr.Intervals))
	}
	want := Access{VMA: 0, Page: 1, Reads: 10, Writes: 5, Socket: 0}
	if tr.Intervals[0][0] != want {
		t.Fatalf("access %+v, want %+v", tr.Intervals[0][0], want)
	}
	if got := tr.Intervals[1][0]; got.Page != 2 || got.VMA != 0 {
		t.Fatalf("interval 2 access %+v", got)
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("not a trace at all"))); err == nil {
		t.Fatal("garbage accepted")
	}
	// Valid header, bogus record kind.
	as := vm.NewAddressSpace()
	v := as.Alloc("x", 4*vm.HugePageSize)
	var buf bytes.Buffer
	w := NewWriter(&buf)
	w.RegisterVMA(v)
	w.Record(v, 0, 1, 0, 0)
	w.Flush()
	raw := append(buf.Bytes(), 0xEE)
	if _, err := Read(bytes.NewReader(raw)); err == nil {
		t.Fatal("bad record kind accepted")
	}
}

// TestRecordReplayEquivalence is the end-to-end property: recording a
// workload and replaying the trace on a fresh engine reproduces the same
// ground-truth access totals and the same virtual app time.
func TestRecordReplayEquivalence(t *testing.T) {
	// Record a short GUPS run.
	e1 := newEngine()
	g := workload.NewGUPS(workload.Config{Scale: 512, OpsFactor: 0.02})
	var buf bytes.Buffer
	rec := NewRecorder(g, NewWriter(&buf))
	e1.SetSolution(&ftSolution{})
	rec.Init(e1)
	for i := 0; i < 10 && !rec.Done(); i++ {
		e1.RunInterval(rec)
	}
	if err := rec.Out.Flush(); err != nil {
		t.Fatal(err)
	}
	if rec.Out.Records() == 0 {
		t.Fatal("nothing recorded")
	}

	tr, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	e2 := newEngine()
	rep := NewReplay(tr)
	e2.SetSolution(&ftSolution{})
	rep.Init(e2)
	for !rep.Done() {
		e2.RunInterval(rep)
	}
	if e1.TotalAccesses != e2.TotalAccesses {
		t.Fatalf("accesses: recorded %d, replayed %d", e1.TotalAccesses, e2.TotalAccesses)
	}
	// Virtual app time must match exactly: the init-end marker makes the
	// replay issue initialisation traffic during Init, exactly where the
	// recorded run did (and where the first interval boundary zeroes it).
	if e1.TotalApp != e2.TotalApp {
		t.Fatalf("app time diverged: recorded %v, replayed %v", e1.TotalApp, e2.TotalApp)
	}
	for i := range e1.NodeAccesses {
		if e1.NodeAccesses[i] != e2.NodeAccesses[i] {
			t.Fatalf("node %d: %d vs %d", i, e1.NodeAccesses[i], e2.NodeAccesses[i])
		}
	}
}

func TestReplayReadFraction(t *testing.T) {
	tr := &Trace{
		VMAs:      []VMADesc{{Name: "x", Bytes: 4 * vm.HugePageSize, HugePage: true}},
		Intervals: [][]Access{{{VMA: 0, Page: 0, Reads: 10, Writes: 5}}},
	}
	r := NewReplay(tr)
	if got := r.ReadFraction(); got != 0.5 {
		t.Fatalf("read fraction = %v", got)
	}
}
