// Package trace records and replays page-level access traces. Recording
// captures the exact (page, reads, writes, socket) stream a workload
// issued; replaying drives that stream back through the engine as a
// workload of its own.
//
// Traces are how the reproduction substitutes for the production traces
// the paper's authors had: a captured run of any synthetic workload
// becomes a fixed, shareable input that every solution can be evaluated
// against byte-for-byte, and traces recorded elsewhere (e.g. converted
// from real PEBS dumps) can be replayed through the same interface.
//
// The on-disk format is a little-endian stream: a header, one VMA table
// describing the address-space shape, then fixed-size access records with
// interval markers.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"mtm/internal/sim"
	"mtm/internal/vm"
)

// Magic and Version identify the trace format. Version 2 added the
// init-end marker separating initialisation traffic from interval 0;
// version-1 streams (no marker) still read, with Init left empty.
const (
	Magic   = 0x4d544d54 // "MTMT"
	Version = 2
)

// record kinds
const (
	recAccess      = 1
	recIntervalEnd = 2
	recInitEnd     = 3
)

// Access is one recorded batched access.
type Access struct {
	VMA    uint32 // index into the VMA table
	Page   uint32
	Reads  uint32 // total accesses (reads+writes)
	Writes uint32
	Socket uint8
}

// VMADesc describes one VMA of the recorded address space.
type VMADesc struct {
	Name     string
	Bytes    int64
	HugePage bool
}

// Writer records a trace to an underlying stream.
type Writer struct {
	w      *bufio.Writer
	vmas   []VMADesc
	vmaIdx map[*vm.VMA]uint32
	wrote  bool
	n      int64
}

// NewWriter creates a trace writer. Header and VMA table are emitted on
// the first record, so VMAs must be registered before any Record call.
func NewWriter(w io.Writer) *Writer {
	return &Writer{w: bufio.NewWriter(w), vmaIdx: make(map[*vm.VMA]uint32)}
}

// RegisterVMA assigns a table slot to a VMA; call once per VMA, before
// recording.
func (t *Writer) RegisterVMA(v *vm.VMA) {
	if _, ok := t.vmaIdx[v]; ok {
		return
	}
	t.vmaIdx[v] = uint32(len(t.vmas))
	t.vmas = append(t.vmas, VMADesc{Name: v.Name, Bytes: v.Bytes(), HugePage: v.PageSize == vm.HugePageSize})
}

func (t *Writer) header() error {
	var b [8]byte
	le := binary.LittleEndian
	le.PutUint32(b[0:], Magic)
	le.PutUint16(b[4:], Version)
	le.PutUint16(b[6:], uint16(len(t.vmas)))
	if _, err := t.w.Write(b[:]); err != nil {
		return err
	}
	for _, d := range t.vmas {
		name := []byte(d.Name)
		if len(name) > 255 {
			name = name[:255]
		}
		var hdr [10]byte
		le.PutUint64(hdr[0:], uint64(d.Bytes))
		if d.HugePage {
			hdr[8] = 1
		}
		hdr[9] = byte(len(name))
		if _, err := t.w.Write(hdr[:]); err != nil {
			return err
		}
		if _, err := t.w.Write(name); err != nil {
			return err
		}
	}
	t.wrote = true
	return nil
}

// Record appends one access.
func (t *Writer) Record(v *vm.VMA, page int, n, nw uint32, socket int) error {
	if !t.wrote {
		if err := t.header(); err != nil {
			return err
		}
	}
	idx, ok := t.vmaIdx[v]
	if !ok {
		return fmt.Errorf("trace: VMA %q not registered", v.Name)
	}
	var b [18]byte
	le := binary.LittleEndian
	b[0] = recAccess
	le.PutUint32(b[1:], idx)
	le.PutUint32(b[5:], uint32(page))
	le.PutUint32(b[9:], n)
	le.PutUint32(b[13:], nw)
	b[17] = uint8(socket)
	_, err := t.w.Write(b[:])
	t.n++
	return err
}

// IntervalEnd marks a profiling-interval boundary.
func (t *Writer) IntervalEnd() error {
	if !t.wrote {
		if err := t.header(); err != nil {
			return err
		}
	}
	_, err := t.w.Write([]byte{recIntervalEnd})
	return err
}

// InitEnd marks the end of initialisation traffic. Accesses before the
// marker replay during workload Init (pre-faulting pages exactly as the
// recorded run did) rather than being charged to interval 0.
func (t *Writer) InitEnd() error {
	if !t.wrote {
		if err := t.header(); err != nil {
			return err
		}
	}
	_, err := t.w.Write([]byte{recInitEnd})
	return err
}

// Records returns the number of accesses recorded.
func (t *Writer) Records() int64 { return t.n }

// Flush drains buffered output.
func (t *Writer) Flush() error { return t.w.Flush() }

// Trace is a fully parsed trace.
type Trace struct {
	VMAs []VMADesc
	// Init holds the accesses issued during workload initialisation
	// (before the first interval); empty for version-1 traces.
	Init []Access
	// Intervals holds the access batches per profiling interval.
	Intervals [][]Access
}

// ErrFormat reports a malformed trace stream.
var ErrFormat = errors.New("trace: bad format")

// Read parses a trace stream.
func Read(r io.Reader) (*Trace, error) {
	br := bufio.NewReader(r)
	var head [8]byte
	if _, err := io.ReadFull(br, head[:]); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(head[0:]) != Magic {
		return nil, fmt.Errorf("%w: magic", ErrFormat)
	}
	if v := le.Uint16(head[4:]); v != 1 && v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrFormat, v)
	}
	nv := int(le.Uint16(head[6:]))
	t := &Trace{VMAs: make([]VMADesc, nv)}
	for i := range t.VMAs {
		var hdr [10]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return nil, err
		}
		d := &t.VMAs[i]
		d.Bytes = int64(le.Uint64(hdr[0:]))
		d.HugePage = hdr[8] != 0
		name := make([]byte, hdr[9])
		if _, err := io.ReadFull(br, name); err != nil {
			return nil, err
		}
		d.Name = string(name)
	}
	cur := []Access{}
	for {
		kind, err := br.ReadByte()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch kind {
		case recAccess:
			var b [17]byte
			if _, err := io.ReadFull(br, b[:]); err != nil {
				return nil, err
			}
			a := Access{
				VMA:    le.Uint32(b[0:]),
				Page:   le.Uint32(b[4:]),
				Reads:  le.Uint32(b[8:]),
				Writes: le.Uint32(b[12:]),
				Socket: b[16],
			}
			if int(a.VMA) >= nv {
				return nil, fmt.Errorf("%w: VMA index %d", ErrFormat, a.VMA)
			}
			cur = append(cur, a)
		case recIntervalEnd:
			t.Intervals = append(t.Intervals, cur)
			cur = nil
		case recInitEnd:
			if t.Init != nil || len(t.Intervals) > 0 {
				return nil, fmt.Errorf("%w: stray init-end marker", ErrFormat)
			}
			t.Init = cur
			cur = nil
		default:
			return nil, fmt.Errorf("%w: record kind %d", ErrFormat, kind)
		}
	}
	if len(cur) > 0 {
		t.Intervals = append(t.Intervals, cur)
	}
	return t, nil
}

// Replay is a sim.Workload that re-issues a recorded trace.
type Replay struct {
	tr   *Trace
	vmas []*vm.VMA
	next int
}

// NewReplay wraps a parsed trace as a workload.
func NewReplay(tr *Trace) *Replay { return &Replay{tr: tr} }

func (r *Replay) Name() string { return "trace-replay" }

func (r *Replay) Init(e *sim.Engine) {
	r.vmas = make([]*vm.VMA, len(r.tr.VMAs))
	for i, d := range r.tr.VMAs {
		// Replay preserves the recorded page-size choice regardless of
		// the current THP default.
		saved := e.AS.THP
		e.AS.THP = d.HugePage
		r.vmas[i] = e.AS.Alloc(d.Name, d.Bytes)
		e.AS.THP = saved
	}
	// Re-issue the recorded initialisation traffic so page placement and
	// ground-truth counters enter interval 0 exactly as in the live run
	// (init app-time is zeroed at the first interval boundary either way).
	for _, a := range r.tr.Init {
		e.Access(r.vmas[a.VMA], int(a.Page), a.Reads, a.Writes, int(a.Socket))
	}
}

func (r *Replay) RunInterval(e *sim.Engine) {
	if r.Done() {
		return
	}
	for _, a := range r.tr.Intervals[r.next] {
		e.Access(r.vmas[a.VMA], int(a.Page), a.Reads, a.Writes, int(a.Socket))
	}
	r.next++
}

func (r *Replay) Done() bool { return r.next >= len(r.tr.Intervals) }

func (r *Replay) ReadFraction() float64 {
	var n, w uint64
	for _, iv := range r.tr.Intervals {
		for _, a := range iv {
			n += uint64(a.Reads)
			w += uint64(a.Writes)
		}
	}
	if n == 0 {
		return 1
	}
	return 1 - float64(w)/float64(n)
}

// Recorder wraps a workload, forwarding every access to the engine while
// copying it into a trace writer. Recording starts before the wrapped
// workload's Init so initialisation traffic is captured too; VMAs are
// registered as they are first touched (the trace header is emitted at
// the first access, so all VMAs touched later must already exist by then
// — true for workloads that allocate before touching).
type Recorder struct {
	W   sim.Workload
	Out *Writer

	err error
}

// NewRecorder wraps w, writing the trace to out.
func NewRecorder(w sim.Workload, out *Writer) *Recorder {
	return &Recorder{W: w, Out: out}
}

func (r *Recorder) Name() string          { return r.W.Name() + "+record" }
func (r *Recorder) Done() bool            { return r.W.Done() }
func (r *Recorder) ReadFraction() float64 { return r.W.ReadFraction() }

// Err reports the first recording failure, if any.
func (r *Recorder) Err() error { return r.err }

func (r *Recorder) Init(e *sim.Engine) {
	// Interpose on the engine's access path via the observer hook
	// before Init so initialisation accesses are part of the trace.
	e.Observer = func(v *vm.VMA, page int, n, nw uint32, socket int) {
		if !r.Out.wrote {
			r.Out.RegisterVMA(v)
		}
		if err := r.Out.Record(v, page, n, nw, socket); err != nil && r.err == nil {
			r.err = err
		}
	}
	r.W.Init(e)
	// Register any VMAs allocated during Init but not yet touched.
	if !r.Out.wrote {
		for _, v := range e.AS.VMAs() {
			r.Out.RegisterVMA(v)
		}
	}
	// Fence off initialisation traffic so replay re-issues it during Init
	// rather than charging it to interval 0.
	if err := r.Out.InitEnd(); err != nil && r.err == nil {
		r.err = err
	}
}

func (r *Recorder) RunInterval(e *sim.Engine) {
	r.W.RunInterval(e)
	if err := r.Out.IntervalEnd(); err != nil && r.err == nil {
		r.err = err
	}
}
