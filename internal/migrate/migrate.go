// Package migrate implements the page-migration mechanisms of §7: Linux's
// synchronous move_pages(), Nimble's parallel/huge-page-aware migration,
// and MTM's move_memory_regions() — asynchronous page copy with dirty
// tracking and an adaptive switch back to synchronous copy when a write
// hits the region mid-copy.
//
// Each mechanism charges virtual time to the engine, split into the four
// move_pages() steps of §7.1 (allocate, unmap, copy, remap+PT) plus MTM's
// dirty tracking, so the Figure 3/11 breakdowns can be regenerated.
package migrate

import (
	"math"
	"math/bits"
	"time"

	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// Per-PTE software costs of the migration steps. Values follow the §7.1
// measurement that page copy is ~40% of move_pages() time for a 2 MB
// region with the remainder split across the other steps.
const (
	AllocPerPTE = 600 * time.Nanosecond
	UnmapPerPTE = 700 * time.Nanosecond
	RemapPerPTE = 700 * time.Nanosecond
	PTPerPTE    = 200 * time.Nanosecond
	CopyPerPTE  = 400 * time.Nanosecond // per-page loop overhead of the copy step

	// SingleThreadCopyBW is what one kernel thread's 4 KB-at-a-time
	// memcpy sustains; move_pages() copies pages sequentially with one
	// thread, which is why multi-threaded copy (Nimble, MTM) wins on
	// wide links.
	SingleThreadCopyBW = 5 * tier.GB

	// CopyThreads is the helper-thread count for parallel copy.
	CopyThreads = 4

	// DirtyTrackArm is the cost of write-protecting a region and issuing
	// the single TLB flush MTM's tracking needs (§7.2).
	DirtyTrackArm = 10 * time.Microsecond
	// DirtyFaultCost is one user-space write-protection fault (~40 µs,
	// §9.5), paid once: tracking turns off after the first write.
	DirtyFaultCost = 40 * time.Microsecond
)

// Steps is the per-step time breakdown of one migration.
type Steps struct {
	Alloc      time.Duration
	Unmap      time.Duration
	Copy       time.Duration
	Remap      time.Duration
	PageTable  time.Duration
	DirtyTrack time.Duration
}

// Total sums the steps.
func (s Steps) Total() time.Duration {
	return s.Alloc + s.Unmap + s.Copy + s.Remap + s.PageTable + s.DirtyTrack
}

// Report summarises one region migration.
type Report struct {
	MovedPages int   // pages actually rebound
	Bytes      int64 // bytes moved
	// Critical is the time exposed on the application's critical path;
	// Background is helper-thread time overlapped with execution.
	Critical   time.Duration
	Background time.Duration
	// CriticalSteps breaks down the critical-path time.
	CriticalSteps Steps
	// ExtraCopyBytes is data re-copied because pages were written during
	// an asynchronous copy.
	ExtraCopyBytes int64
	// SwitchedToSync reports MTM's adaptive fallback firing.
	SwitchedToSync bool

	// Robustness accounting (non-zero only under fault injection):
	// transient-EBUSY attempts retried, transactions aborted after the
	// retry budget, bytes copied and thrown away by aborts, and the
	// wasted-work time (busy attempts, backoffs, aborted copies) charged
	// on top of the productive migration steps.
	Retries      int64
	Aborts       int64
	WastedBytes  int64
	RetryPenalty time.Duration
}

// RetryPolicy bounds per-page retries of transient copy failures with
// capped exponential backoff. Backoff is charged in virtual time, so runs
// stay deterministic — there is no wall-clock sleeping and no jitter. The
// zero value selects DefaultRetry, which keeps `MovePages{}`-style
// mechanism literals valid.
type RetryPolicy struct {
	MaxAttempts int           // copy attempts per page before aborting
	BaseBackoff time.Duration // backoff after the first failed attempt
	MaxBackoff  time.Duration // cap for the exponential growth
}

// DefaultRetry mirrors the kernel's bounded migrate_pages() retry loop
// (it tries a page a handful of times before giving up with EBUSY).
var DefaultRetry = RetryPolicy{
	MaxAttempts: 5,
	BaseBackoff: 5 * time.Microsecond,
	MaxBackoff:  80 * time.Microsecond,
}

// norm resolves the zero value and missing fields to DefaultRetry.
func (p RetryPolicy) norm() RetryPolicy {
	if p.MaxAttempts <= 0 {
		return DefaultRetry
	}
	if p.BaseBackoff <= 0 {
		p.BaseBackoff = DefaultRetry.BaseBackoff
	}
	if p.MaxBackoff < p.BaseBackoff {
		p.MaxBackoff = p.BaseBackoff
	}
	return p
}

// Backoff returns the virtual-time backoff after the n-th failed attempt
// (n >= 1): BaseBackoff doubled per retry, capped at MaxBackoff.
func (p RetryPolicy) Backoff(n int) time.Duration {
	d := p.BaseBackoff
	for i := 1; i < n; i++ {
		d *= 2
		if d >= p.MaxBackoff {
			return p.MaxBackoff
		}
	}
	if d > p.MaxBackoff {
		return p.MaxBackoff
	}
	return d
}

// Mechanism migrates a span of pages [start, end) of a VMA to dst and
// charges the engine. Pages already on dst are skipped; at most maxPages
// pages move (maxPages <= 0 means no cap). Implementations must move only
// pages that fit in dst and must keep tier accounting exact via
// Engine.MovePage.
type Mechanism interface {
	Name() string
	Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report
}

// pairBW returns the bandwidth of the narrower link of a src→dst copy
// issued from the engine's home socket, after any fault-plane link
// degradation.
func pairBW(e *sim.Engine, src, dst tier.NodeID) int64 {
	bs := e.LinkBandwidth(e.HomeSocket, src)
	bd := e.LinkBandwidth(e.HomeSocket, dst)
	if bs < bd {
		return bs
	}
	return bd
}

func copyTime(bytes int64, bw int64) time.Duration {
	return time.Duration(float64(bytes) / float64(bw) * float64(time.Second))
}

// weightedCopyTime charges each source node's bytes at its own src→dst
// pair bandwidth, capped at bwCap (<= 0 means uncapped). Spans whose
// pages start on multiple nodes thereby pay the correct per-link time
// instead of the first page's link for everything. Duration addition is
// integer, so the sum is order-independent and deterministic.
func weightedCopyTime(e *sim.Engine, srcBytes []int64, dst tier.NodeID, bwCap int64) time.Duration {
	var d time.Duration
	for src, bytes := range srcBytes {
		if bytes == 0 {
			continue
		}
		bw := pairBW(e, tier.NodeID(src), dst)
		if bwCap > 0 && bwCap < bw {
			bw = bwCap
		}
		d += copyTime(bytes, bw)
	}
	return d
}

// dominantSrc returns the source node contributing the most bytes
// (Invalid if none) — the representative source for per-region effects
// like dirty-page re-copies.
func dominantSrc(srcBytes []int64) tier.NodeID {
	best := tier.Invalid
	var bestBytes int64
	for src, b := range srcBytes {
		if b > bestBytes {
			bestBytes, best = b, tier.NodeID(src)
		}
	}
	return best
}

// migrateShardPages is the page count of one span-prescan shard. Fixed
// (never derived from worker count) so the shard layout — and therefore
// the merged candidate list — is independent of the Parallelism setting.
const migrateShardPages = 1 << 12

// spanCandidates walks [start, end) and returns the indices of pages that
// are present and not already on dst, in address order, together with the
// span's write-counter sum (the Adaptive mechanism's write-rate input).
// The walk is read-only (Present/Node/WriteCount) and sharded across the
// engine's pool; per-shard results merge in shard order, so the candidate
// list is identical at any Parallelism. The transactional rebind loop
// that consumes the list stays sequential — only this O(span) accounting
// pass fans out.
func spanCandidates(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID) ([]int, uint32) {
	n := end - start
	if n <= 0 {
		return nil, 0
	}
	nShards := sim.NumShards(n, migrateShardPages)
	type part struct {
		cand   []int
		writes uint32
	}
	parts := make([]part, nShards)
	e.Parallel(nShards, func(s int) {
		lo, hi := sim.ShardSpan(n, migrateShardPages, s)
		lo, hi = start+lo, start+hi
		p := &parts[s]
		// Word-wide: write counts are non-zero only on touched pages, and
		// candidates only on present ones; both planes narrow the walk.
		// Set bits are consumed in ascending page order, preserving the
		// sequential candidate order exactly.
		for w := lo / vm.WordPages; w*vm.WordPages < hi; w++ {
			tw := v.TouchedRangeWord(w, lo, hi)
			for tw != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(tw)
				tw &= tw - 1
				p.writes += v.WriteCount(i)
			}
			pw := v.PresentRangeWord(w, lo, hi)
			for pw != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(pw)
				pw &= pw - 1
				if v.Node(i) != dst {
					p.cand = append(p.cand, i)
				}
			}
		}
	})
	if nShards == 1 {
		return parts[0].cand, parts[0].writes
	}
	var cand []int
	var writes uint32
	for _, p := range parts {
		cand = append(cand, p.cand...)
		writes += p.writes
	}
	return cand, writes
}

// rebindResult is the outcome of the transactional rebind loop.
type rebindResult struct {
	moved      int
	bytes      int64
	srcBytes   []int64 // productive bytes per source node, indexed by NodeID
	retries    int64
	aborts     int64
	waste      time.Duration // busy attempts + backoffs + aborted copies
	wasteBytes int64         // bytes copied then thrown away by aborts

	// Per-source provenance for the span trace (nil unless tracing is
	// enabled): pages moved, copy attempts retried, virtual backoff time,
	// and aborted transactions, each attributed to the page's source node
	// so every src→dst transfer span carries its own retry story.
	srcPages     []int64
	srcRetries   []int64
	srcBackoffNs []int64
	srcAborts    []int64
}

// rebind moves the candidate pages one by one until dst runs out of space
// or maxPages pages have moved (maxPages <= 0 means no cap), recording
// bandwidth demand on both nodes. Each page move is a transaction
// (Nomad-style copy-then-commit): MoveBegin reserves the destination
// frame, the copy is attempted under the retry policy, and the move
// either commits or aborts with the tier accounting rolled back. A page
// that exhausts its retry budget is skipped, not fatal — later pages
// still move. Aborted pages count against the maxPages cap: the cap
// models a per-call work budget, and failed attempts consume it like the
// kernel's nr_pages do. Must run outside Engine.Parallel: it drives the
// engine's serialized move accounting.
func rebind(e *sim.Engine, v *vm.VMA, cand []int, dst tier.NodeID, maxPages int, rp RetryPolicy) rebindResult {
	rp = rp.norm()
	nNodes := len(e.Sys.Topo.Nodes)
	res := rebindResult{srcBytes: make([]int64, nNodes)}
	if e.SpansEnabled() {
		res.srcPages = make([]int64, nNodes)
		res.srcRetries = make([]int64, nNodes)
		res.srcBackoffNs = make([]int64, nNodes)
		res.srcAborts = make([]int64, nNodes)
	}
	attempted := 0
	for _, i := range cand {
		if maxPages > 0 && attempted >= maxPages {
			break
		}
		if !e.PageMoveAllowed(v, i, dst) {
			// Thrash suppression: the page committed a move the other way
			// inside its cool-down window; it neither opens a transaction
			// nor consumes the page budget.
			continue
		}
		src := v.Node(i)
		if !e.MoveBegin(v, i, dst) {
			break // destination full; partial move keeps accounting exact
		}
		attempted++
		ok := false
		for attempt := 1; attempt <= rp.MaxAttempts; attempt++ {
			busy, penalty := e.PageBusy(v, i, dst)
			if !busy {
				ok = true
				break
			}
			res.waste += penalty
			if attempt < rp.MaxAttempts {
				res.retries++
				e.NoteMigrationRetryAt(src, dst)
				backoff := rp.Backoff(attempt)
				res.waste += backoff
				e.NoteMigrationBackoff(src, dst, backoff)
				if res.srcRetries != nil {
					res.srcRetries[src]++
					res.srcBackoffNs[src] += int64(backoff)
				}
			}
		}
		if !ok {
			// Retry budget exhausted: roll back the reservation. The last
			// attempt's copy had already streamed the page, so its copy
			// time and link traffic are wasted work.
			e.MoveAborted(v, i, dst)
			res.aborts++
			res.wasteBytes += v.PageSize
			if res.srcAborts != nil {
				res.srcAborts[src]++
			}
			res.waste += copyTime(v.PageSize, pairBW(e, src, dst))
			e.Sys.RecordTransfer(src, v.PageSize)
			e.Sys.RecordTransfer(dst, v.PageSize)
			continue
		}
		e.MoveCommit(v, i, dst)
		res.moved++
		res.bytes += v.PageSize
		res.srcBytes[src] += v.PageSize
		if res.srcPages != nil {
			res.srcPages[src]++
		}
		e.Sys.RecordTransfer(src, v.PageSize)
		e.Sys.RecordTransfer(dst, v.PageSize)
	}
	return res
}

// robustness copies the rebind loop's retry/abort accounting into a
// report and returns the wasted-work time to fold into the charge.
func (r rebindResult) robustness(rep *Report) time.Duration {
	rep.Retries = r.retries
	rep.Aborts = r.aborts
	rep.WastedBytes = r.wasteBytes
	rep.RetryPenalty = r.waste
	return r.waste
}

// beginMigrationSpan opens the mechanism's migration span at the current
// virtual timestamp and returns that timestamp for the transfer-span
// cursor. Callers must only invoke it when e.SpansEnabled().
func beginMigrationSpan(e *sim.Engine, name string, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) int64 {
	startNs := e.SpanClockNs()
	e.SpanBegin("migration", name,
		span.S("vma", v.Name),
		span.I("page_start", int64(start)),
		span.I("page_end", int64(end)),
		span.S("dst", e.Sys.Topo.Nodes[dst].Name),
		span.I("max_pages", int64(maxPages)))
	return startNs
}

func srcAt(a []int64, i int) int64 {
	if a == nil {
		return 0
	}
	return a[i]
}

// endMigrationSpan emits one transfer child span per source tier that
// contributed pages (or retries/aborts) to the move — annotated with the
// pair's retry count, backoff time, and aborts — then closes the
// mechanism span with the report summary. The transfer spans are laid
// end to end from the mechanism's start, each sized by its pair-bandwidth
// copy time; callers must only invoke it when e.SpansEnabled().
func endMigrationSpan(e *sim.Engine, startNs int64, rb rebindResult, rep *Report, dst tier.NodeID) {
	cur := startNs
	for src := range rb.srcBytes {
		if rb.srcBytes[src] == 0 && srcAt(rb.srcRetries, src) == 0 && srcAt(rb.srcAborts, src) == 0 {
			continue
		}
		d := int64(copyTime(rb.srcBytes[src], pairBW(e, tier.NodeID(src), dst)))
		e.SpanEmit("migration", "transfer", cur, d,
			span.S("src", e.Sys.Topo.Nodes[src].Name),
			span.S("dst", e.Sys.Topo.Nodes[dst].Name),
			span.I("pages", srcAt(rb.srcPages, src)),
			span.I("bytes", rb.srcBytes[src]),
			span.I("retries", srcAt(rb.srcRetries, src)),
			span.I("backoff_ns", srcAt(rb.srcBackoffNs, src)),
			span.I("aborts", srcAt(rb.srcAborts, src)))
		cur += d
	}
	e.SpanEnd(
		span.I("moved_pages", int64(rep.MovedPages)),
		span.I("bytes", rep.Bytes),
		span.I("critical_ns", int64(rep.Critical)),
		span.I("background_ns", int64(rep.Background)),
		span.I("retries", rep.Retries),
		span.I("aborts", rep.Aborts))
}

// MovePages models Linux move_pages(): the four steps run sequentially on
// the calling thread, the copy is single-threaded, and THP mappings are
// split so every 4 KB page pays per-PTE costs (§7.1).
type MovePages struct {
	// Retry bounds per-page retries of transient copy failures; the zero
	// value is DefaultRetry.
	Retry RetryPolicy
}

func (MovePages) Name() string { return "move_pages" }

func (m MovePages) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	spanning := e.SpansEnabled()
	var spanStart int64
	if spanning {
		spanStart = beginMigrationSpan(e, m.Name(), v, start, end, dst, maxPages)
	}
	cand, _ := spanCandidates(e, v, start, end, dst)
	rb := rebind(e, v, cand, dst, maxPages, m.Retry)
	var rep Report
	waste := rb.robustness(&rep)
	if rb.moved == 0 {
		if waste > 0 {
			e.ChargeMigration(waste)
			rep.Critical = waste
		}
		if spanning {
			endMigrationSpan(e, spanStart, rb, &rep, dst)
		}
		return rep
	}
	n4k := rb.bytes / vm.BasePageSize // THP split: per-4KB-PTE work
	st := Steps{
		Alloc:     time.Duration(n4k) * AllocPerPTE,
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Copy:      time.Duration(n4k)*CopyPerPTE + weightedCopyTime(e, rb.srcBytes, dst, SingleThreadCopyBW),
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	e.ChargeMigration(st.Total() + waste)
	rep.MovedPages = rb.moved
	rep.Bytes = rb.bytes
	rep.Critical = st.Total() + waste
	rep.CriticalSteps = st
	if spanning {
		endMigrationSpan(e, spanStart, rb, &rep, dst)
	}
	return rep
}

// Nimble models Nimble page management: still synchronous, but with
// multi-threaded parallel copy and exchange-style allocation that halves
// allocation work. Per-PTE bookkeeping happens at 4 KB granularity like
// move_pages (migration splits THP mappings).
type Nimble struct {
	// Retry bounds per-page retries of transient copy failures; the zero
	// value is DefaultRetry.
	Retry RetryPolicy
}

func (Nimble) Name() string { return "nimble" }

func (m Nimble) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	spanning := e.SpansEnabled()
	var spanStart int64
	if spanning {
		spanStart = beginMigrationSpan(e, m.Name(), v, start, end, dst, maxPages)
	}
	cand, _ := spanCandidates(e, v, start, end, dst)
	rb := rebind(e, v, cand, dst, maxPages, m.Retry)
	var rep Report
	waste := rb.robustness(&rep)
	if rb.moved == 0 {
		if waste > 0 {
			e.ChargeMigration(waste)
			rep.Critical = waste
		}
		if spanning {
			endMigrationSpan(e, spanStart, rb, &rep, dst)
		}
		return rep
	}
	n4k := rb.bytes / vm.BasePageSize
	st := Steps{
		Alloc:     time.Duration(n4k) * AllocPerPTE / 2, // exchange pages
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Copy:      time.Duration(n4k)*CopyPerPTE/CopyThreads + weightedCopyTime(e, rb.srcBytes, dst, int64(CopyThreads)*SingleThreadCopyBW),
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	e.ChargeMigration(st.Total() + waste)
	rep.MovedPages = rb.moved
	rep.Bytes = rb.bytes
	rep.Critical = st.Total() + waste
	rep.CriticalSteps = st
	if spanning {
		endMigrationSpan(e, spanStart, rb, &rep, dst)
	}
	return rep
}

// Adaptive models MTM's move_memory_regions() (§7.2): allocation and copy
// run on helper threads off the critical path while unmap/remap/PT stay
// on it; dirty tracking write-protects the region, and the first write
// during the async copy switches the remainder to synchronous copy (the
// pages already copied and then dirtied are re-copied).
//
// ForceSync disables the async path ("w/o async migration" ablation): the
// mechanism is then Nimble-equivalent plus dirty-tracking arming skipped.
type Adaptive struct {
	ForceSync bool
	// WriteRate overrides the per-page write-rate estimate (writes per
	// second during the copy window); negative means derive it from the
	// interval's ground-truth write counters. Microbenchmarks use the
	// override to model concurrent writers.
	WriteRate float64
	// Retry bounds per-page retries of transient copy failures; the zero
	// value is DefaultRetry.
	Retry RetryPolicy
}

// NewAdaptive returns the default MTM mechanism.
func NewAdaptive() *Adaptive { return &Adaptive{WriteRate: -1} }

func (a *Adaptive) Name() string {
	if a.ForceSync {
		return "move_memory_regions(sync)"
	}
	return "move_memory_regions"
}

func (a *Adaptive) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	spanning := e.SpansEnabled()
	var spanStart int64
	if spanning {
		spanStart = beginMigrationSpan(e, a.Name(), v, start, end, dst, maxPages)
	}
	// The prescan estimates the region's write rate BEFORE rebinding
	// (counters are per-interval; rebinding doesn't change them, but
	// order keeps the estimate tied to the pages actually moved).
	cand, writes := spanCandidates(e, v, start, end, dst)
	rb := rebind(e, v, cand, dst, maxPages, a.Retry)
	var rep Report
	waste := rb.robustness(&rep)
	if rb.moved == 0 {
		if waste > 0 {
			e.ChargeMigration(waste)
			rep.Critical = waste
		}
		if spanning {
			endMigrationSpan(e, spanStart, rb, &rep, dst)
		}
		return rep
	}
	moved, bytes := rb.moved, rb.bytes
	srcNode := dominantSrc(rb.srcBytes)
	n4k := bytes / vm.BasePageSize // same 4 KB PTE granularity as move_pages
	alloc := time.Duration(n4k) * AllocPerPTE
	cp := time.Duration(n4k)*CopyPerPTE/CopyThreads + weightedCopyTime(e, rb.srcBytes, dst, int64(CopyThreads)*SingleThreadCopyBW)
	crit := Steps{
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	rep.MovedPages = moved
	rep.Bytes = bytes

	if a.ForceSync {
		crit.Alloc = alloc
		crit.Copy = cp
		rep.Critical = crit.Total() + waste
		rep.CriticalSteps = crit
		e.ChargeMigration(rep.Critical)
		if spanning {
			endMigrationSpan(e, spanStart, rb, &rep, dst)
		}
		return rep
	}

	crit.DirtyTrack = DirtyTrackArm
	// Will a write land while the async copy is in flight?
	rate := a.WriteRate
	if rate < 0 {
		rate = float64(writes) / e.Interval.Seconds()
	}
	window := (alloc + cp).Seconds()
	expWrites := rate * window
	pWrite := 1 - math.Exp(-expWrites)
	if e.Rng.Float64() < pWrite {
		// First write detected: one WP fault, then the remaining copy
		// switches to the synchronous move_pages-style path (single
		// copy thread, on the critical path, §7.2). Async progress is
		// bounded by when the first write landed — under heavy writes
		// the switch fires almost immediately, which is why MTM
		// performs like move_pages for write-intensive regions (§9.5).
		rep.SwitchedToSync = true
		firstWrite := 1.0
		if expWrites > 1 {
			firstWrite = 1 / expWrites
		}
		done := e.Rng.Float64() * firstWrite
		dirtyFrac := 0.25 * done // already-copied pages dirtied meanwhile
		crit.DirtyTrack += DirtyFaultCost
		syncCopy := time.Duration(n4k)*CopyPerPTE + weightedCopyTime(e, rb.srcBytes, dst, SingleThreadCopyBW)
		crit.Copy = time.Duration(float64(syncCopy) * (1 - done + dirtyFrac))
		crit.Alloc = 0 // allocation had completed in the background
		rep.ExtraCopyBytes = int64(float64(bytes) * dirtyFrac)
		rep.Background = time.Duration(float64(alloc) + float64(cp)*done)
	} else {
		rep.Background = alloc + cp
	}
	rep.Critical = crit.Total() + waste
	rep.CriticalSteps = crit
	e.ChargeMigration(rep.Critical)
	e.ChargeBackground(rep.Background)
	if rep.ExtraCopyBytes > 0 {
		e.Sys.RecordTransfer(srcNode, rep.ExtraCopyBytes)
		e.Sys.RecordTransfer(dst, rep.ExtraCopyBytes)
	}
	if spanning {
		endMigrationSpan(e, spanStart, rb, &rep, dst)
	}
	return rep
}
