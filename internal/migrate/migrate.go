// Package migrate implements the page-migration mechanisms of §7: Linux's
// synchronous move_pages(), Nimble's parallel/huge-page-aware migration,
// and MTM's move_memory_regions() — asynchronous page copy with dirty
// tracking and an adaptive switch back to synchronous copy when a write
// hits the region mid-copy.
//
// Each mechanism charges virtual time to the engine, split into the four
// move_pages() steps of §7.1 (allocate, unmap, copy, remap+PT) plus MTM's
// dirty tracking, so the Figure 3/11 breakdowns can be regenerated.
package migrate

import (
	"math"
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

// Per-PTE software costs of the migration steps. Values follow the §7.1
// measurement that page copy is ~40% of move_pages() time for a 2 MB
// region with the remainder split across the other steps.
const (
	AllocPerPTE = 600 * time.Nanosecond
	UnmapPerPTE = 700 * time.Nanosecond
	RemapPerPTE = 700 * time.Nanosecond
	PTPerPTE    = 200 * time.Nanosecond
	CopyPerPTE  = 400 * time.Nanosecond // per-page loop overhead of the copy step

	// SingleThreadCopyBW is what one kernel thread's 4 KB-at-a-time
	// memcpy sustains; move_pages() copies pages sequentially with one
	// thread, which is why multi-threaded copy (Nimble, MTM) wins on
	// wide links.
	SingleThreadCopyBW = 5 * tier.GB

	// CopyThreads is the helper-thread count for parallel copy.
	CopyThreads = 4

	// DirtyTrackArm is the cost of write-protecting a region and issuing
	// the single TLB flush MTM's tracking needs (§7.2).
	DirtyTrackArm = 10 * time.Microsecond
	// DirtyFaultCost is one user-space write-protection fault (~40 µs,
	// §9.5), paid once: tracking turns off after the first write.
	DirtyFaultCost = 40 * time.Microsecond
)

// Steps is the per-step time breakdown of one migration.
type Steps struct {
	Alloc      time.Duration
	Unmap      time.Duration
	Copy       time.Duration
	Remap      time.Duration
	PageTable  time.Duration
	DirtyTrack time.Duration
}

// Total sums the steps.
func (s Steps) Total() time.Duration {
	return s.Alloc + s.Unmap + s.Copy + s.Remap + s.PageTable + s.DirtyTrack
}

// Report summarises one region migration.
type Report struct {
	MovedPages int   // pages actually rebound
	Bytes      int64 // bytes moved
	// Critical is the time exposed on the application's critical path;
	// Background is helper-thread time overlapped with execution.
	Critical   time.Duration
	Background time.Duration
	// CriticalSteps breaks down the critical-path time.
	CriticalSteps Steps
	// ExtraCopyBytes is data re-copied because pages were written during
	// an asynchronous copy.
	ExtraCopyBytes int64
	// SwitchedToSync reports MTM's adaptive fallback firing.
	SwitchedToSync bool
}

// Mechanism migrates a span of pages [start, end) of a VMA to dst and
// charges the engine. Pages already on dst are skipped; at most maxPages
// pages move (maxPages <= 0 means no cap). Implementations must move only
// pages that fit in dst and must keep tier accounting exact via
// Engine.MovePage.
type Mechanism interface {
	Name() string
	Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report
}

// linkBW returns the bandwidth of the narrower link of a src→dst copy
// issued from the engine's home socket.
func linkBW(e *sim.Engine, src, dst tier.NodeID) int64 {
	ls := e.Sys.Topo.Links[e.HomeSocket][src]
	ld := e.Sys.Topo.Links[e.HomeSocket][dst]
	if ls.Bandwidth < ld.Bandwidth {
		return ls.Bandwidth
	}
	return ld.Bandwidth
}

func copyTime(bytes int64, bw int64) time.Duration {
	return time.Duration(float64(bytes) / float64(bw) * float64(time.Second))
}

// rebind moves pages one by one until dst runs out of space or maxPages
// pages have moved (maxPages <= 0 means no cap); it returns the number of
// pages moved, the bytes, and the source node of the first moved page
// (Invalid if nothing moved), and records bandwidth demand on both nodes.
func rebind(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) (int, int64, tier.NodeID) {
	moved := 0
	var bytes int64
	srcNode := tier.Invalid
	for i := start; i < end; i++ {
		if maxPages > 0 && moved >= maxPages {
			break
		}
		if !v.Present(i) || v.Node(i) == dst {
			continue
		}
		src := v.Node(i)
		if !e.MovePage(v, i, dst) {
			break
		}
		if srcNode == tier.Invalid {
			srcNode = src
		}
		moved++
		bytes += v.PageSize
		e.Sys.RecordTransfer(src, v.PageSize)
		e.Sys.RecordTransfer(dst, v.PageSize)
	}
	return moved, bytes, srcNode
}

// MovePages models Linux move_pages(): the four steps run sequentially on
// the calling thread, the copy is single-threaded, and THP mappings are
// split so every 4 KB page pays per-PTE costs (§7.1).
type MovePages struct{}

func (MovePages) Name() string { return "move_pages" }

func (MovePages) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	moved, bytes, srcNode := rebind(e, v, start, end, dst, maxPages)
	if moved == 0 {
		return Report{}
	}
	n4k := bytes / vm.BasePageSize // THP split: per-4KB-PTE work
	bw := linkBW(e, srcNode, dst)
	if SingleThreadCopyBW < bw {
		bw = SingleThreadCopyBW
	}
	st := Steps{
		Alloc:     time.Duration(n4k) * AllocPerPTE,
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Copy:      time.Duration(n4k)*CopyPerPTE + copyTime(bytes, bw),
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	e.ChargeMigration(st.Total())
	return Report{MovedPages: moved, Bytes: bytes, Critical: st.Total(), CriticalSteps: st}
}

// Nimble models Nimble page management: still synchronous, but with
// multi-threaded parallel copy and exchange-style allocation that halves
// allocation work. Per-PTE bookkeeping happens at 4 KB granularity like
// move_pages (migration splits THP mappings).
type Nimble struct{}

func (Nimble) Name() string { return "nimble" }

func (Nimble) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	moved, bytes, srcNode := rebind(e, v, start, end, dst, maxPages)
	if moved == 0 {
		return Report{}
	}
	n4k := bytes / vm.BasePageSize
	bw := linkBW(e, srcNode, dst)
	if th := int64(CopyThreads) * SingleThreadCopyBW; th < bw {
		bw = th
	}
	st := Steps{
		Alloc:     time.Duration(n4k) * AllocPerPTE / 2, // exchange pages
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Copy:      time.Duration(n4k)*CopyPerPTE/CopyThreads + copyTime(bytes, bw),
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	e.ChargeMigration(st.Total())
	return Report{MovedPages: moved, Bytes: bytes, Critical: st.Total(), CriticalSteps: st}
}

// Adaptive models MTM's move_memory_regions() (§7.2): allocation and copy
// run on helper threads off the critical path while unmap/remap/PT stay
// on it; dirty tracking write-protects the region, and the first write
// during the async copy switches the remainder to synchronous copy (the
// pages already copied and then dirtied are re-copied).
//
// ForceSync disables the async path ("w/o async migration" ablation): the
// mechanism is then Nimble-equivalent plus dirty-tracking arming skipped.
type Adaptive struct {
	ForceSync bool
	// WriteRate overrides the per-page write-rate estimate (writes per
	// second during the copy window); negative means derive it from the
	// interval's ground-truth write counters. Microbenchmarks use the
	// override to model concurrent writers.
	WriteRate float64
}

// NewAdaptive returns the default MTM mechanism.
func NewAdaptive() *Adaptive { return &Adaptive{WriteRate: -1} }

func (a *Adaptive) Name() string {
	if a.ForceSync {
		return "move_memory_regions(sync)"
	}
	return "move_memory_regions"
}

func (a *Adaptive) Migrate(e *sim.Engine, v *vm.VMA, start, end int, dst tier.NodeID, maxPages int) Report {
	// Estimate the region's write rate BEFORE rebinding (counters are
	// per-interval; rebinding doesn't change them, but order keeps the
	// estimate tied to the pages actually moved).
	var writes uint32
	for i := start; i < end; i++ {
		writes += v.WriteCount(i)
	}
	moved, bytes, srcNode := rebind(e, v, start, end, dst, maxPages)
	if moved == 0 {
		return Report{}
	}
	n4k := bytes / vm.BasePageSize // same 4 KB PTE granularity as move_pages
	bw := linkBW(e, srcNode, dst)
	if th := int64(CopyThreads) * SingleThreadCopyBW; th < bw {
		bw = th
	}
	alloc := time.Duration(n4k) * AllocPerPTE
	cp := time.Duration(n4k)*CopyPerPTE/CopyThreads + copyTime(bytes, bw)
	crit := Steps{
		Unmap:     time.Duration(n4k) * UnmapPerPTE,
		Remap:     time.Duration(n4k) * RemapPerPTE,
		PageTable: time.Duration(n4k) * PTPerPTE,
	}
	rep := Report{MovedPages: moved, Bytes: bytes}

	if a.ForceSync {
		crit.Alloc = alloc
		crit.Copy = cp
		rep.Critical = crit.Total()
		rep.CriticalSteps = crit
		e.ChargeMigration(rep.Critical)
		return rep
	}

	crit.DirtyTrack = DirtyTrackArm
	// Will a write land while the async copy is in flight?
	rate := a.WriteRate
	if rate < 0 {
		rate = float64(writes) / e.Interval.Seconds()
	}
	window := (alloc + cp).Seconds()
	expWrites := rate * window
	pWrite := 1 - math.Exp(-expWrites)
	if e.Rng.Float64() < pWrite {
		// First write detected: one WP fault, then the remaining copy
		// switches to the synchronous move_pages-style path (single
		// copy thread, on the critical path, §7.2). Async progress is
		// bounded by when the first write landed — under heavy writes
		// the switch fires almost immediately, which is why MTM
		// performs like move_pages for write-intensive regions (§9.5).
		rep.SwitchedToSync = true
		firstWrite := 1.0
		if expWrites > 1 {
			firstWrite = 1 / expWrites
		}
		done := e.Rng.Float64() * firstWrite
		dirtyFrac := 0.25 * done // already-copied pages dirtied meanwhile
		crit.DirtyTrack += DirtyFaultCost
		syncBW := linkBW(e, srcNode, dst)
		if SingleThreadCopyBW < syncBW {
			syncBW = SingleThreadCopyBW
		}
		syncCopy := time.Duration(n4k)*CopyPerPTE + copyTime(bytes, syncBW)
		crit.Copy = time.Duration(float64(syncCopy) * (1 - done + dirtyFrac))
		crit.Alloc = 0 // allocation had completed in the background
		rep.ExtraCopyBytes = int64(float64(bytes) * dirtyFrac)
		rep.Background = time.Duration(float64(alloc) + float64(cp)*done)
	} else {
		rep.Background = alloc + cp
	}
	rep.Critical = crit.Total()
	rep.CriticalSteps = crit
	e.ChargeMigration(rep.Critical)
	e.ChargeBackground(rep.Background)
	if rep.ExtraCopyBytes > 0 {
		e.Sys.RecordTransfer(srcNode, rep.ExtraCopyBytes)
		e.Sys.RecordTransfer(dst, rep.ExtraCopyBytes)
	}
	return rep
}
