package migrate

import (
	"testing"
	"time"

	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

type nullSolution struct{ node tier.NodeID }

func (n *nullSolution) Name() string { return "null" }
func (n *nullSolution) Place(e *sim.Engine, v *vm.VMA, idx, socket int) tier.NodeID {
	return n.node
}
func (*nullSolution) IntervalStart(*sim.Engine) {}
func (*nullSolution) IntervalEnd(*sim.Engine)   {}

// setup creates an engine with a VMA of n huge pages resident on src.
func setup(t *testing.T, nPages int, src tier.NodeID) (*sim.Engine, *vm.VMA) {
	t.Helper()
	e := sim.NewEngine(tier.OptaneTopology(64), 1)
	e.Interval = time.Second
	e.SetSolution(&nullSolution{node: src})
	v := e.AS.Alloc("m", int64(nPages)*vm.HugePageSize)
	e.Sys.ResetWindow(e.Interval)
	for i := 0; i < nPages; i++ {
		e.Access(v, i, 1, 0, 0)
		if v.Node(i) != src {
			t.Fatalf("setup: page %d on %d, want %d", i, v.Node(i), src)
		}
	}
	return e, v
}

func TestMovePagesRebinds(t *testing.T) {
	e, v := setup(t, 4, 2)
	rep := MovePages{}.Migrate(e, v, 0, 4, 0, 0)
	if rep.MovedPages != 4 || rep.Bytes != 4*vm.HugePageSize {
		t.Fatalf("moved %d pages / %d bytes", rep.MovedPages, rep.Bytes)
	}
	for i := 0; i < 4; i++ {
		if v.Node(i) != 0 {
			t.Fatalf("page %d not moved", i)
		}
	}
	if e.Sys.Used(2) != 0 || e.Sys.Used(0) != 4*vm.HugePageSize {
		t.Fatal("capacity accounting wrong after migration")
	}
	if rep.Critical == 0 || rep.Background != 0 {
		t.Fatalf("move_pages must be fully synchronous: %v/%v", rep.Critical, rep.Background)
	}
}

func TestMovePagesStepShares(t *testing.T) {
	e, v := setup(t, 1, 0)
	rep := MovePages{}.Migrate(e, v, 0, 1, 3, 0) // fastest -> slowest, 2MB
	st := rep.CriticalSteps
	// §7.1: copying is the most time-consuming step (~40% of the total
	// for fastest-to-slowest in Figure 3; exact shares vary by pair).
	frac := float64(st.Copy) / float64(st.Total())
	if frac < 0.30 || frac > 0.90 {
		t.Fatalf("copy share = %.2f, want dominant (~0.4+)", frac)
	}
	if st.Alloc == 0 || st.Unmap == 0 || st.Remap == 0 || st.PageTable == 0 {
		t.Fatalf("missing step costs: %+v", st)
	}
}

func TestMaxPagesCap(t *testing.T) {
	e, v := setup(t, 8, 2)
	rep := MovePages{}.Migrate(e, v, 0, 8, 0, 3)
	if rep.MovedPages != 3 {
		t.Fatalf("moved %d, want 3", rep.MovedPages)
	}
}

func TestSkipsPagesAlreadyOnDst(t *testing.T) {
	e, v := setup(t, 4, 2)
	e.MovePage(v, 1, 0)
	rep := Nimble{}.Migrate(e, v, 0, 4, 0, 0)
	if rep.MovedPages != 3 {
		t.Fatalf("moved %d, want 3 (one already there)", rep.MovedPages)
	}
}

func TestStopsWhenDstFull(t *testing.T) {
	e, v := setup(t, 8, 2)
	free := e.Sys.Free(0)
	fits := int(free / vm.HugePageSize)
	if fits >= 8 {
		// Fill node 0 so only 2 pages fit.
		e.Sys.Reserve(0, free-2*vm.HugePageSize)
		fits = 2
	}
	rep := MovePages{}.Migrate(e, v, 0, 8, 0, 0)
	if rep.MovedPages != fits {
		t.Fatalf("moved %d, want %d", rep.MovedPages, fits)
	}
}

func TestNimbleFasterThanMovePages(t *testing.T) {
	e1, v1 := setup(t, 16, 2)
	r1 := MovePages{}.Migrate(e1, v1, 0, 16, 0, 0)
	e2, v2 := setup(t, 16, 2)
	r2 := Nimble{}.Migrate(e2, v2, 0, 16, 0, 0)
	if r2.Critical >= r1.Critical {
		t.Fatalf("Nimble (%v) not faster than move_pages (%v)", r2.Critical, r1.Critical)
	}
}

func TestAdaptiveAsyncReadOnly(t *testing.T) {
	e, v := setup(t, 16, 2)
	m := NewAdaptive()
	m.WriteRate = 0 // read-only region: async must stick
	rep := m.Migrate(e, v, 0, 16, 0, 0)
	if rep.SwitchedToSync {
		t.Fatal("read-only migration switched to sync")
	}
	if rep.CriticalSteps.Copy != 0 || rep.CriticalSteps.Alloc != 0 {
		t.Fatal("async migration left copy/alloc on the critical path")
	}
	if rep.Background == 0 {
		t.Fatal("async migration did no background work")
	}
	sync := &Adaptive{ForceSync: true}
	e2, v2 := setup(t, 16, 2)
	rep2 := sync.Migrate(e2, v2, 0, 16, 0, 0)
	if rep.Critical >= rep2.Critical {
		t.Fatalf("async critical (%v) not below sync (%v)", rep.Critical, rep2.Critical)
	}
}

// TestAsyncSpeedup checks the §7.2 headline: move_memory_regions() is
// several times faster than move_pages() for a read-only 2MB region
// (4.37x in the paper).
func TestAsyncSpeedup(t *testing.T) {
	e1, v1 := setup(t, 1, 0)
	mp := MovePages{}.Migrate(e1, v1, 0, 1, 3, 0)
	e2, v2 := setup(t, 1, 0)
	m := NewAdaptive()
	m.WriteRate = 0
	mmr := m.Migrate(e2, v2, 0, 1, 3, 0)
	speedup := float64(mp.Critical) / float64(mmr.Critical)
	if speedup < 2 {
		t.Fatalf("speedup = %.2fx, want >2x (paper: 4.37x)", speedup)
	}
}

func TestAdaptiveSwitchesOnWrites(t *testing.T) {
	m := NewAdaptive()
	m.WriteRate = 1e9 // writes certain during the copy window
	e, v := setup(t, 16, 2)
	rep := m.Migrate(e, v, 0, 16, 0, 0)
	if !rep.SwitchedToSync {
		t.Fatal("write-hot migration did not switch to sync")
	}
	if rep.CriticalSteps.DirtyTrack < DirtyFaultCost {
		t.Fatalf("dirty fault not charged: %v", rep.CriticalSteps.DirtyTrack)
	}
	if rep.CriticalSteps.Copy == 0 {
		t.Fatal("sync fallback must expose copy on the critical path")
	}
}

func TestAdaptiveDerivesWriteRate(t *testing.T) {
	e, v := setup(t, 4, 2)
	// Hammer writes so the ground-truth write counters force a switch.
	for i := 0; i < 4; i++ {
		e.Access(v, i, 1<<20, 1<<20, 0)
	}
	m := NewAdaptive() // WriteRate < 0: derive from counters
	rep := m.Migrate(e, v, 0, 4, 0, 0)
	if !rep.SwitchedToSync {
		t.Fatal("heavily written region did not switch to sync")
	}
}

func TestMigrateEmptySpan(t *testing.T) {
	e, v := setup(t, 4, 2)
	rep := NewAdaptive().Migrate(e, v, 2, 2, 0, 0)
	if rep.MovedPages != 0 || rep.Critical != 0 {
		t.Fatalf("empty span migrated: %+v", rep)
	}
}

func TestWriteIntensiveParity(t *testing.T) {
	// §9.5: for write-intensive pages MTM performs similar to
	// move_pages (within ~10%).
	e1, v1 := setup(t, 16, 0)
	mp := MovePages{}.Migrate(e1, v1, 0, 16, 2, 0)
	e2, v2 := setup(t, 16, 0)
	m := NewAdaptive()
	m.WriteRate = 1e9
	ad := m.Migrate(e2, v2, 0, 16, 2, 0)
	ratio := float64(ad.Critical) / float64(mp.Critical)
	if ratio > 1.35 {
		t.Fatalf("write-intensive adaptive %.2fx move_pages, want parity-ish", ratio)
	}
}

func TestMigrationConsumesBandwidth(t *testing.T) {
	e, v := setup(t, 8, 2)
	before := e.Sys.Demand(0)
	MovePages{}.Migrate(e, v, 0, 8, 0, 0)
	moved := int64(8) * vm.HugePageSize
	if got := e.Sys.Demand(0) - before; got < moved {
		t.Fatalf("destination demand rose by %d, want >= %d", got, moved)
	}
	if e.Sys.Demand(2) < moved {
		t.Fatalf("source demand %d, want >= %d", e.Sys.Demand(2), moved)
	}
}

func TestAdaptiveFirstWriteBoundsAsyncProgress(t *testing.T) {
	// Under certain writes the async prefix must be small: critical copy
	// close to the full synchronous cost.
	m := NewAdaptive()
	m.WriteRate = 1e12
	e, v := setup(t, 16, 0)
	rep := m.Migrate(e, v, 0, 16, 2, 0)
	e2, v2 := setup(t, 16, 0)
	mp := MovePages{}.Migrate(e2, v2, 0, 16, 2, 0)
	if rep.CriticalSteps.Copy < mp.CriticalSteps.Copy*8/10 {
		t.Fatalf("write-storm async copy %v escaped sync cost %v", rep.CriticalSteps.Copy, mp.CriticalSteps.Copy)
	}
}
