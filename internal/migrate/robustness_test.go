package migrate

import (
	"testing"
	"time"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

// stubFaults is a deterministic sim.FaultPlane for tests: busyLeft maps a
// page index to how many consecutive copy attempts fail (-1 = always).
type stubFaults struct {
	busyLeft map[int]int
	penalty  time.Duration
	bwFactor float64
	pressure map[tier.NodeID]bool
}

func (s *stubFaults) Attach(sockets, nodes int) {}
func (s *stubFaults) BeginInterval(int)         {}
func (s *stubFaults) PageBusy(v *vm.VMA, idx int, dst tier.NodeID) (bool, time.Duration) {
	n := s.busyLeft[idx]
	if n == 0 {
		return false, 0
	}
	if n > 0 {
		s.busyLeft[idx] = n - 1
	}
	return true, s.penalty
}
func (s *stubFaults) DestPressure(n tier.NodeID) bool { return s.pressure[n] }
func (s *stubFaults) SampleDropFrac() float64         { return 0 }
func (s *stubFaults) LinkBWFactor(socket int, n tier.NodeID) float64 {
	if s.bwFactor > 1 {
		return s.bwFactor
	}
	return 1
}

func TestAbortRollsBackAccounting(t *testing.T) {
	e, v := setup(t, 4, 2)
	e.SetFaultPlane(&stubFaults{
		busyLeft: map[int]int{0: -1, 1: -1, 2: -1, 3: -1},
		penalty:  time.Microsecond,
	})
	usedSrc, usedDst := e.Sys.Used(2), e.Sys.Used(0)
	rep := MovePages{}.Migrate(e, v, 0, 4, 0, 0)
	if rep.MovedPages != 0 || rep.Aborts != 4 {
		t.Fatalf("moved=%d aborts=%d, want 0/4", rep.MovedPages, rep.Aborts)
	}
	if e.Sys.Used(2) != usedSrc || e.Sys.Used(0) != usedDst {
		t.Fatal("aborted transactions leaked capacity")
	}
	for i := 0; i < 4; i++ {
		if v.Node(i) != 2 {
			t.Fatalf("page %d rebound despite abort", i)
		}
	}
	// MaxAttempts 5 per page: 4 retries each, one wasted page copy each.
	if rep.Retries != 16 || e.MigrationRetries != 16 || e.MigrationAborts != 4 {
		t.Fatalf("retries=%d/%d aborts=%d", rep.Retries, e.MigrationRetries, e.MigrationAborts)
	}
	if rep.WastedBytes != 4*vm.HugePageSize || e.WastedBytes != 4*vm.HugePageSize {
		t.Fatalf("wasted bytes = %d/%d", rep.WastedBytes, e.WastedBytes)
	}
	if rep.RetryPenalty == 0 || rep.Critical != rep.RetryPenalty {
		t.Fatalf("wasted work not charged: penalty=%v critical=%v", rep.RetryPenalty, rep.Critical)
	}
}

func TestRetrySucceedsWithBackoffCharged(t *testing.T) {
	e, v := setup(t, 2, 2)
	e.SetFaultPlane(&stubFaults{busyLeft: map[int]int{0: 2}, penalty: time.Microsecond})
	rep := MovePages{}.Migrate(e, v, 0, 2, 0, 0)
	if rep.MovedPages != 2 || rep.Aborts != 0 || rep.Retries != 2 {
		t.Fatalf("moved=%d aborts=%d retries=%d", rep.MovedPages, rep.Aborts, rep.Retries)
	}
	// Two busy attempts on page 0: 2x penalty plus backoffs 5 µs and 10 µs.
	want := 2*time.Microsecond + DefaultRetry.Backoff(1) + DefaultRetry.Backoff(2)
	if rep.RetryPenalty != want {
		t.Fatalf("retry penalty = %v, want %v", rep.RetryPenalty, want)
	}
	// The penalty rides on the critical path.
	e2, v2 := setup(t, 2, 2)
	clean := MovePages{}.Migrate(e2, v2, 0, 2, 0, 0)
	if rep.Critical != clean.Critical+want {
		t.Fatalf("critical %v, want clean %v + penalty %v", rep.Critical, clean.Critical, want)
	}
}

func TestBackoffCapped(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 10, BaseBackoff: 5 * time.Microsecond, MaxBackoff: 20 * time.Microsecond}
	for n, want := range map[int]time.Duration{
		1: 5 * time.Microsecond,
		2: 10 * time.Microsecond,
		3: 20 * time.Microsecond,
		4: 20 * time.Microsecond,
		9: 20 * time.Microsecond,
	} {
		if got := p.Backoff(n); got != want {
			t.Fatalf("Backoff(%d) = %v, want %v", n, got, want)
		}
	}
}

// TestRetryPolicyBoundaries pins the Backoff/norm boundary behaviour the
// rebind loop relies on: the virtual-time sequence it charges must stay
// stable across refactors.
func TestRetryPolicyBoundaries(t *testing.T) {
	// DefaultRetry's charged sequence: 5, 10, 20, 40, 80, then pinned at
	// the 80 µs cap.
	want := []time.Duration{
		5 * time.Microsecond, 10 * time.Microsecond, 20 * time.Microsecond,
		40 * time.Microsecond, 80 * time.Microsecond, 80 * time.Microsecond,
	}
	for i, w := range want {
		if got := DefaultRetry.Backoff(i + 1); got != w {
			t.Fatalf("DefaultRetry.Backoff(%d) = %v, want %v", i+1, got, w)
		}
	}

	// n=1 is the first failed attempt: exactly BaseBackoff, no doubling.
	p := RetryPolicy{MaxAttempts: 3, BaseBackoff: 7 * time.Microsecond, MaxBackoff: 100 * time.Microsecond}
	if got := p.Backoff(1); got != 7*time.Microsecond {
		t.Fatalf("Backoff(1) = %v, want BaseBackoff", got)
	}

	// Cap saturation: once the doubled value reaches MaxBackoff it stays
	// there for every later attempt (no overflow, no oscillation).
	sat := RetryPolicy{MaxAttempts: 64, BaseBackoff: time.Microsecond, MaxBackoff: 8 * time.Microsecond}
	for n := 4; n <= 64; n += 15 {
		if got := sat.Backoff(n); got != 8*time.Microsecond {
			t.Fatalf("Backoff(%d) = %v, want saturated cap", n, got)
		}
	}

	// The zero value resolves to DefaultRetry wholesale.
	if got := (RetryPolicy{}).norm(); got != DefaultRetry {
		t.Fatalf("zero-value norm() = %+v, want DefaultRetry", got)
	}
	// A set MaxAttempts with zero durations inherits the default backoffs.
	got := RetryPolicy{MaxAttempts: 2}.norm()
	if got.MaxAttempts != 2 || got.BaseBackoff != DefaultRetry.BaseBackoff {
		t.Fatalf("partial norm() = %+v", got)
	}

	// MaxBackoff below BaseBackoff collapses to a constant backoff at
	// BaseBackoff — never a cap below the base, never zero.
	inv := RetryPolicy{MaxAttempts: 5, BaseBackoff: 10 * time.Microsecond, MaxBackoff: 2 * time.Microsecond}.norm()
	if inv.MaxBackoff != inv.BaseBackoff {
		t.Fatalf("inverted norm() = %+v, want MaxBackoff == BaseBackoff", inv)
	}
	for n := 1; n <= 5; n++ {
		if got := inv.Backoff(n); got != 10*time.Microsecond {
			t.Fatalf("inverted Backoff(%d) = %v, want constant BaseBackoff", n, got)
		}
	}
}

func TestMaxPagesCapCountsAbortedAttempts(t *testing.T) {
	// The cap is a work budget: pages that abort still consume it, like
	// the kernel's nr_pages under repeated EBUSY.
	e, v := setup(t, 8, 2)
	e.SetFaultPlane(&stubFaults{busyLeft: map[int]int{0: -1, 1: -1}})
	rep := MovePages{}.Migrate(e, v, 0, 8, 0, 3)
	if rep.Aborts != 2 || rep.MovedPages != 1 {
		t.Fatalf("aborts=%d moved=%d, want 2/1", rep.Aborts, rep.MovedPages)
	}
	if v.Node(2) != 0 || v.Node(3) != 2 {
		t.Fatal("wrong pages moved under capped retry budget")
	}
}

func TestMixedSourceWeightedCopyTime(t *testing.T) {
	// Two pages on node 2 and two on node 1 migrating to node 0 must
	// charge each source's bytes at its own pair bandwidth, not the first
	// page's link for everything.
	e, v := setup(t, 4, 2)
	if !e.MovePage(v, 2, 1) || !e.MovePage(v, 3, 1) {
		t.Fatal("setup moves failed")
	}
	rep := MovePages{}.Migrate(e, v, 0, 4, 0, 0)
	if rep.MovedPages != 4 {
		t.Fatalf("moved %d, want 4", rep.MovedPages)
	}
	bytesPerSrc := int64(2) * vm.HugePageSize
	expect := time.Duration(rep.Bytes/vm.BasePageSize) * CopyPerPTE
	for _, src := range []tier.NodeID{1, 2} {
		bw := pairBW(e, src, 0)
		if SingleThreadCopyBW < bw {
			bw = SingleThreadCopyBW
		}
		expect += copyTime(bytesPerSrc, bw)
	}
	if rep.CriticalSteps.Copy != expect {
		t.Fatalf("copy = %v, want weighted %v", rep.CriticalSteps.Copy, expect)
	}
}

func TestDstFullPartialMoveExactAccounting(t *testing.T) {
	e, v := setup(t, 8, 2)
	free := e.Sys.Free(0)
	if free < 2*vm.HugePageSize {
		t.Skipf("node 0 too small: %d", free)
	}
	e.Sys.Reserve(0, free-2*vm.HugePageSize)
	srcUsed := e.Sys.Used(2)
	rep := MovePages{}.Migrate(e, v, 0, 8, 0, 0)
	if rep.MovedPages != 2 {
		t.Fatalf("moved %d, want 2", rep.MovedPages)
	}
	if e.Sys.Free(0) != 0 {
		t.Fatalf("destination free = %d, want 0", e.Sys.Free(0))
	}
	if got := srcUsed - e.Sys.Used(2); got != 2*vm.HugePageSize {
		t.Fatalf("source released %d, want exactly two huge pages", got)
	}
	for i := 0; i < 8; i++ {
		want := tier.NodeID(2)
		if i < 2 {
			want = 0
		}
		if v.Node(i) != want {
			t.Fatalf("page %d on %d, want %d", i, v.Node(i), want)
		}
	}
}

func TestLinkDegradeSlowsCopy(t *testing.T) {
	e, v := setup(t, 8, 2)
	clean := MovePages{}.Migrate(e, v, 0, 8, 0, 0)
	e2, v2 := setup(t, 8, 2)
	e2.SetFaultPlane(&stubFaults{bwFactor: 64})
	slow := MovePages{}.Migrate(e2, v2, 0, 8, 0, 0)
	if slow.CriticalSteps.Copy <= clean.CriticalSteps.Copy {
		t.Fatalf("degraded copy %v not slower than clean %v", slow.CriticalSteps.Copy, clean.CriticalSteps.Copy)
	}
}

func TestNoFaultPlaneReportsCleanRobustness(t *testing.T) {
	e, v := setup(t, 4, 2)
	rep := NewAdaptive().Migrate(e, v, 0, 4, 0, 0)
	if rep.Retries != 0 || rep.Aborts != 0 || rep.WastedBytes != 0 || rep.RetryPenalty != 0 {
		t.Fatalf("clean run reported robustness events: %+v", rep)
	}
}
