// Shadow-flip demotion: the zero-copy path of non-exclusive tiering
// (Nomad). A clean page whose slow-tier shadow frame is still valid
// demotes by remapping onto the shadow — no allocation, no unmap of a
// frame that must survive, no copy; only the remap and page-table steps
// of §7.1 are paid.
package migrate

import (
	"math/bits"
	"time"

	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/vm"
)

// FlipPerPTE is the per-4KB-PTE cost of a shadow-flip demotion: the
// remap plus page-table update steps. The allocate, unmap, and copy
// steps of a full move (and its bandwidth) are never paid.
const FlipPerPTE = RemapPerPTE + PTPerPTE

// FlipCost returns the critical-path metadata cost of flipping bytes
// worth of pages (THP split: per-4KB-PTE work, like the copy paths).
func FlipCost(bytes int64) time.Duration {
	return time.Duration(bytes/vm.BasePageSize) * FlipPerPTE
}

// FlipSpan demotes every valid-shadow page of [start, end) of v via
// Engine.FlipDemote, up to maxPages pages (maxPages <= 0 means no cap).
// Pages without a valid shadow — or whose flip the engine refuses
// (thrash cool-down, unusable shadow node) — are left for the caller's
// copy path. The flips' metadata cost is charged to critical-path
// migration time; no copy bytes move and no bandwidth is recorded.
func FlipSpan(e *sim.Engine, v *vm.VMA, start, end int, maxPages int) Report {
	var rep Report
	spanning := e.SpansEnabled()
	if spanning {
		e.SpanBegin("migration", "shadow-flip",
			span.S("vma", v.Name),
			span.I("page_start", int64(start)),
			span.I("page_end", int64(end)),
			span.I("max_pages", int64(maxPages)))
	}
	for w := start / vm.WordPages; w*vm.WordPages < end; w++ {
		word := v.ShadowValidRangeWord(w, start, end)
		for word != 0 {
			i := w*vm.WordPages + bits.TrailingZeros64(word)
			word &= word - 1
			if maxPages > 0 && rep.MovedPages >= maxPages {
				break
			}
			if _, ok := e.FlipDemote(v, i); ok {
				rep.MovedPages++
				rep.Bytes += v.PageSize
			}
		}
		if maxPages > 0 && rep.MovedPages >= maxPages {
			break
		}
	}
	if rep.Bytes > 0 {
		n4k := rep.Bytes / vm.BasePageSize
		rep.CriticalSteps = Steps{
			Remap:     time.Duration(n4k) * RemapPerPTE,
			PageTable: time.Duration(n4k) * PTPerPTE,
		}
		rep.Critical = rep.CriticalSteps.Total()
		e.ChargeMigration(rep.Critical)
	}
	if spanning {
		e.SpanEnd(
			span.I("moved_pages", int64(rep.MovedPages)),
			span.I("bytes", rep.Bytes),
			span.I("critical_ns", int64(rep.Critical)))
	}
	return rep
}
