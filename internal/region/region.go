// Package region implements MTM's memory regions (§5): contiguous spans of
// a VMA that are profiled as a unit, merged when neighbours show similar
// hotness, split when sampled pages inside disagree, and ranked for
// migration through an exponential moving average of their hotness
// indication. Splits are huge-page aware (§5.4): a split point is moved to
// the nearest huge-page boundary so one huge page is never profiled in two
// regions.
package region

import (
	"cmp"
	"fmt"
	"slices"

	"mtm/internal/vm"
)

// Region is one profiling unit: pages [Start, End) of a VMA.
type Region struct {
	ID    uint64
	V     *vm.VMA
	Start int // inclusive page index
	End   int // exclusive page index

	// Quota is the number of page samples assigned for the next
	// profiling interval (>= 1 for actively profiled regions).
	Quota int
	// Samples are the page indices scanned last interval.
	Samples []int
	// Observed are the per-sample multi-scan observation counts from the
	// last interval, parallel to Samples.
	Observed []int

	// HI is the hotness indication of the last interval: the average
	// observed count over the region's samples (§5.1).
	HI float64
	// PrevHI is the HI of the interval before, for variance tracking.
	PrevHI float64
	// WHI is the exponential moving average of HI (Equation 2).
	WHI float64
	// Sampled reports whether the region was profiled last interval; an
	// unprofiled region keeps its previous WHI.
	Sampled bool

	// Generation-stamped scratch. Stamps let per-interval bookkeeping live
	// on the region itself instead of in per-interval maps: a reader
	// presents its current generation, and a stale stamp (from a previous
	// interval or a previous histogram) simply reads as "not set". This is
	// what makes histogram rebucketing and the profiler's selection set
	// allocation-free.
	profGen uint32 // generation of profSel (see SetProfiled)
	profSel bool   // selected for PTE scans in generation profGen
	hgen    uint32 // generation of hbucket (see Histogram)
	hbucket int32  // histogram bucket holding the region in generation hgen
}

// SetProfiled records whether the profiler selected the region for PTE
// scans in profiling generation gen.
func (r *Region) SetProfiled(gen uint32, on bool) {
	r.profGen, r.profSel = gen, on
}

// ProfiledIn reports whether the region was selected in generation gen;
// regions stamped by an older generation (e.g. pointers surviving a
// merge/split rebuild) read as not selected.
func (r *Region) ProfiledIn(gen uint32) bool {
	return r.profGen == gen && r.profSel
}

// Pages returns the region length in pages.
func (r *Region) Pages() int { return r.End - r.Start }

// Bytes returns the region length in bytes.
func (r *Region) Bytes() int64 { return int64(r.Pages()) * r.V.PageSize }

// Variance is the absolute change in hotness indication across the last
// two profiling intervals; large values mean a changing access pattern and
// attract extra sample quota (§5.2).
func (r *Region) Variance() float64 {
	d := r.HI - r.PrevHI
	if d < 0 {
		d = -d
	}
	return d
}

// SpreadObserved returns the max-min difference of the last interval's
// observed counts, the split criterion of §5.1.
func (r *Region) SpreadObserved() int {
	if len(r.Observed) == 0 {
		return 0
	}
	mn, mx := r.Observed[0], r.Observed[0]
	for _, o := range r.Observed[1:] {
		if o < mn {
			mn = o
		}
		if o > mx {
			mx = o
		}
	}
	return mx - mn
}

// UpdateEMA folds the latest HI into WHI with weight alpha (Equation 2).
func (r *Region) UpdateEMA(alpha float64) {
	r.WHI = alpha*r.HI + (1-alpha)*r.WHI
}

func (r *Region) String() string {
	return fmt.Sprintf("R%d{%s[%d:%d) HI=%.2f WHI=%.2f q=%d}", r.ID, r.V.Name, r.Start, r.End, r.HI, r.WHI, r.Quota)
}

// Set is the ordered collection of regions covering an address space,
// with the merge/split machinery and formation statistics.
type Set struct {
	// TauM and TauS are the merge and split thresholds of §5.1, in units
	// of observed scan counts (range [0, NumScans]).
	TauM, TauS float64
	// NumScans is the scans-per-sampled-PTE constant (3 by default).
	NumScans int
	// Alpha is the EMA weight used when a split re-derives a half's
	// WHI from its own samples (matches the profiler's Equation 2 α).
	Alpha float64
	// MaxMergePages caps a merged region's size (0 = unlimited). A cap
	// keeps one merge pass from chaining the address space into blobs a
	// split pass (which only halves once per interval) cannot recover
	// from, and bounds migration granularity.
	MaxMergePages int

	regions []*Region // address-ordered
	nextID  uint64

	// Retired backing arrays of previous merge/split rebuilds, reused as
	// the out-buffers of the next passes so steady-state formation does
	// not reallocate the region table every interval. Three arrays rotate
	// through regions/mergeSpare/splitSpare; the array being appended to
	// is never the one being read.
	mergeSpare []*Region
	splitSpare []*Region

	// Formation statistics (Table 7).
	Merged             int64
	Split              int64
	MergedThisInterval int64
	SplitThisInterval  int64
}

// DefaultNumScans is the paper's num_scans constant.
const DefaultNumScans = 3

// NewSet creates an empty set with the paper's default thresholds:
// τm = num_scans/3, τs = 2·num_scans/3.
func NewSet(numScans int) *Set {
	if numScans <= 0 {
		numScans = DefaultNumScans
	}
	return &Set{
		NumScans:      numScans,
		TauM:          float64(numScans) / 3,
		TauS:          2 * float64(numScans) / 3,
		Alpha:         0.5,
		MaxMergePages: 128,
	}
}

// InitVMA carves a VMA into initial regions of regionBytes (2 MB default,
// the span of one last-level page-directory entry) and appends them.
func (s *Set) InitVMA(v *vm.VMA, regionBytes int64) {
	if regionBytes < v.PageSize {
		regionBytes = v.PageSize
	}
	per := int(regionBytes / v.PageSize)
	for start := 0; start < v.NPages; start += per {
		end := start + per
		if end > v.NPages {
			end = v.NPages
		}
		s.append(&Region{V: v, Start: start, End: end, Quota: 1})
	}
}

func (s *Set) append(r *Region) {
	r.ID = s.nextID
	s.nextID++
	s.regions = append(s.regions, r)
}

// Regions returns the regions in address order; callers must not mutate
// the slice structure (the set owns it).
func (s *Set) Regions() []*Region { return s.regions }

// NewRegion creates a region with a fresh ID without inserting it; use
// Replace to install a rebuilt region list. Profiler-specific formation
// steps (e.g. DAMON's random split) build regions this way.
func (s *Set) NewRegion(r Region) *Region {
	n := r
	n.ID = s.nextID
	s.nextID++
	return &n
}

// Replace swaps in a rebuilt region list and restores address order.
func (s *Set) Replace(regions []*Region) {
	s.regions = regions
	s.sortByAddr()
}

// Len returns the number of regions.
func (s *Set) Len() int { return len(s.regions) }

// TotalQuota sums the sample quotas of all regions.
func (s *Set) TotalQuota() int {
	t := 0
	for _, r := range s.regions {
		t += r.Quota
	}
	return t
}

// BeginInterval resets per-interval formation counters.
func (s *Set) BeginInterval() {
	s.MergedThisInterval = 0
	s.SplitThisInterval = 0
}

// MergePass merges adjacent regions of the same VMA whose hotness
// indications differ by less than tauM (§5.1) in both the most recent
// interval (HI) and the time-smoothed view (WHI) — the EMA requirement
// keeps a hot region whose latest sample happened to read cold from being
// absorbed into a cold neighbour. The merged region's quota is the halved
// sum of the pair's quotas, at least 1; the freed quota is returned for
// redistribution (§5.2).
func (s *Set) MergePass(tauM float64) (freedQuota int) {
	if len(s.regions) < 2 {
		return 0
	}
	out := s.mergeSpare[:0]
	cur := s.regions[0]
	for _, next := range s.regions[1:] {
		if cur.V == next.V && cur.End == next.Start && cur.Sampled && next.Sampled &&
			absDiff(cur.HI, next.HI) < tauM &&
			absDiff(cur.WHI, next.WHI) < tauM &&
			(s.MaxMergePages <= 0 || cur.Pages()+next.Pages() <= s.MaxMergePages) {
			sum := cur.Quota + next.Quota
			newQuota := sum / 2
			if newQuota < 1 {
				newQuota = 1
			}
			freedQuota += sum - newQuota
			cur = s.NewRegion(Region{
				V:     cur.V,
				Start: cur.Start,
				End:   next.End,
				Quota: newQuota,
				// Size-weighted hotness so a follow-up merge test
				// remains meaningful.
				HI:      (cur.HI*float64(cur.Pages()) + next.HI*float64(next.Pages())) / float64(cur.Pages()+next.Pages()),
				PrevHI:  (cur.PrevHI + next.PrevHI) / 2,
				WHI:     (cur.WHI*float64(cur.Pages()) + next.WHI*float64(next.Pages())) / float64(cur.Pages()+next.Pages()),
				Sampled: true,
			})
			s.Merged++
			s.MergedThisInterval++
			continue
		}
		out = append(out, cur)
		cur = next
	}
	out = append(out, cur)
	s.mergeSpare = s.regions[:0]
	s.regions = out
	return freedQuota
}

// maxSplitDepth bounds recursive splitting within one interval.
const maxSplitDepth = 6

// SplitPass splits every region whose sampled pages disagree by more than
// tauS (§5.1). Splitting is guided, not random: the region halves at a
// huge-page-aligned midpoint (§5.4), each half recomputes its hotness
// from its own samples, and halves that still disagree split again within
// the same pass (up to maxSplitDepth). This is what lets a hot block be
// carved out of a large mixed region within one profiling interval — the
// responsiveness §3 finds missing in DAMON's one-random-split-per-pass.
func (s *Set) SplitPass(tauS float64) {
	out := s.splitSpare[:0]
	for _, r := range s.regions {
		s.splitRec(r, tauS, 0, &out)
	}
	s.splitSpare = s.regions[:0]
	s.regions = out
	s.sortByAddr()
}

func (s *Set) splitRec(r *Region, tauS float64, depth int, out *[]*Region) {
	if depth >= maxSplitDepth || !r.Sampled || r.Pages() < 2 ||
		len(r.Samples) < 2 || float64(r.SpreadObserved()) <= tauS {
		*out = append(*out, r)
		return
	}
	mid := s.splitPoint(r)
	if mid <= r.Start || mid >= r.End {
		*out = append(*out, r)
		return
	}
	a := s.NewRegion(Region{V: r.V, Start: r.Start, End: mid, Sampled: true, PrevHI: r.PrevHI})
	b := s.NewRegion(Region{V: r.V, Start: mid, End: r.End, Sampled: true, PrevHI: r.PrevHI})
	// Partition the parent's samples and quota between the halves, and
	// re-derive each half's hotness from its own evidence.
	for i, p := range r.Samples {
		if p < mid {
			a.Samples = append(a.Samples, p)
			a.Observed = append(a.Observed, r.Observed[i])
		} else {
			b.Samples = append(b.Samples, p)
			b.Observed = append(b.Observed, r.Observed[i])
		}
	}
	for _, h := range []*Region{a, b} {
		h.Quota = r.Quota * h.Pages() / r.Pages()
		if h.Quota < 1 {
			h.Quota = 1
		}
		if len(h.Observed) > 0 {
			sum := 0
			for _, o := range h.Observed {
				sum += o
			}
			h.HI = float64(sum) / float64(len(h.Observed))
		} else {
			h.HI = r.HI
		}
		// Approximate the EMA the half would have: re-blend its own HI
		// into the parent's history.
		h.WHI = s.Alpha*h.HI + (1-s.Alpha)*r.WHI
	}
	s.Split++
	s.SplitThisInterval++
	s.splitRec(a, tauS, depth+1, out)
	s.splitRec(b, tauS, depth+1, out)
}

// splitPoint picks the midpoint of r aligned so no 2 MB huge page is cut
// in half. For huge-page VMAs every index is already aligned; for 4 KB
// VMAs the midpoint snaps down to a multiple of 512 pages (the VMA base is
// always huge-aligned).
func (s *Set) splitPoint(r *Region) int {
	mid := r.Start + r.Pages()/2
	if r.V.PageSize == vm.HugePageSize {
		return mid
	}
	aligned := mid - mid%vm.HugeRatio
	if aligned <= r.Start {
		aligned = r.Start + vm.HugeRatio
	}
	if aligned >= r.End {
		return mid // sub-huge-page region: equal split is the best we can do
	}
	return aligned
}

func (s *Set) sortByAddr() {
	// (V.Base, Start) pairs are strictly unique across a valid set, so the
	// unstable pattern-defeating quicksort is safe and allocation-free
	// (sort.Slice boxes its closure and reflects; slices.SortFunc does not).
	slices.SortFunc(s.regions, func(a, b *Region) int {
		if a.V.Base != b.V.Base {
			return cmp.Compare(a.V.Base, b.V.Base)
		}
		return cmp.Compare(a.Start, b.Start)
	})
}

// Validate checks the set invariants: regions are address-ordered,
// non-overlapping, non-empty, and cover each VMA without gaps introduced
// by merge/split. It is used by tests and the property suite.
func (s *Set) Validate() error {
	for i, r := range s.regions {
		if r.Start >= r.End {
			return fmt.Errorf("region %d: empty range [%d,%d)", i, r.Start, r.End)
		}
		if r.End > r.V.NPages {
			return fmt.Errorf("region %d: end %d past VMA pages %d", i, r.End, r.V.NPages)
		}
		if i == 0 {
			continue
		}
		p := s.regions[i-1]
		if p.V == r.V {
			if p.End != r.Start {
				return fmt.Errorf("region %d: gap/overlap: prev end %d, start %d", i, p.End, r.Start)
			}
		} else if p.V.Base >= r.V.Base {
			return fmt.Errorf("region %d: VMA order violated", i)
		}
	}
	return nil
}

func absDiff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}
