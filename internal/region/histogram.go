package region

import "sync/atomic"

// histGen hands every histogram a distinct generation for its membership
// stamps (see Histogram). Atomic because independent engines may build
// histograms concurrently in tests; within one engine histogram work is
// serialised.
var histGen atomic.Uint32

// Histogram buckets regions by their WHI (EMA of hotness indication) so
// the migration policy can take regions from the hottest buckets first
// (§6.1). Bucket boundaries are fixed over [0, numScans] — the full range
// a WHI can occupy — so Update rebuckets one region in O(1) in the region
// count (the only non-constant work is the removal scan inside the
// region's old bucket). Membership is tracked by stamping the histogram's
// generation and bucket index onto the region itself instead of a
// region→bucket map: batch construction and rebucketing touch no hash
// machinery, and stamps written by an earlier histogram are simply stale
// under the new generation.
type Histogram struct {
	buckets [][]*Region
	width   float64
	gen     uint32
}

// NewHistogram builds a histogram of the given regions with nbuckets
// buckets spanning [0, maxWHI].
func NewHistogram(regions []*Region, nbuckets int, maxWHI float64) *Histogram {
	if nbuckets <= 0 {
		nbuckets = 16
	}
	if maxWHI <= 0 {
		maxWHI = 1
	}
	h := &Histogram{
		buckets: make([][]*Region, nbuckets),
		width:   maxWHI / float64(nbuckets),
		gen:     histGen.Add(1),
	}
	for _, r := range regions {
		i := h.bucketOf(r.WHI)
		h.buckets[i] = append(h.buckets[i], r)
		r.hgen, r.hbucket = h.gen, int32(i)
	}
	return h
}

// Update rebuckets r after its WHI changed. A region the histogram has
// never seen is inserted. Regions whose WHI stayed within their bucket
// are left untouched; otherwise the removal preserves the old bucket's
// insertion order, so HottestFirst/ColdestFirst stay deterministic.
func (h *Histogram) Update(r *Region) {
	ni := h.bucketOf(r.WHI)
	if r.hgen == h.gen {
		oi := int(r.hbucket)
		if oi == ni {
			return
		}
		b := h.buckets[oi]
		for j, kept := range b {
			if kept == r {
				h.buckets[oi] = append(b[:j], b[j+1:]...)
				break
			}
		}
	}
	h.buckets[ni] = append(h.buckets[ni], r)
	r.hgen, r.hbucket = h.gen, int32(ni)
}

func (h *Histogram) bucketOf(whi float64) int {
	i := int(whi / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Bucket returns the regions in bucket i (0 = coldest).
func (h *Histogram) Bucket(i int) []*Region { return h.buckets[i] }

// HottestFirst returns all regions ordered from the hottest bucket down;
// within a bucket, regions keep insertion (address) order.
func (h *Histogram) HottestFirst() []*Region {
	var out []*Region
	for i := len(h.buckets) - 1; i >= 0; i-- {
		out = append(out, h.buckets[i]...)
	}
	return out
}

// ColdestFirst returns all regions ordered from the coldest bucket up.
func (h *Histogram) ColdestFirst() []*Region {
	var out []*Region
	for i := 0; i < len(h.buckets); i++ {
		out = append(out, h.buckets[i]...)
	}
	return out
}

// TopVariance tracks the K regions with the largest hotness variance seen
// while profiling results stream in (§5.2: K=5, chosen empirically to stay
// lightweight). Freed sample quota is redistributed to these regions.
type TopVariance struct {
	k       int
	regions []*Region
}

// NewTopVariance creates a tracker holding the top k regions.
func NewTopVariance(k int) *TopVariance {
	if k <= 0 {
		k = 5
	}
	return &TopVariance{k: k}
}

// Offer considers region r for the top-K set. A region already in the set
// is never admitted twice: duplicate slots would make the quota
// redistribution (§5.2) hand the same region a multiple share.
func (t *TopVariance) Offer(r *Region) {
	for _, kept := range t.regions {
		if kept == r {
			return
		}
	}
	v := r.Variance()
	if len(t.regions) < t.k {
		t.regions = append(t.regions, r)
		t.up()
		return
	}
	// regions[0] holds the smallest variance of the kept set.
	if t.regions[0].Variance() < v {
		t.regions[0] = r
		t.up()
	}
}

// up restores "min at index 0" with a single pass; k is tiny (5).
func (t *TopVariance) up() {
	mi := 0
	for i, r := range t.regions {
		if r.Variance() < t.regions[mi].Variance() {
			mi = i
		}
		_ = r
	}
	t.regions[0], t.regions[mi] = t.regions[mi], t.regions[0]
}

// Regions returns the tracked regions (unordered).
func (t *TopVariance) Regions() []*Region { return t.regions }

// Reset clears the tracker for a new interval.
func (t *TopVariance) Reset() { t.regions = t.regions[:0] }
