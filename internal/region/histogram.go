package region

// Histogram buckets regions by their WHI (EMA of hotness indication) so
// the migration policy can take regions from the hottest buckets first
// (§6.1). Bucket boundaries are fixed over [0, numScans] — the full range
// a WHI can occupy — so the structure needs only an O(1) update when one
// region's WHI changes.
type Histogram struct {
	buckets [][]*Region
	width   float64
}

// NewHistogram builds a histogram of the given regions with nbuckets
// buckets spanning [0, maxWHI].
func NewHistogram(regions []*Region, nbuckets int, maxWHI float64) *Histogram {
	if nbuckets <= 0 {
		nbuckets = 16
	}
	if maxWHI <= 0 {
		maxWHI = 1
	}
	h := &Histogram{
		buckets: make([][]*Region, nbuckets),
		width:   maxWHI / float64(nbuckets),
	}
	for _, r := range regions {
		i := h.bucketOf(r.WHI)
		h.buckets[i] = append(h.buckets[i], r)
	}
	return h
}

func (h *Histogram) bucketOf(whi float64) int {
	i := int(whi / h.width)
	if i < 0 {
		i = 0
	}
	if i >= len(h.buckets) {
		i = len(h.buckets) - 1
	}
	return i
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Bucket returns the regions in bucket i (0 = coldest).
func (h *Histogram) Bucket(i int) []*Region { return h.buckets[i] }

// HottestFirst returns all regions ordered from the hottest bucket down;
// within a bucket, regions keep insertion (address) order.
func (h *Histogram) HottestFirst() []*Region {
	var out []*Region
	for i := len(h.buckets) - 1; i >= 0; i-- {
		out = append(out, h.buckets[i]...)
	}
	return out
}

// ColdestFirst returns all regions ordered from the coldest bucket up.
func (h *Histogram) ColdestFirst() []*Region {
	var out []*Region
	for i := 0; i < len(h.buckets); i++ {
		out = append(out, h.buckets[i]...)
	}
	return out
}

// TopVariance tracks the K regions with the largest hotness variance seen
// while profiling results stream in (§5.2: K=5, chosen empirically to stay
// lightweight). Freed sample quota is redistributed to these regions.
type TopVariance struct {
	k       int
	regions []*Region
}

// NewTopVariance creates a tracker holding the top k regions.
func NewTopVariance(k int) *TopVariance {
	if k <= 0 {
		k = 5
	}
	return &TopVariance{k: k}
}

// Offer considers region r for the top-K set.
func (t *TopVariance) Offer(r *Region) {
	v := r.Variance()
	if len(t.regions) < t.k {
		t.regions = append(t.regions, r)
		t.up()
		return
	}
	// regions[0] holds the smallest variance of the kept set.
	if t.regions[0].Variance() < v {
		t.regions[0] = r
		t.up()
	}
}

// up restores "min at index 0" with a single pass; k is tiny (5).
func (t *TopVariance) up() {
	mi := 0
	for i, r := range t.regions {
		if r.Variance() < t.regions[mi].Variance() {
			mi = i
		}
		_ = r
	}
	t.regions[0], t.regions[mi] = t.regions[mi], t.regions[0]
}

// Regions returns the tracked regions (unordered).
func (t *TopVariance) Regions() []*Region { return t.regions }

// Reset clears the tracker for a new interval.
func (t *TopVariance) Reset() { t.regions = t.regions[:0] }
