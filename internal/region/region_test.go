package region

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mtm/internal/tier"
	"mtm/internal/vm"
)

func newTestVMA(t *testing.T, mb int64) *vm.VMA {
	t.Helper()
	as := vm.NewAddressSpace()
	return as.Alloc("test", mb*tier.MB)
}

func TestInitVMA(t *testing.T) {
	v := newTestVMA(t, 16) // 8 huge pages
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	if s.Len() != 8 {
		t.Fatalf("regions = %d, want 8", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Regions() {
		if r.Pages() != 1 || r.Quota != 1 {
			t.Fatalf("bad initial region %v", r)
		}
	}
}

func TestInitVMACoarse(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 6*tier.MB) // 3 pages per region, 8 pages total
	if s.Len() != 3 {
		t.Fatalf("regions = %d, want 3 (3+3+2)", s.Len())
	}
	last := s.Regions()[2]
	if last.Pages() != 2 {
		t.Fatalf("tail region pages = %d, want 2", last.Pages())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefaultThresholds(t *testing.T) {
	s := NewSet(3)
	if s.TauM != 1 || s.TauS != 2 {
		t.Fatalf("τm=%v τs=%v, want 1/2", s.TauM, s.TauS)
	}
	s6 := NewSet(6)
	if s6.TauM != 2 || s6.TauS != 4 {
		t.Fatalf("num_scans=6: τm=%v τs=%v, want 2/4", s6.TauM, s6.TauS)
	}
}

func markAll(s *Set, hi func(i int) float64) {
	for i, r := range s.Regions() {
		r.HI = hi(i)
		r.WHI = hi(i)
		r.Sampled = true
	}
}

func TestMergeSimilarNeighbours(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	markAll(s, func(int) float64 { return 0.1 })
	freed := s.MergePass(1.0)
	if s.Len() != 1 {
		t.Fatalf("regions after merge = %d, want 1", s.Len())
	}
	if freed != 7 {
		t.Fatalf("freed quota = %d, want 7 (8 merged to 1)", freed)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Merged != 7 {
		t.Fatalf("merge count = %d, want 7", s.Merged)
	}
}

func TestMergeRespectsHotnessGap(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	// Alternate hot/cold: nothing may merge.
	markAll(s, func(i int) float64 {
		if i%2 == 0 {
			return 3
		}
		return 0
	})
	if s.MergePass(1.0); s.Len() != 8 {
		t.Fatalf("regions = %d, want 8 (no merges)", s.Len())
	}
}

func TestMergeRequiresStableHotness(t *testing.T) {
	v := newTestVMA(t, 8)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	regions := s.Regions()
	// Region 0 is historically hot (WHI 3) but read cold this interval;
	// region 1 is cold. HI matches but WHI must block the merge.
	for _, r := range regions {
		r.Sampled = true
	}
	regions[0].HI, regions[0].WHI = 0, 3
	regions[1].HI, regions[1].WHI = 0, 0
	regions[2].HI, regions[2].WHI = 0, 0
	regions[3].HI, regions[3].WHI = 0, 0
	s.MergePass(1.0)
	if s.Len() != 2 {
		t.Fatalf("regions = %d, want 2 (hot kept apart, 3 cold merged)", s.Len())
	}
}

func TestMergeSizeCap(t *testing.T) {
	v := newTestVMA(t, 32) // 16 pages
	s := NewSet(3)
	s.MaxMergePages = 4
	s.InitVMA(v, 2*tier.MB)
	markAll(s, func(int) float64 { return 0 })
	s.MergePass(1.0)
	for _, r := range s.Regions() {
		if r.Pages() > 4 {
			t.Fatalf("region %v exceeds merge cap", r)
		}
	}
}

func TestMergeDoesNotCrossVMAs(t *testing.T) {
	as := vm.NewAddressSpace()
	a := as.Alloc("a", 4*tier.MB)
	b := as.Alloc("b", 4*tier.MB)
	s := NewSet(3)
	s.InitVMA(a, 2*tier.MB)
	s.InitVMA(b, 2*tier.MB)
	markAll(s, func(int) float64 { return 0 })
	s.MergePass(1.0)
	if s.Len() != 2 {
		t.Fatalf("regions = %d, want 2 (one per VMA)", s.Len())
	}
	for _, r := range s.Regions() {
		if r.Pages() != 2 {
			t.Fatalf("region %v spans VMAs", r)
		}
	}
}

func TestSplitOnSpread(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 16*tier.MB) // one region, 8 pages
	r := s.Regions()[0]
	r.Sampled = true
	r.Samples = []int{0, 1, 2, 3, 4, 5, 6, 7}
	r.Observed = []int{3, 3, 3, 3, 0, 0, 0, 0}
	r.Quota = 8
	s.SplitPass(2.0)
	if s.Len() < 2 {
		t.Fatalf("regions = %d, want >= 2 after split", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// The recursive, sample-partitioned split must leave the hot half
	// hotter than the cold half.
	regions := s.Regions()
	if !(regions[0].HI > regions[len(regions)-1].HI) {
		t.Fatalf("split halves not differentiated: first HI=%v last HI=%v", regions[0].HI, regions[len(regions)-1].HI)
	}
	// Quota is preserved in total (each half gets a proportional share,
	// minimum 1).
	total := 0
	for _, r := range regions {
		total += r.Quota
	}
	if total < 8 {
		t.Fatalf("quota shrank from 8 to %d", total)
	}
}

func TestSplitUniformRegionUntouched(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 16*tier.MB)
	r := s.Regions()[0]
	r.Sampled = true
	r.Samples = []int{1, 3, 5}
	r.Observed = []int{2, 2, 2}
	s.SplitPass(2.0)
	if s.Len() != 1 {
		t.Fatalf("uniform region split into %d", s.Len())
	}
}

func TestSplitHugePageAlignment4K(t *testing.T) {
	as := vm.NewAddressSpace()
	as.THP = false
	v := as.Alloc("flat", 8*tier.MB) // 2048 4K pages
	s := NewSet(3)
	s.InitVMA(v, 8*tier.MB)
	r := s.Regions()[0]
	r.Sampled = true
	r.Samples = []int{10, 2000}
	r.Observed = []int{3, 0}
	r.Quota = 2
	s.SplitPass(2.0)
	for _, reg := range s.Regions() {
		if reg.Start%vm.HugeRatio != 0 && reg.Start != 0 {
			t.Fatalf("split start %d not huge-aligned", reg.Start)
		}
	}
}

func TestSpreadObserved(t *testing.T) {
	r := &Region{Observed: []int{1, 3, 0, 2}}
	if got := r.SpreadObserved(); got != 3 {
		t.Fatalf("spread = %d, want 3", got)
	}
	if got := (&Region{}).SpreadObserved(); got != 0 {
		t.Fatalf("empty spread = %d", got)
	}
}

func TestEMA(t *testing.T) {
	r := &Region{HI: 2, WHI: 0}
	r.UpdateEMA(0.5)
	if r.WHI != 1 {
		t.Fatalf("WHI = %v, want 1", r.WHI)
	}
	r.UpdateEMA(1.0)
	if r.WHI != 2 {
		t.Fatalf("α=1: WHI = %v, want HI", r.WHI)
	}
	r.HI = 0
	r.UpdateEMA(0)
	if r.WHI != 2 {
		t.Fatalf("α=0: WHI = %v, want history only", r.WHI)
	}
}

func TestVariance(t *testing.T) {
	r := &Region{HI: 1, PrevHI: 3}
	if r.Variance() != 2 {
		t.Fatalf("variance = %v", r.Variance())
	}
}

func TestHistogramOrdering(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	markAll(s, func(i int) float64 { return float64(i) / 3 })
	h := NewHistogram(s.Regions(), 8, 3)
	hot := h.HottestFirst()
	if len(hot) != 8 {
		t.Fatalf("histogram lost regions: %d", len(hot))
	}
	for i := 1; i < len(hot); i++ {
		if hot[i-1].WHI < hot[i].WHI-0.5 {
			t.Fatalf("HottestFirst out of order at %d: %v then %v", i, hot[i-1].WHI, hot[i].WHI)
		}
	}
	cold := h.ColdestFirst()
	if cold[0].WHI > cold[len(cold)-1].WHI {
		t.Fatal("ColdestFirst not ascending")
	}
}

func TestHistogramClampsOutOfRange(t *testing.T) {
	v := newTestVMA(t, 4)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	regions := s.Regions()
	regions[0].WHI = -5
	regions[1].WHI = 100
	h := NewHistogram(regions, 4, 3)
	if got := len(h.HottestFirst()); got != 2 {
		t.Fatalf("clamped histogram lost regions: %d", got)
	}
}

func TestTopVariance(t *testing.T) {
	tv := NewTopVariance(3)
	var regs []*Region
	for i := 0; i < 10; i++ {
		r := &Region{HI: float64(i), PrevHI: 0}
		regs = append(regs, r)
		tv.Offer(r)
	}
	got := tv.Regions()
	if len(got) != 3 {
		t.Fatalf("kept %d, want 3", len(got))
	}
	want := map[*Region]bool{regs[7]: true, regs[8]: true, regs[9]: true}
	for _, r := range got {
		if !want[r] {
			t.Fatalf("kept region with variance %v; want top three", r.Variance())
		}
	}
	tv.Reset()
	if len(tv.Regions()) != 0 {
		t.Fatal("reset did not clear")
	}
}

// TestTopVarianceNoDuplicateAdmission is the regression test for Offer
// admitting the same *Region twice: once while the set is filling, and
// once by evicting the current minimum in favour of an already-kept
// region. Either duplicate would hand that region a double share of the
// redistributed sample quota (§5.2).
func TestTopVarianceNoDuplicateAdmission(t *testing.T) {
	hot := &Region{HI: 10, PrevHI: 0} // highest variance on offer
	mild := &Region{HI: 2, PrevHI: 0}
	cold := &Region{HI: 1, PrevHI: 0}

	// Fill phase: re-offering hot while slots are free must not append it
	// again.
	tv := NewTopVariance(3)
	tv.Offer(hot)
	tv.Offer(hot)
	tv.Offer(mild)
	seen := map[*Region]int{}
	for _, r := range tv.Regions() {
		seen[r]++
	}
	if seen[hot] != 1 {
		t.Fatalf("fill phase kept hot %d times, want 1 (set %v)", seen[hot], tv.Regions())
	}

	// Full phase: hot beats the minimum (cold), but it is already kept —
	// evicting cold for a second hot slot is the same double admission.
	tv = NewTopVariance(3)
	tv.Offer(hot)
	tv.Offer(mild)
	tv.Offer(cold)
	tv.Offer(hot)
	seen = map[*Region]int{}
	for _, r := range tv.Regions() {
		seen[r]++
	}
	if seen[hot] != 1 {
		t.Fatalf("full phase kept hot %d times, want 1", seen[hot])
	}
	if seen[cold] != 1 {
		t.Fatal("re-offering a kept region evicted the minimum")
	}
}

// TestHistogramUpdate covers the O(1) rebucket: a region whose WHI
// changed moves to its new bucket, nothing else moves, and repeated
// updates are idempotent.
func TestHistogramUpdate(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	markAll(s, func(i int) float64 { return float64(i) / 3 })
	regions := s.Regions()
	h := NewHistogram(regions, 8, 3)

	r := regions[0] // WHI 0, coldest bucket
	r.WHI = 3       // hottest
	h.Update(r)
	if got := len(h.HottestFirst()); got != len(regions) {
		t.Fatalf("update lost regions: %d, want %d", got, len(regions))
	}
	if hot := h.Bucket(h.Buckets() - 1); len(hot) == 0 || hot[len(hot)-1] != r {
		t.Fatalf("updated region not in hottest bucket: %v", hot)
	}
	for i := 0; i < h.Buckets()-1; i++ {
		for _, x := range h.Bucket(i) {
			if x == r {
				t.Fatal("updated region still present in an old bucket")
			}
		}
	}

	// Same-bucket update is a no-op; repeated updates never duplicate.
	h.Update(r)
	h.Update(r)
	count := 0
	for i := 0; i < h.Buckets(); i++ {
		for _, x := range h.Bucket(i) {
			if x == r {
				count++
			}
		}
	}
	if count != 1 {
		t.Fatalf("region appears %d times after repeated updates, want 1", count)
	}

	// A never-seen region is inserted.
	extra := &Region{V: v, Start: 0, End: 1, WHI: 1.5}
	h.Update(extra)
	if got := len(h.HottestFirst()); got != len(regions)+1 {
		t.Fatalf("insert via Update failed: %d regions, want %d", got, len(regions)+1)
	}
}

// TestFormationInvariant is the property test of region formation: any
// sequence of merge and split passes with random hotness keeps the set
// valid (ordered, non-overlapping, gap-free) and quota-positive.
func TestFormationInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		as := vm.NewAddressSpace()
		v := as.Alloc("p", 64*tier.MB) // 32 pages
		s := NewSet(3)
		s.InitVMA(v, 2*tier.MB)
		for round := 0; round < 10; round++ {
			for _, r := range s.Regions() {
				r.Sampled = true
				r.PrevHI = r.HI
				r.HI = float64(rng.Intn(4))
				r.UpdateEMA(0.5)
				n := 1 + rng.Intn(3)
				r.Samples = r.Samples[:0]
				r.Observed = r.Observed[:0]
				for j := 0; j < n; j++ {
					r.Samples = append(r.Samples, r.Start+rng.Intn(r.Pages()))
					r.Observed = append(r.Observed, rng.Intn(4))
				}
			}
			s.MergePass(1.0)
			s.SplitPass(2.0)
			if err := s.Validate(); err != nil {
				t.Log(err)
				return false
			}
			for _, r := range s.Regions() {
				if r.Quota < 0 {
					return false
				}
			}
		}
		// Coverage: regions must still cover exactly the VMA.
		total := 0
		for _, r := range s.Regions() {
			total += r.Pages()
		}
		return total == v.NPages
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeQuotaConservation(t *testing.T) {
	v := newTestVMA(t, 16)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	for _, r := range s.Regions() {
		r.Quota = 3
		r.Sampled = true
	}
	before := s.TotalQuota()
	freed := s.MergePass(1.0)
	if got := s.TotalQuota() + freed; got != before {
		t.Fatalf("quota leaked: before %d, after %d + freed %d", before, s.TotalQuota(), freed)
	}
}

func TestHistogramBucketBoundaries(t *testing.T) {
	v := newTestVMA(t, 8)
	s := NewSet(3)
	s.InitVMA(v, 2*tier.MB)
	regions := s.Regions()
	regions[0].WHI = 0
	regions[1].WHI = 1.49
	regions[2].WHI = 1.51
	regions[3].WHI = 3
	h := NewHistogram(regions, 2, 3) // buckets [0,1.5) and [1.5,3]
	if len(h.Bucket(0)) != 2 || len(h.Bucket(1)) != 2 {
		t.Fatalf("bucket sizes %d/%d, want 2/2", len(h.Bucket(0)), len(h.Bucket(1)))
	}
}

func TestSplitDepthBounded(t *testing.T) {
	// A region whose samples alternate hot/cold at every page would
	// recurse forever without the depth bound.
	v := newTestVMA(t, 512)
	s := NewSet(3)
	s.InitVMA(v, 512*tier.MB)
	r := s.Regions()[0]
	r.Sampled = true
	for i := 0; i < r.Pages(); i++ {
		r.Samples = append(r.Samples, i)
		r.Observed = append(r.Observed, (i%2)*3)
	}
	r.Quota = r.Pages()
	s.SplitPass(2.0)
	if s.Len() > 1<<(maxSplitDepth+1) {
		t.Fatalf("split produced %d regions; depth bound broken", s.Len())
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}
