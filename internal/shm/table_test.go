package shm

import (
	"bytes"
	"math"
	"sync"
	"testing"
	"testing/quick"

	"mtm/internal/region"
	"mtm/internal/tier"
	"mtm/internal/vm"
)

func sampleTable() *Table {
	return &Table{
		Interval: 42,
		Entries: []Entry{
			{RegionID: 1, BaseAddr: 1 << 30, Bytes: 2 << 20, HI: 2.5, WHI: 1.75, Quota: 3, Sampled: true, NodeID: 2},
			{RegionID: 7, BaseAddr: 3 << 30, Bytes: 64 << 20, HI: 0, WHI: 0.125, Quota: 1, Sampled: false, NodeID: -1},
		},
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	want := sampleTable()
	var buf bytes.Buffer
	if err := want.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != want.EncodedSize() {
		t.Fatalf("encoded %d bytes, want %d", buf.Len(), want.EncodedSize())
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != want.Interval || len(got.Entries) != len(want.Entries) {
		t.Fatalf("header mismatch: %+v", got)
	}
	for i := range want.Entries {
		if got.Entries[i] != want.Entries[i] {
			t.Fatalf("entry %d: %+v != %+v", i, got.Entries[i], want.Entries[i])
		}
	}
}

func TestDecodeRejectsBadMagic(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Encode(&buf)
	b := buf.Bytes()
	b[0] ^= 0xff
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestDecodeRejectsBadVersion(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Encode(&buf)
	b := buf.Bytes()
	b[4] = 99
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestDecodeRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Encode(&buf)
	b := buf.Bytes()
	for _, cut := range []int{3, headerBytes - 1, headerBytes + 5, len(b) - 1} {
		if _, err := Decode(bytes.NewReader(b[:cut])); err == nil {
			t.Fatalf("truncated at %d accepted", cut)
		}
	}
}

func TestDecodeRejectsHugeCount(t *testing.T) {
	var buf bytes.Buffer
	sampleTable().Encode(&buf)
	b := buf.Bytes()
	b[16], b[17], b[18], b[19] = 0xff, 0xff, 0xff, 0xff
	if _, err := Decode(bytes.NewReader(b)); err == nil {
		t.Fatal("absurd entry count accepted")
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(interval uint64, ids []uint64, his []float64) bool {
		tb := &Table{Interval: interval}
		for i, id := range ids {
			hi := 0.0
			if i < len(his) && !math.IsNaN(his[i]) {
				hi = his[i]
			}
			tb.Entries = append(tb.Entries, Entry{RegionID: id, HI: hi, Sampled: i%2 == 0, NodeID: int32(i % 5)})
		}
		var buf bytes.Buffer
		if err := tb.Encode(&buf); err != nil {
			return false
		}
		got, err := Decode(&buf)
		if err != nil || got.Interval != interval || len(got.Entries) != len(tb.Entries) {
			return false
		}
		for i := range tb.Entries {
			if got.Entries[i] != tb.Entries[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFromRegions(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 8*vm.HugePageSize)
	set := region.NewSet(3)
	set.InitVMA(v, 2*vm.HugePageSize)
	for i, r := range set.Regions() {
		r.HI = float64(i)
		r.WHI = float64(i) / 2
		r.Sampled = true
	}
	tb := FromRegions(9, set.Regions(), func(*region.Region) int32 { return 2 })
	if tb.Interval != 9 || len(tb.Entries) != set.Len() {
		t.Fatalf("table %+v", tb)
	}
	for i, e := range tb.Entries {
		r := set.Regions()[i]
		if e.BaseAddr != r.V.Addr(r.Start) || e.Bytes != uint64(r.Bytes()) || e.HI != r.HI || e.NodeID != 2 {
			t.Fatalf("entry %d mismatch: %+v vs %v", i, e, r)
		}
	}
	// nil nodeOf leaves nodes unresolved.
	tb2 := FromRegions(1, set.Regions(), nil)
	if tb2.Entries[0].NodeID != -1 {
		t.Fatal("nil nodeOf should leave NodeID -1")
	}
	_ = tier.Invalid
}

func TestSegmentPublishSnapshot(t *testing.T) {
	seg := NewSegment(16)
	if _, err := seg.Snapshot(); err == nil {
		t.Fatal("empty segment snapshot succeeded")
	}
	if err := seg.Publish(sampleTable()); err != nil {
		t.Fatal(err)
	}
	got, err := seg.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Interval != 42 || len(got.Entries) != 2 {
		t.Fatalf("snapshot %+v", got)
	}
}

func TestSegmentRejectsOversize(t *testing.T) {
	seg := NewSegment(1)
	if err := seg.Publish(sampleTable()); err == nil {
		t.Fatal("oversize publish accepted")
	}
}

func TestSegmentConcurrentPublishSnapshot(t *testing.T) {
	// The seqlock protocol: concurrent publishers and snapshotters never
	// yield a torn (undecodable or cross-version) table.
	seg := NewSegment(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := uint64(0)
		for {
			select {
			case <-stop:
				return
			default:
			}
			tb := sampleTable()
			tb.Interval = i
			for j := range tb.Entries {
				tb.Entries[j].RegionID = i // all entries carry the version
			}
			seg.Publish(tb)
			i++
		}
	}()
	for n := 0; n < 2000; n++ {
		tb, err := seg.Snapshot()
		if err != nil {
			continue // starved this round; acceptable
		}
		for _, e := range tb.Entries {
			if e.RegionID != tb.Interval {
				t.Fatalf("torn snapshot: interval %d, entry version %d", tb.Interval, e.RegionID)
			}
		}
	}
	close(stop)
	wg.Wait()
}

// TestSegmentParallelPublishers races several kernel-module-side writers
// against several daemon-side readers. Every snapshot must be a complete
// single-version image: all entries carry their table's version stamp and
// the entry count matches what that publisher wrote. Run under -race this
// also proves the segment itself is data-race free.
func TestSegmentParallelPublishers(t *testing.T) {
	seg := NewSegment(64)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	const writers, readers = 4, 4
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := uint64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Each writer publishes a differently sized table so a
				// cross-version read would also corrupt the entry count.
				version := uint64(w)<<32 | i
				tb := &Table{Interval: version}
				for j := 0; j < 2+w; j++ {
					tb.Entries = append(tb.Entries, Entry{RegionID: version, Quota: uint32(len(tb.Entries))})
				}
				if err := seg.Publish(tb); err != nil {
					t.Errorf("publish: %v", err)
					return
				}
			}
		}(w)
	}
	var rg sync.WaitGroup
	for r := 0; r < readers; r++ {
		rg.Add(1)
		go func() {
			defer rg.Done()
			for n := 0; n < 500; n++ {
				tb, err := seg.Snapshot()
				if err != nil {
					continue // no publish landed yet
				}
				wantLen := 2 + int(tb.Interval>>32)
				if len(tb.Entries) != wantLen {
					t.Errorf("torn snapshot: writer %d table has %d entries, want %d", tb.Interval>>32, len(tb.Entries), wantLen)
					return
				}
				for _, e := range tb.Entries {
					if e.RegionID != tb.Interval {
						t.Errorf("torn snapshot: interval %#x, entry version %#x", tb.Interval, e.RegionID)
						return
					}
				}
			}
		}()
	}
	rg.Wait()
	close(stop)
	wg.Wait()
}

// TestSegmentSeqAdvances checks the protocol the daemon uses to notice
// missed intervals: the sequence counter is even when stable and advances
// by two per publish.
func TestSegmentSeqAdvances(t *testing.T) {
	seg := NewSegment(16)
	if s := seg.Seq(); s != 0 {
		t.Fatalf("fresh segment seq = %d, want 0", s)
	}
	for i := 1; i <= 3; i++ {
		if err := seg.Publish(sampleTable()); err != nil {
			t.Fatal(err)
		}
		if s := seg.Seq(); s != uint64(2*i) {
			t.Fatalf("after %d publishes seq = %d, want %d", i, s, 2*i)
		}
	}
}
