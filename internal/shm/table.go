// Package shm models the kernel/user-space split of MTM's implementation
// (§8): the profiling kernel module writes per-region results into a table
// in shared memory, and the user-space page-management daemon reads them
// at the end of each profiling interval to make migration decisions.
//
// The table has a fixed binary layout (little-endian, versioned header)
// exactly as a real shared-memory segment would, so the daemon side can be
// developed, tested and replayed independently of the profiler side. The
// Encode/Decode pair round-trips through any byte buffer; Publish/Snapshot
// operate on an in-memory segment with a sequence lock, mirroring how the
// kernel module and daemon avoid torn reads without holding locks across
// the interval.
package shm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"
	"sync/atomic"

	"mtm/internal/region"
)

// Magic and Version identify the table layout.
const (
	Magic   = 0x4d544d31 // "MTM1"
	Version = 1
)

// Entry is one region's profiling result as published to the daemon.
type Entry struct {
	RegionID uint64
	BaseAddr uint64
	Bytes    uint64
	HI       float64 // hotness indication of the last interval
	WHI      float64 // EMA of hotness indication
	Quota    uint32  // page samples assigned next interval
	Sampled  bool    // whether the region was PTE-scanned this interval
	NodeID   int32   // memory node holding the region, -1 if unmapped
}

// Table is the shared profiling-results table.
type Table struct {
	Interval uint64 // profiling interval sequence number
	Entries  []Entry
}

const headerBytes = 4 + 2 + 2 + 8 + 4 // magic, version, flags, interval, count
const entryBytes = 8 + 8 + 8 + 8 + 8 + 4 + 1 + 4

// EncodedSize returns the byte size of the encoded table.
func (t *Table) EncodedSize() int { return headerBytes + len(t.Entries)*entryBytes }

// Encode writes the table to w in the shared-memory layout.
func (t *Table) Encode(w io.Writer) error {
	buf := make([]byte, t.EncodedSize())
	if err := t.marshal(buf); err != nil {
		return err
	}
	_, err := w.Write(buf)
	return err
}

func (t *Table) marshal(buf []byte) error {
	if len(buf) < t.EncodedSize() {
		return fmt.Errorf("shm: buffer %d < table %d", len(buf), t.EncodedSize())
	}
	le := binary.LittleEndian
	le.PutUint32(buf[0:], Magic)
	le.PutUint16(buf[4:], Version)
	le.PutUint16(buf[6:], 0)
	le.PutUint64(buf[8:], t.Interval)
	le.PutUint32(buf[16:], uint32(len(t.Entries)))
	off := headerBytes
	for _, e := range t.Entries {
		le.PutUint64(buf[off:], e.RegionID)
		le.PutUint64(buf[off+8:], e.BaseAddr)
		le.PutUint64(buf[off+16:], e.Bytes)
		le.PutUint64(buf[off+24:], math.Float64bits(e.HI))
		le.PutUint64(buf[off+32:], math.Float64bits(e.WHI))
		le.PutUint32(buf[off+40:], e.Quota)
		if e.Sampled {
			buf[off+44] = 1
		} else {
			buf[off+44] = 0
		}
		le.PutUint32(buf[off+45:], uint32(e.NodeID))
		off += entryBytes
	}
	return nil
}

// ErrLayout reports a malformed or incompatible table image.
var ErrLayout = errors.New("shm: bad table layout")

// Decode reads a table from r.
func Decode(r io.Reader) (*Table, error) {
	head := make([]byte, headerBytes)
	if _, err := io.ReadFull(r, head); err != nil {
		return nil, err
	}
	le := binary.LittleEndian
	if le.Uint32(head[0:]) != Magic {
		return nil, fmt.Errorf("%w: magic %#x", ErrLayout, le.Uint32(head[0:]))
	}
	if v := le.Uint16(head[4:]); v != Version {
		return nil, fmt.Errorf("%w: version %d", ErrLayout, v)
	}
	t := &Table{Interval: le.Uint64(head[8:])}
	n := int(le.Uint32(head[16:]))
	const maxEntries = 1 << 26 // 64M regions is far beyond any real table
	if n < 0 || n > maxEntries {
		return nil, fmt.Errorf("%w: entry count %d", ErrLayout, n)
	}
	body := make([]byte, n*entryBytes)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	t.Entries = make([]Entry, n)
	for i := range t.Entries {
		off := i * entryBytes
		e := &t.Entries[i]
		e.RegionID = le.Uint64(body[off:])
		e.BaseAddr = le.Uint64(body[off+8:])
		e.Bytes = le.Uint64(body[off+16:])
		e.HI = math.Float64frombits(le.Uint64(body[off+24:]))
		e.WHI = math.Float64frombits(le.Uint64(body[off+32:]))
		e.Quota = le.Uint32(body[off+40:])
		e.Sampled = body[off+44] != 0
		e.NodeID = int32(le.Uint32(body[off+45:]))
	}
	return t, nil
}

// FromRegions builds a table snapshot from a profiler's region set; nodeOf
// resolves each region's memory node (pass nil to leave nodes at -1).
func FromRegions(interval uint64, regions []*region.Region, nodeOf func(*region.Region) int32) *Table {
	t := &Table{Interval: interval, Entries: make([]Entry, 0, len(regions))}
	for _, r := range regions {
		node := int32(-1)
		if nodeOf != nil {
			node = nodeOf(r)
		}
		t.Entries = append(t.Entries, Entry{
			RegionID: r.ID,
			BaseAddr: r.V.Addr(r.Start),
			Bytes:    uint64(r.Bytes()),
			HI:       r.HI,
			WHI:      r.WHI,
			Quota:    uint32(r.Quota),
			Sampled:  r.Sampled,
			NodeID:   node,
		})
	}
	return t
}

// Segment is the shared-memory segment the kernel module publishes into
// and the daemon snapshots from. The real implementation uses a seqlock
// (an even/odd sequence counter around the byte copy); in Go, racing
// plain loads with stores is undefined behaviour, so the copy itself is
// guarded by a mutex while the sequence counter keeps the protocol's
// observable behaviour: a snapshot is always a complete, single-version
// image, never a torn one.
type Segment struct {
	mu  sync.RWMutex
	seq atomic.Uint64
	buf []byte
	len int
}

// NewSegment creates a segment with room for capacity entries.
func NewSegment(capacity int) *Segment {
	return &Segment{buf: make([]byte, headerBytes+capacity*entryBytes)}
}

// Publish writes a table into the segment (the kernel-module side).
func (s *Segment) Publish(t *Table) error {
	need := t.EncodedSize()
	if need > len(s.buf) {
		return fmt.Errorf("shm: table %d exceeds segment %d", need, len(s.buf))
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq.Add(1) // odd: write in progress
	err := t.marshal(s.buf)
	s.len = need
	s.seq.Add(1) // even: stable
	return err
}

// Snapshot reads a consistent table copy (the daemon side).
func (s *Segment) Snapshot() (*Table, error) {
	s.mu.RLock()
	if s.len == 0 {
		s.mu.RUnlock()
		return nil, errors.New("shm: segment empty")
	}
	cp := make([]byte, s.len)
	copy(cp, s.buf[:s.len])
	s.mu.RUnlock()
	return Decode(bytes.NewReader(cp))
}

// Seq returns the publish sequence number (even when stable); the daemon
// uses it to notice missed intervals.
func (s *Segment) Seq() uint64 { return s.seq.Load() }
