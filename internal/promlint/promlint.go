// Package promlint is a small validator for the Prometheus text
// exposition format (version 0.0.4) — enough of the grammar to catch a
// malformed export before CI ships it: metric/label name syntax, label
// quoting, numeric sample values, HELP/TYPE header placement, and the
// _bucket/_sum/_count shape of histogram families. It is intentionally a
// linter, not a full client parser.
package promlint

import (
	"bufio"
	"fmt"
	"io"
	"regexp"
	"strconv"
	"strings"
)

var (
	nameRe  = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	labelRe = regexp.MustCompile(`^[a-zA-Z_][a-zA-Z0-9_]*$`)
	// sampleRe splits one sample line into name, optional label block, and
	// the rest (value and optional timestamp).
	sampleRe = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)(\s+-?\d+)?\s*$`)
)

var validTypes = map[string]bool{
	"counter": true, "gauge": true, "histogram": true,
	"summary": true, "untyped": true,
}

// Lint reads a text exposition and returns the first format violation, or
// nil if the input parses. Empty input is an error (an empty metrics file
// in CI means the exporter silently produced nothing).
func Lint(r io.Reader) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	types := map[string]string{} // family -> declared type
	seenSample := map[string]bool{}
	lines := 0
	samples := 0
	for sc.Scan() {
		lines++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			if err := lintComment(line, types, seenSample); err != nil {
				return fmt.Errorf("line %d: %w", lines, err)
			}
			continue
		}
		if err := lintSample(line, types); err != nil {
			return fmt.Errorf("line %d: %w", lines, err)
		}
		samples++
		m := sampleRe.FindStringSubmatch(line)
		seenSample[familyOf(m[1], types)] = true
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if samples == 0 {
		return fmt.Errorf("no samples found (empty or comment-only exposition)")
	}
	return nil
}

// lintComment validates a # line. Only HELP and TYPE have structure; any
// other comment is legal and ignored.
func lintComment(line string, types map[string]string, seenSample map[string]bool) error {
	fields := strings.Fields(line)
	if len(fields) < 2 || (fields[1] != "HELP" && fields[1] != "TYPE") {
		return nil
	}
	if len(fields) < 3 {
		return fmt.Errorf("%s without a metric name: %q", fields[1], line)
	}
	name := fields[2]
	if !nameRe.MatchString(name) {
		return fmt.Errorf("invalid metric name %q in %s", name, fields[1])
	}
	if fields[1] == "HELP" {
		// HELP text must escape backslash as \\ and newline as \n; a
		// lone backslash means the writer emitted the docstring verbatim
		// (a raw newline would already have split the line and shown up
		// as a malformed sample).
		text := line[strings.Index(line, name)+len(name):]
		for i := 0; i < len(text); i++ {
			if text[i] != '\\' {
				continue
			}
			if i+1 >= len(text) || (text[i+1] != '\\' && text[i+1] != 'n') {
				return fmt.Errorf("unescaped backslash in HELP for %s: %q", name, text)
			}
			i++ // skip the escaped character
		}
	}
	if fields[1] == "TYPE" {
		if len(fields) < 4 {
			return fmt.Errorf("TYPE %s without a type", name)
		}
		typ := fields[3]
		if !validTypes[typ] {
			return fmt.Errorf("unknown type %q for %s", typ, name)
		}
		if typ == "counter" && !strings.HasSuffix(name, "_total") {
			// Prometheus naming convention: monotonic counters carry the
			// _total unit suffix so dashboards can tell rates from levels.
			return fmt.Errorf("counter %s lacks the _total suffix", name)
		}
		if _, dup := types[name]; dup {
			return fmt.Errorf("duplicate TYPE for %s", name)
		}
		if seenSample[name] {
			return fmt.Errorf("TYPE for %s appears after its samples", name)
		}
		types[name] = typ
	}
	return nil
}

// lintSample validates one sample line.
func lintSample(line string, types map[string]string) error {
	m := sampleRe.FindStringSubmatch(line)
	if m == nil {
		return fmt.Errorf("malformed sample line: %q", line)
	}
	name, labels, value := m[1], m[2], m[3]
	if labels != "" {
		if err := lintLabels(labels); err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
	}
	switch value {
	case "+Inf", "-Inf", "NaN":
	default:
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("%s: non-numeric value %q", name, value)
		}
	}
	fam := familyOf(name, types)
	if typ, ok := types[fam]; ok && typ == "histogram" {
		switch {
		case strings.HasSuffix(name, "_bucket"):
			if !strings.Contains(labels, `le="`) {
				return fmt.Errorf("%s: histogram bucket without an le label", name)
			}
		case strings.HasSuffix(name, "_sum"), strings.HasSuffix(name, "_count"), name == fam:
		default:
			return fmt.Errorf("%s: unexpected suffix for histogram family %s", name, fam)
		}
	}
	return nil
}

// lintLabels validates a {k="v",...} block.
func lintLabels(block string) error {
	body := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	if body == "" {
		return nil
	}
	// Split on commas outside quotes.
	var parts []string
	depth := false
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\\':
			i++
		case '"':
			depth = !depth
		case ',':
			if !depth {
				parts = append(parts, body[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, body[start:])
	for _, p := range parts {
		eq := strings.Index(p, "=")
		if eq < 0 {
			return fmt.Errorf("label pair %q lacks '='", p)
		}
		k, v := p[:eq], p[eq+1:]
		if !labelRe.MatchString(k) {
			return fmt.Errorf("invalid label name %q", k)
		}
		if len(v) < 2 || v[0] != '"' || v[len(v)-1] != '"' {
			return fmt.Errorf("label %s value not quoted: %q", k, v)
		}
	}
	return nil
}

// familyOf strips histogram/summary suffixes so _bucket/_sum/_count
// samples resolve to their declared family.
func familyOf(name string, types map[string]string) string {
	for _, suf := range []string{"_bucket", "_sum", "_count"} {
		if base := strings.TrimSuffix(name, suf); base != name {
			if _, ok := types[base]; ok {
				return base
			}
		}
	}
	return name
}
