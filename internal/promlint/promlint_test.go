package promlint

import (
	"strings"
	"testing"
)

const goodExposition = `# HELP mtm_sim_intervals_total profiling intervals completed
# TYPE mtm_sim_intervals_total counter
mtm_sim_intervals_total 42
# TYPE mtm_sim_node_contention gauge
mtm_sim_node_contention{node="DRAM0"} 1.25
mtm_sim_node_contention{node="we\"ird"} 2
# TYPE mtm_sim_interval_app_ns histogram
mtm_sim_interval_app_ns_bucket{le="1000"} 1
mtm_sim_interval_app_ns_bucket{le="+Inf"} 2
mtm_sim_interval_app_ns_sum 2000500
mtm_sim_interval_app_ns_count 2
`

func TestLintAcceptsValidExposition(t *testing.T) {
	if err := Lint(strings.NewReader(goodExposition)); err != nil {
		t.Fatalf("valid exposition rejected: %v", err)
	}
}

func TestLintRejections(t *testing.T) {
	cases := map[string]string{
		"empty input":                 "",
		"comment only":                "# TYPE x counter\n",
		"bad metric name":             "3bad_name 1\n",
		"non-numeric value":           "x_total one\n",
		"unquoted label":              `x_total{node=dram} 1` + "\n",
		"bad label name":              `x_total{3node="a"} 1` + "\n",
		"unknown type":                "# TYPE x_total flurble\nx_total 1\n",
		"duplicate type":              "# TYPE x_total counter\n# TYPE x_total gauge\nx_total 1\n",
		"type after samples":          "x_total 1\n# TYPE x_total counter\n",
		"counter without _total":      "# TYPE x_count counter\nx_count 1\n",
		"bucket without le":           "# TYPE h histogram\nh_bucket{node=\"a\"} 1\nh_sum 1\nh_count 1\n",
		"unescaped backslash in HELP": "# HELP x_total path C:\\temp\n# TYPE x_total counter\nx_total 1\n",
		"HELP continuation line":      "# HELP x_total line one\nline two\n# TYPE x_total counter\nx_total 1\n",
	}
	for name, input := range cases {
		if err := Lint(strings.NewReader(input)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestLintAcceptsEscapedHelp(t *testing.T) {
	in := `# HELP x_total line one\nline two with a \\ backslash` + "\n# TYPE x_total counter\nx_total 1\n"
	if err := Lint(strings.NewReader(in)); err != nil {
		t.Fatalf("escaped HELP rejected: %v", err)
	}
}

func TestLintAcceptsSpecialValues(t *testing.T) {
	in := "# TYPE g gauge\ng NaN\ng{node=\"a\"} +Inf\n"
	if err := Lint(strings.NewReader(in)); err != nil {
		t.Fatalf("special values rejected: %v", err)
	}
}
