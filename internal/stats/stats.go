// Package stats computes the evaluation metrics of the paper: profiling
// recall and accuracy against an oracle (Figure 1), per-tier access
// distributions (Tables 3 and 6), and execution-time breakdowns
// (Figure 5). It is the only code allowed to read ground-truth access
// counters — profilers never see them.
package stats

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
	"time"

	"mtm/internal/profiler"
	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/vm"
)

// HotOracle reports ground truth: whether a page is currently hot. GUPS
// exposes one from its hot-set bookkeeping; CountOracle derives one from
// the interval's access counters for workloads without a closed form.
type HotOracle func(v *vm.VMA, idx int) bool

// CountOracle builds a HotOracle marking the top hotFrac of present bytes
// by this interval's ground-truth access count. It must be called before
// the engine resets counters (i.e. inside a Solution hook or test).
func CountOracle(as *vm.AddressSpace, hotFrac float64) HotOracle {
	type pg struct {
		v     *vm.VMA
		idx   int
		count uint32
	}
	var pages []pg
	var total int64
	for _, v := range as.VMAs() {
		total += int64(v.PresentCount(0, v.NPages)) * v.PageSize
		// Pages with non-zero counts are exactly the present∧touched ones;
		// sweep them word-wide instead of loading every counter.
		for w := 0; w < v.Words(); w++ {
			word := v.ActiveWord(w)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				pages = append(pages, pg{v, i, v.Count(i)})
			}
		}
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i].count > pages[j].count })
	want := int64(float64(total) * hotFrac)
	hot := make(map[*vm.VMA]map[int]bool)
	var got int64
	for _, p := range pages {
		if got >= want {
			break
		}
		m := hot[p.v]
		if m == nil {
			m = make(map[int]bool)
			hot[p.v] = m
		}
		m[p.idx] = true
		got += p.v.PageSize
	}
	return func(v *vm.VMA, idx int) bool { return hot[v][idx] }
}

// Quality is a profiling recall/accuracy measurement (Figure 1):
// recall   = hot bytes correctly detected / hot bytes in the oracle set
// accuracy = hot bytes correctly detected / bytes detected as hot
type Quality struct {
	Recall   float64
	Accuracy float64
}

// DetectionQuality labels the hottest regions (by WHI) covering wantBytes
// as the profiler's detected hot set and scores it against the oracle.
// oracleBytes is the oracle hot-set size (the denominator of recall).
func DetectionQuality(regions []*region.Region, oracle HotOracle, wantBytes, oracleBytes int64) Quality {
	detected := profiler.HotBytes(regions, wantBytes)
	var detectedBytes, correct int64
	for _, r := range detected {
		detectedBytes += int64(r.V.PresentCount(r.Start, r.End)) * r.V.PageSize
		for w := r.Start / vm.WordPages; w*vm.WordPages < r.End; w++ {
			word := r.V.PresentRangeWord(w, r.Start, r.End)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if oracle(r.V, i) {
					correct += r.V.PageSize
				}
			}
		}
	}
	var q Quality
	if oracleBytes > 0 {
		q.Recall = float64(correct) / float64(oracleBytes)
	}
	if detectedBytes > 0 {
		q.Accuracy = float64(correct) / float64(detectedBytes)
	}
	return q
}

// OracleBytes sums the bytes the oracle marks hot over present pages.
func OracleBytes(as *vm.AddressSpace, oracle HotOracle) int64 {
	var b int64
	for _, v := range as.VMAs() {
		for w := 0; w < v.Words(); w++ {
			word := v.PresentWord(w)
			for word != 0 {
				i := w*vm.WordPages + bits.TrailingZeros64(word)
				word &= word - 1
				if oracle(v, i) {
					b += v.PageSize
				}
			}
		}
	}
	return b
}

// Breakdown is the Figure 5 decomposition of a run.
type Breakdown struct {
	App, Profiling, Migration time.Duration
}

// BreakdownOf extracts the decomposition from a result.
func BreakdownOf(r *sim.Result) Breakdown {
	return Breakdown{App: r.App, Profiling: r.Profiling, Migration: r.Migration}
}

// FormatDuration renders a virtual duration at a unit that keeps three
// significant figures readable.
func FormatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	}
	return d.String()
}

// Table is a minimal fixed-width text table writer for experiment output.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// Row appends a row; values are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case time.Duration:
			row[i] = FormatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	width := make([]int, len(t.header))
	for i, h := range t.header {
		width[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(width) && len(c) > width[i] {
				width[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", width[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range width {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range t.rows {
		writeRow(r)
	}
	return b.String()
}
