package stats

import (
	"strings"
	"testing"
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/vm"
)

func TestCountOracle(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 20*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
		n := uint32(1)
		if i < 5 {
			n = 1000
		}
		v.TouchN(i, n, 0, 0)
	}
	oracle := CountOracle(as, 0.25) // top 5 of 20 pages
	for i := 0; i < v.NPages; i++ {
		want := i < 5
		if oracle(v, i) != want {
			t.Fatalf("oracle(%d) = %v, want %v", i, oracle(v, i), want)
		}
	}
	if got := OracleBytes(as, oracle); got != 5*v.PageSize {
		t.Fatalf("oracle bytes = %d", got)
	}
}

func TestDetectionQualityPerfect(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 10*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
	}
	set := region.NewSet(3)
	set.InitVMA(v, 2*vm.HugePageSize) // 5 regions of 2 pages
	regions := set.Regions()
	// Region 0 (pages 0-1) is hot; oracle agrees.
	regions[0].WHI = 3
	oracle := func(vv *vm.VMA, idx int) bool { return vv == v && idx < 2 }
	q := DetectionQuality(regions, oracle, 2*v.PageSize, 2*v.PageSize)
	if q.Recall != 1 || q.Accuracy != 1 {
		t.Fatalf("quality = %+v, want perfect", q)
	}
}

func TestDetectionQualityHalf(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 10*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
	}
	set := region.NewSet(3)
	set.InitVMA(v, 2*vm.HugePageSize)
	regions := set.Regions()
	// Detected region covers pages 0-1 but only page 0 is truly hot;
	// the other hot page (9) is missed.
	regions[0].WHI = 3
	oracle := func(vv *vm.VMA, idx int) bool { return idx == 0 || idx == 9 }
	q := DetectionQuality(regions, oracle, 2*v.PageSize, 2*v.PageSize)
	if q.Recall != 0.5 || q.Accuracy != 0.5 {
		t.Fatalf("quality = %+v, want 0.5/0.5", q)
	}
}

func TestBreakdownOf(t *testing.T) {
	r := &sim.Result{App: time.Second, Profiling: time.Millisecond, Migration: 2 * time.Millisecond}
	b := BreakdownOf(r)
	if b.App != time.Second || b.Profiling != time.Millisecond || b.Migration != 2*time.Millisecond {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("beta", time.Second)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "1.00s") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d", len(lines))
	}
}
