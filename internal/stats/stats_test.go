package stats

import (
	"strings"
	"testing"
	"time"

	"mtm/internal/region"
	"mtm/internal/sim"
	"mtm/internal/vm"
)

func TestCountOracle(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 20*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
		n := uint32(1)
		if i < 5 {
			n = 1000
		}
		v.TouchN(i, n, 0, 0)
	}
	oracle := CountOracle(as, 0.25) // top 5 of 20 pages
	for i := 0; i < v.NPages; i++ {
		want := i < 5
		if oracle(v, i) != want {
			t.Fatalf("oracle(%d) = %v, want %v", i, oracle(v, i), want)
		}
	}
	if got := OracleBytes(as, oracle); got != 5*v.PageSize {
		t.Fatalf("oracle bytes = %d", got)
	}
}

func TestDetectionQualityPerfect(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 10*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
	}
	set := region.NewSet(3)
	set.InitVMA(v, 2*vm.HugePageSize) // 5 regions of 2 pages
	regions := set.Regions()
	// Region 0 (pages 0-1) is hot; oracle agrees.
	regions[0].WHI = 3
	oracle := func(vv *vm.VMA, idx int) bool { return vv == v && idx < 2 }
	q := DetectionQuality(regions, oracle, 2*v.PageSize, 2*v.PageSize)
	if q.Recall != 1 || q.Accuracy != 1 {
		t.Fatalf("quality = %+v, want perfect", q)
	}
}

func TestDetectionQualityHalf(t *testing.T) {
	as := vm.NewAddressSpace()
	v := as.Alloc("v", 10*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
	}
	set := region.NewSet(3)
	set.InitVMA(v, 2*vm.HugePageSize)
	regions := set.Regions()
	// Detected region covers pages 0-1 but only page 0 is truly hot;
	// the other hot page (9) is missed.
	regions[0].WHI = 3
	oracle := func(vv *vm.VMA, idx int) bool { return idx == 0 || idx == 9 }
	q := DetectionQuality(regions, oracle, 2*v.PageSize, 2*v.PageSize)
	if q.Recall != 0.5 || q.Accuracy != 0.5 {
		t.Fatalf("quality = %+v, want 0.5/0.5", q)
	}
}

// TestDirtyPlaneReconciliation is the dirty-plane oracle: the word-wide
// DirtyWord scan and the per-page TestAndClearDirty harvest must observe
// exactly the same set of pages — the set that ground truth says took a
// write this interval — and a harvest must consume each bit exactly once.
// (The word path feeds bulk scans, the per-page path feeds shadow sync;
// if they ever diverge, free demotions flip to stale frames.)
func TestDirtyPlaneReconciliation(t *testing.T) {
	as := vm.NewAddressSpace()
	// 130 pages: spans three plane words, with writes straddling both
	// word boundaries (63/64 and 127/128).
	v := as.Alloc("v", 130*vm.HugePageSize)
	written := make(map[int]bool)
	for i := 0; i < v.NPages; i++ {
		v.Place(i, 0)
		var nw uint32
		if i%3 == 0 || i == 63 || i == 64 || i == 127 || i == 128 {
			nw = 1 + uint32(i%2) // writes of varying weight
			written[i] = true
		}
		v.TouchN(i, 2, nw, 0) // every page is read; only some written
	}

	// Word-wide snapshot first: it must be a pure read (no clearing).
	snap := make([]uint64, v.Words())
	for w := 0; w < v.Words(); w++ {
		snap[w] = v.DirtyWord(w)
	}
	for w := 0; w < v.Words(); w++ {
		if v.DirtyWord(w) != snap[w] {
			t.Fatalf("DirtyWord(%d) changed across reads", w)
		}
	}

	// Both views must agree with ground truth, page by page.
	for i := 0; i < v.NPages; i++ {
		wordBit := snap[i/vm.WordPages]&(1<<uint(i%vm.WordPages)) != 0
		if wordBit != written[i] {
			t.Fatalf("DirtyWord bit for page %d = %v, ground truth %v", i, wordBit, written[i])
		}
		if got := v.TestAndClearDirty(i); got != written[i] {
			t.Fatalf("TestAndClearDirty(%d) = %v, ground truth %v", i, got, written[i])
		}
	}

	// The harvest consumed every bit: both views now read clean, and a
	// second harvest observes nothing.
	for w := 0; w < v.Words(); w++ {
		if v.DirtyWord(w) != 0 {
			t.Fatalf("DirtyWord(%d) = %#x after full harvest, want 0", w, v.DirtyWord(w))
		}
	}
	for i := 0; i < v.NPages; i++ {
		if v.TestAndClearDirty(i) {
			t.Fatalf("second harvest of page %d observed a dirty bit", i)
		}
	}

	// A fresh write re-arms exactly its own page.
	v.TouchN(65, 1, 1, 0)
	if !v.TestAndClearDirty(65) || v.DirtyWord(1) != 0 {
		t.Fatal("re-armed dirty bit not observed or not consumed")
	}
}

func TestBreakdownOf(t *testing.T) {
	r := &sim.Result{App: time.Second, Profiling: time.Millisecond, Migration: 2 * time.Millisecond}
	b := BreakdownOf(r)
	if b.App != time.Second || b.Profiling != time.Millisecond || b.Migration != 2*time.Millisecond {
		t.Fatalf("breakdown = %+v", b)
	}
}

func TestTableRendering(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Row("alpha", 1.5)
	tb.Row("beta", time.Second)
	out := tb.String()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") || !strings.Contains(out, "1.00s") {
		t.Fatalf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header, rule, two rows
		t.Fatalf("lines = %d", len(lines))
	}
}
