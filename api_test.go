package mtm

import (
	"reflect"
	"testing"
	"time"

	"mtm/internal/fault"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/tier"
)

func quickCfg() Config {
	c := DefaultConfig()
	c.Scale = 512
	c.OpsFactor = 0.05
	return c
}

func TestConfigDefaults(t *testing.T) {
	var c Config
	c = c.withDefaults()
	if c.Scale != DefaultScale || c.Threads != 8 || c.OpsFactor != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	if c.Interval != 10*time.Second/DefaultScale {
		t.Fatalf("interval = %v", c.Interval)
	}
	if c.MigrateBudget != 800*tier.MB/DefaultScale {
		t.Fatalf("budget = %d", c.MigrateBudget)
	}
	if c.OverheadTarget != 0.05 || c.Alpha != 0.5 {
		t.Fatalf("target/alpha = %v/%v", c.OverheadTarget, c.Alpha)
	}
}

func TestConfigAlphaZeroEncoding(t *testing.T) {
	c := Config{Alpha: -1}
	if got := c.withDefaults().Alpha; got != 0 {
		t.Fatalf("negative Alpha resolved to %v, want 0", got)
	}
}

func TestTopologySelection(t *testing.T) {
	c := quickCfg()
	if got := len(c.Topology().Nodes); got != 4 {
		t.Fatalf("four-tier topology has %d nodes", got)
	}
	c.TwoTier = true
	if got := len(c.Topology().Nodes); got != 2 {
		t.Fatalf("two-tier topology has %d nodes", got)
	}
}

func TestEverySolutionConstructs(t *testing.T) {
	for _, name := range SolutionNames() {
		s, err := NewSolution(name, quickCfg())
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if s.Name() == "" {
			t.Errorf("%s: empty display name", name)
		}
	}
	if _, err := NewSolution("nope", quickCfg()); err == nil {
		t.Error("unknown solution accepted")
	}
}

func TestEveryWorkloadConstructs(t *testing.T) {
	for _, name := range WorkloadNames() {
		w, err := NewWorkload(name, quickCfg())
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if w.Name() == "" {
			t.Errorf("%s: empty display name", name)
		}
	}
	if _, err := NewWorkload("nope", quickCfg()); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestRunEveryPairQuick(t *testing.T) {
	// Every (workload, solution) pair must run without panicking and
	// produce nonzero accesses. This is the cross-product integration
	// test; short runs keep it fast.
	if testing.Short() {
		t.Skip("cross-product is slow")
	}
	cfg := quickCfg()
	for _, wl := range WorkloadNames() {
		for _, sol := range []string{"first-touch", "hmc", "vanilla-tiered-autonuma", "tiered-autonuma", "autotiering", "hemem", "mtm", "mtm-wo-async"} {
			res, err := Run(cfg, wl, sol)
			if err != nil {
				t.Fatalf("%s/%s: %v", wl, sol, err)
			}
			if res.TotalAccesses == 0 {
				t.Errorf("%s/%s: no accesses", wl, sol)
			}
			if res.ExecTime <= 0 {
				t.Errorf("%s/%s: exec time %v", wl, sol, res.ExecTime)
			}
		}
	}
}

func TestRunDeterminism(t *testing.T) {
	cfg := quickCfg()
	a, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	if a.ExecTime != b.ExecTime || a.PromotedBytes != b.PromotedBytes {
		t.Fatalf("same seed diverged: %v/%v vs %v/%v", a.ExecTime, a.PromotedBytes, b.ExecTime, b.PromotedBytes)
	}
	cfg.Seed = 2
	c, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	if c.ExecTime == a.ExecTime {
		t.Log("different seeds produced identical exec time (possible but unlikely)")
	}
}

func TestTwoTierRun(t *testing.T) {
	cfg := quickCfg()
	cfg.TwoTier = true
	for _, sol := range []string{"mtm", "hemem"} {
		res, err := Run(cfg, "gups", sol)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.NodeAccesses) != 2 {
			t.Fatalf("%s: node count %d", sol, len(res.NodeAccesses))
		}
	}
}

func TestOverheadTargetRespected(t *testing.T) {
	cfg := quickCfg()
	cfg.OpsFactor = 0.2
	for _, target := range []float64{0.01, 0.05, 0.10} {
		c := cfg
		c.OverheadTarget = target
		res, err := Run(c, "gups", "mtm")
		if err != nil {
			t.Fatal(err)
		}
		frac := res.Profiling.Seconds() / res.ExecTime.Seconds()
		if frac > target*1.5+0.005 {
			t.Errorf("target %.0f%%: profiling share %.3f", target*100, frac)
		}
	}
}

// TestCXLGenerality exercises the §8 claim: MTM's design is not tied to
// the Optane machine — on a DRAM + direct-CXL + switched-CXL box it still
// runs, promotes, and beats the no-migration baseline's hot placement.
func TestCXLGenerality(t *testing.T) {
	cfg := quickCfg()
	cfg.CXL = true
	cfg.OpsFactor = 0.2
	res, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NodeAccesses) != 3 {
		t.Fatalf("node count = %d, want 3", len(res.NodeAccesses))
	}
	if res.PromotedBytes == 0 {
		t.Fatal("MTM promoted nothing on the CXL machine")
	}
	ft, err := Run(cfg, "gups", "first-touch")
	if err != nil {
		t.Fatal(err)
	}
	// DRAM share of application accesses must not regress vs first-touch.
	mtmFast := float64(res.NodeAccesses[0]) / float64(res.TotalAccesses)
	ftFast := float64(ft.NodeAccesses[0]) / float64(ft.TotalAccesses)
	if mtmFast < ftFast*0.95 {
		t.Fatalf("MTM DRAM share %.3f well below first-touch %.3f", mtmFast, ftFast)
	}
}

// TestMemoryOverheadTiny checks Table 5's claim at simulation scale: the
// metadata MTM keeps is a vanishing fraction of the managed memory. (The
// paper reports <0.01% at terabyte scale; scaled down, region count per
// byte is the same, so the ratio holds within an order of magnitude.)
func TestMemoryOverheadTiny(t *testing.T) {
	cfg := quickCfg()
	cfg.OpsFactor = 0.1
	s, err := NewSolution("mtm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWorkload("gups", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg)
	sim.Run(e, w, s, 20)
	prof := s.(*policy.MTM).Prof.(*profiler.MTM)
	over := prof.MemoryOverheadBytes()
	mem := e.AS.TotalBytes()
	if ratio := float64(over) / float64(mem); ratio > 0.001 {
		t.Fatalf("metadata ratio %.5f, want < 0.1%%", ratio)
	}
}

func TestFaultScenarioEBusyStormCompletes(t *testing.T) {
	// The acceptance bar for the failure model: a 10% per-page EBUSY storm
	// on gups under mtm must finish the workload — slower, never stuck.
	cfg := quickCfg()
	cfg.OpsFactor = 0.2
	cfg.Faults = "ebusy-storm"
	res, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	if !res.Completed {
		t.Fatal("run under ebusy-storm did not complete")
	}
	if res.MigrationRetries == 0 {
		t.Fatal("ebusy-storm injected no retries")
	}
}

func TestFaultsDisabledBitIdentical(t *testing.T) {
	// Determinism contract: "" and "none" are the same scenario, and an
	// attached injector with a zero config must not perturb the engine's
	// random stream or accounting in any way.
	cfg := quickCfg()
	cfg.OpsFactor = 0.2
	base, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	cfg2 := cfg
	cfg2.Faults = "none"
	named, err := Run(cfg2, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, named) {
		t.Fatal(`results differ between Faults "" and "none"`)
	}
	w, err := NewWorkload("gups", cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSolution("mtm", cfg)
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(cfg)
	e.SetFaultPlane(fault.NewInjector(fault.Config{}, 99))
	attached, err := sim.Run(e, w, s, MaxIntervals)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, attached) {
		t.Fatal("zero-config injector perturbed the run")
	}
}

func TestValidateRejectsDegenerateConfigs(t *testing.T) {
	cfg := quickCfg()
	cfg.Faults = "bogus"
	if err := cfg.Validate(); err == nil {
		t.Fatal("unknown fault scenario passed Validate")
	}
	if _, err := Run(cfg, "gups", "mtm"); err == nil {
		t.Fatal("Run accepted unknown fault scenario")
	}
	ext := quickCfg()
	ext.Scale = 1 << 40 // Interval = 10s/Scale truncates to 0ns
	if err := ext.Validate(); err == nil {
		t.Fatal("extreme Scale passed Validate")
	}
	if _, err := Run(ext, "gups", "mtm"); err == nil {
		t.Fatal("Run accepted a zero-interval config")
	}
	// Explicit overrides rescue an extreme scale.
	ext.Interval = time.Millisecond
	ext.MigrateBudget = tier.MB
	if err := ext.Validate(); err != nil {
		t.Fatalf("explicit Interval/MigrateBudget still rejected: %v", err)
	}
	neg := quickCfg()
	neg.Parallelism = -1
	if err := neg.Validate(); err == nil {
		t.Fatal("negative Parallelism passed Validate")
	}
	if _, err := Run(neg, "gups", "mtm"); err == nil {
		t.Fatal("Run accepted negative Parallelism")
	}
	neg.Parallelism = 0 // GOMAXPROCS default
	if err := neg.Validate(); err != nil {
		t.Fatalf("zero Parallelism rejected: %v", err)
	}
}
