// Command mtmtrace records a workload's page-level access trace to a file
// or replays a recorded trace under any page-management solution. A trace
// decouples workload generation from policy evaluation: every solution
// sees byte-for-byte identical traffic.
//
// Usage:
//
//	mtmtrace -record gups.trace -workload gups -ops 0.2
//	mtmtrace -replay gups.trace -solution mtm
//	mtmtrace -replay gups.trace -solution first-touch
package main

import (
	"flag"
	"fmt"
	"os"

	"mtm"
	"mtm/internal/sim"
	"mtm/internal/trace"
)

func main() {
	var (
		record = flag.String("record", "", "record the workload's trace to this file")
		replay = flag.String("replay", "", "replay a trace file")
		wl     = flag.String("workload", "gups", "workload to record")
		sol    = flag.String("solution", "mtm", "solution to run")
		scale  = flag.Int64("scale", 256, "machine scale divisor")
		ops    = flag.Float64("ops", 0.2, "workload length factor (recording)")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	cfg := mtm.DefaultConfig()
	cfg.Scale = *scale
	cfg.OpsFactor = *ops
	cfg.Seed = *seed

	switch {
	case *record != "":
		if err := doRecord(cfg, *wl, *sol, *record); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	case *replay != "":
		if err := doReplay(cfg, *replay, *sol); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	default:
		fmt.Fprintln(os.Stderr, "one of -record or -replay is required")
		os.Exit(2)
	}
}

func doRecord(cfg mtm.Config, workload, solution, path string) error {
	w, err := mtm.NewWorkload(workload, cfg)
	if err != nil {
		return err
	}
	s, err := mtm.NewSolution(solution, cfg)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	rec := trace.NewRecorder(w, trace.NewWriter(f))
	res, err := mtm.RunWith(cfg, rec, s)
	if err != nil {
		return err
	}
	if err := rec.Err(); err != nil {
		return err
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "warning: recording truncated after %d intervals without completing\n", res.Intervals)
	}
	if err := rec.Out.Flush(); err != nil {
		return err
	}
	fmt.Printf("recorded %d accesses over %d intervals to %s (exec %v under %s)\n",
		rec.Out.Records(), res.Intervals, path, res.ExecTime, res.Solution)
	return nil
}

func doReplay(cfg mtm.Config, path, solution string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.Read(f)
	if err != nil {
		return err
	}
	s, err := mtm.NewSolution(solution, cfg)
	if err != nil {
		return err
	}
	var res *sim.Result
	res, err = mtm.RunWith(cfg, trace.NewReplay(tr), s)
	if err != nil {
		return err
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "warning: replay truncated after %d intervals without completing\n", res.Intervals)
	}
	fmt.Printf("replayed %d intervals under %s: exec=%v app=%v prof=%v mig=%v promoted=%dMB\n",
		len(tr.Intervals), res.Solution, res.ExecTime, res.App, res.Profiling, res.Migration, res.PromotedBytes>>20)
	return nil
}
