// Command promlint validates a Prometheus text exposition file (the
// output of mtmsim -metrics-format prom). CI runs it on a freshly
// generated export; exit 0 means the file parses.
//
// Usage:
//
//	promlint out.prom
//	mtmsim -metrics /dev/stdout -metrics-format prom ... | promlint
package main

import (
	"fmt"
	"io"
	"os"

	"mtm/internal/promlint"
)

func main() {
	var r io.Reader = os.Stdin
	name := "<stdin>"
	if len(os.Args) > 1 {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "promlint:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
		name = os.Args[1]
	}
	if err := promlint.Lint(r); err != nil {
		fmt.Fprintf(os.Stderr, "promlint: %s: %v\n", name, err)
		os.Exit(1)
	}
	fmt.Printf("promlint: %s OK\n", name)
}
