// Command experiments regenerates the tables and figures of the MTM
// paper's evaluation (§9) on the simulated multi-tiered memory system.
//
// Usage:
//
//	experiments                 # run every experiment at quick settings
//	experiments -exp fig4       # run one experiment
//	experiments -full           # paper-equivalent run lengths (slower)
//	experiments -scale 64       # larger simulated machine
//
// Output is plain text, one section per figure/table, with the same rows
// and series the paper reports.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"mtm/internal/experiments"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment id (fig1..fig12, tab3..tab7, or 'all')")
		scale = flag.Int64("scale", 256, "machine scale divisor (64 = ~27GB simulated machine)")
		ops   = flag.Float64("ops", 0.5, "workload length factor (1.0 = paper-equivalent)")
		full  = flag.Bool("full", false, "shorthand for -ops 1.0")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()
	if *full {
		*ops = 1.0
	}
	o := experiments.Options{Scale: *scale, OpsFactor: *ops, Seed: *seed}

	ids := experiments.Names()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		run, ok := experiments.All[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q; have %v\n", id, experiments.Names())
			os.Exit(2)
		}
		start := time.Now()
		fmt.Println(run(o))
		fmt.Printf("[%s completed in %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}
