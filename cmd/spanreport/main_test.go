package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtm"
	"mtm/internal/admission"
	"mtm/internal/span"
)

// traced runs a small traced simulation and returns the result plus its
// JSONL trace bytes.
func traced(t *testing.T, workload, solution string) (*mtm.Result, []byte) {
	t.Helper()
	cfg := mtm.DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.1
	cfg.Trace = &span.Config{}
	res, err := mtm.Run(cfg, workload, solution)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Spans == nil {
		t.Fatal("run produced no span export")
	}
	var buf bytes.Buffer
	if err := res.Spans.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	return res, buf.Bytes()
}

// TestBreakdownMatchesResult is the acceptance cross-check: the analyzer
// must reproduce the run's app/profiling/migration breakdown from the
// JSONL stream alone, exactly.
func TestBreakdownMatchesResult(t *testing.T) {
	res, trace := traced(t, "gups", "mtm")
	rep, err := analyze(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	if got := len(rep.Intervals); got != res.Intervals {
		t.Errorf("intervals: trace has %d, result has %d", got, res.Intervals)
	}
	app, prof, mig := rep.Totals()
	if app != res.App {
		t.Errorf("app time: trace sums to %v, result says %v", app, res.App)
	}
	if prof != res.Profiling {
		t.Errorf("profiling time: trace sums to %v, result says %v", prof, res.Profiling)
	}
	if mig != res.Migration {
		t.Errorf("migration time: trace sums to %v, result says %v", mig, res.Migration)
	}
	var promoted, demoted int64
	for _, row := range rep.Intervals {
		promoted += row.PromotedBytes
		demoted += row.DemotedBytes
	}
	if promoted != res.PromotedBytes {
		t.Errorf("promoted bytes: trace sums to %d, result says %d", promoted, res.PromotedBytes)
	}
	if demoted != res.DemotedBytes {
		t.Errorf("demoted bytes: trace sums to %d, result says %d", demoted, res.DemotedBytes)
	}
}

// TestDecisionProvenanceCoversMigrations asserts every migrated byte has a
// matching promote/demote decision event carrying its provenance.
func TestDecisionProvenanceCoversMigrations(t *testing.T) {
	res, trace := traced(t, "gups", "mtm")
	rep, err := analyze(bytes.NewReader(trace))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var promoted, demoted int64
	for _, d := range rep.Decisions {
		switch d.Outcome {
		case "promote":
			promoted += d.Bytes
		case "demote":
			demoted += d.Bytes
		}
		if d.Rule == "" {
			t.Errorf("decision %+v has no rule", d)
		}
		if d.VMA == "" {
			t.Errorf("decision %+v has no region identity", d)
		}
	}
	if promoted != res.PromotedBytes {
		t.Errorf("promote decisions cover %d bytes, result promoted %d", promoted, res.PromotedBytes)
	}
	if demoted != res.DemotedBytes {
		t.Errorf("demote decisions cover %d bytes, result demoted %d", demoted, res.DemotedBytes)
	}
}

// TestExplainOutput runs the CLI end to end and checks the explain view
// prints a provenance line per migration decision.
func TestExplainOutput(t *testing.T) {
	_, trace := traced(t, "gups", "mtm")
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, trace, 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", path}, &out, &errb); code != 0 {
		t.Fatalf("spanreport exited %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"solution:  MTM", "profiling:", "rule=fast-promotion", "rule=slow-demotion", "threshold=", "dst="} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q\n%s", want, s)
		}
	}
	rep, err := analyze(bytes.NewReader(trace))
	if err != nil {
		t.Fatal(err)
	}
	var migrated int
	for _, d := range rep.Decisions {
		if d.Outcome == "promote" || d.Outcome == "demote" {
			migrated++
		}
	}
	if migrated == 0 {
		t.Fatal("trace has no migration decisions; test workload too small")
	}
	if got := strings.Count(s, "promote ") + strings.Count(s, "demote "); got < migrated {
		t.Errorf("explain printed %d migration lines, trace has %d decisions", got, migrated)
	}
}

// TestExplainAdmissionROI asserts admission-gated decisions render their
// ROI evidence in the explain view: the admission rule names and the
// roi/allowed/budget fields parsed from the span attributes.
func TestExplainAdmissionROI(t *testing.T) {
	cfg := mtm.DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Trace = &span.Config{}
	cfg.Admission = &admission.Config{}
	res, err := mtm.Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var buf bytes.Buffer
	if err := res.Spans.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	rep, err := analyze(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var withROI int
	for _, d := range rep.Decisions {
		if d.HasROI {
			withROI++
		}
	}
	if withROI == 0 {
		t.Fatal("no decision carries ROI evidence; admission spans not parsed")
	}
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-explain", path}, &out, &errb); code != 0 {
		t.Fatalf("spanreport exited %d: %s", code, errb.String())
	}
	s := out.String()
	for _, want := range []string{"rule=" + admission.RuleAdmitted, "roi=", "allowed=", "budget="} {
		if !strings.Contains(s, want) {
			t.Errorf("explain output missing %q", want)
		}
	}
	if got := strings.Count(s, "roi="); got < withROI {
		t.Errorf("explain printed %d roi fields, trace has %d ROI decisions", got, withROI)
	}
}

// TestUsageErrors checks flag and input validation exit codes.
func TestUsageErrors(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no input: exit %d, want 2", code)
	}
	if code := run([]string{filepath.Join(t.TempDir(), "missing.jsonl")}, &out, &errb); code != 1 {
		t.Errorf("missing file: exit %d, want 1", code)
	}
	path := filepath.Join(t.TempDir(), "bad.jsonl")
	if err := os.WriteFile(path, []byte("{\"format\":\"other\"}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := run([]string{path}, &out, &errb); code != 1 {
		t.Errorf("bad header: exit %d, want 1", code)
	}
}
