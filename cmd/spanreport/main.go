// Command spanreport analyzes a JSONL span trace written by
// `mtmsim -spans <file>` (or any span.Export.WriteJSONL output) and prints
// the paper-style per-interval execution-time breakdown — app vs profiling
// vs migration, per solution — reconstructed from the trace alone.
//
// Usage:
//
//	spanreport trace.jsonl
//	spanreport -in trace.jsonl -explain
//
// -explain additionally prints one provenance line per migration decision:
// which region was considered, the hotness estimate at that instant, the
// policy rule that fired, the threshold it compared against, and the
// outcome (destination and bytes for promote/demote; the reason for
// skip/defer/stop). Decisions gated by migration admission control carry
// the estimated ROI, the rule that fired ("roi-admitted",
// "roi-below-min", "victim-too-hot", "budget-exhausted", "low-roi-shed"),
// and the pair's remaining budget — the full answer to "why was this
// move refused". On -admission-learn runs each admission-gated decision
// also carries the online-learned ROI floor it was held against
// (rendered as floor=…), so the floor trajectory is readable straight
// off the decision log. Decisions vetoed by tier health carry their evidence
// inline: a skip under rule "breaker-open" names the breaker state, the
// consecutive aborts that tripped it, when the cool-down ends, and the
// pair's lifetime trip count; a skip under "tier-unavailable" names the
// destination's health state. Health-category spans (poisonings,
// state transitions, breaker trips, drain stalls) are listed after the
// decision log.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mtm/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: flags in, report out, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("spanreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		in      = fs.String("in", "", "input JSONL span trace (or pass as the positional argument)")
		explain = fs.Bool("explain", false, "print a provenance line for every migration decision")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	path := *in
	if path == "" && fs.NArg() == 1 {
		path = fs.Arg(0)
	}
	if path == "" || fs.NArg() > 1 {
		fmt.Fprintln(stderr, "usage: spanreport [-explain] [-in] <trace.jsonl>")
		return 2
	}

	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(stderr, "spanreport:", err)
		return 1
	}
	defer f.Close()
	rep, err := analyze(f)
	if err != nil {
		fmt.Fprintf(stderr, "spanreport: %s: %v\n", path, err)
		return 1
	}
	rep.write(stdout, *explain)
	return 0
}

// line mirrors the JSONL span schema (span.Export.WriteJSONL).
type line struct {
	Interval int            `json:"interval"`
	Cat      string         `json:"cat"`
	Name     string         `json:"name"`
	TsNs     int64          `json:"ts_ns"`
	DurNs    int64          `json:"dur_ns"`
	Attrs    map[string]any `json:"attrs"`
}

// intervalRow is one interval's phase breakdown, summed from "phase" spans.
type intervalRow struct {
	App, Profiling, Migration time.Duration
	PromotedBytes             int64
	DemotedBytes              int64
	BackgroundNs              int64
	Accesses                  int64
}

// decision is one migration-decision provenance event.
type decision struct {
	Interval  int
	Outcome   string // promote, demote, skip, defer, stop
	Rule      string
	VMA       string
	PageStart int64
	PageEnd   int64
	WHI       float64
	Threshold float64
	HasThresh bool
	Dst       string
	Bytes     int64
	// Admission evidence, present on admission-gated decisions (rules
	// "roi-admitted", "roi-below-min", "victim-too-hot",
	// "budget-exhausted", "low-roi-shed"): the estimated return on
	// investment for the move and the pair's budget at decision time.
	ROI          float64
	HasROI       bool
	AllowedBytes int64
	BudgetBytes  int64
	// Floor is the effective promotion ROI floor at decision time —
	// online-learned when the run had -admission-learn, static otherwise.
	// Only emitted on learn-enabled runs.
	Floor    float64
	HasFloor bool
	// Breaker evidence, present on "breaker-open" skips.
	Breaker          string
	BreakerAborts    int64
	BreakerOpenUntil int64
	BreakerTrips     int64
	// TierState is the destination's health state on "tier-unavailable"
	// skips.
	TierState string
}

// healthEvent is one health-category span (poisoning, state transition,
// breaker trip, drain stall).
type healthEvent struct {
	Interval int
	Name     string
	Attrs    map[string]any
}

// report is the analyzed trace.
type report struct {
	Meta      map[string]string
	Intervals map[int]*intervalRow
	Decisions []decision
	Health    []healthEvent
	Dropped   int64
	Spans     int
}

// Totals sums the per-interval phase durations.
func (rep *report) Totals() (app, prof, mig time.Duration) {
	for _, row := range rep.Intervals {
		app += row.App
		prof += row.Profiling
		mig += row.Migration
	}
	return
}

// analyze reads a JSONL span stream and aggregates the per-interval phase
// breakdown plus the decision event list.
func analyze(r io.Reader) (*report, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("empty trace")
	}
	meta, spans, dropped, err := span.ReadJSONLHeader(sc.Bytes())
	if err != nil {
		return nil, err
	}
	rep := &report{
		Meta:      meta,
		Intervals: make(map[int]*intervalRow),
		Dropped:   dropped,
		Spans:     spans,
	}
	for sc.Scan() {
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return nil, fmt.Errorf("bad span line: %w", err)
		}
		switch l.Cat {
		case "phase":
			row := rep.Intervals[l.Interval]
			if row == nil {
				row = &intervalRow{}
				rep.Intervals[l.Interval] = row
			}
			switch l.Name {
			case "app":
				row.App += time.Duration(l.DurNs)
				row.Accesses += attrInt(l.Attrs, "accesses")
			case "profiling":
				row.Profiling += time.Duration(l.DurNs)
			case "migration":
				row.Migration += time.Duration(l.DurNs)
				row.PromotedBytes += attrInt(l.Attrs, "promoted_bytes")
				row.DemotedBytes += attrInt(l.Attrs, "demoted_bytes")
				row.BackgroundNs += attrInt(l.Attrs, "background_ns")
			}
		case "decision":
			d := decision{
				Interval:  l.Interval,
				Outcome:   l.Name,
				Rule:      attrString(l.Attrs, "rule"),
				VMA:       attrString(l.Attrs, "vma"),
				PageStart: attrInt(l.Attrs, "page_start"),
				PageEnd:   attrInt(l.Attrs, "page_end"),
				WHI:       attrFloat(l.Attrs, "whi"),
				Dst:       attrString(l.Attrs, "dst"),
				Bytes:     attrInt(l.Attrs, "bytes"),
			}
			if v, ok := l.Attrs["threshold"]; ok {
				if f, ok := v.(float64); ok {
					d.Threshold, d.HasThresh = f, true
				}
			}
			if v, ok := l.Attrs["roi"]; ok {
				if f, ok := v.(float64); ok {
					d.ROI, d.HasROI = f, true
					d.AllowedBytes = attrInt(l.Attrs, "allowed_bytes")
					d.BudgetBytes = attrInt(l.Attrs, "budget_bytes")
				}
			}
			if v, ok := l.Attrs["floor"]; ok {
				if f, ok := v.(float64); ok {
					d.Floor, d.HasFloor = f, true
				}
			}
			if d.Rule == "breaker-open" {
				d.Breaker = attrString(l.Attrs, "breaker")
				d.BreakerAborts = attrInt(l.Attrs, "consecutive_aborts")
				d.BreakerOpenUntil = attrInt(l.Attrs, "open_until_ns")
				d.BreakerTrips = attrInt(l.Attrs, "breaker_trips")
			}
			if d.Rule == "tier-unavailable" {
				d.TierState = attrString(l.Attrs, "tier_state")
			}
			rep.Decisions = append(rep.Decisions, d)
		case "health":
			rep.Health = append(rep.Health, healthEvent{
				Interval: l.Interval,
				Name:     l.Name,
				Attrs:    l.Attrs,
			})
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

func attrInt(m map[string]any, key string) int64 {
	if v, ok := m[key].(float64); ok {
		return int64(v)
	}
	return 0
}

func attrFloat(m map[string]any, key string) float64 {
	if v, ok := m[key].(float64); ok {
		return v
	}
	return 0
}

func attrString(m map[string]any, key string) string {
	if v, ok := m[key].(string); ok {
		return v
	}
	return ""
}

// write renders the report: per-interval breakdown, totals, and — with
// explain — the decision provenance log.
func (rep *report) write(w io.Writer, explain bool) {
	fmt.Fprintf(w, "solution:  %s\n", rep.Meta["solution"])
	fmt.Fprintf(w, "workload:  %s\n", rep.Meta["workload"])
	fmt.Fprintf(w, "intervals: %d (%d spans", len(rep.Intervals), rep.Spans)
	if rep.Dropped > 0 {
		fmt.Fprintf(w, ", %d dropped", rep.Dropped)
	}
	fmt.Fprintln(w, ")")
	fmt.Fprintln(w)

	fmt.Fprintf(w, "%8s %14s %14s %14s %7s %7s %10s %10s\n",
		"interval", "app", "profiling", "migration", "prof%", "mig%", "promoted", "demoted")
	keys := make([]int, 0, len(rep.Intervals))
	for k := range rep.Intervals {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		row := rep.Intervals[k]
		total := row.App + row.Profiling + row.Migration
		fmt.Fprintf(w, "%8d %14v %14v %14v %6.1f%% %6.1f%% %9dK %9dK\n",
			k, row.App, row.Profiling, row.Migration,
			pct(row.Profiling, total), pct(row.Migration, total),
			row.PromotedBytes>>10, row.DemotedBytes>>10)
	}
	app, prof, mig := rep.Totals()
	total := app + prof + mig
	fmt.Fprintln(w)
	fmt.Fprintf(w, "exec time:  %v (virtual)\n", total)
	fmt.Fprintf(w, "  app:       %v\n", app)
	fmt.Fprintf(w, "  profiling: %v (%.1f%%)\n", prof, pct(prof, total))
	fmt.Fprintf(w, "  migration: %v (%.1f%%)\n", mig, pct(mig, total))

	if !explain {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "decisions: %d\n", len(rep.Decisions))
	for _, d := range rep.Decisions {
		fmt.Fprintf(w, "  [%4d] %-7s %s pages %d-%d whi=%.4g rule=%s",
			d.Interval, d.Outcome, d.VMA, d.PageStart, d.PageEnd, d.WHI, d.Rule)
		if d.HasThresh {
			fmt.Fprintf(w, " threshold=%.4g", d.Threshold)
		}
		if d.Dst != "" {
			fmt.Fprintf(w, " dst=%s", d.Dst)
		}
		if d.Bytes > 0 {
			fmt.Fprintf(w, " bytes=%d", d.Bytes)
		}
		if d.HasROI {
			// Admission evidence: the estimated return on the copy and how
			// much of the request the pair's budget could carry.
			fmt.Fprintf(w, " roi=%.4g allowed=%d budget=%d",
				d.ROI, d.AllowedBytes, d.BudgetBytes)
		}
		if d.HasFloor {
			// The learned ROI floor the promotion was held against.
			fmt.Fprintf(w, " floor=%.4g", d.Floor)
		}
		if d.Breaker != "" {
			// Breaker evidence: why the pair was vetoed and until when.
			fmt.Fprintf(w, " breaker=%s consecutive_aborts=%d open_until=%v trips=%d",
				d.Breaker, d.BreakerAborts, time.Duration(d.BreakerOpenUntil), d.BreakerTrips)
		}
		if d.TierState != "" {
			fmt.Fprintf(w, " tier_state=%s", d.TierState)
		}
		fmt.Fprintln(w)
	}

	if len(rep.Health) == 0 {
		return
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "health events: %d\n", len(rep.Health))
	for _, h := range rep.Health {
		fmt.Fprintf(w, "  [%4d] %-15s", h.Interval, h.Name)
		keys := make([]string, 0, len(h.Attrs))
		for k := range h.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			switch v := h.Attrs[k].(type) {
			case float64:
				fmt.Fprintf(w, " %s=%v", k, int64(v))
			default:
				fmt.Fprintf(w, " %s=%v", k, v)
			}
		}
		fmt.Fprintln(w)
	}
}

func pct(part, whole time.Duration) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}
