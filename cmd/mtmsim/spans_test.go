package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"mtm/internal/span"
)

// TestSpansJSONLOutput: -spans writes a self-describing JSONL stream whose
// header parses and whose span count matches the body.
func TestSpansJSONLOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.jsonl")
	var errs bytes.Buffer
	if code := run(small("-spans", path), io.Discard, &errs); code != 0 {
		t.Fatalf("spans run exited %d: %s", code, errs.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	if !sc.Scan() {
		t.Fatal("trace file is empty")
	}
	meta, spans, dropped, err := span.ReadJSONLHeader(sc.Bytes())
	if err != nil {
		t.Fatalf("header: %v", err)
	}
	if meta["solution"] == "" || meta["workload"] == "" {
		t.Errorf("header meta missing run identity: %v", meta)
	}
	if dropped != 0 {
		t.Errorf("small run dropped %d spans", dropped)
	}
	var lines int
	for sc.Scan() {
		if !json.Valid(sc.Bytes()) {
			t.Fatalf("invalid JSON line: %s", sc.Bytes())
		}
		lines++
	}
	if lines != spans {
		t.Errorf("header says %d spans, body has %d lines", spans, lines)
	}
	if lines == 0 {
		t.Error("trace has no spans")
	}
}

// TestSpansChromeOutput: -spans-format chrome writes a single JSON object
// with a traceEvents array (the Perfetto/chrome://tracing input shape).
func TestSpansChromeOutput(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	var errs bytes.Buffer
	if code := run(small("-spans", path, "-spans-format", "chrome"), io.Discard, &errs); code != 0 {
		t.Fatalf("spans run exited %d: %s", code, errs.String())
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(b, &doc); err != nil {
		t.Fatalf("chrome trace is not JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("chrome trace has no events")
	}
	var complete, meta bool
	for _, ev := range doc.TraceEvents {
		switch ev["ph"] {
		case "X":
			complete = true
		case "M":
			meta = true
		}
	}
	if !complete || !meta {
		t.Errorf("chrome trace lacks complete (%v) or metadata (%v) events", complete, meta)
	}
}

// TestInvalidSpansFormatRejected: a bad -spans-format is a usage error,
// caught before any simulation runs.
func TestInvalidSpansFormatRejected(t *testing.T) {
	var errs bytes.Buffer
	if code := run(small("-spans", "x", "-spans-format", "xml"), io.Discard, &errs); code != 2 {
		t.Fatalf("bad format exited %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "spans-format") {
		t.Fatalf("unhelpful error: %s", errs.String())
	}
}

// TestPprofProfiles: -cpuprofile and -memprofile write non-empty pprof
// files, and `go tool pprof -top` can read them when go is available.
func TestPprofProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pb.gz")
	mem := filepath.Join(dir, "mem.pb.gz")
	var errs bytes.Buffer
	if code := run(small("-cpuprofile", cpu, "-memprofile", mem), io.Discard, &errs); code != 0 {
		t.Fatalf("profiled run exited %d: %s", code, errs.String())
	}
	for _, path := range []string{cpu, mem} {
		fi, err := os.Stat(path)
		if err != nil {
			t.Fatalf("profile not written: %v", err)
		}
		if fi.Size() == 0 {
			t.Fatalf("profile %s is empty", path)
		}
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH; skipping pprof parse check")
	}
	for _, path := range []string{cpu, mem} {
		out, err := exec.Command(goBin, "tool", "pprof", "-top", path).CombinedOutput()
		if err != nil {
			t.Errorf("go tool pprof -top %s: %v\n%s", path, err, out)
		}
	}
}
