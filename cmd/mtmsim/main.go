// Command mtmsim runs one workload under one page-management solution on
// the simulated multi-tiered memory machine and prints the execution-time
// breakdown and per-tier access distribution.
//
// Usage:
//
//	mtmsim -workload gups -solution mtm
//	mtmsim -workload voltdb -solution tiered-autonuma -scale 64 -ops 1
//	mtmsim -workload gups -solution mtm -faults ebusy-storm
//	mtmsim -workload gups -solution mtm -faults dimm-death -health -audit
//	mtmsim -workload pingpong -solution mtm -admission
//	mtmsim -workload pingpong -solution mtm -admission-learn -admission-lanes default
//	mtmsim -workload pingpong -solution nomad -budget-mb 6400 -audit
//	mtmsim -workload gups -solution mtm -parallel 4 -json
//	mtmsim -workload gups -solution mtm -metrics out.prom -metrics-format prom
//	mtmsim -workload pingpong -solution mtm -fidelity -json
//	mtmsim -list
//
// -parallel sets the worker count for the sharded profiling/migration
// phases (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at
// every setting. -json emits the Result as JSON on stdout, which is what
// the CI determinism gate diffs across parallelism levels. A failed run
// (e.g. out of memory under -faults capacity-crunch) still emits the
// partial Result with an "error" field, and exits non-zero.
//
// -health enables the tier-health subsystem (poisoning, draining,
// circuit breakers) even without a fault scenario; scenarios that inject
// memory errors or tier failures (dimm-death, cxl-flaky) enable it
// automatically. -audit cross-checks the engine's residency, capacity and
// migration ledgers after the run and fails on any drift.
//
// -admission enables migration admission control: every planned move
// passes an ROI gate, a per-tier-pair bandwidth budget, and a ping-pong
// cool-down; refusals appear in the report's "admission:" line and, with
// -spans, as per-decision provenance (see cmd/spanreport -explain).
//
// -admission-learn turns the static ROI floor into an online-learned
// per-tier-pair floor driven by hindsight verdicts (promoted-and-
// reaccessed vs promoted-wasted); the floor at each decision rides in the
// span provenance and the mtm_admission_minroi gauges. -admission-lanes
// splits traffic into normal/drain/emergency classes with a reserved
// bandwidth slice for the critical lanes, demand-scaled budget refill,
// background-traffic charging, and a starvation watchdog ("default" and
// "strict" presets; kebab-case overrides like strict,reserve-frac=0.4).
// Both imply -admission.
//
// -metrics enables the observability layer and writes its export to the
// given file; -metrics-format selects JSON (default) or Prometheus text
// exposition format.
//
// -fidelity enables the ground-truth fidelity oracle: per-interval hot-set
// precision/recall/F1 and rank agreement for the active profiler,
// estimation lag, a migration-outcome lineage (every committed move judged
// in hindsight within -fidelity-horizon intervals), and a time×address
// hotness heatmap (truth vs estimate; see cmd/heatreport). The block rides
// in the JSON result, so -fidelity requires -json.
//
// -spans enables the deterministic span tracer and writes the trace to the
// given file; -spans-format selects the self-describing JSONL stream
// (default; the cmd/spanreport input) or Chrome trace-event JSON, loadable
// in Perfetto (ui.perfetto.dev) or chrome://tracing. Span output is
// byte-identical at every -parallel setting.
//
// -cpuprofile and -memprofile write runtime/pprof profiles of the
// simulator itself (real host CPU/heap, not virtual time) for `go tool
// pprof`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"

	"mtm"
	"mtm/internal/admission"
	"mtm/internal/span"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable CLI body: flags in, report out, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("mtmsim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		wl        = fs.String("workload", "gups", "workload name")
		sol       = fs.String("solution", "mtm", "solution name")
		scale     = fs.Int64("scale", 256, "machine scale divisor")
		ops       = fs.Float64("ops", 0.5, "workload length factor")
		seed      = fs.Int64("seed", 1, "simulation seed")
		two       = fs.Bool("two-tier", false, "use the single-socket DRAM+PM machine")
		cxl       = fs.Bool("cxl", false, "use the DRAM + direct-CXL + switched-CXL machine")
		faults    = fs.String("faults", "none", "fault-injection scenario")
		budgetMB  = fs.Int64("budget-mb", 0, "per-interval migration budget in MB at full machine scale, divided by -scale like every capacity (0 = the default 800)")
		admit     = fs.Bool("admission", false, "enable migration admission control (ROI gate, bandwidth budgets, thrash suppression)")
		admLearn  = fs.Bool("admission-learn", false, "enable online MinROI learning on the admission layer (implies -admission)")
		admLanes  = fs.String("admission-lanes", "", "traffic-class lane config: preset name with kebab-case overrides, e.g. default or strict,reserve-frac=0.4 (implies -admission)")
		healthOn  = fs.Bool("health", false, "enable the tier-health subsystem (auto-enabled by mem-error/tier-fail scenarios)")
		audit     = fs.Bool("audit", false, "cross-check residency/capacity/migration ledgers after the run")
		parallel  = fs.Int("parallel", 0, "worker count for sharded phases (0 = GOMAXPROCS)")
		jsonOut   = fs.Bool("json", false, "emit the result as JSON instead of the text report")
		fidelity  = fs.Bool("fidelity", false, "enable the ground-truth fidelity oracle (requires -json; adds the Fidelity block)")
		fidHrz    = fs.Int("fidelity-horizon", 0, "migration-outcome resolution window in intervals (0 = the default; requires -fidelity)")
		metrics   = fs.String("metrics", "", "enable the metrics layer and write its export to this file")
		metricsFm = fs.String("metrics-format", "json", "metrics file format: json or prom")
		spans     = fs.String("spans", "", "enable the span tracer and write the trace to this file")
		spansFm   = fs.String("spans-format", "jsonl", "span file format: jsonl or chrome")
		cpuProf   = fs.String("cpuprofile", "", "write a host CPU profile to this file")
		memProf   = fs.String("memprofile", "", "write a host heap profile to this file")
		list      = fs.Bool("list", false, "list workloads, solutions and fault scenarios")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *list {
		fmt.Fprintln(stdout, "workloads:", mtm.WorkloadNames())
		fmt.Fprintln(stdout, "solutions:", mtm.SolutionNames())
		fmt.Fprintln(stdout, "faults:   ", mtm.FaultScenarios())
		return 0
	}
	if *metricsFm != "json" && *metricsFm != "prom" {
		fmt.Fprintf(stderr, "mtmsim: invalid -metrics-format %q (want json or prom)\n", *metricsFm)
		return 2
	}
	if *spansFm != "jsonl" && *spansFm != "chrome" {
		fmt.Fprintf(stderr, "mtmsim: invalid -spans-format %q (want jsonl or chrome)\n", *spansFm)
		return 2
	}
	if *fidelity && !*jsonOut {
		fmt.Fprintf(stderr, "mtmsim: -fidelity output is only emitted with -json (add -json or drop -fidelity)\n")
		return 2
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fmt.Fprintln(stderr, err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			fmt.Fprintln(stderr, err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows live objects
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(stderr, err)
			}
		}()
	}

	cfg := mtm.DefaultConfig()
	cfg.Scale = *scale
	cfg.OpsFactor = *ops
	cfg.Seed = *seed
	cfg.TwoTier = *two
	cfg.CXL = *cxl
	cfg.Faults = *faults
	if *budgetMB > 0 {
		cfg.MigrateBudget = *budgetMB << 20 / *scale
	}
	cfg.Health = *healthOn
	cfg.Audit = *audit
	cfg.Parallelism = *parallel
	cfg.Metrics = *metrics != ""
	if *spans != "" {
		cfg.Trace = &span.Config{}
	}
	if *admit {
		cfg.Admission = &admission.Config{}
	}
	cfg.AdmissionLearn = *admLearn
	cfg.AdmissionLanes = *admLanes
	if *admLanes != "" && !admission.ValidLanes(*admLanes) {
		fmt.Fprintf(stderr, "mtmsim: invalid -admission-lanes %q (presets: %v; overrides like reserve-frac=0.4)\n", *admLanes, admission.LanePresets())
		return 2
	}
	cfg.Fidelity = *fidelity
	cfg.FidelityHorizon = *fidHrz

	res, err := mtm.Run(cfg, *wl, *sol)
	if err != nil && res == nil {
		fmt.Fprintln(stderr, err)
		return 1
	}
	if err != nil {
		// Partial result: the run failed mid-flight (e.g. out of memory).
		// Keep going — the partial breakdown, JSON, and metrics are the
		// post-mortem evidence.
		fmt.Fprintf(stderr, "warning: run failed after %d intervals: %v\n", res.Intervals, err)
	}
	if res.Truncated {
		fmt.Fprintf(stderr, "warning: run truncated after %d intervals without completing; results cover a partial run\n", res.Intervals)
	}

	if *metrics != "" {
		if werr := writeMetrics(*metrics, *metricsFm, res); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}
	if *spans != "" {
		if werr := writeSpans(*spans, *spansFm, res); werr != nil {
			fmt.Fprintln(stderr, werr)
			return 1
		}
	}

	if *jsonOut {
		// The envelope carries the (possibly partial) result plus the run
		// error, so failed runs are still machine-readable.
		out := struct {
			*mtm.Result
			Error string `json:"error,omitempty"`
		}{Result: res}
		if err != nil {
			out.Error = err.Error()
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if eerr := enc.Encode(out); eerr != nil {
			fmt.Fprintln(stderr, eerr)
			return 1
		}
		if err != nil {
			return 1
		}
		return 0
	}

	fmt.Fprintf(stdout, "workload:   %s\n", res.Workload)
	fmt.Fprintf(stdout, "solution:   %s\n", res.Solution)
	fmt.Fprintf(stdout, "completed:  %v (%d intervals)\n", res.Completed, res.Intervals)
	fmt.Fprintf(stdout, "exec time:  %v (virtual)\n", res.ExecTime)
	fmt.Fprintf(stdout, "  app:       %v\n", res.App)
	fmt.Fprintf(stdout, "  profiling: %v (%.1f%%)\n", res.Profiling, pct(res.Profiling, res.ExecTime))
	fmt.Fprintf(stdout, "  migration: %v (%.1f%%)\n", res.Migration, pct(res.Migration, res.ExecTime))
	fmt.Fprintf(stdout, "background copy: %v\n", res.Background)
	fmt.Fprintf(stdout, "promoted:   %d MB, demoted: %d MB\n", res.PromotedBytes>>20, res.DemotedBytes>>20)
	if res.MigrationRetries+res.MigrationAborts+res.DeferredPromotions+res.EmergencyDemotions > 0 {
		fmt.Fprintf(stdout, "robustness: retries=%d aborts=%d wasted=%dKB deferred-promotions=%d emergency-demotions=%d\n",
			res.MigrationRetries, res.MigrationAborts, res.WastedBytes>>10, res.DeferredPromotions, res.EmergencyDemotions)
	}
	if res.AdmissionAdmits+res.AdmissionDefers+res.AdmissionRejects+res.ThrashSuppressed > 0 {
		fmt.Fprintf(stdout, "admission:  admitted=%d deferred=%d rejected=%d thrash-suppressed=%d\n",
			res.AdmissionAdmits, res.AdmissionDefers, res.AdmissionRejects, res.ThrashSuppressed)
	}
	if l := res.AdmissionLanes; l != nil {
		fmt.Fprintf(stdout, "lanes:      normal=%d/%d drain=%d/%d emergency=%d/%d starvations=%d\n",
			l.Normal.Admits, l.Normal.Requests, l.Drain.Admits, l.Drain.Requests,
			l.Emergency.Admits, l.Emergency.Requests, l.Starvations)
	}
	if res.PoisonedPages+res.PoisonRecoveries+res.DrainedBytes+res.BreakerTrips+res.DrainStalls > 0 {
		fmt.Fprintf(stdout, "health:     poisoned=%d recoveries=%d drained=%dKB breaker-trips=%d drain-stalls=%d\n",
			res.PoisonedPages, res.PoisonRecoveries, res.DrainedBytes>>10, res.BreakerTrips, res.DrainStalls)
	}
	topo := cfg.Topology()
	if len(res.TierStates) > 0 {
		fmt.Fprintln(stdout, "tier states:")
		for i, s := range res.TierStates {
			fmt.Fprintf(stdout, "  %-6s %s\n", topo.Nodes[i].Name, s)
		}
	}
	fmt.Fprintln(stdout, "accesses per node:")
	for i, n := range res.NodeAccesses {
		fmt.Fprintf(stdout, "  %-6s %12d (%.1f%%)\n", topo.Nodes[i].Name, n, 100*float64(n)/float64(res.TotalAccesses))
	}
	if err != nil {
		return 1
	}
	return 0
}

// writeMetrics writes the run's metrics export to path in the requested
// format.
func writeMetrics(path, format string, res *mtm.Result) error {
	if res.Metrics == nil {
		return fmt.Errorf("mtmsim: run produced no metrics export")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mtmsim: %w", err)
	}
	defer f.Close()
	switch format {
	case "prom":
		if err := res.Metrics.WriteProm(f); err != nil {
			return fmt.Errorf("mtmsim: writing %s: %w", path, err)
		}
	default:
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res.Metrics); err != nil {
			return fmt.Errorf("mtmsim: writing %s: %w", path, err)
		}
	}
	return f.Close()
}

// writeSpans writes the run's span trace to path in the requested format.
func writeSpans(path, format string, res *mtm.Result) error {
	if res.Spans == nil {
		return fmt.Errorf("mtmsim: run produced no span trace")
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("mtmsim: %w", err)
	}
	defer f.Close()
	switch format {
	case "chrome":
		if err := res.Spans.WriteChrome(f); err != nil {
			return fmt.Errorf("mtmsim: writing %s: %w", path, err)
		}
	default:
		if err := res.Spans.WriteJSONL(f); err != nil {
			return fmt.Errorf("mtmsim: writing %s: %w", path, err)
		}
	}
	return f.Close()
}

func pct(part, whole interface{ Seconds() float64 }) float64 {
	if whole.Seconds() == 0 {
		return 0
	}
	return 100 * part.Seconds() / whole.Seconds()
}
