// Command mtmsim runs one workload under one page-management solution on
// the simulated multi-tiered memory machine and prints the execution-time
// breakdown and per-tier access distribution.
//
// Usage:
//
//	mtmsim -workload gups -solution mtm
//	mtmsim -workload voltdb -solution tiered-autonuma -scale 64 -ops 1
//	mtmsim -workload gups -solution mtm -faults ebusy-storm
//	mtmsim -workload gups -solution mtm -parallel 4 -json
//	mtmsim -list
//
// -parallel sets the worker count for the sharded profiling/migration
// phases (0 = GOMAXPROCS, 1 = sequential); results are bit-identical at
// every setting. -json emits the Result as JSON on stdout, which is what
// the CI determinism gate diffs across parallelism levels.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"mtm"
)

func main() {
	var (
		wl       = flag.String("workload", "gups", "workload name")
		sol      = flag.String("solution", "mtm", "solution name")
		scale    = flag.Int64("scale", 256, "machine scale divisor")
		ops      = flag.Float64("ops", 0.5, "workload length factor")
		seed     = flag.Int64("seed", 1, "simulation seed")
		two      = flag.Bool("two-tier", false, "use the single-socket DRAM+PM machine")
		cxl      = flag.Bool("cxl", false, "use the DRAM + direct-CXL + switched-CXL machine")
		faults   = flag.String("faults", "none", "fault-injection scenario")
		parallel = flag.Int("parallel", 0, "worker count for sharded phases (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON instead of the text report")
		list     = flag.Bool("list", false, "list workloads, solutions and fault scenarios")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", mtm.WorkloadNames())
		fmt.Println("solutions:", mtm.SolutionNames())
		fmt.Println("faults:   ", mtm.FaultScenarios())
		return
	}

	cfg := mtm.DefaultConfig()
	cfg.Scale = *scale
	cfg.OpsFactor = *ops
	cfg.Seed = *seed
	cfg.TwoTier = *two
	cfg.CXL = *cxl
	cfg.Faults = *faults
	cfg.Parallelism = *parallel

	res, err := mtm.Run(cfg, *wl, *sol)
	if err != nil && res == nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err != nil {
		// Partial result: the run failed mid-flight (e.g. out of memory).
		fmt.Fprintf(os.Stderr, "warning: run failed after %d intervals: %v\n", res.Intervals, err)
	}
	if res.Truncated {
		fmt.Fprintf(os.Stderr, "warning: run truncated after %d intervals without completing; results cover a partial run\n", res.Intervals)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(res); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload:   %s\n", res.Workload)
	fmt.Printf("solution:   %s\n", res.Solution)
	fmt.Printf("completed:  %v (%d intervals)\n", res.Completed, res.Intervals)
	fmt.Printf("exec time:  %v (virtual)\n", res.ExecTime)
	fmt.Printf("  app:       %v\n", res.App)
	fmt.Printf("  profiling: %v (%.1f%%)\n", res.Profiling, pct(res.Profiling, res.ExecTime))
	fmt.Printf("  migration: %v (%.1f%%)\n", res.Migration, pct(res.Migration, res.ExecTime))
	fmt.Printf("background copy: %v\n", res.Background)
	fmt.Printf("promoted:   %d MB, demoted: %d MB\n", res.PromotedBytes>>20, res.DemotedBytes>>20)
	if res.MigrationRetries+res.MigrationAborts+res.DeferredPromotions+res.EmergencyDemotions > 0 {
		fmt.Printf("robustness: retries=%d aborts=%d wasted=%dKB deferred-promotions=%d emergency-demotions=%d\n",
			res.MigrationRetries, res.MigrationAborts, res.WastedBytes>>10, res.DeferredPromotions, res.EmergencyDemotions)
	}
	topo := cfg.Topology()
	fmt.Println("accesses per node:")
	for i, n := range res.NodeAccesses {
		fmt.Printf("  %-6s %12d (%.1f%%)\n", topo.Nodes[i].Name, n, 100*float64(n)/float64(res.TotalAccesses))
	}
}

func pct(part, whole interface{ Seconds() float64 }) float64 {
	if whole.Seconds() == 0 {
		return 0
	}
	return 100 * part.Seconds() / whole.Seconds()
}
