// Command mtmsim runs one workload under one page-management solution on
// the simulated multi-tiered memory machine and prints the execution-time
// breakdown and per-tier access distribution.
//
// Usage:
//
//	mtmsim -workload gups -solution mtm
//	mtmsim -workload voltdb -solution tiered-autonuma -scale 64 -ops 1
//	mtmsim -list
package main

import (
	"flag"
	"fmt"
	"os"

	"mtm"
)

func main() {
	var (
		wl    = flag.String("workload", "gups", "workload name")
		sol   = flag.String("solution", "mtm", "solution name")
		scale = flag.Int64("scale", 256, "machine scale divisor")
		ops   = flag.Float64("ops", 0.5, "workload length factor")
		seed  = flag.Int64("seed", 1, "simulation seed")
		two   = flag.Bool("two-tier", false, "use the single-socket DRAM+PM machine")
		cxl   = flag.Bool("cxl", false, "use the DRAM + direct-CXL + switched-CXL machine")
		list  = flag.Bool("list", false, "list workloads and solutions")
	)
	flag.Parse()

	if *list {
		fmt.Println("workloads:", mtm.WorkloadNames())
		fmt.Println("solutions:", mtm.SolutionNames())
		return
	}

	cfg := mtm.DefaultConfig()
	cfg.Scale = *scale
	cfg.OpsFactor = *ops
	cfg.Seed = *seed
	cfg.TwoTier = *two
	cfg.CXL = *cxl

	res, err := mtm.Run(cfg, *wl, *sol)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload:   %s\n", res.Workload)
	fmt.Printf("solution:   %s\n", res.Solution)
	fmt.Printf("completed:  %v (%d intervals)\n", res.Completed, res.Intervals)
	fmt.Printf("exec time:  %v (virtual)\n", res.ExecTime)
	fmt.Printf("  app:       %v\n", res.App)
	fmt.Printf("  profiling: %v (%.1f%%)\n", res.Profiling, pct(res.Profiling, res.ExecTime))
	fmt.Printf("  migration: %v (%.1f%%)\n", res.Migration, pct(res.Migration, res.ExecTime))
	fmt.Printf("background copy: %v\n", res.Background)
	fmt.Printf("promoted:   %d MB, demoted: %d MB\n", res.PromotedBytes>>20, res.DemotedBytes>>20)
	topo := cfg.Topology()
	fmt.Println("accesses per node:")
	for i, n := range res.NodeAccesses {
		fmt.Printf("  %-6s %12d (%.1f%%)\n", topo.Nodes[i].Name, n, 100*float64(n)/float64(res.TotalAccesses))
	}
}

func pct(part, whole interface{ Seconds() float64 }) float64 {
	if whole.Seconds() == 0 {
		return 0
	}
	return 100 * part.Seconds() / whole.Seconds()
}
