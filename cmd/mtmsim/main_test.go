package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mtm/internal/metrics"
	"mtm/internal/promlint"
)

// small returns CLI args for a fast run, with extras appended.
func small(extra ...string) []string {
	return append([]string{
		"-workload", "gups", "-solution", "mtm",
		"-scale", "512", "-ops", "0.1",
	}, extra...)
}

// TestJSONEmitsErrorEnvelopeOnOOM: a run that dies of capacity exhaustion
// must still print the partial Result as JSON, carry the failure in the
// "error" field, and exit non-zero.
func TestJSONEmitsErrorEnvelopeOnOOM(t *testing.T) {
	var out, errs bytes.Buffer
	code := run(small("-faults", "capacity-crunch", "-json"), &out, &errs)
	if code == 0 {
		t.Fatalf("OOM run exited 0 (stderr: %s)", errs.String())
	}
	var payload struct {
		Error         string `json:"error"`
		Solution      string
		TotalAccesses int64
	}
	if err := json.Unmarshal(out.Bytes(), &payload); err != nil {
		t.Fatalf("stdout is not JSON: %v\n%s", err, out.String())
	}
	if !strings.Contains(payload.Error, "out of memory") {
		t.Fatalf("error field = %q, want an out-of-memory message", payload.Error)
	}
	if payload.Solution == "" {
		t.Fatal("partial result fields missing from the envelope")
	}
}

// TestJSONCleanRunHasNoErrorField: the envelope must not add noise to
// successful runs (the determinism gate diffs this output).
func TestJSONCleanRunHasNoErrorField(t *testing.T) {
	var out bytes.Buffer
	if code := run(small("-json"), &out, io.Discard); code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	if bytes.Contains(out.Bytes(), []byte(`"error"`)) {
		t.Fatal("clean run emitted an error field")
	}
}

// TestMetricsPromOutputLints: -metrics file -metrics-format prom must
// produce a parseable Prometheus text exposition.
func TestMetricsPromOutputLints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.prom")
	var errs bytes.Buffer
	if code := run(small("-metrics", path, "-metrics-format", "prom"), io.Discard, &errs); code != 0 {
		t.Fatalf("metrics run exited %d: %s", code, errs.String())
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := promlint.Lint(f); err != nil {
		t.Fatalf("prom output does not lint: %v", err)
	}
}

// TestMetricsJSONSamplesEveryInterval: the exported time series must hold
// exactly one sample per profiling interval of the run.
func TestMetricsJSONSamplesEveryInterval(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.json")
	var out bytes.Buffer
	if code := run(small("-metrics", path, "-json"), &out, io.Discard); code != 0 {
		t.Fatalf("metrics run failed")
	}
	var res struct{ Intervals int }
	if err := json.Unmarshal(out.Bytes(), &res); err != nil {
		t.Fatal(err)
	}
	if res.Intervals < 1 {
		t.Fatalf("run completed in %d intervals; test needs at least one", res.Intervals)
	}
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var x metrics.Export
	if err := json.Unmarshal(b, &x); err != nil {
		t.Fatalf("metrics file is not an Export: %v", err)
	}
	if x.Series == nil {
		t.Fatal("export has no time series")
	}
	if got := len(x.Series.Samples); got != res.Intervals {
		t.Fatalf("series has %d samples, want one per interval (%d)", got, res.Intervals)
	}
}

// TestAdmissionFlag: -admission enables the gate and surfaces its
// counters in the text report; without the flag the JSON envelope must
// not mention admission at all (the determinism gate diffs that output
// against pre-admission baselines).
func TestAdmissionFlag(t *testing.T) {
	var out bytes.Buffer
	args := []string{
		"-workload", "pingpong", "-solution", "mtm",
		"-scale", "512", "-ops", "0.25", "-admission",
	}
	if code := run(args, &out, io.Discard); code != 0 {
		t.Fatalf("admission run exited %d", code)
	}
	if !strings.Contains(out.String(), "admission:") {
		t.Errorf("text report lacks the admission line:\n%s", out.String())
	}

	out.Reset()
	if code := run(small("-json"), &out, io.Discard); code != 0 {
		t.Fatalf("clean run exited %d", code)
	}
	if bytes.Contains(out.Bytes(), []byte("Admission")) {
		t.Error("admission-free JSON envelope mentions admission fields")
	}
}

// TestInvalidMetricsFormatRejected: a bad -metrics-format is a usage
// error, caught before any simulation runs.
func TestInvalidMetricsFormatRejected(t *testing.T) {
	var errs bytes.Buffer
	if code := run(small("-metrics", "x", "-metrics-format", "xml"), io.Discard, &errs); code != 2 {
		t.Fatalf("bad format exited %d, want 2", code)
	}
	if !strings.Contains(errs.String(), "metrics-format") {
		t.Fatalf("unhelpful error: %s", errs.String())
	}
}
