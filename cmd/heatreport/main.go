// Command heatreport renders the fidelity oracle's time×address hotness
// heatmap — ground truth and the profiler's estimate side by side — from
// an `mtmsim -fidelity -json` result file.
//
// Usage:
//
//	mtmsim -workload pingpong -solution mtm -fidelity -json > run.json
//	heatreport run.json
//	heatreport -format csv run.json > heat.csv
//	heatreport -format json run.json
//	heatreport -spans trace.jsonl run.json
//
// Each heatmap row is one profiling interval; each column is 1/64th of
// the simulated address space. ASCII (default) shades cells by hot-byte
// density so truth/estimate divergence is visible at a glance: columns
// hot in truth but blank in the estimate are profiler misses, the
// reverse are stale estimates. CSV emits one row per interval with
// truth_NN and est_NN columns (the CI artifact format); JSON re-emits
// the Fidelity block's heatmap with the summary statistics attached.
//
// With -spans (the `mtmsim -spans` JSONL trace of the same run), each
// ASCII row is annotated with the migration outcomes resolved that
// interval: +N moves judged good (promoted-and-reaccessed,
// demoted-correct, flip-resurrected), -N judged bad (promoted-wasted,
// demoted-and-refaulted). Intervals where the admission layer's
// starvation watchdog fired (an -admission-lanes run whose critical
// drain/emergency traffic waited too long) are flagged with
// !starved(class).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"mtm"
	"mtm/internal/fidelity"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// shades orders cell characters by hot-byte density (0 → blank).
const shades = " .:-=+*#%@"

// outcomeTally is the per-interval good/bad migration verdict count
// parsed from span outcome events, plus the traffic classes whose
// starvation watchdog fired that interval (lane-starvation events from
// an -admission-lanes run).
type outcomeTally struct {
	good, bad int
	starved   []string
}

// run is the testable CLI body: flags in, report out, exit code returned.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("heatreport", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		format = fs.String("format", "ascii", "output format: ascii, csv or json")
		spans  = fs.String("spans", "", "span JSONL trace of the same run; annotates rows with resolved migration outcomes")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *format != "ascii" && *format != "csv" && *format != "json" {
		fmt.Fprintf(stderr, "heatreport: invalid -format %q (want ascii, csv or json)\n", *format)
		return 2
	}
	if fs.NArg() != 1 {
		fmt.Fprintln(stderr, "usage: heatreport [-format ascii|csv|json] [-spans trace.jsonl] result.json")
		return 2
	}

	res, err := readResult(fs.Arg(0))
	if err != nil {
		fmt.Fprintln(stderr, "heatreport:", err)
		return 1
	}
	if res.Fidelity == nil || res.Fidelity.Heatmap == nil {
		fmt.Fprintln(stderr, "heatreport: result has no fidelity heatmap (run mtmsim with -fidelity -json)")
		return 1
	}

	var outcomes map[int]outcomeTally
	if *spans != "" {
		outcomes, err = readOutcomes(*spans)
		if err != nil {
			fmt.Fprintln(stderr, "heatreport:", err)
			return 1
		}
	}

	switch *format {
	case "csv":
		writeCSV(stdout, res.Fidelity.Heatmap)
	case "json":
		if err := writeJSON(stdout, res); err != nil {
			fmt.Fprintln(stderr, "heatreport:", err)
			return 1
		}
	default:
		writeASCII(stdout, res, outcomes)
	}
	return 0
}

// readResult decodes an mtmsim -json result envelope.
func readResult(path string) (*mtm.Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var res mtm.Result
	if err := json.Unmarshal(data, &res); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &res, nil
}

// readOutcomes extracts per-interval migration verdict tallies from a
// span JSONL trace.
func readOutcomes(path string) (map[int]outcomeTally, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[int]outcomeTally{}
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		line := string(sc.Bytes())
		isOutcome := strings.Contains(line, `"name":"outcome"`)
		isStarved := strings.Contains(line, `"name":"lane-starvation"`)
		if !isOutcome && !isStarved {
			continue
		}
		var ev struct {
			Interval int    `json:"interval"`
			Cat      string `json:"cat"`
			Name     string `json:"name"`
			Attrs    struct {
				Verdict string `json:"verdict"`
				Class   string `json:"class"`
			} `json:"attrs"`
		}
		if json.Unmarshal([]byte(line), &ev) != nil {
			continue
		}
		switch {
		case ev.Cat == "migration" && ev.Name == "outcome":
			t := out[ev.Interval]
			switch ev.Attrs.Verdict {
			case "promoted-and-reaccessed", "demoted-correct", "flip-resurrected":
				t.good++
			default:
				t.bad++
			}
			out[ev.Interval] = t
		case ev.Cat == "admission" && ev.Name == "lane-starvation":
			t := out[ev.Interval]
			t.starved = append(t.starved, ev.Attrs.Class)
			out[ev.Interval] = t
		}
	}
	return out, sc.Err()
}

// writeCSV emits one row per interval: interval, truth_00..truth_NN,
// est_00..est_NN (hot bytes per address-space column).
func writeCSV(w io.Writer, hm *fidelity.Heatmap) {
	fmt.Fprint(w, "interval")
	for c := 0; c < hm.Cols; c++ {
		fmt.Fprintf(w, ",truth_%02d", c)
	}
	for c := 0; c < hm.Cols; c++ {
		fmt.Fprintf(w, ",est_%02d", c)
	}
	fmt.Fprintln(w)
	for _, r := range hm.Rows {
		fmt.Fprintf(w, "%d", r.Interval)
		for c := 0; c < hm.Cols; c++ {
			fmt.Fprintf(w, ",%d", r.Truth[c])
		}
		for c := 0; c < hm.Cols; c++ {
			fmt.Fprintf(w, ",%d", r.Est[c])
		}
		fmt.Fprintln(w)
	}
}

// writeJSON re-emits the heatmap with the run's summary statistics.
func writeJSON(w io.Writer, res *mtm.Result) error {
	out := struct {
		Solution string
		Workload string
		Fidelity *fidelity.Report
	}{res.Solution, res.Workload, res.Fidelity}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// writeASCII renders truth and estimate side by side, one interval per
// row, cells shaded by hot-byte density relative to the run maximum.
func writeASCII(w io.Writer, res *mtm.Result, outcomes map[int]outcomeTally) {
	hm := res.Fidelity.Heatmap
	var max int64
	for _, r := range hm.Rows {
		for c := 0; c < hm.Cols; c++ {
			if r.Truth[c] > max {
				max = r.Truth[c]
			}
			if r.Est[c] > max {
				max = r.Est[c]
			}
		}
	}
	fid := res.Fidelity
	fmt.Fprintf(w, "%s / %s — fidelity over %d intervals (scored %d)\n",
		res.Solution, res.Workload, fid.Samples, fid.Scored)
	fmt.Fprintf(w, "precision %.3f  recall %.3f  F1 %.3f  rank-agreement %.3f\n",
		fid.MeanPrecision, fid.MeanRecall, fid.MeanF1, fid.MeanRankAgreement)
	fmt.Fprintf(w, "%8s  %-*s  %-*s\n", "", hm.Cols, "truth (address space →)", hm.Cols, "estimate")
	var line strings.Builder
	for _, r := range hm.Rows {
		line.Reset()
		fmt.Fprintf(&line, "%8d  ", r.Interval)
		shadeRow(&line, r.Truth[:hm.Cols], max)
		line.WriteString("  ")
		shadeRow(&line, r.Est[:hm.Cols], max)
		if t, ok := outcomes[r.Interval]; ok {
			if t.good+t.bad > 0 {
				fmt.Fprintf(&line, "  +%d -%d", t.good, t.bad)
			}
			for _, cl := range t.starved {
				fmt.Fprintf(&line, "  !starved(%s)", cl)
			}
		}
		fmt.Fprintln(w, line.String())
	}
	mv := fid.Moves
	fmt.Fprintf(w, "moves: promoted-and-reaccessed=%d promoted-wasted=%d demoted-and-refaulted=%d demoted-correct=%d flip-resurrected=%d unresolved=%d\n",
		mv.PromotedReaccessed, mv.PromotedWasted, mv.DemotedRefaulted, mv.DemotedCorrect, mv.FlipResurrected, mv.Unresolved)
}

// shadeRow appends one shaded heatmap row.
func shadeRow(b *strings.Builder, cells []int64, max int64) {
	for _, v := range cells {
		if v <= 0 || max <= 0 {
			b.WriteByte(shades[0])
			continue
		}
		s := 1 + int(v*int64(len(shades)-2)/max)
		if s > len(shades)-1 {
			s = len(shades) - 1
		}
		b.WriteByte(shades[s])
	}
}
