// Command benchjson turns `go test -bench` text output into a JSON
// summary and gates CI on benchmark regressions.
//
// Parse mode (default) reads benchmark output on stdin (or -in) and
// writes a summary:
//
//	go test -bench Interval -benchtime=1x -count=3 | benchjson -out BENCH_ci.json
//
// Each benchmark keeps the MINIMUM ns/op across its -count repetitions —
// the least-noisy estimate of the true cost. The summary also derives
// IntervalRatio = ns/op(BenchmarkIntervalParallel) /
// ns/op(BenchmarkIntervalSequential): the two benchmarks run the same
// profiling interval, so their ratio measures the sharded hot path's
// speedup while cancelling the absolute speed of the machine. Gating on
// the ratio keeps the check meaningful across differently-fast CI
// runners, where raw ns/op thresholds would misfire.
//
// Compare mode gates a current summary against a checked-in baseline:
//
//	benchjson -current BENCH_ci.json -baseline BENCH_baseline.json -threshold 0.20
//
// The gate fails (exit 1) when the current IntervalRatio exceeds the
// baseline's by more than -threshold (relative), i.e. when parallel
// interval throughput regressed relative to sequential. -max-ratio adds
// an absolute ceiling on the ratio (0 disables it); use it on runners
// with a known core count to demand a minimum speedup, e.g.
// -max-ratio 0.5 insists on >= 2x.
//
// Two further gates run against the current summary alone (no baseline
// involvement, so they hold absolutely rather than relatively):
//
//   - -min-speedup N requires ParallelSpeedup — ns/op of
//     BenchmarkIntervalWorkers/w1 over /w8, the same interval at 1 vs 8
//     workers — to be at least N. Like IntervalRatio it cancels the
//     runner's absolute speed, but it measures the speedup directly at a
//     fixed worker count instead of at GOMAXPROCS. Only meaningful on
//     multi-core runners.
//   - -max-allocs name=N[,name=N...] caps allocs/op of the named
//     benchmarks (requires -benchmem output); the zero-allocation
//     scan-steady contract is enforced with BenchmarkScanSteady=0.
//
// The diff against the baseline is symmetric: benchmarks present in the
// run but absent from the baseline fail the gate, and so do stale
// baseline entries naming benchmarks the run no longer has — both mean
// the checked-in baseline needs regenerating.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Summary is the checked-in benchmark baseline / CI artifact layout.
type Summary struct {
	// Benchmarks maps the benchmark name (GOMAXPROCS suffix stripped) to
	// its minimum ns/op across repetitions.
	Benchmarks map[string]Entry `json:"benchmarks"`
	// IntervalRatio is parallel/sequential interval ns/op; 0 when either
	// benchmark is missing.
	IntervalRatio float64 `json:"interval_ratio,omitempty"`
	// ParallelSpeedup is w1/w8 interval ns/op from the fixed-worker-count
	// sub-benchmarks; 0 when either is missing. On an N-core runner with
	// N >= 8 this is the parallel speedup of the sharded hot path.
	ParallelSpeedup float64 `json:"parallel_speedup,omitempty"`
}

// Entry is one benchmark's summary.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// AllocsPerOp comes from -benchmem output (the minimum-ns/op line);
	// compared only by the -max-allocs gate.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Runs        int     `json:"runs"`
}

const (
	seqBench = "BenchmarkIntervalSequential"
	parBench = "BenchmarkIntervalParallel"
	w1Bench  = "BenchmarkIntervalWorkers/w1"
	w8Bench  = "BenchmarkIntervalWorkers/w8"
)

// benchLine matches one `go test -bench` result line, with or without the
// -benchmem columns, e.g. "BenchmarkIntervalParallel-4   3   311262 ns/op
// 1024 B/op   12 allocs/op". The -N suffix is go's GOMAXPROCS tag, not
// part of the benchmark's identity.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(?:\s+([0-9.]+) B/op\s+([0-9.]+) allocs/op)?`)

func parse(r io.Reader) (*Summary, error) {
	s := &Summary{Benchmarks: map[string]Entry{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return nil, fmt.Errorf("benchjson: bad ns/op in %q: %v", sc.Text(), err)
		}
		e := s.Benchmarks[m[1]]
		if e.Runs == 0 || ns < e.NsPerOp {
			e.NsPerOp = ns
			// Keep the allocs figure from the same (min ns/op) line so
			// the two columns describe one run.
			e.AllocsPerOp = 0
			if m[5] != "" {
				if a, err := strconv.ParseFloat(m[5], 64); err == nil {
					e.AllocsPerOp = a
				}
			}
		}
		e.Runs++
		s.Benchmarks[m[1]] = e
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(s.Benchmarks) == 0 {
		return nil, fmt.Errorf("benchjson: no benchmark lines found in input")
	}
	seq, okSeq := s.Benchmarks[seqBench]
	par, okPar := s.Benchmarks[parBench]
	if okSeq && okPar && seq.NsPerOp > 0 {
		s.IntervalRatio = par.NsPerOp / seq.NsPerOp
	}
	w1, ok1 := s.Benchmarks[w1Bench]
	w8, ok8 := s.Benchmarks[w8Bench]
	if ok1 && ok8 && w8.NsPerOp > 0 {
		s.ParallelSpeedup = w1.NsPerOp / w8.NsPerOp
	}
	return s, nil
}

// parseMaxAllocs parses the -max-allocs spec "name=limit[,name=limit...]".
func parseMaxAllocs(spec string) (map[string]float64, error) {
	if spec == "" {
		return nil, nil
	}
	caps := map[string]float64{}
	for _, part := range strings.Split(spec, ",") {
		name, limit, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return nil, fmt.Errorf("benchjson: -max-allocs entry %q is not name=limit", part)
		}
		v, err := strconv.ParseFloat(limit, 64)
		if err != nil || v < 0 {
			return nil, fmt.Errorf("benchjson: -max-allocs limit in %q: want a non-negative number", part)
		}
		caps[name] = v
	}
	return caps, nil
}

func load(path string) (*Summary, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Summary
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %v", path, err)
	}
	return &s, nil
}

func write(path string, s *Summary) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	if path == "" || path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

func compare(cur, base *Summary, threshold, maxRatio, minSpeedup float64, maxAllocs map[string]float64) error {
	if cur.IntervalRatio == 0 {
		return fmt.Errorf("current summary lacks %s/%s; cannot gate", parBench, seqBench)
	}
	if base.IntervalRatio == 0 {
		return fmt.Errorf("baseline lacks an interval ratio; regenerate it with `go test -bench Interval ... | benchjson -out BENCH_baseline.json`")
	}
	limit := base.IntervalRatio * (1 + threshold)
	fmt.Printf("interval ratio (parallel/sequential ns/op): current=%.4f baseline=%.4f limit=%.4f\n",
		cur.IntervalRatio, base.IntervalRatio, limit)
	names := make([]string, 0, len(cur.Benchmarks))
	for n := range cur.Benchmarks {
		names = append(names, n)
	}
	sort.Strings(names)
	// A stale or hand-edited baseline must fail the gate with a clear
	// message, not divide by zero or silently skip the comparison.
	var missing, zero []string
	for _, n := range names {
		b, ok := base.Benchmarks[n]
		switch {
		case !ok:
			missing = append(missing, n)
		case b.NsPerOp <= 0:
			zero = append(zero, n)
		default:
			c := cur.Benchmarks[n]
			fmt.Printf("  %-40s current=%12.0f ns/op baseline=%12.0f ns/op (%+.1f%%)",
				n, c.NsPerOp, b.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1))
			if c.AllocsPerOp > 0 {
				// Informational only; baselines without -benchmem data
				// still gate cleanly.
				fmt.Printf(" allocs=%.0f/op", c.AllocsPerOp)
			}
			fmt.Println()
		}
	}
	// The reverse direction matters too: baseline entries for benchmarks
	// the current run no longer produces mean the benchmark was renamed
	// or deleted without regenerating the baseline. Silently ignoring
	// them would let the checked-in file rot.
	var stale []string
	for n := range base.Benchmarks {
		if _, ok := cur.Benchmarks[n]; !ok {
			stale = append(stale, n)
		}
	}
	sort.Strings(stale)
	if len(missing) > 0 {
		return fmt.Errorf("baseline lacks benchmark(s) %v present in the current run; regenerate it with `go test -bench Interval ... | benchjson -out BENCH_baseline.json`", missing)
	}
	if len(stale) > 0 {
		return fmt.Errorf("baseline names benchmark(s) %v that the current run did not produce; the benchmark was renamed or removed — regenerate the baseline", stale)
	}
	if len(zero) > 0 {
		return fmt.Errorf("baseline has zero/missing ns/op for benchmark(s) %v; the baseline file is corrupt or hand-edited — regenerate it", zero)
	}
	if cur.IntervalRatio > limit {
		return fmt.Errorf("interval throughput regression: parallel/sequential ratio %.4f exceeds baseline %.4f by more than %.0f%%",
			cur.IntervalRatio, base.IntervalRatio, 100*threshold)
	}
	if maxRatio > 0 && cur.IntervalRatio > maxRatio {
		return fmt.Errorf("interval ratio %.4f exceeds the absolute ceiling %.2f (insufficient parallel speedup)", cur.IntervalRatio, maxRatio)
	}
	if minSpeedup > 0 {
		if cur.ParallelSpeedup == 0 {
			return fmt.Errorf("-min-speedup given but the current summary lacks %s/%s", w1Bench, w8Bench)
		}
		fmt.Printf("parallel speedup (w1/w8 ns/op): %.2fx (floor %.2fx)\n", cur.ParallelSpeedup, minSpeedup)
		if cur.ParallelSpeedup < minSpeedup {
			return fmt.Errorf("parallel speedup %.2fx below the %.2fx floor (w1=%s w8=%s)",
				cur.ParallelSpeedup, minSpeedup, w1Bench, w8Bench)
		}
	}
	allocNames := make([]string, 0, len(maxAllocs))
	for n := range maxAllocs {
		allocNames = append(allocNames, n)
	}
	sort.Strings(allocNames)
	for _, n := range allocNames {
		c, ok := cur.Benchmarks[n]
		if !ok {
			return fmt.Errorf("-max-allocs names %s but the current summary lacks it", n)
		}
		fmt.Printf("  %-40s allocs=%.0f/op (cap %.0f)\n", n, c.AllocsPerOp, maxAllocs[n])
		if c.AllocsPerOp > maxAllocs[n] {
			return fmt.Errorf("%s allocates %.0f objects/op, cap is %.0f", n, c.AllocsPerOp, maxAllocs[n])
		}
	}
	return nil
}

func main() {
	var (
		in        = flag.String("in", "", "benchmark text to parse (default stdin)")
		out       = flag.String("out", "-", "where to write the JSON summary")
		current   = flag.String("current", "", "compare mode: current summary JSON")
		baseline  = flag.String("baseline", "", "compare mode: baseline summary JSON")
		threshold = flag.Float64("threshold", 0.20, "allowed relative interval-ratio regression")
		maxRatio  = flag.Float64("max-ratio", 0, "absolute interval-ratio ceiling (0 = disabled)")
		minSpeed  = flag.Float64("min-speedup", 0, "w1/w8 parallel-speedup floor (0 = disabled)")
		allocSpec = flag.String("max-allocs", "", "allocs/op caps as name=limit[,name=limit...]")
	)
	flag.Parse()

	if (*current == "") != (*baseline == "") {
		fmt.Fprintln(os.Stderr, "benchjson: -current and -baseline must be given together")
		os.Exit(2)
	}
	maxAllocs, err := parseMaxAllocs(*allocSpec)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *current != "" {
		cur, err := load(*current)
		if err == nil {
			var base *Summary
			base, err = load(*baseline)
			if err == nil {
				err = compare(cur, base, *threshold, *maxRatio, *minSpeed, maxAllocs)
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		fmt.Println("benchmark gate passed")
		return
	}

	var r io.Reader = os.Stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	s, err := parse(r)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := write(*out, s); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}
