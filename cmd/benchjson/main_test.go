package main

import (
	"math"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: mtm
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkIntervalSequential 	       1	   5339979 ns/op
BenchmarkIntervalSequential 	       1	   5100000 ns/op
BenchmarkIntervalSequential 	       1	   5200000 ns/op
BenchmarkIntervalParallel-4   	       1	   1500000 ns/op	  204800 B/op	     123 allocs/op
BenchmarkIntervalParallel-4   	       1	   1700000 ns/op	  204800 B/op	     456 allocs/op
BenchmarkGUPSInterval         	       2	    900000 ns/op
BenchmarkIntervalWorkers/w1-8 	       1	   4000000 ns/op	     100 B/op	       2 allocs/op
BenchmarkIntervalWorkers/w8-8 	       1	   1000000 ns/op	     800 B/op	      16 allocs/op
BenchmarkScanSteady           	     100	    700000 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	mtm	0.077s
`

func TestParseKeepsMinAndStripsSuffix(t *testing.T) {
	s, err := parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	seq := s.Benchmarks["BenchmarkIntervalSequential"]
	if seq.NsPerOp != 5100000 || seq.Runs != 3 {
		t.Fatalf("sequential entry %+v, want min 5100000 over 3 runs", seq)
	}
	par, ok := s.Benchmarks["BenchmarkIntervalParallel"]
	if !ok {
		t.Fatal("GOMAXPROCS suffix not stripped")
	}
	if par.NsPerOp != 1500000 || par.Runs != 2 {
		t.Fatalf("parallel entry %+v", par)
	}
	// -benchmem columns: allocs/op comes from the min-ns/op line; lines
	// without the columns leave it at zero.
	if par.AllocsPerOp != 123 {
		t.Fatalf("allocs/op = %v, want 123 (from the min ns/op line)", par.AllocsPerOp)
	}
	if seq.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %v for plain lines, want 0", seq.AllocsPerOp)
	}
	want := 1500000.0 / 5100000.0
	if math.Abs(s.IntervalRatio-want) > 1e-9 {
		t.Fatalf("interval ratio %f, want %f", s.IntervalRatio, want)
	}
	// Sub-benchmark names keep their /wN suffix (only the GOMAXPROCS tag
	// is stripped) and derive the fixed-worker-count speedup.
	if _, ok := s.Benchmarks["BenchmarkIntervalWorkers/w1"]; !ok {
		t.Fatal("sub-benchmark name mangled")
	}
	if math.Abs(s.ParallelSpeedup-4.0) > 1e-9 {
		t.Fatalf("parallel speedup %f, want 4.0 (w1/w8)", s.ParallelSpeedup)
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok mtm 0.1s\n")); err == nil {
		t.Fatal("no-benchmark input accepted")
	}
}

func TestCompareGate(t *testing.T) {
	base := &Summary{IntervalRatio: 0.50}
	ok := &Summary{IntervalRatio: 0.55, Benchmarks: map[string]Entry{}}
	if err := compare(ok, base, 0.20, 0, 0, nil); err != nil {
		t.Fatalf("10%% drift rejected: %v", err)
	}
	bad := &Summary{IntervalRatio: 0.65, Benchmarks: map[string]Entry{}}
	if err := compare(bad, base, 0.20, 0, 0, nil); err == nil {
		t.Fatal("30% regression passed the gate")
	}
	// Absolute ceiling: insist on a minimum speedup regardless of drift.
	if err := compare(ok, base, 0.20, 0.5, 0, nil); err == nil {
		t.Fatal("ratio above -max-ratio passed")
	}
	if err := compare(&Summary{}, base, 0.20, 0, 0, nil); err == nil {
		t.Fatal("summary without interval benchmarks passed")
	}
}

// TestCompareSpeedupGate: -min-speedup holds the w1/w8 speedup to an
// absolute floor and fails loudly when the worker sub-benchmarks were
// not run at all.
func TestCompareSpeedupGate(t *testing.T) {
	base := &Summary{IntervalRatio: 0.50}
	fast := &Summary{IntervalRatio: 0.50, ParallelSpeedup: 3.1, Benchmarks: map[string]Entry{}}
	if err := compare(fast, base, 0.20, 0, 2.0, nil); err != nil {
		t.Fatalf("3.1x speedup rejected at 2.0x floor: %v", err)
	}
	slow := &Summary{IntervalRatio: 0.50, ParallelSpeedup: 1.4, Benchmarks: map[string]Entry{}}
	if err := compare(slow, base, 0.20, 0, 2.0, nil); err == nil {
		t.Fatal("1.4x speedup passed a 2.0x floor")
	}
	none := &Summary{IntervalRatio: 0.50, Benchmarks: map[string]Entry{}}
	if err := compare(none, base, 0.20, 0, 2.0, nil); err == nil {
		t.Fatal("missing worker sub-benchmarks passed -min-speedup")
	}
}

// TestCompareAllocsGate: -max-allocs caps allocs/op per named benchmark
// and fails when the named benchmark is absent from the run.
func TestCompareAllocsGate(t *testing.T) {
	base := &Summary{
		IntervalRatio: 0.50,
		Benchmarks:    map[string]Entry{"BenchmarkScanSteady": {NsPerOp: 7e5, Runs: 1}},
	}
	cur := &Summary{
		IntervalRatio: 0.50,
		Benchmarks:    map[string]Entry{"BenchmarkScanSteady": {NsPerOp: 7e5, AllocsPerOp: 0, Runs: 1}},
	}
	if err := compare(cur, base, 0.20, 0, 0, map[string]float64{"BenchmarkScanSteady": 0}); err != nil {
		t.Fatalf("zero-alloc benchmark rejected at cap 0: %v", err)
	}
	cur.Benchmarks["BenchmarkScanSteady"] = Entry{NsPerOp: 7e5, AllocsPerOp: 3, Runs: 1}
	err := compare(cur, base, 0.20, 0, 0, map[string]float64{"BenchmarkScanSteady": 0})
	if err == nil {
		t.Fatal("3 allocs/op passed a cap of 0")
	}
	if !strings.Contains(err.Error(), "BenchmarkScanSteady") {
		t.Fatalf("error does not name the benchmark: %v", err)
	}
	if err := compare(cur, base, 0.20, 0, 0, map[string]float64{"BenchmarkMissing": 0}); err == nil {
		t.Fatal("-max-allocs naming an absent benchmark passed")
	}
}

func TestParseMaxAllocs(t *testing.T) {
	caps, err := parseMaxAllocs("BenchmarkScanSteady=0, BenchmarkOther=12")
	if err != nil {
		t.Fatal(err)
	}
	if caps["BenchmarkScanSteady"] != 0 || caps["BenchmarkOther"] != 12 {
		t.Fatalf("caps = %v", caps)
	}
	for _, bad := range []string{"NoEquals", "Bench=-1", "Bench=abc"} {
		if _, err := parseMaxAllocs(bad); err == nil {
			t.Fatalf("%q accepted", bad)
		}
	}
	if caps, err := parseMaxAllocs(""); err != nil || caps != nil {
		t.Fatalf("empty spec: caps=%v err=%v", caps, err)
	}
}

// TestCompareMissingBaselineEntry: a benchmark present in the run but
// absent from the baseline must fail the gate with a clear error naming
// the benchmark, not silently skip it.
func TestCompareMissingBaselineEntry(t *testing.T) {
	cur := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 5e6, Runs: 3},
			"BenchmarkNewHotness":         {NsPerOp: 1e6, Runs: 3},
		},
	}
	base := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 5e6, Runs: 3},
		},
	}
	err := compare(cur, base, 0.20, 0, 0, nil)
	if err == nil {
		t.Fatal("missing baseline entry passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkNewHotness") {
		t.Fatalf("error does not name the missing benchmark: %v", err)
	}
	if !strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("error does not advise regenerating the baseline: %v", err)
	}
}

// TestCompareStaleBaselineEntry: the reverse of the test above — a
// baseline entry for a benchmark the current run no longer produces
// (renamed or deleted) must fail the gate naming the stale entry, not be
// silently ignored.
func TestCompareStaleBaselineEntry(t *testing.T) {
	cur := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 5e6, Runs: 3},
		},
	}
	base := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 5e6, Runs: 3},
			"BenchmarkRenamedAway":        {NsPerOp: 1e6, Runs: 3},
		},
	}
	err := compare(cur, base, 0.20, 0, 0, nil)
	if err == nil {
		t.Fatal("stale baseline entry passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkRenamedAway") {
		t.Fatalf("error does not name the stale benchmark: %v", err)
	}
	if !strings.Contains(err.Error(), "regenerate") {
		t.Fatalf("error does not advise regenerating the baseline: %v", err)
	}
}

// TestCompareZeroBaselineNsPerOp: a zero/missing ns/op in the baseline
// must produce a clear error instead of a divide-by-zero Inf in the
// drift report.
func TestCompareZeroBaselineNsPerOp(t *testing.T) {
	cur := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 5e6, Runs: 3},
		},
	}
	base := &Summary{
		IntervalRatio: 0.50,
		Benchmarks: map[string]Entry{
			"BenchmarkIntervalSequential": {NsPerOp: 0, Runs: 3},
		},
	}
	err := compare(cur, base, 0.20, 0, 0, nil)
	if err == nil {
		t.Fatal("zero baseline ns/op passed the gate")
	}
	if !strings.Contains(err.Error(), "BenchmarkIntervalSequential") {
		t.Fatalf("error does not name the corrupt entry: %v", err)
	}
}
