package mtm

import (
	"testing"

	"mtm/internal/workload"
)

// This file pins the paper's headline claims as tests so regressions in
// the reproduction are caught by `go test`, not only by eyeballing
// cmd/experiments output. Each test runs a scaled-down version of the
// corresponding experiment; the asserted margins are looser than the
// measured ones to absorb single-seed noise.

// TestClaimFastPromotionBeatsTierByTier pins Figure 4/Table 6's core
// contrast on VoltDB: MTM's global fast-promotion policy must beat
// tiered-AutoNUMA's tier-by-tier stepping by a clear margin.
func TestClaimFastPromotionBeatsTierByTier(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.25
	mtmRes, err := Run(cfg, "voltdb", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	anRes, err := Run(cfg, "voltdb", "tiered-autonuma")
	if err != nil {
		t.Fatal(err)
	}
	if mtmRes.ExecTime.Seconds() > 0.9*anRes.ExecTime.Seconds() {
		t.Fatalf("MTM %v not clearly ahead of tiered-AutoNUMA %v", mtmRes.ExecTime, anRes.ExecTime)
	}
	// Table 6: MTM must serve more traffic from the home socket's
	// fastest tier.
	view := cfg.Topology().View(0)
	if mtmRes.NodeAccesses[view[0]] <= anRes.NodeAccesses[view[0]] {
		t.Fatalf("tier-1 accesses: MTM %d <= t-AN %d", mtmRes.NodeAccesses[view[0]], anRes.NodeAccesses[view[0]])
	}
}

// TestClaimAblationsAMROC pins Figure 7's two big levers: removing
// adaptive memory regions, or removing overhead control (τm=τs=0), must
// cost double-digit percentages on VoltDB.
func TestClaimAblationsAMROC(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.2
	base, err := Run(cfg, "voltdb", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	for _, ablation := range []string{"mtm-wo-amr", "mtm-wo-oc"} {
		res, err := Run(cfg, "voltdb", ablation)
		if err != nil {
			t.Fatal(err)
		}
		if res.ExecTime.Seconds() < 1.10*base.ExecTime.Seconds() {
			t.Errorf("%s = %v, want >= +10%% over MTM's %v", ablation, res.ExecTime, base.ExecTime)
		}
	}
}

// TestClaimTwoTierCrossover pins Figure 12's shape: when the working set
// crosses the fast-memory size, HeMem's throughput collapses harder than
// MTM's, and MTM never falls below HeMem.
func TestClaimTwoTierCrossover(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.TwoTier = true
	cfg.Threads = 24
	dram := int64(96) << 30 / cfg.Scale
	run := func(sol string, ratio float64) float64 {
		table := int64(float64(dram) * ratio)
		ops := table / 64
		s, err := NewSolution(sol, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := RunWith(cfg, workload.NewGUPSSized(table, ops), s)
		if err != nil {
			t.Fatal(err)
		}
		return float64(ops) / res.ExecTime.Seconds()
	}
	for _, ratio := range []float64{0.75, 1.25} {
		hemem := run("hemem", ratio)
		mtm := run("mtm", ratio)
		if mtm < hemem {
			t.Errorf("ratio %.2f: MTM %.1f < HeMem %.1f updates/s", ratio, mtm/1e6, hemem/1e6)
		}
	}
	hememDrop := run("hemem", 0.75) / run("hemem", 1.25)
	mtmDrop := run("mtm", 0.75) / run("mtm", 1.25)
	if hememDrop < mtmDrop {
		t.Errorf("crossover: HeMem drop %.2fx < MTM drop %.2fx; paper has HeMem collapsing harder", hememDrop, mtmDrop)
	}
}

// TestClaimProfilingQualityOrdering pins Figure 1's ordering on a single
// deterministic scenario: MTM's detection quality >= DAMON's >= random
// chunk sampling's (AutoTiering), measured over the run's second half.
func TestClaimProfilingQualityOrdering(t *testing.T) {
	// This claim is covered deterministically at unit level
	// (profiler.TestMTMBeatsDAMONOnHotDetection and
	// TestMTMBeatsDAMONAcrossSeeds); here we only re-check that the
	// experiment driver agrees for the extreme pair (MTM vs AutoTiering),
	// which has the largest margin and is noise-proof.
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.2

	quality := func(sol string) float64 {
		// Use fast-tier share under the full system as the proxy: better
		// profiling -> hotter fast tier. AutoTiering's random 256 MB
		// windows are the paper's low bar.
		res, err := Run(cfg, "gups", sol)
		if err != nil {
			t.Fatal(err)
		}
		view := cfg.Topology().View(0)
		return float64(res.NodeAccesses[view[0]]) / float64(res.TotalAccesses)
	}
	if m, a := quality("mtm"), quality("autotiering"); m <= a {
		t.Fatalf("fast-tier share: MTM %.3f <= AutoTiering %.3f", m, a)
	}
}
