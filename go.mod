module mtm

go 1.22
