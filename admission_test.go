package mtm

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"mtm/internal/admission"
	"mtm/internal/span"
)

// thrashFaults is the overload scenario the admission layer is built
// for: the fastest tier (node 0, every promotion's destination) fails
// most inbound copies during most of the run, so an unguarded policy
// keeps burning migration bandwidth on copies that abort.
const thrashFaults = "tier-fail-prob=0.9,tier-fail-duty=0.7,tier-fail-node=0"

// thrashCfg mirrors the CLI's default sizing (scale 256, half-length
// runs) — the same operating point the CI thrash sentinel measures.
func thrashCfg() Config {
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.5
	return cfg
}

// TestAdmissionReducesWaste is the acceptance bar for the admission
// layer: on the ping-pong workload with a flaky promotion destination,
// enabling admission must cut wasted migration bytes by at least 30%
// without costing more than 5% application time.
func TestAdmissionReducesWaste(t *testing.T) {
	off := thrashCfg()
	off.Faults = thrashFaults
	base, err := Run(off, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	if base.WastedBytes == 0 {
		t.Fatal("baseline wasted no bytes; the scenario no longer exercises waste")
	}
	if base.AdmissionAdmits+base.AdmissionDefers+base.AdmissionRejects+base.ThrashSuppressed != 0 {
		t.Fatalf("admission counters nonzero without the layer enabled: %+v", base)
	}

	on := off
	on.Admission = &admission.Config{}
	res, err := Run(on, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("admission run: %v", err)
	}
	if res.AdmissionAdmits == 0 {
		t.Error("admission layer admitted nothing; the gate is not wired into the policy")
	}
	if res.AdmissionDefers+res.AdmissionRejects == 0 {
		t.Error("admission layer refused nothing on an overload scenario")
	}
	if got, limit := res.WastedBytes, base.WastedBytes*7/10; got > limit {
		t.Errorf("admission cut waste to %d bytes, want <= %d (30%% below baseline %d)",
			got, limit, base.WastedBytes)
	}
	if got, limit := res.App, base.App+base.App/20; got > limit {
		t.Errorf("admission raised app time to %v, want <= %v (5%% above baseline %v)",
			got, limit, base.App)
	}
}

// TestAdmissionThrashSuppression asserts the per-page cool-down fires on
// the ping-pong workload: pages that just demoted are blocked from
// immediately re-promoting, and the suppressions surface in the Result.
func TestAdmissionThrashSuppression(t *testing.T) {
	cfg := thrashCfg()
	cfg.Faults = "cxl-flaky"
	cfg.Admission = &admission.Config{}
	res, err := Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.ThrashSuppressed == 0 {
		t.Error("no page move was thrash-suppressed on the ping-pong workload")
	}
}

// TestAdmissionJSONOmitsCountersWhenDisabled pins the envelope contract:
// a run without admission marshals to JSON with no Admission* keys at
// all, so pre-admission consumers (and the CI determinism diffs) see
// byte-identical output.
func TestAdmissionJSONOmitsCountersWhenDisabled(t *testing.T) {
	cfg := thrashCfg()
	cfg.OpsFactor = 0.1
	res, err := Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("Admission")) || bytes.Contains(b, []byte("ThrashSuppressed")) {
		t.Errorf("admission-free Result JSON leaks admission fields: %s", b)
	}

	cfg.Admission = &admission.Config{}
	res, err = Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("admission run: %v", err)
	}
	if b, err = json.Marshal(res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("AdmissionAdmits")) {
		t.Errorf("admission-enabled Result JSON lacks AdmissionAdmits: %s", b)
	}
}

// TestAdmissionLanesJSONOmittedWhenOff asserts the per-traffic-class
// counters only appear in Result JSON when lanes are enabled, so every
// lanes-off run — including plain -admission — serializes byte-identically
// to a build without the lane machinery.
func TestAdmissionLanesJSONOmittedWhenOff(t *testing.T) {
	cfg := thrashCfg()
	cfg.OpsFactor = 0.1
	cfg.Admission = &admission.Config{}
	res, err := Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	b, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(b, []byte("AdmissionLanes")) {
		t.Errorf("lanes-off Result JSON leaks the AdmissionLanes block: %s", b)
	}

	cfg.AdmissionLanes = "default"
	if res, err = Run(cfg, "pingpong", "mtm"); err != nil {
		t.Fatalf("lanes run: %v", err)
	}
	if b, err = json.Marshal(res); err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(b, []byte("AdmissionLanes")) {
		t.Errorf("lanes-on Result JSON lacks the AdmissionLanes block: %s", b)
	}
	if res.AdmissionLanes == nil || res.AdmissionLanes.Normal.Requests == 0 {
		t.Errorf("lanes-on run recorded no normal-class requests: %+v", res.AdmissionLanes)
	}
}

// TestAdmissionSpanProvenance asserts every admission decision leaves a
// span trail with its ROI evidence: the admitted rule, at least one
// refusal rule, and the roi/allowed_bytes/budget_bytes attributes that
// `spanreport -explain` renders.
func TestAdmissionSpanProvenance(t *testing.T) {
	cfg := thrashCfg()
	cfg.Faults = thrashFaults
	cfg.Admission = &admission.Config{}
	cfg.Trace = &span.Config{}
	res, err := Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if res.Spans == nil {
		t.Fatal("traced run produced no span export")
	}
	var buf bytes.Buffer
	if err := res.Spans.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	trace := buf.String()
	if !strings.Contains(trace, admission.RuleAdmitted) {
		t.Error("trace carries no admitted decision")
	}
	refused := false
	for _, rule := range []string{
		admission.RuleLowROI, admission.RuleVictimHot,
		admission.RuleBudget, admission.RuleShed, admission.RuleWaste,
	} {
		if strings.Contains(trace, rule) {
			refused = true
			break
		}
	}
	if !refused {
		t.Error("trace carries no refusal rule on an overload scenario")
	}
	for _, attr := range []string{`"roi":`, `"allowed_bytes":`, `"budget_bytes":`} {
		if !strings.Contains(trace, attr) {
			t.Errorf("trace lacks admission attribute %s", attr)
		}
	}
}
