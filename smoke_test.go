package mtm

import (
	"testing"
)

// TestSmokeGUPS runs a short GUPS under MTM and first-touch and checks
// the basic sanity properties: runs complete, MTM's profiling overhead
// respects the constraint, and MTM beats the no-migration baseline.
func TestSmokeGUPS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256 // small and fast for CI

	ft, err := Run(cfg, "gups", "first-touch")
	if err != nil {
		t.Fatal(err)
	}
	mt, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("first-touch: exec=%v app=%v prof=%v mig=%v intervals=%d done=%v",
		ft.ExecTime, ft.App, ft.Profiling, ft.Migration, ft.Intervals, ft.Completed)
	t.Logf("mtm:         exec=%v app=%v prof=%v mig=%v intervals=%d done=%v promoted=%dMB",
		mt.ExecTime, mt.App, mt.Profiling, mt.Migration, mt.Intervals, mt.Completed, mt.PromotedBytes>>20)
	t.Logf("mtm node accesses: %v", mt.NodeAccesses)
	t.Logf("ft  node accesses: %v", ft.NodeAccesses)

	if !ft.Completed || !mt.Completed {
		t.Fatalf("runs did not complete: ft=%v mtm=%v", ft.Completed, mt.Completed)
	}
	if mt.Profiling > mt.ExecTime/10 {
		t.Errorf("profiling overhead %v exceeds 10%% of %v", mt.Profiling, mt.ExecTime)
	}
	if mt.ExecTime >= ft.ExecTime {
		t.Errorf("MTM (%v) did not beat first-touch (%v)", mt.ExecTime, ft.ExecTime)
	}
}
