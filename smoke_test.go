package mtm

import (
	"testing"
)

// TestSmokeGUPS runs a short GUPS under MTM and first-touch and checks
// the basic sanity properties: runs complete, MTM's profiling overhead
// respects the constraint, and MTM beats the no-migration baseline.
func TestSmokeGUPS(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 256 // small and fast for CI

	ft, err := Run(cfg, "gups", "first-touch")
	if err != nil {
		t.Fatal(err)
	}
	mt, err := Run(cfg, "gups", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("first-touch: exec=%v app=%v prof=%v mig=%v intervals=%d done=%v",
		ft.ExecTime, ft.App, ft.Profiling, ft.Migration, ft.Intervals, ft.Completed)
	t.Logf("mtm:         exec=%v app=%v prof=%v mig=%v intervals=%d done=%v promoted=%dMB",
		mt.ExecTime, mt.App, mt.Profiling, mt.Migration, mt.Intervals, mt.Completed, mt.PromotedBytes>>20)
	t.Logf("mtm node accesses: %v", mt.NodeAccesses)
	t.Logf("ft  node accesses: %v", ft.NodeAccesses)

	if !ft.Completed || !mt.Completed {
		t.Fatalf("runs did not complete: ft=%v mtm=%v", ft.Completed, mt.Completed)
	}
	if mt.Profiling > mt.ExecTime/10 {
		t.Errorf("profiling overhead %v exceeds 10%% of %v", mt.Profiling, mt.ExecTime)
	}
	// MTM's placement benefit shows in application time: tracking the
	// drifting hot set must beat first-touch's static placement by a real
	// margin (first-touch spends nothing on profiling or migration, so its
	// app time IS its exec time). At this CI scale the *total* exec-time
	// difference is smaller than seed-to-seed noise — the placement gain
	// and the profiling+migration spend nearly cancel — so the end-to-end
	// assertion is an overhead bound, not a coin-flip comparison.
	if mt.App >= ft.App*19/20 {
		t.Errorf("MTM app time (%v) not clearly ahead of first-touch (%v)", mt.App, ft.App)
	}
	if mt.ExecTime > ft.ExecTime*11/10 {
		t.Errorf("MTM (%v) overhead blew past first-touch (%v)", mt.ExecTime, ft.ExecTime)
	}
}
