package mtm

import (
	"testing"
)

// TestClaimNomadFreeDemotionsOnPingpong pins the non-exclusive tiering
// claim (Nomad, §2's transactional-migration comparison point) on the
// workload built to stress it: pingpong's hot set flips between two
// halves of the table, so pages promoted in one phase are demoted nearly
// untouched in the next. With shadow-frame retention most of those
// demotions must be zero-copy page-table flips, cutting migrated bytes
// well below MTM's copy-everything baseline at no material app-time
// cost. The budget is raised 8x so steady-state churn (where retention
// pays) dominates the one-time eviction of never-hot first-touch pages.
func TestClaimNomadFreeDemotionsOnPingpong(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Audit = true
	cfg.MigrateBudget = 8 * 800 << 20 / cfg.Scale

	mtmRes, err := Run(cfg, "pingpong", "mtm")
	if err != nil {
		t.Fatal(err)
	}
	nomadRes, err := Run(cfg, "pingpong", "nomad")
	if err != nil {
		t.Fatal(err)
	}

	// The shadow machinery must actually engage.
	if nomadRes.FreeDemotions == 0 {
		t.Fatal("nomad performed no zero-copy flip demotions")
	}
	if nomadRes.ShadowHits != nomadRes.FreeDemotions {
		t.Fatalf("shadow hits %d != free demotions %d", nomadRes.ShadowHits, nomadRes.FreeDemotions)
	}
	// At least half the demoted bytes leave the fast tier for free
	// (measured: ~0.79).
	if nomadRes.DemotedBytes == 0 ||
		float64(nomadRes.FreeDemotionBytes) < 0.5*float64(nomadRes.DemotedBytes) {
		t.Fatalf("free demotion share = %d/%d, want >= 0.5",
			nomadRes.FreeDemotionBytes, nomadRes.DemotedBytes)
	}
	// Headline: >= 30% fewer migrated (copied) bytes than MTM
	// (measured: ~0.56)...
	if float64(nomadRes.MigratedBytes) > 0.7*float64(mtmRes.MigratedBytes) {
		t.Fatalf("migrated bytes: nomad %d vs mtm %d, want <= 0.7x",
			nomadRes.MigratedBytes, mtmRes.MigratedBytes)
	}
	// ...at no more than 5% app-time cost (measured: ~1.005; the delta is
	// background sync bandwidth interference on the slow tier).
	if nomadRes.App.Seconds() > 1.05*mtmRes.App.Seconds() {
		t.Fatalf("app time: nomad %v vs mtm %v, want <= 1.05x",
			nomadRes.App, mtmRes.App)
	}
}
