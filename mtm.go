// Package mtm is a simulation-backed reproduction of "MTM: Rethinking
// Memory Profiling and Migration for Multi-Tiered Large Memory"
// (EuroSys '24). It provides:
//
//   - a virtual-time multi-tiered memory substrate (tiers, software page
//     tables, huge pages, PEBS-style sampling, migration mechanisms);
//   - the MTM page-management system: adaptive profiling with overhead
//     control, the global fast-promotion/slow-demotion policy, and the
//     adaptive asynchronous migration mechanism;
//   - the paper's seven baselines and six workloads;
//   - experiment drivers regenerating every table and figure of the
//     evaluation (see the cmd/experiments binary and bench_test.go).
//
// Quick start:
//
//	cfg := mtm.DefaultConfig()
//	res, err := mtm.Run(cfg, "gups", "mtm")
//	// res.ExecTime is the virtual execution time; res.Profiling and
//	// res.Migration are the overheads on the critical path.
//
// All times are virtual (deterministic nanosecond accounting), so results
// are reproducible on any host. The Scale knob shrinks the paper's
// 1.7 TB testbed and its workloads uniformly; ratios between footprints,
// capacities, migration budgets, and profiling budgets are preserved.
package mtm

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"mtm/internal/admission"
	"mtm/internal/fault"
	"mtm/internal/health"
	"mtm/internal/migrate"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/span"
	"mtm/internal/tier"
	"mtm/internal/workload"
)

// Config selects the machine, the scale, and shared run parameters.
type Config struct {
	// Scale divides the paper's capacities, footprints, interval and
	// migration budget; 0 selects DefaultScale (64).
	Scale int64
	// Seed makes runs deterministic; runs with equal seeds and configs
	// produce identical virtual-time results.
	Seed int64
	// Threads is the application thread count (8 in the paper).
	Threads int
	// OpsFactor scales workload length (1.0 = paper-equivalent runtime).
	OpsFactor float64
	// TwoTier selects the single-socket DRAM+PM machine of §9.6 instead
	// of the two-socket four-tier Optane box.
	TwoTier bool
	// CXL selects a single-socket DRAM + direct-CXL + switched-CXL
	// machine (three tiers, all expansion CPU-less) — the §8 generality
	// configuration. Takes precedence over TwoTier.
	CXL bool
	// Interval is the profiling interval; 0 selects 10s/Scale.
	Interval time.Duration
	// MigrateBudget is the per-profiling-interval migration volume; 0
	// selects 800MB/Scale — the paper's N=200MB cap per *migration*
	// interval with four migration rounds inside each 10 s profiling
	// interval.
	MigrateBudget int64
	// OverheadTarget is the profiling overhead constraint; 0 selects 5%.
	OverheadTarget float64
	// Alpha is the EMA weight of Equation 2; 0 selects 0.5. (Set to a
	// negative value to force 0, i.e. history-only decisions.)
	Alpha float64
	// KeepLog records per-interval statistics on the engine.
	KeepLog bool
	// Faults names a fault-injection scenario (see fault.Scenarios);
	// "" or "none" runs without injection.
	Faults string
	// FaultSeed seeds the injector's own random stream; 0 selects Seed+1
	// so fault decisions never perturb the engine's randomness.
	FaultSeed int64
	// Parallelism is the worker count for the sharded profiling and
	// migration phases; 0 selects GOMAXPROCS, 1 forces fully sequential
	// execution. Results are bit-identical at every setting — sharding is
	// fixed-size and every shard draws from its own seeded stream — so
	// this is purely a wall-clock knob. Negative values are invalid.
	Parallelism int
	// Metrics enables the in-process observability layer: counters,
	// gauges, histograms, and the bounded event ring, sampled once per
	// profiling interval and returned in Result.Metrics. Recording is
	// deterministic (the export is part of the determinism-gate
	// comparison); disabled, the run is bit-identical to a build without
	// the metrics layer.
	Metrics bool
	// Trace, when non-nil, enables the deterministic span tracer: the
	// whole interval pipeline (profiling scans, classification decisions,
	// migration transfers, emergency events) is recorded as causally
	// linked spans on the virtual clock and returned in Result.Spans.
	// The zero Config selects the defaults; output is byte-identical at
	// every Parallelism. Nil adds zero overhead to the hot path.
	Trace *span.Config
	// Admission, when non-nil, enables migration admission control: every
	// planned page move passes an ROI gate, a per-tier-pair token-bucket
	// bandwidth budget, and a ping-pong cool-down before any page is
	// touched. Refusals (defer/reject) are recorded in the Result counters,
	// the metrics layer, and — with Trace enabled — as span provenance with
	// the estimated ROI. The zero admission.Config selects the defaults;
	// nil adds zero overhead and keeps results bit-identical to a build
	// without the layer. Results stay byte-identical at every Parallelism.
	Admission *admission.Config
	// AdmissionLearn enables online MinROI learning on the admission
	// layer: per-tier-pair promotion floors are adjusted once per interval
	// from hindsight verdicts (promoted-and-reaccessed vs promoted-wasted)
	// with bounded multiplicative steps and an evidence floor that freezes
	// adaptation when samples are scarce. Implies Admission (a zero
	// admission.Config is supplied when Admission is nil). Learned floors
	// appear in Result, the mtm_admission_minroi gauges, and — with Trace —
	// as per-decision span provenance. Deterministic at any Parallelism.
	AdmissionLearn bool
	// AdmissionLanes names a traffic-class lane configuration for the
	// admission layer ("" disables; "default" and "strict" are presets,
	// with kebab-case overrides à la Faults, e.g.
	// "default,reserve-frac=0.4"). Lanes split migration traffic into
	// normal/drain/emergency classes with strict-priority admission, a
	// reserved bandwidth slice for the critical classes, demand-scaled
	// budget refill, background (shadow-sync/profiling) traffic charging,
	// and a starvation watchdog. Implies Admission, like AdmissionLearn.
	AdmissionLanes string
	// Health enables the tier-health subsystem (memory-error poisoning,
	// tier draining/offlining, migration circuit breakers) even without a
	// fault scenario. Scenarios that inject memory errors or tier
	// failures (dimm-death, cxl-flaky) enable it automatically. Enabled
	// with no such scenario, every tier simply stays Online; results are
	// still byte-identical at every Parallelism.
	Health bool
	// Audit runs the end-of-run invariant auditor: page-table residency,
	// per-tier capacity accounting, and the migration/metrics counters
	// are cross-checked, and any drift is returned as a *sim.AuditError
	// joined with the run's own error.
	Audit bool
	// Fidelity enables the ground-truth fidelity oracle: once per
	// interval the engine samples per-page access truth, grades the
	// active profiler's hot set against it (precision/recall/F1, rank
	// agreement, estimation lag), and resolves a hindsight verdict for
	// every committed migration. Results land in Result.Fidelity
	// (omitted when disabled so fidelity-off JSON is unchanged), the
	// mtm_fidelity_* metrics family, and outcome span events. The oracle
	// charges no virtual time and is byte-identical at every Parallelism.
	Fidelity bool
	// FidelityHorizon is the outcome-resolution window in intervals for
	// migration lineage; 0 selects sim.DefaultFidelityHorizon. Only
	// meaningful with Fidelity set — Validate rejects it otherwise.
	FidelityHorizon int
}

// DefaultScale mirrors workload.DefaultScale.
const DefaultScale = workload.DefaultScale

// DefaultConfig returns the standard evaluation configuration.
func DefaultConfig() Config {
	return Config{Scale: DefaultScale, Seed: 1, Threads: 8, OpsFactor: 1}
}

// withDefaults resolves zero values.
func (c Config) withDefaults() Config {
	if c.Scale <= 0 {
		c.Scale = DefaultScale
	}
	if c.Threads <= 0 {
		c.Threads = 8
	}
	if c.OpsFactor <= 0 {
		c.OpsFactor = 1
	}
	if c.Interval <= 0 {
		c.Interval = 10 * time.Second / time.Duration(c.Scale)
	}
	if c.MigrateBudget <= 0 {
		c.MigrateBudget = 800 * tier.MB / c.Scale
	}
	if c.OverheadTarget <= 0 {
		c.OverheadTarget = 0.05
	}
	switch {
	case c.Alpha == 0:
		c.Alpha = 0.5
	case c.Alpha < 0:
		c.Alpha = 0
	}
	if c.FaultSeed == 0 {
		c.FaultSeed = c.Seed + 1
	}
	if (c.AdmissionLearn || c.AdmissionLanes != "") && c.Admission == nil {
		c.Admission = &admission.Config{}
	}
	return c
}

// Validate reports configurations that would produce a degenerate engine.
// Run calls it; construct-your-own-engine callers should too. The
// resolved Interval and MigrateBudget must stay positive — at extreme
// Scale values (more than 10s of nanoseconds, or more than 800 MB in
// bytes) the defaults would otherwise truncate to zero and the engine
// would spin on a zero-length interval or never migrate.
func (c Config) Validate() error {
	r := c.withDefaults()
	if r.Interval <= 0 {
		return fmt.Errorf("mtm: config resolves to a non-positive Interval (Scale=%d too extreme; set Interval explicitly)", r.Scale)
	}
	if r.MigrateBudget <= 0 {
		return fmt.Errorf("mtm: config resolves to a non-positive MigrateBudget (Scale=%d too extreme; set MigrateBudget explicitly)", r.Scale)
	}
	if !fault.Valid(r.Faults) {
		return fmt.Errorf("mtm: unknown fault scenario %q (have %v)", r.Faults, fault.Scenarios())
	}
	if r.Parallelism < 0 {
		return fmt.Errorf("mtm: negative Parallelism %d (0 means GOMAXPROCS)", r.Parallelism)
	}
	if r.FidelityHorizon < 0 {
		return fmt.Errorf("mtm: negative FidelityHorizon %d (0 means the default of %d intervals)", r.FidelityHorizon, sim.DefaultFidelityHorizon)
	}
	if r.FidelityHorizon > 0 && !r.Fidelity {
		return fmt.Errorf("mtm: FidelityHorizon set without Fidelity (enable the oracle or drop the horizon)")
	}
	if _, err := admission.ParseLanes(r.AdmissionLanes); err != nil {
		return fmt.Errorf("mtm: %w", err)
	}
	if r.Admission != nil {
		if err := r.Admission.Validate(); err != nil {
			return fmt.Errorf("mtm: %w", err)
		}
	}
	return nil
}

// Topology returns the machine the config selects.
func (c Config) Topology() *tier.Topology {
	c = c.withDefaults()
	switch {
	case c.CXL:
		return tier.CXLTopology(c.Scale)
	case c.TwoTier:
		return tier.TwoTierTopology(96*tier.GB/c.Scale, 756*tier.GB/c.Scale)
	}
	return tier.OptaneTopology(c.Scale)
}

// NewEngine builds a configured simulation engine. An invalid Faults
// scenario is ignored here (Validate reports it); injector attachment
// only happens for known scenarios.
func NewEngine(c Config) *sim.Engine {
	c = c.withDefaults()
	e := sim.NewEngine(c.Topology(), c.Seed)
	e.Threads = c.Threads
	e.Interval = c.Interval
	e.KeepLog = c.KeepLog
	e.Par = sim.NewPool(c.Parallelism)
	if c.Metrics {
		e.EnableMetrics()
	}
	if c.Trace != nil {
		e.EnableSpans(*c.Trace)
	}
	enableHealth := c.Health
	if inj, err := fault.NewScenario(c.Faults, c.FaultSeed); err == nil && inj != nil {
		e.SetFaultPlane(inj)
		if inj.Cfg.UsesHealth() {
			enableHealth = true
		}
	}
	if enableHealth {
		// After Interval is set: the breaker cool-down defaults to twice
		// the profiling interval.
		e.EnableHealth(health.Config{})
	}
	if c.Admission != nil {
		// Also after Interval is set: budgets refill per profiling
		// interval and the thrash cool-down defaults to twice of it.
		ac := *c.Admission
		if c.AdmissionLearn {
			ac.Learn = true
		}
		if lc, err := admission.ParseLanes(c.AdmissionLanes); err == nil && lc.Enabled {
			ac.Lanes = lc
		}
		e.EnableAdmission(ac)
	}
	if c.Fidelity {
		// Last, after EnableMetrics/EnableSpans, so the oracle's
		// instruments and outcome events register with them.
		e.EnableFidelity(sim.FidelityConfig{Horizon: c.FidelityHorizon})
	}
	return e
}

// workloadConfig adapts Config for the workload package.
func (c Config) workloadConfig() workload.Config {
	c = c.withDefaults()
	return workload.Config{Scale: c.Scale, OpsFactor: c.OpsFactor}
}

// NewWorkload builds one of the Table 2 workloads by name (gups, voltdb,
// cassandra, bfs, sssp, spark) or the synthetic thrash generator
// "pingpong" used by the admission-control experiments.
func NewWorkload(name string, c Config) (sim.Workload, error) {
	wc := c.workloadConfig()
	switch name {
	case "gups":
		return workload.NewGUPS(wc), nil
	case "pingpong":
		return workload.NewPingPong(wc), nil
	case "voltdb":
		return workload.NewVoltDB(wc), nil
	case "cassandra":
		return workload.NewCassandra(wc), nil
	case "bfs":
		return workload.NewBFS(wc), nil
	case "sssp":
		return workload.NewSSSP(wc), nil
	case "spark":
		return workload.NewSpark(wc), nil
	}
	return nil, fmt.Errorf("mtm: unknown workload %q (have %v)", name, WorkloadNames())
}

// WorkloadNames lists the available workloads. The first six are the
// paper's Table 2 applications (see PaperWorkloadNames); pingpong is the
// synthetic thrash generator for the admission-control experiments.
func WorkloadNames() []string {
	return []string{"gups", "voltdb", "cassandra", "bfs", "sssp", "spark", "pingpong"}
}

// PaperWorkloadNames lists only the Table 2 applications — the set every
// paper table and figure iterates over.
func PaperWorkloadNames() []string {
	return []string{"gups", "voltdb", "cassandra", "bfs", "sssp", "spark"}
}

// mtmProfiler builds the adaptive profiler with config-applied knobs and
// optional feature ablations.
func (c Config) mtmProfiler(mod func(*profiler.MTMConfig)) *profiler.MTM {
	c = c.withDefaults()
	pc := profiler.DefaultMTMConfig()
	pc.OverheadTarget = c.OverheadTarget
	pc.Alpha = c.Alpha
	if mod != nil {
		mod(&pc)
	}
	return profiler.NewMTM(pc)
}

func (c Config) mtmSolution(label string, pmod func(*profiler.MTMConfig), mech migrate.Mechanism) *policy.MTM {
	c = c.withDefaults()
	s := policy.NewMTMVariant(label, c.mtmProfiler(pmod), mech)
	s.MigrateBudget = c.MigrateBudget
	s.DemoteCap = 2 * c.MigrateBudget
	return s
}

// NewSolution builds a page-management solution by name. Paper solutions:
//
//	mtm, first-touch, slow-first, hmc, vanilla-tiered-autonuma,
//	tiered-autonuma, autotiering, hemem
//
// Non-exclusive tiering (shadow-frame retention, zero-copy clean
// demotion):
//
//	nomad
//
// Ablation variants of §9.3:
//
//	mtm-wo-amr, mtm-wo-pebs, mtm-wo-aps, mtm-wo-oc, mtm-wo-async,
//	mtm-thermostat-prof, mtm-autonuma-prof
func NewSolution(name string, c Config) (sim.Solution, error) {
	c = c.withDefaults()
	switch name {
	case "mtm":
		return c.mtmSolution("MTM", nil, migrate.NewAdaptive()), nil
	case "mtm-wo-amr":
		return c.mtmSolution("MTM w/o AMR", func(p *profiler.MTMConfig) { p.AdaptiveRegions = false }, migrate.NewAdaptive()), nil
	case "mtm-wo-pebs":
		return c.mtmSolution("MTM w/o PEBS", func(p *profiler.MTMConfig) { p.UsePEBS = false }, migrate.NewAdaptive()), nil
	case "mtm-wo-aps":
		return c.mtmSolution("MTM w/o APS", func(p *profiler.MTMConfig) { p.AdaptiveSampling = false }, migrate.NewAdaptive()), nil
	case "mtm-wo-oc":
		return c.mtmSolution("MTM w/o OC", func(p *profiler.MTMConfig) {
			p.OverheadControl = false
			p.TauM = 0
			p.TauS = 0
		}, migrate.NewAdaptive()), nil
	case "mtm-wo-async":
		return c.mtmSolution("MTM w/o async migration", nil, &migrate.Adaptive{ForceSync: true, WriteRate: -1}), nil
	case "mtm-thermostat-prof":
		s := policy.NewMTMVariant("Thermostat profiling + MTM migration", profiler.NewThermostat(), migrate.NewAdaptive())
		s.MigrateBudget = c.MigrateBudget
		s.DemoteCap = 2 * c.MigrateBudget
		return s, nil
	case "mtm-autonuma-prof":
		s := policy.NewMTMVariant("tiered-AutoNUMA profiling + MTM migration", profiler.NewSequentialScan(true), migrate.NewAdaptive())
		s.MigrateBudget = c.MigrateBudget
		s.DemoteCap = 2 * c.MigrateBudget
		return s, nil
	case "first-touch":
		return policy.NewFirstTouch(), nil
	case "slow-first":
		return policy.NewSlowFirst(), nil
	case "hmc":
		return policy.NewHMC(), nil
	case "vanilla-tiered-autonuma":
		s := policy.NewTieredAutoNUMA(false)
		s.MigrateBudget = c.MigrateBudget
		return s, nil
	case "tiered-autonuma":
		s := policy.NewTieredAutoNUMA(true)
		s.MigrateBudget = c.MigrateBudget
		return s, nil
	case "autotiering":
		s := policy.NewAutoTiering()
		s.MigrateBudget = c.MigrateBudget
		return s, nil
	case "hemem":
		s := policy.NewHeMem()
		s.MigrateBudget = c.MigrateBudget
		return s, nil
	case "nomad":
		s := policy.NewNomad()
		s.Prof = c.mtmProfiler(nil)
		s.MigrateBudget = c.MigrateBudget
		s.DemoteCap = 2 * c.MigrateBudget
		s.SyncBudget = 2 * c.MigrateBudget
		return s, nil
	}
	return nil, fmt.Errorf("mtm: unknown solution %q (have %v)", name, SolutionNames())
}

// SolutionNames lists all constructible solutions.
func SolutionNames() []string {
	names := []string{
		"mtm", "first-touch", "slow-first", "hmc",
		"vanilla-tiered-autonuma", "tiered-autonuma", "autotiering", "hemem", "nomad",
		"mtm-wo-amr", "mtm-wo-pebs", "mtm-wo-aps", "mtm-wo-oc", "mtm-wo-async",
		"mtm-thermostat-prof", "mtm-autonuma-prof",
	}
	sort.Strings(names)
	return names
}

// FaultScenarios lists the named fault-injection scenarios usable in
// Config.Faults (and mtmsim -faults).
func FaultScenarios() []string { return fault.Scenarios() }

// Result is the outcome of a run (alias of the engine's result type).
type Result = sim.Result

// MaxIntervals bounds any single run; at the default scale one interval
// is ~156 ms of virtual time, so this is a generous safety limit.
const MaxIntervals = 4096

// Run executes a workload under a solution and returns the summary. A
// non-nil Result may accompany a non-nil error (e.g. ErrOutOfMemory): it
// covers the partial run up to the failure.
func Run(c Config, workloadName, solutionName string) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	w, err := NewWorkload(workloadName, c)
	if err != nil {
		return nil, err
	}
	s, err := NewSolution(solutionName, c)
	if err != nil {
		return nil, err
	}
	return run(c, NewEngine(c), w, s)
}

// RunWith executes a caller-built workload and solution on a fresh
// engine. Like Run, a partial Result may accompany an error.
func RunWith(c Config, w sim.Workload, s sim.Solution) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	c = c.withDefaults()
	return run(c, NewEngine(c), w, s)
}

// run executes the workload and, when Config.Audit is set, cross-checks
// the engine's ledgers afterwards; an audit failure joins the run error.
func run(c Config, e *sim.Engine, w sim.Workload, s sim.Solution) (*Result, error) {
	res, err := sim.Run(e, w, s, MaxIntervals)
	if c.Audit {
		err = errors.Join(err, e.Audit())
	}
	return res, err
}
