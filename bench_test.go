package mtm_test

import (
	"fmt"
	"testing"

	"mtm"

	"mtm/internal/experiments"
	"mtm/internal/migrate"
	"mtm/internal/policy"
	"mtm/internal/profiler"
	"mtm/internal/sim"
	"mtm/internal/tier"
	"mtm/internal/vm"
	"mtm/internal/workload"
)

// Every figure and table of the paper's evaluation has a benchmark that
// regenerates it. `go test -bench Fig4 -v` prints the same rows the paper
// reports (b.Log output appears with -v); timings measure the full
// experiment driver. Experiment scale is kept small so the whole suite
// runs in minutes; cmd/experiments -full produces the paper-length runs.

func benchOpts() experiments.Options {
	return experiments.Options{Scale: 256, OpsFactor: 0.25, Seed: 1}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	o := benchOpts()
	run := experiments.All[id]
	if run == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var out string
	for i := 0; i < b.N; i++ {
		out = run(o)
	}
	b.Log("\n" + out)
}

func BenchmarkFig1ProfilingQuality(b *testing.B)   { benchExperiment(b, "fig1") }
func BenchmarkFig3MigrationBreakdown(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkFig4Overall(b *testing.B)            { benchExperiment(b, "fig4") }
func BenchmarkFig5Breakdown(b *testing.B)          { benchExperiment(b, "fig5") }
func BenchmarkFig6Heatmap(b *testing.B)            { benchExperiment(b, "fig6") }
func BenchmarkFig7Ablations(b *testing.B)          { benchExperiment(b, "fig7") }
func BenchmarkFig8OverheadSweep(b *testing.B)      { benchExperiment(b, "fig8") }
func BenchmarkFig9Thresholds(b *testing.B)         { benchExperiment(b, "fig9") }
func BenchmarkFig10Alpha(b *testing.B)             { benchExperiment(b, "fig10") }
func BenchmarkFig11Mechanisms(b *testing.B)        { benchExperiment(b, "fig11") }
func BenchmarkFig12TwoTier(b *testing.B)           { benchExperiment(b, "fig12") }
func BenchmarkTab3HotPages(b *testing.B)           { benchExperiment(b, "tab3") }
func BenchmarkTab4InitialPlacement(b *testing.B)   { benchExperiment(b, "tab4") }
func BenchmarkTab5MemoryOverhead(b *testing.B)     { benchExperiment(b, "tab5") }
func BenchmarkTab6TierAccesses(b *testing.B)       { benchExperiment(b, "tab6") }
func BenchmarkTab7RegionStats(b *testing.B)        { benchExperiment(b, "tab7") }

// --- substrate micro-benchmarks ---

// BenchmarkEngineAccess measures the simulator's hot path: one batched
// application access through fault-free TouchN + latency accounting.
func BenchmarkEngineAccess(b *testing.B) {
	e := sim.NewEngine(tier.OptaneTopology(256), 1)
	e.SetSolution(policy.NewFirstTouch())
	v := e.AS.Alloc("b", 64*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, 1, 0, 0)
	}
	e.Sys.ResetWindow(e.Interval)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Access(v, i&63, 4, 2, 0)
	}
}

// BenchmarkPTEScan measures one ObserveScans call (the profiling
// primitive).
func BenchmarkPTEScan(b *testing.B) {
	e := sim.NewEngine(tier.OptaneTopology(256), 1)
	e.SetSolution(policy.NewFirstTouch())
	v := e.AS.Alloc("b", 4*vm.HugePageSize)
	e.Access(v, 0, 500, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm.ObserveScans(v, 0, 3, 0.003, e.Rng)
	}
}

// BenchmarkMTMProfileInterval measures one full adaptive-profiling pass
// over a 1 GB address space.
func BenchmarkMTMProfileInterval(b *testing.B) {
	e := sim.NewEngine(tier.OptaneTopology(256), 1)
	e.SetSolution(policy.NewFirstTouch())
	e.Interval = 10 * 1e9 / 256
	v := e.AS.Alloc("b", 512*vm.HugePageSize)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	m := profiler.NewMTM(profiler.DefaultMTMConfig())
	m.Attach(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Profile(e)
	}
}

// benchIntervalProfiler measures the profiling-interval hot path — the
// part the worker pool shards — at machine scale 8: a 2 GB 4 KB-page VMA
// (1024 regions of 512 pages) profiled by MTM's adaptive profiler with
// PEBS gating off, so every region takes the PTE-scan path and the
// sharded scan dominates the sequential epilogue. The Sequential/Parallel
// pair under the same workload is what the CI benchmark gate compares:
// their ns/op ratio demonstrates the speedup (>= 2x on 4+ cores) while
// staying comparable across differently-fast runners.
func benchIntervalProfiler(b *testing.B, workers int) {
	e := sim.NewEngine(tier.OptaneTopology(8), 1)
	e.Par = sim.NewPool(workers)
	e.SetSolution(policy.NewFirstTouch())
	e.Interval = 10 * 1e9 / 8
	e.AS.THP = false
	v := e.AS.Alloc("b", 2<<30)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	m := profiler.NewMTM(pc)
	m.Attach(e)
	m.Profile(e) // warm-up: size scratch and region arrays before timing
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Profile(e)
	}
}

func BenchmarkIntervalSequential(b *testing.B) { benchIntervalProfiler(b, 1) }
func BenchmarkIntervalParallel(b *testing.B)   { benchIntervalProfiler(b, 0) }

// BenchmarkIntervalWorkers runs the same interval at fixed worker counts.
// The CI speedup gate derives parallel speedup as w1 ns/op over w8 ns/op,
// which factors out the runner's absolute speed. On a single-core box all
// four sub-benchmarks degenerate to the same time — the gate only runs on
// multi-core CI runners.
func BenchmarkIntervalWorkers(b *testing.B) {
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("w%d", w), func(b *testing.B) { benchIntervalProfiler(b, w) })
	}
}

// BenchmarkScanSteady measures the scan-steady profiling path: fixed
// regions (AdaptiveRegions off), one worker, PEBS off, so every interval
// is a pure word-wide PTE-scan sweep with per-shard scratch reuse. After
// the warm-up pass this path performs zero heap allocations per interval;
// the CI allocs gate holds it there. TestScanSteadyZeroAlloc asserts the
// same bound as a unit test.
func BenchmarkScanSteady(b *testing.B) {
	e := sim.NewEngine(tier.OptaneTopology(8), 1)
	e.Par = sim.NewPool(1)
	e.SetSolution(policy.NewFirstTouch())
	e.Interval = 10 * 1e9 / 8
	e.AS.THP = false
	v := e.AS.Alloc("b", 2<<30)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	pc.AdaptiveRegions = false
	m := profiler.NewMTM(pc)
	m.Attach(e)
	m.Profile(e)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Profile(e)
	}
}

// BenchmarkIntervalFidelitySample measures one fidelity-oracle sample
// over the same 2 GB interval workload the profiler benchmarks use: truth
// histogram, estimate grading against MTM's fixed region table, rank
// agreement, lag transitions, and the heat row. The oracle reuses planes,
// shard scratch, and cached phase closures after warm-up, so the steady
// state allocates nothing; the CI allocs gate holds it at zero, and the
// ns/op against BenchmarkIntervalSequential bounds the oracle's relative
// wall-time cost. TestFidelitySampleZeroAlloc asserts the same
// zero-alloc bound as a unit test.
func BenchmarkIntervalFidelitySample(b *testing.B) {
	e := sim.NewEngine(tier.OptaneTopology(8), 1)
	e.Par = sim.NewPool(1)
	e.Interval = 10 * 1e9 / 8
	e.AS.THP = false
	pc := profiler.DefaultMTMConfig()
	pc.UsePEBS = false
	pc.AdaptiveRegions = false
	sol := policy.NewMTMVariant("mtm-fixed", profiler.NewMTM(pc), migrate.NewAdaptive())
	e.SetSolution(sol)
	e.EnableFidelity(sim.FidelityConfig{})
	v := e.AS.Alloc("b", 2<<30)
	for i := 0; i < v.NPages; i++ {
		e.Access(v, i, uint32(1+i%97), 0, 0)
	}
	sol.Prof.Attach(e)
	sol.Prof.Profile(e)
	e.FidelitySample() // warm-up: size planes, shards, span list
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.FidelitySample()
	}
}

// BenchmarkMigrate2MBRegion measures the three mechanisms moving one 2 MB
// region between the fastest and slowest tiers (the Figure 3 scenario).
func BenchmarkMigrate2MBRegion(b *testing.B) {
	for _, mech := range []migrate.Mechanism{migrate.MovePages{}, migrate.Nimble{}, &migrate.Adaptive{WriteRate: 0}} {
		b.Run(mech.Name(), func(b *testing.B) {
			e := sim.NewEngine(tier.OptaneTopology(64), 1)
			e.SetSolution(policy.NewFirstTouch())
			v := e.AS.Alloc("b", vm.HugePageSize)
			e.Sys.ResetWindow(e.Interval)
			e.Access(v, 0, 1, 0, 0)
			nodes := []tier.NodeID{v.Node(0), 3}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				mech.Migrate(e, v, 0, 1, nodes[1-(i&1)], 0)
			}
		})
	}
}

// BenchmarkGUPSInterval measures one simulated profiling interval of GUPS
// under full MTM (application + profiling + migration).
func BenchmarkGUPSInterval(b *testing.B) {
	cfg := mtm.DefaultConfig()
	cfg.Scale = 256
	e := mtm.NewEngine(cfg)
	w := workload.NewGUPS(workload.Config{Scale: 256, OpsFactor: 1})
	s, err := mtm.NewSolution("mtm", cfg)
	if err != nil {
		b.Fatal(err)
	}
	e.SetSolution(s)
	w.Init(e)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.RunInterval(w)
	}
}
