package mtm

import (
	"bytes"
	"encoding/json"
	"testing"

	"mtm/internal/trace"
)

// recordThenReplay runs a workload live under tiered-AutoNUMA (whose whole
// pipeline is free of engine-Rng draws, so the replayed access stream is
// the only input), then replays the captured trace on a fresh engine with
// the same config, returning both results.
func recordThenReplay(t *testing.T, cfg Config) (live, replayed *Result) {
	t.Helper()
	const solution = "tiered-autonuma"
	w, err := NewWorkload("gups", cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	rec := trace.NewRecorder(w, trace.NewWriter(&buf))
	s1, err := NewSolution(solution, cfg)
	if err != nil {
		t.Fatal(err)
	}
	live, err = RunWith(cfg, rec, s1)
	if err != nil {
		t.Fatalf("live run: %v", err)
	}
	if rerr := rec.Err(); rerr != nil {
		t.Fatalf("recording: %v", rerr)
	}
	if err := rec.Out.Flush(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Read(&buf)
	if err != nil {
		t.Fatalf("reading trace back: %v", err)
	}
	s2, err := NewSolution(solution, cfg)
	if err != nil {
		t.Fatal(err)
	}
	replayed, err = RunWith(cfg, trace.NewReplay(tr), s2)
	if err != nil {
		t.Fatalf("replay run: %v", err)
	}
	return live, replayed
}

// assertSameMetrics compares the two runs' metrics exports byte for byte.
func assertSameMetrics(t *testing.T, live, replayed *Result) {
	t.Helper()
	if live.Metrics == nil || replayed.Metrics == nil {
		t.Fatal("metrics export missing from a run")
	}
	lb, err := json.Marshal(live.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := json.Marshal(replayed.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(lb, rb) {
		if live.Intervals != replayed.Intervals {
			t.Fatalf("interval counts differ: live %d, replay %d", live.Intervals, replayed.Intervals)
		}
		t.Fatalf("metrics exports differ (live %d bytes, replay %d bytes)\nlive:   %.400s\nreplay: %.400s",
			len(lb), len(rb), lb, rb)
	}
}

// TestReplayMetricsByteIdentical: replaying a recorded workload must yield
// a metrics export byte-identical to the live run's — placement, timing,
// and every per-interval sample included.
func TestReplayMetricsByteIdentical(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Metrics = true
	live, replayed := recordThenReplay(t, cfg)
	if live.Intervals == 0 {
		t.Fatal("live run completed no intervals")
	}
	assertSameMetrics(t, live, replayed)
}

// TestReplayMetricsByteIdenticalWithFaults repeats the byte-identity check
// under fault injection: the injector draws from its own seeded stream, so
// the same access sequence must still perturb both runs identically.
func TestReplayMetricsByteIdenticalWithFaults(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Scale = 512
	cfg.OpsFactor = 0.25
	cfg.Metrics = true
	cfg.Faults = "ebusy-storm"
	live, replayed := recordThenReplay(t, cfg)
	assertSameMetrics(t, live, replayed)
}
