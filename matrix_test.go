package mtm

import "testing"

// TestMatrixGUPS prints normalized execution time of every solution on
// GUPS (manual sanity check against Figure 4's ordering).
func TestMatrixGUPS(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run is slow")
	}
	cfg := DefaultConfig()
	cfg.Scale = 256
	cfg.OpsFactor = 0.5
	sols := []string{"first-touch", "hmc", "vanilla-tiered-autonuma", "tiered-autonuma", "autotiering", "hemem", "mtm"}
	var ftTime float64
	for _, s := range sols {
		r, err := Run(cfg, "gups", s)
		if err != nil {
			t.Fatal(err)
		}
		if s == "first-touch" {
			ftTime = r.ExecTime.Seconds()
		}
		t.Logf("%-26s exec=%7.3fs norm=%.3f app=%7.3fs prof=%6.3fs mig=%6.3fs promoted=%dMB",
			s, r.ExecTime.Seconds(), r.ExecTime.Seconds()/ftTime, r.App.Seconds(), r.Profiling.Seconds(), r.Migration.Seconds(), r.PromotedBytes>>20)
	}
}
